// Command passquery builds an AQP engine from a CSV file and answers
// one aggregate query with a confidence interval (and, for PASS, hard
// bounds).
//
// The CSV must have a header row; all columns but the last are predicate
// columns, the last is the aggregation column. Ranges are given as
// lo:hi pairs, one per predicate column in order (missing trailing ranges
// are unconstrained).
//
// Usage:
//
//	passquery -in taxi.csv -agg sum -where 6:18
//	passquery -in taxi5d.csv -agg avg -where 6:18,0:15 -partitions 256
//	passquery -in taxi.csv -agg count -where 6:18 -exact   # also print truth
//	passquery -in taxi.csv -sql "SELECT AVG(trip_distance) FROM t WHERE pickup_time BETWEEN 6 AND 18"
//	passquery -in taxi.csv -sql "SELECT SUM(trip_distance) FROM t WHERE pickup_time BETWEEN 6 AND 18" -explain
//	passquery -in taxi.csv -agg sum -where 6:18 -engine aqpp   # a comparator engine
//	passquery -in taxi.csv -agg sum -where 6:18 -json          # machine-readable
//
// A synopsis built once can be persisted and served forever through the
// store snapshot codec (the same format passd data directories use):
//
//	passquery -in taxi.csv -save taxi.snap -table taxi        # build + persist
//	passquery -load taxi.snap -agg sum -where 6:18            # answer without rebuilding
//	passquery -load taxi.snap -sql "SELECT SUM(trip_distance) FROM taxi WHERE pickup_time BETWEEN 6 AND 18"
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/engine/factory"
	"repro/internal/jsonout"
	"repro/internal/obs"
	"repro/internal/sqlfe"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/pass"
)

// jsonOutput is the machine-readable result document, mirroring
// passbench -json in spirit: one stable schema the CI artifact tooling
// and scripts can consume.
type jsonOutput struct {
	Engine      string          `json:"engine"`
	Rows        int             `json:"rows"`
	Leaves      int             `json:"leaves,omitempty"`
	Samples     int             `json:"samples,omitempty"`
	MemoryBytes int             `json:"memory_bytes"`
	BuildSecs   float64         `json:"build_seconds,omitempty"`
	Aggregate   string          `json:"aggregate,omitempty"`
	SQL         string          `json:"sql,omitempty"`
	NoMatch     bool            `json:"no_match,omitempty"`
	Answer      *jsonout.Answer `json:"answer,omitempty"`
	Groups      []jsonout.Group `json:"groups,omitempty"`
	Exact       *jsonTruth      `json:"exact,omitempty"`
	// ExactError reports why -exact could not produce a ground truth.
	ExactError string `json:"exact_error,omitempty"`
	// Trace is the EXPLAIN ANALYZE span tree (-explain only).
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

type jsonTruth struct {
	Value       float64 `json:"value"`
	RelativeErr float64 `json:"relative_error"`
}

func main() {
	var (
		in         = flag.String("in", "", "input CSV (required)")
		aggName    = flag.String("agg", "sum", "aggregate: sum, count, avg, min, max")
		where      = flag.String("where", "", "comma-separated lo:hi ranges, one per predicate column")
		partitions = flag.Int("partitions", 64, "leaf partitions k")
		rate       = flag.Float64("rate", 0.005, "sample rate")
		confidence = flag.Float64("confidence", 0.99, "CI coverage")
		seed       = flag.Uint64("seed", 1, "random seed")
		exact      = flag.Bool("exact", false, "also compute the exact answer by full scan")
		sqlQuery   = flag.String("sql", "", "SQL statement (overrides -agg/-where); column names come from the CSV header")
		explainQ   = flag.Bool("explain", false, "with -sql: run as EXPLAIN ANALYZE and print the span tree (in -json, attach it as \"trace\")")
		engineName = flag.String("engine", "pass", "engine: "+strings.Join(factory.Kinds(), ", "))
		jsonOut    = flag.Bool("json", false, "emit the result as JSON (machine-readable)")
		saveFile   = flag.String("save", "", "persist the built synopsis as a store snapshot file")
		loadFile   = flag.String("load", "", "serve from a store snapshot file instead of building from -in")
		tableName  = flag.String("table", "", "table name recorded with -save (default: the CSV basename)")
	)
	flag.Parse()

	if *in == "" && *loadFile == "" {
		fmt.Fprintln(os.Stderr, "passquery: -in (or -load) is required")
		os.Exit(2)
	}
	if *explainQ && *sqlQuery == "" {
		fmt.Fprintln(os.Stderr, "passquery: -explain needs -sql (the trace hangs off a SQL statement)")
		os.Exit(2)
	}

	agg, err := parseAgg(*aggName)
	if err != nil {
		fatal(err)
	}
	ranges, err := parseRanges(*where)
	if err != nil {
		fatal(err)
	}
	if len(ranges) == 0 {
		ranges = []pass.Range{{Lo: math.Inf(-1), Hi: math.Inf(1)}}
	}

	if *saveFile != "" || *loadFile != "" {
		runStoreMode(storeModeArgs{
			in: *in, save: *saveFile, load: *loadFile, table: *tableName,
			engine: *engineName, sql: *sqlQuery, agg: agg, ranges: ranges,
			spec: factory.Spec{
				Partitions: *partitions, SampleRate: *rate, Seed: *seed,
				Lambda: stats.LambdaFor(*confidence),
			},
			exact: *exact, jsonOut: *jsonOut, explain: *explainQ,
		})
		return
	}

	if !strings.EqualFold(*engineName, "pass") {
		if *sqlQuery != "" {
			fatal(fmt.Errorf("-sql is only supported with -engine pass (comparators have no SQL frontend)"))
		}
		runComparator(*in, *engineName, agg, ranges, factory.Spec{
			Partitions: *partitions, SampleRate: *rate, Seed: *seed,
			Lambda: stats.LambdaFor(*confidence),
		}, *exact, *jsonOut)
		return
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tbl, err := pass.ReadCSV(f)
	if err != nil {
		fatal(err)
	}

	opt := pass.Options{
		Partitions: *partitions,
		SampleRate: *rate,
		Confidence: *confidence,
		Seed:       *seed,
	}
	syn, err := pass.BuildAuto(tbl, opt)
	if err != nil {
		fatal(err)
	}
	out := jsonOutput{
		Engine:      "PASS",
		Rows:        tbl.Len(),
		Leaves:      syn.Leaves(),
		Samples:     syn.Samples(),
		MemoryBytes: syn.MemoryBytes(),
		BuildSecs:   syn.BuildSeconds(),
	}
	if !*jsonOut {
		fmt.Printf("synopsis: %d rows, %d leaves, %d samples, %.1f KiB, built in %.3fs\n",
			tbl.Len(), syn.Leaves(), syn.Samples(), float64(syn.MemoryBytes())/1024, syn.BuildSeconds())
	}

	if *sqlQuery != "" {
		runSQL(syn, *sqlQuery, out, *jsonOut, *explainQ)
		return
	}

	out.Aggregate = strings.ToUpper(*aggName)
	ans, err := syn.Query(agg, ranges...)
	if err == pass.ErrNoMatch {
		out.NoMatch = true
		if *jsonOut {
			emitJSON(out)
		} else {
			fmt.Println("no tuples match the predicate")
		}
		return
	}
	if err != nil {
		fatal(err)
	}
	out.Answer = jsonout.FromAnswer(ans)
	if *exact {
		if truth, err := tbl.Exact(agg, ranges...); err == nil {
			out.Exact = &jsonTruth{Value: truth, RelativeErr: relErr(ans.Estimate, truth)}
		} else {
			out.ExactError = err.Error()
		}
	}
	if *jsonOut {
		emitJSON(out)
		return
	}
	fmt.Printf("%s ≈ %.6g ± %.6g (%.0f%% CI)\n", out.Aggregate, ans.Estimate, ans.CIHalf, *confidence*100)
	if ans.HardBounds {
		fmt.Printf("hard bounds: [%.6g, %.6g]\n", ans.HardLo, ans.HardHi)
	}
	if ans.Exact {
		fmt.Println("answer is exact (predicate aligned with partitioning)")
	}
	fmt.Printf("tuples read: %d   skip rate: %.1f%%\n", ans.TuplesRead, ans.SkipRate*100)
	if out.Exact != nil {
		fmt.Printf("exact: %.6g   relative error: %.4f%%\n", out.Exact.Value, out.Exact.RelativeErr*100)
	} else if *exact {
		fmt.Printf("exact: undefined (%s)\n", out.ExactError)
	}
}

// storeModeArgs collects the inputs of the -save/-load snapshot paths.
type storeModeArgs struct {
	in, save, load, table string
	engine, sql           string
	agg                   pass.Agg
	ranges                []pass.Range
	spec                  factory.Spec
	exact                 bool
	jsonOut               bool
	explain               bool
}

// runStoreMode persists or restores a synopsis through the store snapshot
// codec — the same format passd data directories use, so a file written
// here can be dropped into a -data-dir and served immediately.
func runStoreMode(a storeModeArgs) {
	var (
		eng    engine.Engine
		schema sqlfe.Schema
		name   string
		base   *dataset.Dataset // only on the -save path, for -exact
	)
	switch {
	case a.load != "":
		snap, err := store.ReadSnapshotFile(a.load)
		if err != nil {
			fatal(err)
		}
		loader, ok := factory.Loader(snap.Engine)
		if !ok {
			fatal(fmt.Errorf("no loader for engine %q (have %s)", snap.Engine, strings.Join(factory.LoaderKinds(), ", ")))
		}
		eng, err = loader(bytes.NewReader(snap.Payload))
		if err != nil {
			fatal(err)
		}
		schema, name = snap.Schema, snap.Name
		if !a.jsonOut {
			fmt.Printf("loaded table %q (engine %s, %d rows at snapshot) from %s — no rebuild\n",
				name, snap.Engine, snap.Rows, a.load)
		}
	default: // -save
		f, err := os.Open(a.in)
		if err != nil {
			fatal(err)
		}
		base, err = dataset.ReadCSV(f, "table")
		f.Close()
		if err != nil {
			fatal(err)
		}
		eng, err = factory.Build(a.engine, base, a.spec)
		if err != nil {
			fatal(err)
		}
		ser, ok := engine.Underlying(eng).(engine.Serializable)
		if !ok {
			fatal(fmt.Errorf("engine %s: %w", eng.Name(), engine.ErrNotSerializable))
		}
		var payload bytes.Buffer
		if err := ser.Save(&payload); err != nil {
			fatal(err)
		}
		name = a.table
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(a.in), filepath.Ext(a.in))
		}
		schema = sqlfe.SchemaFromColNames(base.ColNames)
		schema.Table = name
		if err := store.WriteSnapshotFile(a.save, &store.Snapshot{
			Name: name, Engine: engine.Underlying(eng).Name(), Rows: base.N(),
			Schema: schema, Payload: payload.Bytes(),
		}); err != nil {
			fatal(err)
		}
		if !a.jsonOut {
			fmt.Printf("saved table %q (engine %s, %d rows) to %s\n", name, eng.Name(), base.N(), a.save)
		}
	}

	if a.sql != "" {
		sess := pass.NewSession()
		if err := sess.RegisterEngine(name, eng, schema); err != nil {
			fatal(err)
		}
		stmt := a.sql
		if a.explain {
			stmt = explainSQL(stmt)
		}
		res, err := sess.Exec(stmt)
		out := jsonOutput{Engine: eng.Name(), MemoryBytes: eng.MemoryBytes(), SQL: a.sql}
		out.Trace = res.Trace
		switch {
		case err == pass.ErrNoMatch:
			out.NoMatch = true
		case err != nil:
			fatal(err)
		case res.Groups != nil:
			out.Groups = jsonout.FromGroups(res.Groups)
		default:
			out.Answer = jsonout.FromAnswer(res.Scalar)
		}
		if a.jsonOut {
			emitJSON(out)
			return
		}
		switch {
		case out.NoMatch:
			fmt.Println("no tuples match the predicate")
		case out.Groups != nil:
			for _, g := range out.Groups {
				label := g.Label
				if label == "" {
					label = fmt.Sprintf("%g", g.Group)
				}
				if g.NoMatch || g.Answer == nil {
					fmt.Printf("%-20s  (no matching tuples)\n", label)
					continue
				}
				fmt.Printf("%-20s  %.6g ± %.6g\n", label, g.Answer.Estimate, g.Answer.CIHalf)
			}
		default:
			fmt.Printf("result ≈ %.6g ± %.6g\n", out.Answer.Estimate, out.Answer.CIHalf)
		}
		printTrace(out.Trace)
		return
	}

	// -agg/-where path: query the engine directly
	kind, err := dataset.ParseAggKind(a.agg.String())
	if err != nil {
		fatal(err)
	}
	rect := dataset.Rect{Lo: make([]float64, len(a.ranges)), Hi: make([]float64, len(a.ranges))}
	for i, rg := range a.ranges {
		rect.Lo[i], rect.Hi[i] = rg.Lo, rg.Hi
	}
	r, err := eng.Query(kind, rect)
	if err != nil {
		fatal(err)
	}
	out := jsonOutput{Engine: eng.Name(), MemoryBytes: eng.MemoryBytes(), Aggregate: kind.String()}
	if r.NoMatch {
		out.NoMatch = true
		if a.jsonOut {
			emitJSON(out)
		} else {
			fmt.Println("no tuples match the predicate")
		}
		return
	}
	out.Answer = &jsonout.Answer{
		Estimate: r.Estimate, CIHalf: r.CIHalf, Exact: r.Exact, TuplesRead: r.TuplesRead,
	}
	if a.exact && base != nil {
		if truth, err := base.Exact(kind, rect); err == nil {
			out.Exact = &jsonTruth{Value: truth, RelativeErr: relErr(r.Estimate, truth)}
		} else {
			out.ExactError = err.Error()
		}
	} else if a.exact {
		out.ExactError = "-exact needs the base data; a loaded snapshot has only the synopsis"
	}
	if a.jsonOut {
		emitJSON(out)
		return
	}
	fmt.Printf("%s ≈ %.6g ± %.6g\n", out.Aggregate, r.Estimate, r.CIHalf)
	fmt.Printf("tuples read: %d\n", r.TuplesRead)
	if out.Exact != nil {
		fmt.Printf("exact: %.6g   relative error: %.4f%%\n", out.Exact.Value, out.Exact.RelativeErr*100)
	} else if out.ExactError != "" {
		fmt.Printf("exact: undefined (%s)\n", out.ExactError)
	}
}

// runComparator answers the query with one of the non-PASS engines,
// constructed by name through the engine factory.
func runComparator(in, name string, agg pass.Agg, ranges []pass.Range, spec factory.Spec, exact, jsonOut bool) {
	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f, "table")
	if err != nil {
		fatal(err)
	}
	eng, err := factory.Build(name, d, spec)
	if err != nil {
		fatal(err)
	}
	kind, err := dataset.ParseAggKind(agg.String())
	if err != nil {
		fatal(err)
	}
	rect := dataset.Rect{Lo: make([]float64, len(ranges)), Hi: make([]float64, len(ranges))}
	for i, r := range ranges {
		rect.Lo[i], rect.Hi[i] = r.Lo, r.Hi
	}
	out := jsonOutput{
		Engine:      eng.Name(),
		Rows:        d.N(),
		MemoryBytes: eng.MemoryBytes(),
		Aggregate:   kind.String(),
	}
	r, err := eng.Query(kind, rect)
	if err != nil {
		fatal(err)
	}
	if r.NoMatch {
		out.NoMatch = true
		if jsonOut {
			emitJSON(out)
		} else {
			fmt.Println("no tuples match the predicate")
		}
		return
	}
	out.Answer = &jsonout.Answer{
		Estimate:   r.Estimate,
		CIHalf:     r.CIHalf,
		Exact:      r.Exact,
		TuplesRead: r.TuplesRead,
		SkipRate:   r.SkipRate(d.N()),
	}
	if exact {
		if truth, err := d.Exact(kind, rect); err == nil {
			out.Exact = &jsonTruth{Value: truth, RelativeErr: relErr(r.Estimate, truth)}
		} else {
			out.ExactError = err.Error()
		}
	}
	if jsonOut {
		emitJSON(out)
		return
	}
	fmt.Printf("engine: %s, %d rows, %.1f KiB synopsis\n", eng.Name(), d.N(), float64(eng.MemoryBytes())/1024)
	fmt.Printf("%s ≈ %.6g ± %.6g\n", out.Aggregate, r.Estimate, r.CIHalf)
	fmt.Printf("tuples read: %d\n", r.TuplesRead)
	if out.Exact != nil {
		fmt.Printf("exact: %.6g   relative error: %.4f%%\n", out.Exact.Value, out.Exact.RelativeErr*100)
	} else if exact {
		fmt.Printf("exact: undefined (%s)\n", out.ExactError)
	}
}

func runSQL(syn *pass.Synopsis, query string, out jsonOutput, jsonOut, explain bool) {
	out.SQL = query
	var res pass.SQLResult
	var err error
	if explain {
		// tracing lives in the session executor, not the bare synopsis:
		// register the synopsis under the statement's FROM table and run
		// the statement as EXPLAIN ANALYZE (answers are bitwise identical).
		stmt, _ := sqlfe.StripExplain(query)
		tmpl, terr := sqlfe.Normalize(stmt)
		if terr != nil {
			fatal(terr)
		}
		sess := pass.NewSession()
		if rerr := sess.Register(tmpl.Table, syn); rerr != nil {
			fatal(rerr)
		}
		res, err = sess.Exec(explainSQL(stmt))
		out.Trace = res.Trace
	} else {
		res, err = syn.SQL(query)
	}
	if err == pass.ErrNoMatch {
		out.NoMatch = true
		if jsonOut {
			emitJSON(out)
		} else {
			fmt.Println("no tuples match the predicate")
		}
		return
	}
	if err != nil {
		fatal(err)
	}
	if res.Groups == nil {
		out.Answer = jsonout.FromAnswer(res.Scalar)
		if jsonOut {
			emitJSON(out)
			return
		}
		a := res.Scalar
		fmt.Printf("result ≈ %.6g ± %.6g\n", a.Estimate, a.CIHalf)
		if a.HardBounds {
			fmt.Printf("hard bounds: [%.6g, %.6g]\n", a.HardLo, a.HardHi)
		}
		fmt.Printf("tuples read: %d   skip rate: %.1f%%\n", a.TuplesRead, a.SkipRate*100)
		printTrace(out.Trace)
		return
	}
	out.Groups = jsonout.FromGroups(res.Groups)
	if jsonOut {
		emitJSON(out)
		return
	}
	for _, g := range res.Groups {
		label := g.Label
		if label == "" {
			label = fmt.Sprintf("%g", g.Group)
		}
		if g.NoMatch {
			fmt.Printf("%-20s  (no matching tuples)\n", label)
			continue
		}
		fmt.Printf("%-20s  %.6g ± %.6g\n", label, g.Answer.Estimate, g.Answer.CIHalf)
	}
	printTrace(out.Trace)
}

// explainSQL rewrites a statement as EXPLAIN ANALYZE (idempotently —
// an existing prefix is stripped first, never doubled).
func explainSQL(sql string) string {
	stmt, _ := sqlfe.StripExplain(sql)
	return "EXPLAIN ANALYZE " + stmt
}

// printTrace renders the EXPLAIN ANALYZE span tree as an indented text
// tree — one line per span, duration right-aligned, attributes inline in
// key order. No-op on a nil trace.
func printTrace(root *obs.SpanJSON) {
	if root == nil {
		return
	}
	fmt.Println("trace:")
	printSpan(root, 1)
}

func printSpan(sp *obs.SpanJSON, depth int) {
	fmt.Printf("%-36s %8dµs", strings.Repeat("  ", depth)+sp.Name, sp.DurationUS)
	keys := make([]string, 0, len(sp.Attrs))
	for k := range sp.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s=%v", k, sp.Attrs[k])
	}
	fmt.Println()
	for _, c := range sp.Children {
		printSpan(c, depth+1)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func relErr(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

func parseAgg(s string) (pass.Agg, error) {
	switch strings.ToLower(s) {
	case "sum":
		return pass.Sum, nil
	case "count":
		return pass.Count, nil
	case "avg":
		return pass.Avg, nil
	case "min":
		return pass.Min, nil
	case "max":
		return pass.Max, nil
	}
	return 0, fmt.Errorf("passquery: unknown aggregate %q", s)
}

func parseRanges(s string) ([]pass.Range, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []pass.Range
	for _, part := range strings.Split(s, ",") {
		bounds := strings.Split(strings.TrimSpace(part), ":")
		if len(bounds) != 2 {
			return nil, fmt.Errorf("passquery: range %q must be lo:hi", part)
		}
		lo, err := strconv.ParseFloat(bounds[0], 64)
		if err != nil {
			return nil, fmt.Errorf("passquery: bad lower bound %q", bounds[0])
		}
		hi, err := strconv.ParseFloat(bounds[1], 64)
		if err != nil {
			return nil, fmt.Errorf("passquery: bad upper bound %q", bounds[1])
		}
		out = append(out, pass.Range{Lo: lo, Hi: hi})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "passquery: %v\n", err)
	os.Exit(1)
}
