// Command passquery builds a PASS synopsis from a CSV file and answers
// one aggregate query with a confidence interval and hard bounds.
//
// The CSV must have a header row; all columns but the last are predicate
// columns, the last is the aggregation column. Ranges are given as
// lo:hi pairs, one per predicate column in order (missing trailing ranges
// are unconstrained).
//
// Usage:
//
//	passquery -in taxi.csv -agg sum -where 6:18
//	passquery -in taxi5d.csv -agg avg -where 6:18,0:15 -partitions 256
//	passquery -in taxi.csv -agg count -where 6:18 -exact   # also print truth
//	passquery -in taxi.csv -sql "SELECT AVG(trip_distance) FROM t WHERE pickup_time BETWEEN 6 AND 18"
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/pass"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV (required)")
		aggName    = flag.String("agg", "sum", "aggregate: sum, count, avg, min, max")
		where      = flag.String("where", "", "comma-separated lo:hi ranges, one per predicate column")
		partitions = flag.Int("partitions", 64, "leaf partitions k")
		rate       = flag.Float64("rate", 0.005, "sample rate")
		confidence = flag.Float64("confidence", 0.99, "CI coverage")
		seed       = flag.Uint64("seed", 1, "random seed")
		exact      = flag.Bool("exact", false, "also compute the exact answer by full scan")
		sqlQuery   = flag.String("sql", "", "SQL statement (overrides -agg/-where); column names come from the CSV header")
	)
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "passquery: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tbl, err := pass.ReadCSV(f)
	if err != nil {
		fatal(err)
	}

	agg, err := parseAgg(*aggName)
	if err != nil {
		fatal(err)
	}
	ranges, err := parseRanges(*where)
	if err != nil {
		fatal(err)
	}
	if len(ranges) == 0 {
		ranges = []pass.Range{{Lo: math.Inf(-1), Hi: math.Inf(1)}}
	}

	opt := pass.Options{
		Partitions: *partitions,
		SampleRate: *rate,
		Confidence: *confidence,
		Seed:       *seed,
	}
	var syn *pass.Synopsis
	if tbl.Dims() == 1 {
		syn, err = pass.Build(tbl, opt)
	} else {
		syn, err = pass.BuildMulti(tbl, opt)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synopsis: %d rows, %d leaves, %d samples, %.1f KiB, built in %.3fs\n",
		tbl.Len(), syn.Leaves(), syn.Samples(), float64(syn.MemoryBytes())/1024, syn.BuildSeconds())

	if *sqlQuery != "" {
		runSQL(syn, *sqlQuery)
		return
	}

	ans, err := syn.Query(agg, ranges...)
	if err == pass.ErrNoMatch {
		fmt.Println("no tuples match the predicate")
		return
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s ≈ %.6g ± %.6g (%.0f%% CI)\n", strings.ToUpper(*aggName), ans.Estimate, ans.CIHalf, *confidence*100)
	if ans.HardBounds {
		fmt.Printf("hard bounds: [%.6g, %.6g]\n", ans.HardLo, ans.HardHi)
	}
	if ans.Exact {
		fmt.Println("answer is exact (predicate aligned with partitioning)")
	}
	fmt.Printf("tuples read: %d   skip rate: %.1f%%\n", ans.TuplesRead, ans.SkipRate*100)

	if *exact {
		truth, err := tbl.Exact(agg, ranges...)
		if err != nil {
			fmt.Printf("exact: undefined (%v)\n", err)
			return
		}
		rel := 0.0
		if truth != 0 {
			rel = math.Abs(ans.Estimate-truth) / math.Abs(truth)
		}
		fmt.Printf("exact: %.6g   relative error: %.4f%%\n", truth, rel*100)
	}
}

func runSQL(syn *pass.Synopsis, query string) {
	res, err := syn.SQL(query)
	if err == pass.ErrNoMatch {
		fmt.Println("no tuples match the predicate")
		return
	}
	if err != nil {
		fatal(err)
	}
	if res.Groups == nil {
		a := res.Scalar
		fmt.Printf("result ≈ %.6g ± %.6g\n", a.Estimate, a.CIHalf)
		if a.HardBounds {
			fmt.Printf("hard bounds: [%.6g, %.6g]\n", a.HardLo, a.HardHi)
		}
		fmt.Printf("tuples read: %d   skip rate: %.1f%%\n", a.TuplesRead, a.SkipRate*100)
		return
	}
	for _, g := range res.Groups {
		label := g.Label
		if label == "" {
			label = fmt.Sprintf("%g", g.Group)
		}
		if g.NoMatch {
			fmt.Printf("%-20s  (no matching tuples)\n", label)
			continue
		}
		fmt.Printf("%-20s  %.6g ± %.6g\n", label, g.Answer.Estimate, g.Answer.CIHalf)
	}
}

func parseAgg(s string) (pass.Agg, error) {
	switch strings.ToLower(s) {
	case "sum":
		return pass.Sum, nil
	case "count":
		return pass.Count, nil
	case "avg":
		return pass.Avg, nil
	case "min":
		return pass.Min, nil
	case "max":
		return pass.Max, nil
	}
	return 0, fmt.Errorf("passquery: unknown aggregate %q", s)
}

func parseRanges(s string) ([]pass.Range, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []pass.Range
	for _, part := range strings.Split(s, ",") {
		bounds := strings.Split(strings.TrimSpace(part), ":")
		if len(bounds) != 2 {
			return nil, fmt.Errorf("passquery: range %q must be lo:hi", part)
		}
		lo, err := strconv.ParseFloat(bounds[0], 64)
		if err != nil {
			return nil, fmt.Errorf("passquery: bad lower bound %q", bounds[0])
		}
		hi, err := strconv.ParseFloat(bounds[1], 64)
		if err != nil {
			return nil, fmt.Errorf("passquery: bad upper bound %q", bounds[1])
		}
		out = append(out, pass.Range{Lo: lo, Hi: hi})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "passquery: %v\n", err)
	os.Exit(1)
}
