package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestExplainSQLIdempotent(t *testing.T) {
	want := "EXPLAIN ANALYZE SELECT SUM(v) FROM t"
	if got := explainSQL("SELECT SUM(v) FROM t"); got != want {
		t.Fatalf("plain: %q", got)
	}
	if got := explainSQL("explain analyze SELECT SUM(v) FROM t"); got != want {
		t.Fatalf("already-prefixed: %q", got)
	}
}

// capture runs fn with os.Stdout redirected to a pipe and returns what
// it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestPrintTrace(t *testing.T) {
	if out := capture(t, func() { printTrace(nil) }); out != "" {
		t.Fatalf("nil trace printed %q", out)
	}
	root := &obs.SpanJSON{
		Name: "query", DurationUS: 120,
		Children: []*obs.SpanJSON{
			{Name: "compile", DurationUS: 40, Attrs: map[string]any{"plan_cache": "miss"}},
			{Name: "execute", DurationUS: 75, Attrs: map[string]any{
				"tuples_read": 7, "leaf_exact": 3,
			}},
		},
	}
	out := capture(t, func() { printTrace(root) })
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || lines[0] != "trace:" {
		t.Fatalf("shape: %q", out)
	}
	if !strings.Contains(lines[1], "query") || !strings.Contains(lines[1], "120µs") {
		t.Fatalf("root line: %q", lines[1])
	}
	// children indent deeper than the root and carry attrs in key order
	if !strings.HasPrefix(lines[2], "    compile") || !strings.Contains(lines[2], "plan_cache=miss") {
		t.Fatalf("compile line: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "    execute") ||
		!strings.Contains(lines[3], "leaf_exact=3  tuples_read=7") {
		t.Fatalf("execute line (attrs must be key-sorted): %q", lines[3])
	}
}
