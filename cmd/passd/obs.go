package main

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/pass"
)

// HTTP-layer instruments: every request through the server (health
// probes included) lands here via the logRequests middleware.
var (
	httpRequests = obs.Default().NewCounter("pass_http_requests_total", "HTTP requests served")
	httpErrors   = obs.Default().NewCounter("pass_http_errors_total", "HTTP requests answered with status >= 500")
	httpDuration = obs.Default().NewHistogram("pass_http_request_duration_seconds", "HTTP request latency", nil)
)

// registerCollectors bridges the session-owned statistics into the
// process-wide registry as scrape-time collector funcs — the stats keep
// living where they always did (plan cache, semantic cache, per-table
// scatter counters), and GET /metrics reads them through one pane of
// glass instead of a second copy. Re-registration replaces, so a fresh
// server in the same process (tests) simply rebinds the names.
func registerCollectors(sess *pass.Session) {
	reg := obs.Default()
	reg.CounterFunc("pass_plan_cache_hits_total", "prepared-plan cache hits",
		func() float64 { return float64(sess.PlanCacheStats().Hits) })
	reg.CounterFunc("pass_plan_cache_misses_total", "prepared-plan cache misses",
		func() float64 { return float64(sess.PlanCacheStats().Misses) })
	reg.CounterFunc("pass_plan_cache_evictions_total", "prepared-plan cache evictions",
		func() float64 { return float64(sess.PlanCacheStats().Evictions) })
	reg.GaugeFunc("pass_plan_cache_entries", "prepared-plan cache live entries",
		func() float64 { return float64(sess.PlanCacheStats().Entries) })

	reg.CounterFunc("pass_result_cache_hits_total", "semantic result cache hits (0 without -adaptive)",
		func() float64 {
			if cs, ok := sess.CacheStats(); ok {
				return float64(cs.Hits)
			}
			return 0
		})
	reg.CounterFunc("pass_result_cache_misses_total", "semantic result cache misses (0 without -adaptive)",
		func() float64 {
			if cs, ok := sess.CacheStats(); ok {
				return float64(cs.Misses)
			}
			return 0
		})
	reg.GaugeFunc("pass_result_cache_bytes", "semantic result cache footprint",
		func() float64 {
			if cs, ok := sess.CacheStats(); ok {
				return float64(cs.Bytes)
			}
			return 0
		})

	reg.GaugeFunc("pass_tables", "registered tables",
		func() float64 { return float64(len(sess.Tables())) })
	reg.GaugeFunc("pass_degraded_tables", "tables in read-only degraded mode",
		func() float64 { return float64(len(sess.DegradedTables())) })

	reg.CounterFunc("pass_shard_scatter_total", "(query, shard) executions across sharded tables",
		func() float64 {
			total := int64(0)
			for _, t := range sess.Tables() {
				for _, c := range t.ShardScatter {
					total += c
				}
			}
			return float64(total)
		})
	reg.CounterFunc("pass_shard_pruned_total", "(query, shard) pairs skipped by scatter pruning",
		func() float64 {
			total := int64(0)
			for _, t := range sess.Tables() {
				total += t.ShardPruned
			}
			return float64(total)
		})
	reg.CounterFunc("pass_shard_streamed_total", "shard partials folded into streaming merges",
		func() float64 {
			total := int64(0)
			for _, t := range sess.Tables() {
				total += t.ShardStreamed
			}
			return float64(total)
		})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// handleMetricsHistory serves the in-memory metrics time series: windowed
// rates and trends computed over the ring, plus the raw samples (or one
// series with ?series=name). The window is bounded by -metrics-history ×
// -metrics-history-every; there is no external TSDB behind it.
func (s *server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("metrics history is off (start passd with -metrics-history > 0)"))
		return
	}
	h := s.history
	window := time.Minute
	if raw := r.URL.Query().Get("window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad window %q: want a positive duration like 5m", raw))
			return
		}
		window = d
	}
	resp := map[string]any{
		"interval_ms":  h.Interval().Milliseconds(),
		"samples_held": h.Len(),
		"window_ms":    window.Milliseconds(),
		"trends":       historyTrends(h, window),
	}
	if name := r.URL.Query().Get("series"); name != "" {
		resp["series"] = name
		resp["points"] = h.Series(name)
	} else {
		resp["samples"] = h.Samples()
	}
	writeJSON(w, http.StatusOK, resp)
}

// historyTrends derives the headline windowed readings an operator asks
// for first: QPS, error rate, tail latency, coverage posture.
func historyTrends(h *obs.History, window time.Duration) map[string]any {
	trends := map[string]any{}
	if qps, ok := h.Rate("pass_queries_total", window); ok {
		trends["qps"] = qps
	}
	if eps, ok := h.Rate("pass_query_errors_total", window); ok {
		trends["query_errors_per_s"] = eps
	}
	if p99, ok := h.Last("pass_query_duration_seconds_p99"); ok {
		trends["query_p99_ms"] = p99 * 1000
	}
	if breached, ok := h.Last("pass_slo_breached"); ok {
		trends["slo_breached"] = breached != 0
	}
	if audits, ok := h.Rate("pass_audit_enqueued_total", window); ok {
		trends["audits_per_s"] = audits
	}
	return trends
}

// handleAudit serves the accuracy-audit report: per-stream empirical
// coverage, relative error, hard-bound violations, and the SLO verdict.
func (s *server) handleAudit(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.sess.AuditReport()
	if !ok {
		httpError(w, http.StatusConflict, fmt.Errorf("accuracy auditing is off (start passd with -audit-sample > 0)"))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// statusRecorder captures the status code and body size a handler wrote,
// for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// logRequests is the outermost middleware: it times every request,
// records the HTTP instruments, and (when a request log is attached)
// emits one JSON line per request — method, path, status, duration,
// response bytes. It replaces the unstructured per-request prints.
func (s *server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		d := time.Since(start)
		httpRequests.Inc()
		if rec.status >= 500 {
			httpErrors.Inc()
		}
		httpDuration.ObserveDuration(d)
		s.reqLog.Emit("http_request", map[string]any{
			"method":      r.Method,
			"path":        r.URL.Path,
			"status":      rec.status,
			"duration_ms": float64(d.Microseconds()) / 1000,
			"bytes":       rec.bytes,
		})
	})
}

// startSelfReport periodically emits histogram snapshots and headline
// counters to the structured log — a heartbeat an operator can grep
// without scraping /metrics. Stops when ctx ends.
func startSelfReport(ctx context.Context, every time.Duration, logw *obs.JSONLog) {
	if every <= 0 || logw == nil {
		return
	}
	queries := obs.Default().NewHistogram("pass_query_duration_seconds", "SQL statement execution latency", nil)
	requests := obs.Default().NewHistogram("pass_http_request_duration_seconds", "HTTP request latency", nil)
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				q := queries.Snapshot()
				h := requests.Snapshot()
				logw.Emit("self_report", map[string]any{
					"queries":          q.Count,
					"query_p50_ms":     q.P50 * 1000,
					"query_p95_ms":     q.P95 * 1000,
					"query_p99_ms":     q.P99 * 1000,
					"http_requests":    h.Count,
					"http_p95_ms":      h.P95 * 1000,
					"query_errors":     obs.Default().NewCounter("pass_query_errors_total", "").Value(),
					"merge_pool_reuse": poolReuse(),
				})
			}
		}
	}()
}

// poolReuse reads the merge-pool reuse figure from the registry counters.
func poolReuse() int64 {
	reg := obs.Default()
	return reg.NewCounter("pass_merge_pool_acquires_total", "").Value() -
		reg.NewCounter("pass_merge_pool_allocs_total", "").Value()
}
