package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/engine/factory"
	"repro/internal/shard"
	"repro/internal/sqlfe"
	"repro/internal/store"
	"repro/internal/vfs"
	"repro/pass"
)

func TestHealthzAndReadyz(t *testing.T) {
	srv := newServer(pass.NewSession())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	get := func(path string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return resp, body
	}

	// liveness holds regardless of readiness
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v, want 200 ok", resp.StatusCode, body)
	}
	// before startup completes the server is alive but not ready
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready = %d, want 503", resp.StatusCode)
	}
	srv.ready.Store(true)
	if resp, body := get("/readyz"); resp.StatusCode != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz after ready = %d %v, want 200 ready", resp.StatusCode, body)
	}
	// shutdown flips readiness back off while healthz keeps answering
	srv.ready.Store(false)
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during shutdown = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during shutdown = %d, want 200", resp.StatusCode)
	}
}

// TestMalformedJSONReturns400 is the regression test for garbage request
// bodies: every JSON endpoint must answer 400 with a JSON error body, not
// a hung read or an empty reply.
func TestMalformedJSONReturns400(t *testing.T) {
	ts := testServer(t)
	for _, tc := range []struct{ path, body string }{
		{"/query", `{not json`},
		{"/query", `{"sql": "SELECT 1"} trailing garbage`},
		{"/tables", `[1,2,`},
		{"/tables/x/rows", `"rows"`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		decodeErr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with %q = %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
		if decodeErr != nil || body["error"] == "" {
			t.Errorf("POST %s with %q: error body = %v (%v), want a JSON error", tc.path, tc.body, body, decodeErr)
		}
	}
}

// TestOversizedBodyReturns413 is the regression test for unbounded reads:
// a body over the cap must be rejected with 413, not buffered.
func TestOversizedBodyReturns413(t *testing.T) {
	srv := newServer(pass.NewSession())
	srv.maxBody = 1024
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	big := `{"sql": "` + strings.Repeat("x", 4096) + `"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Fatalf("413 error body = %v (%v), want a JSON error", body, err)
	}
	// a body under the cap still parses (and fails on the unknown table,
	// not on size)
	resp2, out := postJSON(t, ts.URL+"/query", map[string]any{"sql": "SELECT COUNT(*) FROM nope"})
	if resp2.StatusCode != http.StatusOK || out == nil {
		t.Fatalf("small body after 413 = %d, want 200", resp2.StatusCode)
	}
}

// TestMaxInflightShedsWith503 pins the admission semaphore full and
// checks load shedding: immediate 503 with a Retry-After hint, while
// health probes bypass the limiter entirely.
func TestMaxInflightShedsWith503(t *testing.T) {
	srv := newServer(pass.NewSession())
	srv.setMaxInflight(1)
	srv.ready.Store(true)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// occupy the only slot
	srv.inflight <- struct{}{}
	defer func() { <-srv.inflight }()

	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"sql":"SELECT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request at capacity = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 should carry a Retry-After hint")
	}
	// probes are exempt from admission control
	for _, path := range []string{"/healthz", "/readyz"} {
		pr, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		pr.Body.Close()
		if pr.StatusCode != http.StatusOK {
			t.Fatalf("GET %s at capacity = %d, want 200", path, pr.StatusCode)
		}
	}
}

// latencyEngine delays every query — the slow shard of the end-to-end
// deadline test.
type latencyEngine struct {
	inner engine.Engine
	delay time.Duration
}

func (l *latencyEngine) Name() string              { return l.inner.Name() }
func (l *latencyEngine) MemoryBytes() int          { return l.inner.MemoryBytes() }
func (l *latencyEngine) Underlying() engine.Engine { return l.inner }

func (l *latencyEngine) Query(kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	time.Sleep(l.delay)
	return l.inner.Query(kind, q)
}

func (l *latencyEngine) QueryBatch(qs []core.BatchQuery) []core.BatchResult {
	time.Sleep(l.delay)
	return l.inner.QueryBatch(qs)
}

// TestQueryTimeoutDegradedOverHTTP drives deadline propagation end to
// end: a sharded table with one slow shard, a server-side -query-timeout,
// and a COUNT over the whole key range. The HTTP answer must come back
// within the deadline, marked degraded, with the shard accounting on the
// wire.
func TestQueryTimeoutDegradedOverHTTP(t *testing.T) {
	d := dataset.GenIntelWireless(3000, 17)
	eng, err := shard.Build(d, shard.Range, 0, 3, func(i int, part *dataset.Dataset) (engine.Engine, error) {
		inner, err := factory.Build("pass", part, factory.Spec{Partitions: 16, SampleSize: part.N(), Seed: 2})
		if err != nil {
			return nil, err
		}
		if i == 2 {
			return &latencyEngine{inner: inner, delay: 5 * time.Second}, nil
		}
		return inner, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := pass.NewSession()
	schema := sqlfe.SchemaFromColNames(d.ColNames)
	if err := sess.RegisterEngineEphemeral("sensors", eng, schema); err != nil {
		t.Fatal(err)
	}
	srv := newServer(sess)
	srv.queryTimeout = 200 * time.Millisecond
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	start := time.Now()
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{"sql": "SELECT COUNT(*) FROM sensors"})
	wall := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d %v, want 200", resp.StatusCode, out)
	}
	if wall > 3*time.Second {
		t.Fatalf("query took %s, -query-timeout was 200ms", wall)
	}
	results := out["results"].([]any)
	r0 := results[0].(map[string]any)
	if r0["error"] != nil {
		t.Fatalf("statement error: %v", r0["error"])
	}
	scalar := r0["scalar"].(map[string]any)
	if scalar["degraded"] != true {
		t.Fatalf("scalar = %v, want degraded: true", scalar)
	}
	if scalar["shards_total"].(float64) != 3 || scalar["shards_answered"].(float64) != 2 {
		t.Fatalf("shard accounting = %v/%v, want 2/3", scalar["shards_answered"], scalar["shards_total"])
	}
	// soundness on the wire: estimate ± ci_half must contain the true count
	est, ci := scalar["estimate"].(float64), scalar["ci_half"].(float64)
	truth := float64(d.N())
	if est-ci > truth || est+ci < truth {
		t.Fatalf("degraded COUNT %v ± %v does not contain ground truth %v", est, ci, truth)
	}
}

// TestInsertIntoDegradedTableReturns503 checks the HTTP surface of
// read-only degraded mode: after an injected WAL fsync failure, inserts
// are rejected with 503 (the table is temporarily unwritable, not the
// client's fault), queries keep serving, and /readyz lists the table.
func TestInsertIntoDegradedTableReturns503(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(vfs.OS())
	st, err := store.Open(dir, store.Options{CheckpointInterval: -1, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	sess := pass.NewSession()
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	srv := newServer(sess)
	srv.ready.Store(true)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(2400), "partitions": 16, "sample_rate": 0.05,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d, want 201", resp.StatusCode)
	}

	// the WAL's disk goes bad: the next insert fails and degrades the table
	fsys.Inject(&vfs.Fault{Op: vfs.OpSync, Path: ".wal"})
	row := map[string]any{"rows": []map[string]any{{"point": []float64{3}, "value": 1.5}}}
	resp1, _ := postJSON(t, ts.URL+"/tables/sensors/rows", row)
	if resp1.StatusCode == http.StatusOK {
		t.Fatal("insert with failing WAL fsync should not succeed")
	}
	resp2, body := postJSON(t, ts.URL+"/tables/sensors/rows", row)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert into degraded table = %d (%v), want 503", resp2.StatusCode, body)
	}
	if !strings.Contains(body["error"].(string), "degraded") {
		t.Fatalf("503 body = %v, want the degraded cause", body)
	}

	// queries still serve
	qresp, qout := postJSON(t, ts.URL+"/query", map[string]any{"sql": "SELECT COUNT(*) FROM sensors"})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query on degraded table = %d %v, want 200", qresp.StatusCode, qout)
	}
	if r0 := qout["results"].([]any)[0].(map[string]any); r0["error"] != nil {
		t.Fatalf("query on degraded table errored: %v", r0["error"])
	}

	// the degraded table shows up in /readyz and GET /tables
	rbody := getJSON(t, ts.URL+"/readyz")
	deg, _ := rbody["degraded_tables"].([]any)
	if len(deg) != 1 || deg[0] != "sensors" {
		t.Fatalf("readyz degraded_tables = %v, want [sensors]", rbody)
	}
	tbody := getJSON(t, ts.URL+"/tables")
	ti := tbody["tables"].([]any)[0].(map[string]any)
	if ti["degraded"] != true || ti["degraded_cause"] == "" {
		t.Fatalf("table info = %v, want degraded with a cause", ti)
	}
}

// TestFaultScheduleFlagParses pins the -fault-schedule surface: the
// exact spec format documented in OPERATIONS.md must keep parsing.
func TestFaultScheduleFlagParses(t *testing.T) {
	rules, err := vfs.ParseSchedule("op=sync,path=.wal,after=10,count=1,err=eio;op=write,path=.snap,delay=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	if _, err := vfs.ParseSchedule("op=bogus"); err == nil {
		t.Fatal("invalid schedule must be rejected")
	}
	var sentinel error = vfs.ErrInjected
	if !errors.Is(rules[0].Err, sentinel) {
		t.Fatalf("eio rule error %v should wrap ErrInjected", rules[0].Err)
	}
}
