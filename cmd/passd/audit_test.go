package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pass"
)

// auditServer boots an httptest passd with adaptive serving plus the
// accuracy auditor in manual mode (scoring on AuditFlush, budgets on
// SLOEvaluate) and a metrics-history ring attached, mirroring what
// -audit-sample / -slo-* / -metrics-history wire up in main.
func auditServer(t *testing.T, cfg pass.AuditConfig) (*httptest.Server, *pass.Session, *server) {
	t.Helper()
	sess := pass.NewSession()
	if err := sess.EnableAdaptive(pass.AdaptiveConfig{CacheBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := sess.EnableAudit(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	srv := newServer(sess)
	registerCollectors(sess)
	obs.RegisterRuntimeMetrics(nil)
	srv.history = obs.NewHistory(nil, 64)
	srv.ready.Store(true)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, sess, srv
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestHTTPAuditReport drives queries over HTTP against an audited table
// and checks the whole reporting surface: GET /audit, the audit blocks
// on GET /tables, the clean /readyz, and the audit series plus runtime
// collectors on /metrics. A plain server answers 409 on the new routes.
func TestHTTPAuditReport(t *testing.T) {
	plain := testServer(t)
	if code := getStatus(t, plain.URL+"/audit"); code != http.StatusConflict {
		t.Fatalf("GET /audit without auditing: %d, want 409", code)
	}
	if code := getStatus(t, plain.URL+"/metrics/history"); code != http.StatusConflict {
		t.Fatalf("GET /metrics/history without history: %d, want 409", code)
	}

	ts, sess, _ := auditServer(t, pass.AuditConfig{
		SampleFraction: 1, QueueSize: 8192, Manual: true,
		SLOCoverage: 0.9, SLOMinEvents: 5, SLOWindowTicks: 4,
	})
	if resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "skew", "csv": skewCSV(3000), "partitions": 16, "sample_rate": 0.02, "seed": 3,
	}); resp.StatusCode != 201 {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	for i := 0; i < 15; i++ {
		queryScalar(t, ts.URL, hotRangeSQL)
		queryScalar(t, ts.URL, "SELECT COUNT(*) FROM skew WHERE x >= 100")
	}
	sess.AuditFlush()
	sess.SLOEvaluate()

	rep := getJSON(t, ts.URL+"/audit")
	if rep["sample_fraction"].(float64) != 1 {
		t.Fatalf("sample_fraction: %v", rep["sample_fraction"])
	}
	streams := rep["streams"].([]any)
	if len(streams) == 0 {
		t.Fatal("no audit streams after 30 audited queries")
	}
	var audited, hardViol float64
	for _, raw := range streams {
		st := raw.(map[string]any)
		if st["table"].(string) != "skew" {
			t.Fatalf("unexpected stream table: %v", st)
		}
		audited += st["audited"].(float64)
		hardViol += st["hard_violations"].(float64)
	}
	if audited == 0 || hardViol != 0 {
		t.Fatalf("audited=%v hard_violations=%v, want >0 and 0", audited, hardViol)
	}
	slo := rep["slo"].(map[string]any)
	if slo["breached"].(bool) || slo["evaluations"].(float64) == 0 {
		t.Fatalf("healthy SLO verdict wrong: %v", slo)
	}

	// the listing carries the session-wide audit block and per-table stats
	listing := getJSON(t, ts.URL+"/tables")
	ab := listing["audit"].(map[string]any)
	if ab["sample_fraction"].(float64) != 1 || ab["slo"] == nil {
		t.Fatalf("listing audit block: %v", ab)
	}
	tbl0 := listing["tables"].([]any)[0].(map[string]any)
	ta := tbl0["audit"].(map[string]any)
	if ta["audited"].(float64) == 0 || ta["coverage"].(float64) < 0.9 {
		t.Fatalf("per-table audit stats: %v", ta)
	}

	// healthy run: readyz stays clean of SLO annotations
	ready := getJSON(t, ts.URL+"/readyz")
	if ready["status"] != "ready" {
		t.Fatalf("readyz: %v", ready)
	}
	if _, ok := ready["slo_breached"]; ok {
		t.Fatalf("healthy readyz must not carry slo_breached: %v", ready)
	}

	// audit series and runtime collectors surface on /metrics
	samples := scrape(t, ts.URL)
	var sawAudit bool
	for name := range samples {
		if strings.HasPrefix(name, `pass_audit_audited_total{`) {
			sawAudit = true
		}
	}
	if !sawAudit {
		t.Fatal("no pass_audit_audited_total series on /metrics")
	}
	if samples["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", samples["go_goroutines"])
	}
	if samples["go_heap_bytes"] <= 0 {
		t.Fatalf("go_heap_bytes = %v, want > 0", samples["go_heap_bytes"])
	}
}

// TestHTTPReadyzSLOBreach arms an unmeetable latency objective, burns
// the budget, and checks the breach is visible on /readyz and /tables
// without flipping readiness.
func TestHTTPReadyzSLOBreach(t *testing.T) {
	ts, sess, _ := auditServer(t, pass.AuditConfig{
		SampleFraction: -1, Manual: true, // SLO only, nothing sampled
		SLOP99: time.Nanosecond, SLOMinEvents: 1, SLOWindowTicks: 4,
	})
	if resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "skew", "csv": skewCSV(500), "partitions": 8, "sample_rate": 0.05, "seed": 3,
	}); resp.StatusCode != 201 {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	sess.SLOEvaluate() // baseline tick
	for i := 0; i < 10; i++ {
		queryScalar(t, ts.URL, hotRangeSQL) // every query runs longer than 1ns
	}
	sess.SLOEvaluate()

	ready := getJSON(t, ts.URL+"/readyz")
	if ready["status"] != "ready" {
		t.Fatalf("SLO breach must not flip readiness: %v", ready)
	}
	if ready["slo_breached"] != true {
		t.Fatalf("readyz missing slo_breached: %v", ready)
	}
	causes := ready["slo_causes"].([]any)
	if len(causes) == 0 || causes[0].(map[string]any)["objective"] != "latency_p99" {
		t.Fatalf("slo_causes: %v", causes)
	}
	listing := getJSON(t, ts.URL+"/tables")
	slo := listing["audit"].(map[string]any)["slo"].(map[string]any)
	if slo["breached"] != true {
		t.Fatalf("listing SLO verdict: %v", slo)
	}
}

// TestHTTPMetricsHistory exercises the ring endpoint: trends plus raw
// samples by default, one series with ?series=, 400 on a bad window.
func TestHTTPMetricsHistory(t *testing.T) {
	ts, _, srv := auditServer(t, pass.AuditConfig{SampleFraction: 1, Manual: true})
	if resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "skew", "csv": skewCSV(500), "partitions": 8, "sample_rate": 0.05, "seed": 3,
	}); resp.StatusCode != 201 {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	srv.history.Record()
	for i := 0; i < 5; i++ {
		queryScalar(t, ts.URL, hotRangeSQL)
	}
	srv.history.Record()

	hist := getJSON(t, ts.URL+"/metrics/history")
	if hist["samples_held"].(float64) != 2 {
		t.Fatalf("samples_held: %v", hist["samples_held"])
	}
	if len(hist["samples"].([]any)) != 2 {
		t.Fatalf("samples: %v", hist["samples"])
	}
	trends := hist["trends"].(map[string]any)
	if _, ok := trends["qps"]; !ok {
		t.Fatalf("trends missing qps: %v", trends)
	}

	one := getJSON(t, ts.URL+"/metrics/history?series=pass_queries_total&window=5m")
	if one["series"] != "pass_queries_total" {
		t.Fatalf("series echo: %v", one["series"])
	}
	pts := one["points"].([]any)
	if len(pts) != 2 {
		t.Fatalf("points: %v", pts)
	}
	if _, ok := one["samples"]; ok {
		t.Fatal("?series= response must not carry the full samples")
	}
	if got := one["window_ms"].(float64); got != float64((5 * time.Minute).Milliseconds()) {
		t.Fatalf("window_ms echo: %v", got)
	}

	if code := getStatus(t, ts.URL+"/metrics/history?window=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad window: %d, want 400", code)
	}
}
