package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/jsonout"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/pass"
)

// server wraps a pass.Session as an HTTP JSON API. All table state lives
// in the session's catalog; the server itself is stateless and safe for
// concurrent requests.
type server struct {
	sess *pass.Session
	// buildDefaults are applied to POST /tables requests that omit them.
	buildDefaults buildOptions
	// queryTimeout bounds each /query request's execution; 0 means the
	// request runs until the client disconnects.
	queryTimeout time.Duration
	// maxBody caps request body size; oversized bodies get 413.
	maxBody int64
	// inflight is the admission semaphore: nil means unlimited, otherwise
	// a request that cannot acquire a slot immediately is rejected with
	// 503 rather than queued (load shedding, not buffering).
	inflight chan struct{}
	// ready flips true once warm start and demo loading complete, and back
	// to false when shutdown begins; /readyz reports it.
	ready atomic.Bool
	// prepared holds named server-side prepared statements (POST /prepare),
	// executed through POST /query with {"prepared": name, "params": [...]}.
	preparedMu sync.Mutex
	prepared   map[string]*pass.PreparedStmt
	// reqLog receives one structured JSON line per request; nil disables
	// request logging (metrics still record every request).
	reqLog *obs.JSONLog
	// pprofOn mounts net/http/pprof under /debug/pprof/ (-pprof flag).
	pprofOn bool
	// history is the metrics time-series ring behind GET /metrics/history;
	// nil disables the endpoint (-metrics-history 0).
	history *obs.History
}

// buildOptions mirrors the synopsis-construction knobs exposed over HTTP.
type buildOptions struct {
	Partitions int     `json:"partitions,omitempty"`
	SampleRate float64 `json:"sample_rate,omitempty"`
	SampleSize int     `json:"sample_size,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	// Shards > 1 builds a sharded scatter-gather engine: the table is
	// range-partitioned on its first predicate column, one synopsis per
	// shard, with per-shard persistence and update routing.
	Shards int `json:"shards,omitempty"`
}

func newServer(sess *pass.Session) *server {
	return &server{
		sess:          sess,
		buildDefaults: buildOptions{Partitions: 64, SampleRate: 0.005, Seed: 1},
		maxBody:       defaultMaxBody,
		prepared:      make(map[string]*pass.PreparedStmt),
	}
}

// defaultMaxBody caps request bodies at 32 MiB unless -max-body-mb says
// otherwise — large enough for bulk CSV loads, small enough that a single
// request cannot exhaust memory.
const defaultMaxBody = 32 << 20

// setMaxInflight installs the admission semaphore; n <= 0 disables it.
func (s *server) setMaxInflight(n int) {
	if n > 0 {
		s.inflight = make(chan struct{}, n)
	}
}

// handler routes the API:
//
//	POST   /query                    {"sql": "SELECT ...; SELECT ..."} → per-statement results
//	                                 {"prepared": name, "params": [...]} → execute a prepared statement
//	POST   /prepare                  {"name": ..., "sql": ...} → register a named prepared statement
//	DELETE /prepare/{name}           → forget a prepared statement
//	GET    /tables                   → registered tables (+ plan-cache/merge stats; adaptive stats when -adaptive)
//	POST   /tables                   {"name": ..., "csv": ..., opts} → build + register
//	POST   /tables/{name}/rows       {"rows": [{"point": [...], "value": ...}]} → insert (journaled when durable)
//	POST   /tables/{name}/reoptimize → force a workload-driven rebuild decision (with -adaptive)
//	DELETE /tables/{name}            → drop (persisted files removed too)
//	GET    /healthz                  → liveness (200 while the process serves)
//	GET    /readyz                   → readiness (503 until warm start completes / during shutdown)
//	GET    /metrics                  → Prometheus text exposition of the obs registry
//	/debug/pprof/*                   → runtime profiles (only with -pprof)
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("DELETE /prepare/{name}", s.handleDropPrepared)
	mux.HandleFunc("GET /tables", s.handleListTables)
	mux.HandleFunc("POST /tables", s.handleCreateTable)
	mux.HandleFunc("POST /tables/{name}/rows", s.handleInsertRows)
	mux.HandleFunc("POST /tables/{name}/reoptimize", s.handleReoptimize)
	mux.HandleFunc("DELETE /tables/{name}", s.handleDropTable)
	// health and metrics endpoints bypass admission control: an overloaded
	// server is still alive and still observable, and the probes and the
	// scraper must see it rather than be shed
	healthz := http.HandlerFunc(s.handleHealthz)
	readyz := http.HandlerFunc(s.handleReadyz)
	limited := s.admit(mux)
	outer := http.NewServeMux()
	outer.Handle("GET /healthz", healthz)
	outer.Handle("GET /readyz", readyz)
	outer.HandleFunc("GET /metrics", s.handleMetrics)
	outer.HandleFunc("GET /metrics/history", s.handleMetricsHistory)
	outer.HandleFunc("GET /audit", s.handleAudit)
	if s.pprofOn {
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	outer.Handle("/", limited)
	return s.logRequests(outer)
}

// admit is the load-shedding middleware: with -max-inflight set, a
// request that cannot take a slot immediately is answered 503 with a
// Retry-After hint instead of queueing behind the backlog.
func (s *server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server at capacity (%d requests in flight)", cap(s.inflight)))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// handleHealthz is the liveness probe: the process is up and the HTTP
// stack works. It says nothing about data or readiness.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 once warm start (and the demo
// preload) finished and until shutdown begins. The body also lists tables
// currently in read-only degraded mode — degraded tables still serve
// queries, so they do not flip readiness, but operators and load
// balancers can see them.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
		return
	}
	resp := map[string]any{"status": "ready"}
	if deg := s.sess.DegradedTables(); len(deg) > 0 {
		resp["degraded_tables"] = deg
	}
	// an exhausted SLO error budget does not flip readiness — the server
	// still serves — but the probe names the failing objective and table
	// so rollouts and operators see the accuracy regression
	if slo, ok := s.sess.SLOStatus(); ok && slo.Breached {
		resp["slo_breached"] = true
		resp["slo_causes"] = slo.Causes
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeJSON reads and decodes a JSON request body under the body-size
// cap, mapping failures to the right client error: 413 when the cap was
// exceeded, 400 for malformed JSON or trailing garbage. A false return
// means the response has been written.
func (s *server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	err := dec.Decode(v)
	if err == nil {
		// reject trailing garbage after the JSON document: the request is
		// malformed even though a prefix parsed
		if dec.More() {
			err = fmt.Errorf("unexpected data after JSON body")
		} else {
			return true
		}
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		return false
	}
	httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
	return false
}

// jsonStmtResult is one statement's outcome in a /query response.
type jsonStmtResult struct {
	SQL     string          `json:"sql"`
	Error   string          `json:"error,omitempty"`
	NoMatch bool            `json:"no_match,omitempty"`
	Scalar  *jsonout.Answer `json:"scalar,omitempty"`
	Groups  []jsonout.Group `json:"groups,omitempty"`
	Sketch  *jsonout.Sketch `json:"sketch,omitempty"`
	// Trace is the execution span tree of an EXPLAIN ANALYZE statement.
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

type queryRequest struct {
	SQL string `json:"sql"`
	// Statements is an alternative to SQL for pre-split batches.
	Statements []string `json:"statements,omitempty"`
	// Prepared names a statement registered via POST /prepare; Params are
	// its positional arguments (numbers and strings), one per placeholder.
	// Omitting Params executes with the literals it was prepared with.
	Prepared string `json:"prepared,omitempty"`
	Params   []any  `json:"params,omitempty"`
}

type queryResponse struct {
	Results []jsonStmtResult `json:"results"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	// the request context already ends on client disconnect or server
	// shutdown; -query-timeout adds the server-side execution deadline,
	// which scatter-gather tables propagate per shard
	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}
	var results []pass.StmtResult
	switch {
	case req.Prepared != "":
		s.preparedMu.Lock()
		ps, ok := s.prepared[req.Prepared]
		s.preparedMu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown prepared statement %q", req.Prepared))
			return
		}
		res, err := ps.ExecCtx(ctx, req.Params...)
		results = []pass.StmtResult{{SQL: ps.Text(), Result: res, Err: err}}
	case len(req.Statements) > 0:
		results = s.sess.ExecBatchCtx(ctx, req.Statements)
	case strings.TrimSpace(req.SQL) != "":
		results = s.sess.ExecScriptCtx(ctx, req.SQL)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"sql" (or "statements", or "prepared") is required`))
		return
	}
	resp := queryResponse{Results: make([]jsonStmtResult, len(results))}
	for i, sr := range results {
		out := jsonStmtResult{SQL: sr.SQL, Trace: sr.Result.Trace}
		switch {
		case errors.Is(sr.Err, pass.ErrNoMatch):
			out.NoMatch = true
		case sr.Err != nil:
			out.Error = sr.Err.Error()
		case sr.Result.Groups != nil:
			out.Groups = jsonout.FromGroups(sr.Result.Groups)
		case sr.Result.Sketch != nil:
			out.Sketch = jsonout.FromSketch(sr.Result.Sketch)
		default:
			out.Scalar = jsonout.FromAnswer(sr.Result.Scalar)
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePrepare registers a named prepared statement: normalized and
// compiled once, then executable through POST /query with
// {"prepared": name, "params": [...]}. Re-preparing a name replaces it.
func (s *server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		SQL  string `json:"sql"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Name) == "" || strings.TrimSpace(req.SQL) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"name" and "sql" are required`))
		return
	}
	ps, err := s.sess.Prepare(req.SQL)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.preparedMu.Lock()
	s.prepared[req.Name] = ps
	s.preparedMu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":       req.Name,
		"template":   ps.Text(),
		"num_params": ps.NumParams(),
	})
}

func (s *server) handleDropPrepared(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.preparedMu.Lock()
	_, ok := s.prepared[name]
	delete(s.prepared, name)
	s.preparedMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown prepared statement %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleListTables(w http.ResponseWriter, r *http.Request) {
	tables := s.sess.Tables()
	if tables == nil {
		tables = []pass.TableInfo{}
	}
	out := map[string]any{"tables": tables}
	pcs := s.sess.PlanCacheStats()
	out["plan_cache"] = map[string]any{
		"hits":      pcs.Hits,
		"misses":    pcs.Misses,
		"evictions": pcs.Evictions,
		"entries":   pcs.Entries,
		"capacity":  pcs.Capacity,
	}
	acquires, allocated := s.sess.MergePoolStats()
	out["merge_pool"] = map[string]any{
		"acquires":            acquires,
		"allocated":           allocated,
		"allocations_avoided": acquires - allocated,
	}
	// audit layer summary and SLO verdict, when auditing is on (the
	// per-table accuracy stats ride on each TableInfo.Audit)
	if rep, ok := s.sess.AuditReport(); ok {
		auditOut := map[string]any{
			"sample_fraction": rep.SampleFraction,
			"confidence":      rep.Confidence,
			"dropped":         rep.Dropped,
			"stale":           rep.Stale,
		}
		if rep.SLO != nil {
			auditOut["slo"] = rep.SLO
		}
		out["audit"] = auditOut
	}
	// session-wide semantic-cache counters, when adaptive serving is on
	if cs, ok := s.sess.CacheStats(); ok {
		out["cache"] = map[string]any{
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"hit_rate":  cs.HitRate(),
			"evicted":   cs.Evicted,
			"entries":   cs.Entries,
			"bytes":     cs.Bytes,
			"max_bytes": cs.MaxBytes,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReoptimize forces a re-optimization decision for one table: the
// manual counterpart of the background loop. The response carries the
// adaptive.Outcome — rebuilt or not, and why.
func (s *server) handleReoptimize(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.sess.Adaptive() {
		httpError(w, http.StatusConflict, fmt.Errorf("adaptive serving is off (start passd with -adaptive)"))
		return
	}
	out, err := s.sess.Reoptimize(name)
	if err != nil {
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "unknown table") {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

type createTableRequest struct {
	Name string `json:"name"`
	// CSV is the table data: a header row, numeric rows, last column the
	// aggregate.
	CSV string `json:"csv"`
	buildOptions
}

func (s *server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	req := createTableRequest{buildOptions: s.buildDefaults}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Name) == "" || strings.TrimSpace(req.CSV) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"name" and "csv" are required`))
		return
	}
	// names colliding with per-shard file naming would fail persistence
	// after the expensive build; reject the client mistake upfront
	if s.sess.Persistent() {
		if err := store.ValidateTableName(req.Name); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	tbl, err := pass.ReadCSV(strings.NewReader(req.CSV))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opt := pass.Options{
		Partitions: req.Partitions,
		SampleRate: req.SampleRate,
		SampleSize: req.SampleSize,
		Seed:       req.Seed,
	}
	persisted := s.sess.Persistent()
	if s.sess.Adaptive() {
		// the adaptive path retains the rows so the re-optimizer can
		// rebuild the table against the observed workload
		shards := req.Shards
		if shards < 1 {
			shards = 1
		}
		persisted, err := s.sess.RegisterAdaptive(req.Name, tbl, opt, shards)
		s.respondCreated(w, req.Name, err, persisted)
		return
	}
	if req.Shards > 1 {
		eng, schema, err := pass.BuildShardedEngine(tbl, opt, req.Shards)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		err = s.sess.RegisterEngine(req.Name, eng, schema)
		if errors.Is(err, engine.ErrNotSerializable) {
			persisted = false
			err = s.sess.RegisterEngineEphemeral(req.Name, eng, schema)
		}
		s.respondCreated(w, req.Name, err, persisted)
		return
	}
	syn, err := pass.BuildAuto(tbl, opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	err = s.sess.Register(req.Name, syn)
	if errors.Is(err, engine.ErrNotSerializable) {
		// the synopsis cannot be snapshotted (e.g. multi-dimensional):
		// serve it without durability and say so, rather than failing the
		// load or skipping persistence silently
		persisted = false
		err = s.sess.RegisterEphemeral(req.Name, syn)
	}
	s.respondCreated(w, req.Name, err, persisted)
}

// respondCreated maps a registration outcome to the create-table response:
// name collisions are conflicts, persistence failures are server faults,
// and success returns the registered table's info (shard stats included).
func (s *server) respondCreated(w http.ResponseWriter, name string, err error, persisted bool) {
	if err != nil {
		// only a name collision is a conflict; persistence failures (disk
		// full, I/O errors) are server-side faults, not client mistakes
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrExists) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	for _, ti := range s.sess.Tables() {
		if strings.EqualFold(ti.Name, name) {
			writeJSON(w, http.StatusCreated, createTableResponse{TableInfo: ti, Persisted: persisted})
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": name})
}

// createTableResponse is a TableInfo plus the durability outcome.
type createTableResponse struct {
	pass.TableInfo
	// Persisted reports whether the table was snapshotted into the data
	// directory (false when the server is ephemeral or the engine is not
	// serializable).
	Persisted bool `json:"persisted"`
}

// insertRowsRequest carries tuples for POST /tables/{name}/rows.
type insertRowsRequest struct {
	Rows []struct {
		// Point holds the predicate column values, in schema order.
		Point []float64 `json:"point"`
		// Value is the aggregate column value.
		Value float64 `json:"value"`
	} `json:"rows"`
}

func (s *server) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req insertRowsRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"rows" is required`))
		return
	}
	points := make([][]float64, len(req.Rows))
	values := make([]float64, len(req.Rows))
	for i, row := range req.Rows {
		points[i], values[i] = row.Point, row.Value
	}
	// one lock acquisition and one group-committed journal write for the
	// whole batch, not one fsync per row
	n, err := s.sess.InsertMany(name, points, values)
	if err != nil {
		// a degraded table rejects writes while reads keep serving: that is
		// a (possibly transient) server-side storage fault, not a bad request
		status := http.StatusUnprocessableEntity
		if errors.Is(err, store.ErrDegraded) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"error":    err.Error(),
			"inserted": n,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"inserted": n})
}

func (s *server) handleDropTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.sess.Drop(name); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
