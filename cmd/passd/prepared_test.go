package main

import (
	"math"
	"net/http"
	"testing"
)

// TestPreparedOverHTTP drives the prepared-statement lifecycle through
// the HTTP surface: prepare, execute with params, execute with the
// original literals, replace, and drop.
func TestPreparedOverHTTP(t *testing.T) {
	ts := testServer(t)
	resp, _ := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(4800), "partitions": 16, "sample_rate": 0.05,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create table: %d", resp.StatusCode)
	}

	resp, created := postJSON(t, ts.URL+"/prepare", map[string]any{
		"name": "daylight",
		"sql":  "SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("prepare: %d %v", resp.StatusCode, created)
	}
	if created["num_params"].(float64) != 2 {
		t.Fatalf("BETWEEN carries 2 params, got %v", created["num_params"])
	}

	scalar := func(out map[string]any) map[string]any {
		t.Helper()
		results := out["results"].([]any)
		r := results[0].(map[string]any)
		if e, ok := r["error"]; ok && e != "" {
			t.Fatalf("statement error: %v", e)
		}
		return r["scalar"].(map[string]any)
	}

	// bound params must twin the equivalent inline SQL
	resp, prepOut := postJSON(t, ts.URL+"/query", map[string]any{
		"prepared": "daylight", "params": []any{8, 16},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepared query: %d", resp.StatusCode)
	}
	_, sqlOut := postJSON(t, ts.URL+"/query", map[string]any{
		"sql": "SELECT SUM(light) FROM sensors WHERE hour BETWEEN 8 AND 16",
	})
	g := scalar(prepOut)["estimate"].(float64)
	w := scalar(sqlOut)["estimate"].(float64)
	if math.Abs(g-w) > 1e-12 {
		t.Fatalf("prepared %v vs inline %v", g, w)
	}

	// no params: the literals it was prepared with
	_, defOut := postJSON(t, ts.URL+"/query", map[string]any{"prepared": "daylight"})
	_, wantOut := postJSON(t, ts.URL+"/query", map[string]any{
		"sql": "SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18",
	})
	if g, w := scalar(defOut)["estimate"].(float64), scalar(wantOut)["estimate"].(float64); math.Abs(g-w) > 1e-12 {
		t.Fatalf("no-param exec %v vs original literals %v", g, w)
	}

	// unknown name → 404; compile error → 400
	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{"prepared": "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown prepared name: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/prepare", map[string]any{
		"name": "bad", "sql": "SELECT SUM(light) FROM missing WHERE hour >= 1",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("prepare against unknown table: %d", resp.StatusCode)
	}

	// drop, then the name is gone; double-drop → 404
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/prepare/daylight", nil)
	if err != nil {
		t.Fatal(err)
	}
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("drop prepared: %d", del.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{"prepared": "daylight"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dropped prepared name must 404, got %d", resp.StatusCode)
	}

	// /tables exposes the plan-cache and merge-pool counters
	tables := getJSON(t, ts.URL+"/tables")
	pc, ok := tables["plan_cache"].(map[string]any)
	if !ok {
		t.Fatalf("missing plan_cache in /tables: %v", tables)
	}
	if pc["hits"].(float64) < 1 {
		t.Fatalf("expected plan-cache hits after repeated shapes, got %v", pc)
	}
	if _, ok := tables["merge_pool"].(map[string]any); !ok {
		t.Fatalf("missing merge_pool in /tables: %v", tables)
	}
}
