package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/pass"
)

// obsServer is testServer plus the observability wiring main() performs:
// collectors bridged to the registry and a capturable request log.
func obsServer(t *testing.T) (*httptest.Server, *bytes.Buffer) {
	t.Helper()
	sess := pass.NewSession()
	srv := newServer(sess)
	registerCollectors(sess)
	var logBuf bytes.Buffer
	srv.reqLog = obs.NewJSONLog(&logBuf)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, &logBuf
}

// scrape fetches /metrics and parses the exposition into name → samples,
// failing the test on any line that is neither a comment nor a sample.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("non-numeric sample in %q: %v", line, err)
		}
		samples[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestMetricsEndpoint is the observability smoke scenario: after serving
// real queries, /metrics exposes nonzero latency histogram buckets and
// the bridged plan-cache and shard counters.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := obsServer(t)
	if resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(2400), "partitions": 16, "sample_rate": 0.05, "shards": 2,
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create table: HTTP %d (%v)", resp.StatusCode, body)
	}
	for i := 0; i < 3; i++ {
		if resp, body := postJSON(t, ts.URL+"/query", map[string]any{
			"sql": "SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18",
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("query: HTTP %d (%v)", resp.StatusCode, body)
		}
	}

	samples := scrape(t, ts.URL)
	if got := samples["pass_query_duration_seconds_count"]; got < 3 {
		t.Errorf("pass_query_duration_seconds_count = %v, want >= 3", got)
	}
	if got := samples[`pass_query_duration_seconds_bucket{le="+Inf"}`]; got < 3 {
		t.Errorf("+Inf bucket = %v, want >= 3", got)
	}
	// plan cache: first statement missed, the repeats hit
	if samples["pass_plan_cache_misses_total"] < 1 || samples["pass_plan_cache_hits_total"] < 2 {
		t.Errorf("plan cache hits=%v misses=%v, want >=2 / >=1",
			samples["pass_plan_cache_hits_total"], samples["pass_plan_cache_misses_total"])
	}
	// sharded table: scatter executions were recorded
	if got := samples["pass_shard_scatter_total"]; got < 1 {
		t.Errorf("pass_shard_scatter_total = %v, want >= 1", got)
	}
	if got := samples["pass_tables"]; got != 1 {
		t.Errorf("pass_tables = %v, want 1", got)
	}
	// the HTTP layer observed the requests above
	if got := samples["pass_http_requests_total"]; got < 4 {
		t.Errorf("pass_http_requests_total = %v, want >= 4", got)
	}
}

// TestRequestLog checks the structured per-request JSON log line.
func TestRequestLog(t *testing.T) {
	ts, logBuf := obsServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line, err := bufio.NewReader(logBuf).ReadString('\n')
	if err != nil {
		t.Fatalf("no request log line: %v", err)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("request log is not JSON: %v\n%s", err, line)
	}
	if rec["event"] != "http_request" || rec["method"] != "GET" || rec["path"] != "/healthz" {
		t.Errorf("record: %+v", rec)
	}
	if st, _ := rec["status"].(float64); st != http.StatusOK {
		t.Errorf("status = %v, want 200", rec["status"])
	}
	if b, _ := rec["bytes"].(float64); b <= 0 {
		t.Errorf("bytes = %v, want > 0", rec["bytes"])
	}
	if _, ok := rec["duration_ms"]; !ok {
		t.Error("missing duration_ms")
	}
	if _, ok := rec["ts"]; !ok {
		t.Error("missing ts")
	}
}

// TestExplainAnalyzeOverHTTP runs the twin over the wire: the traced
// statement carries a span tree and the identical answer.
func TestExplainAnalyzeOverHTTP(t *testing.T) {
	ts, _ := obsServer(t)
	if resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(2400), "partitions": 16, "sample_rate": 0.05,
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create table: HTTP %d (%v)", resp.StatusCode, body)
	}
	const q = "SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18"
	_, plain := postJSON(t, ts.URL+"/query", map[string]any{"sql": q})
	_, traced := postJSON(t, ts.URL+"/query", map[string]any{"sql": "EXPLAIN ANALYZE " + q})

	pr := plain["results"].([]any)[0].(map[string]any)
	tr := traced["results"].([]any)[0].(map[string]any)
	if pr["trace"] != nil {
		t.Error("plain statement must carry no trace")
	}
	trace, ok := tr["trace"].(map[string]any)
	if !ok {
		t.Fatalf("EXPLAIN ANALYZE response carries no trace: %v", tr)
	}
	if trace["name"] != "query" {
		t.Errorf("root span = %v, want query", trace["name"])
	}
	if d, _ := trace["duration_us"].(float64); d <= 0 {
		t.Errorf("root duration_us = %v, want > 0", trace["duration_us"])
	}
	if _, ok := trace["children"].([]any); !ok {
		t.Error("trace has no children (compile/execute spans missing)")
	}
	ps := pr["scalar"].(map[string]any)
	tsc := tr["scalar"].(map[string]any)
	if ps["estimate"] != tsc["estimate"] {
		t.Errorf("traced estimate %v differs from plain %v", tsc["estimate"], ps["estimate"])
	}
}

// TestPprofGate checks /debug/pprof/ is absent by default and mounted
// with -pprof.
func TestPprofGate(t *testing.T) {
	off := testServer(t)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Errorf("pprof served without -pprof (HTTP %d)", resp.StatusCode)
	}

	srv := newServer(pass.NewSession())
	srv.pprofOn = true
	on := httptest.NewServer(srv.handler())
	t.Cleanup(on.Close)
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index with -pprof: HTTP %d, want 200", resp.StatusCode)
	}
}
