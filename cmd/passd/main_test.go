package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/pass"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(pass.NewSession()).handler())
	t.Cleanup(ts.Close)
	return ts
}

// sensorCSV builds a deterministic CSV table: hour (0-23) predicting a
// light level.
func sensorCSV(rows int) string {
	var sb strings.Builder
	sb.WriteString("hour,light\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%0.1f\n", i%24, float64(i%100)/10)
	}
	return sb.String()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && resp.StatusCode != http.StatusNoContent {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp, out
}

// TestServeSQLEndToEnd loads a CSV over HTTP and queries it back through
// the catalog: the acceptance path of the layered architecture.
func TestServeSQLEndToEnd(t *testing.T) {
	ts := testServer(t)

	// load a table
	resp, created := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(4800), "partitions": 16, "sample_rate": 0.05,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create table: HTTP %d (%v)", resp.StatusCode, created)
	}
	if created["name"] != "sensors" || created["rows"].(float64) != 4800 {
		t.Errorf("created = %v", created)
	}

	// list it
	lresp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Tables []pass.TableInfo `json:"tables"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tables) != 1 || listing.Tables[0].Name != "sensors" ||
		listing.Tables[0].Engine != "PASS" || listing.Tables[0].MemoryBytes <= 0 {
		t.Errorf("tables = %+v", listing.Tables)
	}

	// query it: COUNT(*) with no predicate is exact
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{
		"sql": "SELECT COUNT(*) FROM sensors",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: HTTP %d (%v)", resp.StatusCode, body)
	}
	results := body["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	scalar := results[0].(map[string]any)["scalar"].(map[string]any)
	if got := scalar["estimate"].(float64); got != 4800 {
		t.Errorf("COUNT(*) = %v, want 4800", got)
	}

	// batched multi-statement script: answers arrive per statement
	resp, body = postJSON(t, ts.URL+"/query", map[string]any{
		"sql": "SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18; SELECT AVG(light) FROM sensors",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch query: HTTP %d", resp.StatusCode)
	}
	results = body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("batch results = %v", results)
	}
	for i, r := range results {
		rm := r.(map[string]any)
		if rm["error"] != nil || rm["scalar"] == nil {
			t.Errorf("statement %d: %v", i, rm)
		}
	}

	// drop it
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/tables/sensors", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("drop: HTTP %d", dresp.StatusCode)
	}
}

func TestServeUnknownTableAndErrors(t *testing.T) {
	ts := testServer(t)
	if _, created := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(1200), "partitions": 8, "sample_rate": 0.05,
	}); created["error"] != nil {
		t.Fatalf("create: %v", created["error"])
	}

	// unknown FROM table is a per-statement error naming the catalog
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{
		"sql": "SELECT COUNT(*) FROM nope",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	rm := body["results"].([]any)[0].(map[string]any)
	errMsg, _ := rm["error"].(string)
	if !strings.Contains(errMsg, "nope") || !strings.Contains(errMsg, "sensors") {
		t.Errorf("unknown-table error = %q, want it to name both tables", errMsg)
	}

	// duplicate registration → 409
	resp, _ = postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(10),
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create: HTTP %d, want 409", resp.StatusCode)
	}

	// malformed requests → 400
	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query: HTTP %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/tables", map[string]any{"name": "x", "csv": "not,a\nvalid"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad csv: HTTP %d, want 400", resp.StatusCode)
	}

	// dropping an unknown table → 404
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/tables/ghost", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("drop ghost: HTTP %d, want 404", dresp.StatusCode)
	}
}

func TestServeStatementsArray(t *testing.T) {
	ts := testServer(t)
	if _, created := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "t", "csv": sensorCSV(600), "partitions": 8, "sample_rate": 0.1,
	}); created["error"] != nil {
		t.Fatalf("create: %v", created["error"])
	}
	_, body := postJSON(t, ts.URL+"/query", map[string]any{
		"statements": []string{
			"SELECT COUNT(*) FROM t",
			"SELECT SUM(light) FROM t WHERE hour <= 12",
		},
	})
	results := body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	for i, r := range results {
		if rm := r.(map[string]any); rm["scalar"] == nil {
			t.Errorf("statement %d missing scalar: %v", i, rm)
		}
	}
}

// newPersistentServer builds a server over a durable session rooted at
// dir, returning the store handle so tests can simulate a crash (closing
// the store without a checkpoint).
func newPersistentServer(t *testing.T, dir string) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{CheckpointInterval: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sess := pass.NewSession()
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(sess).handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { st.Close() })
	return ts, st
}

func queryScalars(t *testing.T, url string, sql string) []map[string]any {
	t.Helper()
	resp, body := postJSON(t, url+"/query", map[string]any{"sql": sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q: HTTP %d (%v)", sql, resp.StatusCode, body)
	}
	results := body["results"].([]any)
	out := make([]map[string]any, len(results))
	for i, r := range results {
		rm := r.(map[string]any)
		if rm["error"] != nil {
			t.Fatalf("query %q stmt %d: %v", sql, i, rm["error"])
		}
		out[i] = rm["scalar"].(map[string]any)
	}
	return out
}

// TestPersistenceAcrossRestart is the acceptance path of the durable
// store: load a table over HTTP, insert rows that reach only the WAL,
// crash, restart against the same data dir — the table list and every
// answer must survive, with no synopsis rebuilt.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const script = "SELECT COUNT(*) FROM sensors; SELECT SUM(light) FROM sensors; SELECT AVG(light) FROM sensors WHERE hour BETWEEN 6 AND 18"

	ts1, st1 := newPersistentServer(t, dir)
	resp, created := postJSON(t, ts1.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(2400), "partitions": 16, "sample_rate": 0.05,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d (%v)", resp.StatusCode, created)
	}
	if created["persisted"] != true {
		t.Errorf("created = %v, want persisted=true", created)
	}

	// rows inserted AFTER the registration snapshot: they live only in the WAL
	rows := make([]map[string]any, 60)
	for i := range rows {
		rows[i] = map[string]any{"point": []float64{float64(i % 24)}, "value": float64(i) / 4}
	}
	resp, ins := postJSON(t, ts1.URL+"/tables/sensors/rows", map[string]any{"rows": rows})
	if resp.StatusCode != http.StatusOK || ins["inserted"].(float64) != 60 {
		t.Fatalf("insert rows: HTTP %d (%v)", resp.StatusCode, ins)
	}

	before := queryScalars(t, ts1.URL, script)

	// crash: no graceful shutdown, no final checkpoint
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, _ := newPersistentServer(t, dir)
	lresp, err := http.Get(ts2.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Tables []pass.TableInfo `json:"tables"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tables) != 1 || listing.Tables[0].Name != "sensors" ||
		listing.Tables[0].Engine != "PASS" || listing.Tables[0].Rows != 2400+60 {
		t.Fatalf("restarted tables = %+v, want sensors/PASS/%d rows", listing.Tables, 2400+60)
	}

	after := queryScalars(t, ts2.URL, script)
	for i := range before {
		b := before[i]["estimate"].(float64)
		a := after[i]["estimate"].(float64)
		diff := math.Abs(a - b)
		if diff > 1e-5*math.Max(math.Abs(b), 1) {
			t.Errorf("statement %d: answer drifted across restart: %v → %v", i, b, a)
		}
	}
	// COUNT(*) is exact on both sides: bit-for-bit equality required
	if before[0]["estimate"] != after[0]["estimate"] {
		t.Errorf("COUNT(*) = %v before, %v after", before[0]["estimate"], after[0]["estimate"])
	}
}

// TestDropRemovesPersistedTable: DELETE /tables/{name} must delete the
// snapshot+WAL so the table stays gone after a restart.
func TestDropRemovesPersistedTable(t *testing.T) {
	dir := t.TempDir()
	ts1, st1 := newPersistentServer(t, dir)
	if resp, created := postJSON(t, ts1.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(600), "partitions": 8, "sample_rate": 0.1,
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %v", created)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/tables/sensors", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("drop: HTTP %d", dresp.StatusCode)
	}
	ts1.Close()
	st1.Close()

	ts2, _ := newPersistentServer(t, dir)
	lresp, err := http.Get(ts2.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Tables []pass.TableInfo `json:"tables"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tables) != 0 {
		t.Errorf("dropped table resurrected after restart: %+v", listing.Tables)
	}
}

// TestInsertRowsValidation: unknown tables and empty bodies are rejected.
func TestInsertRowsValidation(t *testing.T) {
	ts := testServer(t)
	resp, _ := postJSON(t, ts.URL+"/tables/ghost/rows", map[string]any{
		"rows": []map[string]any{{"point": []float64{1}, "value": 1}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("insert into ghost: HTTP %d, want 422", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/tables/ghost/rows", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty insert: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestShardedTableOverHTTP: creating a table with "shards" builds a
// sharded scatter-gather engine, GET /tables surfaces the shard stats,
// and a kill + warm start restores the router from the manifest with
// answers intact.
func TestShardedTableOverHTTP(t *testing.T) {
	dir := t.TempDir()
	const script = "SELECT COUNT(*) FROM sensors; SELECT SUM(light) FROM sensors; SELECT AVG(light) FROM sensors WHERE hour BETWEEN 6 AND 18"

	ts, st := newPersistentServer(t, dir)
	resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(3000), "partitions": 16, "shards": 4,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create sharded table: HTTP %d (%v)", resp.StatusCode, body)
	}
	if body["persisted"] != true {
		t.Errorf("sharded table not persisted: %v", body)
	}
	if got, want := body["shards"], float64(4); got != want {
		t.Errorf("create response shards = %v, want %v", got, want)
	}
	if body["shard_policy"] != "range" {
		t.Errorf("shard_policy = %v, want range", body["shard_policy"])
	}

	// shard stats in the listing
	lresp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Tables []pass.TableInfo `json:"tables"`
	}
	err = json.NewDecoder(lresp.Body).Decode(&listing)
	lresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Tables) != 1 || listing.Tables[0].Shards != 4 || len(listing.Tables[0].ShardRows) != 4 {
		t.Fatalf("listing = %+v, want one 4-shard table with per-shard rows", listing.Tables)
	}
	rowSum := 0
	for _, r := range listing.Tables[0].ShardRows {
		rowSum += r
	}
	if rowSum != 3000 {
		t.Errorf("shard rows sum to %d, want 3000", rowSum)
	}

	// journaled insert, then crash without checkpoint
	resp, body = postJSON(t, ts.URL+"/tables/sensors/rows", map[string]any{
		"rows": []map[string]any{
			{"point": []float64{3}, "value": 2.5},
			{"point": []float64{21}, "value": 7.5},
		},
	})
	if resp.StatusCode != http.StatusOK || body["inserted"] != float64(2) {
		t.Fatalf("insert rows: HTTP %d (%v)", resp.StatusCode, body)
	}
	before := queryScalars(t, ts.URL, script)
	ts.Close()
	st.Close()

	ts2, _ := newPersistentServer(t, dir)
	after := queryScalars(t, ts2.URL, script)
	for i := range before {
		wantEst := before[i]["estimate"].(float64)
		gotEst := after[i]["estimate"].(float64)
		if math.Abs(gotEst-wantEst) > 1e-6*math.Max(1, math.Abs(wantEst)) {
			t.Errorf("statement %d: estimate %v after restart, want %v", i, gotEst, wantEst)
		}
	}
	if before[0]["estimate"].(float64) != 3002 {
		t.Errorf("COUNT before crash = %v, want 3002", before[0]["estimate"])
	}
}

// TestCreateTableReservedNameRejectedUpfront: on a durable server a name
// colliding with per-shard file naming is a client error, caught before
// the synopsis build.
func TestCreateTableReservedNameRejectedUpfront(t *testing.T) {
	ts, _ := newPersistentServer(t, t.TempDir())
	resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "logs.s0", "csv": sensorCSV(100),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reserved name: HTTP %d (%v), want 400", resp.StatusCode, body)
	}
}
