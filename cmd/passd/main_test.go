package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/pass"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(pass.NewSession()).handler())
	t.Cleanup(ts.Close)
	return ts
}

// sensorCSV builds a deterministic CSV table: hour (0-23) predicting a
// light level.
func sensorCSV(rows int) string {
	var sb strings.Builder
	sb.WriteString("hour,light\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%0.1f\n", i%24, float64(i%100)/10)
	}
	return sb.String()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && resp.StatusCode != http.StatusNoContent {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp, out
}

// TestServeSQLEndToEnd loads a CSV over HTTP and queries it back through
// the catalog: the acceptance path of the layered architecture.
func TestServeSQLEndToEnd(t *testing.T) {
	ts := testServer(t)

	// load a table
	resp, created := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(4800), "partitions": 16, "sample_rate": 0.05,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create table: HTTP %d (%v)", resp.StatusCode, created)
	}
	if created["name"] != "sensors" || created["rows"].(float64) != 4800 {
		t.Errorf("created = %v", created)
	}

	// list it
	lresp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Tables []pass.TableInfo `json:"tables"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tables) != 1 || listing.Tables[0].Name != "sensors" ||
		listing.Tables[0].Engine != "PASS" || listing.Tables[0].MemoryBytes <= 0 {
		t.Errorf("tables = %+v", listing.Tables)
	}

	// query it: COUNT(*) with no predicate is exact
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{
		"sql": "SELECT COUNT(*) FROM sensors",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: HTTP %d (%v)", resp.StatusCode, body)
	}
	results := body["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	scalar := results[0].(map[string]any)["scalar"].(map[string]any)
	if got := scalar["estimate"].(float64); got != 4800 {
		t.Errorf("COUNT(*) = %v, want 4800", got)
	}

	// batched multi-statement script: answers arrive per statement
	resp, body = postJSON(t, ts.URL+"/query", map[string]any{
		"sql": "SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18; SELECT AVG(light) FROM sensors",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch query: HTTP %d", resp.StatusCode)
	}
	results = body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("batch results = %v", results)
	}
	for i, r := range results {
		rm := r.(map[string]any)
		if rm["error"] != nil || rm["scalar"] == nil {
			t.Errorf("statement %d: %v", i, rm)
		}
	}

	// drop it
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/tables/sensors", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("drop: HTTP %d", dresp.StatusCode)
	}
}

func TestServeUnknownTableAndErrors(t *testing.T) {
	ts := testServer(t)
	if _, created := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(1200), "partitions": 8, "sample_rate": 0.05,
	}); created["error"] != nil {
		t.Fatalf("create: %v", created["error"])
	}

	// unknown FROM table is a per-statement error naming the catalog
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{
		"sql": "SELECT COUNT(*) FROM nope",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	rm := body["results"].([]any)[0].(map[string]any)
	errMsg, _ := rm["error"].(string)
	if !strings.Contains(errMsg, "nope") || !strings.Contains(errMsg, "sensors") {
		t.Errorf("unknown-table error = %q, want it to name both tables", errMsg)
	}

	// duplicate registration → 409
	resp, _ = postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "sensors", "csv": sensorCSV(10),
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create: HTTP %d, want 409", resp.StatusCode)
	}

	// malformed requests → 400
	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query: HTTP %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/tables", map[string]any{"name": "x", "csv": "not,a\nvalid"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad csv: HTTP %d, want 400", resp.StatusCode)
	}

	// dropping an unknown table → 404
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/tables/ghost", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("drop ghost: HTTP %d, want 404", dresp.StatusCode)
	}
}

func TestServeStatementsArray(t *testing.T) {
	ts := testServer(t)
	if _, created := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "t", "csv": sensorCSV(600), "partitions": 8, "sample_rate": 0.1,
	}); created["error"] != nil {
		t.Fatalf("create: %v", created["error"])
	}
	_, body := postJSON(t, ts.URL+"/query", map[string]any{
		"statements": []string{
			"SELECT COUNT(*) FROM t",
			"SELECT SUM(light) FROM t WHERE hour <= 12",
		},
	})
	results := body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	for i, r := range results {
		if rm := r.(map[string]any); rm["scalar"] == nil {
			t.Errorf("statement %d missing scalar: %v", i, rm)
		}
	}
}
