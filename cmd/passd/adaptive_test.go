package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/pass"
)

// getJSON fetches and decodes a GET endpoint.
func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return out
}

// adaptiveServer spins up an httptest passd with adaptive serving on
// (manual re-optimization, 1 MiB cache).
func adaptiveServer(t *testing.T) *httptest.Server {
	t.Helper()
	sess := pass.NewSession()
	if err := sess.EnableAdaptive(pass.AdaptiveConfig{CacheBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	ts := httptest.NewServer(newServer(sess).handler())
	t.Cleanup(ts.Close)
	return ts
}

// skewCSV builds a high-variance 1D table the hot-range queries stay
// inexact on until a workload-aligned rebuild.
func skewCSV(rows int) string {
	var sb strings.Builder
	sb.WriteString("x,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%g\n", i, float64(i%97)+50*float64(i%13))
	}
	return sb.String()
}

func queryScalar(t *testing.T, url, sql string) map[string]any {
	t.Helper()
	_, out := postJSON(t, url+"/query", map[string]any{"sql": sql})
	results := out["results"].([]any)
	r0 := results[0].(map[string]any)
	if e, ok := r0["error"]; ok {
		t.Fatalf("query %q: %v", sql, e)
	}
	if r0["no_match"] == true {
		return nil
	}
	return r0["scalar"].(map[string]any)
}

const hotRangeSQL = "SELECT SUM(v) FROM skew WHERE x BETWEEN 123 AND 777"

// TestHTTPAdaptiveTwinAndInvalidation is the HTTP-level twin test: an
// adaptive (cached) server and a plain one over the same CSV must agree
// on every answer — including after inserts, which must invalidate the
// cache.
func TestHTTPAdaptiveTwinAndInvalidation(t *testing.T) {
	adaptiveTS, plainTS := adaptiveServer(t), testServer(t)
	csv := skewCSV(4000)
	for _, ts := range []*httptest.Server{adaptiveTS, plainTS} {
		resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
			"name": "skew", "csv": csv, "partitions": 16, "sample_rate": 0.02, "seed": 3,
		})
		if resp.StatusCode != 201 {
			t.Fatalf("create: %d %v", resp.StatusCode, body)
		}
	}
	stmts := []string{
		hotRangeSQL,
		"SELECT COUNT(*) FROM skew WHERE x >= 100",
		"SELECT AVG(v) FROM skew WHERE x BETWEEN 50 AND 3000",
		"SELECT MIN(v) FROM skew WHERE x BETWEEN 999999 AND 1000000", // empty
		hotRangeSQL, // repeat: cache hit on the adaptive server
	}
	compare := func(round string) {
		t.Helper()
		for _, sql := range stmts {
			got := queryScalar(t, adaptiveTS.URL, sql)
			want := queryScalar(t, plainTS.URL, sql)
			if (got == nil) != (want == nil) {
				t.Fatalf("%s %q: no_match mismatch (%v vs %v)", round, sql, got, want)
			}
			if got == nil {
				continue
			}
			ge, we := got["estimate"].(float64), want["estimate"].(float64)
			if math.Abs(ge-we) > 1e-12 {
				t.Fatalf("%s %q: adaptive %v vs plain %v", round, sql, ge, we)
			}
		}
	}
	compare("cold")
	compare("warm")

	// the warm round must have produced cache hits, visible in GET /tables
	listing := getJSON(t, adaptiveTS.URL+"/tables")
	cache := listing["cache"].(map[string]any)
	if cache["hits"].(float64) == 0 {
		t.Fatalf("no cache hits recorded: %v", cache)
	}
	tbl0 := listing["tables"].([]any)[0].(map[string]any)
	ad := tbl0["adaptive"].(map[string]any)
	if ad["cache_hits"].(float64) == 0 || ad["window_queries"].(float64) == 0 {
		t.Fatalf("per-table adaptive stats missing: %v", ad)
	}

	// inserts through the HTTP path invalidate cached answers
	rows := []map[string]any{}
	for i := 0; i < 20; i++ {
		rows = append(rows, map[string]any{"point": []float64{float64(200 + i)}, "value": 500.5})
	}
	for _, ts := range []*httptest.Server{adaptiveTS, plainTS} {
		if resp, body := postJSON(t, ts.URL+"/tables/skew/rows", map[string]any{"rows": rows}); resp.StatusCode != 200 {
			t.Fatalf("insert: %d %v", resp.StatusCode, body)
		}
	}
	compare("post-insert")
}

// TestHTTPReoptimize drives a skewed workload over HTTP, triggers the
// manual re-optimization endpoint, and asserts the hot range flips from
// estimated to exact while the answer stays consistent.
func TestHTTPReoptimize(t *testing.T) {
	ts := adaptiveServer(t)
	if resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "skew", "csv": skewCSV(4000), "partitions": 16, "sample_rate": 0.02, "seed": 3,
	}); resp.StatusCode != 201 {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	var before map[string]any
	for i := 0; i < 10; i++ {
		before = queryScalar(t, ts.URL, hotRangeSQL)
	}
	if before["exact"] == true {
		t.Fatal("premise broken: hot range already exact")
	}
	resp, out := postJSON(t, ts.URL+"/tables/skew/reoptimize", map[string]any{})
	if resp.StatusCode != 200 || out["rebuilt"] != true {
		t.Fatalf("reoptimize: %d %v", resp.StatusCode, out)
	}
	after := queryScalar(t, ts.URL, hotRangeSQL)
	if after["exact"] != true {
		t.Fatalf("hot range still inexact after re-optimization: %v", after)
	}
	// re-optimization history lands in GET /tables
	listing := getJSON(t, ts.URL+"/tables")
	ad := listing["tables"].([]any)[0].(map[string]any)["adaptive"].(map[string]any)
	if ad["rebuilds"].(float64) != 1 || ad["rebuildable"] != true {
		t.Fatalf("adaptive info = %v", ad)
	}

	// unknown table and non-adaptive server error paths
	if resp, _ := postJSON(t, ts.URL+"/tables/nope/reoptimize", map[string]any{}); resp.StatusCode != 404 {
		t.Fatalf("reoptimize unknown table: %d", resp.StatusCode)
	}
	plain := testServer(t)
	if resp, _ := postJSON(t, plain.URL+"/tables/skew/reoptimize", map[string]any{}); resp.StatusCode != 409 {
		t.Fatalf("reoptimize without -adaptive: %d", resp.StatusCode)
	}
}

// TestHTTPAdaptiveConcurrentInsertQuery hammers the cached query path
// while rows stream in over HTTP: per-goroutine counts must never
// decrease (the HTTP-level stale-read check).
func TestHTTPAdaptiveConcurrentInsertQuery(t *testing.T) {
	ts := adaptiveServer(t)
	if resp, body := postJSON(t, ts.URL+"/tables", map[string]any{
		"name": "skew", "csv": skewCSV(2000), "partitions": 16, "sample_rate": 0.05, "seed": 3,
	}); resp.StatusCode != 201 {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	const countSQL = "SELECT COUNT(*) FROM skew WHERE x >= 0"
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				sc := queryScalar(t, ts.URL, countSQL)
				if est := sc["estimate"].(float64); est < last {
					t.Errorf("stale cached count %v after %v", est, last)
					return
				} else {
					last = est
				}
			}
		}()
	}
	const inserts = 60
	for i := 0; i < inserts; i++ {
		postJSON(t, ts.URL+"/tables/skew/rows", map[string]any{
			"rows": []map[string]any{{"point": []float64{float64(i)}, "value": 1}},
		})
	}
	close(stop)
	wg.Wait()
	if got := queryScalar(t, ts.URL, countSQL)["estimate"].(float64); got != 2000+inserts {
		t.Fatalf("final count = %v, want %d", got, 2000+inserts)
	}
}
