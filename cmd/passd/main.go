// Command passd serves approximate SQL over HTTP: a pass.Session catalog
// of named tables (each a PASS synopsis), a JSON query endpoint with
// batched multi-statement execution, and CSV table loading — the serving
// layer of the repository's architecture:
//
//	sqlfe (SQL) → pass.Session / catalog → engine → synopsis
//	                       ↓
//	          internal/store (snapshots + WAL)
//
// Endpoints:
//
//	POST   /query                    {"sql": "SELECT AVG(light) FROM sensors WHERE time >= 6"}
//	                                 multi-statement scripts are batched: "SELECT ...; SELECT ..."
//	GET    /tables                   list registered tables (+ adaptive/cache stats with -adaptive)
//	POST   /tables                   {"name": "sensors", "csv": "time,light\n1,0.5\n...", "partitions": 64}
//	POST   /tables/{name}/rows       {"rows": [{"point": [13], "value": 0.7}]} insert tuples
//	POST   /tables/{name}/reoptimize force a workload-driven rebuild decision (with -adaptive)
//	DELETE /tables/{name}            drop a table (and its persisted files)
//	GET    /healthz                  liveness probe (always 200 while serving)
//	GET    /readyz                   readiness probe (503 until warm start completes / during shutdown)
//	GET    /metrics                  Prometheus text exposition of the process metrics registry
//	/debug/pprof/*                   runtime profiles (only with -pprof)
//
// Observability: every request is logged as one structured JSON line on
// stderr (method, path, status, duration, bytes); -slow-query-ms adds a
// slow-query log of normalized statement templates (literals elided);
// EXPLAIN ANALYZE prefixed to any statement returns its execution span
// tree in the response without changing the answer; and
// -metrics-report-every emits a periodic latency self-report. See
// docs/OPERATIONS.md, "Monitoring & tracing".
//
// The serving path is hardened for operation under failure: request
// bodies are capped (-max-body-mb → 413), concurrency is bounded
// (-max-inflight → immediate 503 load shedding), every /query runs under
// a server-side deadline (-query-timeout) that sharded tables propagate
// per shard — a shard that misses the deadline is dropped from the merge
// and the answer comes back marked degraded with widened error bounds
// (or fails outright with -strict-scatter). Storage faults (failed WAL
// fsyncs, checkpoint write errors) flip the affected table into read-only
// degraded mode: queries keep serving, writes return the cause, and a
// successful checkpoint or restart recovers. -fault-schedule injects such
// faults deterministically for drills (see internal/vfs).
//
// With -adaptive the server closes the loop between the query log and the
// synopses: every query feeds a per-table sliding-window workload
// statistic, repeated predicates are served from a semantic result cache
// (-cache-mb, invalidated by writes through per-table generations), and a
// background re-optimizer (-reopt-every) rebuilds tables whose observed
// workload drifted from their partitioning, forcing partition boundaries
// onto the hot query endpoints so repeated ranges are answered exactly.
// See docs/OPERATIONS.md for the full flag and endpoint reference.
//
// With -data-dir the catalog is durable: tables are snapshotted into the
// directory, inserts and deletes are write-ahead journaled, a background
// checkpointer folds grown logs back into snapshots, and a restart against
// the same directory restores every table — synopsis bytes, schema and
// journaled updates — without rebuilding anything. SIGINT/SIGTERM trigger
// a graceful shutdown: in-flight requests drain, a final checkpoint runs,
// and the process exits 0.
//
// Quickstart:
//
//	passd -listen :8080 -data-dir ./passd-data &
//	curl -s localhost:8080/tables -d '{"name":"demo","csv":"'"$(passgen -name intel -n 10000 | tr '\n' ';' | sed 's/;/\\n/g')"'"}'
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) FROM demo"}'
//
// A demo table can be preloaded at startup with -demo.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vfs"
	"repro/pass"
)

func main() {
	var (
		listen     = flag.String("listen", ":8080", "listen address")
		demo       = flag.String("demo", "", "preload a demo dataset as table 'demo' (intel, instacart, nyctaxi, uniform, adversarial)")
		demoRows   = flag.Int("demo-rows", 60000, "demo dataset size")
		partitions = flag.Int("partitions", 64, "default leaf partitions for loaded tables")
		rate       = flag.Float64("rate", 0.005, "default sample rate for loaded tables")
		seed       = flag.Uint64("seed", 1, "default build seed")
		shards     = flag.Int("shards", 1, "default shard count for created tables (>1 = sharded scatter-gather engine)")
		dataDir    = flag.String("data-dir", "", "durable storage directory: snapshots + write-ahead logs (empty = in-memory only)")
		ckptEvery  = flag.Duration("checkpoint-every", 5*time.Second, "background checkpointer scan interval")
		walMax     = flag.Int("wal-threshold", 4096, "journaled updates per table before a background checkpoint")
		noSync     = flag.Bool("no-sync", false, "skip the per-update WAL fsync (faster, loses the journal tail on machine crash)")
		adaptive   = flag.Bool("adaptive", false, "workload-adaptive serving: query statistics, semantic result cache, background re-optimization of drifted tables")
		cacheMB    = flag.Int("cache-mb", 64, "semantic result cache budget in MiB (with -adaptive; 0 disables the cache)")
		reoptEvery = flag.Duration("reopt-every", 30*time.Second, "background re-optimization scan interval (with -adaptive; 0 = manual POST /tables/{name}/reoptimize only)")

		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "server-side deadline per /query request; sharded tables drop shards that miss it and answer degraded (0 = none)")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent request cap: excess requests get 503 immediately instead of queueing (0 = unlimited)")
		maxBodyMB    = flag.Int("max-body-mb", 32, "request body cap in MiB; oversized bodies get 413")
		httpTimeout  = flag.Duration("http-timeout", 2*time.Minute, "HTTP read/write timeouts on the listener (slow-client defense; 0 = none)")
		strictMode   = flag.Bool("strict-scatter", false, "fail sharded queries that lose any shard instead of returning degraded partial answers")
		faultSpec    = flag.String("fault-schedule", "", "inject storage faults for testing, e.g. 'op=sync,path=.wal,after=10,count=1,err=eio' (see internal/vfs)")
		planCache    = flag.Int("plan-cache-size", pass.DefaultPlanCacheSize, "prepared-plan cache capacity in distinct query shapes (0 disables plan caching)")

		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the listen address")
		slowQueryMS = flag.Int("slow-query-ms", -1, "log statements slower than this many milliseconds as JSON lines on stderr (0 = log every statement, negative = off)")
		reportEvery = flag.Duration("metrics-report-every", 0, "emit a periodic JSON self-report of latency histograms and headline counters to stderr (0 = off)")

		auditSample = flag.Float64("audit-sample", 0, "continuously audit this fraction of completed queries against exact ground truth (0 = off; needs -adaptive tables for scoring)")
		auditEvery  = flag.Duration("audit-every", time.Second, "audit worker scoring cadence")
		auditQueue  = flag.Int("audit-queue", 1024, "pending audit samples before overflow drops")
		sloCoverage = flag.Float64("slo-coverage", 0, "SLO: minimum empirical CI coverage per table, e.g. 0.95 (0 = objective off; implies auditing)")
		sloP99MS    = flag.Int("slo-p99-ms", 0, "SLO: at most 1% of queries may run longer than this many milliseconds (0 = objective off)")
		sloEvery    = flag.Duration("slo-every", 5*time.Second, "SLO error-budget evaluation cadence")
		sloWindow   = flag.Int("slo-window", 60, "SLO budget window in evaluation ticks")
		histLen     = flag.Int("metrics-history", obs.DefaultHistoryCapacity, "metrics history ring capacity in samples served by GET /metrics/history (0 = off)")
		histEvery   = flag.Duration("metrics-history-every", 5*time.Second, "metrics history snapshot cadence")
	)
	flag.Parse()

	sess := pass.NewSession()
	if *planCache != pass.DefaultPlanCacheSize {
		sess.SetPlanCacheSize(*planCache)
	}
	// strict mode must be set before any table registers or warm-starts so
	// every sharded engine picks it up
	sess.SetStrictScatter(*strictMode)
	if *adaptive {
		cacheBytes := *cacheMB << 20
		if *cacheMB <= 0 {
			cacheBytes = -1
		}
		// enable before the store attaches so warm-started tables join the
		// statistics and cache too
		if err := sess.EnableAdaptive(pass.AdaptiveConfig{
			ReoptInterval: *reoptEvery,
			CacheBytes:    cacheBytes,
			Logf:          log.Printf,
		}); err != nil {
			fatal(err)
		}
		log.Printf("passd: adaptive serving on (cache %d MiB, re-optimize every %s)", *cacheMB, *reoptEvery)
	}
	if *auditSample > 0 || *sloCoverage > 0 || *sloP99MS > 0 {
		// enable before tables register (demo, CSV loads, warm start) so
		// every table gets the tap; fraction -1 arms only the SLO monitor
		fraction := *auditSample
		if fraction <= 0 {
			fraction = -1
		}
		if err := sess.EnableAudit(pass.AuditConfig{
			SampleFraction: fraction,
			Interval:       *auditEvery,
			QueueSize:      *auditQueue,
			SLOCoverage:    *sloCoverage,
			SLOP99:         time.Duration(*sloP99MS) * time.Millisecond,
			SLOInterval:    *sloEvery,
			SLOWindowTicks: *sloWindow,
			AlertLog:       os.Stderr,
		}); err != nil {
			fatal(err)
		}
		log.Printf("passd: accuracy auditing on (sample %.2f, slo coverage %.2f, slo p99 %dms)",
			*auditSample, *sloCoverage, *sloP99MS)
	}
	if *dataDir != "" {
		opts := store.Options{
			WALThreshold:       *walMax,
			CheckpointInterval: *ckptEvery,
			NoSync:             *noSync,
			Logf:               log.Printf,
		}
		if *faultSpec != "" {
			rules, err := vfs.ParseSchedule(*faultSpec)
			if err != nil {
				fatal(fmt.Errorf("-fault-schedule: %w", err))
			}
			opts.FS = vfs.NewFaultFS(vfs.OS(), rules...)
			log.Printf("passd: FAULT INJECTION ON: %d rule(s) armed (%s)", len(rules), *faultSpec)
		}
		st, err := store.Open(*dataDir, opts)
		if err != nil {
			fatal(err)
		}
		n, err := sess.AttachStore(st)
		if err != nil {
			fatal(fmt.Errorf("warm start from %s: %w", *dataDir, err))
		}
		log.Printf("passd: warm start: restored %d table(s) from %s", n, *dataDir)
	}

	srv := newServer(sess)
	srv.buildDefaults = buildOptions{Partitions: *partitions, SampleRate: *rate, Seed: *seed, Shards: *shards}
	srv.queryTimeout = *queryTimeout
	if *maxBodyMB > 0 {
		srv.maxBody = int64(*maxBodyMB) << 20
	}
	srv.setMaxInflight(*maxInflight)
	srv.pprofOn = *pprofOn

	// observability: the structured logs share one encoder on stderr, the
	// session stats are bridged into the metrics registry for GET /metrics,
	// and the optional self-report heartbeat runs until shutdown
	stderrLog := obs.NewJSONLog(os.Stderr)
	srv.reqLog = stderrLog
	if *slowQueryMS >= 0 {
		sess.SetSlowQueryLog(os.Stderr, time.Duration(*slowQueryMS)*time.Millisecond)
		log.Printf("passd: slow-query log on (threshold %dms)", *slowQueryMS)
	}
	registerCollectors(sess)
	obs.RegisterRuntimeMetrics(nil)
	if *histLen > 0 {
		hist := obs.NewHistory(nil, *histLen)
		hist.Start(*histEvery)
		defer hist.Stop()
		srv.history = hist
	}
	reportCtx, stopReport := context.WithCancel(context.Background())
	defer stopReport()
	startSelfReport(reportCtx, *reportEvery, stderrLog)
	if *pprofOn {
		log.Printf("passd: pprof endpoints on %s/debug/pprof/", *listen)
	}

	if *demo != "" {
		if err := loadDemo(sess, *demo, *demoRows, *partitions, *rate, *seed, *shards); err != nil {
			fatal(err)
		}
	}

	// slow-client defense: bound how long a peer may dribble headers and
	// bodies, and how long a response write may hang on a stalled reader.
	// The write timeout must cover -query-timeout or the server would cut
	// off responses for queries it promised to run that long.
	writeTimeout := *httpTimeout
	if *queryTimeout > 0 && writeTimeout > 0 && writeTimeout < *queryTimeout+10*time.Second {
		writeTimeout = *queryTimeout + 10*time.Second
	}
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *httpTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	srv.ready.Store(true)
	errCh := make(chan error, 1)
	go func() {
		log.Printf("passd: listening on %s", *listen)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		fatal(err)
	case sig := <-sigCh:
		log.Printf("passd: received %s, shutting down", sig)
	}
	// flip readiness first so load balancers drain us while in-flight
	// requests finish under Shutdown below
	srv.ready.Store(false)

	// graceful shutdown: stop accepting requests and drain in-flight ones,
	// then flush every journaled update into its snapshot
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("passd: HTTP shutdown: %v", err)
	}
	if err := sess.Close(); err != nil {
		fatal(fmt.Errorf("final checkpoint: %w", err))
	}
	if sess.Persistent() {
		log.Printf("passd: state checkpointed; clean exit")
	}
}

// loadDemo builds and registers the -demo table, sharded when -shards > 1.
// A demo whose synopsis cannot be persisted (multi-dimensional) is served
// ephemerally rather than aborting startup.
func loadDemo(sess *pass.Session, name string, rows, partitions int, rate float64, seed uint64, shards int) error {
	if existing := sess.Tables(); len(existing) > 0 {
		for _, t := range existing {
			if t.Name == "demo" {
				log.Printf("passd: demo table already restored from the data dir; skipping rebuild")
				return nil
			}
		}
	}
	tbl, err := pass.Demo(name, rows, seed)
	if err != nil {
		return err
	}
	opt := pass.Options{Partitions: partitions, SampleRate: rate, Seed: seed}
	if sess.Adaptive() {
		// retain the demo rows so the re-optimizer can rebuild the table
		persisted, err := sess.RegisterAdaptive("demo", tbl, opt, shards)
		if err != nil {
			return err
		}
		log.Printf("passd: loaded demo table %q (%d rows, adaptive, persisted=%v)", name, tbl.Len(), persisted)
		return nil
	}
	if shards > 1 {
		eng, schema, err := pass.BuildShardedEngine(tbl, opt, shards)
		if err != nil {
			return err
		}
		err = sess.RegisterEngine("demo", eng, schema)
		if errors.Is(err, engine.ErrNotSerializable) {
			log.Printf("passd: demo table %q is not serializable; serving without persistence", name)
			err = sess.RegisterEngineEphemeral("demo", eng, schema)
		}
		if err != nil {
			return err
		}
		log.Printf("passd: loaded demo table %q (%d rows, %d shards)", name, tbl.Len(), shards)
		return nil
	}
	syn, err := pass.BuildAuto(tbl, opt)
	if err != nil {
		return err
	}
	err = sess.Register("demo", syn)
	if errors.Is(err, engine.ErrNotSerializable) {
		log.Printf("passd: demo table %q is not serializable; serving without persistence", name)
		err = sess.RegisterEphemeral("demo", syn)
	}
	if err != nil {
		return err
	}
	log.Printf("passd: loaded demo table %q (%d rows)", name, tbl.Len())
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "passd: %v\n", err)
	os.Exit(1)
}
