// Command passd serves approximate SQL over HTTP: a pass.Session catalog
// of named tables (each a PASS synopsis), a JSON query endpoint with
// batched multi-statement execution, and CSV table loading — the serving
// layer of the repository's architecture:
//
//	sqlfe (SQL) → pass.Session / catalog → engine → synopsis
//
// Endpoints:
//
//	POST   /query          {"sql": "SELECT AVG(light) FROM sensors WHERE time >= 6"}
//	                       multi-statement scripts are batched: "SELECT ...; SELECT ..."
//	GET    /tables         list registered tables
//	POST   /tables         {"name": "sensors", "csv": "time,light\n1,0.5\n...", "partitions": 64}
//	DELETE /tables/{name}  drop a table
//
// Quickstart:
//
//	passd -listen :8080 &
//	curl -s localhost:8080/tables -d '{"name":"demo","csv":"'"$(passgen -name intel -n 10000 | tr '\n' ';' | sed 's/;/\\n/g')"'"}'
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) FROM demo"}'
//
// A demo table can be preloaded at startup with -demo.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/pass"
)

func main() {
	var (
		listen     = flag.String("listen", ":8080", "listen address")
		demo       = flag.String("demo", "", "preload a demo dataset as table 'demo' (intel, instacart, nyctaxi, uniform, adversarial)")
		demoRows   = flag.Int("demo-rows", 60000, "demo dataset size")
		partitions = flag.Int("partitions", 64, "default leaf partitions for loaded tables")
		rate       = flag.Float64("rate", 0.005, "default sample rate for loaded tables")
		seed       = flag.Uint64("seed", 1, "default build seed")
	)
	flag.Parse()

	sess := pass.NewSession()
	srv := newServer(sess)
	srv.buildDefaults = buildOptions{Partitions: *partitions, SampleRate: *rate, Seed: *seed}

	if *demo != "" {
		tbl, err := pass.Demo(*demo, *demoRows, *seed)
		if err != nil {
			fatal(err)
		}
		syn, err := pass.BuildAuto(tbl, pass.Options{Partitions: *partitions, SampleRate: *rate, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if err := sess.Register("demo", syn); err != nil {
			fatal(err)
		}
		log.Printf("passd: loaded demo table %q (%d rows)", *demo, tbl.Len())
	}

	log.Printf("passd: listening on %s", *listen)
	if err := http.ListenAndServe(*listen, srv.handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "passd: %v\n", err)
	os.Exit(1)
}
