// Command passgen generates the simulated evaluation datasets to CSV so
// they can be inspected, loaded into other tools, or fed to passquery —
// and, with -snap, builds a PASS synopsis over the generated data and
// writes it as a store snapshot file that passd serves directly from a
// data directory (build once, serve forever).
//
// Usage:
//
//	passgen -dataset nyctaxi -rows 100000 -out taxi.csv
//	passgen -dataset nyctaxi -dims 5 -rows 100000 -out taxi5d.csv
//	passgen -dataset adversarial -rows 1000000 -out adv.csv
//	passgen -dataset intel -rows 100000 -snap data/intel.snap -table intel
//	passgen -dataset intel -rows 100000 -shards 4 -snap data -table intel
//
// With -shards > 1 the synopsis is built sharded (range partitioning on
// the first predicate column, one synopsis per shard built concurrently)
// and -snap names the data DIRECTORY receiving the per-shard snapshots
// plus the shard manifest.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/engine/factory"
	"repro/internal/sqlfe"
	"repro/internal/store"
)

func main() {
	var (
		name       = flag.String("dataset", "nyctaxi", "dataset: intel, instacart, nyctaxi, adversarial, uniform")
		rows       = flag.Int("rows", 100000, "row count")
		dims       = flag.Int("dims", 1, "predicate columns (nyctaxi only, 1-5)")
		seed       = flag.Uint64("seed", 1, "random seed")
		out        = flag.String("out", "", "output file (default stdout)")
		snap       = flag.String("snap", "", "also build a PASS synopsis and write it as a store snapshot file (a data directory when -shards > 1)")
		table      = flag.String("table", "", "table name recorded in the snapshot (default: the dataset name)")
		partitions = flag.Int("partitions", 64, "leaf partitions for -snap")
		rate       = flag.Float64("rate", 0.005, "sample rate for -snap")
		shards     = flag.Int("shards", 1, "build a sharded synopsis with this many shards (-snap then writes per-shard snapshots + manifest into a directory)")
	)
	flag.Parse()

	var d *dataset.Dataset
	if *name == "nyctaxi" && *dims > 1 {
		d = dataset.GenNYCTaxi(*rows, *dims, *seed)
	} else {
		var ok bool
		d, ok = dataset.ByName(*name, *rows, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "passgen: unknown dataset %q\n", *name)
			os.Exit(2)
		}
	}

	if *snap != "" {
		var err error
		if *shards > 1 {
			err = writeShardedSnapshot(d, *snap, *table, *name, *partitions, *rate, *seed, *shards)
		} else {
			err = writeSnapshot(d, *snap, *table, *name, *partitions, *rate, *seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "passgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote synopsis snapshot (%d rows, %d shard(s)) to %s\n", d.N(), *shards, *snap)
		if *out == "" {
			return // -snap without -out: don't dump CSV to the terminal
		}
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "passgen: %v\n", err)
			os.Exit(1)
		}
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "passgen: %v\n", err)
		os.Exit(1)
	}
	// Close errors matter: on a full disk the final buffered flush is what
	// fails, and ignoring it would report success for a truncated file.
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "passgen: close %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows x %d predicate columns to %s\n", d.N(), d.Dims(), *out)
	}
}

// writeSnapshot builds a PASS engine over the dataset and persists it
// through the same snapshot codec passd's data directories use, so the
// output file can be dropped straight into a -data-dir.
func writeSnapshot(d *dataset.Dataset, path, table, datasetName string, partitions int, rate float64, seed uint64) error {
	eng, err := factory.Build("pass", d, factory.Spec{
		Partitions: partitions, SampleRate: rate, Seed: seed,
	})
	if err != nil {
		return err
	}
	ser, ok := eng.(engine.Serializable)
	if !ok {
		return fmt.Errorf("engine %s: %w", eng.Name(), engine.ErrNotSerializable)
	}
	var payload bytes.Buffer
	if err := ser.Save(&payload); err != nil {
		return fmt.Errorf("serialize synopsis: %w", err)
	}
	if table == "" {
		table = datasetName
	}
	if err := store.ValidateTableName(table); err != nil {
		return err
	}
	schema := sqlfe.SchemaFromColNames(d.ColNames)
	schema.Table = table
	return store.WriteSnapshotFile(path, &store.Snapshot{
		Name:    table,
		Engine:  eng.Name(),
		Rows:    d.N(),
		Schema:  schema,
		Payload: payload.Bytes(),
	})
}

// writeShardedSnapshot builds a sharded PASS engine and persists it as a
// manifest plus per-shard snapshots into the data directory dir, ready
// for a passd -data-dir warm start.
func writeShardedSnapshot(d *dataset.Dataset, dir, table, datasetName string, partitions int, rate float64, seed uint64, shards int) error {
	eng, err := factory.Build(fmt.Sprintf("sharded:pass:%d", shards), d, factory.Spec{
		Partitions: partitions, SampleRate: rate, Seed: seed,
	})
	if err != nil {
		return err
	}
	sh, ok := eng.(engine.Sharded)
	if !ok {
		return fmt.Errorf("engine %s is not sharded", eng.Name())
	}
	if table == "" {
		table = datasetName
	}
	schema := sqlfe.SchemaFromColNames(d.ColNames)
	schema.Table = table
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create data dir: %w", err)
	}
	return store.WriteShardedTableFiles(dir, table, sh, schema)
}
