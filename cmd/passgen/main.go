// Command passgen generates the simulated evaluation datasets to CSV so
// they can be inspected, loaded into other tools, or fed to passquery.
//
// Usage:
//
//	passgen -dataset nyctaxi -rows 100000 -out taxi.csv
//	passgen -dataset nyctaxi -dims 5 -rows 100000 -out taxi5d.csv
//	passgen -dataset adversarial -rows 1000000 -out adv.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		name = flag.String("dataset", "nyctaxi", "dataset: intel, instacart, nyctaxi, adversarial, uniform")
		rows = flag.Int("rows", 100000, "row count")
		dims = flag.Int("dims", 1, "predicate columns (nyctaxi only, 1-5)")
		seed = flag.Uint64("seed", 1, "random seed")
		out  = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var d *dataset.Dataset
	if *name == "nyctaxi" && *dims > 1 {
		d = dataset.GenNYCTaxi(*rows, *dims, *seed)
	} else {
		var ok bool
		d, ok = dataset.ByName(*name, *rows, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "passgen: unknown dataset %q\n", *name)
			os.Exit(2)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "passgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "passgen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d rows x %d predicate columns to %s\n", d.N(), d.Dims(), *out)
	}
}
