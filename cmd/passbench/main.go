// Command passbench regenerates the tables and figures of the PASS paper's
// evaluation (Section 5). Each experiment id maps to one paper artifact;
// see DESIGN.md for the index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	passbench -exp table1            # one experiment
//	passbench -exp all               # everything, in paper order
//	passbench -exp fig8 -rows 200000 -queries 1000
//	passbench -exp table1 -json      # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
)

// jsonTable mirrors bench.Table for machine-readable output.
type jsonTable struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Note   string     `json:"note,omitempty"`
}

// jsonExperiment is one experiment's rendered artifacts plus timing.
type jsonExperiment struct {
	Experiment     string      `json:"experiment"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	Tables         []jsonTable `json:"tables"`
}

// jsonReport is the top-level -json document, versioned so future PRs can
// accumulate a BENCH_*.json trajectory with a stable schema.
type jsonReport struct {
	SchemaVersion int              `json:"schema_version"`
	Rows          int              `json:"rows"`
	Queries       int              `json:"queries"`
	Seed          uint64           `json:"seed"`
	Experiments   []jsonExperiment `json:"experiments"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all' (ids: "+strings.Join(bench.ExperimentOrder, ", ")+")")
		rows    = flag.Int("rows", 60000, "rows per dataset (paper: 1.4M-7.7M)")
		queries = flag.Int("queries", 200, "queries per workload (paper: 2000)")
		seed    = flag.Uint64("seed", 1, "random seed")
		shards  = flag.Int("shards", 0, "shard count for the 'sharded' experiment (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut = flag.Bool("json", false, "emit results as JSON instead of plain-text tables")
		latJSON = flag.String("latency-json", "", "write the run-wide per-query latency histogram (buckets, p50/p95/p99) to this file as JSON")
	)
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(bench.Experiments))
		for id := range bench.Experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	cfg := bench.Config{Rows: *rows, Queries: *queries, Seed: *seed, Shards: *shards}
	var ids []string
	if *exp == "all" {
		ids = bench.ExperimentOrder
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if bench.Experiments[id] == nil {
				fmt.Fprintf(os.Stderr, "passbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	report := jsonReport{SchemaVersion: 1, Rows: *rows, Queries: *queries, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		tables := bench.Experiments[id](cfg)
		elapsed := time.Since(start)
		if *jsonOut {
			je := jsonExperiment{Experiment: id, ElapsedSeconds: elapsed.Seconds()}
			for _, t := range tables {
				je.Tables = append(je.Tables, jsonTable{
					Title: t.Title, Header: t.Header, Rows: t.Rows, Note: t.Note,
				})
			}
			report.Experiments = append(report.Experiments, je)
			continue
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("[%s completed in %.1fs]\n", id, elapsed.Seconds())
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "passbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *latJSON != "" {
		if err := writeLatencyJSON(*latJSON); err != nil {
			fmt.Fprintf(os.Stderr, "passbench: -latency-json: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeLatencyJSON dumps the run-wide per-query latency histogram — one
// machine-readable artifact per benchmark run, suitable for trend
// tracking in CI.
func writeLatencyJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench.LatencySnapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
