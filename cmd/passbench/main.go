// Command passbench regenerates the tables and figures of the PASS paper's
// evaluation (Section 5). Each experiment id maps to one paper artifact;
// see DESIGN.md for the index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	passbench -exp table1            # one experiment
//	passbench -exp all               # everything, in paper order
//	passbench -exp fig8 -rows 200000 -queries 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all' (ids: "+strings.Join(bench.ExperimentOrder, ", ")+")")
		rows    = flag.Int("rows", 60000, "rows per dataset (paper: 1.4M-7.7M)")
		queries = flag.Int("queries", 200, "queries per workload (paper: 2000)")
		seed    = flag.Uint64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(bench.Experiments))
		for id := range bench.Experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	cfg := bench.Config{Rows: *rows, Queries: *queries, Seed: *seed}
	var ids []string
	if *exp == "all" {
		ids = bench.ExperimentOrder
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if bench.Experiments[id] == nil {
				fmt.Fprintf(os.Stderr, "passbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		tables := bench.Experiments[id](cfg)
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("[%s completed in %.1fs]\n", id, time.Since(start).Seconds())
	}
}
