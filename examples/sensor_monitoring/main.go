// Sensor monitoring: the IoT dashboard scenario that motivates the paper's
// Intel Wireless experiments. A lab collects light-sensor readings over
// many days; an operations dashboard repeatedly asks windowed aggregates
// ("average light level yesterday afternoon", "how many readings
// exceeded..."), and a visualization only needs ~1% precision.
//
// The example contrasts three synopses at the same sample budget:
// PASS with variance-optimised (ADP) partitions, PASS with equal-depth
// partitions, and shows the effect of the precomputation budget.
//
// Run with: go run ./examples/sensor_monitoring
package main

import (
	"fmt"
	"log"
	"math"

	"repro/pass"
)

const samplesPerDay = 2880 // one reading every 30 seconds

func main() {
	// ~10 days of readings from the simulated lab deployment
	tbl, err := pass.Demo("intel", 10*samplesPerDay, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor log: %d readings over %d days\n\n", tbl.Len(), tbl.Len()/samplesPerDay)

	// A dashboard workload: hourly windows across the deployment.
	type window struct {
		name   string
		lo, hi float64
	}
	var windows []window
	for day := 2; day <= 8; day += 3 {
		base := float64(day * samplesPerDay)
		windows = append(windows,
			window{fmt.Sprintf("day %d early morning", day), base + 0.05*samplesPerDay, base + 0.2*samplesPerDay},
			window{fmt.Sprintf("day %d midday", day), base + 0.45*samplesPerDay, base + 0.55*samplesPerDay},
			window{fmt.Sprintf("day %d dusk transition", day), base + 0.7*samplesPerDay, base + 0.8*samplesPerDay},
		)
	}

	for _, cfg := range []struct {
		label string
		opt   pass.Options
	}{
		{"PASS (ADP partitioning, k=96)", pass.Options{Partitions: 96, SampleRate: 0.05, OptimizeFor: pass.Avg, Seed: 5}},
		{"PASS (equal partitioning, k=96)", pass.Options{Partitions: 96, SampleRate: 0.05, OptimizeFor: pass.Avg, Partitioner: pass.EqualDepth, Seed: 5}},
		{"PASS (ADP, small budget k=12)", pass.Options{Partitions: 12, SampleRate: 0.05, OptimizeFor: pass.Avg, Seed: 5}},
	} {
		syn, err := pass.Build(tbl, cfg.opt)
		if err != nil {
			log.Fatal(err)
		}
		var worst, total float64
		reads := 0
		for _, w := range windows {
			ans, err := syn.Avg(pass.Range{Lo: w.lo, Hi: w.hi})
			if err != nil {
				continue
			}
			truth, err := tbl.Exact(pass.Avg, pass.Range{Lo: w.lo, Hi: w.hi})
			if err != nil || truth == 0 {
				continue
			}
			rel := math.Abs(ans.Estimate-truth) / math.Abs(truth)
			total += rel
			if rel > worst {
				worst = rel
			}
			reads += ans.TuplesRead
		}
		fmt.Printf("%-36s  mean err %.3f%%   worst err %.3f%%   build %.2fs   avg reads/query %d\n",
			cfg.label, total/float64(len(windows))*100, worst*100,
			syn.BuildSeconds(), reads/len(windows))
	}

	// Drill into one window to show the full answer a dashboard receives.
	fmt.Println("\ndrill-down: day 5 dusk transition (high-variance region)")
	syn, err := pass.Build(tbl, pass.Options{Partitions: 96, SampleRate: 0.05, OptimizeFor: pass.Avg, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	lo := float64(5*samplesPerDay) + 0.7*samplesPerDay
	hi := float64(5*samplesPerDay) + 0.8*samplesPerDay
	ans, err := syn.Avg(pass.Range{Lo: lo, Hi: hi})
	if err != nil {
		log.Fatal(err)
	}
	truth, _ := tbl.Exact(pass.Avg, pass.Range{Lo: lo, Hi: hi})
	fmt.Printf("  AVG(light) ≈ %.1f lux ± %.1f (99%% CI), hard bounds [%.1f, %.1f], exact %.1f\n",
		ans.Estimate, ans.CIHalf, ans.HardLo, ans.HardHi, truth)
	cnt, _ := syn.Count(pass.Range{Lo: lo, Hi: hi})
	fmt.Printf("  COUNT ≈ %.0f readings, skipped %.1f%% of the log\n", cnt.Estimate, cnt.SkipRate*100)
}
