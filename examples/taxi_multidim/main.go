// Multi-dimensional analytics: the NYC-taxi scenario of Section 5.4. An
// analyst slices trip distances by pickup time, date and zone; PASS builds
// a k-d partition tree (KD-PASS) whose leaves form the strata. The example
// also demonstrates workload shift (Section 5.4.1): a synopsis whose
// aggregates index only 2 columns still answers 3D queries by using the
// tree for data skipping and the full-tuple samples for estimation.
//
// Run with: go run ./examples/taxi_multidim
package main

import (
	"fmt"
	"log"
	"math"

	"repro/pass"
)

func main() {
	// 3 predicate columns: pickup_time (hour), pickup_date (day of month),
	// pickup zone id; aggregate: trip_distance
	tbl := pass.DemoTaxi(150000, 3, 99)
	fmt.Printf("trips: %d rows, %d predicate columns\n\n", tbl.Len(), tbl.Dims())

	syn, err := pass.BuildMulti(tbl, pass.Options{
		Partitions: 256,
		SampleRate: 0.01,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KD-PASS synopsis: %d leaves, %d samples, %.0f KiB\n\n",
		syn.Leaves(), syn.Samples(), float64(syn.MemoryBytes())/1024)

	queries := []struct {
		name string
		pred []pass.Range
	}{
		{"evening rush, first week, downtown zones",
			[]pass.Range{{Lo: 17, Hi: 20}, {Lo: 0, Hi: 7}, {Lo: 0, Hi: 120}}},
		{"late night, whole month, airport corridor",
			[]pass.Range{{Lo: 22, Hi: 24}, {Lo: 0, Hi: 31}, {Lo: 200, Hi: 263}}},
		{"midday, mid-month, all zones",
			[]pass.Range{{Lo: 11, Hi: 14}, {Lo: 10, Hi: 20}, {Lo: 0, Hi: 263}}},
	}
	for _, q := range queries {
		sum, err := syn.Sum(q.pred...)
		if err != nil {
			log.Fatal(err)
		}
		avg, err := syn.Avg(q.pred...)
		if err != nil {
			fmt.Printf("%s: %v\n\n", q.name, err)
			continue
		}
		truthSum, _ := tbl.Exact(pass.Sum, q.pred...)
		truthAvg, _ := tbl.Exact(pass.Avg, q.pred...)
		fmt.Printf("%s\n", q.name)
		fmt.Printf("  SUM(distance) ≈ %.0f ± %.0f  (exact %.0f, err %.2f%%)\n",
			sum.Estimate, sum.CIHalf, truthSum, relErr(sum.Estimate, truthSum))
		fmt.Printf("  AVG(distance) ≈ %.2f ± %.2f  (exact %.2f, err %.2f%%)\n",
			avg.Estimate, avg.CIHalf, truthAvg, relErr(avg.Estimate, truthAvg))
		fmt.Printf("  skipped %.1f%% of the data, read %d sample tuples\n\n",
			sum.SkipRate*100, sum.TuplesRead)
	}

	// Workload shift: the aggregates were planned for (time, date)
	// queries, but the analyst starts filtering by zone as well. The
	// 2D-indexed synopsis keeps working: skipping still applies on the
	// shared columns, the extra predicate is evaluated on the samples.
	fmt.Println("workload shift: 2D-indexed synopsis answering 3D queries")
	shifted, err := pass.BuildMulti(tbl, pass.Options{
		Partitions: 256,
		SampleRate: 0.01,
		IndexDims:  2,
		Seed:       4,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := []pass.Range{{Lo: 17, Hi: 20}, {Lo: 0, Hi: 7}, {Lo: 0, Hi: 120}}
	ans, err := shifted.Sum(pred...)
	if err != nil {
		log.Fatal(err)
	}
	truth, _ := tbl.Exact(pass.Sum, pred...)
	fmt.Printf("  SUM ≈ %.0f ± %.0f (exact %.0f, err %.2f%%), skip rate %.1f%%\n",
		ans.Estimate, ans.CIHalf, truth, relErr(ans.Estimate, truth), ans.SkipRate*100)
}

func relErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth) * 100
}
