// Quickstart: build a PASS synopsis over a simulated NYC-taxi table and
// answer aggregate queries approximately, comparing against exact answers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/pass"
)

func main() {
	// 1. Load data: 200k simulated taxi trips — predicate column is the
	// pickup hour, aggregate column is the trip distance.
	tbl := pass.DemoTaxi(200000, 1, 42)
	fmt.Printf("table: %d rows\n", tbl.Len())

	// 2. Build the synopsis: 64 optimised partitions, a 0.5%% stratified
	// sample, 99%% confidence intervals.
	syn, err := pass.Build(tbl, pass.Options{
		Partitions: 64,
		SampleRate: 0.005,
		Confidence: 0.99,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synopsis: %d leaves, %d samples, %.1f KiB, built in %.2fs\n\n",
		syn.Leaves(), syn.Samples(), float64(syn.MemoryBytes())/1024, syn.BuildSeconds())

	// 3. Ask questions.
	queries := []struct {
		name string
		agg  pass.Agg
		lo   float64
		hi   float64
	}{
		{"total distance, morning rush (7-10am)", pass.Sum, 7, 10},
		{"trips after 10pm", pass.Count, 22, 24},
		{"average distance, business hours", pass.Avg, 9, 17},
		{"longest early-morning trip", pass.Max, 0, 5},
	}
	for _, q := range queries {
		ans, err := syn.Query(q.agg, pass.Range{Lo: q.lo, Hi: q.hi})
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		truth, _ := tbl.Exact(q.agg, pass.Range{Lo: q.lo, Hi: q.hi})
		rel := 0.0
		if truth != 0 {
			rel = math.Abs(ans.Estimate-truth) / math.Abs(truth) * 100
		}
		fmt.Printf("%s\n", q.name)
		fmt.Printf("  %s ≈ %.2f ± %.2f   (exact %.2f, error %.3f%%)\n",
			q.agg, ans.Estimate, ans.CIHalf, truth, rel)
		if ans.HardBounds {
			fmt.Printf("  guaranteed within [%.2f, %.2f]; skipped %.1f%% of the data\n",
				ans.HardLo, ans.HardHi, ans.SkipRate*100)
		}
		fmt.Println()
	}

	// 4. Queries aligned with the partitioning are answered exactly —
	// zero sampling error, straight from the precomputed aggregates.
	all, err := syn.Sum(pass.Range{Lo: math.Inf(-1), Hi: math.Inf(1)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-table SUM = %.2f (exact answer: %v, read %d sample tuples)\n",
		all.Estimate, all.Exact, all.TuplesRead)
}
