// Streaming updates: the dynamic-maintenance scenario of Section 4.5. An
// order stream keeps appending to the table after the synopsis is built;
// PASS absorbs inserts with O(log k) aggregate maintenance and reservoir
// sampling, so SUM/COUNT stay exactly consistent and sampled estimates
// remain statistically valid without rebuilding.
//
// Run with: go run ./examples/streaming_updates
package main

import (
	"fmt"
	"log"
	"math"

	"repro/pass"
)

func main() {
	// initial load: an Instacart-like order log (product id → reordered
	// flag); AVG over a product range = reorder rate
	tbl, err := pass.Demo("instacart", 100000, 11)
	if err != nil {
		log.Fatal(err)
	}
	syn, err := pass.Build(tbl, pass.Options{
		Partitions:  64,
		SampleRate:  0.01,
		OptimizeFor: pass.Avg,
		Seed:        8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial synopsis over %d orders: %d leaves, %d samples\n\n",
		tbl.Len(), syn.Leaves(), syn.Samples())

	all := pass.Range{Lo: math.Inf(-1), Hi: math.Inf(1)}
	report := func(stage string) {
		cnt, _ := syn.Count(all)
		truthCnt, _ := tbl.Exact(pass.Count, all)
		avg, _ := syn.Avg(all)
		truthAvg, _ := tbl.Exact(pass.Avg, all)
		fmt.Printf("%-28s  COUNT %.0f (exact %.0f)   reorder rate %.4f (exact %.4f)   samples %d\n",
			stage, cnt.Estimate, truthCnt, avg.Estimate, truthAvg, syn.Samples())
	}
	report("after initial build")

	// stream five batches of new orders; the popular products get more
	// reorders over time, drifting the distribution
	seedStream := uint64(1234567)
	next := func() float64 { // cheap deterministic pseudo-random in [0,1)
		seedStream = seedStream*6364136223846793005 + 1442695040888963407
		return float64(seedStream>>11) / (1 << 53)
	}
	for batch := 1; batch <= 5; batch++ {
		for i := 0; i < 20000; i++ {
			product := math.Floor(next() * next() * 3300) // popularity-skewed
			reordered := 0.0
			if next() < 0.55+0.05*float64(batch) { // drift upward
				reordered = 1.0
			}
			if err := syn.Insert([]float64{product}, reordered); err != nil {
				log.Fatal(err)
			}
			tbl.Append([]float64{product}, reordered)
		}
		report(fmt.Sprintf("after batch %d (+20k orders)", batch))
	}

	// windowed queries remain accurate after heavy drift
	fmt.Println("\nwindowed reorder rates after 100k streamed inserts:")
	for _, w := range []pass.Range{{Lo: 0, Hi: 100}, {Lo: 500, Hi: 1500}, {Lo: 2500, Hi: 3300}} {
		ans, err := syn.Avg(w)
		if err != nil {
			fmt.Printf("  products %4.0f-%4.0f: %v\n", w.Lo, w.Hi, err)
			continue
		}
		truth, err := tbl.Exact(pass.Avg, w)
		if err != nil {
			continue
		}
		fmt.Printf("  products %4.0f-%4.0f: %.4f ± %.4f (exact %.4f)\n",
			w.Lo, w.Hi, ans.Estimate, ans.CIHalf, truth)
	}

	// deletes are supported too (e.g. GDPR erasure of one order)
	before, _ := syn.Count(all)
	if err := syn.Delete([]float64{50}, 1); err == nil {
		after, _ := syn.Count(all)
		fmt.Printf("\ndeleted one order: COUNT %.0f -> %.0f (synopsis stays exactly consistent)\n",
			before.Estimate, after.Estimate)
	}
}
