// Retail analytics with SQL: a sales table with a dictionary-encoded
// categorical column (region), queried through the SQL front-end with
// string predicates and GROUP BY (Section 4.5 "Extensions" of the paper:
// categorical queries via dictionary encoding, group-bys rewritten as
// equality predicates). The synopsis is then persisted to disk and
// restored — the expensive optimisation runs once, query nodes just load.
//
// Run with: go run ./examples/retail_sql
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"repro/pass"
)

func main() {
	regions := []string{"apac", "emea", "latam", "na"}
	// simulate a year of daily sales per region with different levels and
	// seasonality per region
	var regionCol []string
	var dayCol, revenue []float64
	seed := uint64(20240612)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / (1 << 53)
	}
	for day := 0; day < 365; day++ {
		for r, name := range regions {
			// several transactions per region-day
			for tx := 0; tx < 120; tx++ {
				base := 100 + 60*float64(r)
				season := 1 + 0.3*math.Sin(2*math.Pi*float64(day)/365+float64(r))
				regionCol = append(regionCol, name)
				dayCol = append(dayCol, float64(day))
				revenue = append(revenue, base*season*(0.5+next()))
			}
		}
	}
	codes, dict := pass.EncodeStrings(regionCol)
	tbl := pass.NewTable([]string{"region", "day"}, "revenue")
	for i := range codes {
		tbl.Append([]float64{codes[i], dayCol[i]}, revenue[i])
	}
	if err := tbl.SetDict("region", dict); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sales table: %d transactions, %d regions\n\n", tbl.Len(), dict.Categories())

	syn, err := pass.BuildMulti(tbl, pass.Options{
		Partitions: 128,
		SampleRate: 0.02,
		Seed:       17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// scalar SQL with a string predicate
	q1 := "SELECT SUM(revenue) FROM sales WHERE region = 'emea' AND day BETWEEN 0 AND 89"
	res, err := syn.SQL(q1)
	if err != nil {
		log.Fatal(err)
	}
	code, _ := dict.Code("emea")
	truth, _ := tbl.Exact(pass.Sum, pass.Range{Lo: code, Hi: code}, pass.Range{Lo: 0, Hi: 89})
	fmt.Println(q1)
	fmt.Printf("  ≈ %.0f ± %.0f   (exact %.0f, err %.2f%%)\n\n",
		res.Scalar.Estimate, res.Scalar.CIHalf, truth,
		math.Abs(res.Scalar.Estimate-truth)/truth*100)

	// GROUP BY over the dictionary column
	q2 := "SELECT AVG(revenue) FROM sales WHERE day BETWEEN 180 AND 269 GROUP BY region"
	res, err = syn.SQL(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q2)
	for _, g := range res.Groups {
		if g.NoMatch {
			fmt.Printf("  %-8s (no data)\n", g.Label)
			continue
		}
		c, _ := dict.Code(g.Label)
		t, _ := tbl.Exact(pass.Avg, pass.Range{Lo: c, Hi: c}, pass.Range{Lo: 180, Hi: 269})
		fmt.Printf("  %-8s ≈ %8.2f ± %6.2f   (exact %8.2f)\n", g.Label, g.Answer.Estimate, g.Answer.CIHalf, t)
	}

	// persist and restore: the optimised synopsis ships to query nodes
	fmt.Println("\npersisting the synopsis...")
	oneD, err := pass.Demo("nyctaxi", 50000, 3)
	if err != nil {
		log.Fatal(err)
	}
	s1, err := pass.Build(oneD, pass.Options{Partitions: 64, SampleRate: 0.01, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.Save(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	restored, err := pass.LoadSynopsis(&buf)
	if err != nil {
		log.Fatal(err)
	}
	restored.SetSchema([]string{"pickup_time"}, "trip_distance", nil)
	r2, err := restored.SQL("SELECT AVG(trip_distance) FROM trips WHERE pickup_time BETWEEN 7 AND 10")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d-byte synopsis restored; AVG over morning rush ≈ %.3f ± %.3f\n",
		size, r2.Scalar.Estimate, r2.Scalar.CIHalf)
}
