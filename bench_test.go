// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), plus micro-benchmarks of the
// core operations. Each experiment benchmark renders its tables to the
// test log once so the numbers are inspectable in benchmark output; the
// full-scale runs live behind cmd/passbench, which accepts -rows/-queries.
package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"testing"

	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine/factory"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchCfg keeps experiment benchmarks fast enough for -bench=. while
// preserving every curve's shape.
func benchCfg() bench.Config {
	return bench.Config{Rows: 20000, Queries: 60, Seed: 1}
}

func runExperiment(b *testing.B, id string, render bool) {
	b.Helper()
	fn := bench.Experiments[id]
	if fn == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tables := fn(cfg)
		if len(tables) == 0 {
			b.Fatalf("experiment %q produced no tables", id)
		}
		if render && i == 0 {
			var w io.Writer = io.Discard
			if testing.Verbose() {
				w = os.Stdout
			}
			for _, t := range tables {
				t.Render(w)
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (US/ST/AQP++/PASS accuracy matrix).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", true) }

// BenchmarkFigure3 regenerates Figure 3 (error vs #partitions).
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3", true) }

// BenchmarkFigure4 regenerates Figure 4 (error vs sample rate).
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4", true) }

// BenchmarkFigure5 regenerates Figure 5 (CI ratio vs sample rate).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5", true) }

// BenchmarkFigure6 regenerates Figure 6 (ADP vs EQ, adversarial data).
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6", true) }

// BenchmarkFigure7 regenerates Figure 7 (ADP vs EQ, challenging queries).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7", true) }

// BenchmarkFigure8 regenerates Figure 8 (KD-PASS vs KD-US, 1D-5D).
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8", true) }

// BenchmarkFigure9 regenerates Figure 9 (workload shift).
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9", true) }

// BenchmarkTable2 regenerates Table 2 (VerdictDB/DeepDB comparison).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", true) }

// BenchmarkTable3 regenerates Table 3 (preprocessing cost vs k).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3", true) }

// BenchmarkDPVariants regenerates the Section 4.3 algorithm ladder.
func BenchmarkDPVariants(b *testing.B) { runExperiment(b, "dpcost", true) }

// BenchmarkAblation runs the design-choice ablations from DESIGN.md.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation", true) }

// BenchmarkAdaptive runs the workload-adaptive experiment: skewed-
// workload accuracy before/after re-optimization plus the semantic
// result cache's repeat-pass speedup.
func BenchmarkAdaptive(b *testing.B) { runExperiment(b, "adaptive", true) }

// --- micro-benchmarks -------------------------------------------------

func buildSyn(b *testing.B, n int) (*dataset.Dataset, *core.Synopsis) {
	b.Helper()
	d := dataset.GenNYCTaxi(n, 1, 1)
	s, err := core.Build(d, core.Options{Partitions: 64, SampleRate: 0.005, Kind: dataset.Sum, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	return d, s
}

// BenchmarkBuild measures 1D synopsis construction (ADP + tree + samples):
// the two-pointer monotone DP, the pair-sorted predicate ordering, the
// parallel leaf aggregation and the parallel columnar sample fill.
func BenchmarkBuild(b *testing.B) {
	d := dataset.GenNYCTaxi(100000, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(d, core.Options{Partitions: 64, SampleRate: 0.005, Kind: dataset.Sum, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildKD measures multi-dimensional construction.
func BenchmarkBuildKD(b *testing.B) {
	d := dataset.GenNYCTaxi(100000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildKD(d, core.Options{Partitions: 256, SampleRate: 0.005, Kind: dataset.Sum, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuerySum measures PASS query latency on selective intervals.
func BenchmarkQuerySum(b *testing.B) {
	_, s := buildSyn(b, 100000)
	rng := stats.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Float64() * 20
		if _, err := s.Query(dataset.Sum, dataset.Rect1(a, a+2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryAvg measures AVG latency (weighted stratified path).
func BenchmarkQueryAvg(b *testing.B) {
	_, s := buildSyn(b, 100000)
	rng := stats.NewRNG(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Float64() * 20
		if _, err := s.Query(dataset.Avg, dataset.Rect1(a, a+2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBatch measures a 256-query workload through the batched
// parallel execution path (per-op time is for the whole batch).
func BenchmarkQueryBatch(b *testing.B) {
	_, s := buildSyn(b, 100000)
	rng := stats.NewRNG(5)
	qs := make([]core.BatchQuery, 256)
	for i := range qs {
		a := rng.Float64() * 20
		qs[i] = core.BatchQuery{Kind: dataset.Sum, Rect: dataset.Rect1(a, a+2)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.QueryBatch(qs)
		if len(res) != len(qs) {
			b.Fatal("short batch result")
		}
	}
}

// BenchmarkQueryUS measures the uniform-sampling baseline for comparison.
func BenchmarkQueryUS(b *testing.B) {
	d := dataset.GenNYCTaxi(100000, 1, 1)
	u := baselines.NewUniform(d, 500, 0, 5)
	rng := stats.NewRNG(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Float64() * 20
		if _, err := u.Query(dataset.Sum, dataset.Rect1(a, a+2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsert measures reservoir-maintained dynamic inserts.
func BenchmarkInsert(b *testing.B) {
	_, s := buildSyn(b, 100000)
	rng := stats.NewRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Insert([]float64{rng.Float64() * 24}, rng.Float64()*10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroundTruth1D measures the prefix-sum exact evaluator used by
// the harness.
func BenchmarkGroundTruth1D(b *testing.B) {
	d := dataset.GenNYCTaxi(100000, 1, 1)
	ev := workload.NewEvaluator(d)
	rng := stats.NewRNG(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := rng.Float64()*24, rng.Float64()*24
		ev.Exact(dataset.Sum, dataset.Rect1(math.Min(a, c), math.Max(a, c)))
	}
}

// shardCounts are the configurations the sharded benchmarks compare: a
// single shard (the scatter-gather machinery with no parallelism to win)
// against one shard per core.
func shardCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	} else {
		counts = append(counts, 4) // still exercise the multi-shard path
	}
	return counts
}

// BenchmarkShardedBuild measures sharded synopsis construction: N shards
// build concurrently on the worker pool with the total budget divided
// among them.
func BenchmarkShardedBuild(b *testing.B) {
	d := dataset.GenIntelWireless(100000, 1)
	sp := factory.Spec{Partitions: 64, SampleRate: 0.005, Seed: 1}
	for _, n := range shardCounts() {
		spec := fmt.Sprintf("sharded:pass:%d", n)
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := factory.Build(spec, d, sp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedQueryBatch measures batched scatter-gather execution:
// the workload fans shard-first across the pool and per-query partials
// merge on the way back.
func BenchmarkShardedQueryBatch(b *testing.B) {
	d := dataset.GenIntelWireless(100000, 1)
	sp := factory.Spec{Partitions: 64, SampleRate: 0.005, Seed: 1}
	rng := stats.NewRNG(9)
	qs := make([]core.BatchQuery, 256)
	for i := range qs {
		lo := rng.Float64() * 20
		qs[i] = core.BatchQuery{Kind: dataset.Sum, Rect: dataset.Rect1(lo, lo+4)}
	}
	for _, n := range shardCounts() {
		e, err := factory.Build(fmt.Sprintf("sharded:pass:%d", n), d, sp)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := e.QueryBatch(qs)
				if len(out) != len(qs) {
					b.Fatal("short batch")
				}
			}
		})
	}
}
