package pass

import (
	"errors"
	"sync"
	"testing"
)

func buildBatchSyn(t *testing.T) (*Table, *Synopsis) {
	t.Helper()
	tbl, err := Demo("nyctaxi", 8000, 31)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Build(tbl, Options{Partitions: 16, SampleRate: 0.05, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, syn
}

// TestQueryBatchMatchesQuery checks the public batched API against the
// sequential helpers, including per-request error propagation.
func TestQueryBatchMatchesQuery(t *testing.T) {
	_, syn := buildBatchSyn(t)
	reqs := []Request{
		{Agg: Sum, Pred: []Range{{Lo: 0, Hi: 12}}},
		{Agg: Count, Pred: []Range{{Lo: 6, Hi: 18}}},
		{Agg: Avg, Pred: []Range{{Lo: 3, Hi: 9}}},
		{Agg: Avg, Pred: []Range{{Lo: 1e9, Hi: 2e9}}}, // matches nothing
		{Agg: Agg(99), Pred: []Range{{Lo: 0, Hi: 1}}}, // invalid aggregate
	}
	answers := syn.QueryBatch(reqs)
	if len(answers) != len(reqs) {
		t.Fatalf("got %d answers for %d requests", len(answers), len(reqs))
	}
	for i := 0; i < 3; i++ {
		want, err := syn.Query(reqs[i].Agg, reqs[i].Pred...)
		if err != nil {
			t.Fatalf("request %d: sequential query failed: %v", i, err)
		}
		if answers[i].Err != nil {
			t.Fatalf("request %d: unexpected error %v", i, answers[i].Err)
		}
		if answers[i].Answer != want {
			t.Fatalf("request %d: batched answer %+v != sequential %+v", i, answers[i].Answer, want)
		}
	}
	if !errors.Is(answers[3].Err, ErrNoMatch) {
		t.Fatalf("no-match request: err = %v, want ErrNoMatch", answers[3].Err)
	}
	if answers[4].Err == nil {
		t.Fatal("invalid aggregate accepted")
	}
}

// TestQueryBatchConcurrent issues overlapping batches from several
// goroutines; run under -race this validates the documented concurrency
// guarantee of the public API.
func TestQueryBatchConcurrent(t *testing.T) {
	_, syn := buildBatchSyn(t)
	reqs := make([]Request, 40)
	for i := range reqs {
		reqs[i] = Request{Agg: Sum, Pred: []Range{{Lo: float64(i) / 2, Hi: float64(i)/2 + 4}}}
	}
	ref := syn.QueryBatch(reqs)
	var wg sync.WaitGroup
	diverged := make(chan int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := syn.QueryBatch(reqs)
			for i := range got {
				if got[i].Answer.Estimate != ref[i].Answer.Estimate {
					diverged <- i
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case i := <-diverged:
		t.Fatalf("concurrent batch diverged at request %d", i)
	default:
	}
}
