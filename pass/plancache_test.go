package pass

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// planCacheStmts is a workload of repeated shapes with varying literals —
// the case the plan cache collapses onto a handful of templates.
func planCacheStmts() []string {
	var stmts []string
	for i := 0; i < 8; i++ {
		stmts = append(stmts,
			hotSQL(i),
			"SELECT COUNT(*) FROM t WHERE x >= 900",
			"SELECT AVG(v) FROM t WHERE x BETWEEN 100 AND 4000",
			"SELECT MIN(v) FROM t WHERE x <= 2500",
			"SELECT MAX(v) FROM t WHERE x BETWEEN 9 AND 5990",
		)
	}
	return stmts
}

// comparePlans asserts two sessions answer every statement identically to
// 1e-12 — the plan-cache twin guarantee.
func comparePlans(t *testing.T, round string, cached, plain *Session, stmts []string) {
	t.Helper()
	got := cached.ExecBatch(stmts)
	want := plain.ExecBatch(stmts)
	for i := range stmts {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("%s stmt %d: err %v vs %v", round, i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		g, w := got[i].Result.Scalar, want[i].Result.Scalar
		if math.Abs(g.Estimate-w.Estimate) > 1e-12 || math.Abs(g.CIHalf-w.CIHalf) > 1e-12 ||
			g.Exact != w.Exact || math.Abs(g.HardLo-w.HardLo) > 1e-12 || math.Abs(g.HardHi-w.HardHi) > 1e-12 {
			t.Fatalf("%s stmt %d (%s): cached %+v vs uncached %+v", round, i, stmts[i], g, w)
		}
	}
}

// TestPlanCacheTwinAcrossSwaps pins the plan cache's twin guarantee: a
// session with the cache on answers bit-for-bit (1e-12) like one with the
// cache off, over the same build — cold, warm, after writes, and across
// the engine swap a re-optimization performs (which bumps the table's
// plan generation and must invalidate every cached skeleton).
func TestPlanCacheTwinAcrossSwaps(t *testing.T) {
	cached, _ := newAdaptiveSession(t, -1)
	plain, _ := newAdaptiveSession(t, -1)
	plain.SetPlanCacheSize(0)

	stmts := planCacheStmts()
	comparePlans(t, "cold", cached, plain, stmts)
	comparePlans(t, "warm", cached, plain, stmts)

	st := cached.PlanCacheStats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("expected plan-cache hits on the warm pass, stats %+v", st)
	}
	if off := plain.PlanCacheStats(); off.Hits != 0 || off.Entries != 0 {
		t.Fatalf("disabled cache must stay inert, stats %+v", off)
	}

	// writes do not bump the plan generation (plans depend only on the
	// schema) — the twins must still agree through cached skeletons
	for i := 0; i < 40; i++ {
		p, v := []float64{float64(700 + i)}, float64(2000+i)
		if err := cached.Insert("t", p, v); err != nil {
			t.Fatal(err)
		}
		if err := plain.Insert("t", p, v); err != nil {
			t.Fatal(err)
		}
	}
	comparePlans(t, "post-insert", cached, plain, stmts)

	// engine swap: Reoptimize rebuilds the synopsis and swaps it in,
	// bumping the plan generation; cached skeletons must be recompiled,
	// never served stale
	if _, err := cached.Reoptimize("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Reoptimize("t"); err != nil {
		t.Fatal(err)
	}
	comparePlans(t, "post-swap", cached, plain, stmts)
	comparePlans(t, "post-swap warm", cached, plain, stmts)
}

// TestPlanCacheEviction fills a tiny cache past capacity and checks the
// LRU bound holds and evictions are counted.
func TestPlanCacheEviction(t *testing.T) {
	sess := NewSession()
	sess.SetPlanCacheSize(2)
	syn, err := Build(adaptiveTestTable(2000), Options{Partitions: 16, SampleRate: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("t", syn); err != nil {
		t.Fatal(err)
	}
	shapes := []string{
		"SELECT SUM(v) FROM t WHERE x >= 10",
		"SELECT COUNT(*) FROM t WHERE x <= 500",
		"SELECT AVG(v) FROM t WHERE x BETWEEN 5 AND 900",
		"SELECT MIN(v) FROM t WHERE x >= 7",
	}
	for i := 0; i < 3; i++ {
		for _, q := range shapes {
			if _, err := sess.Exec(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := sess.PlanCacheStats()
	if st.Entries > 2 {
		t.Fatalf("cache exceeded its capacity: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("4 shapes through a 2-entry cache must evict, stats %+v", st)
	}
}

// TestPreparedStatements covers the prepared-statement surface: bound
// parameters twin the equivalent SQL text, no-arg execution replays the
// original literals, and arity/type errors are reported.
func TestPreparedStatements(t *testing.T) {
	sess := NewSession()
	syn, err := Build(adaptiveTestTable(4000), Options{Partitions: 32, SampleRate: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("t", syn); err != nil {
		t.Fatal(err)
	}

	ps, err := sess.Prepare("SELECT SUM(v) FROM t WHERE x BETWEEN 100 AND 2000")
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumParams() != 2 {
		t.Fatalf("BETWEEN carries 2 parameters, got %d", ps.NumParams())
	}
	if !strings.Contains(ps.Text(), "?n") {
		t.Fatalf("canonical text should be parameterized, got %q", ps.Text())
	}

	// bound execution twins the equivalent text; int/float both accepted
	for _, r := range [][2]float64{{100, 2000}, {0, 3999}, {555, 777}} {
		got, err := ps.Exec(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		want, err := sess.Exec(hot(r[0], r[1]))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Scalar.Estimate-want.Scalar.Estimate) > 1e-12 ||
			math.Abs(got.Scalar.CIHalf-want.Scalar.CIHalf) > 1e-12 {
			t.Fatalf("range %v: prepared %+v vs text %+v", r, got.Scalar, want.Scalar)
		}
	}
	if _, err := ps.Exec(int(200), int64(900)); err != nil {
		t.Fatalf("int arguments must bind to numeric placeholders: %v", err)
	}

	// no args replays the literals the statement was prepared with
	got, err := ps.Exec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Exec("SELECT SUM(v) FROM t WHERE x BETWEEN 100 AND 2000")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Scalar.Estimate-want.Scalar.Estimate) > 1e-12 {
		t.Fatalf("no-arg exec %+v vs original text %+v", got.Scalar, want.Scalar)
	}

	if _, err := ps.Exec(1.0); err == nil {
		t.Fatal("wrong arity must fail")
	}
	if _, err := ps.Exec("low", "high"); err == nil {
		t.Fatal("string arguments on numeric placeholders must fail")
	}
	if _, err := ps.Exec(struct{}{}, 2.0); err == nil || !strings.Contains(err.Error(), "unsupported parameter type") {
		t.Fatalf("unsupported type must be reported, got %v", err)
	}

	// compile errors surface at Prepare, not execution
	if _, err := sess.Prepare("SELECT SUM(v) FROM missing WHERE x >= 1"); err == nil {
		t.Fatal("Prepare against an unknown table must fail")
	}
	if _, err := sess.Prepare("SELECT SUM(nope) FROM t WHERE x >= 1"); err == nil {
		t.Fatal("Prepare with an unknown column must fail")
	}
}

func hot(lo, hi float64) string {
	return fmt.Sprintf("SELECT SUM(v) FROM t WHERE x BETWEEN %g AND %g", lo, hi)
}

// TestPreparedSurvivesSwapAndReRegister pins the revalidation path: a
// prepared handle keeps answering correctly after an engine swap
// (re-optimization) and after its table is dropped and re-registered.
func TestPreparedSurvivesSwapAndReRegister(t *testing.T) {
	sess, _ := newAdaptiveSession(t, -1)
	ps, err := sess.Prepare("SELECT SUM(v) FROM t WHERE x BETWEEN 100 AND 2000")
	if err != nil {
		t.Fatal(err)
	}
	check := func(round string) {
		t.Helper()
		got, err := ps.Exec(123.0, 777.0)
		if err != nil {
			t.Fatalf("%s: %v", round, err)
		}
		want, err := sess.Exec(hotSQL(0))
		if err != nil {
			t.Fatalf("%s: %v", round, err)
		}
		if math.Abs(got.Scalar.Estimate-want.Scalar.Estimate) > 1e-12 {
			t.Fatalf("%s: prepared %+v vs text %+v", round, got.Scalar, want.Scalar)
		}
	}
	check("fresh")

	// engine swap bumps the plan generation; the handle must recompile
	if _, err := sess.Reoptimize("t"); err != nil {
		t.Fatal(err)
	}
	check("post-swap")

	// dropped table: execution fails with the catalog's error...
	if err := sess.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Exec(123.0, 777.0); err == nil {
		t.Fatal("execution against a dropped table must fail")
	}

	// ...and a re-register under the same name revives the handle against
	// the new table identity
	syn, err := Build(adaptiveTestTable(6000), Options{Partitions: 32, SampleRate: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("t", syn); err != nil {
		t.Fatal(err)
	}
	check("re-registered")
}
