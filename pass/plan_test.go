package pass

import (
	"math"
	"testing"
	"time"
)

func TestPlanProducesBuildableOptions(t *testing.T) {
	tbl := DemoTaxi(15000, 1, 81)
	k, sampleK, err := Plan(tbl, time.Second, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if k < 4 || sampleK < k {
		t.Fatalf("plan: k=%d K=%d", k, sampleK)
	}
	syn, err := Build(tbl, Options{Partitions: k, SampleSize: sampleK, Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := syn.Sum(Range{6, 18}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidation(t *testing.T) {
	tbl := DemoTaxi(15000, 1, 83)
	if _, _, err := Plan(tbl, 0, time.Second); err == nil {
		t.Error("zero construct budget accepted")
	}
}

func TestDeriveTemplatesFromWorkload(t *testing.T) {
	tbl := DemoTaxi(500, 3, 84)
	inf := math.Inf(1)
	unconstrained := Range{Lo: math.Inf(-1), Hi: inf}
	workload := [][]Range{
		{{7, 10}, {0, 15}}, // time+date ×3
		{{8, 11}, {2, 20}},
		{{9, 12}, {5, 25}},
		{unconstrained, unconstrained, {0, 99}}, // location ×1
	}
	specs := DeriveTemplates(tbl, workload, 4)
	if len(specs) != 2 {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[0].Columns[0] != "pickup_time" || specs[0].Columns[1] != "pickup_date" {
		t.Errorf("dominant template columns = %v", specs[0].Columns)
	}
	if specs[0].Weight != 3 || specs[1].Weight != 1 {
		t.Errorf("weights = %v / %v", specs[0].Weight, specs[1].Weight)
	}
	// derived specs feed straight into BuildTemplates
	big := DemoTaxi(8000, 3, 85)
	ts, err := BuildTemplates(big, Options{Partitions: 64, SampleRate: 0.05, Seed: 86}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Templates() != 2 {
		t.Errorf("built %d templates", ts.Templates())
	}
}
