package pass

import (
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// adaptiveTestTable builds a deterministic 1D table with enough value
// variance that partial-leaf queries come back inexact.
func adaptiveTestTable(n int) *Table {
	tbl := NewTable([]string{"x"}, "v")
	for i := 0; i < n; i++ {
		v := float64(i%97) + 50*float64(i%13)
		tbl.Append([]float64{float64(i)}, v)
	}
	return tbl
}

var hotRanges = [][2]float64{{123, 777}, {1500, 2600}, {3333, 4444}}

func hotSQL(i int) string {
	r := hotRanges[i%len(hotRanges)]
	return fmt.Sprintf("SELECT SUM(v) FROM t WHERE x BETWEEN %g AND %g", r[0], r[1])
}

func newAdaptiveSession(t *testing.T, cacheBytes int) (*Session, *Table) {
	t.Helper()
	sess := NewSession()
	if err := sess.EnableAdaptive(AdaptiveConfig{CacheBytes: cacheBytes}); err != nil {
		t.Fatal(err)
	}
	tbl := adaptiveTestTable(6000)
	if _, err := sess.RegisterAdaptive("t", tbl, Options{Partitions: 32, SampleRate: 0.02, Seed: 7}, 1); err != nil {
		t.Fatal(err)
	}
	return sess, tbl
}

// TestAdaptiveTwinCachedVsUncached is the session-level twin: a cached
// session must answer every statement bit-for-bit like an uncached one
// over the same build, before and after writes.
func TestAdaptiveTwinCachedVsUncached(t *testing.T) {
	cached, _ := newAdaptiveSession(t, 1<<20)
	plain := NewSession()
	syn, err := Build(adaptiveTestTable(6000), Options{Partitions: 32, SampleRate: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Register("t", syn); err != nil {
		t.Fatal(err)
	}

	stmts := []string{
		hotSQL(0), hotSQL(1), hotSQL(2),
		"SELECT COUNT(*) FROM t WHERE x >= 1000",
		"SELECT AVG(v) FROM t WHERE x BETWEEN 100 AND 4000",
		"SELECT MIN(v) FROM t WHERE x <= 2500",
		"SELECT MAX(v) FROM t WHERE x BETWEEN 9 AND 5990",
		"SELECT AVG(v) FROM t WHERE x BETWEEN 100000 AND 200000", // no match
		hotSQL(0), hotSQL(1), // repeats: served from cache on the cached session
	}
	compare := func(round string) {
		t.Helper()
		got := cached.ExecBatch(stmts)
		want := plain.ExecBatch(stmts)
		for i := range stmts {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("%s stmt %d: err %v vs %v", round, i, got[i].Err, want[i].Err)
			}
			if got[i].Err != nil {
				if got[i].Err.Error() != want[i].Err.Error() {
					t.Fatalf("%s stmt %d: err %v vs %v", round, i, got[i].Err, want[i].Err)
				}
				continue
			}
			g, w := got[i].Result.Scalar, want[i].Result.Scalar
			if math.Abs(g.Estimate-w.Estimate) > 1e-12 || math.Abs(g.CIHalf-w.CIHalf) > 1e-12 {
				t.Fatalf("%s stmt %d (%s): cached %v±%v vs uncached %v±%v",
					round, i, stmts[i], g.Estimate, g.CIHalf, w.Estimate, w.CIHalf)
			}
			if g.Exact != w.Exact || math.Abs(g.HardLo-w.HardLo) > 1e-12 || math.Abs(g.HardHi-w.HardHi) > 1e-12 {
				t.Fatalf("%s stmt %d: flag/bound mismatch %+v vs %+v", round, i, g, w)
			}
		}
	}
	compare("cold")
	compare("warm") // second run: cached session serves hits
	st, ok := cached.CacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("expected cache hits on the warm run, stats %+v ok=%v", st, ok)
	}

	// writes must invalidate: insert the same rows into both sessions and
	// the twins must still agree (a stale cached answer would diverge)
	for i := 0; i < 50; i++ {
		p, v := []float64{float64(400 + i)}, float64(1000+i)
		if err := cached.Insert("t", p, v); err != nil {
			t.Fatal(err)
		}
		if err := plain.Insert("t", p, v); err != nil {
			t.Fatal(err)
		}
	}
	compare("post-insert")
}

// TestAdaptiveReoptimizeImproves drives a skewed repeated-range workload
// that the ADP partitioning does not answer exactly, re-optimizes, and
// asserts the rebuilt synopsis answers the same workload exactly —
// tighter intervals, higher exact fraction.
func TestAdaptiveReoptimizeImproves(t *testing.T) {
	sess, _ := newAdaptiveSession(t, -1) // cache off: measure the synopsis itself
	run := func() (exact int, meanCI float64) {
		var stmts []string
		for i := 0; i < 30; i++ {
			stmts = append(stmts, hotSQL(i))
		}
		for _, sr := range sess.ExecBatch(stmts) {
			if sr.Err != nil {
				t.Fatal(sr.Err)
			}
			if sr.Result.Scalar.Exact {
				exact++
			}
			meanCI += sr.Result.Scalar.CIHalf
		}
		return exact, meanCI / 30
	}

	exactBefore, ciBefore := run()
	if exactBefore == 30 {
		t.Fatal("test premise broken: hot ranges already exact before re-optimization")
	}
	out, err := sess.Reoptimize("t")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rebuilt || out.Boundaries != 2*len(hotRanges) {
		t.Fatalf("outcome = %+v, want rebuild with %d boundaries", out, 2*len(hotRanges))
	}
	exactAfter, ciAfter := run()
	if exactAfter != 30 {
		t.Fatalf("exact after re-optimization = %d/30, want all (before: %d)", exactAfter, exactBefore)
	}
	if ciAfter >= ciBefore {
		t.Fatalf("mean CI half-width %v did not improve on %v", ciAfter, ciBefore)
	}
	info := sess.Tables()[0].Adaptive
	if info == nil || info.Rebuilds != 1 || !info.Rebuildable {
		t.Fatalf("adaptive info = %+v", info)
	}
}

// TestAdaptiveSessionInvalidationRace is the session-level twin of the
// catalog race test: concurrent inserts and cached-range queries, where
// any reader observing a count decrease proves a stale cached estimate.
func TestAdaptiveSessionInvalidationRace(t *testing.T) {
	sess, _ := newAdaptiveSession(t, 1<<20)
	const sql = "SELECT COUNT(*) FROM t WHERE x >= 0"
	const inserts = 150

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.Exec(sql)
				if err != nil {
					t.Errorf("exec: %v", err)
					return
				}
				if res.Scalar.Estimate < last {
					t.Errorf("stale cached count %v after having seen %v", res.Scalar.Estimate, last)
					return
				}
				last = res.Scalar.Estimate
			}
		}()
	}
	for i := 0; i < inserts; i++ {
		if err := sess.Insert("t", []float64{float64(i)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	res, err := sess.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.Estimate != 6000+inserts {
		t.Fatalf("final count = %v, want %d", res.Scalar.Estimate, 6000+inserts)
	}
}

// TestAdaptiveRebuildDuringInserts exercises the delta-capture path: a
// re-optimization racing a stream of inserts must lose none of them.
func TestAdaptiveRebuildDuringInserts(t *testing.T) {
	sess, _ := newAdaptiveSession(t, -1)
	for i := 0; i < 40; i++ {
		if _, err := sess.Exec(hotSQL(i)); err != nil {
			t.Fatal(err)
		}
	}
	const inserts = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < inserts; i++ {
			if err := sess.Insert("t", []float64{float64(i % 6000)}, 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	if _, err := sess.Reoptimize("t"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	res, err := sess.Exec("SELECT COUNT(*) FROM t WHERE x >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.Estimate != 6000+inserts {
		t.Fatalf("count after rebuild-under-inserts = %v, want %d (updates lost in the swap?)",
			res.Scalar.Estimate, 6000+inserts)
	}
}

// TestAdaptiveShardedReoptimizePersists covers the sharded rebuild path
// end to end: build sharded + persisted, re-optimize, verify improvement
// survives hot-swap, then warm-start a fresh session from the store and
// confirm the rebuilt synopsis (and its alignment) was persisted via the
// manifest.
func TestAdaptiveShardedReoptimizePersists(t *testing.T) {
	dir, err := os.MkdirTemp("", "adaptive-sharded")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir, store.Options{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession()
	if err := sess.EnableAdaptive(AdaptiveConfig{CacheBytes: -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	persisted, err := sess.RegisterAdaptive("t", adaptiveTestTable(6000),
		Options{Partitions: 32, SampleRate: 0.02, Seed: 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !persisted {
		t.Fatal("sharded PASS table should persist")
	}

	for i := 0; i < 40; i++ {
		if _, err := sess.Exec(hotSQL(i)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := sess.Reoptimize("t")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rebuilt {
		t.Fatalf("outcome = %+v", out)
	}
	// post-rebuild, hot ranges are exact even across shard merges
	for i := 0; i < len(hotRanges); i++ {
		res, err := sess.Exec(hotSQL(i))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Scalar.Exact {
			t.Fatalf("hot range %d inexact after sharded re-optimization: %+v", i, res.Scalar)
		}
	}
	// inserts after the rebuild journal through the refreshed router
	if err := sess.Insert("t", []float64{123.5}, 42); err != nil {
		t.Fatal(err)
	}
	want, err := sess.Exec("SELECT COUNT(*) FROM t WHERE x >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// warm start: the rebuilt sharded synopsis must come back
	st2, err := store.Open(dir, store.Options{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	sess2 := NewSession()
	n, err := sess2.AttachStore(st2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d tables, want 1", n)
	}
	defer sess2.Close()
	info := sess2.Tables()[0]
	if info.Shards != 3 {
		t.Fatalf("restored shards = %d, want 3", info.Shards)
	}
	got, err := sess2.Exec("SELECT COUNT(*) FROM t WHERE x >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Scalar.Estimate != want.Scalar.Estimate {
		t.Fatalf("count after warm start = %v, want %v", got.Scalar.Estimate, want.Scalar.Estimate)
	}
	for i := 0; i < len(hotRanges); i++ {
		res, err := sess2.Exec(hotSQL(i))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Scalar.Exact {
			t.Fatalf("hot range %d lost its alignment across warm start", i)
		}
	}
}

// TestRegisterAdaptiveMultiDim: multi-dimensional tables join statistics
// and caching but are not rebuildable.
func TestRegisterAdaptiveMultiDim(t *testing.T) {
	sess := NewSession()
	if err := sess.EnableAdaptive(AdaptiveConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RegisterAdaptive("taxi", DemoTaxi(3000, 2, 1),
		Options{Partitions: 32, SampleRate: 0.05, Seed: 1}, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sess.Exec("SELECT SUM(trip_distance) FROM taxi WHERE pickup_time BETWEEN 5 AND 10"); err != nil {
			t.Fatal(err)
		}
	}
	out, err := sess.Reoptimize("taxi")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rebuilt {
		t.Fatalf("multi-dimensional table must not rebuild: %+v", out)
	}
	info := sess.Tables()[0].Adaptive
	if info == nil || info.Rebuildable || info.WindowQueries == 0 {
		t.Fatalf("adaptive info = %+v", info)
	}
}

// TestEnableAdaptiveGuards covers double-enable and the require-first
// contract of RegisterAdaptive.
func TestEnableAdaptiveGuards(t *testing.T) {
	sess := NewSession()
	if _, err := sess.RegisterAdaptive("t", adaptiveTestTable(100), Options{Partitions: 4, SampleRate: 0.1}, 1); err == nil {
		t.Fatal("RegisterAdaptive before EnableAdaptive must fail")
	}
	if err := sess.EnableAdaptive(AdaptiveConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := sess.EnableAdaptive(AdaptiveConfig{}); err == nil {
		t.Fatal("double EnableAdaptive must fail")
	}
	if _, err := sess.Reoptimize("missing"); err == nil {
		t.Fatal("Reoptimize of an unknown table must fail")
	}
	// dropping clears adaptive state without error
	if _, err := sess.RegisterAdaptive("t", adaptiveTestTable(100), Options{Partitions: 4, SampleRate: 0.1, Seed: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("SELECT COUNT(*) FROM t WHERE x >= 0"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Drop("T"); err != nil { // case-insensitive
		t.Fatal(err)
	}
	if info := sess.Tables(); len(info) != 0 {
		t.Fatalf("tables after drop: %+v", info)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // Close stops the (idle) reoptimizer cleanly
}
