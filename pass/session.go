package pass

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/merge"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/sqlfe"
	"repro/internal/store"
)

// Statement-level instruments, process-wide: every statement executed
// through any session lands in one latency histogram and outcome
// counters, the figures behind passd's GET /metrics and periodic
// self-report.
var (
	queryDuration = obs.Default().NewHistogram("pass_query_duration_seconds", "SQL statement execution latency", nil)
	queriesTotal  = obs.Default().NewCounter("pass_queries_total", "SQL statements executed")
	queryErrors   = obs.Default().NewCounter("pass_query_errors_total", "SQL statements that failed (no-match answers excluded)")
)

// Session is a multi-table SQL serving context: a catalog of named tables
// (each a built synopsis plus its schema) against which SQL statements
// resolve their FROM clause. It is the layer cmd/passd serves over, and
// the entry point for any client that speaks table names rather than
// synopsis handles:
//
//	sess := pass.NewSession()
//	sess.Register("sensors", syn)
//	res, err := sess.Exec("SELECT AVG(light) FROM sensors WHERE time BETWEEN 100 AND 500")
//
// A Session is safe for concurrent use: queries against one table run
// concurrently (batches fan out across the worker pool), while
// Insert/Delete serialise behind the table's write lock.
//
// A session can be made durable with AttachStore: tables are then
// snapshotted to disk, updates are write-ahead journaled, and a restart
// restores the catalog without rebuilding anything (see persist.go).
// A session can further be made workload-adaptive with EnableAdaptive:
// queries are then recorded into per-table sliding windows, repeated
// predicates are served from a semantic result cache, and tables
// registered through RegisterAdaptive are re-optimized in the background
// when the observed workload drifts from the partitioning (see
// adaptive.go).
type Session struct {
	cat      *catalog.Catalog
	store    *store.Store
	adaptive *adaptiveRuntime
	audit    *auditRuntime
	// plans is the session-wide prepared-plan cache: statements are
	// normalized to parameterized templates and their compiled skeletons
	// are reused across calls, so a repeated query shape costs one
	// normalization pass instead of a full parse+compile. Entries are
	// validated against the owning table's identity and plan generation on
	// every hit (see catalog.Table.PlanGen), so drops, re-registrations
	// and engine swaps can never serve a stale plan.
	plans *sqlfe.PlanCache
	// strictScatter makes deadline-bounded queries on sharded tables fail
	// outright instead of returning Degraded partial merges. Applied to
	// engines as they are registered (SetStrictScatter).
	strictScatter bool
	// slowLog, when attached (SetSlowQueryLog), receives one JSON line per
	// statement slower than slowThreshold. Statements are logged by their
	// normalized template text, so literals never reach the log.
	slowLog       *obs.JSONLog
	slowThreshold time.Duration
}

// DefaultPlanCacheSize is the prepared-plan cache capacity of a new
// session (distinct query shapes, not statements — all literal variants
// of one shape share an entry).
const DefaultPlanCacheSize = 256

// SetPlanCacheSize resizes the session's prepared-plan cache, dropping
// all cached plans; n <= 0 disables plan caching (every statement is
// compiled from scratch).
func (s *Session) SetPlanCacheSize(n int) {
	s.plans = sqlfe.NewPlanCache(n)
}

// PlanCacheStats snapshots the session's plan-cache counters.
func (s *Session) PlanCacheStats() sqlfe.PlanCacheStats {
	return s.plans.Stats()
}

// MergePoolStats reports the streaming-merge accumulator pool's activity
// (process-wide): total acquisitions and how many of them had to allocate
// a fresh accumulator — the difference is allocations avoided by reuse.
func (s *Session) MergePoolStats() (acquires, allocated int64) {
	return merge.PoolStats()
}

// SetSlowQueryLog attaches a slow-query log: every statement whose
// execution takes at least threshold emits one JSON line to w (template
// text with literals elided, table, duration, error if any, and a trace
// summary when the statement was an EXPLAIN ANALYZE). threshold 0 logs
// every statement; a nil w detaches the log.
func (s *Session) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	s.slowLog = obs.NewJSONLog(w)
	s.slowThreshold = threshold
}

// observeQuery records one executed statement into the process-wide
// instruments and, when a slow-query log is attached and the statement
// was slow enough, emits its log line. tmplText is the normalized
// template ("" when the statement failed before normalization — the raw
// SQL is withheld so literals never leak into logs).
func (s *Session) observeQuery(tmplText, table string, d time.Duration, err error, root *obs.Span) {
	queryDuration.ObserveDuration(d)
	queriesTotal.Inc()
	if err != nil && !errors.Is(err, ErrNoMatch) {
		queryErrors.Inc()
	}
	if s.slowLog == nil || d < s.slowThreshold {
		return
	}
	fields := map[string]any{
		"sql":         tmplText,
		"duration_ms": float64(d.Microseconds()) / 1000,
	}
	if table != "" {
		fields["table"] = table
	}
	if err != nil {
		fields["error"] = err.Error()
	}
	if root != nil {
		fields["trace_us"] = root.Summary()
	}
	s.slowLog.Emit("slow_query", fields)
}

// strictable is the strict-mode surface of the scatter executor
// (*shard.Engine), matched structurally to keep pass free of a direct
// dependency on the executor's concrete type.
type strictable interface{ SetStrict(bool) }

// SetStrictScatter switches sharded tables between graceful degradation
// (default: a shard that errors or misses the query deadline is dropped
// from the merge and the answer is marked Degraded) and strict mode (such
// queries fail). Call it before registering tables or attaching a store;
// it applies to engines as they enter the catalog.
func (s *Session) SetStrictScatter(strict bool) {
	s.strictScatter = strict
}

// applyScatterMode pushes the session's strict-scatter setting onto an
// engine that supports it.
func (s *Session) applyScatterMode(eng engine.Engine) {
	if sc, ok := engine.Underlying(eng).(strictable); ok {
		sc.SetStrict(s.strictScatter)
	}
}

// NewSession returns a session with an empty catalog.
func NewSession() *Session {
	return &Session{cat: catalog.New(), plans: sqlfe.NewPlanCache(DefaultPlanCacheSize)}
}

// Register adds a synopsis under a table name (case-insensitive, unique).
// The synopsis must carry a schema — built from a Table, or attached via
// SetSchema after LoadSynopsis. With a store attached (AttachStore) the
// table is also snapshotted and its updates journaled; a synopsis that
// cannot be persisted fails with engine.ErrNotSerializable — use
// RegisterEphemeral to serve it without durability.
func (s *Session) Register(name string, syn *Synopsis) error {
	return s.registerSynopsis(name, syn, s.store != nil)
}

// RegisterEphemeral registers a synopsis that is intentionally NOT
// persisted, even when the session has a store attached — for tables the
// operator accepts rebuilding after a restart (e.g. multi-dimensional
// synopses, which have no serialization yet).
func (s *Session) RegisterEphemeral(name string, syn *Synopsis) error {
	return s.registerSynopsis(name, syn, false)
}

func (s *Session) registerSynopsis(name string, syn *Synopsis, persist bool) error {
	if syn == nil {
		return fmt.Errorf("pass: nil synopsis")
	}
	if len(syn.schema.PredColumns) == 0 {
		return fmt.Errorf("pass: synopsis has no schema (loaded from disk?) — call SetSchema first")
	}
	schema := syn.schema
	schema.Table = name
	return s.register(name, syn.inner, schema, persist)
}

// Drop removes a table from the session and, with a store attached,
// deletes its snapshot and write-ahead log — a dropped table must not
// resurrect on the next boot.
func (s *Session) Drop(name string) error {
	// resolve the canonical registered name first: adaptive state is
	// keyed by it, not by whatever casing the caller used
	canonical := name
	if s.adaptive != nil || s.audit != nil {
		if tbl, err := s.cat.Lookup(name); err == nil {
			canonical = tbl.Name()
		}
	}
	if err := s.cat.Drop(name); err != nil {
		return err
	}
	s.adaptiveForget(canonical)
	s.auditForget(canonical)
	if s.store != nil {
		if err := s.store.Remove(name); err != nil {
			return fmt.Errorf("pass: remove persisted files for %q: %w", name, err)
		}
	}
	return nil
}

// TableInfo describes one registered table.
type TableInfo struct {
	// Name is the registered (FROM-resolvable) table name.
	Name string `json:"name"`
	// Engine is the serving engine's display name.
	Engine string `json:"engine"`
	// Rows is the base-table cardinality the synopsis was built over.
	Rows int `json:"rows"`
	// MemoryBytes is the synopsis storage footprint.
	MemoryBytes int `json:"memory_bytes"`
	// PredColumns and AggColumn are the queryable schema.
	PredColumns []string `json:"pred_columns"`
	AggColumn   string   `json:"agg_column"`
	// Shards is the shard count of a sharded table (0 when unsharded),
	// ShardPolicy its partitioning policy ("range"/"hash") and ShardRows
	// the per-shard cardinalities.
	Shards      int    `json:"shards,omitempty"`
	ShardPolicy string `json:"shard_policy,omitempty"`
	ShardRows   []int  `json:"shard_rows,omitempty"`
	// ShardScatter counts queries executed per shard and ShardPruned the
	// (query, shard) pairs skipped by scatter pruning — the scatter-path
	// instrumentation (sharded tables only).
	ShardScatter []int64 `json:"shard_scatter,omitempty"`
	ShardPruned  int64   `json:"shard_pruned,omitempty"`
	// ShardStreamed counts per-shard partial results folded into answers
	// as they arrived (streaming merge), rather than materialized first.
	ShardStreamed int64 `json:"shard_streamed,omitempty"`
	// Adaptive carries workload statistics, cache effectiveness and
	// re-optimization history when the session's adaptive layer is on.
	Adaptive *AdaptiveInfo `json:"adaptive,omitempty"`
	// Audit carries empirical accuracy statistics when the session's
	// audit layer is on (EnableAudit).
	Audit *AuditInfo `json:"audit,omitempty"`
	// Degraded marks a table in read-only degraded mode: its write-ahead
	// journal or checkpoint hit an I/O failure, so writes are rejected
	// while queries keep serving. DegradedCause carries the failure.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
}

// Tables lists the registered tables in deterministic (case-insensitively
// sorted) order, so passd's GET /tables and error messages naming known
// tables are stable across runs.
func (s *Session) Tables() []TableInfo {
	tabs := s.cat.List()
	out := make([]TableInfo, len(tabs))
	for i, t := range tabs {
		schema := t.Schema()
		out[i] = TableInfo{
			Name:        t.Name(),
			Engine:      t.EngineName(),
			Rows:        t.Rows(),
			MemoryBytes: t.MemoryBytes(),
			PredColumns: schema.PredColumns,
			AggColumn:   schema.AggColumn,
		}
		if info, shardRows, ok := t.ShardStats(); ok {
			out[i].Shards = info.Shards
			out[i].ShardPolicy = info.Policy
			out[i].ShardRows = shardRows
			if scattered, pruned, ok := t.ScatterStats(); ok {
				out[i].ShardScatter = scattered
				out[i].ShardPruned = pruned
			}
			if streamed, ok := t.StreamStats(); ok {
				out[i].ShardStreamed = streamed
			}
		}
		out[i].Adaptive = s.adaptiveInfo(t.Name())
		out[i].Audit = s.auditInfo(t.Name())
		if s.store != nil {
			if deg, cause := s.store.Degraded(t.Name()); deg {
				out[i].Degraded = true
				out[i].DegradedCause = cause.Error()
			}
		}
	}
	return out
}

// DegradedTables lists the names of tables currently in read-only
// degraded mode (sorted). Nil without a store attached — degraded mode
// only exists on the durable path.
func (s *Session) DegradedTables() []string {
	if s.store == nil {
		return nil
	}
	return s.store.DegradedTables()
}

// Exec parses, plans and executes one SQL statement, resolving the FROM
// clause against the session catalog. Unknown table names are an error
// (they name the registered tables); see Synopsis.SQL for the legacy
// single-synopsis path that ignores the FROM table.
func (s *Session) Exec(sql string) (SQLResult, error) {
	return s.ExecCtx(context.Background(), sql)
}

// ExecCtx is Exec with deadline propagation: ctx flows through the
// catalog to the engine, so a deadline-aware engine (the scatter-gather
// executor of sharded tables) can drop shards that miss the deadline and
// return a Degraded partial answer (or fail, in strict-scatter mode).
// Engines without the capability get a fail-fast admission check.
//
// A statement prefixed EXPLAIN ANALYZE executes normally with a trace
// attached: the answer is bitwise identical to the plain statement's
// (the traced scatter folds shard partials in the same deterministic
// order), and SQLResult.Trace carries the span tree — compile (plan-cache
// outcome), execute (result-cache outcome, leaf scan counters), and the
// per-shard scatter breakdown on sharded tables.
func (s *Session) ExecCtx(ctx context.Context, sql string) (SQLResult, error) {
	stmt, explain := sqlfe.StripExplain(sql)
	var root *obs.Span
	if explain {
		root = obs.StartTrace("query")
		ctx = obs.WithSpan(ctx, root)
	}
	start := time.Now()
	res, tmplText, table, err := s.execStmt(ctx, stmt)
	root.End()
	s.observeQuery(tmplText, table, time.Since(start), err, root)
	if err != nil {
		return SQLResult{}, err
	}
	if explain {
		res.Trace = root.Export()
	}
	return res, nil
}

// execStmt compiles and dispatches one statement, reporting the
// normalized template text and table name for observation ("" for the
// parts that failed to resolve).
func (s *Session) execStmt(ctx context.Context, sql string) (res SQLResult, tmplText, table string, err error) {
	tbl, plan, tmpl, err := s.compile(ctx, sql)
	if tmpl != nil {
		tmplText = tmpl.Text
	}
	if tbl != nil {
		table = tbl.Name()
	}
	if err != nil {
		return SQLResult{}, tmplText, table, err
	}
	res, err = s.execPlanCtx(ctx, tbl, plan)
	return res, tmplText, table, err
}

// StmtResult is the outcome of one statement in a batched execution.
type StmtResult struct {
	// SQL is the statement as executed.
	SQL string
	// Result holds the answer when Err is nil.
	Result SQLResult
	// Err carries the per-statement failure (ErrNoMatch included); other
	// statements in the batch are unaffected.
	Err error
}

// ExecBatch executes a workload of SQL statements, batching per table:
// scalar statements against the same table — consecutive or not — are
// grouped before dispatch and issued as one QueryBatch (fanning across
// the worker pool on engines that support it), so a multi-table script
// that interleaves tables still gets per-table batched execution instead
// of falling back to singles at every table switch. Per-table batches
// dispatch in the order each table first appears, so execution is
// deterministic. GROUP BY statements execute individually. Results are
// returned in input order and are identical to calling Exec per
// statement.
func (s *Session) ExecBatch(stmts []string) []StmtResult {
	return s.ExecBatchCtx(context.Background(), stmts)
}

// ExecBatchCtx is ExecBatch with deadline propagation (see ExecCtx).
// EXPLAIN ANALYZE statements execute individually through the traced
// path, like GROUP BY.
func (s *Session) ExecBatchCtx(ctx context.Context, stmts []string) []StmtResult {
	out := make([]StmtResult, len(stmts))

	// compile everything first; failures don't block the rest of the batch
	type compiled struct {
		tbl  *catalog.Table
		plan *sqlfe.Plan
		tmpl *sqlfe.Template
	}
	plans := make([]compiled, len(stmts))
	// per-table scalar sub-batches, dispatched in first-appearance order
	batches := make(map[*catalog.Table][]int)
	var order []*catalog.Table
	for i, sql := range stmts {
		out[i].SQL = sql
		if _, explain := sqlfe.StripExplain(sql); explain {
			// the traced path compiles, executes and observes on its own
			out[i].Result, out[i].Err = s.ExecCtx(ctx, sql)
			continue
		}
		tbl, plan, tmpl, err := s.compile(ctx, sql)
		plans[i] = compiled{tbl: tbl, plan: plan, tmpl: tmpl}
		if err != nil {
			out[i].Err = err
			tmplText, table := "", ""
			if tmpl != nil {
				tmplText = tmpl.Text
			}
			if tbl != nil {
				table = tbl.Name()
			}
			s.observeQuery(tmplText, table, 0, err, nil)
			continue
		}
		if plan.GroupDim < 0 && plan.Sketch == nil {
			if _, seen := batches[tbl]; !seen {
				order = append(order, tbl)
			}
			batches[tbl] = append(batches[tbl], i)
		}
	}

	// scalar statements: one engine-level batch per table. Each statement
	// observes the batch's amortized per-statement latency — the whole
	// point of batching is that a statement's marginal cost is below its
	// solo cost, and that is the cost the histogram should reflect.
	for _, tbl := range order {
		idx := batches[tbl]
		qs := make([]core.BatchQuery, len(idx))
		for j, i := range idx {
			qs[j] = core.BatchQuery{Kind: plans[i].plan.Agg, Rect: plans[i].plan.Rect}
		}
		n := tbl.Rows()
		start := time.Now()
		results := tbl.QueryBatchCtx(ctx, qs)
		perStmt := time.Since(start) / time.Duration(len(idx))
		for j, br := range results {
			i := idx[j]
			switch {
			case br.Err != nil:
				out[i].Err = br.Err
			case br.Result.NoMatch:
				out[i].Err = ErrNoMatch
			default:
				out[i].Result = SQLResult{Scalar: answerFromResult(br.Result, n)}
			}
			s.observeQuery(plans[i].tmpl.Text, tbl.Name(), perStmt, out[i].Err, nil)
		}
	}

	// GROUP BY and sketch statements execute individually (neither fits
	// the scalar BatchQuery shape)
	for i := range stmts {
		if out[i].Err != nil || plans[i].plan == nil ||
			(plans[i].plan.GroupDim < 0 && plans[i].plan.Sketch == nil) {
			continue
		}
		start := time.Now()
		out[i].Result, out[i].Err = s.execPlanCtx(ctx, plans[i].tbl, plans[i].plan)
		s.observeQuery(plans[i].tmpl.Text, plans[i].tbl.Name(), time.Since(start), out[i].Err, nil)
	}
	return out
}

// ExecScript splits a semicolon-separated script into statements and
// executes them as one batch.
func (s *Session) ExecScript(script string) []StmtResult {
	return s.ExecBatch(sqlfe.SplitStatements(script))
}

// ExecScriptCtx is ExecScript with deadline propagation (see ExecCtx).
func (s *Session) ExecScriptCtx(ctx context.Context, script string) []StmtResult {
	return s.ExecBatchCtx(ctx, sqlfe.SplitStatements(script))
}

// Insert adds one tuple to a named table (engines with the Updatable
// capability only). The update takes the table's write lock, serialising
// against in-flight queries.
func (s *Session) Insert(table string, pred []float64, agg float64) error {
	tbl, err := s.cat.Lookup(table)
	if err != nil {
		return err
	}
	return tbl.Insert(pred, agg)
}

// InsertMany adds a batch of tuples to a named table under one write-lock
// acquisition; with a store attached the whole batch is journaled as one
// group commit (a single fsync). It returns how many tuples were applied.
func (s *Session) InsertMany(table string, points [][]float64, values []float64) (int, error) {
	tbl, err := s.cat.Lookup(table)
	if err != nil {
		return 0, err
	}
	return tbl.InsertMany(points, values)
}

// Delete removes one tuple from a named table (Updatable engines only).
func (s *Session) Delete(table string, pred []float64, agg float64) error {
	tbl, err := s.cat.Lookup(table)
	if err != nil {
		return err
	}
	return tbl.Delete(pred, agg)
}

// compile turns one statement into an executable plan: the statement is
// normalized into a parameterized template in a single lexer pass (no
// separate parse — the normalizer enforces the same grammar and reports
// the same errors), the template's compiled skeleton is fetched from the
// plan cache or compiled on a miss, and the lifted literals are bound
// back into a concrete plan. With a trace attached to ctx, a "compile"
// span records the template and the plan-cache outcome.
func (s *Session) compile(ctx context.Context, sql string) (*catalog.Table, *sqlfe.Plan, *sqlfe.Template, error) {
	cs := obs.SpanFrom(ctx).Child("compile")
	defer cs.End()
	tmpl, err := sqlfe.Normalize(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	cs.Set("template", tmpl.Text)
	tbl, err := s.cat.Lookup(tmpl.Table)
	if err != nil {
		return nil, nil, tmpl, err
	}
	prep, hit, err := s.preparedFor(tbl, tmpl)
	if err != nil {
		return tbl, nil, tmpl, err
	}
	if hit {
		cs.Set("plan_cache", "hit")
	} else {
		cs.Set("plan_cache", "miss")
	}
	plan, err := prep.Bind(tmpl.Params())
	if err != nil {
		return tbl, nil, tmpl, err
	}
	return tbl, plan, tmpl, nil
}

// preparedFor resolves a normalized template to its compiled skeleton,
// consulting the session plan cache keyed by the canonical template text
// with the table's (identity, plan generation) validity pair; hit reports
// whether the cache served it. Reading the generation before the compile
// is sound even if an engine swap interleaves: the schema is retained
// across swaps, so the compiled skeleton is correct either way, and the
// entry stored under the old generation is evicted on its next lookup.
func (s *Session) preparedFor(tbl *catalog.Table, tmpl *sqlfe.Template) (prep *sqlfe.Prepared, hit bool, err error) {
	gen := tbl.PlanGen()
	if prep, ok := s.plans.Lookup(tmpl.Text, tbl, gen); ok {
		return prep, true, nil
	}
	prep, err = sqlfe.CompileTemplate(tmpl, tbl.Schema())
	if err != nil {
		return nil, false, err
	}
	s.plans.Store(tmpl.Text, tbl, gen, prep)
	return prep, false, nil
}

// execPlanCtx dispatches a compiled plan to a table's engine, observing
// ctx. GROUP BY execution is not deadline-interruptible mid-flight; it
// gets a fail-fast admission check instead. With a trace attached, an
// "execute" span wraps the dispatch (lower layers nest under it) and
// carries the merged result's diagnostics.
func (s *Session) execPlanCtx(ctx context.Context, tbl *catalog.Table, plan *sqlfe.Plan) (SQLResult, error) {
	es := obs.SpanFrom(ctx).Child("execute")
	defer es.End()
	if es != nil {
		ctx = obs.WithSpan(ctx, es)
	}
	n := tbl.Rows()
	if plan.Sketch != nil {
		// sketch scatters are not deadline-interruptible mid-merge (the
		// fold is a fixed-order pass over all shards); admission-check only
		if err := ctx.Err(); err != nil {
			return SQLResult{}, err
		}
		r, err := tbl.SketchQuery(*plan.Sketch)
		if err != nil {
			return SQLResult{}, err
		}
		recordSketchSpan(es, r)
		return SQLResult{Sketch: sketchAnswerFromResult(r)}, nil
	}
	if plan.GroupDim < 0 {
		r, err := tbl.QueryCtx(ctx, plan.Agg, plan.Rect)
		if err != nil {
			return SQLResult{}, err
		}
		recordResultSpan(es, r)
		if r.NoMatch {
			return SQLResult{}, ErrNoMatch
		}
		return SQLResult{Scalar: answerFromResult(r, n)}, nil
	}
	if len(plan.Groups) == 0 {
		return SQLResult{}, fmt.Errorf("pass: GROUP BY on a numeric column needs explicit group keys — use Synopsis.GroupBy")
	}
	if err := ctx.Err(); err != nil {
		return SQLResult{}, err
	}
	res, err := tbl.GroupBy(plan.Agg, plan.Rect, plan.GroupDim, plan.Groups)
	if err != nil {
		return SQLResult{}, err
	}
	es.Set("groups", int64(len(res)))
	return SQLResult{Groups: groupAnswers(res, plan.GroupDict, n)}, nil
}

// recordSketchSpan attaches a sketch answer's diagnostics to the execute
// span: the aggregate kind, the stated error bound, and the net row count
// the merged sketch summarizes.
func recordSketchSpan(sp *obs.Span, r sketch.Result) {
	if sp == nil {
		return
	}
	sp.Set("sketch", r.Kind.String())
	sp.Set("sketch_bound", r.Bound)
	sp.Set("sketch_rows", r.N)
}

// recordResultSpan attaches a merged scalar result's diagnostics to the
// execute span: rows touched, how leaves resolved (exact covered nodes
// vs. sampled partial ones), cardinality evidence and degradation.
func recordResultSpan(sp *obs.Span, r core.Result) {
	if sp == nil {
		return
	}
	sp.Set("tuples_read", int64(r.TuplesRead))
	sp.Set("tuples_skipped", int64(r.SkippedTuples))
	sp.Set("nodes_visited", int64(r.VisitedNodes))
	sp.Set("leaf_exact", int64(r.CoveredParts))
	sp.Set("leaf_sampled", int64(r.PartialParts))
	sp.Set("exact", r.Exact)
	if r.Degraded {
		sp.Set("degraded", true)
	}
	if r.ShardsTotal > 0 {
		sp.Set("shards_total", int64(r.ShardsTotal))
		sp.Set("shards_answered", int64(r.ShardsAnswered))
	}
}
