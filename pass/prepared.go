package pass

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/sqlfe"
)

// PreparedStmt is a statement prepared once against a session: normalized
// to a parameterized template and compiled to a plan skeleton, so each
// execution only binds literals and dispatches — no lexing, parsing or
// column resolution per call.
//
//	ps, _ := sess.Prepare("SELECT SUM(price) FROM sales WHERE qty >= 3")
//	res, _ := ps.Exec(5.0)   // same shape, new literal
//
// The skeleton is revalidated against the table's plan generation on
// every execution, so a prepared handle transparently recompiles after an
// engine swap or a drop-and-re-register of its table. Safe for concurrent
// use.
type PreparedStmt struct {
	sess *Session
	tmpl *sqlfe.Template

	mu   sync.Mutex
	tbl  *catalog.Table
	gen  uint64
	prep *sqlfe.Prepared
}

// Prepare normalizes and compiles one statement against the session
// catalog. Compilation errors (unknown table or column, type mismatches)
// surface here rather than at execution time.
func (s *Session) Prepare(sql string) (*PreparedStmt, error) {
	tmpl, err := sqlfe.Normalize(sql)
	if err != nil {
		return nil, err
	}
	ps := &PreparedStmt{sess: s, tmpl: tmpl}
	if _, _, err := ps.plan(); err != nil {
		return nil, err
	}
	return ps, nil
}

// Text returns the canonical parameterized statement, e.g.
// "SELECT SUM ( price ) FROM sales WHERE qty >= ?n".
func (ps *PreparedStmt) Text() string { return ps.tmpl.Text }

// NumParams reports how many placeholders the statement carries — the
// argument count Exec expects.
func (ps *PreparedStmt) NumParams() int { return ps.tmpl.NumParams() }

// plan returns the statement's current table and compiled skeleton,
// recompiling when the table's plan generation moved (engine swap) or the
// table was dropped and re-registered. The catalog stays authoritative: a
// dropped table fails here with the usual unknown-table error.
func (ps *PreparedStmt) plan() (*catalog.Table, *sqlfe.Prepared, error) {
	tbl, err := ps.sess.cat.Lookup(ps.tmpl.Table)
	if err != nil {
		return nil, nil, err
	}
	gen := tbl.PlanGen()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.prep != nil && ps.tbl == tbl && ps.gen == gen {
		return tbl, ps.prep, nil
	}
	prep, _, err := ps.sess.preparedFor(tbl, ps.tmpl)
	if err != nil {
		return nil, nil, err
	}
	ps.tbl, ps.gen, ps.prep = tbl, gen, prep
	return tbl, prep, nil
}

// Exec executes the prepared statement with positional arguments, one per
// placeholder in statement order. With no arguments the original literals
// the statement was prepared with are used. Numeric placeholders accept
// float64/float32/int/int64, string placeholders accept string.
func (ps *PreparedStmt) Exec(args ...any) (SQLResult, error) {
	return ps.ExecCtx(context.Background(), args...)
}

// ExecCtx is Exec with deadline propagation (see Session.ExecCtx). Each
// execution is observed like any other statement: it lands in the
// process-wide latency histogram and, when slow enough, in the session's
// slow-query log under the prepared template text.
func (ps *PreparedStmt) ExecCtx(ctx context.Context, args ...any) (SQLResult, error) {
	params := ps.tmpl.Params()
	if len(args) > 0 {
		var err error
		if params, err = toParams(args); err != nil {
			return SQLResult{}, err
		}
	}
	start := time.Now()
	res, err := ps.execBound(ctx, params)
	ps.sess.observeQuery(ps.tmpl.Text, ps.tmpl.Table, time.Since(start), err, nil)
	return res, err
}

func (ps *PreparedStmt) execBound(ctx context.Context, params []sqlfe.Param) (SQLResult, error) {
	tbl, prep, err := ps.plan()
	if err != nil {
		return SQLResult{}, err
	}
	plan, err := prep.Bind(params)
	if err != nil {
		return SQLResult{}, err
	}
	return ps.sess.execPlanCtx(ctx, tbl, plan)
}

// toParams converts Go values to typed statement parameters.
func toParams(args []any) ([]sqlfe.Param, error) {
	out := make([]sqlfe.Param, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case float64:
			out[i] = sqlfe.NumParam(v)
		case float32:
			out[i] = sqlfe.NumParam(float64(v))
		case int:
			out[i] = sqlfe.NumParam(float64(v))
		case int64:
			out[i] = sqlfe.NumParam(float64(v))
		case string:
			out[i] = sqlfe.StrParam(v)
		case sqlfe.Param:
			out[i] = v
		default:
			return nil, fmt.Errorf("pass: unsupported parameter type %T at position %d (want a number or a string)", a, i+1)
		}
	}
	return out, nil
}
