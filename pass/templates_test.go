package pass

import (
	"math"
	"sync"
	"testing"
)

func TestBuildTemplatesAndRoute(t *testing.T) {
	tbl := DemoTaxi(10000, 5, 61)
	ts, err := BuildTemplates(tbl, Options{Partitions: 128, SampleRate: 0.05, Seed: 62},
		[]TemplateSpec{
			{Columns: []string{"pickup_time", "pickup_date"}, Weight: 2},
			{Columns: []string{"pu_location"}, Weight: 1},
		})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Templates() != 2 || ts.MemoryBytes() <= 0 {
		t.Fatalf("templates=%d", ts.Templates())
	}
	ans, idx, err := ts.Query(Sum, Range{7, 10}, Range{0, 15})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Errorf("time+date query routed to %d", idx)
	}
	truth, _ := tbl.Exact(Sum, Range{7, 10}, Range{0, 15})
	if truth > 0 && math.Abs(ans.Estimate-truth)/truth > 0.5 {
		t.Errorf("estimate %v far from %v", ans.Estimate, truth)
	}
	// location-only query routes to the second template
	_, idx, err = ts.Query(Count,
		Range{math.Inf(-1), math.Inf(1)},
		Range{math.Inf(-1), math.Inf(1)},
		Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("location query routed to %d", idx)
	}
}

func TestBuildTemplatesUnknownColumn(t *testing.T) {
	tbl := DemoTaxi(500, 2, 63)
	_, err := BuildTemplates(tbl, Options{Partitions: 8, SampleRate: 0.1},
		[]TemplateSpec{{Columns: []string{"bogus"}}})
	if err == nil {
		t.Error("unknown template column accepted")
	}
}

// TestConcurrentQueries verifies that a built synopsis is safe for
// concurrent readers (run with -race to check).
func TestConcurrentQueries(t *testing.T) {
	tbl := DemoTaxi(20000, 1, 64)
	syn, err := Build(tbl, Options{Partitions: 64, SampleRate: 0.02, Seed: 65})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lo := float64((g*37+i)%20) + 0.5
				if _, err := syn.Sum(Range{lo, lo + 3}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
