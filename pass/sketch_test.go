package pass

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// sketchFixtureTable has a discrete aggregate column (100 distinct
// values, 30 rows each) so every sketch aggregate has a meaningful
// exact twin.
func sketchFixtureTable() *Table {
	tbl := NewTable([]string{"hour"}, "light")
	for i := 0; i < 3000; i++ {
		tbl.Append([]float64{float64(i % 24)}, float64(i%100)/10)
	}
	return tbl
}

var sketchSQL = []string{
	"SELECT QUANTILE(light, 0.5) FROM sensors",
	"SELECT COUNT(DISTINCT light) FROM sensors",
	"SELECT TOPK(light, 5) FROM sensors",
}

// TestSessionSketchSQL drives the sketch aggregates end to end through
// Session.Exec and ExecBatch: answers must agree between the two paths,
// carry the row count, and sit within their stated bounds against the
// exact twin (100 distinct values, 30 rows each, median 4.95-ish).
func TestSessionSketchSQL(t *testing.T) {
	sess := NewSession()
	syn, err := Build(sketchFixtureTable(), Options{Partitions: 16, SampleRate: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("sensors", syn); err != nil {
		t.Fatal(err)
	}

	batch := sess.ExecBatch(sketchSQL)
	for i, q := range sketchSQL {
		single, err := sess.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if batch[i].Err != nil {
			t.Fatalf("%s (batch): %v", q, batch[i].Err)
		}
		if single.Sketch == nil || batch[i].Result.Sketch == nil {
			t.Fatalf("%s: sketch answer missing (single %v, batch %v)", q, single.Sketch, batch[i].Result.Sketch)
		}
		if !reflect.DeepEqual(single.Sketch, batch[i].Result.Sketch) {
			t.Errorf("%s: batch answer diverges from single execution: %+v vs %+v",
				q, batch[i].Result.Sketch, single.Sketch)
		}
		if single.Sketch.Rows != 3000 {
			t.Errorf("%s: Rows = %d, want 3000", q, single.Sketch.Rows)
		}
	}

	med, _ := sess.Exec(sketchSQL[0])
	// rank bound: the returned value's rank must be within Bound of 1500;
	// every value spans 30 ranks, so the answer is within Bound/30+1
	// value steps of the true median
	if math.Abs(med.Sketch.Value-4.9) > (med.Sketch.Bound/30+1)*0.1 {
		t.Errorf("QUANTILE(0.5) = %g (bound %g ranks), exact median 4.9", med.Sketch.Value, med.Sketch.Bound)
	}
	dist, _ := sess.Exec(sketchSQL[1])
	if math.Abs(dist.Sketch.Value-100) > (dist.Sketch.Hi-dist.Sketch.Lo)/2 {
		t.Errorf("COUNT(DISTINCT) = %g outside its interval [%g, %g], exact 100",
			dist.Sketch.Value, dist.Sketch.Lo, dist.Sketch.Hi)
	}
	topk, _ := sess.Exec(sketchSQL[2])
	if len(topk.Sketch.Entries) == 0 {
		t.Fatal("TOPK(5): no entries")
	}
	for _, e := range topk.Sketch.Entries {
		if math.Abs(e.Count-30) > e.ErrBound {
			t.Errorf("TOPK entry %g: count %g (exact 30) outside bound %g", e.Value, e.Count, e.ErrBound)
		}
	}

	// EXPLAIN ANALYZE: the traced statement answers bitwise like the
	// untraced one and carries a span tree
	traced, err := sess.Exec("EXPLAIN ANALYZE " + sketchSQL[1])
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE returned no trace")
	}
	if !reflect.DeepEqual(traced.Sketch, dist.Sketch) {
		t.Errorf("traced sketch answer diverges: %+v vs %+v", traced.Sketch, dist.Sketch)
	}
}

// TestSessionSketchShardedTwin answers the same sketch statements from
// a 1-shard and a 4-shard adaptive registration of the same rows. COUNT
// DISTINCT must agree exactly (HLL registers are multiset-determined);
// the others must both sit within their stated bounds.
func TestSessionSketchShardedTwin(t *testing.T) {
	answers := map[int]map[string]*SketchAnswer{}
	for _, shards := range []int{1, 4} {
		sess := NewSession()
		if err := sess.EnableAdaptive(AdaptiveConfig{CacheBytes: -1}); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.RegisterAdaptive("sensors", sketchFixtureTable(),
			Options{Partitions: 16, SampleRate: 0.05, Seed: 42}, shards); err != nil {
			t.Fatal(err)
		}
		answers[shards] = map[string]*SketchAnswer{}
		for _, q := range sketchSQL {
			res, err := sess.Exec(q)
			if err != nil {
				t.Fatalf("%d shards, %s: %v", shards, q, err)
			}
			if res.Sketch == nil || res.Sketch.Rows != 3000 {
				t.Fatalf("%d shards, %s: bad answer %+v", shards, q, res.Sketch)
			}
			answers[shards][q] = res.Sketch
		}
	}
	if !reflect.DeepEqual(answers[1][sketchSQL[1]], answers[4][sketchSQL[1]]) {
		t.Errorf("COUNT DISTINCT diverges between 1 and 4 shards: %+v vs %+v",
			answers[1][sketchSQL[1]], answers[4][sketchSQL[1]])
	}
	for _, shards := range []int{1, 4} {
		med := answers[shards][sketchSQL[0]]
		if math.Abs(med.Value-4.9) > (med.Bound/30+1)*0.1 {
			t.Errorf("%d shards: QUANTILE(0.5) = %g outside rank bound %g", shards, med.Value, med.Bound)
		}
		for _, e := range answers[shards][sketchSQL[2]].Entries {
			if math.Abs(e.Count-30) > e.ErrBound {
				t.Errorf("%d shards: TOPK entry %g count %g outside bound %g", shards, e.Value, e.Count, e.ErrBound)
			}
		}
	}
}

// TestSessionSketchCrashRecovery is the durability twin for sketches:
// journaled inserts reach only the WAL, the store crashes, and the
// reopened session must answer every sketch statement exactly like a
// twin that kept the whole history in memory — the sketch state rides
// in the snapshot and is replayed forward by the WAL.
func TestSessionSketchCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	syn, err := Build(sketchFixtureTable(), Options{Partitions: 16, SampleRate: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	var payload bytes.Buffer
	if err := syn.Save(&payload); err != nil {
		t.Fatal(err)
	}
	twinSyn, err := LoadSynopsis(&payload)
	if err != nil {
		t.Fatal(err)
	}
	twinSyn.SetSchema([]string{"hour"}, "light", nil)
	twin := NewSession()
	if err := twin.Register("sensors", twinSyn); err != nil {
		t.Fatal(err)
	}

	st := testStore(t, dir)
	sess := NewSession()
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("sensors", syn); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		pt := []float64{float64(i % 24)}
		v := float64(i % 7)
		if err := sess.Insert("sensors", pt, v); err != nil {
			t.Fatal(err)
		}
		if err := twin.Insert("sensors", pt, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // crash: WAL intact, snapshot stale
		t.Fatal(err)
	}

	recovered := NewSession()
	st2 := testStore(t, dir)
	defer st2.Close()
	if n, err := recovered.AttachStore(st2); err != nil || n != 1 {
		t.Fatalf("AttachStore = %d, %v", n, err)
	}
	for _, q := range sketchSQL {
		want, err1 := twin.Exec(q)
		got, err2 := recovered.Exec(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: twin err %v, recovered err %v", q, err1, err2)
		}
		if !reflect.DeepEqual(want.Sketch, got.Sketch) {
			t.Errorf("%s: recovered %+v, twin %+v", q, got.Sketch, want.Sketch)
		}
	}
}
