package pass

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func sessionFixture(t *testing.T) (*Session, *Table) {
	t.Helper()
	tbl := NewTable([]string{"time"}, "light")
	for i := 0; i < 4000; i++ {
		tbl.Append([]float64{float64(i % 24)}, float64(i%100)/10)
	}
	syn, err := Build(tbl, Options{Partitions: 16, SampleRate: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession()
	if err := sess.Register("sensors", syn); err != nil {
		t.Fatal(err)
	}
	return sess, tbl
}

func TestSessionExec(t *testing.T) {
	sess, tbl := sessionFixture(t)
	res, err := sess.Exec("SELECT SUM(light) FROM sensors WHERE time BETWEEN 6 AND 18")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	truth, err := tbl.Exact(Sum, Range{Lo: 6, Hi: 18})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Scalar.Estimate-truth) / truth; rel > 0.05 {
		t.Errorf("estimate %v vs truth %v (rel %v)", res.Scalar.Estimate, truth, rel)
	}
	// case-insensitive FROM resolution
	if _, err := sess.Exec("SELECT COUNT(*) FROM SENSORS"); err != nil {
		t.Errorf("case-insensitive table: %v", err)
	}
}

// TestSessionUnknownTable is the regression test for the pre-catalog
// behavior: the SQL frontend used to parse the FROM table and silently
// discard it, so any table name was accepted. Through a Session, unknown
// names must fail with a diagnostic that lists the registered tables.
func TestSessionUnknownTable(t *testing.T) {
	sess, _ := sessionFixture(t)
	_, err := sess.Exec("SELECT SUM(light) FROM nonexistent WHERE time >= 6")
	if err == nil {
		t.Fatal("unknown FROM table must be an error, not silently accepted")
	}
	if !strings.Contains(err.Error(), "nonexistent") || !strings.Contains(err.Error(), "sensors") {
		t.Errorf("error should name the unknown and the known tables: %v", err)
	}
}

func TestSessionRegisterDropTables(t *testing.T) {
	sess, _ := sessionFixture(t)
	infos := sess.Tables()
	if len(infos) != 1 {
		t.Fatalf("Tables = %+v", infos)
	}
	ti := infos[0]
	if ti.Name != "sensors" || ti.Engine != "PASS" || ti.Rows != 4000 || ti.MemoryBytes <= 0 {
		t.Errorf("TableInfo = %+v", ti)
	}
	if len(ti.PredColumns) != 1 || ti.PredColumns[0] != "time" || ti.AggColumn != "light" {
		t.Errorf("schema in TableInfo = %+v", ti)
	}

	// duplicate names rejected; schema-less synopses rejected
	tbl2 := NewTable([]string{"x"}, "v")
	tbl2.Append([]float64{1}, 1)
	tbl2.Append([]float64{2}, 2)
	syn2, err := Build(tbl2, Options{Partitions: 1, SampleSize: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("SENSORS", syn2); err == nil {
		t.Error("duplicate Register should fail")
	}
	if err := sess.Register("other", &Synopsis{inner: syn2.inner}); err == nil {
		t.Error("schema-less Register should fail")
	}

	if err := sess.Drop("sensors"); err != nil {
		t.Fatal(err)
	}
	if len(sess.Tables()) != 0 {
		t.Error("Tables after Drop should be empty")
	}
}

func TestSessionExecBatchMatchesExec(t *testing.T) {
	sess, _ := sessionFixture(t)
	stmts := []string{
		"SELECT SUM(light) FROM sensors WHERE time BETWEEN 6 AND 18",
		"SELECT COUNT(*) FROM sensors WHERE time <= 12",
		"SELECT AVG(light) FROM sensors WHERE time >= 20",
		"SELECT SUM(light) FROM missing",               // unknown table: per-statement error
		"SELECT SUM(light) FROM sensors GROUP BY time", // numeric group-by: error
	}
	batch := sess.ExecBatch(stmts)
	if len(batch) != len(stmts) {
		t.Fatalf("len = %d", len(batch))
	}
	for i, sr := range batch[:3] {
		if sr.Err != nil {
			t.Fatalf("stmt %d: %v", i, sr.Err)
		}
		single, err := sess.Exec(stmts[i])
		if err != nil {
			t.Fatalf("Exec %d: %v", i, err)
		}
		if sr.Result.Scalar != single.Scalar {
			t.Errorf("stmt %d: batch %+v != exec %+v", i, sr.Result.Scalar, single.Scalar)
		}
	}
	if batch[3].Err == nil || !strings.Contains(batch[3].Err.Error(), "missing") {
		t.Errorf("unknown table in batch: %v", batch[3].Err)
	}
	if batch[4].Err == nil {
		t.Error("numeric GROUP BY in batch should error")
	}
}

func TestSessionExecScript(t *testing.T) {
	sess, _ := sessionFixture(t)
	res := sess.ExecScript(`
		SELECT SUM(light) FROM sensors WHERE time BETWEEN 6 AND 18;
		SELECT COUNT(*) FROM sensors;
	`)
	if len(res) != 2 {
		t.Fatalf("script split into %d statements", len(res))
	}
	for i, sr := range res {
		if sr.Err != nil {
			t.Errorf("stmt %d (%q): %v", i, sr.SQL, sr.Err)
		}
	}
	if res[1].Result.Scalar.Estimate != 4000 {
		t.Errorf("COUNT(*) = %v, want 4000 (exact)", res[1].Result.Scalar.Estimate)
	}
}

func TestSessionInsertDelete(t *testing.T) {
	sess, _ := sessionFixture(t)
	if err := sess.Insert("sensors", []float64{5}, 2.5); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if got := sess.Tables()[0].Rows; got != 4001 {
		t.Errorf("Rows after insert = %d", got)
	}
	if err := sess.Delete("sensors", []float64{5}, 2.5); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := sess.Insert("nope", []float64{1}, 1); err == nil {
		t.Error("Insert into unknown table should fail")
	}
}

// TestSessionConcurrent drives batched queries and updates from many
// goroutines; the per-table RWMutex must keep them race-free (verified
// under -race in CI).
func TestSessionConcurrent(t *testing.T) {
	sess, _ := sessionFixture(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, sr := range sess.ExecBatch([]string{
					"SELECT SUM(light) FROM sensors WHERE time BETWEEN 6 AND 18",
					"SELECT COUNT(*) FROM sensors",
				}) {
					if sr.Err != nil {
						t.Errorf("query: %v", sr.Err)
						return
					}
				}
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := sess.Insert("sensors", []float64{float64(i % 24)}, 1.0); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
