package pass

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/sqlfe"
	"repro/internal/store"
)

// Durable sessions: a Session with a store.Store attached persists its
// catalog — every registered table is snapshotted to the store's data
// directory, every Insert/Delete is journaled to a per-table write-ahead
// log before the in-memory apply, and dropping a table removes its files.
// Reattaching a store to a fresh session (a passd restart) restores the
// whole catalog from snapshots + WAL replay, with no synopsis rebuilt.

// AttachStore wires a durable store under the session: every table
// already persisted in the store's data directory is loaded into the
// catalog (snapshot decode + WAL replay — the warm-start path), and all
// subsequent Register/Insert/Delete/Drop calls are persisted. It returns
// the number of tables restored.
func (s *Session) AttachStore(st *store.Store) (int, error) {
	if s.store != nil {
		return 0, fmt.Errorf("pass: session already has a store attached")
	}
	loaded, err := st.LoadAll()
	if err != nil {
		return 0, err
	}
	for _, lt := range loaded {
		s.applyScatterMode(lt.Engine)
		tbl, err := s.cat.Register(lt.Name, lt.Engine, lt.Schema)
		if err != nil {
			return 0, fmt.Errorf("pass: warm start table %q: %w", lt.Name, err)
		}
		// warm-started tables join the adaptive and audit layers too
		// (statistics + cache + tap; no rebuilds and no exact ground
		// truth — the base rows live only in the synopsis)
		s.attachHooks(tbl)
		if sh, ok := engine.Underlying(lt.Engine).(engine.Sharded); ok {
			j, err := st.AttachSharded(tbl, sh, sh.ShardInfo().Shards)
			if err != nil {
				return 0, err
			}
			tbl.AttachJournal(j)
			continue
		}
		j, err := st.Attach(tbl)
		if err != nil {
			return 0, err
		}
		tbl.AttachJournal(j)
	}
	s.store = st
	return len(loaded), nil
}

// Persistent reports whether the session has a durable store attached.
func (s *Session) Persistent() bool { return s.store != nil }

// RegisterEngine registers an arbitrary engine under a table name with an
// explicit schema — the path for engines restored from snapshot files
// (passquery -load) or built outside the pass API, sharded engines
// (BuildShardedEngine) included. With a store attached it persists like
// Register.
func (s *Session) RegisterEngine(name string, eng engine.Engine, schema sqlfe.Schema) error {
	if eng == nil {
		return fmt.Errorf("pass: nil engine")
	}
	schema.Table = name
	return s.register(name, eng, schema, s.store != nil)
}

// RegisterEngineEphemeral registers an arbitrary engine that is
// intentionally NOT persisted, even with a store attached — the
// RegisterEphemeral counterpart of RegisterEngine.
func (s *Session) RegisterEngineEphemeral(name string, eng engine.Engine, schema sqlfe.Schema) error {
	if eng == nil {
		return fmt.Errorf("pass: nil engine")
	}
	schema.Table = name
	return s.register(name, eng, schema, false)
}

// register adds the engine to the catalog and, on the persist path,
// attaches its journal and snapshots it — in that order: any insert that
// sneaks in between registration and the snapshot is either journaled (and
// truncated when the snapshot folds it in) or captured by the snapshot
// itself, so no acknowledged update can miss both. Sharded engines take
// the per-shard path: one routed journal and one snapshot per shard plus
// the manifest. A table that was promised durability but cannot be
// persisted (engine.ErrNotSerializable, disk errors) is rolled back out
// of the catalog and the store — callers choose explicitly between
// failing and RegisterEphemeral, never a silent skip.
func (s *Session) register(name string, eng engine.Engine, schema sqlfe.Schema, persist bool) error {
	s.applyScatterMode(eng)
	tbl, err := s.cat.Register(name, eng, schema)
	if err != nil {
		return err
	}
	s.attachHooks(tbl)
	if !persist {
		return nil
	}
	rollback := func() {
		_ = s.cat.Drop(name)
		_ = s.store.Remove(name)
	}
	if sh, ok := engine.Underlying(eng).(engine.Sharded); ok {
		j, err := s.store.AttachSharded(tbl, sh, sh.ShardInfo().Shards)
		if err != nil {
			rollback()
			return fmt.Errorf("pass: attach shard journals for table %q: %w", name, err)
		}
		tbl.AttachJournal(j)
		if err := s.store.SaveSharded(tbl); err != nil {
			rollback()
			return fmt.Errorf("pass: persist sharded table %q: %w", name, err)
		}
		return nil
	}
	j, err := s.store.Attach(tbl)
	if err != nil {
		rollback()
		return fmt.Errorf("pass: attach journal for table %q: %w", name, err)
	}
	tbl.AttachJournal(j)
	if err := s.store.SaveTable(tbl); err != nil {
		rollback()
		return fmt.Errorf("pass: persist table %q: %w", name, err)
	}
	return nil
}

// Checkpoint snapshots every table with journaled updates and truncates
// the corresponding logs. No-op without a store.
func (s *Session) Checkpoint() error {
	if s.store == nil {
		return nil
	}
	return s.store.CheckpointAll()
}

// Close stops the background re-optimizer and audit workers (if those
// layers are on), performs a final checkpoint, and releases the attached
// store's files. Without a store only the worker shutdowns remain.
func (s *Session) Close() error {
	if s.adaptive != nil {
		s.adaptive.reopt.Stop()
	}
	s.auditStop()
	if s.store == nil {
		return nil
	}
	err := s.store.CheckpointAll()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}
