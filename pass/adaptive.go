package pass

// Workload-adaptive serving: a Session with EnableAdaptive on collects
// per-table query statistics (internal/adaptive.Collector), serves
// repeated predicates from a semantic result cache (adaptive.Cache), and
// re-optimizes drifted tables in the background — rebuilding the synopsis
// with partition boundaries forced onto the workload's hot query
// endpoints and hot-swapping it under the catalog's table lock, then
// persisting the new synopsis through the attached store.
//
// Rebuilds need the base rows, which a built synopsis does not retain:
// RegisterAdaptive keeps a private copy of the table data, held in
// lockstep with the serving engine via the catalog's update observer, so
// a rebuild always starts from exactly the rows the engine summarises.
// Tables registered through the plain Register paths (and tables
// warm-started from snapshots, whose rows exist only inside the synopsis)
// still get statistics and caching, but skip re-optimization.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/shard"
)

// AdaptiveConfig tunes the session's workload-adaptive layer. The zero
// value enables statistics and a 64 MiB cache with manual-only
// re-optimization; set ReoptInterval for the background loop.
type AdaptiveConfig struct {
	// ReoptInterval is the background re-optimization scan period;
	// non-positive means manual triggering only (Session.Reoptimize).
	ReoptInterval time.Duration
	// Window is the per-table sliding-window size (default 2048).
	Window int
	// MinWindow gates automatic rebuilds until enough queries were
	// observed (default 64).
	MinWindow int
	// DriftThreshold triggers a rebuild when the fraction of recent
	// traffic hitting repeated-but-inexact ranges crosses it (default 0.25).
	DriftThreshold float64
	// MaxBoundaries caps forced boundaries per rebuild (default 16).
	MaxBoundaries int
	// CacheBytes bounds the semantic result cache; 0 defaults to 64 MiB,
	// negative disables caching entirely (statistics still collected).
	CacheBytes int
	// Logf receives re-optimization diagnostics (default: discard).
	Logf func(format string, args ...any)
}

// adaptiveRuntime is the session's adaptive state.
type adaptiveRuntime struct {
	col   *adaptive.Collector
	cache *adaptive.Cache // nil when disabled
	reopt *adaptive.Reoptimizer

	mu      sync.Mutex
	sources map[string]*tableSource // key: lower-cased table name
}

// resultCache returns the cache as the catalog interface, or a true nil
// when caching is disabled (a typed nil would still be a non-nil
// interface and trip the catalog's nil checks).
func (rt *adaptiveRuntime) resultCache() catalog.ResultCache {
	if rt.cache == nil {
		return nil
	}
	return rt.cache
}

// tableSource is the retained base data of one adaptive table, kept in
// lockstep with the serving engine through the catalog update observer.
type tableSource struct {
	mu   sync.Mutex
	data *dataset.Dataset
	opt  Options
	// shards is the shard count the table serves with (1 = unsharded).
	shards int
	// persisted records whether the table is in the durable store, so a
	// rebuilt engine is re-snapshotted the same way.
	persisted bool
	// capturing/deltas buffer updates that land while a rebuild is in
	// flight, applied to the new engine inside the swap (under the
	// table's exclusive lock) so no acknowledged update is lost.
	capturing bool
	deltas    []deltaOp
}

type deltaOp struct {
	point []float64
	value float64
	del   bool
}

// ObserveInsert keeps the retained rows in lockstep with the engine; it
// runs under the table's update lock (catalog.UpdateObserver).
func (src *tableSource) ObserveInsert(point []float64, value float64) {
	src.mu.Lock()
	defer src.mu.Unlock()
	src.data.Append(point, value)
	if src.capturing {
		src.deltas = append(src.deltas, deltaOp{point: append([]float64(nil), point...), value: value})
	}
}

// ObserveDelete removes the first retained row matching the tuple.
func (src *tableSource) ObserveDelete(point []float64, value float64) {
	src.mu.Lock()
	defer src.mu.Unlock()
	removeRow(src.data, point, value)
	if src.capturing {
		src.deltas = append(src.deltas, deltaOp{point: append([]float64(nil), point...), value: value, del: true})
	}
}

// removeRow deletes the first tuple equal to (point, value) by swapping
// the last row in — order is irrelevant, every build sorts.
func removeRow(d *dataset.Dataset, point []float64, value float64) {
	n := d.N()
search:
	for i := 0; i < n; i++ {
		if d.Agg[i] != value {
			continue
		}
		for c := 0; c < d.Dims() && c < len(point); c++ {
			if d.Pred[c][i] != point[c] {
				continue search
			}
		}
		last := n - 1
		for c := 0; c < d.Dims(); c++ {
			d.Pred[c][i] = d.Pred[c][last]
			d.Pred[c] = d.Pred[c][:last]
		}
		d.Agg[i] = d.Agg[last]
		d.Agg = d.Agg[:last]
		return
	}
}

// EnableAdaptive turns on the workload-adaptive layer: statistics
// collection and result caching for every current and future table, and
// (with a positive ReoptInterval) background re-optimization of tables
// registered through RegisterAdaptive. Enable before registering tables
// or attaching a store; it cannot be enabled twice.
func (s *Session) EnableAdaptive(cfg AdaptiveConfig) error {
	if s.adaptive != nil {
		return fmt.Errorf("pass: session already has the adaptive layer enabled")
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	rt := &adaptiveRuntime{
		col:     adaptive.NewCollector(cfg.Window),
		sources: make(map[string]*tableSource),
	}
	if cfg.CacheBytes > 0 {
		rt.cache = adaptive.NewCache(cfg.CacheBytes)
	}
	rt.reopt = adaptive.NewReoptimizer(rt.col, adaptive.ReoptConfig{
		Interval:       cfg.ReoptInterval,
		MinWindow:      cfg.MinWindow,
		DriftThreshold: cfg.DriftThreshold,
		MaxBoundaries:  cfg.MaxBoundaries,
		Logf:           cfg.Logf,
	}, s.rebuildTable)
	s.adaptive = rt
	for _, tbl := range s.cat.List() {
		s.attachHooks(tbl)
	}
	rt.reopt.Start()
	return nil
}

// Adaptive reports whether the adaptive layer is enabled.
func (s *Session) Adaptive() bool { return s.adaptive != nil }

// RegisterAdaptive builds a synopsis over the table (sharded when
// shards > 1), registers it like Register/RegisterEngine, and — for
// one-predicate-column tables — retains a copy of the rows so the
// background re-optimizer can rebuild the synopsis with workload-aligned
// partition boundaries. Multi-dimensional tables are registered and
// observed but not rebuildable (the k-d tree has no 1D boundaries to
// force); they behave exactly like plain registration.
//
// With a store attached the table persists like Register; engines that
// cannot be serialized fall back to ephemeral serving, reported by the
// persisted return.
func (s *Session) RegisterAdaptive(name string, t *Table, opt Options, shards int) (persisted bool, err error) {
	if s.adaptive == nil {
		return false, fmt.Errorf("pass: RegisterAdaptive requires EnableAdaptive first")
	}
	if t == nil || t.Len() == 0 {
		return false, fmt.Errorf("pass: RegisterAdaptive needs a non-empty table")
	}
	persisted = s.store != nil
	if shards > 1 {
		eng, schema, berr := BuildShardedEngine(t, opt, shards)
		if berr != nil {
			return false, berr
		}
		err = s.RegisterEngine(name, eng, schema)
		if isNotSerializable(err) {
			persisted = false
			err = s.RegisterEngineEphemeral(name, eng, schema)
		}
	} else {
		syn, berr := BuildAuto(t, opt)
		if berr != nil {
			return false, berr
		}
		err = s.Register(name, syn)
		if isNotSerializable(err) {
			persisted = false
			err = s.RegisterEphemeral(name, syn)
		}
	}
	if err != nil {
		return false, err
	}
	if t.Dims() != 1 {
		return persisted, nil
	}
	tbl, err := s.cat.Lookup(name)
	if err != nil {
		return persisted, err
	}
	if shards < 1 {
		shards = 1
	}
	src := &tableSource{data: t.inner.Clone(), opt: opt, shards: shards, persisted: persisted}
	rt := s.adaptive
	rt.mu.Lock()
	rt.sources[strings.ToLower(name)] = src
	rt.mu.Unlock()
	tbl.AttachObserver(src)
	s.auditAttachSource(tbl)
	return persisted, nil
}

func isNotSerializable(err error) bool {
	return errors.Is(err, engine.ErrNotSerializable)
}

// Reoptimize forces a re-optimization decision for one table now,
// bypassing the drift threshold: if the observed window yields workload
// boundaries that differ from the last rebuild, the synopsis is rebuilt
// and hot-swapped. The outcome reports what happened either way.
func (s *Session) Reoptimize(table string) (adaptive.Outcome, error) {
	if s.adaptive == nil {
		return adaptive.Outcome{}, fmt.Errorf("pass: session has no adaptive layer (EnableAdaptive)")
	}
	tbl, err := s.cat.Lookup(table)
	if err != nil {
		return adaptive.Outcome{}, err
	}
	return s.adaptive.reopt.ReoptimizeNow(tbl.Name())
}

// rebuildTable is the Reoptimizer's rebuild hook: construct a new
// synopsis over the retained rows with the forced boundaries, apply any
// updates that landed during construction, hot-swap it under the table's
// exclusive lock, and re-persist.
func (s *Session) rebuildTable(table string, bs []partition.Boundary) error {
	rt := s.adaptive
	rt.mu.Lock()
	src := rt.sources[strings.ToLower(table)]
	rt.mu.Unlock()
	if src == nil {
		return adaptive.ErrNoSource
	}
	tbl, err := s.cat.Lookup(table)
	if err != nil {
		return err
	}

	// snapshot the rows and start capturing concurrent updates; the
	// observer keeps data in lockstep under the table's update lock, so
	// every update is either in the clone or in the delta buffer
	src.mu.Lock()
	data := src.data.Clone()
	src.capturing = true
	src.deltas = nil
	opt, shards := src.opt, src.shards
	src.mu.Unlock()
	stopCapture := func() {
		src.mu.Lock()
		src.capturing = false
		src.deltas = nil
		src.mu.Unlock()
	}

	newEng, err := buildAligned(data, opt, shards, bs)
	if err != nil {
		stopCapture()
		return err
	}
	s.applyScatterMode(newEng)

	// swap under the exclusive lock: no update can interleave, so after
	// the captured deltas are replayed the new engine holds exactly the
	// rows the old one did
	err = tbl.SwapEngine(func(engine.Engine) (engine.Engine, error) {
		src.mu.Lock()
		defer src.mu.Unlock()
		defer func() { src.capturing = false; src.deltas = nil }()
		if len(src.deltas) > 0 {
			u, ok := engine.Underlying(newEng).(engine.Updatable)
			if !ok {
				return nil, fmt.Errorf("pass: %d updates landed during rebuild but engine %s is not updatable", len(src.deltas), newEng.Name())
			}
			for _, d := range src.deltas {
				var aerr error
				if d.del {
					aerr = u.Delete(d.point, d.value)
				} else {
					aerr = u.Insert(d.point, d.value)
				}
				if aerr != nil {
					return nil, fmt.Errorf("pass: replay update captured during rebuild: %w", aerr)
				}
			}
		}
		return newEng, nil
	})
	if err != nil {
		stopCapture()
		return err
	}

	// persist the rebuilt synopsis through the store. A crash before this
	// completes recovers the pre-rebuild snapshot + WAL — a consistent
	// (merely unoptimized) state; the re-optimizer will fire again.
	if s.store != nil && src.persisted {
		if sh, ok := engine.Underlying(newEng).(engine.Sharded); ok {
			// refresh the journal router: the rebuilt cuts may differ
			j, err := s.store.AttachSharded(tbl, sh, sh.ShardInfo().Shards)
			if err != nil {
				return fmt.Errorf("pass: reattach shard journals after rebuild of %q: %w", table, err)
			}
			tbl.AttachJournal(j)
			if err := s.store.SaveSharded(tbl); err != nil {
				return fmt.Errorf("pass: persist rebuilt sharded table %q: %w", table, err)
			}
		} else if err := s.store.SaveTable(tbl); err != nil {
			return fmt.Errorf("pass: persist rebuilt table %q: %w", table, err)
		}
	}
	return nil
}

// buildAligned constructs the replacement engine: a 1D PASS synopsis
// with the forced boundaries, or a range-sharded set of them with the
// whole-table budget divided by shard cardinality (each shard keeps the
// boundaries that fall inside its key range).
func buildAligned(data *dataset.Dataset, opt Options, shards int, bs []partition.Boundary) (engine.Engine, error) {
	iopt, err := opt.internal()
	if err != nil {
		return nil, err
	}
	iopt.ForceBoundaries = bs
	if shards <= 1 {
		return core.Build(data, iopt)
	}
	total := data.N()
	return shard.Build(data, shard.Range, 0, shards, func(i int, sd *dataset.Dataset) (engine.Engine, error) {
		per := iopt
		per.Partitions = scaleShardBudget(iopt.Partitions, sd.N(), total)
		if iopt.SampleSize > 0 {
			per.SampleSize = scaleShardBudget(iopt.SampleSize, sd.N(), total)
		}
		per.Seed = iopt.Seed + uint64(i+1)*0x9e3779b97f4a7c15
		return core.Build(sd, per)
	})
}

// scaleShardBudget apportions a whole-table budget to one shard by its
// row share, never below 1 (mirrors the engine factory's policy).
func scaleShardBudget(budget, shardRows, totalRows int) int {
	v := int(float64(budget) * float64(shardRows) / float64(totalRows))
	if v < 1 {
		v = 1
	}
	return v
}

// AdaptiveInfo is the per-table adaptive state surfaced by Tables and
// passd's GET /tables.
type AdaptiveInfo struct {
	// WindowQueries and TotalQueries count observed queries (sliding
	// window / lifetime).
	WindowQueries int   `json:"window_queries"`
	TotalQueries  int64 `json:"total_queries"`
	// ExactFrac is the fraction of window queries answered exactly;
	// MeanRelCI the mean relative CI half-width of the inexact ones.
	ExactFrac float64 `json:"exact_frac"`
	MeanRelCI float64 `json:"mean_rel_ci"`
	// CacheHits/CacheMisses/CacheHitRate report semantic-cache traffic
	// for this table (absent when caching is disabled).
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Rebuildable reports whether the table retains base data for
	// workload-driven rebuilds (RegisterAdaptive, 1D only).
	Rebuildable bool `json:"rebuildable"`
	// Rebuilds, LastReopt, LastDrift and LastOutcome summarise
	// re-optimization history.
	Rebuilds    int       `json:"rebuilds"`
	LastReopt   time.Time `json:"last_reopt,omitzero"`
	LastDrift   float64   `json:"last_drift"`
	LastOutcome string    `json:"last_outcome,omitempty"`
}

// adaptiveInfo assembles one table's AdaptiveInfo (nil when the layer is
// off).
func (s *Session) adaptiveInfo(name string) *AdaptiveInfo {
	rt := s.adaptive
	if rt == nil {
		return nil
	}
	info := &AdaptiveInfo{}
	if st, ok := rt.col.Stats(name); ok {
		info.WindowQueries = st.Window
		info.TotalQueries = st.Total
		info.ExactFrac = st.ExactFrac
		info.MeanRelCI = st.MeanRelCI
	}
	if rt.cache != nil {
		h, m := rt.cache.TableStats(name)
		info.CacheHits, info.CacheMisses = h, m
		if h+m > 0 {
			info.CacheHitRate = float64(h) / float64(h+m)
		}
	}
	rt.mu.Lock()
	_, info.Rebuildable = rt.sources[strings.ToLower(name)]
	rt.mu.Unlock()
	st := rt.reopt.Status(name)
	info.Rebuilds = st.Rebuilds
	info.LastReopt = st.LastReopt
	info.LastDrift = st.LastDrift
	info.LastOutcome = st.LastOutcome
	return info
}

// CacheStats reports the session-wide semantic-cache counters, ok=false
// when the adaptive layer or its cache is off.
func (s *Session) CacheStats() (adaptive.CacheStats, bool) {
	if s.adaptive == nil || s.adaptive.cache == nil {
		return adaptive.CacheStats{}, false
	}
	return s.adaptive.cache.Stats(), true
}

// adaptiveForget clears all adaptive state of a dropped table.
func (s *Session) adaptiveForget(name string) {
	rt := s.adaptive
	if rt == nil {
		return
	}
	rt.col.Forget(name)
	if rt.cache != nil {
		rt.cache.Forget(name)
	}
	rt.reopt.Forget(name)
	rt.mu.Lock()
	delete(rt.sources, strings.ToLower(name))
	rt.mu.Unlock()
}
