package pass

import (
	"repro/internal/sketch"
)

// SketchAnswer is the public answer of a sketch-family SQL aggregate
// (QUANTILE, COUNT DISTINCT, TOPK). Unlike Answer, whose interval is a
// confidence interval from sampling theory, a SketchAnswer's [Lo, Hi] is
// the sketch's guarantee interval: hard for QUANTILE (rank error) and
// TOPK (count error), 3-sigma for COUNT DISTINCT.
type SketchAnswer struct {
	// Kind spells the aggregate the way SQL does: "QUANTILE",
	// "COUNT DISTINCT", or "TOPK".
	Kind string
	// Value is the scalar answer: the quantile value or the distinct-count
	// estimate. Zero for TOPK, whose answer is Entries.
	Value float64
	// Lo and Hi bound the answer per the sketch's guarantee.
	Lo, Hi float64
	// Bound is the stated error bound in the aggregate's native units:
	// rank positions for QUANTILE, interval width for COUNT DISTINCT,
	// count units for TOPK entries.
	Bound float64
	// Entries are the heavy hitters of a TOPK answer, ordered by
	// estimated count descending (nil for other kinds).
	Entries []SketchEntry
	// Rows is the net row count the sketch has absorbed.
	Rows int64
}

// SketchEntry is one TOPK heavy hitter: the value, its estimated count,
// and the symmetric count error bound (|estimate − true| ≤ ErrBound).
type SketchEntry struct {
	Value    float64
	Count    float64
	ErrBound float64
}

// sketchAnswerFromResult converts an internal sketch result to the
// public answer.
func sketchAnswerFromResult(r sketch.Result) *SketchAnswer {
	a := &SketchAnswer{
		Kind:  r.Kind.String(),
		Value: r.Value,
		Lo:    r.Lo,
		Hi:    r.Hi,
		Bound: r.Bound,
		Rows:  r.N,
	}
	if len(r.Entries) > 0 {
		a.Entries = make([]SketchEntry, len(r.Entries))
		for i, e := range r.Entries {
			a.Entries[i] = SketchEntry{Value: e.Value, Count: e.Count, ErrBound: e.ErrBound}
		}
	}
	return a
}
