package pass

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sqlfe"
)

// collectSpans flattens a span tree into name → node for assertions.
func collectSpans(root *obs.SpanJSON) map[string][]*obs.SpanJSON {
	out := make(map[string][]*obs.SpanJSON)
	var walk func(n *obs.SpanJSON)
	walk = func(n *obs.SpanJSON) {
		if n == nil {
			return
		}
		out[n.Name] = append(out[n.Name], n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// TestExplainAnalyzeTwin is the acceptance scenario: EXPLAIN ANALYZE on a
// sharded, plan-cached query returns a span tree whose counters match the
// engine's own stats, and the traced answer is bitwise identical to the
// untraced twin.
func TestExplainAnalyzeTwin(t *testing.T) {
	tbl, eng := shardedFixture(t, 4)
	_ = tbl
	sess := NewSession()
	if err := sess.RegisterEngine("sensors", eng, stubSchemaNamed("sensors", "hour", "light")); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18"

	// warm the plan cache and take the untraced answer
	plain, err := sess.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	prunedBefore := sess.Tables()[0].ShardPruned

	traced, err := sess.Exec("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE returned no trace")
	}

	// bitwise-identical answer (the reorder buffer folds shard partials in
	// relevant-shard order on both paths)
	if traced.Scalar != plain.Scalar {
		t.Errorf("traced answer differs from untraced:\n traced: %+v\n plain:  %+v", traced.Scalar, plain.Scalar)
	}

	spans := collectSpans(traced.Trace)
	if len(spans["query"]) != 1 || len(spans["compile"]) != 1 || len(spans["execute"]) != 1 {
		t.Fatalf("span tree missing query/compile/execute: %v", keys(spans))
	}

	// compile span: the statement shape was cached by the warm-up run
	compile := spans["compile"][0]
	if got := compile.Attrs["plan_cache"]; got != "hit" {
		t.Errorf("plan_cache = %v, want hit (warmed)", got)
	}
	if tmpl, _ := compile.Attrs["template"].(string); !strings.Contains(tmpl, "?") {
		t.Errorf("template %q should carry placeholders, not literals", tmpl)
	}

	// scatter span counters must match the engine's own stats
	if len(spans["scatter"]) != 1 {
		t.Fatalf("want one scatter span, got %d", len(spans["scatter"]))
	}
	scatter := spans["scatter"][0]
	ti := sess.Tables()[0]
	if got := jsonInt(t, scatter.Attrs["shards_total"]); got != int64(ti.Shards) {
		t.Errorf("scatter shards_total = %d, want %d", got, ti.Shards)
	}
	prunedDelta := ti.ShardPruned - prunedBefore
	if got := jsonInt(t, scatter.Attrs["shards_pruned"]); got != prunedDelta {
		t.Errorf("scatter shards_pruned = %d, want engine delta %d", got, prunedDelta)
	}
	relevant := jsonInt(t, scatter.Attrs["shards_relevant"])
	if got := jsonInt(t, scatter.Attrs["shards_answered"]); got != relevant {
		t.Errorf("shards_answered = %d, want %d (nothing dropped)", got, relevant)
	}
	if got := int64(len(spans["shard[0]"]) + len(spans["shard[1]"]) + len(spans["shard[2]"]) + len(spans["shard[3]"])); got != relevant {
		t.Errorf("%d per-shard spans, want %d", got, relevant)
	}

	// span durations sum sanely: children never exceed their parent by
	// more than scheduling noise, and the root covers the execute span
	root := spans["query"][0]
	execute := spans["execute"][0]
	if execute.DurationUS > root.DurationUS {
		t.Errorf("execute (%dus) exceeds root (%dus)", execute.DurationUS, root.DurationUS)
	}
	if scatter.DurationUS > execute.DurationUS {
		t.Errorf("scatter (%dus) exceeds execute (%dus)", scatter.DurationUS, execute.DurationUS)
	}
	if root.DurationUS <= 0 {
		t.Errorf("root duration %dus, want > 0", root.DurationUS)
	}

	// result-cache outcome is recorded when the adaptive layer is off
	if got := execute.Attrs["result_cache"]; got != "off" {
		t.Errorf("result_cache = %v, want off (no adaptive layer)", got)
	}

	// the whole tree must survive a JSON round trip (the passd wire path)
	if _, err := json.Marshal(traced.Trace); err != nil {
		t.Fatal(err)
	}
}

// TestExplainAnalyzeResultCacheHit checks the execute span reports the
// semantic result cache's outcome when the adaptive layer is on.
func TestExplainAnalyzeResultCacheHit(t *testing.T) {
	tbl, eng := shardedFixture(t, 2)
	_ = tbl
	sess := NewSession()
	if err := sess.EnableAdaptive(AdaptiveConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := sess.RegisterEngine("sensors", eng, stubSchemaNamed("sensors", "hour", "light")); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT COUNT(*) FROM sensors WHERE hour BETWEEN 2 AND 9"
	plain, err := sess.Exec(q) // miss + store
	if err != nil {
		t.Fatal(err)
	}
	traced, err := sess.Exec("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatal(err)
	}
	spans := collectSpans(traced.Trace)
	if got := spans["execute"][0].Attrs["result_cache"]; got != "hit" {
		t.Errorf("result_cache = %v, want hit", got)
	}
	if traced.Scalar != plain.Scalar {
		t.Errorf("cached traced answer differs: %+v vs %+v", traced.Scalar, plain.Scalar)
	}
}

// TestExplainAnalyzeInBatch routes explain statements through the
// individual traced path inside a batch.
func TestExplainAnalyzeInBatch(t *testing.T) {
	tbl, eng := shardedFixture(t, 2)
	_ = tbl
	sess := NewSession()
	if err := sess.RegisterEngine("sensors", eng, stubSchemaNamed("sensors", "hour", "light")); err != nil {
		t.Fatal(err)
	}
	out := sess.ExecBatch([]string{
		"SELECT SUM(light) FROM sensors WHERE hour BETWEEN 1 AND 5",
		"EXPLAIN ANALYZE SELECT SUM(light) FROM sensors WHERE hour BETWEEN 1 AND 5",
	})
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("errs: %v, %v", out[0].Err, out[1].Err)
	}
	if out[0].Result.Trace != nil {
		t.Error("plain statement must carry no trace")
	}
	if out[1].Result.Trace == nil {
		t.Fatal("explain statement in batch carries no trace")
	}
	if out[0].Result.Scalar != out[1].Result.Scalar {
		t.Errorf("batch twin mismatch: %+v vs %+v", out[0].Result.Scalar, out[1].Result.Scalar)
	}
}

// TestSlowQueryLog checks threshold filtering and that literals are
// elided from the logged statement.
func TestSlowQueryLog(t *testing.T) {
	tbl, eng := shardedFixture(t, 2)
	_ = tbl
	sess := NewSession()
	if err := sess.RegisterEngine("sensors", eng, stubSchemaNamed("sensors", "hour", "light")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sess.SetSlowQueryLog(&buf, 0) // log everything
	if _, err := sess.Exec("SELECT SUM(light) FROM sensors WHERE hour BETWEEN 7 AND 11"); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("threshold 0 should log every statement")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, line)
	}
	if rec["event"] != "slow_query" || rec["table"] != "sensors" {
		t.Errorf("record: %+v", rec)
	}
	sql, _ := rec["sql"].(string)
	if strings.Contains(sql, "7") || strings.Contains(sql, "11") {
		t.Errorf("literals leaked into the slow-query log: %q", sql)
	}
	if !strings.Contains(sql, "?") {
		t.Errorf("logged statement should be the template: %q", sql)
	}
	if _, ok := rec["duration_ms"]; !ok {
		t.Error("missing duration_ms")
	}

	// a high threshold suppresses fast statements
	buf.Reset()
	sess.SetSlowQueryLog(&buf, time.Hour)
	if _, err := sess.Exec("SELECT SUM(light) FROM sensors WHERE hour BETWEEN 7 AND 11"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("fast statement logged despite threshold: %s", buf.String())
	}
}

// jsonInt reads an attribute that may be int64 (in-process) or float64
// (after a JSON round trip).
func jsonInt(t *testing.T, v any) int64 {
	t.Helper()
	switch n := v.(type) {
	case int64:
		return n
	case float64:
		return int64(n)
	default:
		t.Fatalf("attribute %v (%T) is not numeric", v, v)
		return 0
	}
}

func keys(m map[string][]*obs.SpanJSON) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// stubSchemaNamed builds a schema with the given predicate and aggregate
// column names.
func stubSchemaNamed(table, pred, agg string) sqlfe.Schema {
	s := sqlfe.SchemaFromColNames([]string{pred, agg})
	s.Table = table
	return s
}
