package pass

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sqlfe"
)

// stubSchema builds a one-predicate-column schema for a stub table.
func stubSchema(table string) sqlfe.Schema {
	s := sqlfe.SchemaFromColNames([]string{"x", "v"})
	s.Table = table
	return s
}

// shardedFixture builds a deterministic table and its sharded engine.
func shardedFixture(t *testing.T, shards int) (*Table, engine.Engine) {
	t.Helper()
	tbl := NewTable([]string{"hour"}, "light")
	for i := 0; i < 4000; i++ {
		tbl.Append([]float64{float64(i % 24)}, float64(i%100)/10)
	}
	eng, _, err := BuildShardedEngine(tbl, Options{Partitions: 16, SampleRate: 0.05, Seed: 42}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, eng
}

func TestSessionServesShardedTable(t *testing.T) {
	tbl, eng := shardedFixture(t, 3)
	sess := NewSession()
	if err := sess.RegisterEngine("sensors", eng, tbl.schema()); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec("SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := tbl.Exact(Sum, Range{Lo: 6, Hi: 18})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.HardBounds && (truth < res.Scalar.HardLo-1e-9 || truth > res.Scalar.HardHi+1e-9) {
		t.Errorf("hard bounds [%v, %v] exclude truth %v", res.Scalar.HardLo, res.Scalar.HardHi, truth)
	}
	// shard stats surface through Tables
	infos := sess.Tables()
	if len(infos) != 1 {
		t.Fatalf("%d tables", len(infos))
	}
	ti := infos[0]
	if ti.Shards != 3 || ti.ShardPolicy != "range" || len(ti.ShardRows) != 3 {
		t.Errorf("shard stats = shards:%d policy:%q rows:%v", ti.Shards, ti.ShardPolicy, ti.ShardRows)
	}
	rows := 0
	for _, r := range ti.ShardRows {
		rows += r
	}
	if rows != tbl.Len() {
		t.Errorf("shard rows sum to %d, want %d", rows, tbl.Len())
	}
	// inserts route through the catalog into the sharded engine
	if err := sess.Insert("sensors", []float64{6}, 1.5); err != nil {
		t.Fatal(err)
	}
	if got := sess.Tables()[0].Rows; got != tbl.Len()+1 {
		t.Errorf("rows after insert = %d, want %d", got, tbl.Len()+1)
	}
}

// TestSessionShardedCrashRecoveryTwin is the acceptance scenario for
// per-shard persistence: a durable session serves a sharded table,
// updates reach only the per-shard WALs, the process crashes without a
// checkpoint, and the warm-started session must answer exactly what an
// in-memory twin with the same history answers.
func TestSessionShardedCrashRecoveryTwin(t *testing.T) {
	dir := t.TempDir()
	tbl, eng := shardedFixture(t, 3)
	_, twinEng := shardedFixture(t, 3) // deterministic build: identical state

	sess := NewSession()
	st := testStore(t, dir)
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if err := sess.RegisterEngine("sensors", eng, tbl.schema()); err != nil {
		t.Fatal(err)
	}
	twin := NewSession()
	if err := twin.RegisterEngine("sensors", twinEng, tbl.schema()); err != nil {
		t.Fatal(err)
	}

	// updates across several shards, journaled but never checkpointed
	points := [][]float64{{0}, {7}, {13}, {23}, {7}}
	values := []float64{1, 2, 3, 4, 5}
	if _, err := sess.InsertMany("sensors", points, values); err != nil {
		t.Fatal(err)
	}
	if _, err := twin.InsertMany("sensors", points, values); err != nil {
		t.Fatal(err)
	}
	if err := sess.Delete("sensors", []float64{7}, 2); err != nil {
		t.Fatal(err)
	}
	if err := twin.Delete("sensors", []float64{7}, 2); err != nil {
		t.Fatal(err)
	}

	// crash: the store closes its WALs, no checkpoint runs
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	revived := NewSession()
	st2 := testStore(t, dir)
	n, err := revived.AttachStore(st2)
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if n != 1 {
		t.Fatalf("warm start restored %d tables, want 1", n)
	}
	ti := revived.Tables()[0]
	if ti.Shards != 3 {
		t.Fatalf("restored table has %d shards, want 3 (engine %s)", ti.Shards, ti.Engine)
	}
	for _, sql := range recoveryQueries {
		want, werr := twin.Exec(sql)
		got, gerr := revived.Exec(sql)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: twin err %v vs revived err %v", sql, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if !within(got.Scalar.Estimate, want.Scalar.Estimate, 1e-6) {
			t.Errorf("%s: revived %v vs twin %v", sql, got.Scalar.Estimate, want.Scalar.Estimate)
		}
	}
	// and the revived table keeps accepting routed updates durably
	if err := revived.Insert("sensors", []float64{11}, 9.5); err != nil {
		t.Fatal(err)
	}
}

// within reports |a-b| <= tol relative to the larger magnitude (the
// snapshot codec delta-encodes sample values at ~1e-6 precision).
func within(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// countingEngine is a stub engine that records how its batches arrive —
// the instrumentation behind the ExecBatch grouping test.
type countingEngine struct {
	name    string
	batches [][]core.BatchQuery
}

func (c *countingEngine) Name() string     { return c.name }
func (c *countingEngine) MemoryBytes() int { return 1 }
func (c *countingEngine) Query(kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	return core.Result{Estimate: 1, HardValid: true}, nil
}
func (c *countingEngine) QueryBatch(qs []core.BatchQuery) []core.BatchResult {
	c.batches = append(c.batches, qs)
	out := make([]core.BatchResult, len(qs))
	for i := range out {
		out[i].Result = core.Result{Estimate: 1, HardValid: true}
		out[i].Elapsed = time.Nanosecond
	}
	return out
}

// TestExecBatchGroupsPerTableAcrossInterleaving: a script that alternates
// tables statement by statement must still dispatch exactly one
// engine-level batch per table — per-table batched execution, not a fall
// back to singles at every table switch — and in deterministic
// first-appearance order.
func TestExecBatchGroupsPerTableAcrossInterleaving(t *testing.T) {
	sess := NewSession()
	a := &countingEngine{name: "stub-a"}
	b := &countingEngine{name: "stub-b"}
	if err := sess.RegisterEngine("alpha", a, stubSchema("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := sess.RegisterEngine("beta", b, stubSchema("beta")); err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"SELECT SUM(v) FROM alpha WHERE x >= 1",
		"SELECT SUM(v) FROM beta WHERE x >= 2",
		"SELECT COUNT(*) FROM alpha WHERE x >= 3",
		"SELECT COUNT(*) FROM beta WHERE x >= 4",
		"SELECT AVG(v) FROM alpha WHERE x >= 5",
	}
	out := sess.ExecBatch(stmts)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("statement %d: %v", i, r.Err)
		}
	}
	if len(a.batches) != 1 || len(a.batches[0]) != 3 {
		t.Errorf("alpha got %d batches (sizes %v), want one batch of 3", len(a.batches), batchSizes(a.batches))
	}
	if len(b.batches) != 1 || len(b.batches[0]) != 2 {
		t.Errorf("beta got %d batches (sizes %v), want one batch of 2", len(b.batches), batchSizes(b.batches))
	}
}

func batchSizes(batches [][]core.BatchQuery) []int {
	out := make([]int, len(batches))
	for i, b := range batches {
		out[i] = len(b)
	}
	return out
}

// TestTablesDeterministicOrder: listings sort case-insensitively, so the
// order is stable no matter the registration order or name casing.
func TestTablesDeterministicOrder(t *testing.T) {
	sess := NewSession()
	for _, name := range []string{"Zulu", "alpha", "Mike", "bravo"} {
		e := &countingEngine{name: "stub"}
		if err := sess.RegisterEngine(name, e, stubSchema(name)); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]string, 0, 4)
	for _, ti := range sess.Tables() {
		got = append(got, ti.Name)
	}
	want := []string{"alpha", "bravo", "Mike", "Zulu"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tables order = %v, want %v (case-insensitive sort)", got, want)
		}
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return strings.ToLower(got[i]) < strings.ToLower(got[j]) }) {
		t.Errorf("Tables not sorted case-insensitively: %v", got)
	}
}
