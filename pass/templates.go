package pass

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

type coreRect = dataset.Rect

// Plan converts the paper's user-facing time limits — a construction
// budget τ_c and a per-query latency budget τ_q (Section 3.1) — into
// concrete Partitions and SampleSize values for Options, using a cost
// model calibrated on the caller's machine against the actual table.
func Plan(t *Table, construct, query time.Duration) (partitions, sampleSize int, err error) {
	b, err := core.PlanBudget(t.inner, construct, query)
	if err != nil {
		return 0, 0, err
	}
	return b.Partitions, b.SampleSize, nil
}

// DeriveTemplates inspects a past workload's predicates and returns the
// distinct constrained-column sets as TemplateSpecs weighted by
// frequency, most frequent first (at most maxTemplates). Feed the result
// to BuildTemplates.
func DeriveTemplates(t *Table, workload [][]Range, maxTemplates int) []TemplateSpec {
	rects := make([]coreRect, 0, len(workload))
	for _, pred := range workload {
		rects = append(rects, toRect(pred))
	}
	derived := core.DeriveTemplates(rects, maxTemplates)
	out := make([]TemplateSpec, len(derived))
	for i, d := range derived {
		cols := make([]string, len(d.Columns))
		for j, c := range d.Columns {
			cols[j] = t.inner.ColNames[c]
		}
		out[i] = TemplateSpec{Columns: cols, Weight: d.Weight}
	}
	return out
}

// TemplateSpec declares one anticipated query template by predicate
// column names and its workload share.
type TemplateSpec struct {
	Columns []string
	Weight  float64
}

// TemplateSet holds one synopsis per workload template with a router
// (Section 4.5 of the paper): each query is answered by the synopsis
// whose indexed columns best match its predicate.
type TemplateSet struct {
	inner *core.TemplateSet
	n     int
}

// BuildTemplates builds per-template synopses over the table, splitting
// the partition and sample budgets by template weight.
func BuildTemplates(t *Table, opt Options, specs []TemplateSpec) (*TemplateSet, error) {
	iopt, err := opt.internal()
	if err != nil {
		return nil, err
	}
	colIndex := map[string]int{}
	for i := 0; i < t.inner.Dims(); i++ {
		colIndex[t.inner.ColNames[i]] = i
	}
	templates := make([]core.Template, len(specs))
	for i, sp := range specs {
		cols := make([]int, len(sp.Columns))
		for j, name := range sp.Columns {
			idx, ok := colIndex[name]
			if !ok {
				return nil, fmt.Errorf("pass: template %d references unknown column %q", i, name)
			}
			cols[j] = idx
		}
		templates[i] = core.Template{Columns: cols, Weight: sp.Weight}
	}
	ts, err := core.BuildTemplates(t.inner, iopt, templates)
	if err != nil {
		return nil, err
	}
	return &TemplateSet{inner: ts, n: t.Len()}, nil
}

// Query routes the predicate to the best-matching template's synopsis and
// answers it; the second return value is the chosen template index.
func (ts *TemplateSet) Query(agg Agg, pred ...Range) (Answer, int, error) {
	kind, err := agg.internal()
	if err != nil {
		return Answer{}, 0, err
	}
	r, idx, err := ts.inner.Query(kind, toRect(pred))
	if err != nil {
		return Answer{}, idx, err
	}
	if r.NoMatch {
		return Answer{}, idx, ErrNoMatch
	}
	return Answer{
		Estimate:   r.Estimate,
		CIHalf:     r.CIHalf,
		HardLo:     r.HardLo,
		HardHi:     r.HardHi,
		HardBounds: r.HardValid,
		Exact:      r.Exact,
		TuplesRead: r.TuplesRead,
		SkipRate:   r.SkipRate(ts.n),
	}, idx, nil
}

// Templates returns the number of member synopses.
func (ts *TemplateSet) Templates() int { return ts.inner.Len() }

// MemoryBytes sums storage across member synopses.
func (ts *TemplateSet) MemoryBytes() int { return ts.inner.MemoryBytes() }
