// Package pass is the public API of the PASS reproduction —
// Precomputation-Assisted Stratified Sampling (Liang, Sintos, Shang,
// Krishnan, SIGMOD 2021), an approximate-query-processing synopsis that
// combines a tree of precomputed partition aggregates with stratified
// samples at the leaves.
//
// Typical use:
//
//	tbl := pass.NewTable([]string{"time"}, "light")
//	for _, row := range rows {
//	    tbl.Append([]float64{row.Time}, row.Light)
//	}
//	syn, err := pass.Build(tbl, pass.Options{Partitions: 64, SampleRate: 0.005})
//	ans, err := syn.Sum(pass.Range{Lo: 100, Hi: 500})
//	fmt.Println(ans.Estimate, "±", ans.CIHalf)
//
// Queries whose predicates align with the optimised partitioning are
// answered exactly; partial overlaps are estimated from the stratified
// samples with CLT confidence intervals and deterministic hard bounds.
//
// # Batched queries and concurrency
//
// A built Synopsis is immutable under queries: any number of goroutines
// may call Query (and the Sum/Count/... helpers) concurrently. QueryBatch
// exploits this, fanning a whole workload across a worker pool sized by
// GOMAXPROCS and returning per-query answers in input order:
//
//	answers := syn.QueryBatch([]pass.Request{
//	    {Agg: pass.Sum, Pred: []pass.Range{{Lo: 100, Hi: 500}}},
//	    {Agg: pass.Avg, Pred: []pass.Range{{Lo: 0, Hi: 50}}},
//	})
//
// Batched answers are identical to issuing the same queries sequentially.
// The only exclusions are Insert and Delete, which mutate the synopsis:
// they must not overlap with queries (batched or not) and require external
// synchronisation if updates and queries share a synopsis across
// goroutines.
//
// # Sessions and the capability split
//
// Session serves SQL over many named tables at once: Register a synopsis
// under a table name and Exec statements whose FROM clause resolves
// against the catalog (unknown tables are an error). Sessions batch
// multi-statement scripts per table and serialise updates behind a
// per-table RWMutex, so no external synchronisation is needed.
//
// Underneath, every AQP system in this repository implements the shared
// engine interface (internal/engine): Name, Query, QueryBatch and
// MemoryBytes. Mutation (Insert/Delete) and persistence (Save) are
// deliberately *not* part of that interface — they are optional
// capabilities (engine.Updatable, engine.Serializable) that only some
// engines provide. The PASS synopsis implements both; the sampling
// comparators are query-only, and a Session reports a clear error when a
// table's engine lacks the capability a request needs.
package pass

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kdtree"
	"repro/internal/sqlfe"
)

// Agg identifies an aggregate function.
type Agg int

// Supported aggregates.
const (
	Sum Agg = iota
	Count
	Avg
	Min
	Max
)

func (a Agg) internal() (dataset.AggKind, error) {
	switch a {
	case Sum:
		return dataset.Sum, nil
	case Count:
		return dataset.Count, nil
	case Avg:
		return dataset.Avg, nil
	case Min:
		return dataset.Min, nil
	case Max:
		return dataset.Max, nil
	}
	return 0, fmt.Errorf("pass: unknown aggregate %d", int(a))
}

// String returns the SQL name of the aggregate.
func (a Agg) String() string {
	k, err := a.internal()
	if err != nil {
		return fmt.Sprintf("Agg(%d)", int(a))
	}
	return k.String()
}

// Range is one per-column predicate bound (inclusive on both ends).
type Range struct {
	Lo, Hi float64
}

// Table is a collection of tuples: d predicate columns and one
// aggregation column.
type Table struct {
	inner *dataset.Dataset
	dicts map[string]*dataset.Dict
}

// NewTable creates an empty table with the given predicate column names
// and aggregation column name.
func NewTable(predCols []string, aggCol string) *Table {
	d := dataset.New("table", len(predCols))
	d.ColNames = append(append([]string{}, predCols...), aggCol)
	return &Table{inner: d}
}

// Append adds one tuple; len(pred) must match the predicate column count.
func (t *Table) Append(pred []float64, agg float64) { t.inner.Append(pred, agg) }

// Len returns the number of tuples.
func (t *Table) Len() int { return t.inner.N() }

// Dims returns the number of predicate columns.
func (t *Table) Dims() int { return t.inner.Dims() }

// ReadCSV loads a table from CSV: a header row, then numeric rows whose
// last column is the aggregate.
func ReadCSV(r io.Reader) (*Table, error) {
	d, err := dataset.ReadCSV(r, "table")
	if err != nil {
		return nil, err
	}
	return &Table{inner: d}, nil
}

// WriteCSV writes the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error { return t.inner.WriteCSV(w) }

// Exact computes the ground-truth aggregate by a full scan — useful for
// validating synopsis answers in tests and examples.
func (t *Table) Exact(agg Agg, pred ...Range) (float64, error) {
	kind, err := agg.internal()
	if err != nil {
		return 0, err
	}
	return t.inner.Exact(kind, toRect(pred))
}

// Demo generates one of the built-in demonstration datasets simulating
// the paper's evaluation data: "intel", "instacart", "nyctaxi",
// "adversarial", or "uniform". For "nyctaxi" use DemoTaxi for
// multi-dimensional variants.
func Demo(name string, n int, seed uint64) (*Table, error) {
	d, ok := dataset.ByName(name, n, seed)
	if !ok {
		return nil, fmt.Errorf("pass: unknown demo dataset %q", name)
	}
	return &Table{inner: d}, nil
}

// DemoTaxi generates the simulated NYC-taxi dataset with 1-5 predicate
// columns (pickup_time, pickup_date, pu_location, dropoff_date,
// dropoff_time) and trip_distance as the aggregate.
func DemoTaxi(n, dims int, seed uint64) *Table {
	return &Table{inner: dataset.GenNYCTaxi(n, dims, seed)}
}

// Partitioner selects the leaf-partitioning algorithm for 1D synopses.
type Partitioner int

// Partitioner choices.
const (
	// ADP is the paper's sampling + discretization dynamic program.
	ADP Partitioner = iota
	// EqualDepth is equal-size partitioning.
	EqualDepth
	// HillClimb is the AQP++-style heuristic.
	HillClimb
)

// Options configures synopsis construction. Partitions plus one of
// SampleRate/SampleSize are required; everything else has sensible
// defaults (99% confidence, ADP partitioning, δ = 0.01).
type Options struct {
	// Partitions is the leaf budget k: more partitions mean more
	// precomputation and higher accuracy.
	Partitions int
	// SampleRate is the stratified sample size as a fraction of the data.
	SampleRate float64
	// SampleSize is the absolute sample budget (overrides SampleRate).
	SampleSize int
	// OptimizeFor tunes the partitioning for a query type (default Sum).
	OptimizeFor Agg
	// Partitioner selects the 1D partitioning algorithm (default ADP).
	Partitioner Partitioner
	// Confidence is the CI coverage in (0, 1); default 0.99.
	Confidence float64
	// Seed makes construction deterministic.
	Seed uint64
	// Proportional allocates samples proportionally to stratum sizes.
	Proportional bool
	// IndexDims, for multi-dimensional synopses, restricts the aggregate
	// tree to the first IndexDims predicate columns while samples keep
	// the full predicate vector (workload shift; 0 = index everything).
	IndexDims int
	// BalancedTree selects the KD-US balanced expansion policy instead of
	// the default greedy max-variance KD-PASS policy (multi-d only).
	BalancedTree bool
	// Fanout is the 1D partition-tree fanout (default 2); it affects only
	// construction time and query latency, never accuracy.
	Fanout int
}

func (o Options) internal() (core.Options, error) {
	kind, err := o.OptimizeFor.internal()
	if err != nil {
		return core.Options{}, err
	}
	opts := core.Options{
		Partitions:   o.Partitions,
		SampleRate:   o.SampleRate,
		SampleSize:   o.SampleSize,
		Kind:         kind,
		Seed:         o.Seed,
		Proportional: o.Proportional,
		IndexDims:    o.IndexDims,
		Fanout:       o.Fanout,
	}
	switch o.Partitioner {
	case EqualDepth:
		opts.Partitioner = core.PartitionEqualDepth
	case HillClimb:
		opts.Partitioner = core.PartitionHillClimb
	case ADP:
		opts.Partitioner = core.PartitionADP
	default:
		return opts, fmt.Errorf("pass: unknown partitioner %d", int(o.Partitioner))
	}
	if o.Confidence != 0 {
		if o.Confidence <= 0 || o.Confidence >= 1 {
			return opts, fmt.Errorf("pass: Confidence must be in (0, 1)")
		}
		opts.Lambda = lambdaFor(o.Confidence)
	}
	if o.BalancedTree {
		opts.KDPolicy = kdtree.PolicyUniform
	}
	return opts, nil
}

// Answer is the result of one approximate query.
type Answer struct {
	// Estimate is the point estimate.
	Estimate float64
	// CIHalf is the half-width of the confidence interval.
	CIHalf float64
	// HardLo/HardHi are deterministic bounds guaranteed to contain the
	// exact answer when HardBounds is true.
	HardLo, HardHi float64
	HardBounds     bool
	// Exact reports a zero-sampling-error answer.
	Exact bool
	// TuplesRead is the number of sample tuples scanned.
	TuplesRead int
	// SkipRate is the fraction of the dataset not needed for the answer.
	SkipRate float64
	// Degraded marks a partial scatter answer: one or more shards of a
	// sharded table errored or missed the query deadline and were dropped
	// from the merge, with the uncertainty widened to compensate.
	// ShardsTotal/ShardsAnswered report the scatter fan-out (both zero for
	// unsharded execution).
	Degraded                    bool
	ShardsTotal, ShardsAnswered int
}

// ErrNoMatch is returned for AVG/MIN/MAX queries whose predicate matches
// no tuples (as far as the synopsis can tell).
var ErrNoMatch = fmt.Errorf("pass: predicate matches no tuples")

// Synopsis is a built PASS data structure.
type Synopsis struct {
	inner  *core.Synopsis
	schema sqlfe.Schema
	// plans caches compiled statement skeletons for the single-synopsis
	// SQL path (lazily created on first SQL call); schemaGen invalidates
	// it when SetSchema replaces the resolution schema.
	plansOnce sync.Once
	plans     *sqlfe.PlanCache
	schemaGen atomic.Uint64
}

// Build constructs a synopsis over a one-predicate-column table.
func Build(t *Table, opt Options) (*Synopsis, error) {
	iopt, err := opt.internal()
	if err != nil {
		return nil, err
	}
	s, err := core.Build(t.inner, iopt)
	if err != nil {
		return nil, err
	}
	return &Synopsis{inner: s, schema: t.schema()}, nil
}

// BuildAuto constructs the synopsis matching the table's dimensionality:
// Build for one predicate column, BuildMulti otherwise. It is the
// loading path the CLIs and the passd server share.
func BuildAuto(t *Table, opt Options) (*Synopsis, error) {
	if t.Dims() == 1 {
		return Build(t, opt)
	}
	return BuildMulti(t, opt)
}

// BuildMulti constructs a multi-dimensional synopsis (k-d partition tree,
// Section 4.4 of the paper).
func BuildMulti(t *Table, opt Options) (*Synopsis, error) {
	iopt, err := opt.internal()
	if err != nil {
		return nil, err
	}
	s, err := core.BuildKD(t.inner, iopt)
	if err != nil {
		return nil, err
	}
	return &Synopsis{inner: s, schema: t.schema()}, nil
}

// schema derives the SQL-resolution schema from the table's column names
// and attached dictionaries.
func (t *Table) schema() sqlfe.Schema {
	s := sqlfe.SchemaFromColNames(t.inner.ColNames)
	if len(t.dicts) > 0 {
		s.Dicts = make(map[string]*dataset.Dict, len(t.dicts))
		for k, v := range t.dicts {
			s.Dicts[k] = v
		}
	}
	return s
}

// Save writes a 1D synopsis in a compact binary format (sample values are
// delta-encoded against their partition averages, Section 3.4). Column
// names are not persisted; call SetSchema after LoadSynopsis to run SQL.
func (s *Synopsis) Save(w io.Writer) error { return s.inner.Save(w) }

// LoadSynopsis restores a synopsis written by Save. The result answers
// queries identically (up to delta-encoding precision) and accepts
// further Insert/Delete calls.
func LoadSynopsis(r io.Reader) (*Synopsis, error) {
	inner, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Synopsis{inner: inner}, nil
}

// Query answers an aggregate with per-column range predicates. Missing
// trailing ranges are unconstrained.
func (s *Synopsis) Query(agg Agg, pred ...Range) (Answer, error) {
	kind, err := agg.internal()
	if err != nil {
		return Answer{}, err
	}
	r, err := s.inner.Query(kind, toRect(pred))
	if err != nil {
		return Answer{}, err
	}
	if r.NoMatch {
		return Answer{}, ErrNoMatch
	}
	return answerFromResult(r, s.inner.N()), nil
}

// Request is one query of a batched workload: an aggregate plus per-column
// range predicates (missing trailing ranges are unconstrained).
type Request struct {
	Agg  Agg
	Pred []Range
}

// BatchAnswer is the outcome of one batched Request.
type BatchAnswer struct {
	Answer Answer
	// Err carries the per-query failure, if any (ErrNoMatch included);
	// other queries in the batch are unaffected.
	Err error
}

// QueryBatch answers a workload of queries, fanning them across a bounded
// worker pool (one worker per CPU). Answers are returned in input order
// and are identical to issuing the same queries sequentially via Query.
// See the package documentation for the concurrency guarantees.
func (s *Synopsis) QueryBatch(reqs []Request) []BatchAnswer {
	out := make([]BatchAnswer, len(reqs))
	qs := make([]core.BatchQuery, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, req := range reqs {
		kind, err := req.Agg.internal()
		if err != nil {
			out[i].Err = err
			continue
		}
		qs = append(qs, core.BatchQuery{Kind: kind, Rect: toRect(req.Pred)})
		idx = append(idx, i)
	}
	for j, br := range s.inner.QueryBatch(qs) {
		i := idx[j]
		if br.Err != nil {
			out[i].Err = br.Err
			continue
		}
		if br.Result.NoMatch {
			out[i].Err = ErrNoMatch
			continue
		}
		out[i].Answer = answerFromResult(br.Result, s.inner.N())
	}
	return out
}

// Sum answers SUM(agg) WHERE pred.
func (s *Synopsis) Sum(pred ...Range) (Answer, error) { return s.Query(Sum, pred...) }

// Count answers COUNT(*) WHERE pred.
func (s *Synopsis) Count(pred ...Range) (Answer, error) { return s.Query(Count, pred...) }

// Avg answers AVG(agg) WHERE pred.
func (s *Synopsis) Avg(pred ...Range) (Answer, error) { return s.Query(Avg, pred...) }

// MinQ answers MIN(agg) WHERE pred.
func (s *Synopsis) MinQ(pred ...Range) (Answer, error) { return s.Query(Min, pred...) }

// MaxQ answers MAX(agg) WHERE pred.
func (s *Synopsis) MaxQ(pred ...Range) (Answer, error) { return s.Query(Max, pred...) }

// Insert adds one tuple to a 1D synopsis, maintaining tree statistics and
// the stratified samples via reservoir sampling.
func (s *Synopsis) Insert(pred []float64, agg float64) error {
	return s.inner.Insert(pred, agg)
}

// Delete removes one tuple from a 1D synopsis. SUM/COUNT stay exact;
// MIN/MAX bounds remain conservative.
func (s *Synopsis) Delete(pred []float64, agg float64) error {
	return s.inner.Delete(pred, agg)
}

// Leaves returns the number of leaf strata.
func (s *Synopsis) Leaves() int { return s.inner.NumLeaves() }

// Samples returns the total stored sample count.
func (s *Synopsis) Samples() int { return s.inner.TotalSamples() }

// MemoryBytes estimates synopsis storage (aggregates + samples).
func (s *Synopsis) MemoryBytes() int { return s.inner.MemoryBytes() }

// BuildSeconds reports the construction wall-clock time.
func (s *Synopsis) BuildSeconds() float64 { return s.inner.BuildTime.Seconds() }

// answerFromResult converts an internal query result to the public Answer
// shape; n is the base-table cardinality for skip-rate accounting.
func answerFromResult(r core.Result, n int) Answer {
	return Answer{
		Estimate:       r.Estimate,
		CIHalf:         r.CIHalf,
		HardLo:         r.HardLo,
		HardHi:         r.HardHi,
		HardBounds:     r.HardValid,
		Exact:          r.Exact,
		TuplesRead:     r.TuplesRead,
		SkipRate:       r.SkipRate(n),
		Degraded:       r.Degraded,
		ShardsTotal:    r.ShardsTotal,
		ShardsAnswered: r.ShardsAnswered,
	}
}

// groupAnswers converts per-group internal results, rendering labels
// through the grouping column's dictionary when present.
func groupAnswers(res []core.GroupResult, dict *dataset.Dict, n int) []GroupAnswer {
	out := make([]GroupAnswer, len(res))
	for i, gr := range res {
		ga := GroupAnswer{Group: gr.Group, NoMatch: gr.Result.NoMatch}
		if dict != nil {
			if label, err := dict.Value(gr.Group); err == nil {
				ga.Label = label
			}
		}
		if !gr.Result.NoMatch {
			ga.Answer = answerFromResult(gr.Result, n)
		}
		out[i] = ga
	}
	return out
}

func toRect(pred []Range) dataset.Rect {
	lo := make([]float64, len(pred))
	hi := make([]float64, len(pred))
	for i, p := range pred {
		lo[i], hi[i] = p.Lo, p.Hi
	}
	return dataset.Rect{Lo: lo, Hi: hi}
}
