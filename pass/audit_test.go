package pass

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// newAuditSession builds an adaptive session with the audit layer in
// manual mode (scoring happens on AuditFlush only).
func newAuditSession(t *testing.T, fraction float64) *Session {
	t.Helper()
	sess := NewSession()
	if err := sess.EnableAdaptive(AdaptiveConfig{CacheBytes: -1}); err != nil {
		t.Fatal(err)
	}
	if err := sess.EnableAudit(AuditConfig{SampleFraction: fraction, QueueSize: 8192, Manual: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RegisterAdaptive("t", adaptiveTestTable(6000), Options{Partitions: 32, SampleRate: 0.02, Seed: 7}, 1); err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestAuditTwinIdentical is the audit-path twin: an audited session must
// answer every statement bit-for-bit like an unaudited one over the same
// build — the tap must never perturb results.
func TestAuditTwinIdentical(t *testing.T) {
	audited := newAuditSession(t, 1)
	plain := NewSession()
	syn, err := Build(adaptiveTestTable(6000), Options{Partitions: 32, SampleRate: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Register("t", syn); err != nil {
		t.Fatal(err)
	}

	var stmts []string
	for i := 0; i < 40; i++ {
		stmts = append(stmts, hotSQL(i))
		stmts = append(stmts, fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x BETWEEN %d AND %d", i*37, i*37+900))
		stmts = append(stmts, fmt.Sprintf("SELECT AVG(v) FROM t WHERE x BETWEEN %d AND %d", i*11, i*11+1500))
	}
	got := audited.ExecBatch(stmts)
	want := plain.ExecBatch(stmts)
	for i := range stmts {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("stmt %d: err %v vs %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		g, w := got[i].Result.Scalar, want[i].Result.Scalar
		if g.Estimate != w.Estimate || g.CIHalf != w.CIHalf ||
			g.HardLo != w.HardLo || g.HardHi != w.HardHi || g.Exact != w.Exact {
			t.Fatalf("stmt %d (%s): audited %+v vs plain %+v", i, stmts[i], g, w)
		}
	}

	audited.AuditFlush()
	rep, ok := audited.AuditReport()
	if !ok {
		t.Fatal("AuditReport must be available")
	}
	var total, covered, hardViol int64
	for _, st := range rep.Streams {
		total += st.Audited
		covered += st.Covered
		hardViol += st.HardViolations
	}
	if total == 0 {
		t.Fatal("fraction-1 audit scored nothing")
	}
	if hardViol != 0 {
		t.Fatalf("hard-bound violations on a consistent table: %+v", rep.Streams)
	}
	if cov := float64(covered) / float64(total); cov < 0.9 {
		t.Fatalf("empirical coverage %.3f over %d audits, want >= 0.9 at 0.99 nominal", cov, total)
	}

	// The per-table summary surfaces on Tables too.
	infos := audited.Tables()
	if len(infos) != 1 || infos[0].Audit == nil || infos[0].Audit.Audited == 0 {
		t.Fatalf("TableInfo.Audit missing: %+v", infos)
	}
	if plainInfos := plain.Tables(); plainInfos[0].Audit != nil {
		t.Fatal("unaudited session must not report audit info")
	}
}

// TestAuditRaceUnderWritesAndSwaps hammers queries, inserts, engine
// swaps (Reoptimize), audit flushes and report reads concurrently
// (meaningful under -race). Stale samples must be skipped, never
// misscored — hard violations stay zero throughout.
func TestAuditRaceUnderWritesAndSwaps(t *testing.T) {
	sess := newAuditSession(t, 1)
	var wg sync.WaitGroup
	stopIns := make(chan struct{})
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if _, err := sess.Exec(hotSQL(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer close(stopIns)
		for i := 0; i < 300; i++ {
			if err := sess.Insert("t", []float64{float64(6000 + i)}, float64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := sess.Reoptimize("t"); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			sess.AuditFlush()
			sess.Tables()
			if _, ok := sess.AuditReport(); !ok {
				t.Error("report vanished")
				return
			}
			select {
			case <-stopIns:
				return
			default:
			}
		}
	}()
	wg.Wait()
	sess.AuditFlush()
	rep, _ := sess.AuditReport()
	for _, st := range rep.Streams {
		if st.HardViolations != 0 {
			t.Fatalf("hard violations under concurrent writes: %+v", st)
		}
	}
}

// TestAuditSLOWiring checks the session-level SLO surface end to end
// with manual evaluation.
func TestAuditSLOWiring(t *testing.T) {
	sess := NewSession()
	if err := sess.EnableAdaptive(AdaptiveConfig{CacheBytes: -1}); err != nil {
		t.Fatal(err)
	}
	if err := sess.EnableAudit(AuditConfig{
		SampleFraction: 1, QueueSize: 8192, Manual: true,
		SLOCoverage: 0.5, SLOMinEvents: 5, SLOWindowTicks: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.EnableAudit(AuditConfig{}); err == nil {
		t.Fatal("double EnableAudit must fail")
	}
	if _, err := sess.RegisterAdaptive("t", adaptiveTestTable(6000), Options{Partitions: 32, SampleRate: 0.02, Seed: 7}, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := sess.Exec(hotSQL(i)); err != nil {
			t.Fatal(err)
		}
	}
	sess.AuditFlush()
	sess.SLOEvaluate()
	st, ok := sess.SLOStatus()
	if !ok {
		t.Fatal("SLO armed but no status")
	}
	if st.Breached {
		t.Fatalf("healthy run breached 0.5 coverage target: %+v", st)
	}
	rep, _ := sess.AuditReport()
	if rep.SLO == nil || rep.SLO.Evaluations == 0 {
		t.Fatalf("report must carry the SLO verdict: %+v", rep.SLO)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// benchSession builds a session for the overhead pair; audit < 0 means
// no audit layer at all, 0 means tap attached with sampling off.
func benchSession(b *testing.B, auditFraction float64) *Session {
	b.Helper()
	sess := NewSession()
	if err := sess.EnableAdaptive(AdaptiveConfig{CacheBytes: -1}); err != nil {
		b.Fatal(err)
	}
	if auditFraction >= 0 {
		f := auditFraction
		if f == 0 {
			f = -1 // explicit zero: tap attached, nothing sampled
		}
		if err := sess.EnableAudit(AuditConfig{SampleFraction: f, Manual: true}); err != nil {
			b.Fatal(err)
		}
	}
	tbl := NewTable([]string{"x"}, "v")
	for i := 0; i < 20000; i++ {
		tbl.Append([]float64{float64(i)}, float64(i%97))
	}
	if _, err := sess.RegisterAdaptive("t", tbl, Options{Partitions: 64, SampleRate: 0.01, Seed: 3}, 1); err != nil {
		b.Fatal(err)
	}
	return sess
}

func benchExec(b *testing.B, sess *Session) {
	b.Helper()
	stmt := "SELECT SUM(v) FROM t WHERE x BETWEEN 1000 AND 18000"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecAuditOff is the baseline of the audit-overhead gate: no
// audit layer attached.
func BenchmarkExecAuditOff(b *testing.B) {
	benchExec(b, benchSession(b, -1))
}

// BenchmarkExecAuditIdle measures the tap's cost on un-audited queries:
// audit layer on, sampling fraction zero. CI gates the delta against
// BenchmarkExecAuditOff at < 2%.
func BenchmarkExecAuditIdle(b *testing.B) {
	benchExec(b, benchSession(b, 0))
}

// TestAuditSketchAnswers covers the sketch-family audit path: COUNT
// DISTINCT and TOPK answers are re-executed exactly against the retained
// base rows (any hard violation would disprove a sketch guarantee),
// while QUANTILE answers are skipped under the labeled counter rather
// than mis-scored.
func TestAuditSketchAnswers(t *testing.T) {
	sess := newAuditSession(t, 1)
	stmts := []string{
		"SELECT COUNT(DISTINCT v) FROM t",
		"SELECT TOPK(v, 4) FROM t",
		"SELECT QUANTILE(v, 0.5) FROM t",
	}
	for _, sr := range sess.ExecBatch(stmts) {
		if sr.Err != nil {
			t.Fatalf("%s: %v", sr.SQL, sr.Err)
		}
		if sr.Result.Sketch == nil {
			t.Fatalf("%s: no sketch answer", sr.SQL)
		}
	}
	sess.AuditFlush()
	rep, ok := sess.AuditReport()
	if !ok {
		t.Fatal("AuditReport must be available")
	}
	byAgg := map[string]AuditStream{}
	for _, st := range rep.Streams {
		byAgg[st.Agg] = st
	}
	for _, agg := range []string{"COUNT DISTINCT", "TOPK"} {
		st, found := byAgg[agg]
		if !found {
			t.Fatalf("no %s audit stream: %+v", agg, rep.Streams)
		}
		if st.Audited != 1 || st.Covered != 1 || st.HardViolations != 0 {
			t.Fatalf("%s stream mis-scored: %+v", agg, st)
		}
	}
	if _, found := byAgg["QUANTILE"]; found {
		t.Fatal("QUANTILE must be label-skipped, never scored")
	}
	if rep.SketchSkipped != 1 {
		t.Fatalf("SketchSkipped = %d, want 1", rep.SketchSkipped)
	}
}
