package pass

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/engine/factory"
	"repro/internal/sqlfe"
)

// BuildShardedEngine constructs a sharded PASS engine over the table: the
// data is range-partitioned on the first predicate column into the given
// number of shards, one synopsis is built per shard concurrently on the
// worker pool, and queries execute by scatter-gather with per-shard
// pruning (internal/shard). The construction budget (Partitions,
// SampleRate/SampleSize) is the whole-table budget, divided across shards
// in proportion to their cardinality.
//
// Register the result with Session.RegisterEngine; with a store attached
// the table persists as one snapshot+WAL pair per shard plus a manifest,
// and updates route to the owning shard under per-shard locks.
func BuildShardedEngine(t *Table, opt Options, shards int) (engine.Engine, sqlfe.Schema, error) {
	if shards < 1 {
		return nil, sqlfe.Schema{}, fmt.Errorf("pass: shard count must be positive, got %d", shards)
	}
	iopt, err := opt.internal()
	if err != nil {
		return nil, sqlfe.Schema{}, err
	}
	sp := factory.Spec{
		Partitions: iopt.Partitions,
		SampleRate: iopt.SampleRate,
		SampleSize: iopt.SampleSize,
		Lambda:     iopt.Lambda,
		Seed:       iopt.Seed,
	}
	eng, err := factory.Build(fmt.Sprintf("sharded:pass:%d", shards), t.inner, sp)
	if err != nil {
		return nil, sqlfe.Schema{}, err
	}
	return eng, t.schema(), nil
}
