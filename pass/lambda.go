package pass

import "math"

// lambdaFor converts a two-sided coverage probability into the normal
// quantile multiplier (0.95 → 1.96, 0.99 → 2.576).
func lambdaFor(confidence float64) float64 {
	return math.Sqrt2 * math.Erfinv(confidence)
}
