package pass

// Continuous accuracy auditing: a Session with EnableAudit on taps every
// completed scalar query (the same catalog recorder hook the adaptive
// collector uses), samples a configured fraction, and re-executes the
// sampled queries exactly against the retained base rows that
// RegisterAdaptive keeps in lockstep with the serving engine. The audit
// scores CI coverage, relative error, and hard-bound violations per
// (table, aggregate, degraded) stream onto the obs registry, and an
// optional SLO monitor turns coverage plus tail latency into error
// budgets with breach alerts (see internal/audit).
//
// The tap composes with — not replaces — the adaptive hooks: the
// catalog's single recorder slot receives a chain that forwards to the
// workload collector first and the auditor second, so enabling the
// auditor never perturbs statistics, caching, or answers.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// AuditConfig tunes the session's accuracy-audit layer. The zero value
// audits 10% of queries on a 1s cadence with no SLO objectives.
type AuditConfig struct {
	// SampleFraction is the probability a completed query is audited
	// (default 0.1; clamped to [0,1]; negative means 0 — the tap stays
	// attached, useful for measuring its idle overhead, but nothing is
	// sampled).
	SampleFraction float64
	// Interval is the background scoring cadence (default 1s).
	Interval time.Duration
	// QueueSize bounds pending samples (default 256; overflow drops).
	QueueSize int
	// Confidence is the nominal CI confidence audited against, for
	// reporting (default 0.99 — Options.Confidence's default).
	Confidence float64

	// SLOCoverage, when positive, arms the per-table coverage objective
	// (e.g. 0.95: empirical CI coverage must stay at or above 95%).
	SLOCoverage float64
	// SLOP99, when positive, arms the latency objective: at most 1% of
	// queries may run longer than this.
	SLOP99 time.Duration
	// SLOInterval is the SLO evaluation cadence (default 5s);
	// SLOWindowTicks how many evaluations the budget window spans
	// (default 60); SLOMinEvents the floor below which an objective
	// cannot breach (default 20).
	SLOInterval    time.Duration
	SLOWindowTicks int
	SLOMinEvents   int64
	// AlertLog receives one structured slo_alert JSON line per budget
	// breach/recovery transition (nil disables).
	AlertLog io.Writer

	// Manual disables the background workers: samples are scored only on
	// AuditFlush and budgets only on SLOEvaluate. For tests.
	Manual bool
}

// auditRuntime is the session's audit state.
type auditRuntime struct {
	aud *audit.Auditor
	mon *audit.Monitor // nil when no SLO objective is armed
}

// EnableAudit turns on continuous accuracy auditing (and, with a target
// configured, SLO error budgets). Enable it at boot, alongside
// EnableAdaptive — tables registered through RegisterAdaptive become
// auditable (their retained rows are the exact ground truth); other
// tables are tapped but never scored. It cannot be enabled twice.
func (s *Session) EnableAudit(cfg AuditConfig) error {
	if s.audit != nil {
		return fmt.Errorf("pass: session already has the audit layer enabled")
	}
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = 0.1
	}
	if cfg.SampleFraction < 0 {
		cfg.SampleFraction = 0
	}
	rt := &auditRuntime{
		aud: audit.New(audit.Config{
			SampleFraction: cfg.SampleFraction,
			QueueSize:      cfg.QueueSize,
			Interval:       cfg.Interval,
			Confidence:     cfg.Confidence,
		}),
	}
	if cfg.SLOCoverage > 0 || cfg.SLOP99 > 0 {
		var log *obs.JSONLog
		if cfg.AlertLog != nil {
			log = obs.NewJSONLog(cfg.AlertLog)
		}
		rt.mon = audit.NewMonitor(rt.aud, queryDuration, audit.SLOConfig{
			CoverageTarget: cfg.SLOCoverage,
			P99Target:      cfg.SLOP99,
			WindowTicks:    cfg.SLOWindowTicks,
			MinEvents:      cfg.SLOMinEvents,
			Log:            log,
		})
	}
	s.audit = rt

	// Existing tables get the tap; existing adaptive sources become
	// auditable ground truth.
	for _, tbl := range s.cat.List() {
		s.attachHooks(tbl)
	}
	if s.adaptive != nil {
		s.adaptive.mu.Lock()
		names := make([]string, 0, len(s.adaptive.sources))
		for name := range s.adaptive.sources {
			names = append(names, name)
		}
		s.adaptive.mu.Unlock()
		for _, name := range names {
			if tbl, err := s.cat.Lookup(name); err == nil {
				s.auditAttachSource(tbl)
			}
		}
	}

	if !cfg.Manual {
		rt.aud.Start()
		if rt.mon != nil {
			rt.mon.Start(cfg.SLOInterval)
		}
	}
	return nil
}

// Audited reports whether the audit layer is enabled.
func (s *Session) Audited() bool { return s.audit != nil }

// AuditFlush synchronously scores every queued audit sample — the
// deterministic alternative to waiting out the worker cadence.
func (s *Session) AuditFlush() {
	if s.audit != nil {
		s.audit.aud.Flush()
	}
}

// SLOEvaluate forces one SLO budget evaluation now (no-op without an
// armed objective).
func (s *Session) SLOEvaluate() {
	if s.audit != nil && s.audit.mon != nil {
		s.audit.mon.Evaluate()
	}
}

// SLOStatus reports the latest SLO verdict; ok is false when no SLO
// objective is armed.
func (s *Session) SLOStatus() (audit.SLOStatus, bool) {
	if s.audit == nil || s.audit.mon == nil {
		return audit.SLOStatus{}, false
	}
	return s.audit.mon.Status(), true
}

// auditStop halts the audit workers (Session.Close).
func (s *Session) auditStop() {
	if s.audit == nil {
		return
	}
	if s.audit.mon != nil {
		s.audit.mon.Stop()
	}
	s.audit.aud.Stop()
}

// attachHooks wires the catalog recorder/cache chain under a table: the
// adaptive collector (statistics + caching) first, wrapped by the audit
// tap when the audit layer is on. Both layers are optional; with neither
// enabled this is a no-op.
func (s *Session) attachHooks(tbl *catalog.Table) {
	var rec catalog.QueryRecorder
	var cache catalog.ResultCache
	if s.adaptive != nil {
		rec = s.adaptive.col
		cache = s.adaptive.resultCache()
	}
	if s.audit != nil {
		rec = &auditTap{aud: s.audit.aud, tbl: tbl, next: rec}
	}
	if rec == nil && cache == nil {
		return
	}
	tbl.AttachAdaptive(rec, cache)
}

// auditTap is the per-table recorder shim: it forwards every observation
// to the adaptive collector unchanged, then offers it to the auditor
// stamped with the generation the query executed at. It runs under the
// table's read lock — Gen() is one atomic load, the auditor's fast path
// one atomic hash, and a selected sample a non-blocking enqueue — so the
// tap never perturbs answers or contends with traffic.
type auditTap struct {
	aud  *audit.Auditor
	tbl  *catalog.Table
	next catalog.QueryRecorder
}

func (t *auditTap) ObserveQuery(table string, kind dataset.AggKind, q dataset.Rect, r core.Result, n int, elapsed time.Duration, cacheHit bool) {
	if t.next != nil {
		t.next.ObserveQuery(table, kind, q, r, n, elapsed, cacheHit)
	}
	t.aud.Observe(table, kind, q, r, t.tbl.Gen())
}

// ObserveSketch makes the tap a catalog.SketchRecorder: sketch-family
// answers (QUANTILE, COUNT DISTINCT, TOPK) reach the auditor with the
// generation stamped by the catalog under the same read lock the query
// executed under.
func (t *auditTap) ObserveSketch(table string, q sketch.Query, r sketch.Result, gen uint64) {
	if next, ok := t.next.(catalog.SketchRecorder); ok {
		next.ObserveSketch(table, q, r, gen)
	}
	t.aud.ObserveSketch(table, q, r, gen)
}

// auditAttachSource wires a table's retained base rows as the auditor's
// exact ground truth. The re-execution races live traffic by design:
// the generation is read on both sides of the exact scan, and any
// movement (or an odd in-flight reading) reports ErrStale so the sample
// is skipped rather than misscored.
func (s *Session) auditAttachSource(tbl *catalog.Table) {
	if s.audit == nil || s.adaptive == nil {
		return
	}
	rt := s.adaptive
	rt.mu.Lock()
	src := rt.sources[strings.ToLower(tbl.Name())]
	rt.mu.Unlock()
	if src == nil {
		return
	}
	s.audit.aud.RegisterSource(tbl.Name(), func(kind dataset.AggKind, q dataset.Rect) (float64, uint64, error) {
		gen := tbl.Gen()
		if gen%2 != 0 {
			return 0, 0, audit.ErrStale
		}
		src.mu.Lock()
		truth, err := src.data.Exact(kind, q)
		src.mu.Unlock()
		if err != nil {
			return 0, 0, err
		}
		if tbl.Gen() != gen {
			return 0, 0, audit.ErrStale
		}
		return truth, gen, nil
	})
	// Sketch answers are audited exactly where that is one cheap pass
	// over the retained rows: COUNT DISTINCT (hash the column) and the
	// counts of the TOPK values the answer returned. QUANTILE never
	// reaches this hook — the auditor label-skips it (exact quantile
	// truth needs a full sort).
	s.audit.aud.RegisterSketchSource(tbl.Name(), func(q sketch.Query, values []float64) (audit.SketchTruth, uint64, error) {
		gen := tbl.Gen()
		if gen%2 != 0 {
			return audit.SketchTruth{}, 0, audit.ErrStale
		}
		var truth audit.SketchTruth
		src.mu.Lock()
		switch q.Kind {
		case sketch.KindDistinct:
			seen := make(map[float64]struct{}, 1024)
			for _, v := range src.data.Agg {
				seen[v] = struct{}{}
			}
			truth.Distinct = float64(len(seen))
		case sketch.KindTopK:
			truth.Counts = make([]float64, len(values))
			for _, v := range src.data.Agg {
				for i, want := range values {
					if v == want {
						truth.Counts[i]++
					}
				}
			}
		}
		src.mu.Unlock()
		if tbl.Gen() != gen {
			return audit.SketchTruth{}, 0, audit.ErrStale
		}
		return truth, gen, nil
	})
}

// auditForget clears a dropped table's audit state.
func (s *Session) auditForget(name string) {
	if s.audit != nil {
		s.audit.aud.ForgetSource(name)
	}
}

// AuditInfo is the per-table audit summary surfaced by Tables and
// passd's GET /tables. Degraded (partial scatter) answers are scored
// separately: their CIs are widened by design, and folding them in
// would mask a coverage regression on the healthy path.
type AuditInfo struct {
	// Audited/Covered/Coverage score non-degraded answers: how many were
	// re-executed exactly, and how often the CI contained the truth.
	Audited  int64   `json:"audited"`
	Covered  int64   `json:"covered"`
	Coverage float64 `json:"coverage"`
	// HardViolations counts answers whose exact truth escaped the
	// deterministic hard bounds — any nonzero value disproves a guarantee.
	HardViolations int64 `json:"hard_violations"`
	// MeanRelErr is the mean relative error of audited estimates.
	MeanRelErr float64 `json:"mean_rel_err"`
	// DegradedAudited/DegradedCovered score degraded answers.
	DegradedAudited int64 `json:"degraded_audited,omitempty"`
	DegradedCovered int64 `json:"degraded_covered,omitempty"`
}

// auditInfo assembles one table's AuditInfo (nil when the layer is off).
func (s *Session) auditInfo(name string) *AuditInfo {
	if s.audit == nil {
		return nil
	}
	info := &AuditInfo{Coverage: 1}
	for k, st := range s.audit.aud.Stats() {
		if k.Table != name {
			continue
		}
		if k.Degraded {
			info.DegradedAudited += st.Audited
			info.DegradedCovered += st.Covered
			continue
		}
		info.Audited += st.Audited
		info.Covered += st.Covered
		info.HardViolations += st.HardViolations
		info.MeanRelErr += st.RelErrSum
	}
	if info.Audited > 0 {
		info.Coverage = float64(info.Covered) / float64(info.Audited)
		info.MeanRelErr /= float64(info.Audited)
	} else {
		info.MeanRelErr = 0
	}
	return info
}

// AuditStream is one (table, aggregate, degraded) audit stream in an
// AuditReport.
type AuditStream struct {
	Table          string  `json:"table"`
	Agg            string  `json:"agg"`
	Degraded       bool    `json:"degraded,omitempty"`
	Audited        int64   `json:"audited"`
	Covered        int64   `json:"covered"`
	Coverage       float64 `json:"coverage"`
	HardViolations int64   `json:"hard_violations"`
	MeanRelErr     float64 `json:"mean_rel_err"`
}

// AuditReport is the full audit state surfaced by passd's GET /audit.
type AuditReport struct {
	// SampleFraction and Confidence echo the configuration; Nominal is
	// the coverage the CIs promise (== Confidence).
	SampleFraction float64 `json:"sample_fraction"`
	Confidence     float64 `json:"confidence"`
	// Dropped counts samples lost to queue overflow, Stale the ones
	// skipped because ground truth moved mid-audit, SketchSkipped the
	// sampled sketch answers (QUANTILE) whose exact truth is too
	// expensive to recompute.
	Dropped       int64 `json:"dropped"`
	Stale         int64 `json:"stale"`
	SketchSkipped int64 `json:"sketch_skipped,omitempty"`
	// Streams lists every audited stream, sorted by table/agg/degraded.
	Streams []AuditStream `json:"streams"`
	// SLO is the current budget verdict (absent without objectives).
	SLO *audit.SLOStatus `json:"slo,omitempty"`
}

// AuditReport snapshots the audit layer; ok is false when it is off.
func (s *Session) AuditReport() (AuditReport, bool) {
	if s.audit == nil {
		return AuditReport{}, false
	}
	a := s.audit.aud
	rep := AuditReport{
		SampleFraction: a.SampleFraction(),
		Confidence:     a.Confidence(),
		Dropped:        a.Dropped(),
		Stale:          a.Stale(),
		SketchSkipped:  a.SketchSkipped(),
		Streams:        []AuditStream{},
	}
	for k, st := range a.Stats() {
		stream := AuditStream{
			Table:          k.Table,
			Agg:            k.AggLabel(),
			Degraded:       k.Degraded,
			Audited:        st.Audited,
			Covered:        st.Covered,
			Coverage:       st.Coverage(),
			HardViolations: st.HardViolations,
		}
		if st.Audited > 0 {
			stream.MeanRelErr = st.RelErrSum / float64(st.Audited)
		}
		rep.Streams = append(rep.Streams, stream)
	}
	sort.Slice(rep.Streams, func(i, j int) bool {
		a, b := rep.Streams[i], rep.Streams[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Agg != b.Agg {
			return a.Agg < b.Agg
		}
		return !a.Degraded && b.Degraded
	})
	if st, ok := s.SLOStatus(); ok {
		rep.SLO = &st
	}
	return rep, true
}
