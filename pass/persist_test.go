package pass

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

func testStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{CheckpointInterval: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// persistFixture builds a deterministic 1D table and synopsis.
func persistFixture(t *testing.T) (*Table, *Synopsis) {
	t.Helper()
	tbl := NewTable([]string{"hour"}, "light")
	for i := 0; i < 3000; i++ {
		tbl.Append([]float64{float64(i % 24)}, float64(i%100)/10)
	}
	syn, err := Build(tbl, Options{Partitions: 16, SampleRate: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, syn
}

var recoveryQueries = []string{
	"SELECT COUNT(*) FROM sensors",
	"SELECT SUM(light) FROM sensors",
	"SELECT SUM(light) FROM sensors WHERE hour BETWEEN 6 AND 18",
	"SELECT AVG(light) FROM sensors WHERE hour >= 3 AND hour <= 9",
}

// TestSessionCrashRecoveryMatchesInMemoryTwin is the acceptance scenario:
// register a table in a durable session, insert (and delete) rows that
// reach only the WAL, crash without a checkpoint, reopen against the same
// data dir — every answer must match a twin session that kept the whole
// history in memory, and nothing may be rebuilt.
func TestSessionCrashRecoveryMatchesInMemoryTwin(t *testing.T) {
	dir := t.TempDir()
	_, syn := persistFixture(t)

	// the twin starts from the synopsis's serialized form (the exact state
	// the snapshot captures) and stays in memory for the whole test
	var payload bytes.Buffer
	if err := syn.Save(&payload); err != nil {
		t.Fatal(err)
	}
	twinSyn, err := LoadSynopsis(&payload)
	if err != nil {
		t.Fatal(err)
	}
	twinSyn.SetSchema([]string{"hour"}, "light", nil)
	twin := NewSession()
	if err := twin.Register("sensors", twinSyn); err != nil {
		t.Fatal(err)
	}

	st := testStore(t, dir)
	sess := NewSession()
	if n, err := sess.AttachStore(st); err != nil || n != 0 {
		t.Fatalf("AttachStore on empty dir = %d, %v", n, err)
	}
	if err := sess.Register("sensors", syn); err != nil {
		t.Fatal(err)
	}

	// journaled updates: inserts plus a few deletes, mirrored into the twin
	for i := 0; i < 120; i++ {
		pt := []float64{float64(i % 24)}
		v := float64(i) / 3
		if err := sess.Insert("sensors", pt, v); err != nil {
			t.Fatal(err)
		}
		if err := twin.Insert("sensors", pt, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		pt := []float64{float64(i)}
		v := float64(i * 3)
		if err := sess.Delete("sensors", pt, v); err != nil {
			t.Fatal(err)
		}
		if err := twin.Delete("sensors", pt, v); err != nil {
			t.Fatal(err)
		}
	}

	// crash: the store is closed with the WAL intact and the snapshot stale
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := NewSession()
	st2 := testStore(t, dir)
	defer st2.Close()
	n, err := recovered.AttachStore(st2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d tables, want 1", n)
	}
	tabs := recovered.Tables()
	if len(tabs) != 1 || tabs[0].Name != "sensors" || tabs[0].Engine != "PASS" {
		t.Fatalf("recovered tables = %+v", tabs)
	}
	if want := 3000 + 120 - 10; tabs[0].Rows != want {
		t.Errorf("recovered Rows = %d, want %d", tabs[0].Rows, want)
	}

	for _, q := range recoveryQueries {
		want, err1 := twin.Exec(q)
		got, err2 := recovered.Exec(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: errors diverge: %v vs %v", q, err1, err2)
		}
		if want.Scalar.Estimate != got.Scalar.Estimate || want.Scalar.CIHalf != got.Scalar.CIHalf {
			t.Errorf("%s: recovered %v±%v, twin %v±%v",
				q, got.Scalar.Estimate, got.Scalar.CIHalf, want.Scalar.Estimate, want.Scalar.CIHalf)
		}
	}
}

// TestSessionCloseCheckpointsEverything: a graceful shutdown folds the WAL
// into the snapshot, so the next boot replays nothing.
func TestSessionCloseCheckpointsEverything(t *testing.T) {
	dir := t.TempDir()
	_, syn := persistFixture(t)
	sess := NewSession()
	st := testStore(t, dir)
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("sensors", syn); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := sess.Insert("sensors", []float64{float64(i % 24)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := testStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Replayed != 0 {
		t.Fatalf("after graceful close: loaded = %+v, want 1 table with an empty WAL", loaded)
	}
}

// TestSessionDropRemovesPersistedFiles: a dropped table must not come back
// on the next boot.
func TestSessionDropRemovesPersistedFiles(t *testing.T) {
	dir := t.TempDir()
	_, syn := persistFixture(t)
	sess := NewSession()
	st := testStore(t, dir)
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("sensors", syn); err != nil {
		t.Fatal(err)
	}
	if err := sess.Drop("sensors"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := NewSession()
	st2 := testStore(t, dir)
	defer st2.Close()
	if n, err := recovered.AttachStore(st2); err != nil || n != 0 {
		t.Fatalf("dropped table resurrected: %d tables, %v", n, err)
	}
}

// TestSessionRegisterNotSerializable: a durable session must refuse — with
// the typed sentinel, not silently — a table it cannot persist, and accept
// it via the explicit ephemeral path.
func TestSessionRegisterNotSerializable(t *testing.T) {
	dir := t.TempDir()
	taxi := DemoTaxi(1500, 2, 3) // multi-dimensional → k-d synopsis, no serialization
	syn, err := BuildMulti(taxi, Options{Partitions: 16, SampleRate: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession()
	st := testStore(t, dir)
	defer st.Close()
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	err = sess.Register("taxi", syn)
	if !errors.Is(err, engine.ErrNotSerializable) {
		t.Fatalf("Register error = %v, want ErrNotSerializable", err)
	}
	if len(sess.Tables()) != 0 {
		t.Fatal("failed Register left the table in the catalog")
	}
	if err := sess.RegisterEphemeral("taxi", syn); err != nil {
		t.Fatal(err)
	}
	if len(sess.Tables()) != 1 {
		t.Fatal("RegisterEphemeral did not register")
	}
	// and the ephemeral table has no files
	st.Close()
	st2 := testStore(t, dir)
	defer st2.Close()
	if loaded, err := st2.LoadAll(); err != nil || len(loaded) != 0 {
		t.Fatalf("ephemeral table persisted: %v, %v", loaded, err)
	}
}

// TestSessionConcurrentInsertCheckpointQuery runs SQL, inserts and
// checkpoints concurrently under -race.
func TestSessionConcurrentInsertCheckpointQuery(t *testing.T) {
	dir := t.TempDir()
	_, syn := persistFixture(t)
	sess := NewSession()
	st := testStore(t, dir)
	if _, err := sess.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if err := sess.Register("sensors", syn); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			if err := sess.Insert("sensors", []float64{float64(i % 24)}, float64(i)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := sess.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := sess.Exec(fmt.Sprintf("SELECT SUM(light) FROM sensors WHERE hour <= %d", i%24)); err != nil && err != ErrNoMatch {
				t.Errorf("query: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}
