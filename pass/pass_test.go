package pass

import (
	"bytes"
	"math"
	"testing"
)

func demoTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := Demo("nyctaxi", 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestAggString(t *testing.T) {
	cases := map[Agg]string{Sum: "SUM", Count: "COUNT", Avg: "AVG", Min: "MIN", Max: "MAX"}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
	if Agg(99).String() != "Agg(99)" {
		t.Errorf("unknown agg string = %q", Agg(99).String())
	}
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable([]string{"x", "y"}, "v")
	tbl.Append([]float64{1, 2}, 10)
	tbl.Append([]float64{3, 4}, 20)
	if tbl.Len() != 2 || tbl.Dims() != 2 {
		t.Fatalf("Len=%d Dims=%d", tbl.Len(), tbl.Dims())
	}
	got, err := tbl.Exact(Sum, Range{0, 5}, Range{0, 5})
	if err != nil || got != 30 {
		t.Errorf("Exact = %v, %v", got, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := NewTable([]string{"x"}, "v")
	tbl.Append([]float64{1}, 2)
	tbl.Append([]float64{3}, 4)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil || got.Len() != 2 {
		t.Fatalf("ReadCSV: %v %v", got, err)
	}
}

func TestDemoNames(t *testing.T) {
	for _, name := range []string{"intel", "instacart", "nyctaxi", "adversarial", "uniform"} {
		tbl, err := Demo(name, 500, 1)
		if err != nil || tbl.Len() != 500 {
			t.Errorf("Demo(%q): %v", name, err)
		}
	}
	if _, err := Demo("bogus", 10, 1); err == nil {
		t.Error("unknown demo accepted")
	}
	if got := DemoTaxi(100, 3, 1); got.Dims() != 3 {
		t.Errorf("DemoTaxi dims = %d", got.Dims())
	}
}

func TestBuildAndQuery(t *testing.T) {
	tbl := demoTable(t)
	syn, err := Build(tbl, Options{Partitions: 32, SampleRate: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Leaves() < 2 || syn.Samples() == 0 || syn.MemoryBytes() <= 0 {
		t.Fatalf("synopsis stats: leaves=%d samples=%d", syn.Leaves(), syn.Samples())
	}
	ans, err := syn.Sum(Range{6, 18})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := tbl.Exact(Sum, Range{6, 18})
	if math.Abs(ans.Estimate-truth)/truth > 0.2 {
		t.Errorf("SUM estimate %v far from %v", ans.Estimate, truth)
	}
	if ans.HardBounds && (truth < ans.HardLo || truth > ans.HardHi) {
		t.Errorf("hard bounds [%v, %v] miss truth %v", ans.HardLo, ans.HardHi, truth)
	}
	for _, f := range []func(...Range) (Answer, error){syn.Count, syn.Avg, syn.MinQ, syn.MaxQ} {
		if _, err := f(Range{6, 18}); err != nil {
			t.Errorf("query failed: %v", err)
		}
	}
}

func TestFullSpanExact(t *testing.T) {
	tbl := demoTable(t)
	syn, err := Build(tbl, Options{Partitions: 16, SampleRate: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := syn.Sum(Range{math.Inf(-1), math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact || ans.CIHalf != 0 {
		t.Errorf("full-span query should be exact: %+v", ans)
	}
}

func TestNoMatch(t *testing.T) {
	tbl := demoTable(t)
	syn, _ := Build(tbl, Options{Partitions: 8, SampleRate: 0.02, Seed: 4})
	if _, err := syn.Avg(Range{1000, 2000}); err != ErrNoMatch {
		t.Errorf("want ErrNoMatch, got %v", err)
	}
}

func TestBuildMulti(t *testing.T) {
	tbl := DemoTaxi(6000, 3, 5)
	syn, err := BuildMulti(tbl, Options{Partitions: 64, SampleRate: 0.05, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := syn.Sum(Range{0, 12}, Range{0, 15}, Range{0, 130})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := tbl.Exact(Sum, Range{0, 12}, Range{0, 15}, Range{0, 130})
	if truth > 0 && math.Abs(ans.Estimate-truth)/truth > 0.5 {
		t.Errorf("multi-d SUM %v far from %v", ans.Estimate, truth)
	}
}

func TestWorkloadShiftViaIndexDims(t *testing.T) {
	tbl := DemoTaxi(6000, 5, 7)
	syn, err := BuildMulti(tbl, Options{Partitions: 64, SampleRate: 0.1, Seed: 8, IndexDims: 2})
	if err != nil {
		t.Fatal(err)
	}
	// a 4D query against a 2D-indexed synopsis must still work
	if _, err := syn.Sum(Range{0, 24}, Range{0, 31}, Range{0, 263}, Range{0, 31}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDelete(t *testing.T) {
	tbl := demoTable(t)
	syn, _ := Build(tbl, Options{Partitions: 8, SampleRate: 0.05, Seed: 9})
	before, _ := syn.Count(Range{math.Inf(-1), math.Inf(1)})
	if err := syn.Insert([]float64{12}, 3.5); err != nil {
		t.Fatal(err)
	}
	after, _ := syn.Count(Range{math.Inf(-1), math.Inf(1)})
	if after.Estimate != before.Estimate+1 {
		t.Errorf("COUNT after insert = %v, want %v", after.Estimate, before.Estimate+1)
	}
	if err := syn.Delete([]float64{12}, 3.5); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	tbl := demoTable(t)
	if _, err := Build(tbl, Options{Partitions: 8, SampleRate: 0.05, Confidence: 2}); err == nil {
		t.Error("bad confidence accepted")
	}
	if _, err := Build(tbl, Options{Partitions: 8, SampleRate: 0.05, Partitioner: Partitioner(9)}); err == nil {
		t.Error("bad partitioner accepted")
	}
	if _, err := Build(tbl, Options{Partitions: 8, SampleRate: 0.05, OptimizeFor: Agg(9)}); err == nil {
		t.Error("bad aggregate accepted")
	}
}

func TestConfidenceAffectsCI(t *testing.T) {
	tbl := demoTable(t)
	narrow, _ := Build(tbl, Options{Partitions: 16, SampleRate: 0.02, Confidence: 0.5, Seed: 10})
	wide, _ := Build(tbl, Options{Partitions: 16, SampleRate: 0.02, Confidence: 0.999, Seed: 10})
	an, _ := narrow.Sum(Range{8, 9})
	aw, _ := wide.Sum(Range{8, 9})
	if an.CIHalf >= aw.CIHalf {
		t.Errorf("99.9%% CI (%v) should be wider than 50%% CI (%v)", aw.CIHalf, an.CIHalf)
	}
}

func TestPartitionerChoices(t *testing.T) {
	tbl, _ := Demo("adversarial", 5000, 11)
	for _, p := range []Partitioner{ADP, EqualDepth, HillClimb} {
		syn, err := Build(tbl, Options{Partitions: 16, SampleRate: 0.02, Partitioner: p, Seed: 12})
		if err != nil {
			t.Fatalf("partitioner %d: %v", int(p), err)
		}
		if _, err := syn.Sum(Range{0, 2500}); err != nil {
			t.Fatalf("partitioner %d query: %v", int(p), err)
		}
	}
}
