package pass

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/sqlfe"
)

// Dict is a dictionary encoding of a categorical (string) column: the
// bridge between SQL string predicates and PASS's numeric rectangles
// (Section 4.5 of the paper).
type Dict struct {
	inner *dataset.Dict
}

// EncodeStrings dictionary-encodes a string column: it returns the
// numeric codes (to Append as a predicate column) and the dictionary (to
// attach to the table with SetDict so SQL queries can use the strings).
func EncodeStrings(column []string) ([]float64, *Dict) {
	codes, d := dataset.Encode(column)
	return codes, &Dict{inner: d}
}

// Code returns the numeric code of a category.
func (d *Dict) Code(v string) (float64, bool) { return d.inner.Code(v) }

// Value returns the category of a code.
func (d *Dict) Value(code float64) (string, error) { return d.inner.Value(code) }

// Categories returns the number of distinct categories.
func (d *Dict) Categories() int { return d.inner.Len() }

// SetDict attaches a dictionary to a predicate column (by name), enabling
// string predicates and GROUP BY on it in SQL queries.
func (t *Table) SetDict(column string, d *Dict) error {
	for i := 0; i < t.inner.Dims(); i++ {
		if t.inner.ColNames[i] == column {
			if t.dicts == nil {
				t.dicts = map[string]*dataset.Dict{}
			}
			t.dicts[column] = d.inner
			return nil
		}
	}
	return fmt.Errorf("pass: %q is not a predicate column", column)
}

// GroupAnswer is one group's result in a GROUP BY query.
type GroupAnswer struct {
	// Group is the numeric group key.
	Group float64
	// Label is the dictionary category when the grouping column has one.
	Label string
	// Answer is the group's approximate aggregate; NoMatch reports groups
	// with no (estimable) matching tuples.
	Answer  Answer
	NoMatch bool
}

// GroupBy answers agg(...) WHERE pred GROUP BY column dim, one equality
// predicate per group key (Section 4.5).
func (s *Synopsis) GroupBy(agg Agg, dim int, groups []float64, pred ...Range) ([]GroupAnswer, error) {
	kind, err := agg.internal()
	if err != nil {
		return nil, err
	}
	res, err := s.inner.GroupBy(kind, toRect(pred), dim, groups)
	if err != nil {
		return nil, err
	}
	return groupAnswers(res, nil, s.inner.N()), nil
}

// SQLResult is the answer of one SQL statement: a scalar for plain
// aggregates, or per-group answers for GROUP BY.
type SQLResult struct {
	// Scalar holds the answer of a non-grouped query.
	Scalar Answer
	// Groups holds the per-group answers of a GROUP BY query (nil
	// otherwise).
	Groups []GroupAnswer
	// Sketch holds the answer of a sketch-family aggregate — QUANTILE,
	// COUNT DISTINCT, TOPK — (nil otherwise); Scalar is then unused.
	Sketch *SketchAnswer
	// Trace is the execution span tree of an EXPLAIN ANALYZE statement
	// (nil for plain statements). The answer it annotates is bitwise
	// identical to the untraced statement's.
	Trace *obs.SpanJSON
}

// SQL parses and executes one statement of the supported class:
//
//	SELECT SUM|COUNT|AVG|MIN|MAX(column|*) FROM t
//	 WHERE col >= x AND col BETWEEN a AND b AND col = 'category' ...
//	 [GROUP BY col]
//
// Column names resolve against the table the synopsis was built from;
// string literals resolve through dictionaries attached with SetDict.
// GROUP BY requires a dictionary on the grouping column (the synopsis
// does not store distinct numeric values — use GroupBy directly for
// numeric group keys).
func (s *Synopsis) SQL(query string) (SQLResult, error) {
	if len(s.schema.PredColumns) == 0 {
		return SQLResult{}, fmt.Errorf("pass: synopsis has no schema (loaded from disk?) — call SetSchema first")
	}
	plan, err := s.compileSQL(query)
	if err != nil {
		return SQLResult{}, err
	}
	if plan.Sketch != nil {
		r, err := s.inner.SketchQuery(*plan.Sketch)
		if err != nil {
			return SQLResult{}, err
		}
		return SQLResult{Sketch: sketchAnswerFromResult(r)}, nil
	}
	if plan.GroupDim < 0 {
		r, err := s.inner.Query(plan.Agg, plan.Rect)
		if err != nil {
			return SQLResult{}, err
		}
		if r.NoMatch {
			return SQLResult{}, ErrNoMatch
		}
		return SQLResult{Scalar: answerFromResult(r, s.inner.N())}, nil
	}
	if len(plan.Groups) == 0 {
		return SQLResult{}, fmt.Errorf("pass: GROUP BY on a numeric column needs explicit group keys — use Synopsis.GroupBy")
	}
	res, err := s.inner.GroupBy(plan.Agg, plan.Rect, plan.GroupDim, plan.Groups)
	if err != nil {
		return SQLResult{}, err
	}
	return SQLResult{Groups: groupAnswers(res, plan.GroupDict, s.inner.N())}, nil
}

// compileSQL plans one statement against the synopsis schema through the
// per-synopsis plan cache: statements are normalized to parameterized
// templates, so repeated query shapes (same structure, different
// literals) reuse one compiled skeleton. The FROM table name is ignored,
// as it always was on this single-synopsis path.
func (s *Synopsis) compileSQL(query string) (*sqlfe.Plan, error) {
	tmpl, err := sqlfe.Normalize(query)
	if err != nil {
		return nil, err
	}
	s.plansOnce.Do(func() { s.plans = sqlfe.NewPlanCache(synopsisPlanCacheSize) })
	gen := s.schemaGen.Load()
	prep, ok := s.plans.Lookup(tmpl.Text, s, gen)
	if !ok {
		if prep, err = sqlfe.CompileTemplate(tmpl, s.schema); err != nil {
			return nil, err
		}
		s.plans.Store(tmpl.Text, s, gen, prep)
	}
	return prep.Bind(tmpl.Params())
}

// synopsisPlanCacheSize bounds the per-synopsis plan cache of the legacy
// SQL path; sessions size theirs with SetPlanCacheSize instead.
const synopsisPlanCacheSize = 64

// SetSchema attaches column names (and optional dictionaries) to a
// synopsis, enabling SQL queries — needed after LoadSynopsis, which does
// not persist names. Plans compiled against the previous schema are
// invalidated.
func (s *Synopsis) SetSchema(predCols []string, aggCol string, dicts map[string]*Dict) {
	s.schema = sqlfe.Schema{
		PredColumns: append([]string(nil), predCols...),
		AggColumn:   aggCol,
	}
	if len(dicts) > 0 {
		s.schema.Dicts = make(map[string]*dataset.Dict, len(dicts))
		for k, v := range dicts {
			s.schema.Dicts[k] = v.inner
		}
	}
	s.schemaGen.Add(1)
}
