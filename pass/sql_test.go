package pass

import (
	"bytes"
	"math"
	"testing"
)

// boroughTable builds a table with a dictionary-encoded categorical
// column (borough) and a numeric column (hour).
func boroughTable(t *testing.T) (*Table, *Dict) {
	t.Helper()
	boroughs := []string{"bronx", "brooklyn", "manhattan", "queens", "staten"}
	var names []string
	var hours []float64
	var fares []float64
	seed := uint64(99)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / (1 << 53)
	}
	for i := 0; i < 20000; i++ {
		b := int(next() * 5)
		if b > 4 {
			b = 4
		}
		names = append(names, boroughs[b])
		hours = append(hours, next()*24)
		fares = append(fares, 10+float64(b)*5+next()*3)
	}
	codes, dict := EncodeStrings(names)
	tbl := NewTable([]string{"borough", "hour"}, "fare")
	for i := range codes {
		tbl.Append([]float64{codes[i], hours[i]}, fares[i])
	}
	if err := tbl.SetDict("borough", dict); err != nil {
		t.Fatal(err)
	}
	return tbl, dict
}

func TestSQLScalar(t *testing.T) {
	tbl, _ := boroughTable(t)
	syn, err := BuildMulti(tbl, Options{Partitions: 64, SampleRate: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.SQL("SELECT AVG(fare) FROM trips WHERE borough = 'manhattan' AND hour BETWEEN 7 AND 9")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := tbl.dicts["borough"].Code("manhattan")
	truth, _ := tbl.Exact(Avg, Range{code, code}, Range{7, 9})
	if math.Abs(res.Scalar.Estimate-truth)/truth > 0.1 {
		t.Errorf("SQL AVG %v far from exact %v", res.Scalar.Estimate, truth)
	}
}

func TestSQLGroupBy(t *testing.T) {
	tbl, dict := boroughTable(t)
	syn, err := BuildMulti(tbl, Options{Partitions: 64, SampleRate: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.SQL("SELECT AVG(fare) FROM trips GROUP BY borough")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != dict.Categories() {
		t.Fatalf("groups = %d, want %d", len(res.Groups), dict.Categories())
	}
	// per-borough means rise by 5 per code; check the ordering and labels
	prev := -math.MaxFloat64
	for _, g := range res.Groups {
		if g.NoMatch {
			t.Fatalf("group %v (%s) unexpectedly empty", g.Group, g.Label)
		}
		if g.Label == "" {
			t.Fatalf("group %v missing label", g.Group)
		}
		if g.Answer.Estimate < prev-1 {
			t.Errorf("group means should be (weakly) increasing: %v after %v", g.Answer.Estimate, prev)
		}
		prev = g.Answer.Estimate
	}
	if res.Groups[0].Label != "bronx" || res.Groups[4].Label != "staten" {
		t.Errorf("labels wrong: %v / %v", res.Groups[0].Label, res.Groups[4].Label)
	}
}

func TestSQLErrors(t *testing.T) {
	tbl, _ := boroughTable(t)
	syn, err := BuildMulti(tbl, Options{Partitions: 16, SampleRate: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"SELECT MEDIAN(fare) FROM t",
		"SELECT SUM(fare) FROM t WHERE borough = 'atlantis'",
		"SELECT SUM(fare) FROM t WHERE hour = 1 OR hour = 2",
		"SELECT SUM(nope) FROM t",
		"SELECT SUM(fare) FROM t GROUP BY hour", // numeric group-by needs GroupBy()
	}
	for _, sql := range bad {
		if _, err := syn.SQL(sql); err == nil {
			t.Errorf("SQL accepted %q", sql)
		}
	}
}

func TestGroupByNumericViaAPI(t *testing.T) {
	tbl := DemoTaxi(10000, 2, 4)
	syn, err := BuildMulti(tbl, Options{Partitions: 64, SampleRate: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// group by day-of-month buckets on column 1
	groups := []float64{0, 1, 2, 3, 4}
	res, err := syn.GroupBy(Count, 1, groups, Range{Lo: 0, Hi: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("groups = %d", len(res))
	}
	total := 0.0
	for _, g := range res {
		if !g.NoMatch {
			total += g.Answer.Estimate
		}
	}
	truth, _ := tbl.Exact(Count, Range{0, 24}, Range{0, 4})
	if math.Abs(total-truth)/truth > 0.1 {
		t.Errorf("summed group counts %v far from %v", total, truth)
	}
}

func TestSaveLoadWithSchema(t *testing.T) {
	tbl, err := Demo("nyctaxi", 5000, 6)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Build(tbl, Options{Partitions: 16, SampleRate: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := syn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// SQL before SetSchema must fail gracefully
	if _, err := got.SQL("SELECT SUM(trip_distance) FROM t"); err == nil {
		t.Error("SQL without schema accepted")
	}
	got.SetSchema([]string{"pickup_time"}, "trip_distance", nil)
	res, err := got.SQL("SELECT SUM(trip_distance) FROM t WHERE pickup_time BETWEEN 6 AND 18")
	if err != nil {
		t.Fatal(err)
	}
	want, err := syn.Sum(Range{6, 18})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Scalar.Estimate-want.Estimate) > 1e-3*(1+math.Abs(want.Estimate)) {
		t.Errorf("loaded SQL answer %v != original %v", res.Scalar.Estimate, want.Estimate)
	}
}

func TestSetDictValidation(t *testing.T) {
	tbl := NewTable([]string{"a"}, "v")
	_, dict := EncodeStrings([]string{"x"})
	if err := tbl.SetDict("nope", dict); err == nil {
		t.Error("SetDict on unknown column accepted")
	}
	if err := tbl.SetDict("v", dict); err == nil {
		t.Error("SetDict on the aggregate column accepted")
	}
}

// TestSynopsisSQLIgnoresTableName pins the legacy single-synopsis
// behavior the catalog fixed: a Synopsis detached from any session has no
// table identity, so its SQL method accepts any FROM name. Multi-table
// resolution — and the unknown-table error — lives in pass.Session (see
// TestSessionUnknownTable).
func TestSynopsisSQLIgnoresTableName(t *testing.T) {
	tbl, _ := boroughTable(t)
	syn, err := BuildMulti(tbl, Options{Partitions: 32, SampleRate: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := syn.SQL("SELECT COUNT(*) FROM anything_at_all")
	if err != nil {
		t.Fatalf("detached synopsis must accept any FROM table: %v", err)
	}
	b, err := syn.SQL("SELECT COUNT(*) FROM some_other_name")
	if err != nil {
		t.Fatal(err)
	}
	if a.Scalar != b.Scalar {
		t.Errorf("same query, different answers: %+v vs %+v", a.Scalar, b.Scalar)
	}
}
