// Package catalog is the multi-table registry between the SQL frontend
// and the engine layer: a concurrency-safe map from table names to a
// serving engine plus the schema (column names and dictionaries) that SQL
// statements resolve against.
//
// Concurrency model: the catalog itself is guarded by one RWMutex for
// registration lookups, and every table carries its own RWMutex. Queries
// — single or batched — take the table's read lock, so any number of them
// run concurrently and a batched workload still fans out across the
// worker pool inside the engine; Insert/Delete take the write lock, so
// updates serialise against each other and against in-flight queries
// without blocking other tables.
//
// Two subsystems attach to a table through interfaces defined here, so
// the catalog imports neither: a durable store journals updates through
// Journal (write-ahead, under the update lock), and the
// workload-adaptive layer observes queries and serves cached answers
// through QueryRecorder/ResultCache, with soundness anchored on the
// table's update-generation counter (see adaptive.go). SwapEngine
// hot-swaps a table's serving engine under the exclusive lock — the
// re-optimizer's path for replacing a synopsis with a workload-aligned
// rebuild.
package catalog

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/sqlfe"
)

// Journal is the write-ahead hook a durable store attaches to a table:
// Insert/Delete are called BEFORE the in-memory apply (classic WAL
// ordering — the update must be on disk before it is acknowledged), and
// Rollback undoes the most recent append if that apply then fails, so log
// and engine never diverge. All three run under the table's write lock.
// It is satisfied by store.TableLog; defining it here keeps the catalog
// free of store imports.
type Journal interface {
	Insert(point []float64, value float64) error
	Delete(point []float64, value float64) error
	// InsertMany journals a batch as one group commit (single write +
	// fsync); a following Rollback undoes the whole group.
	InsertMany(points [][]float64, values []float64) error
	Rollback() error
}

// Table is one registered table: an engine, its schema, and the lock that
// orders queries and updates. rows is atomic so the shared-lock update
// path of internally synchronised engines (engine.ConcurrentUpdatable)
// can maintain it without the exclusive lock.
type Table struct {
	name    string
	mu      sync.RWMutex
	eng     engine.Engine
	schema  sqlfe.Schema
	rows    atomic.Int64
	journal Journal
	// gen is the update generation: bumped before and after every update
	// and engine swap, read by queries under the read lock. It keys the
	// result cache so stale answers are unreachable (see adaptive.go).
	gen atomic.Uint64
	// planGen is the plan generation: bumped only when the serving engine
	// is swapped (SwapEngine), not on row updates — compiled plans resolve
	// column names and dictionaries against the schema, which updates never
	// change. It is half of the plan cache's validity pair (the other half
	// is the table's identity), so prepared statements survive inserts and
	// deletes but never outlive an engine swap.
	planGen atomic.Uint64
	// recorder and cache are the optional workload-adaptive hooks
	// (AttachAdaptive); observer tracks applied updates (AttachObserver).
	recorder QueryRecorder
	cache    ResultCache
	observer UpdateObserver
}

// Name returns the registered table name.
func (t *Table) Name() string { return t.name }

// PlanGen returns the table's plan generation (see planGen). Plan-cache
// entries stored under an older generation are stale.
func (t *Table) PlanGen() uint64 { return t.planGen.Load() }

// Schema returns the SQL-resolution schema. The returned value is shared
// and must be treated as read-only.
func (t *Table) Schema() sqlfe.Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.schema
}

// EngineName reports the serving engine's display name.
func (t *Table) EngineName() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.eng.Name()
}

// MemoryBytes reports the serving engine's synopsis footprint.
func (t *Table) MemoryBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.eng.MemoryBytes()
}

// Rows reports the base-table cardinality the engine was built over, or 0
// when the engine does not expose it.
func (t *Table) Rows() int {
	return int(t.rows.Load())
}

// Query answers one aggregate under the table's read lock, consulting
// the result cache first when one is attached (AttachAdaptive) and
// recording the served query with the workload collector.
func (t *Table) Query(kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	return t.QueryCtx(context.Background(), kind, q)
}

// QueryCtx is Query with deadline propagation: a deadline-aware engine
// (engine.ContextQuerier — the scatter-gather executor) observes ctx
// mid-query and may return a partial Degraded answer; other engines get a
// fail-fast admission check. Degraded answers are never stored in the
// result cache — they are artifacts of this request's deadline, not facts
// about the table.
func (t *Table) QueryCtx(ctx context.Context, kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sp := obs.SpanFrom(ctx)
	rec, cache := t.recorder, t.cache
	if rec == nil && cache == nil {
		sp.Set("result_cache", "off")
		return engine.QueryCtx(ctx, t.eng, kind, q)
	}
	gen := t.gen.Load()
	if cache != nil {
		if r, ok := cache.Lookup(t.name, gen, kind, q); ok {
			sp.Set("result_cache", "hit")
			if rec != nil {
				rec.ObserveQuery(t.name, kind, q, r, t.Rows(), 0, true)
			}
			return r, nil
		}
		sp.Set("result_cache", "miss")
	} else {
		sp.Set("result_cache", "off")
	}
	start := time.Now()
	r, err := engine.QueryCtx(ctx, t.eng, kind, q)
	if err != nil {
		return r, err
	}
	elapsed := time.Since(start)
	if cache != nil && !r.Degraded {
		cache.Store(t.name, gen, kind, q, r)
	}
	if rec != nil {
		rec.ObserveQuery(t.name, kind, q, r, t.Rows(), elapsed, false)
	}
	return r, nil
}

// QueryBatch answers a whole workload under one read-lock acquisition;
// engines with a parallel synopsis fan it across the worker pool. With a
// result cache attached, hits are filled directly and only the misses go
// to the engine (as one smaller batch); every served query is recorded
// with the workload collector.
func (t *Table) QueryBatch(qs []core.BatchQuery) []core.BatchResult {
	return t.QueryBatchCtx(context.Background(), qs)
}

// QueryBatchCtx is QueryBatch with deadline propagation, mirroring
// QueryCtx: deadline-aware engines may mark individual results Degraded;
// degraded results never enter the cache. An already-expired ctx fails
// every query without touching the engine.
func (t *Table) QueryBatchCtx(ctx context.Context, qs []core.BatchQuery) []core.BatchResult {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rec, cache := t.recorder, t.cache
	if rec == nil && cache == nil {
		out, err := engine.QueryBatchCtx(ctx, t.eng, qs)
		if err != nil {
			out = make([]core.BatchResult, len(qs))
			for i := range out {
				out[i].Err = err
			}
		}
		return out
	}
	gen := t.gen.Load()
	out := make([]core.BatchResult, len(qs))
	hit := make([]bool, len(qs))
	misses := make([]int, 0, len(qs))
	for i, q := range qs {
		if cache != nil {
			if r, ok := cache.Lookup(t.name, gen, q.Kind, q.Rect); ok {
				out[i] = core.BatchResult{Result: r}
				hit[i] = true
				continue
			}
		}
		misses = append(misses, i)
	}
	if len(misses) > 0 {
		sub := make([]core.BatchQuery, len(misses))
		for j, i := range misses {
			sub[j] = qs[i]
		}
		res, err := engine.QueryBatchCtx(ctx, t.eng, sub)
		if err != nil {
			for _, i := range misses {
				out[i].Err = err
			}
		} else {
			for j, br := range res {
				i := misses[j]
				out[i] = br
				if br.Err == nil && cache != nil && !br.Result.Degraded {
					cache.Store(t.name, gen, qs[i].Kind, qs[i].Rect, br.Result)
				}
			}
		}
	}
	if rec != nil {
		n := t.Rows()
		for i := range qs {
			if out[i].Err == nil {
				rec.ObserveQuery(t.name, qs[i].Kind, qs[i].Rect, out[i].Result, n, out[i].Elapsed, hit[i])
			}
		}
	}
	return out
}

// GroupBy answers one aggregate per group key, when the engine supports
// grouping (engine.Grouper).
func (t *Table) GroupBy(kind dataset.AggKind, q dataset.Rect, dim int, groups []float64) ([]core.GroupResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	g, ok := engine.Underlying(t.eng).(engine.Grouper)
	if !ok {
		return nil, fmt.Errorf("catalog: engine %s of table %q does not support GROUP BY", t.eng.Name(), t.name)
	}
	return g.GroupBy(kind, q, dim, groups)
}

// SketchQuery answers a sketch-family aggregate (QUANTILE, COUNT
// DISTINCT, TOPK) under the table's read lock, when the engine maintains
// mergeable sketches (engine.Sketcher). Sketch answers bypass the
// adaptive recorder and result cache — both speak core.Result over
// rectangles, and sketch queries have no predicate to key on.
func (t *Table) SketchQuery(q sketch.Query) (sketch.Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sk, ok := engine.Underlying(t.eng).(engine.Sketcher)
	if !ok {
		return sketch.Result{}, fmt.Errorf("catalog: engine %s of table %q does not support %s: %w",
			t.eng.Name(), t.name, q.Kind, sketch.ErrUnavailable)
	}
	r, err := sk.SketchQuery(q)
	if err == nil {
		if rec, isSketch := t.recorder.(SketchRecorder); isSketch {
			rec.ObserveSketch(t.name, q, r, t.gen.Load())
		}
	}
	return r, err
}

// AttachJournal wires a write-ahead journal under the table: every
// subsequent Insert/Delete is logged before the in-memory apply, making
// updates crash-recoverable. Pass nil to detach.
func (t *Table) AttachJournal(j Journal) {
	t.mu.Lock()
	t.journal = j
	t.mu.Unlock()
}

// lockForUpdate acquires the lock an update needs and returns its
// release. The default is the exclusive lock: updates serialise against
// each other and against queries. Engines that synchronise updates
// internally (engine.ConcurrentUpdatable — e.g. a sharded engine with
// per-shard locks) run under the shared lock instead, so an update to one
// shard proceeds concurrently with queries on others — but only while no
// journal is attached: write-ahead logging requires a total order of
// updates, which only the exclusive lock provides. The journal check and
// the lock acquisition are atomic: AttachJournal needs the exclusive
// lock, so a journal cannot appear while a shared-lock update is in
// flight.
func (t *Table) lockForUpdate() func() {
	t.mu.RLock()
	if t.journal == nil {
		if _, ok := engine.Underlying(t.eng).(engine.ConcurrentUpdatable); ok {
			return t.mu.RUnlock
		}
	}
	t.mu.RUnlock()
	t.mu.Lock()
	return t.mu.Unlock
}

// Insert adds one tuple under the table's update lock (see
// lockForUpdate), when the engine is updatable (engine.Updatable). With a
// journal attached the tuple is logged first; a failed in-memory apply
// rolls the log entry back.
func (t *Table) Insert(point []float64, value float64) error {
	defer t.lockForUpdate()()
	// generation discipline: bump before journaling/applying and again
	// after, so cached results can never outlive this write (adaptive.go)
	t.gen.Add(1)
	defer t.gen.Add(1)
	u, ok := engine.Underlying(t.eng).(engine.Updatable)
	if !ok {
		return fmt.Errorf("catalog: engine %s of table %q does not support updates", t.eng.Name(), t.name)
	}
	if t.journal != nil {
		if err := t.journal.Insert(point, value); err != nil {
			return fmt.Errorf("catalog: journal insert into %q: %w", t.name, err)
		}
	}
	if err := u.Insert(point, value); err != nil {
		return t.unjournal(err)
	}
	if t.observer != nil {
		t.observer.ObserveInsert(point, value)
	}
	t.resyncRows(1)
	return nil
}

// Delete removes one tuple under the table's update lock, when the engine
// is updatable. Journaling mirrors Insert.
func (t *Table) Delete(point []float64, value float64) error {
	defer t.lockForUpdate()()
	t.gen.Add(1)
	defer t.gen.Add(1)
	u, ok := engine.Underlying(t.eng).(engine.Updatable)
	if !ok {
		return fmt.Errorf("catalog: engine %s of table %q does not support updates", t.eng.Name(), t.name)
	}
	if t.journal != nil {
		if err := t.journal.Delete(point, value); err != nil {
			return fmt.Errorf("catalog: journal delete from %q: %w", t.name, err)
		}
	}
	if err := u.Delete(point, value); err != nil {
		return t.unjournal(err)
	}
	if t.observer != nil {
		t.observer.ObserveDelete(point, value)
	}
	t.resyncRows(-1)
	return nil
}

// InsertMany adds a batch of tuples under one write-lock acquisition with
// one group-committed journal append (single fsync instead of one per
// row). It returns how many tuples were applied; on a mid-batch engine
// failure the journal is rewound to exactly the applied prefix, so log
// and engine stay in step.
func (t *Table) InsertMany(points [][]float64, values []float64) (int, error) {
	if len(points) != len(values) {
		return 0, fmt.Errorf("catalog: InsertMany got %d points for %d values", len(points), len(values))
	}
	if len(points) == 0 {
		return 0, nil
	}
	defer t.lockForUpdate()()
	t.gen.Add(1)
	defer t.gen.Add(1)
	u, ok := engine.Underlying(t.eng).(engine.Updatable)
	if !ok {
		return 0, fmt.Errorf("catalog: engine %s of table %q does not support updates", t.eng.Name(), t.name)
	}
	if t.journal != nil {
		if err := t.journal.InsertMany(points, values); err != nil {
			return 0, fmt.Errorf("catalog: journal batch insert into %q: %w", t.name, err)
		}
	}
	for i := range points {
		if err := u.Insert(points[i], values[i]); err != nil {
			// rewind the whole group, then re-journal the applied prefix so
			// the log matches the in-memory state exactly
			if t.journal != nil {
				if rerr := t.journal.Rollback(); rerr != nil {
					return i, fmt.Errorf("catalog: apply failed at row %d (%v) and journal rollback failed for %q: %w", i, err, t.name, rerr)
				}
				if i > 0 {
					if rerr := t.journal.InsertMany(points[:i], values[:i]); rerr != nil {
						return i, fmt.Errorf("catalog: apply failed at row %d (%v) and re-journaling the applied prefix failed for %q: %w", i, err, t.name, rerr)
					}
				}
			}
			t.resyncRows(i)
			return i, fmt.Errorf("catalog: insert row %d into %q: %w", i, t.name, err)
		}
		if t.observer != nil {
			t.observer.ObserveInsert(points[i], values[i])
		}
	}
	t.resyncRows(len(points))
	return len(points), nil
}

// unjournal rolls back the last journal append after a failed in-memory
// apply, combining both errors if the rollback itself fails. Callers hold
// the write lock.
func (t *Table) unjournal(applyErr error) error {
	if t.journal == nil {
		return applyErr
	}
	if rerr := t.journal.Rollback(); rerr != nil {
		return fmt.Errorf("catalog: apply failed (%v) and journal rollback failed for %q: %w", applyErr, t.name, rerr)
	}
	return applyErr
}

// resyncRows refreshes the cached cardinality after an update. Callers
// hold the update lock (shared or exclusive). Engines on the shared-lock
// path apply the atomic delta — re-reading Sized.N() there could store a
// snapshot taken before a concurrent update's apply, losing its count;
// the delta is exact for every applied update. Exclusive-lock engines
// that track their own size are authoritative; others get the guarded
// delta.
func (t *Table) resyncRows(delta int) {
	under := engine.Underlying(t.eng)
	if _, ok := under.(engine.ConcurrentUpdatable); ok {
		t.rows.Add(int64(delta))
		return
	}
	if sz, ok := under.(engine.Sized); ok {
		t.rows.Store(int64(sz.N()))
		return
	}
	if int(t.rows.Load())+delta >= 0 {
		t.rows.Add(int64(delta))
	}
}

// Save persists the table's synopsis under the read lock, when the engine
// is serializable (engine.Serializable). Non-serializable engines return
// an error wrapping engine.ErrNotSerializable.
func (t *Table) Save(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := engine.Underlying(t.eng).(engine.Serializable)
	if !ok {
		return fmt.Errorf("catalog: table %q (engine %s): %w", t.name, t.eng.Name(), engine.ErrNotSerializable)
	}
	return s.Save(w)
}

// Checkpoint captures a consistent snapshot of the table under the WRITE
// lock and hands it to flush: because journal appends also run under the
// write lock, no update can slip between the engine serialization and
// whatever flush does with it (write the snapshot, truncate the WAL). This
// is the atomicity anchor of the durable-store checkpoint protocol.
func (t *Table) Checkpoint(flush func(engineName string, schema sqlfe.Schema, payload []byte, rows int) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	under := engine.Underlying(t.eng)
	s, ok := under.(engine.Serializable)
	if !ok {
		return fmt.Errorf("catalog: table %q (engine %s): %w", t.name, t.eng.Name(), engine.ErrNotSerializable)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return fmt.Errorf("catalog: serialize table %q: %w", t.name, err)
	}
	return flush(under.Name(), t.schema, buf.Bytes(), int(t.rows.Load()))
}

// CheckpointShards is the sharded counterpart of Checkpoint: under the
// exclusive lock it serializes every shard of a sharded engine
// (engine.Sharded whose inner engines are engine.Serializable) and hands
// the store the payloads together with the routing topology for the
// manifest. The exclusive lock excludes both journaled updates and the
// shared-lock update path, so the per-shard payloads are a consistent cut
// of the whole table.
func (t *Table) CheckpointShards(flush func(info engine.ShardInfo, innerEngine string, schema sqlfe.Schema, payloads [][]byte, shardRows []int, rows int) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	sh, ok := engine.Underlying(t.eng).(engine.Sharded)
	if !ok {
		return fmt.Errorf("catalog: table %q (engine %s) is not sharded", t.name, t.eng.Name())
	}
	info := sh.ShardInfo()
	payloads := make([][]byte, info.Shards)
	shardRows := make([]int, info.Shards)
	innerName := ""
	for i := 0; i < info.Shards; i++ {
		in := engine.Underlying(sh.Shard(i))
		ser, ok := in.(engine.Serializable)
		if !ok {
			return fmt.Errorf("catalog: table %q shard %d (engine %s): %w", t.name, i, in.Name(), engine.ErrNotSerializable)
		}
		var buf bytes.Buffer
		if err := ser.Save(&buf); err != nil {
			return fmt.Errorf("catalog: serialize shard %d of table %q: %w", i, t.name, err)
		}
		payloads[i] = buf.Bytes()
		if sz, ok := in.(engine.Sized); ok {
			shardRows[i] = sz.N()
		}
		innerName = in.Name()
	}
	return flush(info, innerName, t.schema, payloads, shardRows, int(t.rows.Load()))
}

// ShardStats reports a sharded table's partitioning and per-shard
// cardinalities, or ok=false for unsharded tables.
func (t *Table) ShardStats() (info engine.ShardInfo, shardRows []int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sh, isSharded := engine.Underlying(t.eng).(engine.Sharded)
	if !isSharded {
		return engine.ShardInfo{}, nil, false
	}
	// ShardRows (not Shard(i).N()) — the accessor takes the per-shard
	// locks, so stats never race with shared-lock updates in flight
	return sh.ShardInfo(), sh.ShardRows(), true
}

// ErrExists tags a Register call that lost to an earlier registration of
// the same name — the one catalog failure that genuinely is a conflict,
// so serving layers can map it to 409 and everything else to 5xx.
var ErrExists = errors.New("table already registered")

// Catalog is a named-table registry safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register adds a table under name. Names are case-insensitive and must
// be unique; Drop an existing table to replace it.
func (c *Catalog) Register(name string, e engine.Engine, schema sqlfe.Schema) (*Table, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("catalog: table name must not be empty")
	}
	if e == nil {
		return nil, fmt.Errorf("catalog: table %q needs an engine", name)
	}
	t := &Table{name: name, eng: e, schema: schema}
	if sz, ok := engine.Underlying(e).(engine.Sized); ok {
		t.rows.Store(int64(sz.N()))
	}
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("catalog: table %q: %w", name, ErrExists)
	}
	c.tables[key] = t
	return t, nil
}

// Lookup resolves a table name (case-insensitively). Unknown names return
// an error listing the registered tables, so a typo in a FROM clause is
// diagnosable rather than silently accepted.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[strings.ToLower(name)]
	c.mu.RUnlock()
	if !ok {
		known := c.List()
		names := make([]string, len(known))
		for i, kt := range known {
			names[i] = kt.Name()
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("catalog: unknown table %q (no tables registered)", name)
		}
		return nil, fmt.Errorf("catalog: unknown table %q (have %s)", name, strings.Join(names, ", "))
	}
	return t, nil
}

// Drop removes a table by name.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: unknown table %q", name)
	}
	delete(c.tables, key)
	return nil
}

// List returns the registered tables in deterministic order: sorted
// case-insensitively (names are case-insensitive everywhere else in the
// catalog), so listings and unknown-table error messages are stable
// across runs regardless of registration order or name casing.
func (c *Catalog) List() []*Table {
	c.mu.RLock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i].name) < strings.ToLower(out[j].name)
	})
	return out
}
