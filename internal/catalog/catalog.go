// Package catalog is the multi-table registry between the SQL frontend
// and the engine layer: a concurrency-safe map from table names to a
// serving engine plus the schema (column names and dictionaries) that SQL
// statements resolve against.
//
// Concurrency model: the catalog itself is guarded by one RWMutex for
// registration lookups, and every table carries its own RWMutex. Queries
// — single or batched — take the table's read lock, so any number of them
// run concurrently and a batched workload still fans out across the
// worker pool inside the engine; Insert/Delete take the write lock, so
// updates serialise against each other and against in-flight queries
// without blocking other tables.
package catalog

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sqlfe"
)

// Table is one registered table: an engine, its schema, and the lock that
// orders queries and updates.
type Table struct {
	name   string
	mu     sync.RWMutex
	eng    engine.Engine
	schema sqlfe.Schema
	rows   int
}

// Name returns the registered table name.
func (t *Table) Name() string { return t.name }

// Schema returns the SQL-resolution schema. The returned value is shared
// and must be treated as read-only.
func (t *Table) Schema() sqlfe.Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.schema
}

// EngineName reports the serving engine's display name.
func (t *Table) EngineName() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.eng.Name()
}

// MemoryBytes reports the serving engine's synopsis footprint.
func (t *Table) MemoryBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.eng.MemoryBytes()
}

// Rows reports the base-table cardinality the engine was built over, or 0
// when the engine does not expose it.
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Query answers one aggregate under the table's read lock.
func (t *Table) Query(kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.eng.Query(kind, q)
}

// QueryBatch answers a whole workload under one read-lock acquisition;
// engines with a parallel synopsis fan it across the worker pool.
func (t *Table) QueryBatch(qs []core.BatchQuery) []core.BatchResult {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.eng.QueryBatch(qs)
}

// GroupBy answers one aggregate per group key, when the engine supports
// grouping (engine.Grouper).
func (t *Table) GroupBy(kind dataset.AggKind, q dataset.Rect, dim int, groups []float64) ([]core.GroupResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	g, ok := engine.Underlying(t.eng).(engine.Grouper)
	if !ok {
		return nil, fmt.Errorf("catalog: engine %s of table %q does not support GROUP BY", t.eng.Name(), t.name)
	}
	return g.GroupBy(kind, q, dim, groups)
}

// Insert adds one tuple under the table's write lock, when the engine is
// updatable (engine.Updatable).
func (t *Table) Insert(point []float64, value float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	u, ok := engine.Underlying(t.eng).(engine.Updatable)
	if !ok {
		return fmt.Errorf("catalog: engine %s of table %q does not support updates", t.eng.Name(), t.name)
	}
	if err := u.Insert(point, value); err != nil {
		return err
	}
	t.resyncRows(1)
	return nil
}

// Delete removes one tuple under the table's write lock, when the engine
// is updatable.
func (t *Table) Delete(point []float64, value float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	u, ok := engine.Underlying(t.eng).(engine.Updatable)
	if !ok {
		return fmt.Errorf("catalog: engine %s of table %q does not support updates", t.eng.Name(), t.name)
	}
	if err := u.Delete(point, value); err != nil {
		return err
	}
	t.resyncRows(-1)
	return nil
}

// resyncRows refreshes the cached cardinality after an update: engines
// that track their own size are authoritative, others get the delta.
// Callers hold the write lock.
func (t *Table) resyncRows(delta int) {
	if sz, ok := engine.Underlying(t.eng).(engine.Sized); ok {
		t.rows = sz.N()
		return
	}
	if t.rows+delta >= 0 {
		t.rows += delta
	}
}

// Save persists the table's synopsis under the read lock, when the engine
// is serializable (engine.Serializable).
func (t *Table) Save(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := engine.Underlying(t.eng).(engine.Serializable)
	if !ok {
		return fmt.Errorf("catalog: engine %s of table %q does not support serialization", t.eng.Name(), t.name)
	}
	return s.Save(w)
}

// Catalog is a named-table registry safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register adds a table under name. Names are case-insensitive and must
// be unique; Drop an existing table to replace it.
func (c *Catalog) Register(name string, e engine.Engine, schema sqlfe.Schema) (*Table, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("catalog: table name must not be empty")
	}
	if e == nil {
		return nil, fmt.Errorf("catalog: table %q needs an engine", name)
	}
	t := &Table{name: name, eng: e, schema: schema}
	if sz, ok := engine.Underlying(e).(engine.Sized); ok {
		t.rows = sz.N()
	}
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("catalog: table %q is already registered", name)
	}
	c.tables[key] = t
	return t, nil
}

// Lookup resolves a table name (case-insensitively). Unknown names return
// an error listing the registered tables, so a typo in a FROM clause is
// diagnosable rather than silently accepted.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[strings.ToLower(name)]
	c.mu.RUnlock()
	if !ok {
		known := c.List()
		names := make([]string, len(known))
		for i, kt := range known {
			names[i] = kt.Name()
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("catalog: unknown table %q (no tables registered)", name)
		}
		return nil, fmt.Errorf("catalog: unknown table %q (have %s)", name, strings.Join(names, ", "))
	}
	return t, nil
}

// Drop removes a table by name.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: unknown table %q", name)
	}
	delete(c.tables, key)
	return nil
}

// List returns the registered tables sorted by name.
func (c *Catalog) List() []*Table {
	c.mu.RLock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
