package catalog

// Workload-adaptive serving hooks: the catalog is where queries and
// updates meet the per-table lock, so it is the one place that can feed a
// workload collector, consult a result cache, and hot-swap an engine with
// airtight ordering against concurrent traffic. The hooks are interfaces
// defined here and implemented by internal/adaptive, keeping the catalog
// free of adaptive imports (mirroring the Journal/store split).
//
// # Generation discipline
//
// Every table carries a monotonically increasing generation counter.
// Updates bump it twice — once before journaling/applying, once after —
// and queries read it under the same lock they execute under. A cached
// result is keyed by the generation its query executed at, and lookups
// key by the current generation, so:
//
//   - after any completed update, lookups use a generation strictly
//     greater than anything cached before or during the update — stale
//     answers are unreachable by construction, with no invalidation scan;
//   - while an update is in flight on the shared-lock path (internally
//     synchronised engines), the first bump has already moved the
//     generation, so results computed concurrently with the update can
//     be stored but never served once the update completes (the second
//     bump moves past them too).
//
// On the default exclusive-lock update path the double bump is merely
// redundant; on the shared-lock path it is what makes "a cached answer
// never survives a write it does not reflect" a structural guarantee
// rather than a timing assumption.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sketch"
)

// QueryRecorder receives one observation per served scalar query — both
// engine-executed and cache-served — with the result as returned to the
// client. Implemented by adaptive.Collector. Calls are made while the
// table's read lock is held and must not call back into the table.
type QueryRecorder interface {
	ObserveQuery(table string, kind dataset.AggKind, q dataset.Rect, r core.Result, n int, elapsed time.Duration, cacheHit bool)
}

// SketchRecorder is the optional sketch-family extension of
// QueryRecorder: recorders that also implement it receive one
// observation per served sketch query (QUANTILE, COUNT DISTINCT, TOPK),
// stamped with the generation it executed at. Calls are made while the
// table's read lock is held and must not call back into the table.
type SketchRecorder interface {
	ObserveSketch(table string, q sketch.Query, r sketch.Result, gen uint64)
}

// ResultCache answers repeated scalar queries without touching the
// engine. Implemented by adaptive.Cache. Lookup and Store are called
// under the table's read lock with the generation the query executes at;
// the implementation must be safe for concurrent use.
type ResultCache interface {
	Lookup(table string, gen uint64, kind dataset.AggKind, q dataset.Rect) (core.Result, bool)
	Store(table string, gen uint64, kind dataset.AggKind, q dataset.Rect, r core.Result)
	Forget(table string)
}

// UpdateObserver is notified of every applied update, under the table's
// update lock, after the engine apply succeeds. The serving layer uses it
// to keep a retained base-data copy in lockstep with the engine, so a
// workload-driven rebuild starts from exactly the rows the engine holds.
type UpdateObserver interface {
	ObserveInsert(point []float64, value float64)
	ObserveDelete(point []float64, value float64)
}

// Gen returns the table's current update generation. It increases by two
// per completed update (and engine swap); an odd reading means an update
// is in flight on the shared-lock path.
func (t *Table) Gen() uint64 { return t.gen.Load() }

// AttachAdaptive wires a workload recorder and/or result cache under the
// table. Either may be nil; pass both nil to detach.
func (t *Table) AttachAdaptive(rec QueryRecorder, cache ResultCache) {
	t.mu.Lock()
	t.recorder = rec
	t.cache = cache
	t.mu.Unlock()
}

// AttachObserver wires an update observer under the table (nil detaches).
func (t *Table) AttachObserver(o UpdateObserver) {
	t.mu.Lock()
	t.observer = o
	t.mu.Unlock()
}

// scatterCounter is the optional instrumentation surface of scatter-
// gather engines (satisfied by *shard.Engine): per-shard executed-query
// counts and the pruned-pair total.
type scatterCounter interface {
	ScatterCounts() []int64
	PrunedCount() int64
}

// ScatterStats reports a sharded table's scatter-path instrumentation —
// how many queries each shard executed and how many (query, shard) pairs
// pruning skipped — or ok=false when the engine does not expose it.
func (t *Table) ScatterStats() (scattered []int64, pruned int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sc, isCounter := engine.Underlying(t.eng).(scatterCounter)
	if !isCounter {
		return nil, 0, false
	}
	return sc.ScatterCounts(), sc.PrunedCount(), true
}

// streamCounter is the streaming-merge instrumentation surface of
// scatter-gather engines (satisfied by *shard.Engine): how many per-shard
// partial results were folded into answers as they arrived instead of
// being materialized first.
type streamCounter interface{ StreamedCount() int64 }

// StreamStats reports how many shard partials the table's engine folded
// in streaming fashion, or ok=false when the engine does not expose it.
func (t *Table) StreamStats() (streamed int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sc, isCounter := engine.Underlying(t.eng).(streamCounter)
	if !isCounter {
		return 0, false
	}
	return sc.StreamedCount(), true
}

// SwapEngine replaces the table's serving engine under the exclusive
// lock: prep receives the engine being replaced and returns its
// successor (typically a freshly rebuilt synopsis, plus any delta
// updates applied inside prep — no update can interleave, the lock is
// held). The generation is bumped on both sides of the swap, so cached
// results for the old engine become unreachable, and the plan generation
// is bumped so cached prepared statements recompile against the new
// engine. The schema is retained; the row count resyncs from the new
// engine.
func (t *Table) SwapEngine(prep func(old engine.Engine) (engine.Engine, error)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen.Add(1)
	defer t.gen.Add(1)
	t.planGen.Add(1)
	e, err := prep(t.eng)
	if err != nil {
		return fmt.Errorf("catalog: swap engine of table %q: %w", t.name, err)
	}
	if e == nil {
		return fmt.Errorf("catalog: swap engine of table %q: prep returned nil", t.name)
	}
	t.eng = e
	if sz, ok := engine.Underlying(e).(engine.Sized); ok {
		t.rows.Store(int64(sz.N()))
	}
	return nil
}
