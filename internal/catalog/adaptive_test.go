package catalog

import (
	"sync"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sqlfe"
)

func buildTestSynopsis(t *testing.T, n int) *core.Synopsis {
	t.Helper()
	d := dataset.New("t", 1)
	for i := 0; i < n; i++ {
		d.Append([]float64{float64(i)}, float64(i%10))
	}
	s, err := core.Build(d, core.Options{Partitions: 16, SampleRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func registerAdaptiveTable(t *testing.T, n int) (*Table, *adaptive.Collector, *adaptive.Cache) {
	t.Helper()
	cat := New()
	tbl, err := cat.Register("t", buildTestSynopsis(t, n), sqlfe.SchemaFromColNames([]string{"x", "v"}))
	if err != nil {
		t.Fatal(err)
	}
	col := adaptive.NewCollector(256)
	cache := adaptive.NewCache(1 << 20)
	tbl.AttachAdaptive(col, cache)
	return tbl, col, cache
}

func TestTableCacheHitAndRecord(t *testing.T) {
	tbl, col, cache := registerAdaptiveTable(t, 1000)
	q := dataset.Rect1(100, 500)

	r1, err := tbl.Query(dataset.Sum, q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tbl.Query(dataset.Sum, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Estimate != r2.Estimate || r1.CIHalf != r2.CIHalf {
		t.Fatalf("cached result differs: %+v vs %+v", r1, r2)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
	cs, ok := col.Stats("t")
	if !ok || cs.Window != 2 {
		t.Fatalf("collector stats = %+v ok=%v, want 2 observations", cs, ok)
	}
	if cs.CacheHitFrac != 0.5 {
		t.Fatalf("cache hit frac = %v, want 0.5", cs.CacheHitFrac)
	}
}

func TestTableCacheInvalidatedByWrite(t *testing.T) {
	tbl, _, _ := registerAdaptiveTable(t, 1000)
	q := dataset.Rect1(-1, 2000) // full range: COUNT is exact

	before, err := tbl.Query(dataset.Count, q)
	if err != nil {
		t.Fatal(err)
	}
	if before.Estimate != 1000 {
		t.Fatalf("count = %v, want 1000", before.Estimate)
	}
	gen := tbl.Gen()
	if err := tbl.Insert([]float64{500}, 1); err != nil {
		t.Fatal(err)
	}
	if tbl.Gen() != gen+2 {
		t.Fatalf("generation advanced by %d, want 2", tbl.Gen()-gen)
	}
	after, err := tbl.Query(dataset.Count, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Estimate != 1001 {
		t.Fatalf("post-insert count = %v, want 1001 (stale cache served?)", after.Estimate)
	}
}

func TestTableBatchUsesCache(t *testing.T) {
	tbl, _, cache := registerAdaptiveTable(t, 1000)
	qs := []core.BatchQuery{
		{Kind: dataset.Sum, Rect: dataset.Rect1(0, 100)},
		{Kind: dataset.Count, Rect: dataset.Rect1(200, 300)},
		{Kind: dataset.Sum, Rect: dataset.Rect1(0, 100)}, // repeat of #0
	}
	out := tbl.QueryBatch(qs)
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("query %d: %v", i, br.Err)
		}
	}
	if out[0].Result.Estimate != out[2].Result.Estimate {
		t.Fatalf("repeat in one batch answered differently: %v vs %v",
			out[0].Result.Estimate, out[2].Result.Estimate)
	}
	// the repeated batch is served entirely from cache
	st0 := cache.Stats()
	out2 := tbl.QueryBatch(qs)
	st1 := cache.Stats()
	if st1.Hits-st0.Hits != 3 {
		t.Fatalf("second batch hits = %d, want 3", st1.Hits-st0.Hits)
	}
	for i := range out {
		if out[i].Result.Estimate != out2[i].Result.Estimate {
			t.Fatalf("batch replay differs at %d", i)
		}
	}
}

// TestCacheInvalidationRace is the catalog-level stale-read hunt: one
// writer streams inserts into the queried range while readers hammer the
// same cached COUNT. Counts observed by any single reader must never
// decrease (a decrease means a cached pre-insert answer was served after
// the insert), and the final drained answer must be exact. Run under
// -race this also exercises every lock/generation interleaving.
func TestCacheInvalidationRace(t *testing.T) {
	tbl, _, _ := registerAdaptiveTable(t, 2000)
	q := dataset.Rect1(-1, 1e9)

	const inserts = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := tbl.Query(dataset.Count, q)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if r.Estimate < last {
					t.Errorf("stale cached count: %v after having seen %v", r.Estimate, last)
					return
				}
				last = r.Estimate
			}
		}()
	}
	for i := 0; i < inserts; i++ {
		if err := tbl.Insert([]float64{float64(i)}, 1); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	r, err := tbl.Query(dataset.Count, q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Estimate != 2000+inserts {
		t.Fatalf("final count = %v, want %d", r.Estimate, 2000+inserts)
	}
}

// countingObserver records the updates the catalog reports, for the
// observer and swap tests.
type countingObserver struct {
	mu      sync.Mutex
	inserts [][]float64
	deletes int
}

func (o *countingObserver) ObserveInsert(p []float64, v float64) {
	o.mu.Lock()
	o.inserts = append(o.inserts, append([]float64(nil), p...))
	o.mu.Unlock()
}

func (o *countingObserver) ObserveDelete(p []float64, v float64) {
	o.mu.Lock()
	o.deletes++
	o.mu.Unlock()
}

func TestObserverTracksUpdates(t *testing.T) {
	cat := New()
	tbl, err := cat.Register("t", buildTestSynopsis(t, 100), sqlfe.SchemaFromColNames([]string{"x", "v"}))
	if err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	tbl.AttachObserver(obs)
	if err := tbl.Insert([]float64{5}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.InsertMany([][]float64{{6}, {7}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete([]float64{5}, 1); err != nil {
		t.Fatal(err)
	}
	if len(obs.inserts) != 3 || obs.deletes != 1 {
		t.Fatalf("observer saw %d inserts / %d deletes, want 3/1", len(obs.inserts), obs.deletes)
	}
}

func TestSwapEngine(t *testing.T) {
	tbl, _, _ := registerAdaptiveTable(t, 1000)
	q := dataset.Rect1(-1, 1e9)
	if _, err := tbl.Query(dataset.Count, q); err != nil {
		t.Fatal(err)
	}
	gen := tbl.Gen()
	bigger := buildTestSynopsis(t, 1500)
	err := tbl.SwapEngine(func(old engine.Engine) (engine.Engine, error) {
		if old == nil {
			t.Error("prep received nil old engine")
		}
		return bigger, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Gen() != gen+2 {
		t.Fatalf("swap advanced generation by %d, want 2", tbl.Gen()-gen)
	}
	if tbl.Rows() != 1500 {
		t.Fatalf("rows = %d, want resynced 1500", tbl.Rows())
	}
	r, err := tbl.Query(dataset.Count, q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Estimate != 1500 {
		t.Fatalf("post-swap count = %v, want 1500 (cached pre-swap answer served?)", r.Estimate)
	}
	// a failing prep leaves the old engine serving
	if err := tbl.SwapEngine(func(engine.Engine) (engine.Engine, error) {
		return nil, nil
	}); err == nil {
		t.Fatal("nil successor must be an error")
	}
	if tbl.Rows() != 1500 {
		t.Fatal("failed swap must leave the table untouched")
	}
}
