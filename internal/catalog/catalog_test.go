package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sqlfe"
)

func buildPass(t *testing.T, n int) (*dataset.Dataset, *core.Synopsis) {
	t.Helper()
	d := dataset.GenIntelWireless(n, 1)
	s, err := core.Build(d, core.Options{Partitions: 16, SampleSize: 200, Kind: dataset.Sum, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d, s
}

func TestRegisterLookupDropList(t *testing.T) {
	_, s := buildPass(t, 2000)
	c := New()
	tbl, err := c.Register("Sensors", s, sqlfe.SchemaFromColNames([]string{"time", "light"}))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if tbl.Rows() != 2000 {
		t.Errorf("Rows = %d, want 2000", tbl.Rows())
	}
	if tbl.EngineName() != "PASS" {
		t.Errorf("EngineName = %q", tbl.EngineName())
	}
	if tbl.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes = %d", tbl.MemoryBytes())
	}

	// case-insensitive lookup
	got, err := c.Lookup("sensors")
	if err != nil || got != tbl {
		t.Fatalf("Lookup(sensors) = %v, %v", got, err)
	}

	// duplicate registration rejected
	if _, err := c.Register("SENSORS", s, sqlfe.Schema{}); err == nil {
		t.Error("duplicate Register should fail")
	}
	// empty name rejected
	if _, err := c.Register("  ", s, sqlfe.Schema{}); err == nil {
		t.Error("empty-name Register should fail")
	}

	// unknown lookup names the known tables
	if _, err := c.Lookup("nope"); err == nil || !strings.Contains(err.Error(), "Sensors") {
		t.Errorf("Lookup(nope) error = %v, want it to list known tables", err)
	}

	if names := c.List(); len(names) != 1 || names[0].Name() != "Sensors" {
		t.Errorf("List = %v", names)
	}
	if err := c.Drop("sensors"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if err := c.Drop("sensors"); err == nil {
		t.Error("double Drop should fail")
	}
	if _, err := c.Lookup("sensors"); err == nil || !strings.Contains(err.Error(), "no tables registered") {
		t.Errorf("Lookup after drop = %v", err)
	}
}

func TestTableQueryAndBatchMatch(t *testing.T) {
	d, s := buildPass(t, 3000)
	c := New()
	tbl, err := c.Register("t", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	qs := []core.BatchQuery{
		{Kind: dataset.Sum, Rect: dataset.Rect1(5, 15)},
		{Kind: dataset.Avg, Rect: dataset.Rect1(0, 10)},
		{Kind: dataset.Count, Rect: dataset.Rect1(2, 20)},
	}
	batch := tbl.QueryBatch(qs)
	for i, q := range qs {
		seq, err := tbl.Query(q.Kind, q.Rect)
		if err != nil {
			t.Fatalf("Query %d: %v", i, err)
		}
		if batch[i].Err != nil {
			t.Fatalf("batch %d: %v", i, batch[i].Err)
		}
		if seq.Estimate != batch[i].Result.Estimate || seq.CIHalf != batch[i].Result.CIHalf {
			t.Errorf("query %d: batch (%v ± %v) != sequential (%v ± %v)",
				i, batch[i].Result.Estimate, batch[i].Result.CIHalf, seq.Estimate, seq.CIHalf)
		}
	}
}

func TestCapabilitiesByEngine(t *testing.T) {
	d, s := buildPass(t, 1500)
	c := New()
	passT, err := c.Register("p", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	usT, err := c.Register("u", baselines.NewUniform(d, 100, 0, 7), sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}

	// PASS is updatable and serializable; US is serializable but not
	// updatable.
	before := passT.Rows()
	if err := passT.Insert([]float64{10}, 3.5); err != nil {
		t.Fatalf("PASS Insert: %v", err)
	}
	if passT.Rows() != before+1 {
		t.Errorf("Rows after insert = %d, want %d", passT.Rows(), before+1)
	}
	if err := passT.Delete([]float64{10}, 3.5); err != nil {
		t.Fatalf("PASS Delete: %v", err)
	}
	var buf bytes.Buffer
	if err := passT.Save(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("PASS Save: %v (%d bytes)", err, buf.Len())
	}

	if err := usT.Insert([]float64{1}, 1); err == nil {
		t.Error("US Insert should report the missing capability")
	}
	var usBuf bytes.Buffer
	if err := usT.Save(&usBuf); err != nil || usBuf.Len() == 0 {
		t.Errorf("US Save: %v (%d bytes)", err, usBuf.Len())
	}
	// US tracks its population size (engine.Sized).
	if usT.Rows() != 1500 {
		t.Errorf("US Rows = %d, want 1500", usT.Rows())
	}

	// PASS groups; US does not.
	if _, err := passT.GroupBy(dataset.Sum, dataset.Rect1(0, 25), 0, []float64{1, 2}); err != nil {
		t.Errorf("PASS GroupBy: %v", err)
	}
	if _, err := usT.GroupBy(dataset.Sum, dataset.Rect1(0, 25), 0, []float64{1}); err == nil {
		t.Error("US GroupBy should report the missing capability")
	}
}

// TestConcurrentQueriesAndUpdates exercises the per-table RWMutex: batched
// queries fan out concurrently while inserts serialise, with the race
// detector watching in CI.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	d, s := buildPass(t, 2000)
	c := New()
	tbl, err := c.Register("t", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	qs := []core.BatchQuery{
		{Kind: dataset.Sum, Rect: dataset.Rect1(5, 15)},
		{Kind: dataset.Count, Rect: dataset.Rect1(0, 20)},
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, br := range tbl.QueryBatch(qs) {
					if br.Err != nil {
						t.Errorf("batch query: %v", br.Err)
						return
					}
				}
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := tbl.Insert([]float64{float64(g + i)}, 1.0); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tbl.Rows() != 2000+4*20 {
		t.Errorf("Rows = %d, want %d", tbl.Rows(), 2000+4*20)
	}
}

// recordingJournal captures journal calls and can be told to fail, for
// asserting the write-ahead ordering contract.
type recordingJournal struct {
	log        []string
	failAppend bool
}

func (j *recordingJournal) Insert(point []float64, value float64) error {
	if j.failAppend {
		return fmt.Errorf("journal: disk full")
	}
	j.log = append(j.log, "insert")
	return nil
}

func (j *recordingJournal) Delete(point []float64, value float64) error {
	if j.failAppend {
		return fmt.Errorf("journal: disk full")
	}
	j.log = append(j.log, "delete")
	return nil
}

func (j *recordingJournal) InsertMany(points [][]float64, values []float64) error {
	if j.failAppend {
		return fmt.Errorf("journal: disk full")
	}
	j.log = append(j.log, fmt.Sprintf("insertmany(%d)", len(points)))
	return nil
}

func (j *recordingJournal) Rollback() error {
	j.log = append(j.log, "rollback")
	return nil
}

// failingEngine wraps an updatable engine and rejects every update, to
// exercise the apply-failure rollback path.
type failingEngine struct {
	engine.Engine
}

func (f failingEngine) Insert(point []float64, value float64) error {
	return fmt.Errorf("engine: apply refused")
}

func (f failingEngine) Delete(point []float64, value float64) error {
	return fmt.Errorf("engine: apply refused")
}

func TestJournalWriteAheadOrdering(t *testing.T) {
	d, s := buildPass(t, 800)
	c := New()
	tbl, err := c.Register("t", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	j := &recordingJournal{}
	tbl.AttachJournal(j)

	if err := tbl.Insert([]float64{3}, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete([]float64{3}, 1.5); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(j.log, ","); got != "insert,delete" {
		t.Errorf("journal log = %q, want insert,delete", got)
	}

	// a failed journal append blocks the in-memory apply entirely
	j.failAppend = true
	rows := tbl.Rows()
	if err := tbl.Insert([]float64{4}, 2); err == nil {
		t.Error("insert succeeded although the journal failed")
	}
	if tbl.Rows() != rows {
		t.Errorf("Rows changed to %d after a refused insert", tbl.Rows())
	}

	// updates to a non-updatable engine must not be journaled at all
	j.failAppend = false
	j.log = nil
	usT, err := c.Register("u", baselines.NewUniform(d, 50, 0, 3), sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	usT.AttachJournal(j)
	if err := usT.Insert([]float64{1}, 1); err == nil {
		t.Error("US insert should fail (no capability)")
	}
	if len(j.log) != 0 {
		t.Errorf("journal received %v for a non-updatable engine", j.log)
	}
}

func TestJournalRollbackOnApplyFailure(t *testing.T) {
	d, s := buildPass(t, 800)
	c := New()
	tbl, err := c.Register("t", failingEngine{Engine: s}, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	j := &recordingJournal{}
	tbl.AttachJournal(j)
	if err := tbl.Insert([]float64{3}, 1.5); err == nil {
		t.Fatal("insert succeeded although the engine refused the apply")
	}
	if got := strings.Join(j.log, ","); got != "insert,rollback" {
		t.Errorf("journal log = %q, want insert,rollback", got)
	}
}

func TestCheckpointNotSerializable(t *testing.T) {
	d, _ := buildPass(t, 600)
	c := New()
	usEng := baselines.NewUniform(d, 50, 0, 3)
	// strip the capability by wrapping in a bare engine view
	tbl, err := c.Register("u", queryOnly{usEng}, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	err = tbl.Checkpoint(func(string, sqlfe.Schema, []byte, int) error { return nil })
	if !errors.Is(err, engine.ErrNotSerializable) {
		t.Errorf("Checkpoint error = %v, want ErrNotSerializable", err)
	}
	var buf bytes.Buffer
	if err := tbl.Save(&buf); !errors.Is(err, engine.ErrNotSerializable) {
		t.Errorf("Save error = %v, want ErrNotSerializable", err)
	}
}

func TestCheckpointFlushSeesConsistentState(t *testing.T) {
	d, s := buildPass(t, 900)
	c := New()
	tbl, err := c.Register("t", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	var gotEngine string
	var gotRows int
	var payload []byte
	err = tbl.Checkpoint(func(engineName string, schema sqlfe.Schema, p []byte, rows int) error {
		gotEngine, gotRows, payload = engineName, rows, p
		if schema.AggColumn == "" {
			t.Error("flush saw an empty schema")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotEngine != "PASS" || gotRows != 900 || len(payload) == 0 {
		t.Errorf("flush saw engine=%q rows=%d payload=%d bytes", gotEngine, gotRows, len(payload))
	}
	if _, err := core.Load(bytes.NewReader(payload)); err != nil {
		t.Errorf("flushed payload does not load: %v", err)
	}
}

// queryOnly hides every optional capability of an engine.
type queryOnly struct {
	engine.Engine
}

// pickyEngine applies inserts until a poisoned value arrives, to exercise
// InsertMany's mid-batch failure handling.
type pickyEngine struct {
	engine.Engine
	applied int
}

func (p *pickyEngine) Insert(point []float64, value float64) error {
	if value == 999 {
		return fmt.Errorf("engine: poisoned value")
	}
	p.applied++
	return nil
}

func (p *pickyEngine) Delete(point []float64, value float64) error { return nil }

func TestInsertManyGroupCommitAndPartialFailure(t *testing.T) {
	d, s := buildPass(t, 600)
	c := New()
	tbl, err := c.Register("t", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	j := &recordingJournal{}
	tbl.AttachJournal(j)

	points := [][]float64{{1}, {2}, {3}}
	values := []float64{10, 20, 30}
	n, err := tbl.InsertMany(points, values)
	if err != nil || n != 3 {
		t.Fatalf("InsertMany = %d, %v", n, err)
	}
	if got := strings.Join(j.log, ","); got != "insertmany(3)" {
		t.Errorf("journal log = %q, want one group commit", got)
	}

	// mid-batch apply failure: the journal must be rewound to exactly the
	// applied prefix
	picky := &pickyEngine{Engine: s}
	tbl2, err := c.Register("t2", picky, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	j2 := &recordingJournal{}
	tbl2.AttachJournal(j2)
	n, err = tbl2.InsertMany([][]float64{{1}, {2}, {3}}, []float64{10, 999, 30})
	if err == nil {
		t.Fatal("poisoned batch succeeded")
	}
	if n != 1 || picky.applied != 1 {
		t.Errorf("applied = %d (engine saw %d), want 1", n, picky.applied)
	}
	if got := strings.Join(j2.log, ","); got != "insertmany(3),rollback,insertmany(1)" {
		t.Errorf("journal log = %q, want group, rollback, re-journal of applied prefix", got)
	}

	// length mismatch is rejected before touching anything
	if _, err := tbl.InsertMany([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched batch accepted")
	}
}
