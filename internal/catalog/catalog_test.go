package catalog

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sqlfe"
)

func buildPass(t *testing.T, n int) (*dataset.Dataset, *core.Synopsis) {
	t.Helper()
	d := dataset.GenIntelWireless(n, 1)
	s, err := core.Build(d, core.Options{Partitions: 16, SampleSize: 200, Kind: dataset.Sum, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d, s
}

func TestRegisterLookupDropList(t *testing.T) {
	_, s := buildPass(t, 2000)
	c := New()
	tbl, err := c.Register("Sensors", s, sqlfe.SchemaFromColNames([]string{"time", "light"}))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if tbl.Rows() != 2000 {
		t.Errorf("Rows = %d, want 2000", tbl.Rows())
	}
	if tbl.EngineName() != "PASS" {
		t.Errorf("EngineName = %q", tbl.EngineName())
	}
	if tbl.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes = %d", tbl.MemoryBytes())
	}

	// case-insensitive lookup
	got, err := c.Lookup("sensors")
	if err != nil || got != tbl {
		t.Fatalf("Lookup(sensors) = %v, %v", got, err)
	}

	// duplicate registration rejected
	if _, err := c.Register("SENSORS", s, sqlfe.Schema{}); err == nil {
		t.Error("duplicate Register should fail")
	}
	// empty name rejected
	if _, err := c.Register("  ", s, sqlfe.Schema{}); err == nil {
		t.Error("empty-name Register should fail")
	}

	// unknown lookup names the known tables
	if _, err := c.Lookup("nope"); err == nil || !strings.Contains(err.Error(), "Sensors") {
		t.Errorf("Lookup(nope) error = %v, want it to list known tables", err)
	}

	if names := c.List(); len(names) != 1 || names[0].Name() != "Sensors" {
		t.Errorf("List = %v", names)
	}
	if err := c.Drop("sensors"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if err := c.Drop("sensors"); err == nil {
		t.Error("double Drop should fail")
	}
	if _, err := c.Lookup("sensors"); err == nil || !strings.Contains(err.Error(), "no tables registered") {
		t.Errorf("Lookup after drop = %v", err)
	}
}

func TestTableQueryAndBatchMatch(t *testing.T) {
	d, s := buildPass(t, 3000)
	c := New()
	tbl, err := c.Register("t", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	qs := []core.BatchQuery{
		{Kind: dataset.Sum, Rect: dataset.Rect1(5, 15)},
		{Kind: dataset.Avg, Rect: dataset.Rect1(0, 10)},
		{Kind: dataset.Count, Rect: dataset.Rect1(2, 20)},
	}
	batch := tbl.QueryBatch(qs)
	for i, q := range qs {
		seq, err := tbl.Query(q.Kind, q.Rect)
		if err != nil {
			t.Fatalf("Query %d: %v", i, err)
		}
		if batch[i].Err != nil {
			t.Fatalf("batch %d: %v", i, batch[i].Err)
		}
		if seq.Estimate != batch[i].Result.Estimate || seq.CIHalf != batch[i].Result.CIHalf {
			t.Errorf("query %d: batch (%v ± %v) != sequential (%v ± %v)",
				i, batch[i].Result.Estimate, batch[i].Result.CIHalf, seq.Estimate, seq.CIHalf)
		}
	}
}

func TestCapabilitiesByEngine(t *testing.T) {
	d, s := buildPass(t, 1500)
	c := New()
	passT, err := c.Register("p", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	usT, err := c.Register("u", baselines.NewUniform(d, 100, 0, 7), sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}

	// PASS is updatable and serializable; US is neither.
	before := passT.Rows()
	if err := passT.Insert([]float64{10}, 3.5); err != nil {
		t.Fatalf("PASS Insert: %v", err)
	}
	if passT.Rows() != before+1 {
		t.Errorf("Rows after insert = %d, want %d", passT.Rows(), before+1)
	}
	if err := passT.Delete([]float64{10}, 3.5); err != nil {
		t.Fatalf("PASS Delete: %v", err)
	}
	var buf bytes.Buffer
	if err := passT.Save(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("PASS Save: %v (%d bytes)", err, buf.Len())
	}

	if err := usT.Insert([]float64{1}, 1); err == nil {
		t.Error("US Insert should report the missing capability")
	}
	if err := usT.Save(&buf); err == nil {
		t.Error("US Save should report the missing capability")
	}
	// US has no row-count capability: Rows falls back to 0.
	if usT.Rows() != 0 {
		t.Errorf("US Rows = %d, want 0", usT.Rows())
	}

	// PASS groups; US does not.
	if _, err := passT.GroupBy(dataset.Sum, dataset.Rect1(0, 25), 0, []float64{1, 2}); err != nil {
		t.Errorf("PASS GroupBy: %v", err)
	}
	if _, err := usT.GroupBy(dataset.Sum, dataset.Rect1(0, 25), 0, []float64{1}); err == nil {
		t.Error("US GroupBy should report the missing capability")
	}
}

// TestConcurrentQueriesAndUpdates exercises the per-table RWMutex: batched
// queries fan out concurrently while inserts serialise, with the race
// detector watching in CI.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	d, s := buildPass(t, 2000)
	c := New()
	tbl, err := c.Register("t", s, sqlfe.SchemaFromColNames(d.ColNames))
	if err != nil {
		t.Fatal(err)
	}
	qs := []core.BatchQuery{
		{Kind: dataset.Sum, Rect: dataset.Rect1(5, 15)},
		{Kind: dataset.Count, Rect: dataset.Rect1(0, 20)},
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, br := range tbl.QueryBatch(qs) {
					if br.Err != nil {
						t.Errorf("batch query: %v", br.Err)
						return
					}
				}
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := tbl.Insert([]float64{float64(g + i)}, 1.0); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tbl.Rows() != 2000+4*20 {
		t.Errorf("Rows = %d, want %d", tbl.Rows(), 2000+4*20)
	}
}
