package catalog

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/sqlfe"
)

func buildSharded(t *testing.T, n, shards int) *shard.Engine {
	t.Helper()
	d := dataset.GenIntelWireless(n, 3)
	e, err := shard.Build(d, shard.Range, 0, shards, func(i int, sd *dataset.Dataset) (engine.Engine, error) {
		return core.Build(sd, core.Options{Partitions: 8, SampleSize: 100, Kind: dataset.Sum, Seed: uint64(i + 1)})
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestShardStatsOnShardedAndUnshardedTables(t *testing.T) {
	c := New()
	e := buildSharded(t, 3000, 3)
	tbl, err := c.Register("trips", e, sqlfe.Schema{PredColumns: []string{"t"}, AggColumn: "v"})
	if err != nil {
		t.Fatal(err)
	}
	info, rows, ok := tbl.ShardStats()
	if !ok || info.Shards != 3 || len(rows) != 3 {
		t.Fatalf("ShardStats = %+v, %v, %v", info, rows, ok)
	}
	total := 0
	for _, r := range rows {
		total += r
	}
	if total != 3000 {
		t.Errorf("shard rows sum to %d, want 3000", total)
	}
	_, s := buildPass(t, 1000)
	plain, err := c.Register("plain", s, sqlfe.Schema{PredColumns: []string{"t"}, AggColumn: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := plain.ShardStats(); ok {
		t.Error("unsharded table claims shard stats")
	}
	if err := plain.CheckpointShards(nil); err == nil || !strings.Contains(err.Error(), "not sharded") {
		t.Errorf("CheckpointShards on unsharded table = %v", err)
	}
}

func TestCheckpointShardsCapturesEveryShard(t *testing.T) {
	c := New()
	e := buildSharded(t, 3000, 3)
	tbl, err := c.Register("trips", e, sqlfe.Schema{PredColumns: []string{"t"}, AggColumn: "v"})
	if err != nil {
		t.Fatal(err)
	}
	err = tbl.CheckpointShards(func(info engine.ShardInfo, innerEngine string, schema sqlfe.Schema, payloads [][]byte, shardRows []int, rows int) error {
		if info.Shards != 3 || len(payloads) != 3 || len(shardRows) != 3 {
			t.Errorf("flush got info %+v, %d payloads, %d shardRows", info, len(payloads), len(shardRows))
		}
		if innerEngine != "PASS" {
			t.Errorf("inner engine = %q", innerEngine)
		}
		if rows != 3000 {
			t.Errorf("rows = %d", rows)
		}
		for i, p := range payloads {
			if len(p) == 0 {
				t.Errorf("shard %d payload empty", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedConcurrentUpdatesAndQueriesNoJournal exercises the
// shared-lock update path: a sharded engine declares ConcurrentUpdatable,
// so without a journal the catalog admits inserts under the read lock and
// they overlap with queries (validated under -race).
func TestShardedConcurrentUpdatesAndQueriesNoJournal(t *testing.T) {
	c := New()
	e := buildSharded(t, 3000, 3)
	tbl, err := c.Register("trips", e, sqlfe.Schema{PredColumns: []string{"t"}, AggColumn: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := engine.Underlying(e).(engine.ConcurrentUpdatable); !ok {
		t.Fatal("sharded engine must be ConcurrentUpdatable")
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if err := tbl.Insert([]float64{float64(g * 9)}, 1.0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := tbl.Query(dataset.Count, dataset.Rect1(0, 30)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := tbl.Rows(); got != 3000+3*40 {
		t.Errorf("rows = %d after %d concurrent inserts, want %d", got, 3*40, 3000+3*40)
	}
}

func TestListSortsCaseInsensitively(t *testing.T) {
	c := New()
	_, s := buildPass(t, 500)
	for _, name := range []string{"Bravo", "alpha", "Delta", "charlie"} {
		if _, err := c.Register(name, s, sqlfe.Schema{PredColumns: []string{"t"}, AggColumn: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "Bravo", "charlie", "Delta"}
	got := c.List()
	for i, tbl := range got {
		if tbl.Name() != want[i] {
			names := make([]string, len(got))
			for j, g := range got {
				names[j] = g.Name()
			}
			t.Fatalf("List order = %v, want %v", names, want)
		}
	}
	// the unknown-table error names tables in the same stable order
	_, err := c.Lookup("ghost")
	if err == nil || !strings.Contains(err.Error(), "alpha, Bravo, charlie, Delta") {
		t.Errorf("Lookup error = %v, want the sorted known-table list", err)
	}
}
