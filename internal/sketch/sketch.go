// Package sketch implements the mergeable summary family behind the
// QUANTILE, COUNT DISTINCT, and TOPK aggregates: a KLL quantile sketch,
// a dense HyperLogLog, and a Misra-Gries heavy-hitter summary. All three
// share the properties the scatter-gather layer needs: Merge is
// associative and commutative, lossless with respect to each sketch's
// stated error guarantee, and deterministic — merging the same inputs in
// any order serializes to identical bytes (HLL states are fully
// multiset-determined; KLL and Misra-Gries are order-sensitive in state
// but symmetric under merge, so the property tests assert answer-level
// equivalence within the stated bound plus same-stream byte identity).
//
// Every sketch tracks its own error bound as it goes: KLL adds the
// compacted level's weight per compaction, Misra-Gries adds one per
// decrement round and the subtracted offset per over-capacity merge, and
// deletes the summaries cannot absorb natively widen the bound through an
// unabsorbed-delete counter. The stated bound in a Result is therefore a
// hard guarantee for KLL/Misra-Gries and a 3-sigma one for HLL.
package sketch

import (
	"errors"
	"fmt"
	"math"
)

// Kind selects which sketch of a Set answers a query.
type Kind uint8

const (
	// KindQuantile answers QUANTILE(col, q) from the KLL sketch.
	KindQuantile Kind = iota + 1
	// KindDistinct answers COUNT(DISTINCT col) from the HLL sketch.
	KindDistinct
	// KindTopK answers TOPK(col, k) from the Misra-Gries sketch.
	KindTopK
)

// String names the kind the way the SQL surface spells it.
func (k Kind) String() string {
	switch k {
	case KindQuantile:
		return "QUANTILE"
	case KindDistinct:
		return "COUNT DISTINCT"
	case KindTopK:
		return "TOPK"
	}
	return fmt.Sprintf("sketch.Kind(%d)", uint8(k))
}

// Query asks one sketch question: the kind plus its argument (the
// quantile fraction q for KindQuantile, the entry count k for KindTopK;
// ignored for KindDistinct).
type Query struct {
	Kind Kind
	Arg  float64
}

// TopKEntry is one heavy hitter: the value, its estimated count, and the
// symmetric count error bound (|estimate - true| <= ErrBound).
type TopKEntry struct {
	Value    float64
	Count    float64
	ErrBound float64
}

// Result is a sketch answer. Value carries the scalar answer (the
// quantile value or the distinct-count estimate), [Lo, Hi] the
// guarantee interval, and Bound the stated error bound in the kind's
// native units: rank positions for quantiles, a count interval width for
// distinct, count units for top-k entries. Entries is populated for
// KindTopK only. N is the net row count the sketch has absorbed.
type Result struct {
	Kind    Kind
	Value   float64
	Lo, Hi  float64
	Bound   float64
	Entries []TopKEntry
	N       int64
}

// ErrCorrupt is returned (wrapped) whenever serialized sketch state fails
// to decode: truncated tails, flipped bits, impossible invariants. A
// decoder never panics on hostile input; it returns this.
var ErrCorrupt = errors.New("sketch: corrupt serialized state")

// ErrUnavailable is returned when a table's engine predates sketch
// maintenance (a v1 snapshot warm start): the capability exists but the
// state was never built. Rebuilding the table from base rows fixes it.
var ErrUnavailable = errors.New("sketch: sketches unavailable (snapshot predates sketch support; rebuild the table)")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// splitmix64 is the finalizer-quality mixer shared with internal/audit's
// sampling hash; a fixed-seed hash keeps HLL states reproducible across
// processes so warm starts and sharded twins stay byte-comparable.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// canonBits canonicalizes a float64 for hashing and counting: -0 folds
// into +0 and every NaN payload folds into one canonical NaN, so values
// that compare equal (or are all unordered) count as one distinct value
// no matter which bit pattern produced them.
func canonBits(v float64) uint64 {
	if v == 0 {
		return 0 // +0 and -0 share one identity
	}
	if math.IsNaN(v) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(v)
}

// Set bundles the three sketches maintained over a synopsis's aggregate
// column. One Set rides on each Synopsis (per-shard granularity in
// sharded tables) and merges shard-wise in the scatter-gather layer.
// A Set is not safe for concurrent mutation; callers hold the same lock
// that guards the owning engine's update path.
type Set struct {
	hll *HLL
	kll *KLL
	mg  *MisraGries
}

// NewSet returns an empty sketch set.
func NewSet() *Set {
	return &Set{hll: NewHLL(), kll: NewKLL(), mg: NewMisraGries()}
}

// Add absorbs one aggregate-column value into all three sketches.
func (s *Set) Add(v float64) {
	b := canonBits(v)
	s.hll.Add(b)
	s.kll.Add(v)
	s.mg.Add(b)
}

// Delete retracts one value. None of the three summaries supports exact
// deletion in sublinear space, so each widens its stated bound instead:
// Misra-Gries decrements exactly when the value holds a counter, and
// every other case lands on an unabsorbed-delete counter that the answer
// intervals absorb.
func (s *Set) Delete(v float64) {
	b := canonBits(v)
	s.hll.Delete()
	s.kll.Delete()
	s.mg.Delete(b)
}

// Merge folds o into s. Merge is associative and commutative at the
// answer level, and symmetric merges serialize identically (see the
// package comment for the exact per-sketch contract). o is not modified.
func (s *Set) Merge(o *Set) {
	if o == nil {
		return
	}
	s.hll.Merge(o.hll)
	s.kll.Merge(o.kll)
	s.mg.Merge(o.mg)
}

// Clone deep-copies the set, so accumulators can absorb a live shard's
// state without mutating it.
func (s *Set) Clone() *Set {
	if s == nil {
		return nil
	}
	return &Set{hll: s.hll.Clone(), kll: s.kll.Clone(), mg: s.mg.Clone()}
}

// N is the net row count (inserts minus deletes) the set has absorbed.
func (s *Set) N() int64 { return s.kll.Net() }

// MemoryBytes approximates the resident size of the set.
func (s *Set) MemoryBytes() int64 {
	if s == nil {
		return 0
	}
	return s.hll.memoryBytes() + s.kll.memoryBytes() + s.mg.memoryBytes()
}

// Answer evaluates one sketch query against the set.
func (s *Set) Answer(q Query) (Result, error) {
	if s == nil {
		return Result{}, ErrUnavailable
	}
	switch q.Kind {
	case KindQuantile:
		if !(q.Arg > 0 && q.Arg < 1) {
			return Result{}, fmt.Errorf("sketch: quantile fraction %v outside (0, 1)", q.Arg)
		}
		return s.kll.Quantile(q.Arg), nil
	case KindDistinct:
		r := s.hll.Distinct()
		r.N = s.N()
		return r, nil
	case KindTopK:
		k := int(q.Arg)
		if k < 1 || float64(k) != q.Arg {
			return Result{}, fmt.Errorf("sketch: top-k count %v is not a positive integer", q.Arg)
		}
		r := s.mg.TopK(k)
		r.N = s.N()
		return r, nil
	}
	return Result{}, fmt.Errorf("sketch: unknown query kind %d", uint8(q.Kind))
}
