package sketch

import (
	"math"
	"sort"
)

// kllCap is the per-level compactor capacity. Every level shares one
// fixed capacity, so total space is kllCap*log2(n/kllCap) values and the
// compaction schedule is a pure function of the input stream.
const kllCap = 128

// KLL is a deterministic KLL-style quantile sketch: levels of value
// buffers where a level-l item carries weight 2^l. Compaction is fully
// deterministic — sort the buffer, hold the maximum back if the length
// is odd, promote the odd sorted positions of the even prefix with
// doubled weight — so the same stream always produces the same state,
// and the error bound is self-tracking: each compaction of a level with
// weight w can misplace any rank by at most w, so errBound accumulates
// exactly the compactions that actually happened rather than a
// worst-case formula. Deletes cannot be absorbed (the value may live in
// any level at any weight) and widen the rank bound by two each: one for
// the phantom item still in the sketch, one for the shifted true rank.
//
// Merge concatenates per-level buffers then re-runs the deterministic
// compaction cascade. Because compaction sorts before selecting, merge
// is symmetric: A.Merge(B) and B.Merge(A) hold identical value multisets
// per level and serialize to identical bytes. States are NOT
// multiset-determined across different insertion orders (unlike HLL) —
// only answers are, to within the stated bound.
type KLL struct {
	levels   [][]float64
	inserts  uint64 // total weight held = total values ever added
	deletes  uint64
	errBound uint64
}

// NewKLL returns an empty KLL sketch.
func NewKLL() *KLL { return &KLL{} }

// Add absorbs one value.
func (k *KLL) Add(v float64) {
	if len(k.levels) == 0 {
		k.levels = append(k.levels, make([]float64, 0, kllCap+1))
	}
	k.levels[0] = append(k.levels[0], v)
	k.inserts++
	k.compactCascade()
}

// Delete records one unabsorbable retraction.
func (k *KLL) Delete() { k.deletes++ }

// Net is the net absorbed row count (inserts minus deletes).
func (k *KLL) Net() int64 { return int64(k.inserts) - int64(k.deletes) }

// compactCascade restores the per-level capacity invariant bottom-up.
func (k *KLL) compactCascade() {
	for l := 0; l < len(k.levels); l++ {
		if len(k.levels[l]) > kllCap {
			k.compact(l)
		}
	}
}

// compact empties level l into level l+1: sort, hold the max back when
// the length is odd (weight is conserved exactly), promote the odd
// sorted positions with doubled weight, and charge the level's weight
// w = 2^l to the running rank-error bound.
func (k *KLL) compact(l int) {
	buf := k.levels[l]
	sort.Float64s(buf)
	n := len(buf)
	var held []float64
	if n%2 == 1 {
		held = []float64{buf[n-1]}
		n--
	}
	if l+1 >= len(k.levels) {
		k.levels = append(k.levels, make([]float64, 0, kllCap+1))
	}
	for i := 1; i < n; i += 2 {
		k.levels[l+1] = append(k.levels[l+1], buf[i])
	}
	k.levels[l] = append(buf[:0], held...)
	k.errBound += 1 << uint(l)
}

// Merge folds o into k: concatenate per-level buffers, then re-run the
// compaction cascade. o is not modified.
func (k *KLL) Merge(o *KLL) {
	if o == nil {
		return
	}
	for l, buf := range o.levels {
		for l >= len(k.levels) {
			k.levels = append(k.levels, make([]float64, 0, kllCap+1))
		}
		k.levels[l] = append(k.levels[l], buf...)
	}
	k.inserts += o.inserts
	k.deletes += o.deletes
	k.errBound += o.errBound
	k.compactCascade()
}

// Clone deep-copies the sketch.
func (k *KLL) Clone() *KLL {
	if k == nil {
		return nil
	}
	c := &KLL{inserts: k.inserts, deletes: k.deletes, errBound: k.errBound}
	c.levels = make([][]float64, len(k.levels))
	for l, buf := range k.levels {
		c.levels[l] = append(make([]float64, 0, cap(buf)), buf...)
	}
	return c
}

// weightedItem is one sketch value with its level weight, for rank walks.
type weightedItem struct {
	v float64
	w uint64
}

// items flattens the sketch sorted by value.
func (k *KLL) items() []weightedItem {
	total := 0
	for _, buf := range k.levels {
		total += len(buf)
	}
	out := make([]weightedItem, 0, total)
	for l, buf := range k.levels {
		w := uint64(1) << uint(l)
		for _, v := range buf {
			out = append(out, weightedItem{v, w})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out
}

// valueAtRank returns the value covering the given weighted rank
// (clamped into [0, W-1]).
func valueAtRank(items []weightedItem, rank float64, total uint64) float64 {
	if rank < 0 {
		rank = 0
	}
	if max := float64(total) - 1; rank > max {
		rank = max
	}
	cum := 0.0
	for _, it := range items {
		cum += float64(it.w)
		if cum > rank {
			return it.v
		}
	}
	if len(items) > 0 {
		return items[len(items)-1].v
	}
	return math.NaN()
}

// Quantile answers QUANTILE(col, q): the value at weighted rank q*(W-1),
// with [Lo, Hi] the values at that rank minus/plus the stated rank
// bound. The bound is hard: the true rank of Value differs from the
// target by at most errBound (compactions) + 2*deletes.
func (k *KLL) Quantile(q float64) Result {
	net := k.Net()
	if k.inserts == 0 {
		return Result{Kind: KindQuantile, Value: math.NaN(), Lo: math.NaN(), Hi: math.NaN(), N: net}
	}
	items := k.items()
	target := q * float64(k.inserts-1)
	bound := float64(k.errBound + 2*k.deletes)
	return Result{
		Kind:  KindQuantile,
		Value: valueAtRank(items, target, k.inserts),
		Lo:    valueAtRank(items, target-bound, k.inserts),
		Hi:    valueAtRank(items, target+bound, k.inserts),
		Bound: bound,
		N:     net,
	}
}

func (k *KLL) memoryBytes() int64 {
	var b int64 = 48
	for _, buf := range k.levels {
		b += 24 + 8*int64(cap(buf))
	}
	return b
}
