package sketch

import (
	"math"
	"math/bits"
)

// hllP is the HLL precision: 2^14 = 16384 dense 1-byte registers, giving
// a standard error of 1.04/sqrt(m) ~ 0.81% and a 3-sigma relative bound
// of ~2.4% at 16 KiB per sketch.
const (
	hllP = 14
	hllM = 1 << hllP
	// hllMaxRank bounds a register value: rank counts leading zeros of the
	// 64-hllP suffix bits plus one, and the decoder rejects anything above.
	hllMaxRank = 64 - hllP + 1
)

// hllEps is the stated 3-sigma relative error bound.
var hllEps = 3 * 1.04 / math.Sqrt(hllM)

// HLL is a dense HyperLogLog over canonicalized float64 values. Its state
// is fully multiset-determined: Add is register-max and Merge is
// element-wise register max, so any insertion or merge order over the
// same multiset yields byte-identical registers.
type HLL struct {
	reg [hllM]uint8
	// deletes counts retractions HLL cannot absorb (registers only grow);
	// each one widens the answer interval downward by one.
	deletes uint64
}

// NewHLL returns an empty HLL.
func NewHLL() *HLL { return &HLL{} }

// Add absorbs one canonicalized value (see canonBits).
func (h *HLL) Add(canon uint64) {
	x := splitmix64(canon)
	idx := x >> (64 - hllP)
	// The OR plants a guard bit so the rank never exceeds hllMaxRank even
	// for an all-zero suffix.
	rank := uint8(bits.LeadingZeros64(x<<hllP|1<<(hllP-1))) + 1
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

// Delete records one unabsorbable retraction.
func (h *HLL) Delete() { h.deletes++ }

// Merge folds o into h: element-wise register max plus delete counts.
func (h *HLL) Merge(o *HLL) {
	if o == nil {
		return
	}
	for i, r := range o.reg {
		if r > h.reg[i] {
			h.reg[i] = r
		}
	}
	h.deletes += o.deletes
}

// Clone deep-copies the sketch.
func (h *HLL) Clone() *HLL {
	if h == nil {
		return nil
	}
	c := *h
	return &c
}

// estimate is the standard HLL estimator with the linear-counting
// small-range correction.
func (h *HLL) estimate() float64 {
	const m = float64(hllM)
	alpha := 0.7213 / (1 + 1.079/m)
	sum := 0.0
	zeros := 0
	for _, r := range h.reg {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Distinct answers COUNT(DISTINCT col). The interval is the 3-sigma
// relative band widened downward by the unabsorbed deletes (a deleted
// row may or may not have removed the last copy of its value).
func (h *HLL) Distinct() Result {
	est := h.estimate()
	lo := est*(1-hllEps) - float64(h.deletes)
	if lo < 0 {
		lo = 0
	}
	return Result{
		Kind:  KindDistinct,
		Value: est,
		Lo:    lo,
		Hi:    est * (1 + hllEps),
		Bound: est*hllEps + float64(h.deletes),
	}
}

func (h *HLL) memoryBytes() int64 { return hllM + 16 }
