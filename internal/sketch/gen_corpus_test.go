package sketch

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus for
// FuzzDecodeSet from the current wire format. It is a maintenance tool,
// not a test: run it after changing the encoding with
//
//	SKETCH_REGEN_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/sketch/
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("SKETCH_REGEN_CORPUS") == "" {
		t.Skip("set SKETCH_REGEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSet")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	empty := NewSet()
	loaded := NewSet()
	for i := 0; i < 3000; i++ {
		loaded.Add(float64(i % 257))
	}
	loaded.Delete(3)
	big := NewSet()
	x := uint64(99)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		big.Add(float64(x % 100003))
	}
	enc := loaded.Encode()
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 0x40
	seeds := map[string][]byte{
		"empty-set":    empty.Encode(),
		"loaded-set":   enc,
		"big-set":      big.Encode(),
		"torn-tail":    enc[:len(enc)/2],
		"bit-flip":     flipped,
		"empty-bytes":  {},
		"short-magic":  enc[:3],
		"trailing-pad": append(append([]byte(nil), empty.Encode()...), 0x01),
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
