package sketch

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

// rng is a tiny splitmix64 stream for deterministic test data.
type rng struct{ s uint64 }

func (r *rng) next() uint64 { r.s++; return splitmix64(r.s) }
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// zipfStream generates a skewed value stream: value i appears with
// frequency proportional to 1/(i+1), capped to nVals distinct values.
func zipfStream(n, nVals int, seed uint64) []float64 {
	r := &rng{s: seed * 0x9e37}
	weights := make([]float64, nVals)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	out := make([]float64, n)
	for i := range out {
		u := r.float64() * total
		for j, w := range weights {
			u -= w
			if u <= 0 || j == nVals-1 {
				out[i] = float64(j * 10)
				break
			}
		}
	}
	return out
}

func exactDistinct(vals []float64) int {
	seen := make(map[uint64]struct{})
	for _, v := range vals {
		seen[canonBits(v)] = struct{}{}
	}
	return len(seen)
}

// rankSpan returns the 0-indexed rank interval [lo, hi] that value v
// occupies in the sorted stream.
func rankSpan(sorted []float64, v float64) (int, int) {
	lo := sort.SearchFloat64s(sorted, v)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return lo, hi - 1
}

func TestHLLDistinctWithinBound(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000, 60000} {
		s := NewSet()
		r := &rng{s: uint64(n) + 7}
		vals := make([]float64, n)
		for i := range vals {
			// ~n/2 distinct values: plenty of duplicates
			vals[i] = math.Floor(r.float64() * float64(n) / 2)
			s.Add(vals[i])
		}
		res, err := s.Answer(Query{Kind: KindDistinct})
		if err != nil {
			t.Fatal(err)
		}
		truth := float64(exactDistinct(vals))
		if truth < res.Lo || truth > res.Hi {
			t.Errorf("n=%d: exact distinct %v outside [%v, %v]", n, truth, res.Lo, res.Hi)
		}
		if res.N != int64(n) {
			t.Errorf("n=%d: Result.N = %d", n, res.N)
		}
	}
}

func TestHLLNaNAndZeroCanonicalize(t *testing.T) {
	s := NewSet()
	s.Add(0.0)
	s.Add(math.Copysign(0, -1))
	s.Add(math.NaN())
	s.Add(math.Float64frombits(0x7ff8000000000099)) // NaN, different payload
	res, _ := s.Answer(Query{Kind: KindDistinct})
	if math.Round(res.Value) != 2 {
		t.Errorf("±0 and NaN payloads must collapse to 2 distinct values, estimated %v", res.Value)
	}
}

func TestKLLQuantileWithinStatedRankBound(t *testing.T) {
	for _, n := range []int{1, 50, 128, 129, 10000, 60000} {
		s := NewSet()
		r := &rng{s: uint64(n)}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.float64() * 1000
			s.Add(vals[i])
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
			res, err := s.Answer(Query{Kind: KindQuantile, Arg: q})
			if err != nil {
				t.Fatal(err)
			}
			target := q * float64(n-1)
			lo, hi := rankSpan(sorted, res.Value)
			if target >= float64(hi)+1+res.Bound || target < float64(lo)-res.Bound {
				t.Errorf("n=%d q=%v: value %v spans ranks [%d,%d], target %v, bound %v",
					n, q, res.Value, lo, hi, target, res.Bound)
			}
			if res.Lo > res.Value || res.Hi < res.Value {
				t.Errorf("n=%d q=%v: interval [%v,%v] excludes value %v", n, q, res.Lo, res.Hi, res.Value)
			}
		}
		// Small streams never compact: the answer must be exact.
		if n <= kllCap {
			res, _ := s.Answer(Query{Kind: KindQuantile, Arg: 0.5})
			if res.Bound != 0 {
				t.Errorf("n=%d fits one buffer but bound is %v", n, res.Bound)
			}
		}
	}
}

func TestTopKWithinBound(t *testing.T) {
	vals := zipfStream(50000, 500, 3)
	s := NewSet()
	truth := make(map[float64]float64)
	for _, v := range vals {
		s.Add(v)
		truth[v]++
	}
	res, err := s.Answer(Query{Kind: KindTopK, Arg: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(res.Entries))
	}
	for _, e := range res.Entries {
		if d := math.Abs(e.Count - truth[e.Value]); d > e.ErrBound {
			t.Errorf("value %v: estimate %v vs true %v exceeds bound %v", e.Value, e.Count, truth[e.Value], e.ErrBound)
		}
	}
	// The true most-frequent value dominates far past the error bound, so
	// it must lead the returned list.
	if res.Entries[0].Value != 0 {
		t.Errorf("top entry is %v, want 0 (the Zipf mode)", res.Entries[0].Value)
	}
}

func TestDeletesWidenButNeverBreakBounds(t *testing.T) {
	s := NewSet()
	r := &rng{s: 99}
	live := make(map[float64]float64)
	var stream []float64
	n := 20000
	for i := 0; i < n; i++ {
		v := math.Floor(r.float64() * 200)
		s.Add(v)
		live[v]++
		stream = append(stream, v)
	}
	// Delete a third of the stream, some values to extinction.
	deleted := 0
	for i := 0; i < n; i += 3 {
		v := stream[i]
		if live[v] <= 0 {
			continue
		}
		s.Delete(v)
		live[v]--
		if live[v] == 0 {
			delete(live, v)
		}
		deleted++
	}
	var liveVals []float64
	for v, c := range live {
		for i := 0.0; i < c; i++ {
			liveVals = append(liveVals, v)
		}
	}
	sort.Float64s(liveVals)

	if res, _ := s.Answer(Query{Kind: KindDistinct}); float64(len(live)) < res.Lo || float64(len(live)) > res.Hi {
		t.Errorf("distinct after deletes: true %d outside [%v, %v]", len(live), res.Lo, res.Hi)
	}
	res, _ := s.Answer(Query{Kind: KindQuantile, Arg: 0.5})
	if res.N != int64(len(liveVals)) {
		t.Errorf("N = %d, want %d", res.N, len(liveVals))
	}
	target := 0.5 * float64(len(liveVals)-1)
	lo, hi := rankSpan(liveVals, res.Value)
	if target >= float64(hi)+1+res.Bound || target < float64(lo)-res.Bound {
		t.Errorf("median after deletes: value %v spans [%d,%d], target %v, bound %v",
			res.Value, lo, hi, target, res.Bound)
	}
	topk, _ := s.Answer(Query{Kind: KindTopK, Arg: 10})
	for _, e := range topk.Entries {
		if d := math.Abs(e.Count - live[e.Value]); d > e.ErrBound {
			t.Errorf("topk after deletes: value %v estimate %v vs true %v exceeds bound %v",
				e.Value, e.Count, live[e.Value], e.ErrBound)
		}
	}
}

// TestMergeAlgebraRandomSplits is the merge-algebra property test: the
// same stream split into random segments and merged in random shapes
// must agree with the single-sketch twin — HLL byte-identically (its
// state is multiset-determined), KLL and Misra-Gries at the answer
// level within each instance's own stated bound.
func TestMergeAlgebraRandomSplits(t *testing.T) {
	vals := zipfStream(30000, 300, 11)
	whole := NewSet()
	for _, v := range vals {
		whole.Add(v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)

	for trial := 0; trial < 8; trial++ {
		r := &rng{s: uint64(trial) + 1000}
		// Random split into 2..9 segments.
		parts := 2 + int(r.next()%8)
		cuts := map[int]struct{}{0: {}, len(vals): {}}
		for len(cuts) < parts+1 {
			cuts[int(r.next()%uint64(len(vals)))] = struct{}{}
		}
		var bounds []int
		for c := range cuts {
			bounds = append(bounds, c)
		}
		sort.Ints(bounds)
		var sets []*Set
		for i := 0; i+1 < len(bounds); i++ {
			s := NewSet()
			for _, v := range vals[bounds[i]:bounds[i+1]] {
				s.Add(v)
			}
			sets = append(sets, s)
		}
		// Merge in a random order (fold pairs until one remains).
		for len(sets) > 1 {
			i := int(r.next() % uint64(len(sets)))
			j := int(r.next() % uint64(len(sets)-1))
			if j >= i {
				j++
			}
			merged := sets[i].Clone()
			merged.Merge(sets[j])
			rest := make([]*Set, 0, len(sets)-1)
			for idx, s := range sets {
				if idx != i && idx != j {
					rest = append(rest, s)
				}
			}
			sets = append(rest, merged)
		}
		got := sets[0]

		// HLL: byte-level equality with the unsplit twin.
		if got.hll.reg != whole.hll.reg || got.hll.deletes != whole.hll.deletes {
			t.Fatalf("trial %d: merged HLL state differs from the unsplit twin", trial)
		}
		// KLL/MG: answers within each instance's stated bound vs exact.
		for _, q := range []float64{0.1, 0.5, 0.9} {
			res, _ := got.Answer(Query{Kind: KindQuantile, Arg: q})
			target := q * float64(len(vals)-1)
			lo, hi := rankSpan(sorted, res.Value)
			if target >= float64(hi)+1+res.Bound || target < float64(lo)-res.Bound {
				t.Errorf("trial %d q=%v: merged quantile %v spans [%d,%d], target %v, bound %v",
					trial, q, res.Value, lo, hi, target, res.Bound)
			}
		}
		if got.N() != whole.N() {
			t.Errorf("trial %d: merged N %d vs %d", trial, got.N(), whole.N())
		}
		truth := make(map[float64]float64)
		for _, v := range vals {
			truth[v]++
		}
		topk, _ := got.Answer(Query{Kind: KindTopK, Arg: 3})
		for _, e := range topk.Entries {
			if d := math.Abs(e.Count - truth[e.Value]); d > e.ErrBound {
				t.Errorf("trial %d: merged topk value %v estimate %v vs true %v exceeds bound %v",
					trial, e.Value, e.Count, truth[e.Value], e.ErrBound)
			}
		}
	}
}

// TestMergeSymmetric asserts A⊕B and B⊕A serialize byte-identically —
// the property that keeps the streaming and slice merge paths, and the
// traced and untraced scatter paths, bitwise-interchangeable.
func TestMergeSymmetric(t *testing.T) {
	mk := func(seed uint64, n int) *Set {
		s := NewSet()
		r := &rng{s: seed}
		for i := 0; i < n; i++ {
			s.Add(math.Floor(r.float64() * 500))
		}
		return s
	}
	a, b := mk(1, 7000), mk(2, 4321)
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !bytes.Equal(ab.Encode(), ba.Encode()) {
		t.Fatal("A.Merge(B) and B.Merge(A) serialize differently")
	}
	// Associativity at the byte level for symmetric groupings.
	c := mk(3, 999)
	abc := ab.Clone()
	abc.Merge(c)
	cba := c.Clone()
	cba.Merge(ba)
	if !bytes.Equal(abc.Encode(), cba.Encode()) {
		t.Fatal("(A⊕B)⊕C and C⊕(B⊕A) serialize differently")
	}
}

// TestSameStreamByteDeterminism: replaying the identical insert/delete
// stream (the WAL warm-start path) must reproduce identical bytes.
func TestSameStreamByteDeterminism(t *testing.T) {
	build := func() *Set {
		s := NewSet()
		r := &rng{s: 42}
		for i := 0; i < 9000; i++ {
			v := math.Floor(r.float64() * 300)
			s.Add(v)
			if i%5 == 0 {
				s.Delete(v)
			}
		}
		return s
	}
	if !bytes.Equal(build().Encode(), build().Encode()) {
		t.Fatal("same stream produced different bytes")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSet()
	r := &rng{s: 5}
	for i := 0; i < 12000; i++ {
		s.Add(math.Floor(r.float64() * 400))
	}
	s.Delete(13)
	enc := s.Encode()
	dec, err := DecodeSet(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("decode→encode is not the identity")
	}
	for _, q := range []Query{{KindQuantile, 0.5}, {KindDistinct, 0}, {KindTopK, 4}} {
		a, err1 := s.Answer(q)
		b, err2 := dec.Answer(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("answer errors: %v / %v", err1, err2)
		}
		if a.Value != b.Value || a.Bound != b.Bound || a.N != b.N || len(a.Entries) != len(b.Entries) {
			t.Fatalf("%v: decoded answer %+v differs from original %+v", q.Kind, b, a)
		}
	}
}

func TestDecodeRejectsTornTails(t *testing.T) {
	s := NewSet()
	for i := 0; i < 3000; i++ {
		s.Add(float64(i % 97))
	}
	enc := s.Encode()
	for _, cut := range []int{0, 1, 2, 10, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeSet(enc[:cut]); err == nil {
			t.Errorf("truncation at %d bytes decoded cleanly", cut)
		}
	}
	// Trailing garbage after a clean encoding is corruption too.
	if _, err := DecodeSet(append(append([]byte(nil), enc...), 0x07)); err == nil {
		t.Error("trailing byte decoded cleanly")
	}
}

func TestAnswerValidation(t *testing.T) {
	s := NewSet()
	s.Add(1)
	for _, q := range []Query{
		{KindQuantile, 0}, {KindQuantile, 1}, {KindQuantile, -0.5}, {KindQuantile, math.NaN()},
		{KindTopK, 0}, {KindTopK, 2.5}, {KindTopK, -1},
		{Kind(0), 0}, {Kind(99), 0},
	} {
		if _, err := s.Answer(q); err == nil {
			t.Errorf("query %+v accepted", q)
		}
	}
	var nilSet *Set
	if _, err := nilSet.Answer(Query{Kind: KindDistinct}); err != ErrUnavailable {
		t.Errorf("nil set answered with err=%v, want ErrUnavailable", err)
	}
}
