package sketch

import (
	"bytes"
	"math"
	"sort"

	"repro/internal/binenc"
)

// Serialization format (varints via internal/binenc):
//
//	magic u64, version u64
//	HLL:  deletes u64, registers as a length-prefixed blob (hllM bytes)
//	KLL:  inserts u64, deletes u64, errBound u64, numLevels u64,
//	      then per level: count u64 + count ascending F64 values
//	MG:   errBound u64, deletes u64, count u64,
//	      then per entry (ascending key bits): key u64, count u64
//
// The canonical orderings (sorted KLL levels, sorted MG keys) make
// symmetric merges serialize byte-identically. Decode validates every
// structural invariant and returns a wrapped ErrCorrupt on any
// violation — it never panics and never allocates proportionally to a
// corrupt length field.
const (
	skMagic   = 0x31544b5350 // "PSKT1"
	skVersion = 1
	// kllMaxLevels caps the level count a decoder accepts: 48 levels cover
	// 2^48 rows at kllCap per level, far beyond any in-tree dataset.
	kllMaxLevels = 48
)

// Encode serializes the set canonically. The receiver is not mutated, so
// encoding is safe under the same read lock that guards queries.
func (s *Set) Encode() []byte {
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	w.U64(skMagic)
	w.U64(skVersion)

	w.U64(s.hll.deletes)
	w.Bytes(s.hll.reg[:])

	w.U64(s.kll.inserts)
	w.U64(s.kll.deletes)
	w.U64(s.kll.errBound)
	w.U64(uint64(len(s.kll.levels)))
	for _, level := range s.kll.levels {
		sorted := append(make([]float64, 0, len(level)), level...)
		sort.Float64s(sorted)
		w.U64(uint64(len(sorted)))
		for _, v := range sorted {
			w.F64(v)
		}
	}

	w.U64(s.mg.errBound)
	w.U64(s.mg.deletes)
	w.U64(uint64(len(s.mg.counts)))
	keys := make([]uint64, 0, len(s.mg.counts))
	for k := range s.mg.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		w.U64(k)
		w.U64(s.mg.counts[k])
	}
	if err := w.Flush(); err != nil {
		// Writing to a bytes.Buffer cannot fail.
		panic("sketch: encode to memory buffer failed: " + err.Error())
	}
	return buf.Bytes()
}

// DecodeSet parses a set serialized by Encode, validating structure,
// bounds, and invariants. Torn tails, flipped bits, and trailing bytes
// all return a wrapped ErrCorrupt.
func DecodeSet(data []byte) (*Set, error) {
	r := binenc.NewReader(bytes.NewReader(data))
	if m := r.U64(); r.Err() == nil && m != skMagic {
		return nil, corrupt("bad magic %#x", m)
	}
	if v := r.U64(); r.Err() == nil && v != skVersion {
		return nil, corrupt("unsupported version %d", v)
	}

	s := &Set{hll: NewHLL(), kll: NewKLL(), mg: NewMisraGries()}
	s.hll.deletes = r.U64()
	reg := r.BytesCap(hllM)
	if r.Err() == nil {
		if len(reg) != hllM {
			return nil, corrupt("hll register blob is %d bytes, want %d", len(reg), hllM)
		}
		for i, v := range reg {
			if v > hllMaxRank {
				return nil, corrupt("hll register %d holds impossible rank %d", i, v)
			}
		}
		copy(s.hll.reg[:], reg)
	}

	s.kll.inserts = r.U64()
	s.kll.deletes = r.U64()
	s.kll.errBound = r.U64()
	numLevels := r.U64()
	if r.Err() == nil && numLevels > kllMaxLevels {
		return nil, corrupt("kll level count %d exceeds %d", numLevels, kllMaxLevels)
	}
	var weight uint64
	for l := uint64(0); l < numLevels && r.Err() == nil; l++ {
		n := r.U64()
		if r.Err() != nil {
			break
		}
		if n > kllCap {
			return nil, corrupt("kll level %d holds %d values, capacity %d", l, n, kllCap)
		}
		buf := make([]float64, 0, kllCap+1)
		for i := uint64(0); i < n; i++ {
			v := r.F64()
			if len(buf) > 0 && v < buf[len(buf)-1] {
				return nil, corrupt("kll level %d is not sorted", l)
			}
			buf = append(buf, v)
		}
		weight += n << l
		s.kll.levels = append(s.kll.levels, buf)
	}
	if r.Err() == nil {
		if weight != s.kll.inserts {
			return nil, corrupt("kll holds weight %d but records %d inserts", weight, s.kll.inserts)
		}
		if s.kll.deletes > s.kll.inserts {
			return nil, corrupt("kll records %d deletes over %d inserts", s.kll.deletes, s.kll.inserts)
		}
	}

	s.mg.errBound = r.U64()
	s.mg.deletes = r.U64()
	mgN := r.U64()
	if r.Err() == nil && mgN > mgCap {
		return nil, corrupt("misra-gries holds %d counters, capacity %d", mgN, mgCap)
	}
	prevKey, haveKey := uint64(0), false
	for i := uint64(0); i < mgN && r.Err() == nil; i++ {
		k := r.U64()
		c := r.U64()
		if r.Err() != nil {
			break
		}
		if haveKey && k <= prevKey {
			return nil, corrupt("misra-gries keys out of order")
		}
		if c == 0 {
			return nil, corrupt("misra-gries counter for %#x is zero", k)
		}
		if math.IsNaN(math.Float64frombits(k)) && k != math.Float64bits(math.NaN()) {
			return nil, corrupt("misra-gries key %#x is a non-canonical NaN", k)
		}
		prevKey, haveKey = k, true
		s.mg.counts[k] = c
	}
	if err := r.Err(); err != nil {
		return nil, corrupt("truncated or unreadable: %v", err)
	}
	// Trailing-data probe: a clean encoding ends exactly here.
	if r.U64(); r.Err() == nil {
		return nil, corrupt("trailing bytes after sketch state")
	}
	return s, nil
}
