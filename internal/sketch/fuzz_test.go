package sketch

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeSet hammers the sketch deserializer with hostile bytes: torn
// tails, flipped bits, and arbitrary garbage must return a wrapped
// ErrCorrupt (or decode into a self-consistent set), and never panic.
// Inputs that do decode must be canonical: decode→encode→decode is the
// identity at the byte level, and every query kind answers without
// panicking.
func FuzzDecodeSet(f *testing.F) {
	empty := NewSet()
	f.Add(empty.Encode())
	loaded := NewSet()
	for i := 0; i < 5000; i++ {
		loaded.Add(float64(i%211) * 1.5)
		if i%7 == 0 {
			loaded.Delete(float64(i % 211 * 3))
		}
	}
	f.Add(loaded.Encode())
	enc := loaded.Encode()
	f.Add(enc[:len(enc)/2]) // torn tail
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/3] ^= 0x40 // bit flip
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x53, 0x4b, 0x54})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSet(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		enc := s.Encode()
		again, err := DecodeSet(enc)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v", err)
		}
		if !bytes.Equal(again.Encode(), enc) {
			t.Fatal("decode→encode is not canonical")
		}
		for _, q := range []Query{{KindQuantile, 0.5}, {KindDistinct, 0}, {KindTopK, 8}} {
			if _, err := s.Answer(q); err != nil {
				t.Fatalf("decoded set cannot answer %v: %v", q.Kind, err)
			}
		}
	})
}
