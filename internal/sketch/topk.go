package sketch

import (
	"math"
	"sort"
)

// mgCap is the Misra-Gries counter capacity: enough for TOPK(col, k) at
// any practical k while keeping decrement rounds O(mgCap).
const mgCap = 64

// MisraGries is a heavy-hitter summary over canonicalized float64
// values. The classic guarantee — every counter undercounts its value by
// at most the number of decrement rounds — is tracked directly in
// errBound, which also absorbs the count offset subtracted by
// over-capacity merges (the Agarwal et al. mergeable-summaries rule:
// sum the counter maps, subtract the (cap+1)-th largest count, drop the
// non-positive). Deletes decrement exactly when the value holds a
// counter; otherwise they land on an unabsorbed-delete counter that
// widens the per-entry bound upward. The resulting guarantee per value:
// |estimate - true| <= errBound + deletes, and any value whose true
// count exceeds that bound holds a counter.
type MisraGries struct {
	counts   map[uint64]uint64 // canonical float64 bits -> estimated count
	errBound uint64
	deletes  uint64
}

// NewMisraGries returns an empty summary.
func NewMisraGries() *MisraGries {
	return &MisraGries{counts: make(map[uint64]uint64, mgCap)}
}

// Add absorbs one canonicalized value.
func (m *MisraGries) Add(canon uint64) {
	if c, ok := m.counts[canon]; ok {
		m.counts[canon] = c + 1
		return
	}
	if len(m.counts) < mgCap {
		m.counts[canon] = 1
		return
	}
	// Decrement round: every counter and the incoming item each give up
	// one unit, costing one count of accuracy across the board.
	for k, c := range m.counts {
		if c == 1 {
			delete(m.counts, k)
		} else {
			m.counts[k] = c - 1
		}
	}
	m.errBound++
}

// Delete retracts one value: exactly when it holds a counter, otherwise
// onto the unabsorbed-delete counter.
func (m *MisraGries) Delete(canon uint64) {
	if c, ok := m.counts[canon]; ok {
		if c == 1 {
			delete(m.counts, canon)
		} else {
			m.counts[canon] = c - 1
		}
		return
	}
	m.deletes++
}

// Merge folds o into m: sum the counter maps; if the union exceeds
// capacity, subtract the (cap+1)-th largest count from every counter,
// drop the non-positive, and charge the subtracted offset to errBound.
// Summing commutes and the offset depends only on the summed map, so
// merge is commutative and serializes symmetrically.
func (m *MisraGries) Merge(o *MisraGries) {
	if o == nil {
		return
	}
	for k, c := range o.counts {
		m.counts[k] += c
	}
	m.errBound += o.errBound
	m.deletes += o.deletes
	if len(m.counts) <= mgCap {
		return
	}
	all := make([]uint64, 0, len(m.counts))
	for _, c := range m.counts {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	offset := all[mgCap]
	for k, c := range m.counts {
		if c <= offset {
			delete(m.counts, k)
		} else {
			m.counts[k] = c - offset
		}
	}
	m.errBound += offset
}

// Clone deep-copies the summary.
func (m *MisraGries) Clone() *MisraGries {
	if m == nil {
		return nil
	}
	c := &MisraGries{
		counts:   make(map[uint64]uint64, len(m.counts)),
		errBound: m.errBound,
		deletes:  m.deletes,
	}
	for k, v := range m.counts {
		c.counts[k] = v
	}
	return c
}

// TopK answers TOPK(col, k): the k largest counters by estimated count
// (value bits break ties, so the answer is deterministic), each stamped
// with the symmetric per-entry bound errBound + deletes.
func (m *MisraGries) TopK(k int) Result {
	entries := make([]TopKEntry, 0, len(m.counts))
	bound := float64(m.errBound + m.deletes)
	for bits, c := range m.counts {
		entries = append(entries, TopKEntry{
			Value:    math.Float64frombits(bits),
			Count:    float64(c),
			ErrBound: bound,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return math.Float64bits(entries[i].Value) < math.Float64bits(entries[j].Value)
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return Result{Kind: KindTopK, Bound: bound, Entries: entries}
}

func (m *MisraGries) memoryBytes() int64 {
	return 64 + 24*int64(len(m.counts))
}
