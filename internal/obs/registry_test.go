package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a minimal Prometheus text-format parser used to
// validate our hand-rolled writer: it checks comment structure and
// returns sample name → value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid metric type %q", ln+1, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// sample: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		samples[name] = v
		// Every sample must be preceded by a TYPE for its family.
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			family = strings.TrimSuffix(family, suffix)
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE for %q", ln+1, name, family)
		}
	}
	return samples
}

// TestWritePrometheusExposition registers one of each instrument kind and
// parses the output back.
func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops so far")
	c.Add(42)
	g := r.NewGauge("test_queue_depth", "queued items")
	g.Set(3.5)
	h := r.NewHistogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	r.CounterFunc("test_hits_total", "cache hits", func() float64 { return 7 })
	r.GaugeFunc("test_tables", "live tables", func() float64 { return 2 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())

	checks := map[string]float64{
		"test_ops_total":                         42,
		"test_queue_depth":                       3.5,
		"test_hits_total":                        7,
		"test_tables":                            2,
		`test_latency_seconds_bucket{le="0.01"}`: 1,
		`test_latency_seconds_bucket{le="0.1"}`:  3,
		`test_latency_seconds_bucket{le="1"}`:    3,
		`test_latency_seconds_bucket{le="+Inf"}`: 4,
		"test_latency_seconds_count":             4,
	}
	for name, want := range checks {
		got, ok := samples[name]
		if !ok {
			t.Errorf("missing sample %q\nfull output:\n%s", name, buf.String())
			continue
		}
		if got != want {
			t.Errorf("%s: got %g, want %g", name, got, want)
		}
	}
	if sum := samples["test_latency_seconds_sum"]; sum < 5.1 || sum > 5.2 {
		t.Errorf("histogram sum: got %g, want ~5.105", sum)
	}
}

// TestRegistryReregister checks that NewCounter reuses an existing family
// and that func collectors replace cleanly.
func TestRegistryReregister(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "first")
	b := r.NewCounter("dup_total", "second")
	if a != b {
		t.Fatal("re-registering a counter should return the same instrument")
	}
	r.GaugeFunc("fn_metric", "v1", func() float64 { return 1 })
	r.GaugeFunc("fn_metric", "v2", func() float64 { return 2 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fn_metric 2") {
		t.Fatalf("latest func registration should win:\n%s", buf.String())
	}
	if strings.Count(buf.String(), "# TYPE fn_metric") != 1 {
		t.Fatalf("family must appear once:\n%s", buf.String())
	}
	r.Unregister("fn_metric")
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fn_metric") {
		t.Fatalf("unregistered family still present:\n%s", buf.String())
	}
}

// TestLabeledSeries checks that labeled series render with their labels,
// share one # HELP/# TYPE header per family, and re-register idempotently
// per (family, labels) pair.
func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.NewLabeledCounter("audit_total", Labels("table", "demo", "agg", "sum"), "audits")
	b := r.NewLabeledCounter("audit_total", Labels("table", "demo", "agg", "avg"), "audits")
	a2 := r.NewLabeledCounter("audit_total", Labels("table", "demo", "agg", "sum"), "audits")
	if a == b {
		t.Fatal("different label sets must be distinct series")
	}
	if a != a2 {
		t.Fatal("same (family, labels) must reuse the series")
	}
	a.Add(3)
	b.Add(5)
	g := r.NewLabeledGauge("cov", Labels("table", "demo"), "coverage")
	g.Set(0.97)
	h := r.NewLabeledHistogram("relerr", Labels("table", "demo"), "rel err", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples := parseExposition(t, text)
	checks := map[string]float64{
		`audit_total{table="demo",agg="sum"}`:   3,
		`audit_total{table="demo",agg="avg"}`:   5,
		`cov{table="demo"}`:                     0.97,
		`relerr_bucket{table="demo",le="0.1"}`:  1,
		`relerr_bucket{table="demo",le="1"}`:    2,
		`relerr_bucket{table="demo",le="+Inf"}`: 2,
		`relerr_count{table="demo"}`:            2,
	}
	for name, want := range checks {
		if got, ok := samples[name]; !ok || got != want {
			t.Errorf("%s: got %g (present=%v), want %g\n%s", name, got, ok, want, text)
		}
	}
	if n := strings.Count(text, "# TYPE audit_total "); n != 1 {
		t.Fatalf("family header must appear once, got %d:\n%s", n, text)
	}
}

// TestCollect checks the flat numeric snapshot behind the history ring.
func TestCollect(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ops_total", "").Add(9)
	r.NewGauge("depth", "").Set(2)
	r.GaugeFunc("fn", "", func() float64 { return 4 })
	h := r.NewHistogram("lat", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	lh := r.NewLabeledHistogram("err", Labels("t", "x"), "", []float64{1})
	lh.Observe(0.2)

	got := r.Collect()
	for name, want := range map[string]float64{
		"ops_total":        9,
		"depth":            2,
		"fn":               4,
		"lat_count":        2,
		"lat_sum":          5.5,
		`err_count{t="x"}`: 1,
	} {
		if got[name] != want {
			t.Errorf("Collect()[%q] = %g, want %g", name, got[name], want)
		}
	}
	if _, ok := got["lat_p99"]; !ok {
		t.Error("Collect() missing histogram p99 series")
	}
}

// TestRegistryConcurrent registers and scrapes from multiple goroutines
// (meaningful under -race).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				c := r.NewCounter(fmt.Sprintf("worker_%d_total", w), "")
				c.Inc()
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
