package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestSpanTree builds a small trace and checks the exported shape.
func TestSpanTree(t *testing.T) {
	root := StartTrace("query")
	root.Set("sql", "SELECT SUM(v) FROM t WHERE x BETWEEN ?1 AND ?2")
	compile := root.Child("compile")
	compile.Set("plan_cache", "hit")
	compile.End()
	exec := root.Child("execute")
	for i := 0; i < 3; i++ {
		sh := exec.Child("shard")
		sh.AddInt("rows", 10)
		sh.AddInt("rows", 5)
		sh.End()
	}
	exec.End()
	root.End()

	out := root.Export()
	if out.Name != "query" || len(out.Children) != 2 {
		t.Fatalf("bad root: %+v", out)
	}
	if out.Children[0].Attrs["plan_cache"] != "hit" {
		t.Fatalf("compile attrs: %+v", out.Children[0].Attrs)
	}
	if len(out.Children[1].Children) != 3 {
		t.Fatalf("execute children: %+v", out.Children[1])
	}
	if rows := out.Children[1].Children[0].Attrs["rows"]; rows != int64(15) {
		t.Fatalf("AddInt accumulation: got %v", rows)
	}

	// Round-trip through JSON.
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "query" || len(back.Children) != 2 {
		t.Fatalf("round-trip: %+v", back)
	}

	sum := root.Summary()
	if sum["shard"] < 0 || len(sum) != 4 {
		t.Fatalf("summary: %+v", sum)
	}
}

// TestSpanNilSafety calls every method on a nil span — each must be a
// silent no-op, since that is the untraced fast path.
func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	sp.End()
	sp.Set("k", 1)
	sp.AddInt("k", 1)
	if c := sp.Child("x"); c != nil {
		t.Fatal("nil.Child must be nil")
	}
	if d := sp.Duration(); d != 0 {
		t.Fatal("nil.Duration must be 0")
	}
	if _, ok := sp.Attr("k"); ok {
		t.Fatal("nil.Attr must miss")
	}
	if sp.Export() != nil {
		t.Fatal("nil.Export must be nil")
	}
}

// TestSpanContext checks WithSpan/SpanFrom plumbing including the global
// kill switch.
func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty ctx should carry no span")
	}
	sp := StartTrace("q")
	ctx = WithSpan(ctx, sp)
	if SpanFrom(ctx) != sp {
		t.Fatal("span not recovered from ctx")
	}
	prev := SetTracingEnabled(false)
	if SpanFrom(ctx) != nil {
		t.Fatal("disabled tracing must hide attached spans")
	}
	SetTracingEnabled(prev)
	if WithSpan(context.Background(), nil) != context.Background() {
		t.Fatal("WithSpan(nil) should return ctx unchanged")
	}
}

// TestSpanConcurrent ends children and marshals the parent concurrently —
// the straggler-shard scenario; meaningful under -race.
func TestSpanConcurrent(t *testing.T) {
	root := StartTrace("scatter")
	kids := make([]*Span, 8)
	for i := range kids {
		kids[i] = root.Child("shard")
	}
	var wg sync.WaitGroup
	for _, k := range kids {
		wg.Add(1)
		go func(k *Span) {
			defer wg.Done()
			k.AddInt("rows", 100)
			k.End()
		}(k)
	}
	for i := 0; i < 50; i++ {
		if _, err := json.Marshal(root); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	root.End()
	if got := len(root.Export().Children); got != 8 {
		t.Fatalf("children: got %d, want 8", got)
	}
}

// TestSpanUnendedExport verifies an unfinished span exports its elapsed
// time rather than zero.
func TestSpanUnendedExport(t *testing.T) {
	sp := StartTrace("live")
	time.Sleep(2 * time.Millisecond)
	if sp.Export().DurationUS <= 0 {
		t.Fatal("unended span should export elapsed time")
	}
}

// TestJSONLog checks line framing, the ts/event injection, and nil
// no-op behavior.
func TestJSONLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLog(&buf)
	l.now = func() time.Time { return time.Unix(1700000000, 0) }
	l.Emit("slow_query", map[string]any{"sql": "SELECT 1", "ms": 12.5})
	l.Emit("slow_query", map[string]any{"sql": "SELECT 2"})

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatal(err)
	}
	if rec["event"] != "slow_query" || rec["sql"] != "SELECT 1" || rec["ms"] != 12.5 {
		t.Fatalf("record: %+v", rec)
	}
	if rec["ts"] == "" {
		t.Fatal("missing ts")
	}

	var nilLog *JSONLog
	nilLog.Emit("x", nil) // must not panic
	if NewJSONLog(nil) != nil {
		t.Fatal("NewJSONLog(nil) must be nil")
	}
}

// The fast paths are the contract: instrumentation sites run on every
// query, traced or not, so SpanFrom and nil-span methods must cost
// nanoseconds. The end-to-end gate lives in internal/shard's
// BenchmarkShardedQueryCtx pair; these isolate the obs layer itself.

func BenchmarkSpanFromTracingOff(b *testing.B) {
	prev := SetTracingEnabled(false)
	defer SetTracingEnabled(prev)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if SpanFrom(ctx) != nil {
			b.Fatal("span from bare context")
		}
	}
}

func BenchmarkSpanFromNoSpan(b *testing.B) {
	prev := SetTracingEnabled(true)
	defer SetTracingEnabled(prev)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if SpanFrom(ctx) != nil {
			b.Fatal("span from bare context")
		}
	}
}

func BenchmarkNilSpanMethods(b *testing.B) {
	var sp *Span
	for i := 0; i < b.N; i++ {
		sp.AddInt("k", 1)
		sp.Child("c").End()
	}
}
