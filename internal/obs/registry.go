// Package obs is the unified observability layer: a dependency-free,
// concurrency-safe metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms with quantile snapshots, exposed in
// Prometheus text format), a per-query trace span tree carried through
// context.Context (the engine behind EXPLAIN ANALYZE), and a JSON-lines
// structured logger (the slow-query log and passd's request log).
//
// Every subsystem in the repository records into one process-wide Default
// registry, so GET /metrics on passd, the periodic self-report, and the
// ad-hoc stats surfaced through GET /tables all read from a single source
// of truth. Instruments are cheap enough for hot paths — a counter
// increment is one atomic add, a histogram observation two atomic adds
// plus a bounded bucket scan — and the trace layer costs one context
// lookup returning nil when no trace is attached (see trace.go).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (atomic).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay
// Prometheus-conformant; the counter does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (atomic float64).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add offsets the gauge value.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reads the gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags a registered family for the # TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindFunc // lazily collected counter or gauge
)

// metric is one registered series. Unlabeled metrics are a family of one:
// name == family and labels is empty. Labeled series (NewLabeledCounter and
// friends) share a family with every other series of the same base name —
// the exposition emits # HELP/# TYPE once per family — and render as
// family{labels}.
type metric struct {
	name   string // series key: family, or family{labels}
	family string // base metric name (the # TYPE subject)
	labels string // rendered label pairs, `k="v",k2="v2"`; "" when unlabeled
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// fn collects the value at scrape time (kindFunc); fnKind says whether
	// it renders as a counter or a gauge.
	fn     func() float64
	fnKind string
}

// Registry is a named collection of metrics. The zero value is not usable;
// use NewRegistry or the package-level Default.
type Registry struct {
	mu    sync.Mutex
	named map[string]*metric
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{named: make(map[string]*metric)}
}

// defaultRegistry is the process-wide registry every subsystem records
// into; passd's GET /metrics serves it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register adds (or replaces) a series under its name. Replacement rather
// than panic keeps re-registration idempotent: tests and multi-session
// processes may wire the same name more than once, and the latest wiring
// wins.
func (r *Registry) register(m *metric) {
	if m.family == "" {
		m.family = m.name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.named[m.name]; !exists {
		r.order = append(r.order, m.name)
	}
	r.named[m.name] = m
}

// Labels renders alternating key/value pairs as Prometheus label syntax:
// Labels("table", "demo", "agg", "sum") → `table="demo",agg="sum"`. Values
// are quoted with escaping; an odd trailing key is ignored.
func Labels(pairs ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(pairs); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteByte('=')
		b.WriteString(fmt.Sprintf("%q", pairs[i+1]))
	}
	return b.String()
}

// seriesKey composes the registry key of a (family, labels) pair.
func seriesKey(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// suffixSeries inserts a name suffix before the label braces, so derived
// series of a labeled family stay Prometheus-shaped:
// suffixSeries(`h{agg="sum"}`, "_count") → `h_count{agg="sum"}`.
func suffixSeries(key, suffix string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + suffix + key[i:]
	}
	return key + suffix
}

// NewCounter registers and returns a counter. Re-registering a name
// returns the existing counter, so package-level instruments are safe to
// declare from multiple call sites.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.NewLabeledCounter(name, "", help)
}

// NewLabeledCounter registers a counter series under family name with the
// given label pairs (rendered by Labels; "" for none). Series of one
// family share a # HELP/# TYPE header in the exposition. Re-registration
// returns the existing series.
func (r *Registry) NewLabeledCounter(name, labels, help string) *Counter {
	key := seriesKey(name, labels)
	r.mu.Lock()
	if m, ok := r.named[key]; ok && m.counter != nil {
		r.mu.Unlock()
		return m.counter
	}
	r.mu.Unlock()
	c := &Counter{}
	r.register(&metric{name: key, family: name, labels: labels, help: help, kind: kindCounter, counter: c})
	return c
}

// NewGauge registers and returns a gauge (reusing an existing registration
// of the same name, like NewCounter).
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.NewLabeledGauge(name, "", help)
}

// NewLabeledGauge registers a gauge series under family name with the
// given label pairs (see NewLabeledCounter).
func (r *Registry) NewLabeledGauge(name, labels, help string) *Gauge {
	key := seriesKey(name, labels)
	r.mu.Lock()
	if m, ok := r.named[key]; ok && m.gauge != nil {
		r.mu.Unlock()
		return m.gauge
	}
	r.mu.Unlock()
	g := &Gauge{}
	r.register(&metric{name: key, family: name, labels: labels, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewHistogram registers and returns a histogram with the given upper
// bucket bounds (ascending; +Inf is implicit). nil bounds use
// DefaultLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.NewLabeledHistogram(name, "", help, bounds)
}

// NewLabeledHistogram registers a histogram series under family name with
// the given label pairs (see NewLabeledCounter). Its _bucket/_sum/_count
// samples carry the labels alongside le.
func (r *Registry) NewLabeledHistogram(name, labels, help string, bounds []float64) *Histogram {
	key := seriesKey(name, labels)
	r.mu.Lock()
	if m, ok := r.named[key]; ok && m.hist != nil {
		r.mu.Unlock()
		return m.hist
	}
	r.mu.Unlock()
	h := NewHistogram(bounds)
	r.register(&metric{name: key, family: name, labels: labels, help: help, kind: kindHistogram, hist: h})
	return h
}

// CounterFunc registers a lazily collected counter: fn is called at scrape
// time. Use it to expose counters owned by another subsystem (the plan
// cache, a shard engine) without duplicating their state.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindFunc, fn: fn, fnKind: "counter"})
}

// GaugeFunc registers a lazily collected gauge (see CounterFunc).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindFunc, fn: fn, fnKind: "gauge"})
}

// Unregister removes a family by name (used by serving layers that wire
// collector funcs against a session being torn down).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.named[name]; !ok {
		return
	}
	delete(r.named, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// snapshotMetrics copies the registration list under the lock so the
// (possibly slow) collector funcs run outside it.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.order))
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, n := range names {
		out = append(out, r.named[n])
	}
	return out
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE comments (emitted
// once per family — labeled series of one base name share a header)
// followed by the samples, histograms as cumulative _bucket{le="..."}
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	headed := make(map[string]bool)
	for _, m := range r.snapshotMetrics() {
		if err := writeFamily(w, m, headed); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, m *metric, headed map[string]bool) error {
	typ := ""
	switch m.kind {
	case kindCounter:
		typ = "counter"
	case kindGauge:
		typ = "gauge"
	case kindHistogram:
		typ = "histogram"
	case kindFunc:
		typ = m.fnKind
	}
	if !headed[m.family] {
		headed[m.family] = true
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.family, strings.ReplaceAll(m.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.family, typ); err != nil {
			return err
		}
	}
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
		return err
	case kindFunc:
		_, err := fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
		return err
	case kindHistogram:
		return writeHistogram(w, m.family, m.labels, m.hist)
	}
	return nil
}

func writeHistogram(w io.Writer, family, labels string, h *Histogram) error {
	snap := h.Snapshot()
	// bucket series carry the family labels alongside le
	le := func(bound string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", bound)
		}
		return fmt.Sprintf("{%s,le=%q}", labels, bound)
	}
	cum := int64(0)
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, le(formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += snap.Counts[len(snap.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, le("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", suffixSeries(seriesKey(family, labels), "_sum"), formatFloat(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixSeries(seriesKey(family, labels), "_count"), snap.Count)
	return err
}

// Collect flattens every registered series into a name → value map: the
// numeric snapshot behind the metrics history ring buffer and any JSON
// reporting surface. Counters, gauges and collector funcs contribute one
// entry under their series name; histograms contribute derived series
// (name_count, name_sum, name_p50/p95/p99, labels preserved). Collector
// funcs run outside the registry lock, like WritePrometheus.
func (r *Registry) Collect() map[string]float64 {
	ms := r.snapshotMetrics()
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		switch m.kind {
		case kindCounter:
			out[m.name] = float64(m.counter.Value())
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindFunc:
			out[m.name] = m.fn()
		case kindHistogram:
			snap := m.hist.Snapshot()
			out[suffixSeries(m.name, "_count")] = float64(snap.Count)
			out[suffixSeries(m.name, "_sum")] = snap.Sum
			out[suffixSeries(m.name, "_p50")] = snap.P50
			out[suffixSeries(m.name, "_p95")] = snap.P95
			out[suffixSeries(m.name, "_p99")] = snap.P99
		}
	}
	return out
}

// formatFloat renders a float the way Prometheus expects: integers
// without a mantissa, everything else in shortest-roundtrip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
