package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets spans 100µs to 10s in roughly-exponential steps,
// wide enough for both sub-millisecond synopsis probes and multi-second
// degraded scatters.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets (upper bounds set at
// construction, +Inf implicit) and tracks the running sum. All methods
// are safe for concurrent use; Observe is two atomic adds plus a bounded
// scan over at most len(bounds) float64 comparisons.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given ascending upper bounds;
// nil or empty bounds select DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a consistent-enough point-in-time read of a
// histogram (buckets are read individually, so totals may lag by a few
// in-flight observations — fine for reporting).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is +Inf
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Snapshot reads the buckets and derives p50/p95/p99 by linear
// interpolation within the winning bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0..1) from the snapshot's bucket
// counts: find the bucket containing the target rank and interpolate
// linearly between its bounds. Values in the +Inf bucket report the last
// finite bound (an underestimate, as with Prometheus histogram_quantile).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}
