package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// TestRegisterRuntimeMetrics checks the Go runtime collectors report live
// values and appear on the exposition.
func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent

	vals := r.Collect()
	if vals["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %g, want >= 1", vals["go_goroutines"])
	}
	if vals["go_heap_bytes"] <= 0 {
		t.Fatalf("go_heap_bytes = %g, want > 0", vals["go_heap_bytes"])
	}
	runtime.GC()
	if p := r.Collect()["go_gc_pause_p99_seconds"]; p < 0 {
		t.Fatalf("go_gc_pause_p99_seconds = %g, want >= 0", p)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"go_goroutines", "go_heap_bytes", "go_gc_pause_p99_seconds"} {
		if !strings.Contains(buf.String(), "# TYPE "+name+" gauge") {
			t.Errorf("exposition missing %s:\n%s", name, buf.String())
		}
	}
}
