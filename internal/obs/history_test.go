package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestHistoryRecordAndWraparound fills the ring past capacity and checks
// the window keeps only the newest samples, oldest-first.
func TestHistoryRecordAndWraparound(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("h_ops_total", "")
	h := NewHistory(r, 4)
	for i := 0; i < 7; i++ {
		c.Inc()
		h.Record()
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", h.Len())
	}
	samples := h.Samples()
	if len(samples) != 4 {
		t.Fatalf("Samples len = %d, want 4", len(samples))
	}
	// Counter went 1..7; the surviving window is 4..7 oldest-first.
	for i, want := range []float64{4, 5, 6, 7} {
		if got := samples[i].Values["h_ops_total"]; got != want {
			t.Errorf("sample %d: got %g, want %g", i, got, want)
		}
	}
	pts := h.Series("h_ops_total")
	if len(pts) != 4 || pts[3].V != 7 {
		t.Fatalf("Series: got %+v", pts)
	}
	if v, ok := h.Last("h_ops_total"); !ok || v != 7 {
		t.Fatalf("Last: got %g ok=%v", v, ok)
	}
	if _, ok := h.Last("missing"); ok {
		t.Fatal("Last on unknown series must report !ok")
	}
}

// TestHistoryRate checks the windowed counter-rate math, including the
// reset clamp, against hand-built samples with fixed timestamps.
func TestHistoryRate(t *testing.T) {
	r := NewRegistry()
	h := NewHistory(r, 8)
	if _, ok := h.Rate("x", time.Minute); ok {
		t.Fatal("Rate on empty history must report !ok")
	}

	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	put := func(at time.Time, v float64) {
		h.buf[h.next] = HistorySample{T: at, Values: map[string]float64{"x": v}}
		h.next++
	}
	put(t0, 100)
	if _, ok := h.Rate("x", time.Minute); ok {
		t.Fatal("Rate with one sample must report !ok")
	}
	put(t0.Add(10*time.Second), 150)
	put(t0.Add(20*time.Second), 180)

	// Full window: (180-100)/20s = 4/s.
	if per, ok := h.Rate("x", time.Minute); !ok || per != 4 {
		t.Fatalf("Rate full window: got %g ok=%v, want 4", per, ok)
	}
	// Window covering only the last two samples: (180-150)/10s = 3/s.
	if per, ok := h.Rate("x", 15*time.Second); !ok || per != 3 {
		t.Fatalf("Rate trailing window: got %g ok=%v, want 3", per, ok)
	}

	// Counter reset: a later sample below the earlier one clamps to 0.
	put(t0.Add(30*time.Second), 5)
	if per, ok := h.Rate("x", 15*time.Second); !ok || per != 0 {
		t.Fatalf("Rate across reset: got %g ok=%v, want 0 true", per, ok)
	}
}

// TestHistoryStartStop exercises the background sampler lifecycle,
// including Stop-before-Start and double-Stop.
func TestHistoryStartStop(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("g", "").Set(1)

	idle := NewHistory(r, 4)
	idle.Stop() // never started: must not hang
	idle.Stop()

	h := NewHistory(r, 16)
	h.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for h.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.Len() < 2 {
		t.Fatal("background sampler recorded no samples")
	}
	if h.Interval() != time.Millisecond {
		t.Fatalf("Interval = %v", h.Interval())
	}
	h.Stop()
	h.Stop()
	n := h.Len()
	time.Sleep(10 * time.Millisecond)
	if h.Len() != n {
		t.Fatal("sampler still recording after Stop")
	}
}

// TestHistorySnapshotDuringScrapeRace hammers Record concurrently with
// Samples/Rate readers and full registry scrapes (meaningful under -race).
func TestHistorySnapshotDuringScrapeRace(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("race_ops_total", "")
	hist := r.NewHistogram("race_lat", "", []float64{0.01, 0.1})
	h := NewHistory(r, 8)

	var wg sync.WaitGroup
	const iters = 300
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			c.Inc()
			hist.Observe(0.05)
			h.Record()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			for _, s := range h.Samples() {
				_ = s.Values["race_ops_total"]
			}
			h.Series("race_lat_p99")
			h.Rate("race_ops_total", time.Minute)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = r.Collect()
		}
	}()
	wg.Wait()
}
