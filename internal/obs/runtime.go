package obs

import (
	"runtime/metrics"
)

// Go runtime collectors: the process itself (scheduler, heap, GC) exposed
// through the same registry as every serving metric, so a /metrics scrape
// explains "the query path is fine but the process is drowning" without a
// second agent. Readings are taken lazily at scrape time via
// runtime/metrics — registering costs nothing between scrapes.

// runtimeMetricNames are the runtime/metrics samples the collectors read.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
)

// RegisterRuntimeMetrics wires the Go runtime collectors onto reg (nil
// uses Default()): goroutine count, live heap bytes, and the p99 GC
// stop-the-world pause since process start. Idempotent — re-registration
// replaces the collector funcs.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	reg.GaugeFunc("go_goroutines", "goroutines currently live",
		func() float64 { return readRuntimeValue(rmGoroutines) })
	reg.GaugeFunc("go_heap_bytes", "bytes of live heap objects",
		func() float64 { return readRuntimeValue(rmHeapBytes) })
	reg.GaugeFunc("go_gc_pause_p99_seconds", "p99 GC stop-the-world pause since process start",
		func() float64 { return readRuntimeQuantile(rmGCPauses, 0.99) })
}

// readRuntimeValue reads one scalar runtime/metrics sample as float64
// (0 when the metric is unsupported on this Go version).
func readRuntimeValue(name string) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	switch s[0].Value.Kind() {
	case metrics.KindUint64:
		return float64(s[0].Value.Uint64())
	case metrics.KindFloat64:
		return s[0].Value.Float64()
	}
	return 0
}

// readRuntimeQuantile estimates the q-quantile of a runtime/metrics
// Float64Histogram distribution by scanning its cumulative buckets and
// reporting the winning bucket's upper edge (or its lower edge when the
// upper is +Inf).
func readRuntimeQuantile(name string, q float64) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s[0].Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		// Buckets has len(Counts)+1 edges; bucket i spans [i, i+1]
		hi := h.Buckets[i+1]
		if hi > 1e300 || hi != hi { // +Inf or NaN upper edge
			return h.Buckets[i]
		}
		return hi
	}
	return h.Buckets[len(h.Buckets)-1]
}
