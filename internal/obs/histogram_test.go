package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le-semantics: a value exactly on
// an upper bound lands in that bucket, just above it spills to the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	h.Observe(0.5)  // bucket 0 (le=1)
	h.Observe(1)    // bucket 0: boundary is inclusive
	h.Observe(1.01) // bucket 1 (le=2)
	h.Observe(2)    // bucket 1
	h.Observe(5)    // bucket 2 (le=5)
	h.Observe(5.1)  // +Inf bucket
	h.Observe(100)  // +Inf bucket

	s := h.Snapshot()
	want := []int64{2, 2, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count: got %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-114.61) > 1e-9 {
		t.Errorf("sum: got %g, want 114.61", s.Sum)
	}
}

// TestHistogramQuantiles checks interpolation inside a known bucket and
// the +Inf clamp.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in bucket (10,20]
	}
	s := h.Snapshot()
	// rank 50 of 100 all in one bucket: interpolate halfway through 10..20.
	if s.P50 < 10 || s.P50 > 20 {
		t.Errorf("p50 %g outside bucket (10,20]", s.P50)
	}
	if s.P99 < 10 || s.P99 > 20 {
		t.Errorf("p99 %g outside bucket (10,20]", s.P99)
	}

	h2 := NewHistogram([]float64{1})
	h2.Observe(50) // +Inf bucket
	if q := h2.Snapshot().Quantile(0.5); q != 1 {
		t.Errorf("+Inf-bucket quantile clamps to last bound: got %g, want 1", q)
	}

	var empty HistogramSnapshot
	empty.Bounds = []float64{1}
	empty.Counts = []int64{0, 0}
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile: got %g, want 0", q)
	}
}

// TestHistogramConcurrentRecording hammers Observe from many goroutines
// (run under -race in CI) and checks nothing is lost.
func TestHistogramConcurrentRecording(t *testing.T) {
	h := NewHistogram(nil)
	const workers, each = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(seed*each+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count: got %d, want %d", s.Count, workers*each)
	}
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total != workers*each {
		t.Fatalf("bucket sum: got %d, want %d", total, workers*each)
	}
	// Sum of 0..(workers*each-1) microseconds.
	n := float64(workers * each)
	wantSum := n * (n - 1) / 2 * 1e-6
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum+1e-9 {
		t.Fatalf("sum: got %g, want %g", s.Sum, wantSum)
	}
}

// TestCounterGaugeConcurrent exercises the scalar instruments under -race.
func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter: got %d, want 8000", c.Value())
	}
	if math.Abs(g.Value()-4000) > 1e-9 {
		t.Fatalf("gauge: got %g, want 4000", g.Value())
	}
}
