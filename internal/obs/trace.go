package obs

import (
	"context"
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// tracingEnabled gates the context lookup itself: when false, SpanFrom
// returns nil without touching ctx, making the hot path byte-identical to
// a build without tracing. It defaults to on; the overhead benchmark
// flips it to measure the floor.
var tracingEnabled atomic.Bool

func init() { tracingEnabled.Store(true) }

// SetTracingEnabled toggles trace-context propagation process-wide.
// Returns the previous value so benchmarks can restore it.
func SetTracingEnabled(on bool) bool { return tracingEnabled.Swap(on) }

// TracingEnabled reports whether trace propagation is on.
func TracingEnabled() bool { return tracingEnabled.Load() }

// spanKey is the context key for the active span.
type spanKey struct{}

// Span is one timed node in a query trace tree. All methods are nil-safe
// no-ops on a nil receiver, so instrumentation sites write
// `sp := obs.SpanFrom(ctx)` once and call through unconditionally — the
// untraced path costs a single nil check per call site. Methods are
// mutex-guarded because scatter-gather shard goroutines may still be
// ending their child spans (stragglers past a deadline) while the parent
// is being marshaled.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    map[string]any
	children []*Span
}

// StartTrace creates a root span. The caller must End it before
// marshaling.
func StartTrace(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// WithSpan returns a context carrying sp; SpanFrom retrieves it.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the span attached to ctx, or nil. This is the fast
// path every instrumented layer takes: when tracing is globally off it is
// one atomic load; when on but no trace is attached, one context lookup.
func SpanFrom(ctx context.Context) *Span {
	if !tracingEnabled.Load() {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Child starts a new child span under sp. Safe to call from multiple
// goroutines; returns nil if sp is nil.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	sp.mu.Lock()
	sp.children = append(sp.children, c)
	sp.mu.Unlock()
	return c
}

// End stops the span's clock. Repeated calls keep the first duration.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if !sp.ended {
		sp.dur = time.Since(sp.start)
		sp.ended = true
	}
	sp.mu.Unlock()
}

// Set records an attribute on the span (overwrites on repeat).
func (sp *Span) Set(key string, v any) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = make(map[string]any, 8)
	}
	sp.attrs[key] = v
	sp.mu.Unlock()
}

// AddInt adds delta to an integer attribute, creating it at delta.
func (sp *Span) AddInt(key string, delta int64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = make(map[string]any, 8)
	}
	if cur, ok := sp.attrs[key].(int64); ok {
		sp.attrs[key] = cur + delta
	} else {
		sp.attrs[key] = delta
	}
	sp.mu.Unlock()
}

// Duration returns the span's measured duration (0 until End).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.dur
}

// Attr returns the named attribute value (nil, false when absent or the
// span is nil).
func (sp *Span) Attr(key string) (any, bool) {
	if sp == nil {
		return nil, false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	v, ok := sp.attrs[key]
	return v, ok
}

// SpanJSON is the wire form of a span tree, returned by EXPLAIN ANALYZE.
type SpanJSON struct {
	Name       string         `json:"name"`
	DurationUS int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanJSON    `json:"children,omitempty"`
}

// Export deep-copies the tree into its JSON form. Spans not yet ended
// report their elapsed time so far, so stragglers never export zero.
func (sp *Span) Export() *SpanJSON {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	out := &SpanJSON{Name: sp.name}
	d := sp.dur
	if !sp.ended {
		d = time.Since(sp.start)
	}
	out.DurationUS = d.Microseconds()
	if len(sp.attrs) > 0 {
		out.Attrs = make(map[string]any, len(sp.attrs))
		for k, v := range sp.attrs {
			out.Attrs[k] = v
		}
	}
	kids := append([]*Span(nil), sp.children...)
	sp.mu.Unlock()
	for _, c := range kids {
		out.Children = append(out.Children, c.Export())
	}
	return out
}

// MarshalJSON renders the span tree via Export, so a *Span can be placed
// directly in a response struct.
func (sp *Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(sp.Export())
}

// Summary flattens the tree into "name=duration" pairs (depth-first,
// sorted children by name at each level for stable output) — compact
// enough for a slow-query-log line.
func (sp *Span) Summary() map[string]int64 {
	out := make(map[string]int64)
	var walk func(s *Span)
	walk = func(s *Span) {
		if s == nil {
			return
		}
		s.mu.Lock()
		d := s.dur
		if !s.ended {
			d = time.Since(s.start)
		}
		name := s.name
		kids := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		out[name] += d.Microseconds()
		sort.Slice(kids, func(i, j int) bool { return kids[i].name < kids[j].name })
		for _, c := range kids {
			walk(c)
		}
	}
	walk(sp)
	return out
}
