package obs

import (
	"sync"
	"time"
)

// HistorySample is one point-in-time snapshot of every registered series,
// flattened by Registry.Collect. The Values map is written once when the
// sample is taken and never mutated afterwards, so holders of a returned
// sample may read it without synchronization.
type HistorySample struct {
	T      time.Time          `json:"t"`
	Values map[string]float64 `json:"values"`
}

// Point is one (time, value) observation of a single series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// History is an in-memory ring-buffer time series over a metrics
// registry: at a fixed cadence (Start) — or on demand (Record) — it
// snapshots every registered series into a bounded window of samples,
// from which windowed rates and trends (QPS, error rate, p99 drift) can
// be read without an external TSDB. Memory is bounded by
// capacity × series count; old samples are overwritten in place.
//
// All methods are safe for concurrent use, including Record racing
// Samples/Rate and a concurrent registry scrape.
type History struct {
	reg *Registry

	mu       sync.Mutex
	buf      []HistorySample
	next     int
	full     bool
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// DefaultHistoryCapacity holds 15 minutes at the 5-second default cadence.
const DefaultHistoryCapacity = 180

// NewHistory returns a history ring over reg holding the last capacity
// samples (<=0 selects DefaultHistoryCapacity). nil reg uses Default().
func NewHistory(reg *Registry, capacity int) *History {
	if reg == nil {
		reg = Default()
	}
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	return &History{
		reg:  reg,
		buf:  make([]HistorySample, capacity),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the background sampler at the given cadence (<=0
// defaults to 5s) until Stop. Call at most once.
func (h *History) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	h.mu.Lock()
	h.interval = interval
	h.mu.Unlock()
	go func() {
		defer close(h.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.Record()
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit. Safe to
// call multiple times, and before Start (the history simply never ran).
func (h *History) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	select {
	case <-h.done:
	default:
		// Start was never called; nothing to wait for
		h.mu.Lock()
		started := h.interval > 0
		h.mu.Unlock()
		if started {
			<-h.done
		}
	}
}

// Interval reports the sampling cadence (0 before Start).
func (h *History) Interval() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.interval
}

// Record takes one snapshot now. The registry collectors run outside the
// history lock, so a slow collector func never blocks readers.
func (h *History) Record() {
	s := HistorySample{T: time.Now(), Values: h.reg.Collect()}
	h.mu.Lock()
	h.buf[h.next] = s
	h.next++
	if h.next == len(h.buf) {
		h.next = 0
		h.full = true
	}
	h.mu.Unlock()
}

// Len reports how many samples the window currently holds.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.full {
		return len(h.buf)
	}
	return h.next
}

// Samples returns the window oldest-first. The slice is a copy; the
// sample Values maps are shared but immutable once recorded.
func (h *History) Samples() []HistorySample {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.full {
		return append([]HistorySample(nil), h.buf[:h.next]...)
	}
	out := make([]HistorySample, 0, len(h.buf))
	out = append(out, h.buf[h.next:]...)
	return append(out, h.buf[:h.next]...)
}

// Series extracts one named series from the window, oldest-first,
// skipping samples where the series was not yet registered.
func (h *History) Series(name string) []Point {
	samples := h.Samples()
	out := make([]Point, 0, len(samples))
	for _, s := range samples {
		if v, ok := s.Values[name]; ok {
			out = append(out, Point{T: s.T, V: v})
		}
	}
	return out
}

// Last returns the most recent recorded value of a series.
func (h *History) Last(name string) (float64, bool) {
	samples := h.Samples()
	for i := len(samples) - 1; i >= 0; i-- {
		if v, ok := samples[i].Values[name]; ok {
			return v, true
		}
	}
	return 0, false
}

// Rate reports a counter series' per-second increase over the trailing
// window duration (clamped to the recorded range): the windowed QPS /
// error-rate reading. ok is false with fewer than two usable samples.
// Negative deltas (a counter reset, e.g. re-registration) report 0.
func (h *History) Rate(name string, window time.Duration) (perSecond float64, ok bool) {
	samples := h.Samples()
	if len(samples) < 2 {
		return 0, false
	}
	last := samples[len(samples)-1]
	lastV, okLast := last.Values[name]
	if !okLast {
		return 0, false
	}
	cutoff := last.T.Add(-window)
	// earliest sample inside the window that carries the series
	for _, s := range samples {
		if s.T.Before(cutoff) {
			continue
		}
		v, okv := s.Values[name]
		if !okv || s.T.Equal(last.T) {
			continue
		}
		dt := last.T.Sub(s.T).Seconds()
		if dt <= 0 {
			return 0, false
		}
		d := lastV - v
		if d < 0 {
			d = 0
		}
		return d / dt, true
	}
	return 0, false
}
