package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONLog writes one JSON object per line to an io.Writer, serialized by
// a mutex so concurrent emitters never interleave bytes. It backs both
// the slow-query log and passd's per-request log.
type JSONLog struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // swappable for tests
}

// NewJSONLog wraps w as a line-oriented JSON log. A nil w yields a nil
// *JSONLog, whose Emit is a no-op — callers can wire the log
// unconditionally and let configuration decide.
func NewJSONLog(w io.Writer) *JSONLog {
	if w == nil {
		return nil
	}
	return &JSONLog{w: w, now: time.Now}
}

// Emit writes fields as one JSON line, adding a "ts" RFC3339Nano
// timestamp and an "event" tag. Marshal failures drop the record rather
// than corrupt the stream; fields must therefore be JSON-encodable.
func (l *JSONLog) Emit(event string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["event"] = event
	l.mu.Lock()
	rec["ts"] = l.now().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(rec)
	if err == nil {
		b = append(b, '\n')
		l.w.Write(b)
	}
	l.mu.Unlock()
}
