package sqlfe

import (
	"container/list"
	"sync"
)

// PlanCache is a bounded, concurrency-safe LRU of prepared statements
// keyed by normalized template text. Entries carry a validity pair —
// an owner token (the table identity the plan was compiled against) and a
// generation (the table's plan generation, bumped on schema/engine swap) —
// and a lookup whose pair no longer matches behaves as a miss and drops
// the stale entry, so plans can never outlive the schema they were
// resolved with. A nil *PlanCache is valid and disables caching.
type PlanCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	idx map[string]*list.Element

	hits, misses, evictions int64
}

// planEntry is one cached prepared statement with its validity pair.
type planEntry struct {
	key   string
	prep  *Prepared
	owner any
	gen   uint64
}

// NewPlanCache builds a plan cache holding at most capacity prepared
// statements. capacity <= 0 returns nil (caching disabled).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	return &PlanCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[string]*list.Element, capacity),
	}
}

// Lookup returns the cached prepared statement for a template, provided it
// was stored under the same owner and generation. A stale entry (owner or
// generation mismatch — the table was swapped, dropped, or re-registered)
// is evicted and reported as a miss.
func (c *PlanCache) Lookup(template string, owner any, gen uint64) (*Prepared, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[template]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.owner != owner || e.gen != gen {
		c.ll.Remove(el)
		delete(c.idx, template)
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.prep, true
}

// Store inserts (or refreshes) a prepared statement under its validity
// pair, evicting the least recently used entry when over capacity.
func (c *PlanCache) Store(template string, owner any, gen uint64, prep *Prepared) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[template]; ok {
		e := el.Value.(*planEntry)
		e.prep, e.owner, e.gen = prep, owner, gen
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&planEntry{key: template, prep: prep, owner: owner, gen: gen})
	c.idx[template] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*planEntry).key)
		c.evictions++
	}
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int
}

// Stats snapshots the cache counters. A nil cache reports zeros.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
	}
}
