package sqlfe

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func taxiSchema() Schema {
	return Schema{
		PredColumns: []string{"pickup_time", "pickup_date", "pu_location"},
		AggColumn:   "trip_distance",
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT SUM(x) FROM t WHERE a >= 1.5 AND b <= -2e3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
	text := []string{}
	for _, tk := range toks {
		text = append(text, tk.text)
	}
	joined := strings.Join(text, " ")
	for _, want := range []string{"SELECT", "SUM", "(", "x", ")", ">=", "1.5", "-2e3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing token %q in %q", want, joined)
		}
	}
}

func TestLexStringsAndErrors(t *testing.T) {
	toks, err := lex("WHERE name = 'O''Hare'")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "O'Hare" {
			found = true
		}
	}
	if !found {
		t.Error("escaped string not lexed")
	}
	if _, err := lex("WHERE a = 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("WHERE a = #"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParseFullStatement(t *testing.T) {
	stmt, err := Parse("SELECT AVG(trip_distance) FROM trips WHERE pickup_time BETWEEN 7 AND 10 AND pickup_date >= 5 GROUP BY pu_location")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Agg != dataset.Avg || stmt.AggColumn != "trip_distance" || stmt.Table != "trips" {
		t.Errorf("head parsed wrong: %+v", stmt)
	}
	if len(stmt.Conds) != 2 {
		t.Fatalf("conds = %d", len(stmt.Conds))
	}
	if stmt.Conds[0].Op != OpBetween || stmt.Conds[0].Lo != 7 || stmt.Conds[0].Hi != 10 {
		t.Errorf("BETWEEN parsed wrong: %+v", stmt.Conds[0])
	}
	if stmt.Conds[1].Op != OpGe || stmt.Conds[1].Lo != 5 {
		t.Errorf(">= parsed wrong: %+v", stmt.Conds[1])
	}
	if stmt.GroupBy != "pu_location" {
		t.Errorf("group by = %q", stmt.GroupBy)
	}
}

func TestParseCountStar(t *testing.T) {
	stmt, err := Parse("select count(*) from t")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Agg != dataset.Count || stmt.AggColumn != "*" {
		t.Errorf("%+v", stmt)
	}
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Error("SUM(*) accepted")
	}
}

func TestParseRejections(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"SELECT MEDIAN(x) FROM t",
		"SELECT SUM(x) FROM t WHERE a = 1 OR b = 2",
		"SELECT SUM(x) FROM t WHERE a != 3",
		"SELECT SUM(x) FROM t WHERE a <> 3",
		"SELECT SUM(x) FROM t trailing garbage",
		"SELECT SUM(x) FROM t GROUP BY",
		"SELECT SUM(x FROM t",
		"SELECT SUM(x) FROM t WHERE BETWEEN 1 AND 2",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted invalid SQL: %q", sql)
		}
	}
}

func TestCompileRect(t *testing.T) {
	plan, err := ParseAndCompile(
		"SELECT SUM(trip_distance) FROM trips WHERE pickup_time >= 7 AND pickup_time <= 10 AND pu_location = 42",
		taxiSchema())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Agg != dataset.Sum {
		t.Errorf("agg = %v", plan.Agg)
	}
	r := plan.Rect
	if r.Lo[0] != 7 || r.Hi[0] != 10 {
		t.Errorf("time bounds = [%v, %v]", r.Lo[0], r.Hi[0])
	}
	if !math.IsInf(r.Lo[1], -1) || !math.IsInf(r.Hi[1], 1) {
		t.Errorf("unconstrained date should be infinite: [%v, %v]", r.Lo[1], r.Hi[1])
	}
	if r.Lo[2] != 42 || r.Hi[2] != 42 {
		t.Errorf("equality bounds = [%v, %v]", r.Lo[2], r.Hi[2])
	}
}

func TestCompileIntersectsRepeatedColumns(t *testing.T) {
	plan, err := ParseAndCompile(
		"SELECT SUM(trip_distance) FROM t WHERE pickup_time >= 5 AND pickup_time >= 8 AND pickup_time <= 20 AND pickup_time <= 15",
		taxiSchema())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rect.Lo[0] != 8 || plan.Rect.Hi[0] != 15 {
		t.Errorf("intersection = [%v, %v], want [8, 15]", plan.Rect.Lo[0], plan.Rect.Hi[0])
	}
}

func TestCompileStrictOps(t *testing.T) {
	plan, err := ParseAndCompile(
		"SELECT SUM(trip_distance) FROM t WHERE pickup_time > 5 AND pickup_time < 10", taxiSchema())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rect.Lo[0] <= 5 || plan.Rect.Hi[0] >= 10 {
		t.Errorf("strict bounds not tightened: [%v, %v]", plan.Rect.Lo[0], plan.Rect.Hi[0])
	}
	if plan.Rect.Lo[0] > 5.000001 || plan.Rect.Hi[0] < 9.999999 {
		t.Errorf("strict bounds over-tightened: [%v, %v]", plan.Rect.Lo[0], plan.Rect.Hi[0])
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := ParseAndCompile("SELECT SUM(fare) FROM t", taxiSchema()); err == nil {
		t.Error("wrong aggregate column accepted")
	}
	if _, err := ParseAndCompile("SELECT SUM(trip_distance) FROM t WHERE bogus = 1", taxiSchema()); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := ParseAndCompile("SELECT SUM(trip_distance) FROM t GROUP BY bogus", taxiSchema()); err == nil {
		t.Error("unknown group column accepted")
	}
	if _, err := ParseAndCompile("SELECT SUM(trip_distance) FROM t WHERE pickup_time = 'x'", taxiSchema()); err == nil {
		t.Error("string compared against dictionary-less column accepted")
	}
}

func TestCompileWithDictionary(t *testing.T) {
	codes, dict := dataset.Encode([]string{"bronx", "brooklyn", "manhattan", "queens"})
	_ = codes
	schema := Schema{
		PredColumns: []string{"borough", "hour"},
		AggColumn:   "fare",
		Dicts:       map[string]*dataset.Dict{"borough": dict},
	}
	plan, err := ParseAndCompile(
		"SELECT AVG(fare) FROM t WHERE borough = 'manhattan' AND hour BETWEEN 7 AND 9", schema)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := dict.Code("manhattan")
	if plan.Rect.Lo[0] != want || plan.Rect.Hi[0] != want {
		t.Errorf("dictionary equality = [%v, %v], want %v", plan.Rect.Lo[0], plan.Rect.Hi[0], want)
	}
	if _, err := ParseAndCompile("SELECT AVG(fare) FROM t WHERE borough = 'atlantis'", schema); err == nil {
		t.Error("unknown category accepted")
	}
	// group by a dictionary column yields all codes
	plan, err = ParseAndCompile("SELECT AVG(fare) FROM t GROUP BY borough", schema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GroupDim != 0 || len(plan.Groups) != 4 || plan.GroupDict == nil {
		t.Errorf("group plan = %+v", plan)
	}
}

func TestSchemaFromColNames(t *testing.T) {
	s := SchemaFromColNames([]string{"a", "b", "v"})
	if len(s.PredColumns) != 2 || s.AggColumn != "v" {
		t.Errorf("%+v", s)
	}
	if s2 := SchemaFromColNames(nil); len(s2.PredColumns) != 0 {
		t.Errorf("empty schema: %+v", s2)
	}
}

func TestCompileTableCheck(t *testing.T) {
	schema := taxiSchema()
	// a detached schema (no table name) accepts any FROM table — the
	// historical single-synopsis behavior.
	if _, err := ParseAndCompile("SELECT SUM(trip_distance) FROM whatever", schema); err != nil {
		t.Errorf("detached schema should accept any table: %v", err)
	}
	// a named schema rejects mismatches, case-insensitively.
	schema.Table = "trips"
	if _, err := ParseAndCompile("SELECT SUM(trip_distance) FROM TRIPS", schema); err != nil {
		t.Errorf("case-insensitive table match failed: %v", err)
	}
	_, err := ParseAndCompile("SELECT SUM(trip_distance) FROM rides", schema)
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("mismatched table error = %v", err)
	}
}

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SELECT SUM(x) FROM t", []string{"SELECT SUM(x) FROM t"}},
		{"a; b ;; c;", []string{"a", "b", "c"}},
		{"", nil},
		{" ;; ", nil},
		{"SELECT SUM(x) FROM t WHERE c = 'a;b'; SELECT COUNT(*) FROM t",
			[]string{"SELECT SUM(x) FROM t WHERE c = 'a;b'", "SELECT COUNT(*) FROM t"}},
		{"SELECT SUM(x) FROM t WHERE c = 'it''s;fine'",
			[]string{"SELECT SUM(x) FROM t WHERE c = 'it''s;fine'"}},
	}
	for _, c := range cases {
		got := SplitStatements(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitStatements(%q) = %q, want %q", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitStatements(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}
