package sqlfe

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sketch"
)

// Stmt is the parsed form of a supported SELECT statement, before schema
// resolution.
type Stmt struct {
	// Agg is the moment-family aggregate; meaningless when Sketch is
	// non-nil.
	Agg dataset.AggKind
	// AggColumn is the aggregated column name; "*" for COUNT(*).
	AggColumn string
	Table     string
	// Conds are the conjunctive predicates of the WHERE clause.
	Conds []Cond
	// GroupBy is the grouping column, or "" if absent.
	GroupBy string
	// Sketch is non-nil for sketch-family aggregates — QUANTILE(col, q),
	// COUNT(DISTINCT col), TOPK(col, k) — which execute against the
	// table's mergeable sketches instead of the sample synopsis.
	Sketch *SketchSpec
}

// SketchSpec is the parsed shape of a sketch-family aggregate. Arg is the
// quantile fraction or k; zero for COUNT DISTINCT, which takes none.
type SketchSpec struct {
	Kind sketch.Kind
	Arg  float64
}

// CondOp is a comparison operator.
type CondOp int

// Comparison operators recognised in WHERE clauses.
const (
	OpEq CondOp = iota
	OpLe
	OpGe
	OpLt
	OpGt
	OpBetween
)

// Cond is one predicate: Column Op Value (or BETWEEN Lo AND Hi). String
// literals carry Str for dictionary resolution.
type Cond struct {
	Column string
	Op     CondOp
	Lo, Hi float64
	// StrLo/StrHi hold string literals (for dictionary-encoded columns);
	// IsString reports their presence.
	StrLo, StrHi string
	IsString     bool
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SELECT statement of the supported class.
func Parse(sql string) (*Stmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlfe: unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqlfe: expected %s near %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.pos++
		return nil
	}
	return fmt.Errorf("sqlfe: expected %q near %q", sym, p.cur().text)
}

func (p *parser) selectStmt() (*Stmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &Stmt{}
	// aggregate function
	fn := p.advance()
	if fn.kind != tokIdent {
		return nil, fmt.Errorf("sqlfe: expected aggregate function, got %q", fn.text)
	}
	kind, err := dataset.ParseAggKind(fn.text)
	if err != nil {
		if err := p.sketchAgg(stmt, fn.text); err != nil {
			return nil, err
		}
	} else {
		stmt.Agg = kind
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		arg := p.advance()
		switch {
		case arg.kind == tokSymbol && arg.text == "*":
			if kind != dataset.Count {
				return nil, fmt.Errorf("sqlfe: %s(*) is not supported; name a column", kind)
			}
			stmt.AggColumn = "*"
		case arg.kind == tokIdent:
			// COUNT(DISTINCT col) routes to the distinct sketch; a lone
			// identifier "distinct" (next token is the closing paren) is
			// still a plain column reference.
			if kind == dataset.Count && strings.EqualFold(arg.text, "DISTINCT") && p.cur().kind == tokIdent {
				stmt.AggColumn = p.advance().text
				stmt.Sketch = &SketchSpec{Kind: sketch.KindDistinct}
			} else {
				stmt.AggColumn = arg.text
			}
		default:
			return nil, fmt.Errorf("sqlfe: expected column or * in aggregate, got %q", arg.text)
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl := p.advance()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("sqlfe: expected table name, got %q", tbl.text)
	}
	stmt.Table = tbl.text
	// optional WHERE
	if p.keyword("WHERE") {
		for {
			c, err := p.cond()
			if err != nil {
				return nil, err
			}
			stmt.Conds = append(stmt.Conds, c)
			if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "OR") {
				return nil, fmt.Errorf("sqlfe: OR is not supported — PASS answers rectangular (conjunctive) predicates")
			}
			if !p.keyword("AND") {
				break
			}
		}
	}
	// optional GROUP BY
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col := p.advance()
		if col.kind != tokIdent {
			return nil, fmt.Errorf("sqlfe: expected grouping column, got %q", col.text)
		}
		stmt.GroupBy = col.text
	}
	return stmt, nil
}

// sketchAgg parses the two-argument sketch aggregates QUANTILE(col, q)
// and TOPK(col, k), reached when the function name is not a moment-family
// aggregate. Argument range checks live in Compile, alongside the other
// schema-independent plan validation.
func (p *parser) sketchAgg(stmt *Stmt, fn string) error {
	var kind sketch.Kind
	switch {
	case strings.EqualFold(fn, "QUANTILE"):
		kind = sketch.KindQuantile
	case strings.EqualFold(fn, "TOPK"):
		kind = sketch.KindTopK
	default:
		return fmt.Errorf("sqlfe: %q is not a supported aggregate (SUM/COUNT/AVG/MIN/MAX/QUANTILE/TOPK/COUNT DISTINCT)", fn)
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	col := p.advance()
	if col.kind != tokIdent {
		return fmt.Errorf("sqlfe: expected column in %s, got %q", kind, col.text)
	}
	stmt.AggColumn = col.text
	if err := p.expectSymbol(","); err != nil {
		return err
	}
	arg := p.advance()
	if arg.kind != tokNumber {
		return fmt.Errorf("sqlfe: %s needs a numeric second argument, got %q", kind, arg.text)
	}
	v, err := strconv.ParseFloat(arg.text, 64)
	if err != nil {
		return fmt.Errorf("sqlfe: bad number %q", arg.text)
	}
	if err := p.expectSymbol(")"); err != nil {
		return err
	}
	stmt.Sketch = &SketchSpec{Kind: kind, Arg: v}
	return nil
}

func (p *parser) cond() (Cond, error) {
	col := p.advance()
	if col.kind != tokIdent {
		return Cond{}, fmt.Errorf("sqlfe: expected column name in WHERE, got %q", col.text)
	}
	c := Cond{Column: col.text}
	// BETWEEN a AND b
	if p.keyword("BETWEEN") {
		lo, sLo, isStr, err := p.value()
		if err != nil {
			return Cond{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return Cond{}, err
		}
		hi, sHi, isStr2, err := p.value()
		if err != nil {
			return Cond{}, err
		}
		if isStr != isStr2 {
			return Cond{}, fmt.Errorf("sqlfe: BETWEEN bounds must both be numbers or both strings")
		}
		c.Op = OpBetween
		c.Lo, c.Hi = lo, hi
		c.StrLo, c.StrHi, c.IsString = sLo, sHi, isStr
		return c, nil
	}
	op := p.advance()
	if op.kind != tokSymbol {
		return Cond{}, fmt.Errorf("sqlfe: expected comparison operator after %q, got %q", col.text, op.text)
	}
	switch op.text {
	case "=":
		c.Op = OpEq
	case "<=":
		c.Op = OpLe
	case ">=":
		c.Op = OpGe
	case "<":
		c.Op = OpLt
	case ">":
		c.Op = OpGt
	case "<>", "!=":
		return Cond{}, fmt.Errorf("sqlfe: != predicates are not rectangular and are not supported")
	default:
		return Cond{}, fmt.Errorf("sqlfe: unsupported operator %q", op.text)
	}
	v, s, isStr, err := p.value()
	if err != nil {
		return Cond{}, err
	}
	c.Lo, c.Hi = v, v
	c.StrLo, c.StrHi, c.IsString = s, s, isStr
	return c, nil
}

// value parses a numeric or string literal.
func (p *parser) value() (float64, string, bool, error) {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, "", false, fmt.Errorf("sqlfe: bad number %q", t.text)
		}
		return v, "", false, nil
	case tokString:
		return math.NaN(), t.text, true, nil
	}
	return 0, "", false, fmt.Errorf("sqlfe: expected a literal, got %q", t.text)
}
