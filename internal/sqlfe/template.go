package sqlfe

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sketch"
)

// This file implements statement normalization and prepared statements:
// the front half of the plan cache. Normalize lifts literals out of a
// statement into a parameter vector and renders the rest in one canonical
// spelling, so every execution of the same statement *shape* maps to the
// same Template.Text regardless of whitespace, keyword case, or literal
// values. CompileTemplate resolves a template against a schema once
// (column indexes, group metadata); Bind then instantiates a Plan from a
// parameter vector without lexing, parsing, or name resolution.
//
// Placeholders are typed — "?n" for numbers, "?s" for strings — because a
// numeric and a string comparison against the same column compile
// differently (strings go through the column dictionary). Folding both
// into one untyped "?" would let `c = 5` and `c = 'x'` share a template
// with different semantics; the typed spelling keeps templates
// collision-free: two statements normalize to the same Text only if they
// are token-for-token identical up to literal values, and the canonical
// text re-parses deterministically to the same plan shape.

// Param is one literal lifted out of a statement by Normalize, or supplied
// by a caller to Prepared.Bind.
type Param struct {
	// Num is the numeric value when IsStr is false.
	Num float64
	// Str is the string value when IsStr is true.
	Str string
	// IsStr selects between Num and Str.
	IsStr bool
}

// NumParam and StrParam build Bind arguments.
func NumParam(v float64) Param { return Param{Num: v} }

// StrParam builds a string Bind argument.
func StrParam(s string) Param { return Param{Str: s, IsStr: true} }

// Template is a normalized statement: the canonical parameterized text
// (the plan-cache key), the lowercased table name, the literals lifted out
// in placeholder order, and the parameterized statement structure.
type Template struct {
	// Text is the canonical parameterized statement, e.g.
	// "SELECT SUM ( price ) FROM sales WHERE region = ?s AND qty >= ?n".
	Text string
	// Table is the FROM table, lowercased (table resolution is
	// case-insensitive everywhere in the stack).
	Table string

	params []Param
	stmt   tmplStmt
}

// Params returns the literal values of the normalized statement, in
// placeholder order. The slice is shared with the template: treat it as
// read-only.
func (t *Template) Params() []Param { return t.params }

// NumParams reports the number of placeholders in the template.
func (t *Template) NumParams() int { return len(t.params) }

// tmplStmt is the parameterized twin of Stmt: conditions reference
// parameter indexes instead of literal values.
type tmplStmt struct {
	agg       dataset.AggKind
	aggColumn string
	conds     []tmplCond
	groupBy   string
	sketch    *tmplSketch
}

// tmplSketch is the parameterized twin of SketchSpec: the numeric
// argument of QUANTILE/TOPK is lifted to parameter index arg (so q and k
// do not fragment the plan cache); arg is -1 for COUNT DISTINCT, which
// takes none.
type tmplSketch struct {
	kind sketch.Kind
	arg  int
}

// tmplCond is one predicate with its literal(s) replaced by parameter
// indexes (lo == hi for single-value operators).
type tmplCond struct {
	column string
	op     CondOp
	lo, hi int
}

// normalizer mirrors the parser's walk over the token stream, emitting
// canonical tokens instead of building a Stmt. It must stay structurally
// identical to parser.selectStmt/cond/value: keywords are folded to upper
// case only at positions where the parser consumes them as keywords, so a
// column that happens to be named "between" or "and" is preserved
// verbatim exactly where the parser would treat it as an identifier.
type normalizer struct {
	toks   []token
	pos    int
	out    []string
	params []Param
	table  string
	stmt   tmplStmt
}

// Normalize canonicalizes one statement of the supported class into a
// Template. Statements the parser would reject are rejected here with
// equivalent errors; callers that want the parser's exact diagnostics can
// fall back to Parse on any Normalize error.
func Normalize(sql string) (*Template, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	n := &normalizer{toks: toks}
	if err := n.run(); err != nil {
		return nil, err
	}
	return &Template{
		Text:   strings.Join(n.out, " "),
		Table:  n.table,
		params: n.params,
		stmt:   n.stmt,
	}, nil
}

func (n *normalizer) cur() token { return n.toks[n.pos] }

func (n *normalizer) advance() token {
	t := n.toks[n.pos]
	if t.kind != tokEOF {
		n.pos++
	}
	return t
}

func (n *normalizer) keyword(kw string) bool {
	if n.cur().kind == tokIdent && strings.EqualFold(n.cur().text, kw) {
		n.pos++
		return true
	}
	return false
}

func (n *normalizer) expectKeyword(kw string) error {
	if !n.keyword(kw) {
		return fmt.Errorf("sqlfe: expected %s near %q", kw, n.cur().text)
	}
	n.emit(kw)
	return nil
}

func (n *normalizer) expectSymbol(sym string) error {
	if n.cur().kind == tokSymbol && n.cur().text == sym {
		n.pos++
		n.emit(sym)
		return nil
	}
	return fmt.Errorf("sqlfe: expected %q near %q", sym, n.cur().text)
}

func (n *normalizer) emit(tok string) { n.out = append(n.out, tok) }

// run mirrors parser.selectStmt.
func (n *normalizer) run() error {
	if err := n.expectKeyword("SELECT"); err != nil {
		return err
	}
	fn := n.advance()
	if fn.kind != tokIdent {
		return fmt.Errorf("sqlfe: expected aggregate function, got %q", fn.text)
	}
	kind, err := dataset.ParseAggKind(fn.text)
	if err != nil {
		if err := n.sketchAgg(fn.text); err != nil {
			return err
		}
	} else {
		n.stmt.agg = kind
		n.emit(strings.ToUpper(fn.text))
		if err := n.expectSymbol("("); err != nil {
			return err
		}
		arg := n.advance()
		switch {
		case arg.kind == tokSymbol && arg.text == "*":
			if kind != dataset.Count {
				return fmt.Errorf("sqlfe: %s(*) is not supported; name a column", kind)
			}
			n.stmt.aggColumn = "*"
			n.emit("*")
		case arg.kind == tokIdent:
			// mirrors the parser: COUNT(DISTINCT col) is the distinct
			// sketch; DISTINCT is folded to upper case only here, where
			// the parser consumes it as a keyword.
			if kind == dataset.Count && strings.EqualFold(arg.text, "DISTINCT") && n.cur().kind == tokIdent {
				n.stmt.aggColumn = n.advance().text
				n.stmt.sketch = &tmplSketch{kind: sketch.KindDistinct, arg: -1}
				n.emit("DISTINCT")
				n.emit(n.stmt.aggColumn)
			} else {
				n.stmt.aggColumn = arg.text
				n.emit(arg.text)
			}
		default:
			return fmt.Errorf("sqlfe: expected column or * in aggregate, got %q", arg.text)
		}
		if err := n.expectSymbol(")"); err != nil {
			return err
		}
	}
	if err := n.expectKeyword("FROM"); err != nil {
		return err
	}
	tbl := n.advance()
	if tbl.kind != tokIdent {
		return fmt.Errorf("sqlfe: expected table name, got %q", tbl.text)
	}
	n.table = strings.ToLower(tbl.text)
	n.emit(n.table)
	if n.keyword("WHERE") {
		n.emit("WHERE")
		for {
			if err := n.cond(); err != nil {
				return err
			}
			if n.cur().kind == tokIdent && strings.EqualFold(n.cur().text, "OR") {
				return fmt.Errorf("sqlfe: OR is not supported — PASS answers rectangular (conjunctive) predicates")
			}
			if !n.keyword("AND") {
				break
			}
			n.emit("AND")
		}
	}
	if n.keyword("GROUP") {
		n.emit("GROUP")
		if err := n.expectKeyword("BY"); err != nil {
			return err
		}
		col := n.advance()
		if col.kind != tokIdent {
			return fmt.Errorf("sqlfe: expected grouping column, got %q", col.text)
		}
		n.stmt.groupBy = col.text
		n.emit(col.text)
	}
	if n.cur().kind != tokEOF {
		return fmt.Errorf("sqlfe: unexpected trailing input %q", n.cur().text)
	}
	return nil
}

// sketchAgg mirrors parser.sketchAgg: QUANTILE(col, q) and TOPK(col, k),
// with the numeric argument lifted into the parameter vector so every q
// (or k) shares one template.
func (n *normalizer) sketchAgg(fn string) error {
	var kind sketch.Kind
	switch {
	case strings.EqualFold(fn, "QUANTILE"):
		kind = sketch.KindQuantile
	case strings.EqualFold(fn, "TOPK"):
		kind = sketch.KindTopK
	default:
		return fmt.Errorf("sqlfe: %q is not a supported aggregate (SUM/COUNT/AVG/MIN/MAX/QUANTILE/TOPK/COUNT DISTINCT)", fn)
	}
	n.emit(strings.ToUpper(fn))
	if err := n.expectSymbol("("); err != nil {
		return err
	}
	col := n.advance()
	if col.kind != tokIdent {
		return fmt.Errorf("sqlfe: expected column in %s, got %q", kind, col.text)
	}
	n.stmt.aggColumn = col.text
	n.emit(col.text)
	if err := n.expectSymbol(","); err != nil {
		return err
	}
	arg := n.advance()
	if arg.kind != tokNumber {
		return fmt.Errorf("sqlfe: %s needs a numeric second argument, got %q", kind, arg.text)
	}
	v, err := strconv.ParseFloat(arg.text, 64)
	if err != nil {
		return fmt.Errorf("sqlfe: bad number %q", arg.text)
	}
	idx := len(n.params)
	n.params = append(n.params, Param{Num: v})
	n.emit("?n")
	if err := n.expectSymbol(")"); err != nil {
		return err
	}
	n.stmt.sketch = &tmplSketch{kind: kind, arg: idx}
	return nil
}

// cond mirrors parser.cond.
func (n *normalizer) cond() error {
	col := n.advance()
	if col.kind != tokIdent {
		return fmt.Errorf("sqlfe: expected column name in WHERE, got %q", col.text)
	}
	c := tmplCond{column: col.text}
	n.emit(col.text)
	if n.keyword("BETWEEN") {
		n.emit("BETWEEN")
		lo, loStr, err := n.value()
		if err != nil {
			return err
		}
		if err := n.expectKeyword("AND"); err != nil {
			return err
		}
		hi, hiStr, err := n.value()
		if err != nil {
			return err
		}
		if loStr != hiStr {
			return fmt.Errorf("sqlfe: BETWEEN bounds must both be numbers or both strings")
		}
		c.op, c.lo, c.hi = OpBetween, lo, hi
		n.stmt.conds = append(n.stmt.conds, c)
		return nil
	}
	op := n.advance()
	if op.kind != tokSymbol {
		return fmt.Errorf("sqlfe: expected comparison operator after %q, got %q", col.text, op.text)
	}
	switch op.text {
	case "=":
		c.op = OpEq
	case "<=":
		c.op = OpLe
	case ">=":
		c.op = OpGe
	case "<":
		c.op = OpLt
	case ">":
		c.op = OpGt
	case "<>", "!=":
		return fmt.Errorf("sqlfe: != predicates are not rectangular and are not supported")
	default:
		return fmt.Errorf("sqlfe: unsupported operator %q", op.text)
	}
	n.emit(op.text)
	v, _, err := n.value()
	if err != nil {
		return err
	}
	c.lo, c.hi = v, v
	n.stmt.conds = append(n.stmt.conds, c)
	return nil
}

// value lifts one literal into the parameter vector and emits its typed
// placeholder, returning the parameter index.
func (n *normalizer) value() (idx int, isStr bool, err error) {
	t := n.advance()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, false, fmt.Errorf("sqlfe: bad number %q", t.text)
		}
		idx = len(n.params)
		n.params = append(n.params, Param{Num: v})
		n.emit("?n")
		return idx, false, nil
	case tokString:
		idx = len(n.params)
		n.params = append(n.params, Param{Str: t.text, IsStr: true})
		n.emit("?s")
		return idx, true, nil
	}
	return 0, false, fmt.Errorf("sqlfe: expected a literal, got %q", t.text)
}

// Prepared is a template compiled against a schema: table and column names
// resolved, group metadata materialized. Executing the statement again
// needs only Bind, which is pure arithmetic plus dictionary lookups for
// string parameters. A Prepared is immutable after CompileTemplate and
// safe for concurrent Bind calls.
type Prepared struct {
	// Text is the canonical template text this plan was compiled from.
	Text string

	agg       dataset.AggKind
	dims      int
	conds     []preparedCond
	groupDim  int
	groups    []float64
	groupDict *dataset.Dict
	// sketch is non-nil for sketch-family statements; Bind then emits a
	// Plan carrying a sketch.Query instead of a rectangle.
	sketch *tmplSketch
	// paramStr[i] reports whether parameter i must be a string.
	paramStr []bool
}

// preparedCond is a schema-resolved predicate awaiting parameter values.
type preparedCond struct {
	dim    int
	op     CondOp
	lo, hi int // parameter indexes
	column string
	// dict resolves string parameters; nil for numeric predicates.
	dict *dataset.Dict
}

// CompileTemplate resolves a normalized template against a schema,
// performing all the name resolution Compile would do but none of the
// literal arithmetic, which moves to Bind.
func CompileTemplate(t *Template, schema Schema) (*Prepared, error) {
	if schema.Table != "" && !strings.EqualFold(t.Table, schema.Table) {
		return nil, fmt.Errorf("sqlfe: unknown table %q (schema serves %q)", t.Table, schema.Table)
	}
	colIndex := make(map[string]int, len(schema.PredColumns))
	for i, c := range schema.PredColumns {
		colIndex[c] = i
	}
	if t.stmt.aggColumn != "*" && t.stmt.aggColumn != schema.AggColumn {
		return nil, fmt.Errorf("sqlfe: aggregate column %q is not the synopsis's aggregation column %q",
			t.stmt.aggColumn, schema.AggColumn)
	}
	p := &Prepared{
		Text:     t.Text,
		agg:      t.stmt.agg,
		dims:     len(schema.PredColumns),
		groupDim: -1,
		paramStr: make([]bool, len(t.params)),
	}
	for i, prm := range t.params {
		p.paramStr[i] = prm.IsStr
	}
	if t.stmt.sketch != nil {
		if err := checkSketchStmt(len(t.stmt.conds) > 0, t.stmt.groupBy != "", t.stmt.sketch.kind); err != nil {
			return nil, err
		}
		p.sketch = t.stmt.sketch
		return p, nil
	}
	for _, c := range t.stmt.conds {
		dim, ok := colIndex[c.column]
		if !ok {
			return nil, fmt.Errorf("sqlfe: unknown predicate column %q (have %v)", c.column, schema.PredColumns)
		}
		pc := preparedCond{dim: dim, op: c.op, lo: c.lo, hi: c.hi, column: c.column}
		if t.params[c.lo].IsStr {
			d := schema.Dicts[c.column]
			if d == nil {
				return nil, fmt.Errorf("sqlfe: column %q compared to a string but has no dictionary", c.column)
			}
			pc.dict = d
		}
		p.conds = append(p.conds, pc)
	}
	if t.stmt.groupBy != "" {
		dim, ok := colIndex[t.stmt.groupBy]
		if !ok {
			return nil, fmt.Errorf("sqlfe: unknown grouping column %q", t.stmt.groupBy)
		}
		p.groupDim = dim
		if d := schema.Dicts[t.stmt.groupBy]; d != nil {
			p.groups = d.Codes()
			p.groupDict = d
		}
	}
	return p, nil
}

// NumParams reports the number of parameters Bind expects.
func (p *Prepared) NumParams() int { return len(p.paramStr) }

// Agg reports the statement's aggregate kind.
func (p *Prepared) Agg() dataset.AggKind { return p.agg }

// Bind instantiates the prepared statement with a parameter vector,
// producing the same Plan Compile would have built for the statement with
// those literals. Parameter kinds must match the template's placeholders.
func (p *Prepared) Bind(params []Param) (*Plan, error) {
	if len(params) != len(p.paramStr) {
		return nil, fmt.Errorf("sqlfe: statement has %d parameters, got %d", len(p.paramStr), len(params))
	}
	for i := range params {
		if params[i].IsStr != p.paramStr[i] {
			want := "a number"
			if p.paramStr[i] {
				want = "a string"
			}
			return nil, fmt.Errorf("sqlfe: parameter %d must be %s", i+1, want)
		}
	}
	if p.sketch != nil {
		q := sketch.Query{Kind: p.sketch.kind}
		if p.sketch.arg >= 0 {
			q.Arg = params[p.sketch.arg].Num
		}
		if err := validateSketchArg(q); err != nil {
			return nil, err
		}
		return &Plan{GroupDim: -1, Sketch: &q}, nil
	}
	lo := make([]float64, p.dims)
	hi := make([]float64, p.dims)
	for c := 0; c < p.dims; c++ {
		lo[c], hi[c] = math.Inf(-1), math.Inf(1)
	}
	for _, c := range p.conds {
		vLo, err := c.resolve(params[c.lo])
		if err != nil {
			return nil, err
		}
		vHi, err := c.resolve(params[c.hi])
		if err != nil {
			return nil, err
		}
		cLo, cHi, err := opBounds(c.op, vLo, vHi)
		if err != nil {
			return nil, err
		}
		if cLo > lo[c.dim] {
			lo[c.dim] = cLo
		}
		if cHi < hi[c.dim] {
			hi[c.dim] = cHi
		}
	}
	return &Plan{
		Agg:       p.agg,
		Rect:      dataset.Rect{Lo: lo, Hi: hi},
		GroupDim:  p.groupDim,
		Groups:    p.groups,
		GroupDict: p.groupDict,
	}, nil
}

// resolve maps one parameter to its numeric predicate value, going through
// the column dictionary for string parameters.
func (c *preparedCond) resolve(prm Param) (float64, error) {
	if c.dict == nil {
		return prm.Num, nil
	}
	v, ok := c.dict.Code(prm.Str)
	if !ok {
		return 0, fmt.Errorf("sqlfe: %q is not a known category of column %q", prm.Str, c.column)
	}
	return v, nil
}
