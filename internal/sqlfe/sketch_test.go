package sqlfe

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sketch"
)

func TestParseSketchAggregates(t *testing.T) {
	cases := []struct {
		sql  string
		kind sketch.Kind
		arg  float64
		col  string
	}{
		{"SELECT QUANTILE(x, 0.5) FROM t", sketch.KindQuantile, 0.5, "x"},
		{"select quantile(x, .99) from t", sketch.KindQuantile, 0.99, "x"},
		{"SELECT TOPK(x, 10) FROM t", sketch.KindTopK, 10, "x"},
		{"SELECT Topk ( x , 3 ) FROM t", sketch.KindTopK, 3, "x"},
		{"SELECT COUNT(DISTINCT x) FROM t", sketch.KindDistinct, 0, "x"},
		{"select count(distinct x) from t", sketch.KindDistinct, 0, "x"},
	}
	for _, c := range cases {
		stmt, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.sql, err)
		}
		if stmt.Sketch == nil {
			t.Fatalf("Parse(%q): no sketch spec", c.sql)
		}
		if stmt.Sketch.Kind != c.kind || stmt.Sketch.Arg != c.arg || stmt.AggColumn != c.col {
			t.Errorf("Parse(%q) = kind %v arg %v col %q, want %v %v %q",
				c.sql, stmt.Sketch.Kind, stmt.Sketch.Arg, stmt.AggColumn, c.kind, c.arg, c.col)
		}
	}
}

func TestParseCountDistinctAsColumnName(t *testing.T) {
	// A column literally named "distinct" is still a plain COUNT: the
	// DISTINCT keyword reading requires a following identifier.
	stmt, err := Parse("SELECT COUNT(distinct) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Sketch != nil || stmt.AggColumn != "distinct" {
		t.Errorf("stmt = %+v", stmt)
	}
}

func TestParseSketchRejectsMalformed(t *testing.T) {
	bad := []string{
		"SELECT QUANTILE(x) FROM t",         // missing argument
		"SELECT QUANTILE(x 0.5) FROM t",     // missing comma
		"SELECT QUANTILE(x, 'a') FROM t",    // non-numeric argument
		"SELECT QUANTILE(*, 0.5) FROM t",    // * is not a column
		"SELECT TOPK(x, ) FROM t",           // empty argument
		"SELECT TOPK(x, 5",                  // unclosed
		"SELECT COUNT(DISTINCT *) FROM t",   // * after DISTINCT
		"SELECT SUM(DISTINCT x) FROM t",     // DISTINCT only inside COUNT
		"SELECT MEDIAN(x, 0.5) FROM t",      // unknown function stays unknown
		"SELECT QUANTILE(x, 0.5, 2) FROM t", // extra argument
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse accepted %q", sql)
		}
		if _, err := Normalize(sql); err == nil {
			t.Errorf("Normalize accepted %q", sql)
		}
	}
}

func TestCompileSketchPlans(t *testing.T) {
	schema := Schema{Table: "t", PredColumns: []string{"a", "b"}, AggColumn: "x"}
	for sql, want := range map[string]sketch.Query{
		"SELECT QUANTILE(x, 0.5) FROM t":  {Kind: sketch.KindQuantile, Arg: 0.5},
		"SELECT COUNT(DISTINCT x) FROM t": {Kind: sketch.KindDistinct},
		"SELECT TOPK(x, 7) FROM t":        {Kind: sketch.KindTopK, Arg: 7},
	} {
		p, err := ParseAndCompile(sql, schema)
		if err != nil {
			t.Fatalf("ParseAndCompile(%q): %v", sql, err)
		}
		if p.Sketch == nil || *p.Sketch != want {
			t.Errorf("plan for %q = %+v, want sketch %+v", sql, p.Sketch, want)
		}
		if p.GroupDim != -1 {
			t.Errorf("plan for %q has GroupDim %d", sql, p.GroupDim)
		}
	}
}

func TestCompileSketchRejections(t *testing.T) {
	schema := Schema{Table: "t", PredColumns: []string{"a"}, AggColumn: "x"}
	bad := map[string]string{
		"SELECT QUANTILE(x, 0.5) FROM t WHERE a = 1":  "WHERE",
		"SELECT COUNT(DISTINCT x) FROM t WHERE a > 2": "WHERE",
		"SELECT TOPK(x, 5) FROM t GROUP BY a":         "GROUP BY",
		"SELECT QUANTILE(x, 0) FROM t":                "(0, 1)",
		"SELECT QUANTILE(x, 1) FROM t":                "(0, 1)",
		"SELECT QUANTILE(x, -0.5) FROM t":             "(0, 1)",
		"SELECT TOPK(x, 0) FROM t":                    "positive integer",
		"SELECT TOPK(x, 2.5) FROM t":                  "positive integer",
		"SELECT TOPK(x, -3) FROM t":                   "positive integer",
		"SELECT QUANTILE(a, 0.5) FROM t":              "aggregation column",
		"SELECT COUNT(DISTINCT nope) FROM t":          "aggregation column",
	}
	for sql, frag := range bad {
		_, err := ParseAndCompile(sql, schema)
		if err == nil {
			t.Errorf("ParseAndCompile accepted %q", sql)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error for %q = %q, want mention of %q", sql, err, frag)
		}
	}
}

func TestNormalizeSketchTemplates(t *testing.T) {
	// Different q values share a template (lifted to ?n) ...
	a := mustNormalize(t, "SELECT QUANTILE(x, 0.5) FROM t")
	b := mustNormalize(t, "select Quantile ( x , .999 )  from T")
	if a.Text != b.Text {
		t.Errorf("quantile templates differ:\n%q\n%q", a.Text, b.Text)
	}
	if a.NumParams() != 1 || a.Params()[0].Num != 0.5 || b.Params()[0].Num != 0.999 {
		t.Errorf("params: %+v / %+v", a.Params(), b.Params())
	}
	// ... while different statement shapes never collide.
	distinctShapes := []string{
		"SELECT QUANTILE(x, 0.5) FROM t",
		"SELECT TOPK(x, 5) FROM t",
		"SELECT COUNT(DISTINCT x) FROM t",
		"SELECT COUNT(x) FROM t",
		"SELECT COUNT(distinct) FROM t",
		"SELECT COUNT(*) FROM t",
	}
	texts := map[string]string{}
	for _, sql := range distinctShapes {
		tm := mustNormalize(t, sql)
		if prev, ok := texts[tm.Text]; ok {
			t.Errorf("collision: %q and %q both normalize to %q", prev, sql, tm.Text)
		}
		texts[tm.Text] = sql
	}
}

// TestBindMatchesCompileSketch extends the template-correctness twin to
// the sketch grammar: the prepared path must produce exactly the Plan the
// direct path produces, and reject exactly what it rejects.
func TestBindMatchesCompileSketch(t *testing.T) {
	schema := Schema{Table: "t", PredColumns: []string{"a"}, AggColumn: "x"}
	for _, sql := range []string{
		"SELECT QUANTILE(x, 0.25) FROM t",
		"SELECT TOPK(x, 12) FROM t",
		"SELECT COUNT(DISTINCT x) FROM t",
	} {
		want, err := ParseAndCompile(sql, schema)
		if err != nil {
			t.Fatalf("ParseAndCompile(%q): %v", sql, err)
		}
		tm := mustNormalize(t, sql)
		prep, err := CompileTemplate(tm, schema)
		if err != nil {
			t.Fatalf("CompileTemplate(%q): %v", sql, err)
		}
		got, err := prep.Bind(tm.Params())
		if err != nil {
			t.Fatalf("Bind(%q): %v", sql, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("plan mismatch for %q:\n got %+v\nwant %+v", sql, got, want)
		}
	}
	// Re-binding with an out-of-range argument fails at Bind, same as
	// Compile would with the literal.
	tm := mustNormalize(t, "SELECT QUANTILE(x, 0.5) FROM t")
	prep, err := CompileTemplate(tm, schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bind([]Param{NumParam(1.5)}); err == nil {
		t.Error("Bind accepted quantile fraction 1.5")
	}
	tm = mustNormalize(t, "SELECT TOPK(x, 5) FROM t")
	if prep, err = CompileTemplate(tm, schema); err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bind([]Param{NumParam(2.5)}); err == nil {
		t.Error("Bind accepted fractional k")
	}
	if _, err := prep.Bind([]Param{NumParam(64)}); err != nil {
		t.Errorf("Bind rejected k=64: %v", err)
	}
}
