package sqlfe

import "strings"

// StripExplain detects an EXPLAIN ANALYZE prefix and returns the inner
// statement. The prefix is case-insensitive and whitespace-tolerant
// ("explain   analyze select ..."); a bare EXPLAIN without ANALYZE is not
// recognized — the engine has no plan-only mode, every explain executes.
// Normalize rejects the prefix (the grammar starts at SELECT), so callers
// strip it before compiling and attach a trace to the execution instead.
func StripExplain(sql string) (stmt string, explain bool) {
	rest := strings.TrimSpace(sql)
	const kwExplain = "EXPLAIN"
	if len(rest) < len(kwExplain) || !strings.EqualFold(rest[:len(kwExplain)], kwExplain) {
		return sql, false
	}
	rest = rest[len(kwExplain):]
	if rest == "" || !isSpace(rest[0]) {
		return sql, false
	}
	rest = strings.TrimLeft(rest, " \t\r\n")
	const kwAnalyze = "ANALYZE"
	if len(rest) < len(kwAnalyze) || !strings.EqualFold(rest[:len(kwAnalyze)], kwAnalyze) {
		return sql, false
	}
	rest = rest[len(kwAnalyze):]
	if rest == "" || !isSpace(rest[0]) {
		return sql, false
	}
	return strings.TrimLeft(rest, " \t\r\n"), true
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
