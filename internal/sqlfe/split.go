package sqlfe

import "strings"

// SplitStatements splits a script into individual SQL statements on
// semicolons, respecting single-quoted string literals (” escapes a
// quote, matching the lexer). Empty statements — leading, trailing or
// doubled separators — are dropped, so "a;; b;" yields ["a", "b"].
func SplitStatements(script string) []string {
	var out []string
	start := 0
	inStr := false
	for i := 0; i < len(script); i++ {
		switch script[i] {
		case '\'':
			// inside a literal, '' is an escaped quote, not a boundary
			if inStr && i+1 < len(script) && script[i+1] == '\'' {
				i++
				continue
			}
			inStr = !inStr
		case ';':
			if inStr {
				continue
			}
			if s := strings.TrimSpace(script[start:i]); s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(script[start:]); s != "" {
		out = append(out, s)
	}
	return out
}
