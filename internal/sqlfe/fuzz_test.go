package sqlfe

import (
	"reflect"
	"testing"
)

// FuzzNormalize cross-checks the two front-end walks that must stay
// structurally identical: Parse (builds a Stmt) and Normalize (emits the
// canonical template that keys the plan cache). For any input the two
// must agree on accept/reject; on accepted statements the prepared path
// (CompileTemplate + Bind) must produce exactly the Plan that Compile
// produces — against a schema derived from the statement itself, so the
// planner's name resolution is exercised rather than short-circuited.
func FuzzNormalize(f *testing.F) {
	for _, sql := range []string{
		"SELECT SUM(x) FROM t",
		"SELECT COUNT(*) FROM taxi WHERE pickup_time >= 8 AND pickup_time < 10",
		"SELECT AVG(v) FROM t WHERE a BETWEEN 1 AND 2 GROUP BY b",
		"SELECT MIN(v) FROM t WHERE s = 'O''Hare'",
		"SELECT QUANTILE(x, 0.5) FROM t",
		"SELECT TOPK(x, 10) FROM t",
		"SELECT COUNT(DISTINCT x) FROM t",
		"SELECT COUNT(distinct) FROM t",
		"SELECT QUANTILE(x, 1.5) FROM t",
		"SELECT TOPK(x, 0) FROM t",
		"SELECT QUANTILE(x, 0.5) FROM t WHERE a = 1",
		"SELECT MEDIAN(x) FROM t",
		"SELECT SUM(x) FROM t WHERE a = 1 OR b = 2",
		"select sum ( x ) from t where between >= 1 and and = 2",
		"SELECT",
		"",
		"\x00\xff'(",
	} {
		f.Add(sql)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, errP := Parse(sql)
		tm, errN := Normalize(sql)
		if (errP == nil) != (errN == nil) {
			t.Fatalf("Parse/Normalize disagree on %q: %v vs %v", sql, errP, errN)
		}
		if errP != nil {
			return
		}
		// Normalization is deterministic.
		tm2, err := Normalize(sql)
		if err != nil || tm2.Text != tm.Text || !reflect.DeepEqual(tm2.Params(), tm.Params()) {
			t.Fatalf("re-normalizing %q changed the template: %v", sql, err)
		}
		// Resolve against a schema shaped like the statement: its predicate
		// and grouping columns exist, its aggregate column matches.
		schema := Schema{AggColumn: stmt.AggColumn}
		if stmt.AggColumn == "*" {
			schema.AggColumn = "v"
		}
		seen := map[string]bool{}
		for _, c := range stmt.Conds {
			if !seen[c.Column] {
				seen[c.Column] = true
				schema.PredColumns = append(schema.PredColumns, c.Column)
			}
		}
		if stmt.GroupBy != "" && !seen[stmt.GroupBy] {
			schema.PredColumns = append(schema.PredColumns, stmt.GroupBy)
		}
		want, errC := Compile(stmt, schema)
		prep, errT := CompileTemplate(tm, schema)
		var got *Plan
		errB := errT
		if errT == nil {
			got, errB = prep.Bind(tm.Params())
		}
		if (errC == nil) != (errB == nil) {
			t.Fatalf("compile paths disagree on %q: %v vs %v", sql, errC, errB)
		}
		if errC == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("plan mismatch for %q:\n got %+v\nwant %+v", sql, got, want)
		}
	})
}
