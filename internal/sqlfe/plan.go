package sqlfe

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sketch"
)

// Schema resolves column names for planning: predicate column names in
// order, the aggregation column name, and optional dictionaries for
// string-encoded predicate columns.
type Schema struct {
	// Table, when non-empty, is the table name this schema serves; Compile
	// rejects statements whose FROM clause names anything else. When empty
	// (a schema detached from any catalog, e.g. a lone synopsis) the FROM
	// table is accepted unchecked, as it historically was.
	Table string
	// PredColumns are the predicate column names, in synopsis order.
	PredColumns []string
	// AggColumn is the aggregation column name.
	AggColumn string
	// Dicts maps a predicate column name to its dictionary, for columns
	// that were dictionary-encoded from strings.
	Dicts map[string]*dataset.Dict
}

// SchemaFromColNames builds a Schema from a dataset's ColNames layout
// (predicate columns followed by the aggregate column).
func SchemaFromColNames(colNames []string) Schema {
	if len(colNames) == 0 {
		return Schema{}
	}
	return Schema{
		PredColumns: colNames[:len(colNames)-1],
		AggColumn:   colNames[len(colNames)-1],
	}
}

// Plan is an executable query: the aggregate, the rectangular predicate
// over the synopsis's predicate columns, and the optional group-by column
// index with its group keys.
type Plan struct {
	Agg  dataset.AggKind
	Rect dataset.Rect
	// GroupDim is the grouping column index, -1 when absent.
	GroupDim int
	// Groups are the group keys (dictionary codes) to evaluate.
	Groups []float64
	// GroupDict renders group keys back to strings (nil for numeric
	// grouping columns).
	GroupDict *dataset.Dict
	// Sketch is non-nil for sketch-family statements (QUANTILE, COUNT
	// DISTINCT, TOPK). Such plans execute through the engine's Sketcher
	// capability; Agg, Rect and the group fields are unused.
	Sketch *sketch.Query
}

// Compile resolves a parsed statement against a schema into a Plan,
// intersecting repeated predicates on the same column.
func Compile(stmt *Stmt, schema Schema) (*Plan, error) {
	if schema.Table != "" && !strings.EqualFold(stmt.Table, schema.Table) {
		return nil, fmt.Errorf("sqlfe: unknown table %q (schema serves %q)", stmt.Table, schema.Table)
	}
	colIndex := make(map[string]int, len(schema.PredColumns))
	for i, c := range schema.PredColumns {
		colIndex[c] = i
	}
	if stmt.AggColumn != "*" && stmt.AggColumn != schema.AggColumn {
		return nil, fmt.Errorf("sqlfe: aggregate column %q is not the synopsis's aggregation column %q",
			stmt.AggColumn, schema.AggColumn)
	}
	if stmt.Sketch != nil {
		if err := checkSketchStmt(len(stmt.Conds) > 0, stmt.GroupBy != "", stmt.Sketch.Kind); err != nil {
			return nil, err
		}
		q := sketch.Query{Kind: stmt.Sketch.Kind, Arg: stmt.Sketch.Arg}
		if err := validateSketchArg(q); err != nil {
			return nil, err
		}
		return &Plan{GroupDim: -1, Sketch: &q}, nil
	}
	dims := len(schema.PredColumns)
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for c := 0; c < dims; c++ {
		lo[c], hi[c] = math.Inf(-1), math.Inf(1)
	}
	for _, cond := range stmt.Conds {
		dim, ok := colIndex[cond.Column]
		if !ok {
			return nil, fmt.Errorf("sqlfe: unknown predicate column %q (have %v)", cond.Column, schema.PredColumns)
		}
		cLo, cHi, err := condBounds(cond, schema)
		if err != nil {
			return nil, err
		}
		if cLo > lo[dim] {
			lo[dim] = cLo
		}
		if cHi < hi[dim] {
			hi[dim] = cHi
		}
	}
	p := &Plan{
		Agg:      stmt.Agg,
		Rect:     dataset.Rect{Lo: lo, Hi: hi},
		GroupDim: -1,
	}
	if stmt.GroupBy != "" {
		dim, ok := colIndex[stmt.GroupBy]
		if !ok {
			return nil, fmt.Errorf("sqlfe: unknown grouping column %q", stmt.GroupBy)
		}
		p.GroupDim = dim
		if d := schema.Dicts[stmt.GroupBy]; d != nil {
			p.Groups = d.Codes()
			p.GroupDict = d
		}
		// numeric grouping columns need the caller to supply group keys
		// (the synopsis does not store distinct values); leave Groups nil
	}
	return p, nil
}

// checkSketchStmt rejects the clauses sketch statements cannot honor:
// sketches summarize the whole table, so there is no predicate or
// per-group state to evaluate against. Shared by Compile and
// CompileTemplate so both paths fail with the same diagnostics.
func checkSketchStmt(hasConds, hasGroupBy bool, kind sketch.Kind) error {
	if hasConds {
		return fmt.Errorf("sqlfe: %s does not support WHERE — sketches summarize the whole table", kind)
	}
	if hasGroupBy {
		return fmt.Errorf("sqlfe: %s does not support GROUP BY — sketches keep no per-group state", kind)
	}
	return nil
}

// validateSketchArg range-checks a sketch query's argument. Shared by
// Compile (literal arguments) and Prepared.Bind (bound parameters).
func validateSketchArg(q sketch.Query) error {
	switch q.Kind {
	case sketch.KindQuantile:
		if !(q.Arg > 0 && q.Arg < 1) {
			return fmt.Errorf("sqlfe: QUANTILE fraction must be in (0, 1), got %v", q.Arg)
		}
	case sketch.KindTopK:
		if q.Arg < 1 || q.Arg != math.Trunc(q.Arg) {
			return fmt.Errorf("sqlfe: TOPK k must be a positive integer, got %v", q.Arg)
		}
	}
	return nil
}

// condBounds converts one condition to an inclusive [lo, hi] interval,
// resolving string literals through the column's dictionary.
func condBounds(c Cond, schema Schema) (float64, float64, error) {
	lo, hi := c.Lo, c.Hi
	if c.IsString {
		d := schema.Dicts[c.Column]
		if d == nil {
			return 0, 0, fmt.Errorf("sqlfe: column %q compared to a string but has no dictionary", c.Column)
		}
		var ok bool
		lo, ok = d.Code(c.StrLo)
		if !ok {
			return 0, 0, fmt.Errorf("sqlfe: %q is not a known category of column %q", c.StrLo, c.Column)
		}
		hi, ok = d.Code(c.StrHi)
		if !ok {
			return 0, 0, fmt.Errorf("sqlfe: %q is not a known category of column %q", c.StrHi, c.Column)
		}
	}
	return opBounds(c.Op, lo, hi)
}

// opBounds converts an operator and its resolved operand value(s) to an
// inclusive [lo, hi] interval. Shared between Compile (literal conditions)
// and Prepared.Bind (parameterized conditions).
func opBounds(op CondOp, lo, hi float64) (float64, float64, error) {
	switch op {
	case OpEq, OpBetween:
		return lo, hi, nil
	case OpLe:
		return math.Inf(-1), hi, nil
	case OpGe:
		return lo, math.Inf(1), nil
	case OpLt:
		// strict bounds are closed up to the previous representable value
		return math.Inf(-1), math.Nextafter(hi, math.Inf(-1)), nil
	case OpGt:
		return math.Nextafter(lo, math.Inf(1)), math.Inf(1), nil
	}
	return 0, 0, fmt.Errorf("sqlfe: unknown operator %d", int(op))
}

// ParseAndCompile is the one-call convenience wrapper.
func ParseAndCompile(sql string, schema Schema) (*Plan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Compile(stmt, schema)
}
