// Package sqlfe is a small SQL front-end for the PASS engine: it parses
// the subpopulation-aggregate query class of the paper —
//
//	SELECT SUM|COUNT|AVG|MIN|MAX ( column | * )
//	FROM   table
//	WHERE  col >= x AND col <= y AND col BETWEEN a AND b AND col = v ...
//	[GROUP BY col]
//
// — and compiles it against a table schema into a rectangular predicate
// plan the synopsis can execute. Conjunctions only: PASS's query class is
// rectangular (Section 3.1), so OR is rejected with a clear error.
//
// The sketch-aggregate class answers from mergeable sketches over the
// whole aggregate column, so it takes no WHERE or GROUP BY:
//
//	SELECT QUANTILE ( column , q ) | COUNT ( DISTINCT column ) | TOPK ( column , k )
//	FROM   table
package sqlfe

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * = < > <= >= <> !=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises the input; errors carry byte offsets for diagnostics.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case isIdentStart(rune(c)):
			l.ident()
		case unicode.IsDigit(rune(c)) || c == '.' ||
			((c == '-' || c == '+') && l.pos+1 < len(l.src) && startsNumber(l.src[l.pos+1])):
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(),*=", rune(c)):
			l.emit(tokSymbol, string(c))
			l.pos++
		case c == '<' || c == '>' || c == '!':
			op := string(c)
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
				op += string(l.src[l.pos])
				l.pos++
			}
			l.emit(tokSymbol, op)
		default:
			return nil, fmt.Errorf("sqlfe: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func startsNumber(c byte) bool { return c >= '0' && c <= '9' || c == '.' }

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) number() error {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	digits, dot, exp := false, false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			digits = true
			l.pos++
		case c == '.' && !dot && !exp:
			dot = true
			l.pos++
		case (c == 'e' || c == 'E') && digits && !exp:
			exp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '-' || l.src[l.pos] == '+') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	if !digits {
		return fmt.Errorf("sqlfe: malformed number at offset %d", start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlfe: unterminated string at offset %d", start)
}
