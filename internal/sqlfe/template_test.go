package sqlfe

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

func mustNormalize(t *testing.T, sql string) *Template {
	t.Helper()
	tm, err := Normalize(sql)
	if err != nil {
		t.Fatalf("Normalize(%q): %v", sql, err)
	}
	return tm
}

func TestNormalizeCanonicalText(t *testing.T) {
	// Whitespace and keyword case must not affect the template; literal
	// values must not appear in it.
	variants := []string{
		"SELECT SUM(trip_distance) FROM taxi WHERE pickup_time >= 8 AND pickup_time <= 10",
		"select   sum( trip_distance )\n\tfrom TAXI\nwhere pickup_time>=8 and pickup_time<=10",
		"SeLeCt SuM(trip_distance) FrOm Taxi WhErE pickup_time >= 99.5 AnD pickup_time <= -3e2",
	}
	base := mustNormalize(t, variants[0])
	for _, v := range variants[1:] {
		tm := mustNormalize(t, v)
		if tm.Text != base.Text {
			t.Errorf("templates differ:\n%q\n%q\nfor %q", base.Text, tm.Text, v)
		}
		if tm.Table != "taxi" {
			t.Errorf("table = %q, want taxi", tm.Table)
		}
	}
	if base.NumParams() != 2 {
		t.Fatalf("params = %d, want 2", base.NumParams())
	}
	if p := base.Params(); p[0].Num != 8 || p[1].Num != 10 || p[0].IsStr || p[1].IsStr {
		t.Errorf("params = %+v", p)
	}
	// The third variant's literals must come through its own param vector.
	tm := mustNormalize(t, variants[2])
	if p := tm.Params(); p[0].Num != 99.5 || p[1].Num != -3e2 {
		t.Errorf("params = %+v", p)
	}
}

func TestNormalizeQuotedKeywords(t *testing.T) {
	// A string literal containing keywords must be lifted verbatim, never
	// folded or confused with grammar.
	tm := mustNormalize(t, "SELECT COUNT(*) FROM t WHERE name = 'SELECT and FROM where GROUP'")
	if tm.NumParams() != 1 {
		t.Fatalf("params = %d, want 1", tm.NumParams())
	}
	p := tm.Params()[0]
	if !p.IsStr || p.Str != "SELECT and FROM where GROUP" {
		t.Errorf("param = %+v", p)
	}
	// And the '' escape survives.
	tm = mustNormalize(t, "SELECT COUNT(*) FROM t WHERE name = 'O''Hare'")
	if p := tm.Params()[0]; p.Str != "O'Hare" {
		t.Errorf("param = %+v", p)
	}
}

func TestNormalizeNumberForms(t *testing.T) {
	// Negative, explicit-positive, scientific and bare-dot spellings all
	// normalize to the same template with the literal in the vector.
	cases := map[string]float64{
		"SELECT COUNT(*) FROM t WHERE a = -2e3":   -2e3,
		"SELECT COUNT(*) FROM t WHERE a = +1.5":   1.5,
		"SELECT COUNT(*) FROM t WHERE a = .5":     0.5,
		"SELECT COUNT(*) FROM t WHERE a = 1.5E-2": 1.5e-2,
		"SELECT COUNT(*) FROM t WHERE a = 12":     12,
	}
	var text string
	for sql, want := range cases {
		tm := mustNormalize(t, sql)
		if text == "" {
			text = tm.Text
		} else if tm.Text != text {
			t.Errorf("template for %q = %q, want %q", sql, tm.Text, text)
		}
		if got := tm.Params()[0].Num; got != want {
			t.Errorf("param for %q = %v, want %v", sql, got, want)
		}
	}
}

func TestNormalizeMixedCaseBetweenGroupBy(t *testing.T) {
	a := mustNormalize(t, "SELECT AVG(x) FROM t WHERE a BETWEEN 1 AND 2 GROUP BY b")
	b := mustNormalize(t, "select avg(x) from T where a between 3 and 4 group by b")
	if a.Text != b.Text {
		t.Errorf("templates differ:\n%q\n%q", a.Text, b.Text)
	}
	if a.stmt.groupBy != "b" || a.stmt.conds[0].op != OpBetween {
		t.Errorf("stmt = %+v", a.stmt)
	}
}

func TestNormalizeNoCollisions(t *testing.T) {
	// Pairs of statements with different semantics must never share a
	// template. Notably: numeric vs string literal on the same column
	// (typed placeholders), and column-name case (resolution is
	// case-exact).
	pairs := [][2]string{
		{"SELECT COUNT(*) FROM t WHERE c = 5", "SELECT COUNT(*) FROM t WHERE c = '5'"},
		{"SELECT COUNT(*) FROM t WHERE a = 1", "SELECT COUNT(*) FROM t WHERE A = 1"},
		{"SELECT SUM(x) FROM t WHERE a = 1", "SELECT SUM(X) FROM t WHERE a = 1"},
		{"SELECT SUM(x) FROM t WHERE a BETWEEN 1 AND 2", "SELECT SUM(x) FROM t WHERE a >= 1 AND a <= 2"},
		{"SELECT SUM(x) FROM t WHERE a < 1", "SELECT SUM(x) FROM t WHERE a <= 1"},
		{"SELECT SUM(x) FROM t GROUP BY a", "SELECT SUM(x) FROM t GROUP BY A"},
	}
	for _, pr := range pairs {
		x, y := mustNormalize(t, pr[0]), mustNormalize(t, pr[1])
		if x.Text == y.Text {
			t.Errorf("collision: %q and %q both normalize to %q", pr[0], pr[1], x.Text)
		}
	}
	// Table names, by contrast, resolve case-insensitively everywhere, so
	// they SHOULD share a template.
	x, y := mustNormalize(t, "SELECT SUM(x) FROM Taxi"), mustNormalize(t, "SELECT SUM(x) FROM TAXI")
	if x.Text != y.Text {
		t.Errorf("table case split templates: %q vs %q", x.Text, y.Text)
	}
}

func TestNormalizeKeywordNamedColumns(t *testing.T) {
	// Columns that happen to be named like keywords parse as identifiers
	// in the grammar positions where the parser accepts identifiers; the
	// normalizer must preserve them verbatim there.
	tm := mustNormalize(t, "SELECT SUM(x) FROM t WHERE between >= 1 AND and = 2")
	if len(tm.stmt.conds) != 2 ||
		tm.stmt.conds[0].column != "between" || tm.stmt.conds[1].column != "and" {
		t.Fatalf("conds = %+v", tm.stmt.conds)
	}
}

func TestNormalizeRejectsWhatParseRejects(t *testing.T) {
	bad := []string{
		"SELECT SUM(x) FROM t WHERE a = 1 OR b = 2",
		"SELECT SUM(x) FROM t WHERE a != 1",
		"SELECT SUM(x) FROM t WHERE a <> 1",
		"SELECT MEDIAN(x) FROM t",
		"SELECT SUM(*) FROM t",
		"SELECT SUM(x) FROM t trailing",
		"SELECT SUM(x) FROM t WHERE a BETWEEN 1 AND 'b'",
		"SELECT SUM(x)",
	}
	for _, sql := range bad {
		if _, errN := Normalize(sql); errN == nil {
			t.Errorf("Normalize accepted %q", sql)
		}
		if _, errP := Parse(sql); errP == nil {
			t.Errorf("Parse accepted %q (test premise broken)", sql)
		}
	}
}

// TestBindMatchesCompile is the template-correctness twin: for a battery
// of statements, Normalize → CompileTemplate → Bind must produce exactly
// the Plan that Parse → Compile produces.
func TestBindMatchesCompile(t *testing.T) {
	schema := Schema{
		Table:       "taxi",
		PredColumns: []string{"pickup_time", "pickup_date", "pu_location"},
		AggColumn:   "trip_distance",
		Dicts: map[string]*dataset.Dict{
			"pu_location": dataset.BuildDict([]string{"JFK", "LGA", "EWR"}),
		},
	}
	stmts := []string{
		"SELECT SUM(trip_distance) FROM taxi",
		"SELECT COUNT(*) FROM taxi WHERE pickup_time >= 8 AND pickup_time < 10",
		"SELECT AVG(trip_distance) FROM Taxi WHERE pickup_date BETWEEN 100 AND 200 AND pu_location = 'JFK'",
		"SELECT MIN(trip_distance) FROM taxi WHERE pu_location BETWEEN 'EWR' AND 'LGA'",
		"SELECT MAX(trip_distance) FROM taxi WHERE pickup_time > -2e1 AND pickup_time <= .5 AND pickup_time >= -100",
		"SELECT COUNT(*) FROM taxi GROUP BY pu_location",
		"SELECT SUM(trip_distance) FROM taxi WHERE pickup_time = 7 GROUP BY pu_location",
	}
	for _, sql := range stmts {
		want, err := ParseAndCompile(sql, schema)
		if err != nil {
			t.Fatalf("ParseAndCompile(%q): %v", sql, err)
		}
		tm := mustNormalize(t, sql)
		prep, err := CompileTemplate(tm, schema)
		if err != nil {
			t.Fatalf("CompileTemplate(%q): %v", sql, err)
		}
		got, err := prep.Bind(tm.Params())
		if err != nil {
			t.Fatalf("Bind(%q): %v", sql, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("plan mismatch for %q:\n got %+v\nwant %+v", sql, got, want)
		}
	}
	// Error parity for resolution failures.
	for _, sql := range []string{
		"SELECT SUM(trip_distance) FROM other",
		"SELECT SUM(fare) FROM taxi",
		"SELECT SUM(trip_distance) FROM taxi WHERE nope = 1",
		"SELECT SUM(trip_distance) FROM taxi WHERE pickup_time = 'JFK'",
		"SELECT SUM(trip_distance) FROM taxi WHERE pu_location = 'SFO'",
	} {
		_, errC := ParseAndCompile(sql, schema)
		if errC == nil {
			t.Fatalf("ParseAndCompile accepted %q", sql)
		}
		tm, errN := Normalize(sql)
		if errN != nil {
			continue // rejected even earlier — fine
		}
		prep, errT := CompileTemplate(tm, schema)
		if errT != nil {
			continue
		}
		if _, errB := prep.Bind(tm.Params()); errB == nil {
			t.Errorf("prepared path accepted %q which Compile rejects: %v", sql, errC)
		}
	}
}

func TestBindRebindsNewLiterals(t *testing.T) {
	schema := Schema{PredColumns: []string{"a", "b"}, AggColumn: "v"}
	tm := mustNormalize(t, "SELECT SUM(v) FROM t WHERE a BETWEEN 1 AND 2")
	prep, err := CompileTemplate(tm, schema)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := prep.Bind([]Param{NumParam(5), NumParam(9)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rect.Lo[0] != 5 || plan.Rect.Hi[0] != 9 {
		t.Errorf("rect = %+v", plan.Rect)
	}
	if !math.IsInf(plan.Rect.Lo[1], -1) || !math.IsInf(plan.Rect.Hi[1], 1) {
		t.Errorf("unconstrained dim clipped: %+v", plan.Rect)
	}
	// Arity and kind mismatches must be rejected.
	if _, err := prep.Bind([]Param{NumParam(5)}); err == nil {
		t.Error("short param vector accepted")
	}
	if _, err := prep.Bind([]Param{NumParam(5), StrParam("x")}); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestPlanCacheLRUAndInvalidation(t *testing.T) {
	c := NewPlanCache(2)
	ownerA, ownerB := new(int), new(int)
	p1, p2, p3 := &Prepared{Text: "t1"}, &Prepared{Text: "t2"}, &Prepared{Text: "t3"}

	if _, ok := c.Lookup("t1", ownerA, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Store("t1", ownerA, 0, p1)
	c.Store("t2", ownerA, 0, p2)
	if got, ok := c.Lookup("t1", ownerA, 0); !ok || got != p1 {
		t.Fatal("t1 not cached")
	}
	// t2 is now LRU; storing t3 evicts it.
	c.Store("t3", ownerA, 0, p3)
	if _, ok := c.Lookup("t2", ownerA, 0); ok {
		t.Error("t2 should have been evicted")
	}
	// Generation bump invalidates.
	if _, ok := c.Lookup("t1", ownerA, 1); ok {
		t.Error("stale generation served")
	}
	// ... and the stale entry was dropped, so the old pair misses too.
	if _, ok := c.Lookup("t1", ownerA, 0); ok {
		t.Error("stale entry not dropped")
	}
	// Owner change (drop + re-register) invalidates even at generation 0.
	c.Store("t3", ownerA, 0, p3)
	if _, ok := c.Lookup("t3", ownerB, 0); ok {
		t.Error("entry served across owners")
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Evictions != 1 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Nil cache is inert.
	var nilC *PlanCache
	nilC.Store("x", ownerA, 0, p1)
	if _, ok := nilC.Lookup("x", ownerA, 0); ok {
		t.Error("nil cache hit")
	}
	if s := nilC.Stats(); s != (PlanCacheStats{}) {
		t.Errorf("nil stats = %+v", s)
	}
}
