package rangetree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func bruteStats(coords [][]float64, values []float64, lo, hi []float64) Stats {
	var out Stats
	for i, row := range coords {
		in := true
		for c := range lo {
			if row[c] < lo[c] || row[c] > hi[c] {
				in = false
				break
			}
		}
		if in {
			out.Count++
			out.Sum += values[i]
			out.SumSq += values[i] * values[i]
		}
	}
	return out
}

func randomPoints(rng *stats.RNG, n, d int) ([][]float64, []float64) {
	coords := make([][]float64, n)
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for c := range row {
			row[c] = rng.Float64() * 100
		}
		coords[i] = row
		values[i] = rng.Float64() * 10
	}
	return coords, values
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := New([][]float64{{1}}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := New([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero-dim points accepted")
	}
	if _, err := New([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestMatchesBruteForce1D(t *testing.T) {
	rng := stats.NewRNG(1)
	coords, values := randomPoints(rng, 500, 1)
	tr, err := New(coords, values)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Float64()*100, rng.Float64()*100
		lo, hi := []float64{math.Min(a, b)}, []float64{math.Max(a, b)}
		got, err := tr.Query(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteStats(coords, values, lo, hi)
		if got.Count != want.Count || math.Abs(got.Sum-want.Sum) > 1e-9 {
			t.Fatalf("trial %d: got %+v, want %+v", trial, got, want)
		}
	}
}

func TestMatchesBruteForce2D3D(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, d := range []int{2, 3} {
		coords, values := randomPoints(rng, 400, d)
		tr, err := New(coords, values)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 150; trial++ {
			lo := make([]float64, d)
			hi := make([]float64, d)
			for c := 0; c < d; c++ {
				a, b := rng.Float64()*100, rng.Float64()*100
				lo[c], hi[c] = math.Min(a, b), math.Max(a, b)
			}
			got, err := tr.Query(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteStats(coords, values, lo, hi)
			if got.Count != want.Count ||
				math.Abs(got.Sum-want.Sum) > 1e-9*(1+math.Abs(want.Sum)) ||
				math.Abs(got.SumSq-want.SumSq) > 1e-9*(1+want.SumSq) {
				t.Fatalf("d=%d trial %d: got %+v, want %+v", d, trial, got, want)
			}
		}
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	// many points sharing coordinates stress the boundary logic
	coords := [][]float64{{1, 1}, {1, 1}, {1, 2}, {2, 1}, {2, 2}, {2, 2}}
	values := []float64{1, 2, 3, 4, 5, 6}
	tr, err := New(coords, values)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Query([]float64{1, 1}, []float64{1, 1})
	if got.Count != 2 || got.Sum != 3 {
		t.Errorf("duplicate query = %+v, want count 2 sum 3", got)
	}
	got, _ = tr.Query([]float64{1, 1}, []float64{2, 2})
	if got.Count != 6 || got.Sum != 21 {
		t.Errorf("full query = %+v", got)
	}
}

func TestTotalAndDims(t *testing.T) {
	rng := stats.NewRNG(3)
	coords, values := randomPoints(rng, 100, 2)
	tr, _ := New(coords, values)
	if tr.Dims() != 2 {
		t.Errorf("Dims = %d", tr.Dims())
	}
	if tr.Total().Count != 100 {
		t.Errorf("Total count = %d", tr.Total().Count)
	}
	if _, err := tr.Query([]float64{0}, []float64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestFromColumns(t *testing.T) {
	d := dataset.GenNYCTaxi(800, 2, 4)
	tr, err := FromColumns(d.Pred, d.Agg)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Query([]float64{0, 0}, []float64{24, 31})
	truth, _ := d.Exact(dataset.Sum, dataset.Rect{Lo: []float64{0, 0}, Hi: []float64{24, 31}})
	if math.Abs(got.Sum-truth) > 1e-6*(1+math.Abs(truth)) {
		t.Errorf("FromColumns sum %v != %v", got.Sum, truth)
	}
}

// Property: tree answers equal brute force for arbitrary small inputs.
func TestRangeTreeProperty(t *testing.T) {
	f := func(raw []uint16, qa, qb uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 60 {
			raw = raw[:60]
		}
		// build 2D points from pairs of raw values
		var coords [][]float64
		var values []float64
		for i := 0; i+1 < len(raw); i += 2 {
			coords = append(coords, []float64{float64(raw[i] % 50), float64(raw[i+1] % 50)})
			values = append(values, float64(raw[i]%13))
		}
		if len(coords) == 0 {
			return true
		}
		tr, err := New(coords, values)
		if err != nil {
			return false
		}
		a, b := float64(qa%50), float64(qb%50)
		lo := []float64{math.Min(a, b), math.Min(a, b)}
		hi := []float64{math.Max(a, b), math.Max(a, b)}
		got, err := tr.Query(lo, hi)
		if err != nil {
			return false
		}
		want := bruteStats(coords, values, lo, hi)
		return got.Count == want.Count && math.Abs(got.Sum-want.Sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
