// Package rangetree implements the multi-dimensional orthogonal range
// tree of Appendix A.3 of the PASS paper: after O(n log^{d-1} n)
// preprocessing it returns, for any axis-aligned query rectangle, the
// count, sum and sum of squares of the aggregate values of the points
// inside, in O(log^d n) time.
//
// The paper uses it as the substrate for the d-dimensional max-variance
// oracles; this repository additionally uses it to accelerate exact
// ground-truth evaluation for two- and three-dimensional workloads.
package rangetree

import (
	"fmt"
	"sort"
)

// Stats is the aggregate payload of a range query.
type Stats struct {
	Count      int
	Sum, SumSq float64
}

func (s *Stats) add(o Stats) {
	s.Count += o.Count
	s.Sum += o.Sum
	s.SumSq += o.SumSq
}

// point is one input tuple: coordinates plus the aggregated value.
type point struct {
	coords []float64
	value  float64
}

// Tree is a static d-dimensional range tree.
type Tree struct {
	dims int
	root *node
}

// node is a balanced BST node over one dimension. Internal levels carry an
// associated tree over the next dimension; the last dimension stores the
// canonical subset as sorted arrays with prefix sums.
type node struct {
	key         float64 // split coordinate (median)
	left, right *node
	// assoc is the next-dimension tree over this node's canonical subset
	// (nil at the last dimension).
	assoc *Tree
	// last-dimension payload: coordinates sorted ascending with prefix
	// sums of count/sum/sumsq
	coords []float64
	preSum []float64
	preSq  []float64
	// total over the canonical subset, used when the node range is fully
	// inside the query
	total Stats
	// min/max coordinate of the canonical subset in this dimension
	lo, hi float64
}

// New builds a range tree over points given as coordinate rows and
// values. All rows must have the same dimensionality d >= 1.
func New(coords [][]float64, values []float64) (*Tree, error) {
	if len(coords) != len(values) {
		return nil, fmt.Errorf("rangetree: %d coordinate rows for %d values", len(coords), len(values))
	}
	if len(coords) == 0 {
		return nil, fmt.Errorf("rangetree: no points")
	}
	d := len(coords[0])
	if d < 1 {
		return nil, fmt.Errorf("rangetree: zero-dimensional points")
	}
	pts := make([]point, len(coords))
	for i := range coords {
		if len(coords[i]) != d {
			return nil, fmt.Errorf("rangetree: row %d has %d coordinates, want %d", i, len(coords[i]), d)
		}
		pts[i] = point{coords: coords[i], value: values[i]}
	}
	return build(pts, 0, d), nil
}

// FromColumns builds a tree from column-major predicate data (the layout
// of package dataset).
func FromColumns(pred [][]float64, values []float64) (*Tree, error) {
	n := len(values)
	coords := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(pred))
		for c := range pred {
			row[c] = pred[c][i]
		}
		coords[i] = row
	}
	return New(coords, values)
}

func build(pts []point, dim, dims int) *Tree {
	t := &Tree{dims: dims - dim}
	sorted := make([]point, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(a, b int) bool {
		return sorted[a].coords[dim] < sorted[b].coords[dim]
	})
	t.root = buildNode(sorted, dim, dims)
	return t
}

func buildNode(sorted []point, dim, dims int) *node {
	if len(sorted) == 0 {
		return nil
	}
	n := &node{
		lo: sorted[0].coords[dim],
		hi: sorted[len(sorted)-1].coords[dim],
	}
	for _, p := range sorted {
		n.total.Count++
		n.total.Sum += p.value
		n.total.SumSq += p.value * p.value
	}
	if dim == dims-1 {
		// last dimension: prefix-sum arrays over the sorted coords
		n.coords = make([]float64, len(sorted))
		n.preSum = make([]float64, len(sorted)+1)
		n.preSq = make([]float64, len(sorted)+1)
		for i, p := range sorted {
			n.coords[i] = p.coords[dim]
			n.preSum[i+1] = n.preSum[i] + p.value
			n.preSq[i+1] = n.preSq[i] + p.value*p.value
		}
		return n
	}
	if len(sorted) > 1 {
		mid := len(sorted) / 2
		n.key = sorted[mid].coords[dim]
		n.left = buildNode(sorted[:mid], dim, dims)
		n.right = buildNode(sorted[mid:], dim, dims)
	}
	// associated structure over the canonical subset, next dimension
	n.assoc = build(sorted, dim+1, dims)
	return n
}

// Query returns the aggregate stats of points inside the inclusive
// rectangle lo[i] <= x_i <= hi[i]. The rectangle must have the tree's
// dimensionality.
func (t *Tree) Query(lo, hi []float64) (Stats, error) {
	if len(lo) != t.dims || len(hi) != t.dims {
		return Stats{}, fmt.Errorf("rangetree: query has %d dims, tree has %d", len(lo), t.dims)
	}
	var out Stats
	t.query(t.root, lo, hi, &out)
	return out, nil
}

func (t *Tree) query(n *node, lo, hi []float64, out *Stats) {
	if n == nil || n.total.Count == 0 {
		return
	}
	qlo, qhi := lo[0], hi[0]
	if n.hi < qlo || n.lo > qhi {
		return
	}
	if qlo <= n.lo && n.hi <= qhi {
		// canonical subset fully inside on this dimension
		if len(lo) == 1 {
			out.add(n.total)
		} else {
			n.assoc.query(n.assoc.root, lo[1:], hi[1:], out)
		}
		return
	}
	if n.coords != nil {
		// last-dimension leaf-level node with partial overlap: prefix sums
		i := sort.SearchFloat64s(n.coords, qlo)
		j := sort.Search(len(n.coords), func(k int) bool { return n.coords[k] > qhi })
		if j > i {
			out.add(Stats{
				Count: j - i,
				Sum:   n.preSum[j] - n.preSum[i],
				SumSq: n.preSq[j] - n.preSq[i],
			})
		}
		return
	}
	if n.left == nil && n.right == nil {
		// single-point internal node with partial overlap already handled
		// by the range checks above; reaching here means no overlap
		return
	}
	t.query(n.left, lo, hi, out)
	t.query(n.right, lo, hi, out)
}

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Total returns the aggregate over all points.
func (t *Tree) Total() Stats { return t.root.total }
