package partition

import (
	"repro/internal/dataset"
	"repro/internal/stats"
)

// VOptimal computes the classic V-Optimal histogram partitioning
// (Jagadish et al., VLDB 1998), which minimises the *total* within-bucket
// sum of squared errors — the comparator the paper contrasts with PASS's
// min-max objective in Section 2.4. Runtime is O(k·n²) via the standard
// dynamic program with prefix sums, so callers run it on a sample for
// large inputs (see VOptimalSampled).
func VOptimal(values []float64, k int) Partitioning {
	n := len(values)
	if k <= 0 {
		panic("partition: k must be positive")
	}
	if k > n {
		k = maxInt(n, 1)
	}
	p := stats.NewPrefix(values)
	sse := func(a, b int) float64 {
		// Σ(x-mean)² = Σx² - (Σx)²/n over [a, b)
		cnt := float64(b - a)
		if cnt <= 1 {
			return 0
		}
		s := p.RangeSum(a, b)
		v := p.RangeSumSq(a, b) - s*s/cnt
		if v < 0 {
			return 0
		}
		return v
	}
	const inf = 1e308
	a := make([][]float64, k)
	choice := make([][]int, k)
	for j := range a {
		a[j] = make([]float64, n+1)
		choice[j] = make([]int, n+1)
	}
	for i := 1; i <= n; i++ {
		a[0][i] = sse(0, i)
	}
	for j := 1; j < k; j++ {
		for i := 1; i <= n; i++ {
			best, bestH := inf, 0
			for h := j; h < i; h++ { // at least one item per earlier bucket
				v := a[j-1][h] + sse(h, i)
				if v < best {
					best, bestH = v, h
				}
			}
			if best == inf { // fewer items than buckets
				best, bestH = a[j-1][i-1], i-1
			}
			a[j][i] = best
			choice[j][i] = bestH
		}
	}
	return recoverCuts(choice, n, k)
}

// VOptimalSampled runs VOptimal over m uniform samples of the (sorted)
// dataset and maps the cuts back to full-data positions, mirroring the
// ADP sampling strategy.
func VOptimalSampled(d *dataset.Dataset, k, m int, rng *stats.RNG) Partitioning {
	n := d.N()
	if m > n {
		m = n
	}
	if m < 2*k {
		m = minInt(2*k, n)
	}
	idx := uniformSortedIndices(rng, n, m)
	vals := make([]float64, len(idx))
	for i, j := range idx {
		vals[i] = d.Agg[j]
	}
	sp := VOptimal(vals, k)
	return mapSampleCuts(sp, idx, n)
}

// TotalSSE evaluates the V-Optimal objective of a partitioning: the sum
// over buckets of the within-bucket squared error.
func TotalSSE(values []float64, p Partitioning) float64 {
	pre := stats.NewPrefix(values)
	total := 0.0
	for i := 0; i < p.K(); i++ {
		lo, hi := p.Bounds(i)
		cnt := float64(hi - lo)
		if cnt <= 1 {
			continue
		}
		s := pre.RangeSum(lo, hi)
		v := pre.RangeSumSq(lo, hi) - s*s/cnt
		if v > 0 {
			total += v
		}
	}
	return total
}
