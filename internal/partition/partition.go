// Package partition implements the 1D partitioning algorithms of Section 4
// of the PASS paper: the exact dynamic program, the monotone binary-search
// dynamic program (Appendix A.5), the sampling + discretization approximate
// dynamic program (ADP) used in the paper's experiments, the COUNT-optimal
// equal-size partitioning (Lemma A.1), and the AQP++ hill-climbing
// comparator.
//
// All algorithms operate on a dataset already sorted by the predicate
// column; a partitioning is represented by index cut points into that
// sorted order.
package partition

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Partitioning describes k contiguous partitions of n sorted tuples via
// k+1 cut points: partition i covers half-open index range
// [Cuts[i], Cuts[i+1]); Cuts[0] == 0 and Cuts[k] == n.
type Partitioning struct {
	Cuts []int
}

// K returns the number of partitions.
func (p Partitioning) K() int { return len(p.Cuts) - 1 }

// Bounds returns the half-open index range of partition i.
func (p Partitioning) Bounds(i int) (lo, hi int) { return p.Cuts[i], p.Cuts[i+1] }

// Validate checks the structural invariants; it returns an error describing
// the first violation, or nil.
func (p Partitioning) Validate(n int) error {
	if len(p.Cuts) < 2 {
		return fmt.Errorf("partition: need at least one partition, got %d cuts", len(p.Cuts))
	}
	if p.Cuts[0] != 0 {
		return fmt.Errorf("partition: first cut = %d, want 0", p.Cuts[0])
	}
	if p.Cuts[len(p.Cuts)-1] != n {
		return fmt.Errorf("partition: last cut = %d, want %d", p.Cuts[len(p.Cuts)-1], n)
	}
	for i := 1; i < len(p.Cuts); i++ {
		if p.Cuts[i] < p.Cuts[i-1] {
			return fmt.Errorf("partition: cuts not monotone at %d", i)
		}
	}
	return nil
}

// Find returns the index of the partition containing sorted position pos.
func (p Partitioning) Find(pos int) int {
	lo, hi := 0, p.K()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Cuts[mid+1] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// EqualDepth returns k equal-size partitions of n tuples. By Lemma A.1 this
// is the optimal partitioning for COUNT queries in one dimension, and it is
// the paper's EQ baseline for SUM/AVG.
func EqualDepth(n, k int) Partitioning {
	if k <= 0 {
		panic("partition: k must be positive")
	}
	if k > n && n > 0 {
		k = n
	}
	cuts := make([]int, k+1)
	for i := 0; i <= k; i++ {
		cuts[i] = i * n / k
	}
	return Partitioning{Cuts: cuts}
}

// MaxScore returns the maximum oracle score over the partitions of p, and
// the index of the partition attaining it.
func MaxScore(p Partitioning, o Oracle) (float64, int) {
	worst, arg := -1.0, -1
	for i := 0; i < p.K(); i++ {
		lo, hi := p.Bounds(i)
		if s := o.MaxVar(lo, hi); s > worst {
			worst, arg = s, i
		}
	}
	return worst, arg
}

// NaiveDP computes an optimal (with respect to the oracle) partitioning of
// n items into at most k partitions by the quadratic dynamic program of
// Section 4.3. Runtime is O(k·n²) oracle calls; use only for small inputs
// and as the reference implementation in tests.
func NaiveDP(n, k int, o Oracle) Partitioning {
	if k <= 0 {
		panic("partition: k must be positive")
	}
	if k > n {
		k = maxInt(n, 1)
	}
	// A[j][i] = best achievable max-variance over first i items with j+1
	// partitions; choice[j][i] = start index of the last partition.
	const inf = 1e308
	a := make([][]float64, k)
	choice := make([][]int, k)
	for j := range a {
		a[j] = make([]float64, n+1)
		choice[j] = make([]int, n+1)
	}
	for i := 1; i <= n; i++ {
		a[0][i] = o.MaxVar(0, i)
		choice[0][i] = 0
	}
	for j := 1; j < k; j++ {
		a[j][0] = 0
		for i := 1; i <= n; i++ {
			best, bestH := inf, 0
			for h := 0; h < i; h++ {
				v := maxF(a[j-1][h], o.MaxVar(h, i))
				if v < best {
					best, bestH = v, h
				}
			}
			a[j][i] = best
			choice[j][i] = bestH
		}
	}
	return recoverCuts(choice, n, k)
}

// MonotoneDP computes the same partitioning as NaiveDP but exploits the
// monotonicity of both DP terms (Appendix A.5): A[h, j-1] is non-decreasing
// in h while M([h, i]) is non-increasing in h and non-decreasing in i. The
// crossing point of the two curves is therefore non-decreasing in i, so one
// forward-moving pointer per row finds every minimising split point in O(n)
// amortised oracle calls — O(k·n) total, versus O(k·n·log n) for the
// per-cell binary search this replaces.
func MonotoneDP(n, k int, o Oracle) Partitioning {
	if k <= 0 {
		panic("partition: k must be positive")
	}
	if k > n {
		k = maxInt(n, 1)
	}
	a := make([][]float64, k)
	choice := make([][]int, k)
	for j := range a {
		a[j] = make([]float64, n+1)
		choice[j] = make([]int, n+1)
	}
	for i := 1; i <= n; i++ {
		a[0][i] = o.MaxVar(0, i)
	}
	for j := 1; j < k; j++ {
		prev := a[j-1]
		// h chases the crossing point of the non-decreasing prev row and
		// the non-increasing tail variance; it only ever moves forward
		h := 0
		for i := 1; i <= n; i++ {
			if h > i-1 {
				h = i - 1
			}
			for h < i-1 && prev[h] < o.MaxVar(h, i) {
				h++
			}
			best, bestH := maxF(prev[h], o.MaxVar(h, i)), h
			// the true optimum is at the crossing point or adjacent to it
			if h > 0 {
				if v := maxF(prev[h-1], o.MaxVar(h-1, i)); v < best {
					best, bestH = v, h-1
				}
			}
			if h < i-1 {
				if v := maxF(prev[h+1], o.MaxVar(h+1, i)); v < best {
					best, bestH = v, h+1
				}
			}
			a[j][i] = best
			choice[j][i] = bestH
		}
	}
	return recoverCuts(choice, n, k)
}

func recoverCuts(choice [][]int, n, k int) Partitioning {
	cuts := make([]int, 0, k+1)
	cuts = append(cuts, n)
	i := n
	for j := k - 1; j >= 1 && i > 0; j-- {
		i = choice[j][i]
		cuts = append(cuts, i)
	}
	if cuts[len(cuts)-1] != 0 {
		cuts = append(cuts, 0)
	}
	// reverse and deduplicate empty partitions at the front
	out := make([]int, 0, len(cuts))
	for idx := len(cuts) - 1; idx >= 0; idx-- {
		if len(out) > 0 && out[len(out)-1] == cuts[idx] {
			continue
		}
		out = append(out, cuts[idx])
	}
	return Partitioning{Cuts: out}
}

// HillClimb implements the AQP++ comparator: starting from equal-depth
// cuts, it repeatedly proposes moving one interior cut by a step and keeps
// the move whenever it lowers the maximum variance score, until no move in
// a full sweep improves or maxIters sweeps elapse.
func HillClimb(n, k int, o Oracle, maxIters int) Partitioning {
	p := EqualDepth(n, k)
	if p.K() < 2 {
		return p
	}
	step := maxInt(n/(k*8), 1)
	cur, _ := MaxScore(p, o)
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		for c := 1; c < len(p.Cuts)-1; c++ {
			for _, delta := range []int{-step, step} {
				nc := p.Cuts[c] + delta
				if nc <= p.Cuts[c-1] || nc >= p.Cuts[c+1] {
					continue
				}
				old := p.Cuts[c]
				p.Cuts[c] = nc
				if s, _ := MaxScore(p, o); s < cur {
					cur = s
					improved = true
				} else {
					p.Cuts[c] = old
				}
			}
		}
		if !improved {
			if step == 1 {
				break
			}
			step = maxInt(step/2, 1)
		}
	}
	return p
}

// ADPResult carries the partitioning chosen by ADP plus the sample
// positions it was computed from, so callers can map diagnostics back.
type ADPResult struct {
	Partitioning Partitioning
	// SampleIdx are the ascending full-data indices of the optimisation
	// sample.
	SampleIdx []int
	// Score is the (approximate) max variance score of the chosen
	// partitioning, measured on the optimisation sample.
	Score float64
}

// ADP is the sampling + discretization approximate dynamic program of
// Section 4.3.1 — the algorithm the paper uses in all experiments. It draws
// m optimisation samples from the sorted dataset, builds the discretized
// max-variance oracle for the query kind, runs the monotone DP over the
// samples, and maps the sample cut positions back to full-data cut points.
//
// For COUNT queries the optimum is equal-size partitions (Lemma A.1), so
// ADP short-circuits to EqualDepth.
func ADP(d *dataset.Dataset, k, m int, kind dataset.AggKind, delta float64, rng *stats.RNG) ADPResult {
	n := d.N()
	if kind == dataset.Count {
		return ADPResult{Partitioning: EqualDepth(n, k)}
	}
	if m > n {
		m = n
	}
	if m < 2*k {
		m = minInt(2*k, n)
	}
	idx := uniformSortedIndices(rng, n, m)
	vals := make([]float64, len(idx))
	for i, j := range idx {
		vals[i] = d.Agg[j]
	}
	var o Oracle
	switch kind {
	case dataset.Avg:
		o = NewAvgOracle(vals, delta)
	default:
		o = NewSumOracle(vals)
	}
	sp := MonotoneDP(len(vals), k, o)
	score, _ := MaxScore(sp, o)
	return ADPResult{
		Partitioning: mapSampleCuts(sp, idx, n),
		SampleIdx:    idx,
		Score:        score,
	}
}

// mapSampleCuts translates cut points over the sample positions into cut
// points over the full sorted dataset: a cut before sample s maps to the
// midpoint between the full indices of samples s-1 and s.
func mapSampleCuts(sp Partitioning, idx []int, n int) Partitioning {
	cuts := make([]int, 0, len(sp.Cuts))
	for _, c := range sp.Cuts {
		switch {
		case c <= 0:
			cuts = append(cuts, 0)
		case c >= len(idx):
			cuts = append(cuts, n)
		default:
			mid := (idx[c-1] + idx[c] + 1) / 2
			cuts = append(cuts, mid)
		}
	}
	// deduplicate (two samples can share a midpoint)
	out := cuts[:1]
	for _, c := range cuts[1:] {
		if c > out[len(out)-1] {
			out = append(out, c)
		}
	}
	if out[len(out)-1] != n {
		out = append(out, n)
	}
	return Partitioning{Cuts: out}
}

func uniformSortedIndices(rng *stats.RNG, n, m int) []int {
	if m >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	// systematic-ish sampling with jitter keeps indices sorted in O(m)
	out := make([]int, m)
	stride := float64(n) / float64(m)
	for i := 0; i < m; i++ {
		base := float64(i) * stride
		j := int(base + rng.Float64()*stride)
		if j >= n {
			j = n - 1
		}
		if i > 0 && j <= out[i-1] {
			j = out[i-1] + 1
			if j >= n {
				j = n - 1
			}
		}
		out[i] = j
	}
	return out
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
