package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestEqualDepth(t *testing.T) {
	p := EqualDepth(100, 4)
	if err := p.Validate(100); err != nil {
		t.Fatal(err)
	}
	if p.K() != 4 {
		t.Fatalf("K = %d", p.K())
	}
	for i := 0; i < 4; i++ {
		lo, hi := p.Bounds(i)
		if hi-lo != 25 {
			t.Errorf("partition %d size = %d, want 25", i, hi-lo)
		}
	}
}

func TestEqualDepthMoreKThanN(t *testing.T) {
	p := EqualDepth(3, 10)
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
	if p.K() > 3 {
		t.Errorf("K = %d, want <= 3", p.K())
	}
}

func TestPartitioningFind(t *testing.T) {
	p := Partitioning{Cuts: []int{0, 10, 30, 100}}
	cases := []struct{ pos, want int }{
		{0, 0}, {9, 0}, {10, 1}, {29, 1}, {30, 2}, {99, 2},
	}
	for _, c := range cases {
		if got := p.Find(c.pos); got != c.want {
			t.Errorf("Find(%d) = %d, want %d", c.pos, got, c.want)
		}
	}
}

func TestValidateRejectsBadCuts(t *testing.T) {
	bad := []Partitioning{
		{Cuts: []int{1, 10}},       // doesn't start at 0
		{Cuts: []int{0, 5}},        // doesn't end at n
		{Cuts: []int{0, 7, 3, 10}}, // not monotone
		{Cuts: []int{0}},           // too few
	}
	for i, p := range bad {
		if err := p.Validate(10); err == nil {
			t.Errorf("case %d: Validate accepted invalid cuts %v", i, p.Cuts)
		}
	}
}

func TestSumOracleMedianSplitApprox(t *testing.T) {
	// Lemma A.3: median-split score is within a factor 4 of the exact
	// maximum variance (for SUM queries with no minimum length).
	rng := stats.NewRNG(3)
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = rng.Float64() * 10
	}
	sum := NewSumOracle(vals)
	exact := NewExactOracle(vals, false, 1)
	for _, r := range [][2]int{{0, 60}, {5, 40}, {20, 25}, {0, 2}} {
		got := sum.MaxVar(r[0], r[1])
		want := exact.MaxVar(r[0], r[1])
		if got > want*(1+1e-9) {
			t.Errorf("range %v: median-split %v exceeds exact max %v", r, got, want)
		}
		if want > 0 && got < want/4-1e-9 {
			t.Errorf("range %v: median-split %v below want/4 = %v", r, got, want/4)
		}
	}
}

func TestCountOracle(t *testing.T) {
	o := CountOracle{}
	if got := o.MaxVar(0, 100); got != 25 {
		t.Errorf("count score = %v, want 25", got)
	}
	if got := o.MaxVar(0, 1); got != 0 {
		t.Errorf("singleton score = %v, want 0", got)
	}
	lo, hi := o.MaxVarWindow(0, 100)
	if hi-lo != 50 {
		t.Errorf("count worst window size = %d, want 50", hi-lo)
	}
}

func TestAvgOracleFindsHighVarianceWindow(t *testing.T) {
	// flat zeros except a burst in [70, 80) — the worst AVG window should
	// cover the burst
	vals := make([]float64, 100)
	for i := 70; i < 80; i++ {
		vals[i] = 50
	}
	o := NewAvgOracle(vals, 0.1) // window = 10
	lo, hi := o.MaxVarWindow(0, 100)
	if lo < 60 || hi > 90 {
		t.Errorf("worst window [%d,%d) misses the burst", lo, hi)
	}
	if o.MaxVar(0, 100) <= 0 {
		t.Error("burst should produce positive variance score")
	}
	// a region with no burst scores lower
	if o.MaxVar(0, 50) >= o.MaxVar(50, 100) {
		t.Error("burst half should dominate flat half")
	}
}

func TestAvgOracleSmallPartition(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	o := NewAvgOracle(vals, 0.5) // window = 2, need >= 4 items
	if got := o.MaxVar(0, 3); got != 0 {
		t.Errorf("partition smaller than 2δm should score 0, got %v", got)
	}
	if got := o.MaxVar(0, 5); got < 0 {
		t.Errorf("negative score %v", got)
	}
}

func TestExactOracleMonotone(t *testing.T) {
	// growing a partition can only increase the exact max variance
	rng := stats.NewRNG(5)
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = rng.Float64() * 10
	}
	o := NewExactOracle(vals, false, 1)
	prev := 0.0
	for hi := 1; hi <= 40; hi++ {
		cur := o.MaxVar(0, hi)
		if cur < prev-1e-9 {
			t.Fatalf("exact oracle not monotone at hi=%d: %v < %v", hi, cur, prev)
		}
		prev = cur
	}
}

func TestNaiveDPOptimalOnTinyInput(t *testing.T) {
	// the DP must match the brute-force optimum over all single cuts
	vals := []float64{1, 1, 1, 1, 100, 100, 100, 100}
	o := NewExactOracle(vals, false, 1)
	p := NaiveDP(len(vals), 2, o)
	if err := p.Validate(len(vals)); err != nil {
		t.Fatal(err)
	}
	got, _ := MaxScore(p, o)
	best := math.Inf(1)
	for c := 1; c < len(vals); c++ {
		cand := Partitioning{Cuts: []int{0, c, len(vals)}}
		if s, _ := MaxScore(cand, o); s < best {
			best = s
		}
	}
	if math.Abs(got-best) > 1e-9 {
		t.Errorf("DP score %v != brute-force optimum %v (cuts %v)", got, best, p.Cuts)
	}
}

func TestNaiveDPBeatsBruteForce(t *testing.T) {
	// exhaustive check: DP result must equal the best over all 2-cut
	// partitionings of a small input
	rng := stats.NewRNG(9)
	vals := make([]float64, 12)
	for i := range vals {
		vals[i] = math.Floor(rng.Float64() * 10)
	}
	o := NewExactOracle(vals, false, 1)
	p := NaiveDP(len(vals), 3, o)
	got, _ := MaxScore(p, o)
	best := math.Inf(1)
	for c1 := 1; c1 < len(vals); c1++ {
		for c2 := c1 + 1; c2 < len(vals); c2++ {
			cand := Partitioning{Cuts: []int{0, c1, c2, len(vals)}}
			if s, _ := MaxScore(cand, o); s < best {
				best = s
			}
		}
	}
	if got > best+1e-9 {
		t.Errorf("DP score %v worse than brute-force best %v", got, best)
	}
}

func TestMonotoneDPMatchesNaiveWithExactOracle(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 5; trial++ {
		vals := make([]float64, 30)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		o := NewExactOracle(vals, false, 1)
		for _, k := range []int{2, 3, 4} {
			pn := NaiveDP(len(vals), k, o)
			pm := MonotoneDP(len(vals), k, o)
			sn, _ := MaxScore(pn, o)
			sm, _ := MaxScore(pm, o)
			if sm > sn*(1+1e-9)+1e-12 {
				t.Errorf("trial %d k=%d: monotone DP score %v > naive %v", trial, k, sm, sn)
			}
		}
	}
}

func TestMonotoneDPHandlesAdversarial(t *testing.T) {
	// 7/8 zeros then a noisy tail: the DP should concentrate cuts in the
	// tail, giving a far lower score than equal-depth
	d := dataset.GenAdversarial(400, 1)
	o := NewSumOracle(d.Agg)
	p := MonotoneDP(400, 8, o)
	if err := p.Validate(400); err != nil {
		t.Fatal(err)
	}
	dpScore, _ := MaxScore(p, o)
	eqScore, _ := MaxScore(EqualDepth(400, 8), o)
	if dpScore >= eqScore {
		t.Errorf("DP score %v should beat equal-depth %v on adversarial data", dpScore, eqScore)
	}
}

func TestADPCountShortCircuits(t *testing.T) {
	d := dataset.GenUniform(1000, 1, 10, 1)
	res := ADP(d, 8, 100, dataset.Count, 0.01, stats.NewRNG(1))
	eq := EqualDepth(1000, 8)
	if len(res.Partitioning.Cuts) != len(eq.Cuts) {
		t.Fatalf("COUNT ADP should be equal-depth: %v", res.Partitioning.Cuts)
	}
	for i := range eq.Cuts {
		if res.Partitioning.Cuts[i] != eq.Cuts[i] {
			t.Fatalf("COUNT ADP cuts %v != equal-depth %v", res.Partitioning.Cuts, eq.Cuts)
		}
	}
}

func TestADPValidAndBeatsEqualDepthOnAdversarial(t *testing.T) {
	d := dataset.GenAdversarial(4000, 2)
	rng := stats.NewRNG(3)
	res := ADP(d, 16, 800, dataset.Sum, 0.01, rng)
	if err := res.Partitioning.Validate(d.N()); err != nil {
		t.Fatal(err)
	}
	// evaluate both partitionings under the full-data oracle
	o := NewSumOracle(d.Agg)
	adpScore, _ := MaxScore(res.Partitioning, o)
	eqScore, _ := MaxScore(EqualDepth(d.N(), 16), o)
	if adpScore >= eqScore {
		t.Errorf("ADP score %v should beat EQ %v on adversarial data", adpScore, eqScore)
	}
}

func TestADPAvgKind(t *testing.T) {
	d := dataset.GenIntelWireless(3000, 4)
	res := ADP(d, 8, 500, dataset.Avg, 0.02, stats.NewRNG(5))
	if err := res.Partitioning.Validate(d.N()); err != nil {
		t.Fatal(err)
	}
	if res.Partitioning.K() < 2 {
		t.Errorf("expected multiple partitions, got %d", res.Partitioning.K())
	}
}

func TestHillClimbImproves(t *testing.T) {
	d := dataset.GenAdversarial(2000, 6)
	o := NewSumOracle(d.Agg)
	hc := HillClimb(d.N(), 8, o, 30)
	if err := hc.Validate(d.N()); err != nil {
		t.Fatal(err)
	}
	hcScore, _ := MaxScore(hc, o)
	eqScore, _ := MaxScore(EqualDepth(d.N(), 8), o)
	if hcScore > eqScore+1e-9 {
		t.Errorf("hill climbing worsened the score: %v > %v", hcScore, eqScore)
	}
}

// Property: DP output always satisfies the partitioning invariants and
// never exceeds k partitions.
func TestDPInvariantsProperty(t *testing.T) {
	f := func(raw []uint8, kSeed uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		k := 2 + int(kSeed)%4
		o := NewSumOracle(vals)
		p := MonotoneDP(len(vals), k, o)
		if p.Validate(len(vals)) != nil {
			return false
		}
		return p.K() <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMapSampleCuts(t *testing.T) {
	idx := []int{5, 10, 20, 40, 80}
	sp := Partitioning{Cuts: []int{0, 2, 5}}
	full := mapSampleCuts(sp, idx, 100)
	if err := full.Validate(100); err != nil {
		t.Fatal(err)
	}
	// cut before sample 2 (full idx 20) should land between 10 and 20
	if full.Cuts[1] <= 10 || full.Cuts[1] > 20 {
		t.Errorf("mapped cut = %d, want in (10, 20]", full.Cuts[1])
	}
}

func TestUniformSortedIndices(t *testing.T) {
	rng := stats.NewRNG(8)
	idx := uniformSortedIndices(rng, 1000, 100)
	if len(idx) != 100 {
		t.Fatalf("len = %d", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("not strictly increasing at %d: %v", i, idx[i-3:i+1])
		}
	}
	if idx[len(idx)-1] >= 1000 || idx[0] < 0 {
		t.Fatal("index out of range")
	}
}
