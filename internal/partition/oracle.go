package partition

import (
	"repro/internal/stats"
)

// Oracle approximates M(lo, hi): the maximum variance score of any
// "meaningful" query that lies completely inside the candidate partition
// [lo, hi) of the sorted value sequence (Section 4.3). Scores returned by
// one oracle are mutually comparable; scores from different oracle types
// are not.
type Oracle interface {
	MaxVar(lo, hi int) float64
}

// WindowOracle is an Oracle that can additionally report which query
// (window of the sorted sequence) attains the maximum variance, which the
// challenging-query workload generator uses (Section 5.3).
type WindowOracle interface {
	Oracle
	// MaxVarWindow returns the half-open index range of the
	// (approximately) worst query inside [lo, hi).
	MaxVarWindow(lo, hi int) (qlo, qhi int)
}

// SumOracle scores SUM (and, with unit values, COUNT) queries using the
// median-split discretization of Appendix A.3: the worst query inside a
// partition is approximated, within a factor of 4, by the worse of its two
// halves. The variance score follows Appendix A.1/A.2 with the ratio
// N_i/n_i assumed common across partitions:
//
//	score([a,b) in [lo,hi)) = (n·Σt² − (Σt)²) / n, n = hi − lo.
type SumOracle struct {
	prefix *stats.Prefix
}

// NewSumOracle builds the oracle over the sorted aggregate values.
func NewSumOracle(values []float64) *SumOracle {
	return &SumOracle{prefix: stats.NewPrefix(values)}
}

func (o *SumOracle) score(a, b, n int) float64 {
	if n <= 0 {
		return 0
	}
	return o.prefix.ScaledVar(a, b, n) / float64(n)
}

// MaxVar implements Oracle via the median split (Lemma A.3).
func (o *SumOracle) MaxVar(lo, hi int) float64 {
	n := hi - lo
	if n <= 1 {
		return 0
	}
	mid := lo + n/2
	return maxF(o.score(lo, mid, n), o.score(mid, hi, n))
}

// MaxVarWindow implements WindowOracle: it returns the half of the
// partition with the larger variance score.
func (o *SumOracle) MaxVarWindow(lo, hi int) (int, int) {
	n := hi - lo
	if n <= 1 {
		return lo, hi
	}
	mid := lo + n/2
	if o.score(lo, mid, n) >= o.score(mid, hi, n) {
		return lo, mid
	}
	return mid, hi
}

// CountOracle scores COUNT queries. From Lemma A.1 the worst COUNT query
// inside a partition of n items selects n/2 of them, with score
// (n·(n/2) − (n/2)²)/n = n/4; it depends only on the partition size.
type CountOracle struct{}

// MaxVar implements Oracle.
func (CountOracle) MaxVar(lo, hi int) float64 {
	n := float64(hi - lo)
	if n <= 1 {
		return 0
	}
	return n / 4
}

// MaxVarWindow implements WindowOracle: any half-partition window.
func (CountOracle) MaxVarWindow(lo, hi int) (int, int) {
	n := hi - lo
	if n <= 1 {
		return lo, hi
	}
	return lo, lo + n/2
}

// AvgOracle scores AVG queries via the δm-window index of Appendix A.4:
// the worst AVG query inside a partition has fewer than 2δm items
// (Lemma A.4), and is approximated within a factor of 4 by the best
// fixed-length δm window, found by a range-maximum query over precomputed
// per-window sums of squares.
//
//	score(q in [lo,hi)) = (n·Σt² − (Σt)²) / (n·|q|²), n = hi − lo.
//
// Partitions with fewer than 2·δm items score 0 (the paper treats them as
// too small to contain a meaningful query).
type AvgOracle struct {
	prefix *stats.Prefix
	// winSq[g] = Σ_{h in [g, g+w)} t_h², indexed by window start
	rmq *stats.SparseMax
	w   int
	n   int
}

// NewAvgOracle builds the index over the sorted aggregate values; delta is
// the minimum meaningful selectivity (fraction of the m values a query must
// cover), so the window length is max(1, δ·m).
func NewAvgOracle(values []float64, delta float64) *AvgOracle {
	m := len(values)
	w := int(delta * float64(m))
	if w < 1 {
		w = 1
	}
	if w > m {
		w = m
	}
	o := &AvgOracle{prefix: stats.NewPrefix(values), w: w, n: m}
	if m >= w {
		winSq := make([]float64, m-w+1)
		for g := range winSq {
			winSq[g] = o.prefix.RangeSumSq(g, g+w)
		}
		o.rmq = stats.NewSparseMax(winSq)
	}
	return o
}

// Window returns the δm window length used by the oracle.
func (o *AvgOracle) Window() int { return o.w }

// MaxVar implements Oracle.
func (o *AvgOracle) MaxVar(lo, hi int) float64 {
	qlo, qhi := o.MaxVarWindow(lo, hi)
	if qlo == qhi {
		return 0
	}
	n := hi - lo
	q := qhi - qlo
	return o.prefix.ScaledVar(qlo, qhi, n) / (float64(n) * float64(q) * float64(q))
}

// MaxVarWindow implements WindowOracle. It returns an empty range when the
// partition is too small to contain a meaningful query.
func (o *AvgOracle) MaxVarWindow(lo, hi int) (int, int) {
	if hi-lo < 2*o.w || o.rmq == nil {
		return lo, lo
	}
	// window starts in [lo, hi-w]
	g := o.rmq.ArgMax(lo, hi-o.w+1)
	return g, g + o.w
}

// ExactOracle enumerates every contiguous query of at least minLen items to
// find the true maximum variance score — O((hi-lo)²) per call. It is the
// reference oracle for tests and the naive DP of Section 4.3.
type ExactOracle struct {
	prefix *stats.Prefix
	// Kind selects the score formula: true for AVG, false for SUM/COUNT.
	avg    bool
	minLen int
}

// NewExactOracle builds the reference oracle; avg selects the AVG score
// normalisation, minLen is the smallest meaningful query size (δ·n).
func NewExactOracle(values []float64, avg bool, minLen int) *ExactOracle {
	if minLen < 1 {
		minLen = 1
	}
	return &ExactOracle{prefix: stats.NewPrefix(values), avg: avg, minLen: minLen}
}

// MaxVar implements Oracle by exhaustive enumeration.
func (o *ExactOracle) MaxVar(lo, hi int) float64 {
	qlo, qhi := o.MaxVarWindow(lo, hi)
	if qlo >= qhi {
		return 0
	}
	return o.score(qlo, qhi, hi-lo)
}

func (o *ExactOracle) score(a, b, n int) float64 {
	v := o.prefix.ScaledVar(a, b, n) / float64(n)
	if o.avg {
		q := float64(b - a)
		v /= q * q
	}
	return v
}

// MaxVarWindow implements WindowOracle by exhaustive enumeration.
func (o *ExactOracle) MaxVarWindow(lo, hi int) (int, int) {
	n := hi - lo
	if n < o.minLen {
		return lo, lo
	}
	best, bl, bh := -1.0, lo, lo
	for a := lo; a < hi; a++ {
		for b := a + o.minLen; b <= hi; b++ {
			if s := o.score(a, b, n); s > best {
				best, bl, bh = s, a, b
			}
		}
	}
	return bl, bh
}

var (
	_ WindowOracle = (*SumOracle)(nil)
	_ WindowOracle = CountOracle{}
	_ WindowOracle = (*AvgOracle)(nil)
	_ WindowOracle = (*ExactOracle)(nil)
)
