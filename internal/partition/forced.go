package partition

import (
	"math"
	"sort"

	"repro/internal/dataset"
)

// Boundary is one partition boundary a caller wants the partitioning to
// respect, expressed as a predicate value rather than a sorted index. It
// is how workload-driven re-optimization (internal/adaptive) communicates
// observed query endpoints to the builder: a query whose predicate range
// starts and ends exactly on partition boundaries is covered by whole
// partitions and answered exactly from precomputed aggregates.
type Boundary struct {
	// Value is the predicate value the boundary aligns to.
	Value float64
	// After selects which side of ties the cut falls on: false places the
	// cut before the first tuple with predicate >= Value (aligning a query
	// lower bound), true places it after the last tuple with predicate
	// <= Value (aligning a query upper bound).
	After bool
}

// Forced builds a partitioning of the sorted dataset that respects the
// given boundaries and spends the remaining budget on equal-depth
// refinement: the boundary cut points split the data into segments, and
// the leftover partition budget is apportioned to the segments in
// proportion to their size (largest remainders first), subdividing each
// segment into equal-size pieces.
//
// Equal-depth refinement inside the segments keeps the construction cheap
// and is COUNT-optimal (Lemma A.1 of the paper); the workload alignment
// comes from the forced cuts, which turn repeated query ranges into
// exactly-covered partition unions. Boundaries that fall outside the data
// or collide with each other are dropped; if more boundaries than the
// budget allows survive, the excess is trimmed evenly. The result always
// satisfies Validate(n) with at most k partitions.
func Forced(sorted *dataset.Dataset, k int, bounds []Boundary) Partitioning {
	n := sorted.N()
	if k <= 0 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	pred := sorted.Pred[0]
	// translate boundary values into interior cut indices
	cutSet := make(map[int]bool)
	for _, b := range bounds {
		var c int
		if b.After {
			c = sort.SearchFloat64s(pred, math.Nextafter(b.Value, math.Inf(1)))
		} else {
			c = sort.SearchFloat64s(pred, b.Value)
		}
		if c > 0 && c < n {
			cutSet[c] = true
		}
	}
	forced := make([]int, 0, len(cutSet))
	for c := range cutSet {
		forced = append(forced, c)
	}
	sort.Ints(forced)
	// more forced cuts than the budget can host: keep an evenly spaced
	// subset so the trimmed set still spans the workload's range
	if len(forced) > k-1 {
		kept := make([]int, 0, k-1)
		for i := 0; i < k-1; i++ {
			kept = append(kept, forced[i*len(forced)/(k-1)])
		}
		forced = kept
	}
	// segments between consecutive forced cuts (including the data ends)
	segs := append(append([]int{0}, forced...), n)
	spare := k - (len(segs) - 1)
	extra := apportion(segs, spare)
	cuts := make([]int, 0, k+1)
	for i := 0; i+1 < len(segs); i++ {
		lo, hi := segs[i], segs[i+1]
		pieces := extra[i] + 1
		for j := 0; j < pieces; j++ {
			c := lo + j*(hi-lo)/pieces
			if len(cuts) == 0 || c > cuts[len(cuts)-1] {
				cuts = append(cuts, c)
			}
		}
	}
	if len(cuts) == 0 || cuts[len(cuts)-1] != n {
		cuts = append(cuts, n)
	}
	if cuts[0] != 0 {
		cuts = append([]int{0}, cuts...)
	}
	return Partitioning{Cuts: cuts}
}

// apportion distributes spare extra cuts to the segments proportionally
// to their sizes, largest remainders first. segs has len(segs)-1 segments.
func apportion(segs []int, spare int) []int {
	m := len(segs) - 1
	extra := make([]int, m)
	if spare <= 0 {
		return extra
	}
	total := segs[m] - segs[0]
	if total <= 0 {
		return extra
	}
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, m)
	used := 0
	for i := 0; i < m; i++ {
		size := segs[i+1] - segs[i]
		share := float64(spare) * float64(size) / float64(total)
		extra[i] = int(share)
		used += extra[i]
		rems[i] = rem{i: i, frac: share - float64(extra[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].i < rems[b].i
	})
	for j := 0; used < spare && j < m; j++ {
		extra[rems[j].i]++
		used++
	}
	return extra
}
