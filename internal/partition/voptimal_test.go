package partition

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestVOptimalSeparatesClusters(t *testing.T) {
	// two flat clusters: the V-Optimal cut must land exactly between them,
	// making the total SSE zero
	vals := []float64{5, 5, 5, 5, 50, 50, 50}
	p := VOptimal(vals, 2)
	if err := p.Validate(len(vals)); err != nil {
		t.Fatal(err)
	}
	if got := TotalSSE(vals, p); got != 0 {
		t.Errorf("two clusters, two buckets: SSE = %v, want 0 (cuts %v)", got, p.Cuts)
	}
}

func TestVOptimalMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(2)
	vals := make([]float64, 14)
	for i := range vals {
		vals[i] = math.Floor(rng.Float64() * 20)
	}
	p := VOptimal(vals, 3)
	got := TotalSSE(vals, p)
	best := math.Inf(1)
	for c1 := 1; c1 < len(vals); c1++ {
		for c2 := c1 + 1; c2 < len(vals); c2++ {
			cand := Partitioning{Cuts: []int{0, c1, c2, len(vals)}}
			if s := TotalSSE(vals, cand); s < best {
				best = s
			}
		}
	}
	if got > best+1e-9 {
		t.Errorf("V-Optimal SSE %v worse than brute force %v", got, best)
	}
}

func TestVOptimalDegenerate(t *testing.T) {
	p := VOptimal([]float64{1, 2}, 5)
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
	if p.K() > 2 {
		t.Errorf("more buckets than items: %v", p.Cuts)
	}
}

func TestVOptimalSampled(t *testing.T) {
	d := dataset.GenAdversarial(5000, 3)
	p := VOptimalSampled(d, 16, 600, stats.NewRNG(4))
	if err := p.Validate(d.N()); err != nil {
		t.Fatal(err)
	}
	// the variance-aware objective must beat equal-depth on total SSE
	vo := TotalSSE(d.Agg, p)
	eq := TotalSSE(d.Agg, EqualDepth(d.N(), 16))
	if vo >= eq {
		t.Errorf("V-Optimal SSE %v should beat equal-depth %v on adversarial data", vo, eq)
	}
}

func TestVOptimalVsMinMaxObjective(t *testing.T) {
	// the paper's point (Section 2.4): V-Optimal minimises total variance,
	// PASS minimises the worst case; on the adversarial tail the min-max
	// partitioning should have a no-worse maximum score
	d := dataset.GenAdversarial(3000, 5)
	o := NewSumOracle(d.Agg)
	adp := ADP(d, 16, 600, dataset.Sum, 0.01, stats.NewRNG(6)).Partitioning
	vo := VOptimalSampled(d, 16, 600, stats.NewRNG(6))
	adpMax, _ := MaxScore(adp, o)
	voMax, _ := MaxScore(vo, o)
	if adpMax > voMax*2 {
		t.Errorf("ADP max score %v should be competitive with V-Optimal %v on its own objective", adpMax, voMax)
	}
}
