// Package parallel provides the bounded worker pool used by the synopsis
// build and batched-query hot paths. The pool is sized by GOMAXPROCS, so a
// single-CPU machine degrades gracefully to the sequential loop with no
// goroutine overhead, while multicore machines fan independent work items
// across every core.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the worker-pool size used by For: GOMAXPROCS at the time
// of the call.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n), fanning the iterations across
// min(Workers(), n) goroutines, and returns when every call has completed.
// Iterations are claimed from a shared atomic counter, so uneven per-item
// cost balances automatically.
//
// Iterations must be independent: fn may write only state owned by
// iteration i (e.g. disjoint sub-slices of a shared array) unless it
// synchronises on its own.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
