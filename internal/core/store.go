package core

import (
	"fmt"
	"slices"
	"sort"
)

// leafStore is the columnar (structure-of-arrays) backing store for the
// stratified leaf samples. Instead of one []SampleTuple slice per leaf —
// a pointer chase per sample point — every sample lives in two contiguous
// flat arrays: values, and coords with stride dims. Leaf i owns the global
// sample range [offsets[i], offsets[i+1]).
//
// Within each leaf, samples are kept sorted along the leaf's primary split
// dimension (sortDim), and per-leaf prefix (sum, sumSq) arrays are
// maintained over that order. A range predicate on the sort dimension then
// resolves to a contiguous sample range by binary search, and — when no
// other dimension is constrained — its count/sum/sumSq come from two
// prefix lookups instead of an O(k) scan.
//
// The store supports single-sample insertion and removal (the reservoir
// maintenance path of Section 4.5): both keep the sort order, offsets and
// prefix aggregates consistent. A mutation shifts the flat arrays and
// rebuilds the touched leaf's prefixes, which is O(K) worst case — fine
// for the reservoir path, where acceptances arrive at rate K/N.
type leafStore struct {
	dims    int
	offsets []int     // len numLeaves+1; leaf i owns [offsets[i], offsets[i+1])
	coords  []float64 // len total*dims; sample j's point is coords[j*dims:(j+1)*dims]
	values  []float64 // len total
	sortDim []int     // per leaf: the dimension its samples are sorted along
	// per-leaf inclusive prefix aggregates, aligned with the sample order:
	// for leaf base o, prefSum[o+j] = Σ values[o..o+j] (within the leaf).
	prefSum   []float64
	prefSumSq []float64
}

// newLeafStore allocates a store for the given per-leaf sample counts. The
// per-leaf layout is fixed up-front, so build workers can fill disjoint
// leaf ranges concurrently without synchronisation.
func newLeafStore(dims int, counts []int) *leafStore {
	offsets := make([]int, len(counts)+1)
	for i, c := range counts {
		offsets[i+1] = offsets[i] + c
	}
	total := offsets[len(counts)]
	return &leafStore{
		dims:      dims,
		offsets:   offsets,
		coords:    make([]float64, total*dims),
		values:    make([]float64, total),
		sortDim:   make([]int, len(counts)),
		prefSum:   make([]float64, total),
		prefSumSq: make([]float64, total),
	}
}

func (st *leafStore) numLeaves() int       { return len(st.offsets) - 1 }
func (st *leafStore) totalLen() int        { return len(st.values) }
func (st *leafStore) leafLen(leaf int) int { return st.offsets[leaf+1] - st.offsets[leaf] }

// point returns a view of global sample j's coordinates.
func (st *leafStore) point(j int) []float64 { return st.coords[j*st.dims : (j+1)*st.dims] }

// leafValues returns a view of leaf's sample values in store order.
func (st *leafStore) leafValues(leaf int) []float64 {
	return st.values[st.offsets[leaf]:st.offsets[leaf+1]]
}

// leafTuples materialises leaf's samples as SampleTuples (copies).
func (st *leafStore) leafTuples(leaf int) []SampleTuple {
	o, e := st.offsets[leaf], st.offsets[leaf+1]
	out := make([]SampleTuple, 0, e-o)
	for j := o; j < e; j++ {
		out = append(out, SampleTuple{
			Point: append([]float64(nil), st.point(j)...),
			Value: st.values[j],
		})
	}
	return out
}

// finishLeaf sorts leaf's samples along dim and rebuilds its prefix
// aggregates. Call once per leaf after its samples are written; safe to
// call concurrently for distinct leaves.
func (st *leafStore) finishLeaf(leaf, dim int) {
	st.sortDim[leaf] = dim
	st.sortLeaf(leaf, dim)
	st.rebuildPrefix(leaf)
}

// sortLeaf orders leaf's samples by coordinate dim, ties broken by prior
// position (stable, so the layout is deterministic). The 1D build path
// draws samples in ascending predicate order, which the fast pre-check
// detects, skipping the sort entirely.
func (st *leafStore) sortLeaf(leaf, dim int) {
	o, e := st.offsets[leaf], st.offsets[leaf+1]
	n := e - o
	if n < 2 {
		return
	}
	d := st.dims
	sorted := true
	for j := o + 1; j < e; j++ {
		if st.coords[j*d+dim] < st.coords[(j-1)*d+dim] {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool {
		return st.coords[(o+ord[a])*d+dim] < st.coords[(o+ord[b])*d+dim]
	})
	cs := append([]float64(nil), st.coords[o*d:e*d]...)
	vs := append([]float64(nil), st.values[o:e]...)
	for i, from := range ord {
		copy(st.coords[(o+i)*d:(o+i+1)*d], cs[from*d:(from+1)*d])
		st.values[o+i] = vs[from]
	}
}

// rebuildPrefix recomputes leaf's prefix aggregates from its values.
func (st *leafStore) rebuildPrefix(leaf int) {
	o, e := st.offsets[leaf], st.offsets[leaf+1]
	sum, sumSq := 0.0, 0.0
	for j := o; j < e; j++ {
		v := st.values[j]
		sum += v
		sumSq += v * v
		st.prefSum[j] = sum
		st.prefSumSq[j] = sumSq
	}
}

// searchRange returns the global index range [a, b) of leaf's samples whose
// sort-dimension coordinate lies in [lo, hi], by binary search over the
// leaf's sorted order.
func (st *leafStore) searchRange(leaf int, lo, hi float64) (a, b int) {
	o, e := st.offsets[leaf], st.offsets[leaf+1]
	d, sd := st.dims, st.sortDim[leaf]
	a = o + sort.Search(e-o, func(j int) bool { return st.coords[(o+j)*d+sd] >= lo })
	b = o + sort.Search(e-o, func(j int) bool { return st.coords[(o+j)*d+sd] > hi })
	return a, b
}

// rangeAgg returns the count, sum and sum of squares of leaf's sample
// values in the global range [a, b), from two prefix lookups.
func (st *leafStore) rangeAgg(leaf, a, b int) (n int, sum, sumSq float64) {
	if a >= b {
		return 0, 0, 0
	}
	sum, sumSq = st.prefSum[b-1], st.prefSumSq[b-1]
	if o := st.offsets[leaf]; a > o {
		sum -= st.prefSum[a-1]
		sumSq -= st.prefSumSq[a-1]
	}
	return b - a, sum, sumSq
}

// insert adds one sample to leaf at its sorted position, keeping offsets
// and the leaf's prefix aggregates consistent. Coordinates beyond
// len(point) are stored as zero (1D synopses always pass at least one).
func (st *leafStore) insert(leaf int, point []float64, value float64) {
	d := st.dims
	sd := st.sortDim[leaf]
	o, e := st.offsets[leaf], st.offsets[leaf+1]
	key := 0.0
	if sd < len(point) {
		key = point[sd]
	}
	pos := o + sort.Search(e-o, func(j int) bool { return st.coords[(o+j)*d+sd] > key })

	st.values = slices.Insert(st.values, pos, value)
	st.prefSum = slices.Insert(st.prefSum, pos, 0)
	st.prefSumSq = slices.Insert(st.prefSumSq, pos, 0)
	row := make([]float64, d)
	copy(row, point)
	st.coords = slices.Insert(st.coords, pos*d, row...)
	for i := leaf + 1; i < len(st.offsets); i++ {
		st.offsets[i]++
	}
	st.rebuildPrefix(leaf)
}

// remove deletes the first sample in leaf whose value equals value,
// reporting whether one was found.
func (st *leafStore) remove(leaf int, value float64) bool {
	o, e := st.offsets[leaf], st.offsets[leaf+1]
	for j := o; j < e; j++ {
		if st.values[j] == value {
			st.removeAt(leaf, j)
			return true
		}
	}
	return false
}

// removeAt deletes the sample at global position pos inside leaf.
func (st *leafStore) removeAt(leaf, pos int) {
	d := st.dims
	st.values = slices.Delete(st.values, pos, pos+1)
	st.prefSum = slices.Delete(st.prefSum, pos, pos+1)
	st.prefSumSq = slices.Delete(st.prefSumSq, pos, pos+1)
	st.coords = slices.Delete(st.coords, pos*d, (pos+1)*d)
	for i := leaf + 1; i < len(st.offsets); i++ {
		st.offsets[i]--
	}
	st.rebuildPrefix(leaf)
}

// checkInvariants verifies the columnar layout: consistent array lengths,
// monotone offsets, per-leaf sort order along sortDim, and prefix
// aggregates matching the values. Used by tests.
func (st *leafStore) checkInvariants() error {
	total := len(st.values)
	if len(st.coords) != total*st.dims {
		return fmt.Errorf("core: store coords length %d != %d samples × %d dims", len(st.coords), total, st.dims)
	}
	if len(st.prefSum) != total || len(st.prefSumSq) != total {
		return fmt.Errorf("core: store prefix length mismatch")
	}
	if st.offsets[0] != 0 || st.offsets[st.numLeaves()] != total {
		return fmt.Errorf("core: store offsets do not span [0, %d]", total)
	}
	for leaf := 0; leaf < st.numLeaves(); leaf++ {
		o, e := st.offsets[leaf], st.offsets[leaf+1]
		if e < o {
			return fmt.Errorf("core: store offsets not monotone at leaf %d", leaf)
		}
		sd := st.sortDim[leaf]
		if sd < 0 || sd >= st.dims {
			return fmt.Errorf("core: leaf %d sort dimension %d out of range", leaf, sd)
		}
		sum, sumSq := 0.0, 0.0
		for j := o; j < e; j++ {
			if j > o && st.coords[j*st.dims+sd] < st.coords[(j-1)*st.dims+sd] {
				return fmt.Errorf("core: leaf %d not sorted along dim %d at %d", leaf, sd, j)
			}
			v := st.values[j]
			sum += v
			sumSq += v * v
			if !closeTo(st.prefSum[j], sum) {
				return fmt.Errorf("core: leaf %d prefix sum mismatch at %d", leaf, j)
			}
			if !closeTo(st.prefSumSq[j], sumSq) {
				return fmt.Errorf("core: leaf %d prefix sumSq mismatch at %d", leaf, j)
			}
		}
	}
	return nil
}

func closeTo(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	mag := b
	if mag < 0 {
		mag = -mag
	}
	return diff <= 1e-9*(1+mag)
}
