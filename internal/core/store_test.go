package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// TestStoreInvariantsAfterBuild verifies the columnar layout straight out
// of both build paths: offsets spanning, per-leaf sort order along the
// sort dimension, and prefix aggregates consistent with the values.
func TestStoreInvariantsAfterBuild(t *testing.T) {
	d1 := dataset.GenNYCTaxi(5000, 1, 1)
	s1 := build1D(t, d1, 16, 0.05)
	if err := s1.store.checkInvariants(); err != nil {
		t.Fatalf("1D build: %v", err)
	}
	d3 := dataset.GenNYCTaxi(5000, 3, 2)
	s3, err := BuildKD(d3, Options{Partitions: 32, SampleRate: 0.05, Kind: dataset.Sum, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.store.checkInvariants(); err != nil {
		t.Fatalf("KD build: %v", err)
	}
	if s3.store.dims != 3 {
		t.Fatalf("KD store dims = %d, want 3", s3.store.dims)
	}
}

// TestStoreInvariantsUnderUpdates drives the reservoir maintenance path:
// the columnar layout must stay sorted and prefix-consistent through a
// long randomized insert/delete sequence.
func TestStoreInvariantsUnderUpdates(t *testing.T) {
	d := dataset.GenUniform(3000, 1, 100, 4)
	s := build1D(t, d, 16, 0.05)
	rng := stats.NewRNG(9)
	for i := 0; i < 2000; i++ {
		if err := s.Insert([]float64{rng.Float64()}, rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			j := rng.Intn(d.N())
			_ = s.Delete([]float64{d.Pred[0][j]}, d.Agg[j])
		}
	}
	if err := s.store.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.totalK != s.store.totalLen() {
		t.Fatalf("totalK %d != store length %d", s.totalK, s.store.totalLen())
	}
}

// TestScanLeafMatchesReference compares the prefix/binary-search scanLeaf
// against a straightforward reference scan over LeafSamples, for 1D and
// multi-dimensional synopses and a spread of predicate shapes.
func TestScanLeafMatchesReference(t *testing.T) {
	check := func(t *testing.T, s *Synopsis, q dataset.Rect) {
		t.Helper()
		for leaf := 0; leaf < s.NumLeaves(); leaf++ {
			got := s.scanLeaf(leaf, q, constrainedDims(q))
			var want leafScan
			for _, tp := range s.LeafSamples(leaf) {
				want.k++
				if !q.Contains(tp.Point) {
					continue
				}
				want.kPred++
				want.sum += tp.Value
				want.sumSq += tp.Value * tp.Value
			}
			if got.k != want.k || got.kPred != want.kPred {
				t.Fatalf("leaf %d: counts (%d,%d), want (%d,%d)", leaf, got.k, got.kPred, want.k, want.kPred)
			}
			if math.Abs(got.sum-want.sum) > 1e-9*(1+math.Abs(want.sum)) {
				t.Fatalf("leaf %d: sum %v, want %v", leaf, got.sum, want.sum)
			}
			if math.Abs(got.sumSq-want.sumSq) > 1e-9*(1+want.sumSq) {
				t.Fatalf("leaf %d: sumSq %v, want %v", leaf, got.sumSq, want.sumSq)
			}
			gotMM := s.scanLeafMinMax(leaf, q, constrainedDims(q))
			if gotMM.kPred != want.kPred {
				t.Fatalf("leaf %d: minmax kPred %d, want %d", leaf, gotMM.kPred, want.kPred)
			}
		}
	}
	d1 := dataset.GenNYCTaxi(8000, 1, 5)
	s1 := build1D(t, d1, 16, 0.1)
	rng := stats.NewRNG(11)
	for i := 0; i < 25; i++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		check(t, s1, dataset.Rect1(math.Min(a, b), math.Max(a, b)))
	}
	check(t, s1, dataset.Rect1(math.Inf(-1), math.Inf(1)))

	d3 := dataset.GenNYCTaxi(8000, 3, 6)
	s3, err := BuildKD(d3, Options{Partitions: 32, SampleRate: 0.1, Kind: dataset.Sum, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		lo := make([]float64, 3)
		hi := make([]float64, 3)
		for c := range lo {
			a, b := rng.Float64()*30, rng.Float64()*30
			lo[c], hi[c] = math.Min(a, b), math.Max(a, b)
		}
		// exercise the sort-dimension-only fast path too: unconstrain all
		// but one dimension on alternating trials
		if i%2 == 0 {
			for c := 1; c < 3; c++ {
				lo[c], hi[c] = math.Inf(-1), math.Inf(1)
			}
		}
		check(t, s3, dataset.Rect{Lo: lo, Hi: hi})
	}
}

// TestColumnarSerializeRoundTrip saves and reloads a synopsis and verifies
// the restored columnar layout: invariants hold, leaf sample multisets
// match up to delta-encoding precision, and query answers agree.
func TestColumnarSerializeRoundTrip(t *testing.T) {
	d := dataset.GenNYCTaxi(6000, 1, 8)
	s := build1D(t, d, 16, 0.05)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.store.checkInvariants(); err != nil {
		t.Fatalf("restored store: %v", err)
	}
	if r.store.totalLen() != s.store.totalLen() {
		t.Fatalf("restored %d samples, want %d", r.store.totalLen(), s.store.totalLen())
	}
	if r.store.numLeaves() != s.store.numLeaves() {
		t.Fatalf("restored %d leaves, want %d", r.store.numLeaves(), s.store.numLeaves())
	}
	for leaf := 0; leaf < s.store.numLeaves(); leaf++ {
		a, b := s.LeafSamples(leaf), r.LeafSamples(leaf)
		if len(a) != len(b) {
			t.Fatalf("leaf %d: %d samples restored, want %d", leaf, len(b), len(a))
		}
		// store order is sorted by the predicate point, so entries are
		// directly comparable
		for j := range a {
			if a[j].Point[0] != b[j].Point[0] {
				t.Fatalf("leaf %d sample %d: point %v, want %v", leaf, j, b[j].Point[0], a[j].Point[0])
			}
			if math.Abs(a[j].Value-b[j].Value) > defaultSerPrecision {
				t.Fatalf("leaf %d sample %d: value %v, want %v", leaf, j, b[j].Value, a[j].Value)
			}
		}
	}
	rng := stats.NewRNG(13)
	for i := 0; i < 30; i++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		for _, kind := range []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg} {
			r1, err1 := s.Query(kind, q)
			r2, err2 := r.Query(kind, q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%v %v: error mismatch %v vs %v", kind, q, err1, err2)
			}
			if math.Abs(r1.Estimate-r2.Estimate) > 1e-3*(1+math.Abs(r1.Estimate)) {
				t.Fatalf("%v %v: estimate %v vs %v", kind, q, r1.Estimate, r2.Estimate)
			}
		}
	}
}

// TestRoundTripAfterUpdates exercises serialize → deserialize on a synopsis
// whose columnar store was reshaped by reservoir updates.
func TestRoundTripAfterUpdates(t *testing.T) {
	d := dataset.GenUniform(2000, 1, 100, 14)
	s := build1D(t, d, 8, 0.05)
	rng := stats.NewRNG(15)
	for i := 0; i < 1000; i++ {
		if err := s.Insert([]float64{rng.Float64()}, rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.store.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	full := dataset.Rect1(math.Inf(-1), math.Inf(1))
	a, _ := s.Query(dataset.Count, full)
	b, _ := r.Query(dataset.Count, full)
	if a.Estimate != b.Estimate {
		t.Fatalf("COUNT after round-trip = %v, want %v", b.Estimate, a.Estimate)
	}
}
