package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kdtree"
	"repro/internal/stats"
)

func build1D(t *testing.T, d *dataset.Dataset, k int, rate float64) *Synopsis {
	t.Helper()
	s, err := Build(d, Options{Partitions: k, SampleRate: rate, Kind: dataset.Sum, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	d := dataset.GenUniform(100, 1, 10, 1)
	if _, err := Build(d, Options{}); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := Build(d, Options{Partitions: 4}); err == nil {
		t.Error("missing sample budget accepted")
	}
	if _, err := Build(dataset.New("e", 1), Options{Partitions: 4, SampleRate: 0.1}); err == nil {
		t.Error("empty dataset accepted")
	}
	multi := dataset.GenUniform(100, 2, 10, 1)
	if _, err := Build(multi, Options{Partitions: 4, SampleRate: 0.1}); err == nil {
		t.Error("multi-dim dataset accepted by 1D Build")
	}
}

func TestBuildBasics(t *testing.T) {
	d := dataset.GenIntelWireless(5000, 1)
	s := build1D(t, d, 16, 0.05)
	if s.NumLeaves() > 16 || s.NumLeaves() < 2 {
		t.Errorf("leaves = %d", s.NumLeaves())
	}
	if s.TotalSamples() < 200 || s.TotalSamples() > 300 {
		t.Errorf("total samples = %d, want ~250", s.TotalSamples())
	}
	if s.N() != 5000 || s.Dims() != 1 {
		t.Errorf("N=%d dims=%d", s.N(), s.Dims())
	}
	if s.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}

func TestQueryExactWhenAligned(t *testing.T) {
	// a query spanning everything must be answered exactly from the root
	d := dataset.GenIntelWireless(3000, 2)
	s := build1D(t, d, 8, 0.05)
	for _, kind := range []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg, dataset.Min, dataset.Max} {
		r, err := s.Query(kind, dataset.Rect1(math.Inf(-1), math.Inf(1)))
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := d.Exact(kind, dataset.Rect1(math.Inf(-1), math.Inf(1)))
		if !r.Exact {
			t.Errorf("%v: full-span query not exact", kind)
		}
		if r.RelativeError(truth) > 1e-9 {
			t.Errorf("%v: estimate %v != truth %v", kind, r.Estimate, truth)
		}
		if r.CIHalf != 0 {
			t.Errorf("%v: exact query has non-zero CI %v", kind, r.CIHalf)
		}
	}
}

func TestQueryAccuracySumCountAvg(t *testing.T) {
	d := dataset.GenNYCTaxi(20000, 1, 3)
	s := build1D(t, d, 64, 0.05)
	rng := stats.NewRNG(7)
	for _, kind := range []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg} {
		errs := make([]float64, 0, 100)
		for trial := 0; trial < 100; trial++ {
			a, b := rng.Float64()*24, rng.Float64()*24
			q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
			truth, err := d.Exact(kind, q)
			if err != nil {
				continue
			}
			if kind != dataset.Count && truth == 0 {
				continue
			}
			r, err := s.Query(kind, q)
			if err != nil {
				t.Fatal(err)
			}
			if r.NoMatch {
				continue
			}
			errs = append(errs, r.RelativeError(truth))
		}
		med := stats.Median(errs)
		if med > 0.05 {
			t.Errorf("%v: median relative error %v too large", kind, med)
		}
	}
}

func TestHardBoundsAlwaysContainTruth(t *testing.T) {
	d := dataset.GenNYCTaxi(8000, 1, 5)
	s := build1D(t, d, 32, 0.02)
	rng := stats.NewRNG(9)
	for trial := 0; trial < 300; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		for _, kind := range []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg, dataset.Min, dataset.Max} {
			truth, err := d.Exact(kind, q)
			r, qerr := s.Query(kind, q)
			if qerr != nil {
				t.Fatal(qerr)
			}
			if err == dataset.ErrNoMatch || !r.HardValid {
				continue
			}
			if truth < r.HardLo-1e-6 || truth > r.HardHi+1e-6 {
				t.Fatalf("trial %d %v: truth %v outside hard bounds [%v, %v]",
					trial, kind, truth, r.HardLo, r.HardHi)
			}
		}
	}
}

func TestHardBoundsWithNegativeValues(t *testing.T) {
	d := dataset.New("neg", 1)
	rng := stats.NewRNG(4)
	for i := 0; i < 2000; i++ {
		d.Append([]float64{float64(i)}, rng.NormMS(0, 10)) // centred on zero
	}
	s := build1D(t, d, 16, 0.05)
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Float64()*2000, rng.Float64()*2000
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil {
			continue
		}
		r, _ := s.Query(dataset.Sum, q)
		if r.HardValid && (truth < r.HardLo-1e-6 || truth > r.HardHi+1e-6) {
			t.Fatalf("trial %d: SUM truth %v outside [%v, %v]", trial, truth, r.HardLo, r.HardHi)
		}
	}
}

func TestCICoverage(t *testing.T) {
	// with λ = 2.576 (99%), the CLT interval should contain the truth in
	// the vast majority of queries
	d := dataset.GenNYCTaxi(20000, 1, 6)
	s := build1D(t, d, 64, 0.05)
	rng := stats.NewRNG(11)
	covered, total := 0, 0
	for trial := 0; trial < 300; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		if math.Abs(a-b) < 0.5 {
			continue
		}
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, _ := s.Query(dataset.Sum, q)
		total++
		if math.Abs(r.Estimate-truth) <= r.CIHalf+1e-9 {
			covered++
		}
	}
	if total < 100 {
		t.Fatalf("too few usable queries: %d", total)
	}
	if frac := float64(covered) / float64(total); frac < 0.90 {
		t.Errorf("99%% CI covered only %.1f%% of queries", frac*100)
	}
}

func TestSkipRateSelectiveQuery(t *testing.T) {
	d := dataset.GenIntelWireless(10000, 7)
	s := build1D(t, d, 64, 0.05)
	// narrow query: most partitions should be skipped
	r, err := s.Query(dataset.Sum, dataset.Rect1(100, 200))
	if err != nil {
		t.Fatal(err)
	}
	if sr := r.SkipRate(s.N()); sr < 0.9 {
		t.Errorf("skip rate %v too low for a selective query", sr)
	}
	if r.TuplesRead > s.TotalSamples() {
		t.Errorf("read %d tuples, more than the stored samples %d", r.TuplesRead, s.TotalSamples())
	}
}

func TestESSReadOnlyPartialLeaves(t *testing.T) {
	d := dataset.GenIntelWireless(10000, 8)
	s := build1D(t, d, 64, 0.1)
	// a wide query with aligned-ish bounds reads only boundary strata
	r, _ := s.Query(dataset.Sum, dataset.Rect1(1000, 9000))
	if r.PartialParts > 4 {
		t.Errorf("1D interval query touched %d partial leaves, want <= 2-4", r.PartialParts)
	}
}

func TestAvgNoMatch(t *testing.T) {
	d := dataset.GenUniform(1000, 1, 10, 9)
	s := build1D(t, d, 8, 0.05)
	r, err := s.Query(dataset.Avg, dataset.Rect1(100, 200))
	if err != nil {
		t.Fatal(err)
	}
	if !r.NoMatch {
		t.Error("disjoint AVG query should report NoMatch")
	}
}

func TestZeroVarianceRuleImprovesAvgOnAdversarial(t *testing.T) {
	d := dataset.GenAdversarial(20000, 10)
	on, err := Build(d, Options{Partitions: 32, SampleRate: 0.01, Kind: dataset.Avg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Build(d, Options{Partitions: 32, SampleRate: 0.01, Kind: dataset.Avg, Seed: 1, DisableZeroVariance: true})
	if err != nil {
		t.Fatal(err)
	}
	// query strictly inside the constant-zero region
	q := dataset.Rect1(100, 12000)
	rOn, _ := on.Query(dataset.Avg, q)
	rOff, _ := off.Query(dataset.Avg, q)
	if rOn.TuplesRead > rOff.TuplesRead {
		t.Errorf("rule should not read more samples: %d > %d", rOn.TuplesRead, rOff.TuplesRead)
	}
	if math.Abs(rOn.Estimate) > 1e-9 {
		t.Errorf("AVG inside the zero region = %v, want 0", rOn.Estimate)
	}
}

func TestMinMaxEstimates(t *testing.T) {
	d := dataset.GenNYCTaxi(10000, 1, 11)
	s := build1D(t, d, 32, 0.1)
	rng := stats.NewRNG(12)
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		if math.Abs(a-b) < 2 {
			continue
		}
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truthMin, err := d.Exact(dataset.Min, q)
		if err != nil {
			continue
		}
		truthMax, _ := d.Exact(dataset.Max, q)
		rMin, _ := s.Query(dataset.Min, q)
		rMax, _ := s.Query(dataset.Max, q)
		// sampled MIN estimate can only overestimate; MAX underestimate
		if !rMin.NoMatch && rMin.Estimate < truthMin-1e-9 {
			t.Errorf("MIN estimate %v below truth %v", rMin.Estimate, truthMin)
		}
		if !rMax.NoMatch && rMax.Estimate > truthMax+1e-9 {
			t.Errorf("MAX estimate %v above truth %v", rMax.Estimate, truthMax)
		}
	}
}

func TestPartitionerVariants(t *testing.T) {
	d := dataset.GenAdversarial(5000, 13)
	for _, p := range []Partitioner{PartitionADP, PartitionEqualDepth, PartitionHillClimb} {
		s, err := Build(d, Options{Partitions: 16, SampleRate: 0.02, Kind: dataset.Sum, Partitioner: p, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		r, err := s.Query(dataset.Sum, dataset.Rect1(0, 2500))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		truth, _ := d.Exact(dataset.Sum, dataset.Rect1(0, 2500))
		if r.HardValid && (truth < r.HardLo-1e-6 || truth > r.HardHi+1e-6) {
			t.Errorf("%v: hard bounds violated", p)
		}
	}
	if PartitionADP.String() != "ADP" || PartitionEqualDepth.String() != "EQ" {
		t.Error("Partitioner.String broken")
	}
}

func TestBuildKDAndQuery(t *testing.T) {
	d := dataset.GenNYCTaxi(10000, 3, 14)
	s, err := BuildKD(d, Options{
		Partitions: 64, SampleRate: 0.05, Kind: dataset.Sum, Seed: 5,
		KD: kdtree.Options{MaxLeaves: 64, Kind: dataset.Sum},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dims() != 3 {
		t.Fatalf("dims = %d", s.Dims())
	}
	rng := stats.NewRNG(15)
	errs := []float64{}
	for trial := 0; trial < 60; trial++ {
		q := randomTaxiRect(rng, 3)
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, err := s.Query(dataset.Sum, q)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, r.RelativeError(truth))
		if r.HardValid && (truth < r.HardLo-1e-6 || truth > r.HardHi+1e-6) {
			t.Fatalf("trial %d: hard bounds violated", trial)
		}
	}
	if med := stats.Median(errs); med > 0.25 {
		t.Errorf("3D median relative error %v too large", med)
	}
}

func TestKDWorkloadShift(t *testing.T) {
	// a synopsis indexing only 2 of 3 predicate columns answering 3D
	// queries: still correct, never certifies covered nodes, and skips
	// disjoint regions
	d := dataset.GenNYCTaxi(8000, 3, 16)
	s, err := BuildKD(d, Options{Partitions: 64, SampleRate: 0.1, Kind: dataset.Sum, Seed: 6, IndexDims: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	for trial := 0; trial < 40; trial++ {
		q := randomTaxiRect(rng, 3)
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, err := s.Query(dataset.Sum, q)
		if err != nil {
			t.Fatal(err)
		}
		if r.CoveredParts != 0 {
			t.Errorf("trial %d: workload-shift query certified %d covered parts", trial, r.CoveredParts)
		}
		_ = truth
	}
}

func randomTaxiRect(rng *stats.RNG, dims int) dataset.Rect {
	scales := []float64{24, 31, 263, 31, 24}
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for c := 0; c < dims; c++ {
		a, b := rng.Float64()*scales[c], rng.Float64()*scales[c]
		lo[c], hi[c] = math.Min(a, b), math.Max(a, b)
		// widen narrow dims so queries usually match something
		if hi[c]-lo[c] < scales[c]*0.3 {
			hi[c] = math.Min(lo[c]+scales[c]*0.3, scales[c])
		}
	}
	return dataset.Rect{Lo: lo, Hi: hi}
}

func TestEstimatorConsistencyAsKGrowsToN(t *testing.T) {
	// with a 100% sample, sample estimates must be exact
	d := dataset.GenNYCTaxi(3000, 1, 18)
	s, err := Build(d, Options{Partitions: 8, SampleRate: 1.0, Kind: dataset.Sum, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(19)
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil {
			continue
		}
		r, _ := s.Query(dataset.Sum, q)
		if r.RelativeError(truth) > 1e-6 && math.Abs(truth) > 1e-9 {
			t.Fatalf("full-sample SUM estimate %v != truth %v", r.Estimate, truth)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	d := dataset.GenUniform(100, 1, 1, 20)
	s := build1D(t, d, 4, 0.1)
	if _, err := s.Query(dataset.Sum, dataset.Rect{}); err == nil {
		t.Error("empty rectangle accepted")
	}
	if _, err := s.Query(dataset.AggKind(99), dataset.Rect1(0, 1)); err == nil {
		t.Error("unknown aggregate accepted")
	}
}
