package core

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// BatchQuery is one query of a batched workload.
type BatchQuery struct {
	Kind dataset.AggKind
	Rect dataset.Rect
}

// BatchResult is the answer to one BatchQuery.
type BatchResult struct {
	Result Result
	Err    error
	// Elapsed is the wall-clock time the query spent executing inside its
	// worker, for per-query latency accounting under batched execution.
	Elapsed time.Duration
}

// QueryBatch answers a workload of queries, fanning them across a bounded
// worker pool (one worker per CPU, see package parallel). Results are
// returned in input order and are identical to issuing the same queries
// sequentially through Query.
//
// Concurrency: a built Synopsis is immutable under Query, so QueryBatch —
// and any number of concurrent Query/QueryBatch calls from different
// goroutines — are safe, provided they do not overlap with Insert or
// Delete, which mutate the synopsis and require exclusive access.
func (s *Synopsis) QueryBatch(qs []BatchQuery) []BatchResult {
	out := make([]BatchResult, len(qs))
	parallel.For(len(qs), func(i int) {
		o := &out[i]
		start := time.Now()
		o.Result, o.Err = s.Query(qs[i].Kind, qs[i].Rect)
		o.Elapsed = time.Since(start)
	})
	return out
}
