package core

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Template describes one query template of an anticipated workload: the
// predicate columns it constrains and its share of the workload. PASS
// handles multi-template workloads by building one tree per template
// (Section 4.5 "Extensions") and routing each query to the best-matching
// synopsis.
type Template struct {
	// Columns are the dataset predicate columns this template constrains.
	Columns []int
	// Weight is the template's workload share; the precomputation and
	// sampling budgets are split proportionally. Zero weights share
	// equally.
	Weight float64
}

// TemplateSet is a collection of per-template synopses with a router.
type TemplateSet struct {
	templates []Template
	synopses  []*Synopsis
	dims      int
}

// BuildTemplates constructs one k-d synopsis per template over d,
// splitting opts.Partitions and the sample budget proportionally to the
// template weights.
func BuildTemplates(d *dataset.Dataset, opts Options, templates []Template) (*TemplateSet, error) {
	if len(templates) == 0 {
		return nil, fmt.Errorf("core: BuildTemplates requires at least one template")
	}
	if err := opts.fill(d.N()); err != nil {
		return nil, err
	}
	totalW := 0.0
	for i, t := range templates {
		if len(t.Columns) == 0 {
			return nil, fmt.Errorf("core: template %d has no columns", i)
		}
		seen := map[int]bool{}
		for _, c := range t.Columns {
			if c < 0 || c >= d.Dims() {
				return nil, fmt.Errorf("core: template %d column %d out of range", i, c)
			}
			if seen[c] {
				return nil, fmt.Errorf("core: template %d repeats column %d", i, c)
			}
			seen[c] = true
		}
		if t.Weight < 0 {
			return nil, fmt.Errorf("core: template %d has negative weight", i)
		}
		totalW += t.Weight
	}
	ts := &TemplateSet{templates: templates, dims: d.Dims()}
	for i, t := range templates {
		share := 1.0 / float64(len(templates))
		if totalW > 0 {
			share = t.Weight / totalW
		}
		sub := opts
		sub.Partitions = maxInt(int(float64(opts.Partitions)*share), 4)
		sub.SampleSize = maxInt(int(float64(opts.SampleSize)*share), sub.Partitions)
		sub.SampleRate = 0
		sub.IndexCols = t.Columns
		sub.IndexDims = 0
		sub.KD.MaxLeaves = sub.Partitions
		sub.Seed = opts.Seed + uint64(i)*101
		s, err := BuildKD(d, sub)
		if err != nil {
			return nil, fmt.Errorf("core: template %d: %w", i, err)
		}
		ts.synopses = append(ts.synopses, s)
	}
	return ts, nil
}

// Route returns the index of the synopsis best suited to the query: the
// template sharing the most constrained columns, breaking ties toward
// fewer unconstrained indexed columns (tighter trees) and then higher
// weight. A column counts as constrained when either bound is finite.
func (ts *TemplateSet) Route(q dataset.Rect) int {
	constrained := map[int]bool{}
	for c := 0; c < q.Dims(); c++ {
		if !math.IsInf(q.Lo[c], -1) || !math.IsInf(q.Hi[c], 1) {
			constrained[c] = true
		}
	}
	best, bestShared, bestExtra, bestWeight := 0, -1, 1<<30, -1.0
	for i, t := range ts.templates {
		shared, extra := 0, 0
		for _, c := range t.Columns {
			if constrained[c] {
				shared++
			} else {
				extra++
			}
		}
		better := shared > bestShared ||
			(shared == bestShared && extra < bestExtra) ||
			(shared == bestShared && extra == bestExtra && t.Weight > bestWeight)
		if better {
			best, bestShared, bestExtra, bestWeight = i, shared, extra, t.Weight
		}
	}
	return best
}

// Query routes the query and answers it, returning the chosen template
// index alongside the result.
func (ts *TemplateSet) Query(kind dataset.AggKind, q dataset.Rect) (Result, int, error) {
	idx := ts.Route(q)
	r, err := ts.synopses[idx].Query(kind, q)
	return r, idx, err
}

// Synopsis returns the i-th template's synopsis (for inspection).
func (ts *TemplateSet) Synopsis(i int) *Synopsis { return ts.synopses[i] }

// Len returns the number of templates.
func (ts *TemplateSet) Len() int { return len(ts.synopses) }

// MemoryBytes sums the storage of all member synopses.
func (ts *TemplateSet) MemoryBytes() int {
	total := 0
	for _, s := range ts.synopses {
		total += s.MemoryBytes()
	}
	return total
}
