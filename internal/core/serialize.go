package core

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/binenc"
	"repro/internal/partition"
	"repro/internal/ptree"
	"repro/internal/sample"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// Synopsis serialization: a compact binary format so a synopsis built
// once (the expensive step) can be shipped to query nodes. Sample values
// are stored delta-encoded against their leaf average (Section 3.4);
// predicate points are stored raw. Only 1D synopses are serializable —
// they are the ones with cheap dynamic maintenance and therefore the ones
// worth persisting.

// serMagic identifies the format; serVersion guards evolution. Version 2
// appends the mergeable-sketch section (internal/sketch) after the leaf
// samples; version 1 snapshots still load, with nil sketches — sketch
// queries on such a synopsis return sketch.ErrUnavailable until the
// table is rebuilt from base rows.
const (
	serMagic   = 0x50415353 // "PASS"
	serVersion = 2
)

// ErrNotSerializable reports a synopsis that cannot be persisted — today,
// any multi-dimensional (k-d) synopsis. engine.ErrNotSerializable aliases
// it so persistence layers can errors.Is against one sentinel.
var ErrNotSerializable = errors.New("synopsis is not serializable")

// defaultSerPrecision is the fixed-point precision for delta-encoded
// sample values; the relative error it introduces (≤ 5e-7 of a typical
// value unit) is far below sampling error.
const defaultSerPrecision = 1e-6

// The wire encoding (sticky-error varint/float writer and reader) is the
// shared one in internal/binenc; thin aliases keep the Save/Load bodies
// in the format's own vocabulary.
type serWriter struct{ *binenc.Writer }

func (sw serWriter) u64(v uint64)  { sw.U64(v) }
func (sw serWriter) i64(v int64)   { sw.I64(v) }
func (sw serWriter) f64(v float64) { sw.F64(v) }

type serReader struct{ *binenc.Reader }

func (sr serReader) u64() uint64  { return sr.U64() }
func (sr serReader) i64() int64   { return sr.I64() }
func (sr serReader) f64() float64 { return sr.F64() }

func (sr serReader) err() error {
	if e := sr.Err(); e != nil {
		return fmt.Errorf("core: corrupt synopsis: %w", e)
	}
	return nil
}

// Save writes the synopsis in the binary format. Only 1D synopses are
// supported.
func (s *Synopsis) Save(w io.Writer) error {
	if s.oneD == nil {
		return fmt.Errorf("core: only 1D synopses can be serialized: %w", ErrNotSerializable)
	}
	sw := serWriter{Writer: binenc.NewWriter(w)}
	sw.u64(serMagic)
	sw.u64(serVersion)
	// options needed to answer queries
	sw.f64(s.opts.Lambda)
	flag := uint64(0)
	if s.opts.DisableZeroVariance {
		flag |= 1
	}
	sw.u64(flag)
	sw.u64(uint64(s.n))
	sw.u64(uint64(s.opts.Seed))
	// partitioning cuts
	sw.u64(uint64(len(s.Partitioning.Cuts)))
	for _, c := range s.Partitioning.Cuts {
		sw.u64(uint64(c))
	}
	// leaves
	leaves := s.oneD.LeafSpecs()
	sw.u64(uint64(len(leaves)))
	for _, ls := range leaves {
		sw.f64(ls.Lo)
		sw.f64(ls.Hi)
		sw.u64(uint64(ls.ILo))
		sw.u64(uint64(ls.IHi))
		sw.u64(uint64(ls.Agg.N))
		sw.f64(ls.Agg.Sum)
		sw.f64(ls.Agg.SumSq)
		sw.f64(ls.Agg.Min)
		sw.f64(ls.Agg.Max)
	}
	// samples: per leaf, points raw + values delta-encoded vs leaf avg
	// (written in columnar store order, i.e. sorted by predicate point)
	st := s.store
	if st.numLeaves() != len(leaves) {
		return fmt.Errorf("core: internal: %d sample strata for %d leaves", st.numLeaves(), len(leaves))
	}
	for leaf := 0; leaf < st.numLeaves(); leaf++ {
		o, e := st.offsets[leaf], st.offsets[leaf+1]
		sw.u64(uint64(e - o))
		avg := leaves[leaf].Agg.Avg()
		for j := o; j < e; j++ {
			sw.f64(st.coords[j])
			q := math.Round((st.values[j] - avg) / defaultSerPrecision)
			sw.i64(int64(q))
		}
	}
	// v2: mergeable-sketch section (presence flag + opaque sketch blob).
	// A synopsis loaded from a v1 snapshot carries no sketches and
	// round-trips the absence.
	if s.sk != nil {
		sw.u64(1)
		sw.Bytes(s.sk.Encode())
	} else {
		sw.u64(0)
	}
	return sw.Flush()
}

// Load reads a synopsis written by Save. The restored synopsis answers
// queries identically (up to the delta-encoding precision of sample
// values) and supports further dynamic updates.
func Load(r io.Reader) (*Synopsis, error) {
	sr := serReader{Reader: binenc.NewReader(r)}
	if sr.u64() != serMagic {
		return nil, fmt.Errorf("core: not a PASS synopsis (bad magic)")
	}
	version := sr.u64()
	if version < 1 || version > serVersion {
		return nil, fmt.Errorf("core: unsupported synopsis version %d", version)
	}
	var opts Options
	opts.Lambda = sr.f64()
	flag := sr.u64()
	opts.DisableZeroVariance = flag&1 != 0
	n := int(sr.u64())
	opts.Seed = sr.u64()
	nCuts := int(sr.u64())
	if err := sr.err(); err != nil {
		return nil, err
	}
	if nCuts < 2 || nCuts > n+1 {
		return nil, fmt.Errorf("core: corrupt synopsis: %d cuts for %d rows", nCuts, n)
	}
	cuts := make([]int, nCuts)
	for i := range cuts {
		cuts[i] = int(sr.u64())
	}
	nLeaves := int(sr.u64())
	if err := sr.err(); err != nil {
		return nil, err
	}
	if nLeaves <= 0 || nLeaves > n {
		return nil, fmt.Errorf("core: corrupt synopsis: %d leaves", nLeaves)
	}
	leaves := make([]ptree.LeafSpec, nLeaves)
	for i := range leaves {
		leaves[i].Lo = sr.f64()
		leaves[i].Hi = sr.f64()
		leaves[i].ILo = int(sr.u64())
		leaves[i].IHi = int(sr.u64())
		leaves[i].Agg.N = int(sr.u64())
		leaves[i].Agg.Sum = sr.f64()
		leaves[i].Agg.SumSq = sr.f64()
		leaves[i].Agg.Min = sr.f64()
		leaves[i].Agg.Max = sr.f64()
	}
	if err := sr.err(); err != nil {
		return nil, err
	}
	tr, err := ptree.FromLeaves(leaves)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt synopsis: %w", err)
	}
	s := &Synopsis{
		opts: opts, tr: tr, oneD: tr,
		n: n, dims: 1,
		rng:          stats.NewRNG(opts.Seed + 0x9e37),
		Partitioning: partition.Partitioning{Cuts: cuts},
	}
	st := &leafStore{
		dims:    1,
		offsets: make([]int, 1, nLeaves+1),
		sortDim: make([]int, nLeaves),
	}
	for leaf := 0; leaf < nLeaves; leaf++ {
		k := int(sr.u64())
		if err := sr.err(); err != nil {
			return nil, err
		}
		if k < 0 || k > n {
			return nil, fmt.Errorf("core: corrupt synopsis: leaf %d claims %d samples", leaf, k)
		}
		avg := leaves[leaf].Agg.Avg()
		for j := 0; j < k; j++ {
			pt := sr.f64()
			q := sr.i64()
			st.coords = append(st.coords, pt)
			st.values = append(st.values, avg+float64(q)*defaultSerPrecision)
		}
		st.offsets = append(st.offsets, len(st.values))
	}
	if err := sr.err(); err != nil {
		return nil, err
	}
	if version >= 2 {
		if sr.u64() == 1 {
			// a well-formed sketch blob is well under 1 MiB (the HLL
			// registers dominate at 16 KiB); larger claims are corruption
			blob := sr.BytesCap(1 << 20)
			if err := sr.err(); err != nil {
				return nil, err
			}
			sk, err := sketch.DecodeSet(blob)
			if err != nil {
				return nil, fmt.Errorf("core: corrupt synopsis: %w", err)
			}
			s.sk = sk
		}
		if err := sr.err(); err != nil {
			return nil, err
		}
	}
	st.prefSum = make([]float64, len(st.values))
	st.prefSumSq = make([]float64, len(st.values))
	// sortLeaf inside finishLeaf tolerates both store order (already
	// sorted) and the unsorted order of pre-columnar writers
	for leaf := 0; leaf < nLeaves; leaf++ {
		st.finishLeaf(leaf, 0)
	}
	s.store = st
	s.totalK = st.totalLen()
	s.res = sample.NewReservoir(maxInt(s.totalK, 1), stats.NewRNG(opts.Seed+0x51ed))
	s.seedReservoir()
	return s, nil
}
