package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
)

func TestPlanBudgetBasics(t *testing.T) {
	d := dataset.GenNYCTaxi(30000, 1, 71)
	b, err := PlanBudget(d, 2*time.Second, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if b.Partitions < 4 || b.Partitions > d.N()/8 {
		t.Errorf("k = %d out of range", b.Partitions)
	}
	if b.SampleSize < b.Partitions || b.SampleSize > d.N()/2 {
		t.Errorf("K = %d out of range (k=%d)", b.SampleSize, b.Partitions)
	}
	// the derived parameters must produce a buildable synopsis
	s, err := Build(d, Options{Partitions: b.Partitions, SampleSize: b.SampleSize, Kind: dataset.Sum, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLeaves() == 0 {
		t.Error("empty synopsis from planned budget")
	}
}

func TestPlanBudgetMonotone(t *testing.T) {
	// more query-time budget must never produce fewer samples
	d := dataset.GenNYCTaxi(30000, 1, 73)
	small, err := PlanBudget(d, time.Second, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	big, err := PlanBudget(d, time.Second, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if big.SampleSize < small.SampleSize {
		t.Errorf("larger τ_q gave fewer samples: %d < %d", big.SampleSize, small.SampleSize)
	}
}

func TestPlanBudgetValidation(t *testing.T) {
	small := dataset.GenUniform(10, 1, 1, 74)
	if _, err := PlanBudget(small, time.Second, time.Second); err == nil {
		t.Error("tiny dataset accepted")
	}
	d := dataset.GenUniform(1000, 1, 1, 75)
	if _, err := PlanBudget(d, 0, time.Second); err == nil {
		t.Error("zero construct budget accepted")
	}
	if _, err := PlanBudget(d, time.Second, 0); err == nil {
		t.Error("zero query budget accepted")
	}
}

func TestDeriveTemplates(t *testing.T) {
	inf := math.Inf(1)
	mk := func(cols ...int) dataset.Rect {
		lo := []float64{-inf, -inf, -inf, -inf, -inf}
		hi := []float64{inf, inf, inf, inf, inf}
		for _, c := range cols {
			lo[c], hi[c] = 1, 2
		}
		return dataset.Rect{Lo: lo, Hi: hi}
	}
	var qs []dataset.Rect
	for i := 0; i < 10; i++ {
		qs = append(qs, mk(0, 1)) // dominant template
	}
	for i := 0; i < 4; i++ {
		qs = append(qs, mk(2))
	}
	qs = append(qs, mk(0, 3, 4))
	qs = append(qs, mk()) // unconstrained — ignored

	ts := DeriveTemplates(qs, 2)
	if len(ts) != 2 {
		t.Fatalf("got %d templates", len(ts))
	}
	if len(ts[0].Columns) != 2 || ts[0].Columns[0] != 0 || ts[0].Columns[1] != 1 {
		t.Errorf("dominant template = %v", ts[0].Columns)
	}
	if ts[0].Weight != 10 || ts[1].Weight != 4 {
		t.Errorf("weights = %v, %v", ts[0].Weight, ts[1].Weight)
	}
}

func TestDeriveTemplatesFeedsBuild(t *testing.T) {
	d := dataset.GenNYCTaxi(6000, 3, 76)
	inf := math.Inf(1)
	qs := []dataset.Rect{
		{Lo: []float64{7, 0, -inf}, Hi: []float64{10, 15, inf}},
		{Lo: []float64{8, 2, -inf}, Hi: []float64{11, 20, inf}},
		{Lo: []float64{-inf, -inf, 10}, Hi: []float64{inf, inf, 90}},
	}
	templates := DeriveTemplates(qs, 4)
	if len(templates) != 2 {
		t.Fatalf("templates = %v", templates)
	}
	ts, err := BuildTemplates(d, Options{Partitions: 64, SampleRate: 0.05, Seed: 77}, templates)
	if err != nil {
		t.Fatal(err)
	}
	r, idx, err := ts.Query(dataset.Sum, qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Errorf("routed to %d", idx)
	}
	_ = r
}
