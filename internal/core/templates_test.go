package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func taxiTemplates(t *testing.T) (*dataset.Dataset, *TemplateSet) {
	t.Helper()
	d := dataset.GenNYCTaxi(12000, 5, 51)
	ts, err := BuildTemplates(d, Options{
		Partitions: 192, SampleRate: 0.05, Kind: dataset.Sum, Seed: 52,
	}, []Template{
		{Columns: []int{0, 1}, Weight: 2},    // (time, date)
		{Columns: []int{2}, Weight: 1},       // (location)
		{Columns: []int{0, 2, 4}, Weight: 1}, // (time, location, dropoff_time)
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, ts
}

func inf() float64 { return math.Inf(1) }

func TestBuildTemplatesValidation(t *testing.T) {
	d := dataset.GenNYCTaxi(500, 3, 53)
	opts := Options{Partitions: 16, SampleRate: 0.1, Seed: 54}
	if _, err := BuildTemplates(d, opts, nil); err == nil {
		t.Error("no templates accepted")
	}
	if _, err := BuildTemplates(d, opts, []Template{{Columns: nil}}); err == nil {
		t.Error("empty column set accepted")
	}
	if _, err := BuildTemplates(d, opts, []Template{{Columns: []int{7}}}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := BuildTemplates(d, opts, []Template{{Columns: []int{0, 0}}}); err == nil {
		t.Error("repeated column accepted")
	}
	if _, err := BuildTemplates(d, opts, []Template{{Columns: []int{0}, Weight: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestRouteMatchesConstrainedColumns(t *testing.T) {
	_, ts := taxiTemplates(t)
	// constrain (time, date) → template 0
	q := dataset.Rect{Lo: []float64{7, 0}, Hi: []float64{10, 15}}
	if got := ts.Route(q); got != 0 {
		t.Errorf("time+date query routed to template %d, want 0", got)
	}
	// constrain location only → template 1
	q = dataset.Rect{
		Lo: []float64{math.Inf(-1), math.Inf(-1), 10},
		Hi: []float64{inf(), inf(), 50},
	}
	if got := ts.Route(q); got != 1 {
		t.Errorf("location query routed to template %d, want 1", got)
	}
	// constrain time+location+dropoff_time → template 2
	q = dataset.Rect{
		Lo: []float64{7, math.Inf(-1), 10, math.Inf(-1), 18},
		Hi: []float64{10, inf(), 50, inf(), 22},
	}
	if got := ts.Route(q); got != 2 {
		t.Errorf("3-column query routed to template %d, want 2", got)
	}
}

func TestTemplateQueriesAccurate(t *testing.T) {
	d, ts := taxiTemplates(t)
	rng := stats.NewRNG(55)
	errs := []float64{}
	for trial := 0; trial < 60; trial++ {
		// (time, date) queries — the heavy template
		lo := []float64{rng.Float64() * 12, rng.Float64() * 15}
		hi := []float64{lo[0] + 6, lo[1] + 10}
		q := dataset.Rect{Lo: lo, Hi: hi}
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, idx, err := ts.Query(dataset.Sum, q)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 0 {
			t.Fatalf("trial %d routed to %d", trial, idx)
		}
		errs = append(errs, r.RelativeError(truth))
		if r.HardValid && (truth < r.HardLo-1e-6 || truth > r.HardHi+1e-6) {
			t.Fatalf("hard bounds violated on trial %d", trial)
		}
	}
	if med := stats.Median(errs); med > 0.3 {
		t.Errorf("template-routed median relative error = %v", med)
	}
}

func TestNonPrefixIndexColsCorrect(t *testing.T) {
	// a synopsis indexing only column 2 (location) must still answer
	// queries constraining other columns correctly (as partials)
	d := dataset.GenNYCTaxi(8000, 3, 56)
	s, err := BuildKD(d, Options{
		Partitions: 64, SampleRate: 0.1, Kind: dataset.Sum, Seed: 57,
		IndexCols: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(58)
	for trial := 0; trial < 40; trial++ {
		// query constrains time (not indexed) and location (indexed)
		q := dataset.Rect{
			Lo: []float64{rng.Float64() * 10, math.Inf(-1), rng.Float64() * 100},
			Hi: []float64{24, inf(), 263},
		}
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, err := s.Query(dataset.Sum, q)
		if err != nil {
			t.Fatal(err)
		}
		// constraining a non-indexed column: no cover certification
		if r.CoveredParts != 0 {
			t.Fatalf("trial %d: cover certified despite non-indexed constraint", trial)
		}
		if r.HardValid && (truth < r.HardLo-1e-6 || truth > r.HardHi+1e-6) {
			t.Fatalf("trial %d: hard bounds violated", trial)
		}
	}
	// a query constraining ONLY the indexed column can use covers
	q := dataset.Rect{
		Lo: []float64{math.Inf(-1), math.Inf(-1), 0},
		Hi: []float64{inf(), inf(), 263},
	}
	r, err := s.Query(dataset.Sum, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact {
		t.Error("full-range indexed-column query should be exact")
	}
}

func TestTemplateSetAccessors(t *testing.T) {
	_, ts := taxiTemplates(t)
	if ts.Len() != 3 {
		t.Errorf("Len = %d", ts.Len())
	}
	if ts.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
	if ts.Synopsis(0) == nil {
		t.Error("Synopsis accessor broken")
	}
}
