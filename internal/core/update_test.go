package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestInsertMaintainsExactAggregates(t *testing.T) {
	d := dataset.GenUniform(2000, 1, 100, 1)
	s := build1D(t, d, 16, 0.05)
	live := d.Clone()
	rng := stats.NewRNG(2)
	for i := 0; i < 500; i++ {
		pt := rng.Float64()
		v := rng.Float64() * 100
		if err := s.Insert([]float64{pt}, v); err != nil {
			t.Fatal(err)
		}
		live.Append([]float64{pt}, v)
	}
	if s.N() != 2500 {
		t.Fatalf("N = %d, want 2500", s.N())
	}
	// full-span SUM and COUNT must remain exact after updates
	full := dataset.Rect1(math.Inf(-1), math.Inf(1))
	for _, kind := range []dataset.AggKind{dataset.Sum, dataset.Count} {
		truth, _ := live.Exact(kind, full)
		r, err := s.Query(kind, full)
		if err != nil {
			t.Fatal(err)
		}
		if r.RelativeError(truth) > 1e-9 {
			t.Errorf("%v after inserts: %v != %v", kind, r.Estimate, truth)
		}
	}
}

func TestInsertKeepsEstimatesReasonable(t *testing.T) {
	d := dataset.GenUniform(5000, 1, 100, 3)
	s := build1D(t, d, 16, 0.1)
	live := d.Clone()
	rng := stats.NewRNG(4)
	for i := 0; i < 2000; i++ {
		pt := rng.Float64()
		v := rng.Float64() * 100
		if err := s.Insert([]float64{pt}, v); err != nil {
			t.Fatal(err)
		}
		live.Append([]float64{pt}, v)
	}
	errs := []float64{}
	for trial := 0; trial < 60; trial++ {
		a, b := rng.Float64(), rng.Float64()
		if math.Abs(a-b) < 0.1 {
			continue
		}
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := live.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, _ := s.Query(dataset.Sum, q)
		errs = append(errs, r.RelativeError(truth))
	}
	if med := stats.Median(errs); med > 0.1 {
		t.Errorf("median relative error after heavy inserts = %v", med)
	}
}

func TestReservoirSampleSizeStable(t *testing.T) {
	d := dataset.GenUniform(2000, 1, 100, 5)
	s := build1D(t, d, 8, 0.05)
	k0 := s.TotalSamples()
	rng := stats.NewRNG(6)
	for i := 0; i < 5000; i++ {
		if err := s.Insert([]float64{rng.Float64()}, rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
	}
	if k := s.TotalSamples(); k > k0 {
		t.Errorf("sample grew from %d to %d; reservoir must cap it", k0, k)
	}
	if k := s.TotalSamples(); k < k0-1 {
		t.Errorf("sample shrank from %d to %d", k0, k)
	}
}

func TestDelete(t *testing.T) {
	d := dataset.GenUniform(1000, 1, 100, 7)
	s := build1D(t, d, 8, 0.1)
	before, _ := s.Query(dataset.Count, dataset.Rect1(math.Inf(-1), math.Inf(1)))
	if err := s.Delete([]float64{d.Pred[0][10]}, d.Agg[10]); err != nil {
		t.Fatal(err)
	}
	after, _ := s.Query(dataset.Count, dataset.Rect1(math.Inf(-1), math.Inf(1)))
	if after.Estimate != before.Estimate-1 {
		t.Errorf("COUNT after delete = %v, want %v", after.Estimate, before.Estimate-1)
	}
}

func TestUpdateRejectedOnKD(t *testing.T) {
	d := dataset.GenNYCTaxi(1000, 2, 8)
	s, err := BuildKD(d, Options{Partitions: 16, SampleRate: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([]float64{1, 1}, 5); err == nil {
		t.Error("Insert on KD synopsis should fail")
	}
	if err := s.Delete([]float64{1, 1}, 5); err == nil {
		t.Error("Delete on KD synopsis should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	d := dataset.GenUniform(100, 1, 10, 10)
	s := build1D(t, d, 4, 0.1)
	if err := s.Insert(nil, 1); err == nil {
		t.Error("Insert with empty point accepted")
	}
}
