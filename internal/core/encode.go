package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Delta encoding of stratified samples (Section 3.4): every sampled value
// is expressed as a fixed-point delta from its partition average and
// zigzag-varint encoded. Because the variance within an optimised
// partition is much smaller than the global variance, the deltas are small
// and the encoding compresses well.

// EncodeLeafSamples encodes the values of one leaf's sample as deltas from
// the leaf average at the given precision (e.g. 1e-3 keeps three decimal
// digits). Returns the encoded bytes.
func EncodeLeafSamples(values []float64, leafAvg, precision float64) ([]byte, error) {
	if precision <= 0 {
		return nil, fmt.Errorf("core: precision must be positive")
	}
	buf := make([]byte, 0, len(values)*2+16)
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(values)))
	buf = append(buf, scratch[:n]...)
	n = binary.PutUvarint(scratch[:], math.Float64bits(leafAvg))
	buf = append(buf, scratch[:n]...)
	n = binary.PutUvarint(scratch[:], math.Float64bits(precision))
	buf = append(buf, scratch[:n]...)
	for _, v := range values {
		q := math.Round((v - leafAvg) / precision)
		if q > math.MaxInt64 || q < math.MinInt64 || math.IsNaN(q) {
			return nil, fmt.Errorf("core: value %g out of delta-encoding range", v)
		}
		n = binary.PutVarint(scratch[:], int64(q))
		buf = append(buf, scratch[:n]...)
	}
	return buf, nil
}

// DecodeLeafSamples reverses EncodeLeafSamples. Values are recovered to
// within ±precision/2 of the originals.
func DecodeLeafSamples(buf []byte) ([]float64, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("core: corrupt sample encoding (count)")
	}
	buf = buf[n:]
	avgBits, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("core: corrupt sample encoding (avg)")
	}
	buf = buf[n:]
	precBits, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("core: corrupt sample encoding (precision)")
	}
	buf = buf[n:]
	avg := math.Float64frombits(avgBits)
	precision := math.Float64frombits(precBits)
	out := make([]float64, count)
	for i := range out {
		q, n := binary.Varint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt sample encoding (value %d)", i)
		}
		buf = buf[n:]
		out[i] = avg + float64(q)*precision
	}
	return out, nil
}

// EncodedSampleBytes returns the total size of the synopsis's samples
// under delta encoding at the given precision, for storage accounting and
// the delta-encoding ablation. Points are counted uncompressed.
func (s *Synopsis) EncodedSampleBytes(precision float64) (int, error) {
	total := 0
	for leaf := 0; leaf < s.store.numLeaves(); leaf++ {
		values := s.store.leafValues(leaf)
		buf, err := EncodeLeafSamples(values, s.tr.LeafAgg(leaf).Avg(), precision)
		if err != nil {
			return 0, err
		}
		total += len(buf) + len(values)*s.dims*8
	}
	return total, nil
}
