package core

import (
	"bufio"
	"io"
)

// test helpers shared by serialize_test.go

func newBufWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }

func flushWriter(sw *serWriter) { _ = sw.w.Flush() }
