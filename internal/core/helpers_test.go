package core

import (
	"io"

	"repro/internal/binenc"
)

// test helpers shared by serialize_test.go

func newSerWriter(w io.Writer) serWriter {
	return serWriter{Writer: binenc.NewWriter(w)}
}

func flushWriter(sw serWriter) { _ = sw.Flush() }
