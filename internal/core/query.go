package core

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/ptree"
	"repro/internal/stats"
)

// Result is the answer to one approximate aggregate query.
type Result struct {
	// Estimate is the point estimate of the aggregate.
	Estimate float64
	// CIHalf is the half-width of the λ-confidence interval around
	// Estimate (0 when the query was answered exactly).
	CIHalf float64
	// HardLo/HardHi are deterministic bounds guaranteed to contain the
	// exact answer when HardValid is true (Section 2.3).
	HardLo, HardHi float64
	HardValid      bool
	// Exact reports that the query was answered with zero sampling error
	// (predicate aligned with the partitioning).
	Exact bool
	// NoMatch reports that the synopsis believes no tuple satisfies the
	// predicate (AVG/MIN/MAX undefined).
	NoMatch bool
	// MatchEst is the estimated number of tuples satisfying the predicate
	// (the n̂_q of Section 3.3): covered-partition cardinality plus the
	// scaled matching-sample counts of partial leaves. Scatter-gather
	// execution uses it as the weight when combining per-shard AVG
	// partials.
	MatchEst float64
	// MatchCertain reports that at least one matching tuple was directly
	// observed — a non-empty covered partition or a matching sample — so
	// the estimate rests on actual evidence rather than a partial-leaf
	// envelope. Scatter-gather merging needs the distinction to compose
	// MIN/MAX hard bounds soundly: only a shard that certainly contains a
	// match may tighten the global extremum's bound.
	MatchCertain bool

	// Diagnostics
	// TuplesRead counts sample tuples scanned: the effective IO of the
	// query (the ESS numerator).
	TuplesRead int
	// SkippedTuples counts dataset tuples whose partitions were either
	// skipped as irrelevant or answered from precomputed aggregates.
	SkippedTuples int
	// VisitedNodes counts partition-tree nodes touched by the MCF.
	VisitedNodes int
	// CoveredParts and PartialParts count frontier entries.
	CoveredParts, PartialParts int

	// Degradation accounting (scatter-gather execution). A single-node
	// synopsis always answers completely and leaves these zero.
	//
	// Degraded marks a partial answer: one or more shards errored or
	// missed the query deadline and were dropped from the merge. The
	// estimate remains an unbiased answer over the shards that responded,
	// with the CI widened by the merge layer's compensation rules.
	Degraded bool
	// ShardsTotal and ShardsAnswered count the scatter fan-out and how
	// many shards contributed to the merged answer (equal when not
	// degraded; both zero for non-scatter execution).
	ShardsTotal, ShardsAnswered int
}

// SkipRate returns the fraction of dataset tuples not needed to answer the
// query (the paper's skip-rate metric).
func (r Result) SkipRate(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.SkippedTuples) / float64(n)
}

// RelativeError returns |Estimate-truth|/|truth|, or the absolute error
// when the truth is zero.
func (r Result) RelativeError(truth float64) float64 {
	if truth == 0 {
		return math.Abs(r.Estimate)
	}
	return math.Abs(r.Estimate-truth) / math.Abs(truth)
}

// CIRatio returns CIHalf/|truth| (the paper's confidence-interval ratio
// metric), or CIHalf when the truth is zero.
func (r Result) CIRatio(truth float64) float64 {
	if truth == 0 {
		return r.CIHalf
	}
	return r.CIHalf / math.Abs(truth)
}

// Query answers an aggregate with a rectangular predicate. The rectangle
// may constrain fewer dimensions than the synopsis (the rest are
// unconstrained) or more (workload shift on k-d synopses).
func (s *Synopsis) Query(kind dataset.AggKind, q dataset.Rect) (Result, error) {
	if q.Dims() == 0 {
		return Result{}, fmt.Errorf("core: query rectangle has no dimensions")
	}
	if q.Dims() > s.dims {
		return Result{}, fmt.Errorf("core: query constrains %d dimensions but samples carry %d (build with the full predicate vector and IndexDims for workload shift)", q.Dims(), s.dims)
	}
	zeroVar := kind == dataset.Avg && !s.opts.DisableZeroVariance
	cd := constrainedDims(q)
	switch kind {
	case dataset.Sum, dataset.Count:
		return s.sumCount(kind, q, cd, zeroVar), nil
	case dataset.Avg:
		return s.avg(q, cd, zeroVar), nil
	case dataset.Min, dataset.Max:
		return s.minMax(kind, q, cd, zeroVar), nil
	}
	return Result{}, fmt.Errorf("core: unsupported aggregate %v", kind)
}

// walkFrontier dispatches the streaming MCF walk, projecting the query
// onto the indexed column subset when the tree indexes one (multi-template
// sets, Section 4.5). If the query constrains a column the tree does not
// index, coverage cannot be certified and every intersecting leaf is
// partial. Frontier entries are streamed to the callbacks in depth-first
// order rather than materialized; the return value is the number of tree
// nodes visited.
func (s *Synopsis) walkFrontier(q dataset.Rect, zeroVar bool, cover func(ptree.Agg), partial func(leaf int, a ptree.Agg)) int {
	if s.idxCols == nil || s.kd == nil {
		return s.tr.Walk(q, zeroVar, cover, partial)
	}
	lo := make([]float64, len(s.idxCols))
	hi := make([]float64, len(s.idxCols))
	indexed := make(map[int]bool, len(s.idxCols))
	for i, c := range s.idxCols {
		indexed[c] = true
		if c < q.Dims() {
			lo[i], hi[i] = q.Lo[c], q.Hi[c]
		} else {
			lo[i], hi[i] = math.Inf(-1), math.Inf(1)
		}
	}
	force := false
	for c := 0; c < q.Dims(); c++ {
		if !indexed[c] && (!math.IsInf(q.Lo[c], -1) || !math.IsInf(q.Hi[c], 1)) {
			force = true
			break
		}
	}
	return s.kd.WalkProjected(dataset.Rect{Lo: lo, Hi: hi}, force, zeroVar, cover, partial)
}

// constrainedDims lists the dimensions q actually bounds. Row filtering
// touches only these dimensions instead of comparing every coordinate
// against ±Inf — the leaf-level half of predicate pushdown. A nil result
// means the predicate is vacuous.
func constrainedDims(q dataset.Rect) []int {
	var cd []int
	for c := range q.Lo {
		if !math.IsInf(q.Lo[c], -1) || !math.IsInf(q.Hi[c], 1) {
			cd = append(cd, c)
		}
	}
	return cd
}

// onlyDim reports whether every constrained dimension is dim — the
// generalized sole-constraint test: once the sort-dimension binary search
// has narrowed the range, no other dimension needs checking and the prefix
// fast path applies.
func onlyDim(cd []int, dim int) bool {
	for _, c := range cd {
		if c != dim {
			return false
		}
	}
	return true
}

// leafScan summarises the resolution of a partial leaf's sample against
// the query predicate. k is always the full stratum sample size K_i (the
// estimator's denominator), even when the prefix fast path avoided
// touching most samples.
type leafScan struct {
	k     int     // sample size K_i
	kPred int     // matching samples
	sum   float64 // Σ matching values
	sumSq float64 // Σ matching values²
}

// scanLeaf resolves a partial leaf for SUM/COUNT/AVG estimation. The leaf's
// samples are sorted along its primary split dimension, so a predicate on
// that dimension reduces to a binary-searched contiguous range; when no
// other dimension is constrained, count/sum/sumSq come from two prefix
// lookups (O(log k) total). Otherwise only the remaining constrained
// dimensions (cd) are checked with a branch-light loop over the flat
// columnar arrays — unconstrained columns are never touched.
func (s *Synopsis) scanLeaf(leaf int, q dataset.Rect, cd []int) leafScan {
	st := s.store
	o, e := st.offsets[leaf], st.offsets[leaf+1]
	sc := leafScan{k: e - o}
	if sc.k == 0 {
		return sc
	}
	if sd := st.sortDim[leaf]; sd < q.Dims() {
		a, b := st.searchRange(leaf, q.Lo[sd], q.Hi[sd])
		if a >= b {
			return sc
		}
		if onlyDim(cd, sd) {
			sc.kPred, sc.sum, sc.sumSq = st.rangeAgg(leaf, a, b)
			return sc
		}
		sc.scanRows(st, q, cd, sd, a, b)
	} else {
		if len(cd) == 0 {
			// vacuous predicate: the whole leaf matches, answered from the
			// prefix aggregates without touching a row
			sc.kPred, sc.sum, sc.sumSq = st.rangeAgg(leaf, o, e)
			return sc
		}
		sc.scanRows(st, q, cd, -1, o, e)
	}
	return sc
}

// matchRow reports whether global sample j satisfies q on the constrained
// dimensions cd, skipping dimension skip, which the caller already
// certified via binary search (-1 checks every constrained dimension).
func matchRow(st *leafStore, q dataset.Rect, cd []int, skip, j int) bool {
	row := st.coords[j*st.dims : j*st.dims+st.dims]
	for _, c := range cd {
		if c == skip {
			continue
		}
		if row[c] < q.Lo[c] || row[c] > q.Hi[c] {
			return false
		}
	}
	return true
}

// scanRows accumulates matching samples in the global range [a, b).
func (sc *leafScan) scanRows(st *leafStore, q dataset.Rect, cd []int, skip, a, b int) {
	for j := a; j < b; j++ {
		if !matchRow(st, q, cd, skip, j) {
			continue
		}
		v := st.values[j]
		sc.kPred++
		sc.sum += v
		sc.sumSq += v * v
	}
}

// leafMinMax is the MIN/MAX counterpart of leafScan.
type leafMinMax struct {
	k, kPred int
	min, max float64
}

// scanLeafMinMax resolves a partial leaf for MIN/MAX estimation: extrema
// require visiting the matching values, but the sort-dimension binary
// search still narrows the scan to the candidate range, and only the
// remaining constrained dimensions are compared per row.
func (s *Synopsis) scanLeafMinMax(leaf int, q dataset.Rect, cd []int) leafMinMax {
	st := s.store
	o, e := st.offsets[leaf], st.offsets[leaf+1]
	m := leafMinMax{k: e - o, min: math.Inf(1), max: math.Inf(-1)}
	if m.k == 0 {
		return m
	}
	a, b, skip := o, e, -1
	if sd := st.sortDim[leaf]; sd < q.Dims() {
		a, b = st.searchRange(leaf, q.Lo[sd], q.Hi[sd])
		skip = sd
	}
	for j := a; j < b; j++ {
		if !matchRow(st, q, cd, skip, j) {
			continue
		}
		v := st.values[j]
		m.kPred++
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	return m
}

// walkDiag accumulates the frontier-shape diagnostics of a streaming MCF
// walk: entry counts and the dataset cardinality under partial leaves.
type walkDiag struct {
	read, partialN   int
	nCover, nPartial int
}

func (s *Synopsis) diag(d walkDiag, visited int) Result {
	return Result{
		TuplesRead:    d.read,
		SkippedTuples: s.n - d.partialN,
		VisitedNodes:  visited,
		CoveredParts:  d.nCover,
		PartialParts:  d.nPartial,
	}
}

// sumCount answers SUM and COUNT queries: exact partial aggregates over
// covered partitions plus per-stratum sample estimates over partial leaves
// (Section 3.3), with strata weights w_i = 1. The MCF streams entries to
// the fold below — per-query state is O(1) regardless of frontier size.
func (s *Synopsis) sumCount(kind dataset.AggKind, q dataset.Rect, cd []int, zeroVar bool) Result {
	var (
		d              walkDiag
		cover          ptree.Agg
		estP, varTotal float64
		hardLoP        float64
		hardHiP        float64
		matchEstP      float64
		certain        bool
	)
	visited := s.walkFrontier(q, zeroVar,
		func(a ptree.Agg) {
			d.nCover++
			cover.Merge(a)
		},
		func(leaf int, pa ptree.Agg) {
			d.nPartial++
			d.partialN += pa.N
			sc := s.scanLeaf(leaf, q, cd)
			d.read += sc.k
			ni := float64(pa.N)
			if sc.k > 0 {
				matchEstP += ni * float64(sc.kPred) / float64(sc.k)
				if sc.kPred > 0 {
					certain = true
				}
				var phiMean, phiSq float64
				if kind == dataset.Sum {
					phiMean = ni * sc.sum / float64(sc.k)
					phiSq = ni * ni * sc.sumSq / float64(sc.k)
				} else {
					phiMean = ni * float64(sc.kPred) / float64(sc.k)
					phiSq = ni * ni * float64(sc.kPred) / float64(sc.k)
				}
				estP += phiMean
				phiVar := phiSq - phiMean*phiMean
				if phiVar < 0 {
					phiVar = 0
				}
				varTotal += phiVar / float64(sc.k) * stats.FPC(pa.N, sc.k)
			}
			lo, hi := partialSumBounds(kind, pa)
			hardLoP += lo
			hardHiP += hi
		})
	agg := cover.Sum
	if kind == dataset.Count {
		agg = float64(cover.N)
	}
	r := s.diag(d, visited)
	r.Estimate = agg + estP
	r.CIHalf = s.opts.Lambda * math.Sqrt(varTotal)
	r.HardLo, r.HardHi, r.HardValid = agg+hardLoP, agg+hardHiP, true
	r.Exact = d.nPartial == 0
	r.MatchEst = float64(cover.N) + matchEstP
	r.MatchCertain = cover.N > 0 || certain
	return r
}

// partialSumBounds returns the deterministic range of a partial leaf's
// contribution to a SUM/COUNT. For COUNT it is [0, N]. For SUM the subset
// sum lies between the sums of the most negative and most positive
// subsets, which the partition extrema bound; with all-positive values
// this reduces to the paper's [0, SUM(P_i)].
func partialSumBounds(kind dataset.AggKind, a ptree.Agg) (lo, hi float64) {
	if kind == dataset.Count {
		return 0, float64(a.N)
	}
	n := float64(a.N)
	// highest subset sum: total minus the most negative exclusions
	hi = a.Sum - n*math.Min(0, a.Min)
	if hi < 0 {
		hi = 0
	}
	if a.Min >= 0 && a.Sum < hi {
		hi = a.Sum // all positive: cannot exceed the partition total
	}
	// lowest subset sum
	lo = math.Min(0, n*a.Min)
	if v := a.Sum - n*math.Max(0, a.Max); v > lo {
		lo = v
	}
	return lo, hi
}

// avg answers AVG queries via the weighted stratified combination of
// Sections 2.2/3.3: covered strata contribute their exact averages with
// exact weights; partial strata contribute sample means with weights
// estimated from the sample predicate fraction. Covered partitions fold
// into a single O(1) stratum during the walk; only partial strata with
// evidence are buffered (the combination weights need the total n̂_q).
func (s *Synopsis) avg(q dataset.Rect, cd []int, zeroVar bool) Result {
	type stratum struct {
		est  float64
		nHat float64
		vi   float64 // V_i(q), zero for covered strata
	}
	var (
		d        walkDiag
		cover    ptree.Agg
		partials []stratum
		// hard-bound envelope over partial partitions (Section 2.3)
		partialLo = math.Inf(1)
		partialHi = math.Inf(-1)
	)
	visited := s.walkFrontier(q, zeroVar,
		func(a ptree.Agg) {
			d.nCover++
			cover.Merge(a)
		},
		func(leaf int, pa ptree.Agg) {
			d.nPartial++
			d.partialN += pa.N
			sc := s.scanLeaf(leaf, q, cd)
			d.read += sc.k
			if pa.N > 0 {
				if pa.Min < partialLo {
					partialLo = pa.Min
				}
				if pa.Max > partialHi {
					partialHi = pa.Max
				}
			}
			if sc.k == 0 || sc.kPred == 0 {
				return // stratum contributes nothing we can estimate
			}
			ni := float64(pa.N)
			nHat := ni * float64(sc.kPred) / float64(sc.k)
			est := sc.sum / float64(sc.kPred)
			// φ(t) = pred·(K/K_pred)·a; var over the whole leaf sample
			ratio := float64(sc.k) / float64(sc.kPred)
			phiMean := est
			phiSq := ratio * ratio * sc.sumSq / float64(sc.k)
			phiVar := phiSq - phiMean*phiMean
			if phiVar < 0 {
				phiVar = 0
			}
			vi := phiVar / float64(sc.k) * stats.FPC(pa.N, sc.k)
			partials = append(partials, stratum{est: est, nHat: nHat, vi: vi})
		})
	r := s.diag(d, visited)
	nq := float64(cover.N)
	for _, st := range partials {
		nq += st.nHat
	}
	// strata exist only on direct evidence (a covered partition or a
	// matching sample), so a positive weight doubles as certainty
	r.MatchEst = nq
	r.MatchCertain = nq > 0
	if nq == 0 {
		r.NoMatch = true
		return r
	}
	est, varTotal := 0.0, 0.0
	if cover.N > 0 {
		est += float64(cover.N) / nq * cover.Avg()
	}
	for _, st := range partials {
		w := st.nHat / nq
		est += w * st.est
		varTotal += w * w * st.vi
	}
	r.Estimate = est
	r.CIHalf = s.opts.Lambda * math.Sqrt(varTotal)
	r.Exact = len(partials) == 0
	// hard bounds (Section 2.3)
	lo, hi := partialLo, partialHi
	if cover.N > 0 {
		if a := cover.Avg(); a < lo {
			lo = a
		}
		if a := cover.Avg(); a > hi {
			hi = a
		}
	}
	if !math.IsInf(lo, 1) {
		r.HardLo, r.HardHi, r.HardValid = lo, hi, true
	}
	return r
}

// minMax answers MIN and MAX queries: exact extrema over covered
// partitions, sampled extrema over partial leaves, with hard bounds from
// the partial partitions' stored extrema. Extrema folds are commutative,
// so the streamed walk keeps O(1) state.
func (s *Synopsis) minMax(kind dataset.AggKind, q dataset.Rect, cd []int, zeroVar bool) Result {
	var (
		d          walkDiag
		cover      ptree.Agg
		sampled    = math.Inf(1) // extremum over matching samples
		sampledAny bool
		// partialLo/partialHi: the range any matching tuple in a partial
		// leaf could take
		partialLo  = math.Inf(1)
		partialHi  = math.Inf(-1)
		anyPartial bool
		matchEstP  float64
	)
	if kind == dataset.Max {
		sampled = math.Inf(-1)
	}
	visited := s.walkFrontier(q, zeroVar,
		func(a ptree.Agg) {
			d.nCover++
			cover.Merge(a)
		},
		func(leaf int, pa ptree.Agg) {
			d.nPartial++
			d.partialN += pa.N
			sc := s.scanLeafMinMax(leaf, q, cd)
			d.read += sc.k
			if pa.N > 0 {
				anyPartial = true
				partialLo = math.Min(partialLo, pa.Min)
				partialHi = math.Max(partialHi, pa.Max)
			}
			if sc.k > 0 {
				matchEstP += float64(pa.N) * float64(sc.kPred) / float64(sc.k)
			}
			if sc.kPred > 0 {
				sampledAny = true
				if kind == dataset.Min {
					sampled = math.Min(sampled, sc.min)
				} else {
					sampled = math.Max(sampled, sc.max)
				}
			}
		})
	best := sampled
	observed := sampledAny
	if cover.N > 0 {
		observed = true
		c := cover.Min
		if kind == dataset.Max {
			c = cover.Max
		}
		if !sampledAny {
			best = c
		} else if kind == dataset.Min {
			best = math.Min(best, c)
		} else {
			best = math.Max(best, c)
		}
	}
	r := s.diag(d, visited)
	r.MatchEst = float64(cover.N) + matchEstP
	r.MatchCertain = observed
	if !observed && !anyPartial {
		r.NoMatch = true
		return r
	}
	if !observed {
		// no matching tuple seen; if any exists it lies in the partial
		// envelope — report the midpoint with the envelope as hard bounds
		r.Estimate = (partialLo + partialHi) / 2
		r.HardLo, r.HardHi, r.HardValid = partialLo, partialHi, true
		return r
	}
	r.Estimate = best
	if kind == dataset.Min {
		// best is an actual matching value, so the true minimum is at
		// most best; it can be as low as the smallest partial candidate
		lo := best
		if anyPartial {
			lo = math.Min(lo, partialLo)
		}
		r.HardLo, r.HardHi, r.HardValid = lo, best, true
	} else {
		hi := best
		if anyPartial {
			hi = math.Max(hi, partialHi)
		}
		r.HardLo, r.HardHi, r.HardValid = best, hi, true
	}
	r.Exact = d.nPartial == 0
	return r
}
