package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	values := []float64{10.001, 10.502, 9.75, 10.25, 11.0}
	buf, err := EncodeLeafSamples(values, 10.3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLeafSamples(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(values) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range values {
		if math.Abs(got[i]-values[i]) > 5e-4 {
			t.Errorf("value %d: %v decoded as %v", i, values[i], got[i])
		}
	}
}

func TestEncodeEmptyAndErrors(t *testing.T) {
	buf, err := EncodeLeafSamples(nil, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLeafSamples(buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty round-trip: %v %v", got, err)
	}
	if _, err := EncodeLeafSamples([]float64{1}, 0, 0); err == nil {
		t.Error("zero precision accepted")
	}
	if _, err := EncodeLeafSamples([]float64{1e300}, 0, 1e-9); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := DecodeLeafSamples(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, err := DecodeLeafSamples([]byte{0x05}); err == nil {
		t.Error("truncated buffer accepted")
	}
}

func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(raw []int16, avgSeed int8) bool {
		values := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v) / 7
		}
		avg := float64(avgSeed)
		buf, err := EncodeLeafSamples(values, avg, 1e-4)
		if err != nil {
			return false
		}
		got, err := DecodeLeafSamples(buf)
		if err != nil || len(got) != len(values) {
			return false
		}
		for i := range values {
			if math.Abs(got[i]-values[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodingCompressesLowVarianceLeaves(t *testing.T) {
	// values tightly clustered around the leaf average should take far
	// fewer than 8 bytes each
	values := make([]float64, 1000)
	for i := range values {
		values[i] = 100 + float64(i%7)*0.01
	}
	buf, err := EncodeLeafSamples(values, 100.03, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > len(values)*2+32 {
		t.Errorf("encoded %d values into %d bytes; expected heavy compression", len(values), len(buf))
	}
}

func TestEncodedSampleBytesSmallerThanRaw(t *testing.T) {
	d := dataset.GenIntelWireless(5000, 1)
	s := build1D(t, d, 32, 0.1)
	enc, err := s.EncodedSampleBytes(1e-2)
	if err != nil {
		t.Fatal(err)
	}
	raw := s.TotalSamples() * 2 * 8 // point + value per sample
	if enc >= raw {
		t.Errorf("delta encoding did not shrink storage: %d >= %d", enc, raw)
	}
}
