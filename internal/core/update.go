package core

import (
	"fmt"

	"repro/internal/sample"
)

// seedReservoir primes the reservoir with the samples drawn at build time:
// they are already a uniform sample of the N dataset tuples, which is
// exactly the reservoir invariant, so subsequent Offer calls continue the
// stream with the correct acceptance probability K/N.
func (s *Synopsis) seedReservoir() {
	st := s.store
	items := make([]sample.Item, 0, s.totalK)
	for leaf := 0; leaf < st.numLeaves(); leaf++ {
		o, e := st.offsets[leaf], st.offsets[leaf+1]
		for j := o; j < e; j++ {
			items = append(items, sample.Item{
				Point: append([]float64(nil), st.point(j)...),
				Value: st.values[j],
				Leaf:  leaf,
			})
		}
	}
	s.res.Restore(items, s.n)
}

// Insert adds one tuple (point, value) to a 1D synopsis: tree statistics
// are updated along the leaf-to-root path in O(log k), and the stratified
// sample is maintained by reservoir sampling (Section 4.5).
func (s *Synopsis) Insert(point []float64, value float64) error {
	if s.oneD == nil {
		return fmt.Errorf("core: dynamic updates are supported on 1D synopses only")
	}
	if len(point) < 1 {
		return fmt.Errorf("core: insert point has no coordinates")
	}
	leaf := s.oneD.LocateLeaf(point[0])
	s.oneD.ApplyInsert(leaf, value)
	s.n++
	if s.sk != nil {
		s.sk.Add(value)
	}
	accepted, evicted := s.res.Offer(sample.Item{Point: point, Value: value, Leaf: leaf})
	if !accepted {
		return nil
	}
	if evicted.Leaf >= 0 {
		s.store.remove(evicted.Leaf, evicted.Value)
	}
	s.store.insert(leaf, point, value)
	s.totalK = s.store.totalLen()
	return nil
}

// Delete removes one tuple with the given predicate point and value from a
// 1D synopsis. SUM/COUNT statistics are updated exactly; MIN/MAX stay
// conservative. If a matching sample exists it is dropped.
func (s *Synopsis) Delete(point []float64, value float64) error {
	if s.oneD == nil {
		return fmt.Errorf("core: dynamic updates are supported on 1D synopses only")
	}
	leaf := s.oneD.LocateLeaf(point[0])
	if err := s.oneD.ApplyDelete(leaf, value); err != nil {
		return err
	}
	s.n--
	if s.sk != nil {
		s.sk.Delete(value)
	}
	s.store.remove(leaf, value)
	// keep the reservoir's view consistent
	items := s.res.Items()
	for i := range items {
		if items[i].Leaf == leaf && items[i].Value == value {
			s.res.Remove(i)
			break
		}
	}
	s.totalK = s.store.totalLen()
	return nil
}
