package core

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// GroupResult is one group's approximate answer in a GROUP BY query.
type GroupResult struct {
	// Group is the group key (a dictionary code for categorical columns).
	Group float64
	// Result is the approximate aggregate over the group.
	Result Result
}

// GroupBy answers SELECT agg(A) ... WHERE q GROUP BY column dim, following
// Section 4.5: each group-by condition is rewritten as an equality
// predicate on the grouping column and the per-group answers are collected.
// groups lists the group keys to evaluate (for categorical columns, the
// dictionary codes). Groups whose AVG/MIN/MAX is undefined are returned
// with Result.NoMatch set.
//
// The base predicate q may constrain any columns, including dim; the
// group equality is intersected with it.
func (s *Synopsis) GroupBy(kind dataset.AggKind, q dataset.Rect, dim int, groups []float64) ([]GroupResult, error) {
	if dim < 0 || dim >= s.dims {
		return nil, fmt.Errorf("core: group-by column %d out of range (synopsis has %d)", dim, s.dims)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: GroupBy requires a non-empty group list")
	}
	// the per-group rectangle must constrain dim, so it needs at least
	// dim+1 dimensions
	width := q.Dims()
	if width < dim+1 {
		width = dim + 1
	}
	if width > s.dims {
		return nil, fmt.Errorf("core: predicate constrains %d dimensions but samples carry %d", width, s.dims)
	}
	out := make([]GroupResult, 0, len(groups))
	for _, g := range groups {
		lo := make([]float64, width)
		hi := make([]float64, width)
		for c := 0; c < width; c++ {
			if c < q.Dims() {
				lo[c], hi[c] = q.Lo[c], q.Hi[c]
			} else {
				lo[c], hi[c] = math.Inf(-1), math.Inf(1)
			}
		}
		// intersect with the group's equality predicate
		if g > lo[dim] {
			lo[dim] = g
		}
		if g < hi[dim] {
			hi[dim] = g
		}
		if lo[dim] != g || hi[dim] != g {
			// the base predicate excludes this group entirely
			out = append(out, GroupResult{Group: g, Result: Result{NoMatch: true}})
			continue
		}
		r, err := s.Query(kind, dataset.Rect{Lo: lo, Hi: hi})
		if err != nil {
			return nil, fmt.Errorf("core: group %v: %w", g, err)
		}
		out = append(out, GroupResult{Group: g, Result: r})
	}
	return out, nil
}
