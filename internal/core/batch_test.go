package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func batchWorkload(n int, seed uint64) []BatchQuery {
	rng := stats.NewRNG(seed)
	kinds := []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg, dataset.Min, dataset.Max}
	qs := make([]BatchQuery, n)
	for i := range qs {
		a, b := rng.Float64()*24, rng.Float64()*24
		qs[i] = BatchQuery{
			Kind: kinds[i%len(kinds)],
			Rect: dataset.Rect1(math.Min(a, b), math.Max(a, b)),
		}
	}
	return qs
}

// TestQueryBatchMatchesSequential verifies the core acceptance contract of
// batched execution: identical estimates, CIs and diagnostics to the
// sequential engine, in input order.
func TestQueryBatchMatchesSequential(t *testing.T) {
	d := dataset.GenNYCTaxi(10000, 1, 21)
	s := build1D(t, d, 16, 0.05)
	qs := batchWorkload(200, 22)
	got := s.QueryBatch(qs)
	if len(got) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(got), len(qs))
	}
	for i, q := range qs {
		want, wantErr := s.Query(q.Kind, q.Rect)
		if (got[i].Err == nil) != (wantErr == nil) {
			t.Fatalf("query %d: error mismatch %v vs %v", i, got[i].Err, wantErr)
		}
		if got[i].Err != nil {
			continue
		}
		r := got[i].Result
		if r.Estimate != want.Estimate || r.CIHalf != want.CIHalf {
			t.Fatalf("query %d: estimate/CI (%v, %v) != sequential (%v, %v)",
				i, r.Estimate, r.CIHalf, want.Estimate, want.CIHalf)
		}
		if r.TuplesRead != want.TuplesRead || r.NoMatch != want.NoMatch || r.Exact != want.Exact {
			t.Fatalf("query %d: diagnostics diverge from sequential", i)
		}
	}
}

// TestConcurrentBuildAndBatchQuery is the -race exercise for the parallel
// paths: several goroutines build synopses over the same dataset (each
// build runs its own parallel sampling workers) while others batch-query
// and point-query a shared pre-built synopsis.
func TestConcurrentBuildAndBatchQuery(t *testing.T) {
	d := dataset.GenNYCTaxi(8000, 1, 23)
	shared := build1D(t, d, 16, 0.05)
	ref := shared.QueryBatch(batchWorkload(50, 24))

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed uint64) {
			defer wg.Done()
			s, err := Build(d, Options{Partitions: 16, SampleRate: 0.05, Kind: dataset.Sum, Seed: seed})
			if err != nil {
				errs <- err
				return
			}
			if s.TotalSamples() == 0 {
				errs <- errNoSamples
			}
		}(uint64(g + 1))
		go func() {
			defer wg.Done()
			got := shared.QueryBatch(batchWorkload(50, 24))
			for i := range got {
				if (got[i].Err == nil) != (ref[i].Err == nil) {
					errs <- errDiverged
					return
				}
				if got[i].Err == nil && got[i].Result.Estimate != ref[i].Result.Estimate {
					errs <- errDiverged
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentKDBatchQuery covers the multi-dimensional read path under
// concurrency.
func TestConcurrentKDBatchQuery(t *testing.T) {
	d := dataset.GenNYCTaxi(8000, 3, 25)
	s, err := BuildKD(d, Options{Partitions: 32, SampleRate: 0.05, Kind: dataset.Sum, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(27)
	qs := make([]BatchQuery, 60)
	for i := range qs {
		lo := make([]float64, 3)
		hi := make([]float64, 3)
		for c := range lo {
			a, b := rng.Float64()*30, rng.Float64()*30
			lo[c], hi[c] = math.Min(a, b), math.Max(a, b)
		}
		qs[i] = BatchQuery{Kind: dataset.Sum, Rect: dataset.Rect{Lo: lo, Hi: hi}}
	}
	ref := s.QueryBatch(qs)
	var wg sync.WaitGroup
	fail := make(chan struct{}, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := s.QueryBatch(qs)
			for i := range got {
				if got[i].Result.Estimate != ref[i].Result.Estimate {
					fail <- struct{}{}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-fail:
		t.Fatal("concurrent batch answers diverged")
	default:
	}
}

var (
	errNoSamples = &constErr{"concurrent build produced no samples"}
	errDiverged  = &constErr{"concurrent batch answers diverged from reference"}
)

type constErr struct{ s string }

func (e *constErr) Error() string { return e.s }
