package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

var benchScanSink float64

// BenchmarkScanLeaf measures partial-leaf resolution for a SUM query whose
// interval half-covers one leaf — the inner loop of every partially
// covered frontier entry. With the columnar store the aligned 1D predicate
// resolves via binary search over the leaf's sorted samples plus two
// prefix lookups, instead of scanning every sample tuple.
func BenchmarkScanLeaf(b *testing.B) {
	d := dataset.GenNYCTaxi(100000, 1, 1)
	s, err := Build(d, Options{Partitions: 64, SampleSize: 16384, Kind: dataset.Sum, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	leaf := s.NumLeaves() / 2
	lo, hi := s.oneD.LeafValueRange(leaf)
	q := dataset.Rect1((lo+hi)/2, hi)
	sc := s.scanLeaf(leaf, q, constrainedDims(q))
	if sc.kPred == 0 || sc.kPred == sc.k {
		b.Fatalf("query does not half-cover the leaf: %d of %d match", sc.kPred, sc.k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := s.scanLeaf(leaf, q, constrainedDims(q))
		benchScanSink += sc.sum
	}
}

// BenchmarkScanLeafUnaligned measures the same leaf resolution when the
// predicate constrains a dimension other than the leaf's sort dimension
// (3-dimensional synopsis), which still runs through the branch-light
// columnar row scan.
func BenchmarkScanLeafUnaligned(b *testing.B) {
	d := dataset.GenNYCTaxi(100000, 3, 1)
	s, err := BuildKD(d, Options{Partitions: 64, SampleSize: 16384, Kind: dataset.Sum, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	// constrain every dimension so no pure-prefix shortcut applies
	q := dataset.Rect{
		Lo: []float64{0, 0, 0},
		Hi: []float64{12, 15, math.Inf(1)},
	}
	leaf := 0
	for l := 0; l < s.NumLeaves(); l++ {
		if sc := s.scanLeaf(l, q, constrainedDims(q)); sc.kPred > 0 && sc.kPred < sc.k {
			leaf = l
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := s.scanLeaf(leaf, q, constrainedDims(q))
		benchScanSink += sc.sum
	}
}
