package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestGroupByMatchesPerGroupQueries(t *testing.T) {
	// categorical-ish data: 8 groups on column 1 of a 2D dataset
	d := dataset.New("g", 2)
	rng := newTestRNG()
	for i := 0; i < 8000; i++ {
		g := float64(i % 8)
		x := rng()
		d.Append([]float64{x, g}, 10*g+rng()*2)
	}
	s, err := BuildKD(d, Options{Partitions: 64, SampleRate: 0.1, Kind: dataset.Sum, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	groups := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	q := dataset.Rect{Lo: []float64{0.2}, Hi: []float64{0.8}}
	res, err := s.GroupBy(dataset.Avg, q, 1, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("got %d groups", len(res))
	}
	for _, gr := range res {
		if gr.Result.NoMatch {
			continue
		}
		truth, err := d.Exact(dataset.Avg, dataset.Rect{
			Lo: []float64{0.2, gr.Group}, Hi: []float64{0.8, gr.Group},
		})
		if err != nil {
			continue
		}
		if gr.Result.RelativeError(truth) > 0.15 {
			t.Errorf("group %v: AVG %v far from %v", gr.Group, gr.Result.Estimate, truth)
		}
		// group means are ~10g; the per-group answers must be ordered
		want := 10 * gr.Group
		if math.Abs(gr.Result.Estimate-want) > 3 {
			t.Errorf("group %v: AVG %v, want ~%v", gr.Group, gr.Result.Estimate, want)
		}
	}
}

func TestGroupByBasePredicateExcludesGroup(t *testing.T) {
	d := dataset.GenNYCTaxi(3000, 2, 31)
	s, err := BuildKD(d, Options{Partitions: 32, SampleRate: 0.1, Kind: dataset.Sum, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	// base predicate restricts column 1 (day) to [0, 10]; group 20 is
	// outside it and must come back NoMatch
	q := dataset.Rect{Lo: []float64{0, 0}, Hi: []float64{24, 10}}
	res, err := s.GroupBy(dataset.Count, q, 1, []float64{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Result.NoMatch {
		t.Error("group 5 inside the base predicate should be answerable")
	}
	if !res[1].Result.NoMatch {
		t.Error("group 20 outside the base predicate must be NoMatch")
	}
}

func TestGroupByValidation(t *testing.T) {
	d := dataset.GenUniform(500, 1, 10, 33)
	s := build1D(t, d, 8, 0.1)
	if _, err := s.GroupBy(dataset.Sum, dataset.Rect1(0, 1), 3, []float64{1}); err == nil {
		t.Error("out-of-range group column accepted")
	}
	if _, err := s.GroupBy(dataset.Sum, dataset.Rect1(0, 1), 0, nil); err == nil {
		t.Error("empty group list accepted")
	}
}

func TestGroupBy1DOnGroupColumn(t *testing.T) {
	// grouping on the only predicate column of a 1D synopsis: aligned
	// equality predicates — COUNT per group should be near-exact thanks
	// to data skipping and sample estimation
	d := dataset.New("g1", 1)
	for i := 0; i < 4000; i++ {
		d.Append([]float64{float64(i % 4)}, 1)
	}
	d.SortByPred(0)
	s := build1D(t, d, 8, 0.1)
	res, err := s.GroupBy(dataset.Count, dataset.Rect1(math.Inf(-1), math.Inf(1)), 0, []float64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range res {
		if math.Abs(gr.Result.Estimate-1000) > 150 {
			t.Errorf("group %v count = %v, want ~1000", gr.Group, gr.Result.Estimate)
		}
	}
}

// newTestRNG returns a tiny deterministic uniform generator for tests
// that do not want a stats dependency loop.
func newTestRNG() func() float64 {
	seed := uint64(0x12345)
	return func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / (1 << 53)
	}
}
