// Package core implements the PASS synopsis engine: it assembles the
// partition tree (1D or multi-dimensional) with the stratified leaf samples
// into a queryable structure, and answers SUM/COUNT/AVG/MIN/MAX queries
// with predicates, returning CLT confidence intervals and deterministic
// hard bounds (Sections 3 and 4 of the paper).
package core

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/kdtree"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/ptree"
	"repro/internal/sample"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// Partitioner selects the 1D leaf-partitioning algorithm.
type Partitioner int

const (
	// PartitionADP is the sampling + discretization approximate dynamic
	// program of Section 4.3.1 — the paper's default.
	PartitionADP Partitioner = iota
	// PartitionEqualDepth is equal-size partitioning (the EQ baseline;
	// optimal for COUNT by Lemma A.1).
	PartitionEqualDepth
	// PartitionHillClimb is the AQP++-style hill-climbing heuristic.
	PartitionHillClimb
	// PartitionVOptimal minimises the total within-bucket squared error
	// (the V-Optimal histogram objective of Jagadish et al., contrasted
	// with PASS's min-max objective in Section 2.4).
	PartitionVOptimal
)

func (p Partitioner) String() string {
	switch p {
	case PartitionADP:
		return "ADP"
	case PartitionEqualDepth:
		return "EQ"
	case PartitionHillClimb:
		return "HillClimb"
	case PartitionVOptimal:
		return "VOptimal"
	}
	return fmt.Sprintf("Partitioner(%d)", int(p))
}

// Options configures synopsis construction. The zero value plus Partitions
// and one of SampleRate/SampleSize is a working configuration.
type Options struct {
	// Partitions is the leaf budget k (derived from the construction time
	// limit τ_c in the paper's cost model).
	Partitions int
	// SampleRate is the stratified-sample size as a fraction of N
	// (derived from the query time limit τ_q). Ignored when SampleSize is
	// set.
	SampleRate float64
	// SampleSize is the absolute total sample budget K; overrides
	// SampleRate when positive.
	SampleSize int
	// Kind is the query type the partitioning is optimised for.
	Kind dataset.AggKind
	// Partitioner selects the 1D partitioning algorithm (default ADP).
	Partitioner Partitioner
	// OptSamples is m, the optimisation sample size for ADP (default
	// max(20·k, 1000), capped at N).
	OptSamples int
	// Delta is the minimum meaningful query selectivity δ (default 0.01).
	Delta float64
	// Lambda is the CI multiplier (default 2.576, a 99% interval).
	Lambda float64
	// Seed drives all randomness.
	Seed uint64
	// ZeroVarianceRule enables the AVG-query shortcut of Section 3.4
	// (default on; set DisableZeroVariance to turn it off).
	DisableZeroVariance bool
	// Proportional allocates the sample budget proportionally to leaf
	// sizes instead of equally.
	Proportional bool
	// KD configures multi-dimensional construction (BuildKD only).
	KD kdtree.Options
	// KDPolicy selects KD-PASS (default) or KD-US.
	KDPolicy kdtree.Policy
	// IndexDims restricts the k-d tree to the first IndexDims predicate
	// columns while samples retain the full predicate vector — the
	// workload-shift scenario of Section 5.4.1 (0 = index all columns).
	IndexDims int
	// IndexCols restricts the k-d tree to an arbitrary subset of predicate
	// columns, in the given order (generalises IndexDims; used by the
	// multi-template sets of Section 4.5). Overrides IndexDims when set.
	IndexCols []int
	// Fanout is the 1D partition-tree fanout (default 2). Per Section 4.1
	// it affects only construction time and query latency, never accuracy.
	Fanout int
	// ForceBoundaries, when non-empty, overrides the Partitioner: the 1D
	// partitioning places a leaf boundary at every listed predicate value
	// and spends the rest of the Partitions budget on equal-depth
	// refinement between them (partition.Forced). It is the
	// workload-driven rebuild path: forcing boundaries at observed query
	// endpoints turns repeated query ranges into exactly-covered partition
	// unions, answered with zero sampling error. Ignored by BuildKD.
	ForceBoundaries []partition.Boundary
}

func (o *Options) fill(n int) error {
	if o.Partitions <= 0 {
		return fmt.Errorf("core: Options.Partitions must be positive")
	}
	if o.SampleSize <= 0 {
		if o.SampleRate <= 0 || o.SampleRate > 1 {
			return fmt.Errorf("core: need SampleSize or SampleRate in (0, 1]")
		}
		o.SampleSize = int(o.SampleRate * float64(n))
	}
	if o.SampleSize < o.Partitions {
		o.SampleSize = o.Partitions // at least one sample per stratum
	}
	if o.SampleSize > n {
		o.SampleSize = n
	}
	if o.Delta <= 0 {
		o.Delta = 0.01
	}
	if o.Lambda <= 0 {
		o.Lambda = stats.Lambda99
	}
	if o.OptSamples <= 0 {
		o.OptSamples = 20 * o.Partitions
		if o.OptSamples < 1000 {
			o.OptSamples = 1000
		}
	}
	if o.OptSamples > n {
		o.OptSamples = n
	}
	return nil
}

// SampleTuple is one stratified-sample entry: the tuple's predicate point
// and aggregate value.
type SampleTuple struct {
	Point []float64
	Value float64
}

// tree abstracts over the 1D partition tree and the k-d tree.
type tree interface {
	NumLeaves() int
	LeafAgg(leaf int) ptree.Agg
	Root() ptree.Agg
	Frontier(q dataset.Rect, zeroVarAsCovered bool) ptree.Frontier
	Walk(q dataset.Rect, zeroVarAsCovered bool, cover func(ptree.Agg), partial func(leaf int, a ptree.Agg)) int
	MemoryBytes() int
}

// Synopsis is a built PASS data structure.
type Synopsis struct {
	opts Options
	tr   tree
	oneD *ptree.Tree  // non-nil for 1D synopses (enables updates)
	kd   *kdtree.Tree // non-nil for k-d synopses
	// idxCols maps tree dimensions to dataset predicate columns when the
	// tree indexes a column subset; nil when the tree indexes a prefix or
	// all columns.
	idxCols []int
	// store holds the stratified leaf samples in a columnar layout with
	// per-leaf prefix aggregates (see leafStore).
	store  *leafStore
	totalK int
	n      int
	dims   int
	rng    *stats.RNG
	res    *sample.Reservoir
	// sk holds the mergeable sketches (KLL/HLL/Misra-Gries) over the
	// aggregate column, maintained through Insert/Delete and persisted
	// with the synopsis. Nil only for synopses restored from a pre-sketch
	// (v1) snapshot; sketch queries then return sketch.ErrUnavailable.
	sk *sketch.Set
	// BuildTime records wall-clock construction cost.
	BuildTime time.Duration
	// Partitioning is the chosen 1D leaf partitioning (1D synopses only).
	Partitioning partition.Partitioning
}

// Build constructs a 1D PASS synopsis over d. The dataset is not retained;
// it is cloned and sorted by the predicate column internally.
func Build(d *dataset.Dataset, opts Options) (*Synopsis, error) {
	start := time.Now()
	if d.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if d.Dims() != 1 {
		return nil, fmt.Errorf("core: Build requires a 1D dataset, got %d dims (use BuildKD)", d.Dims())
	}
	if err := opts.fill(d.N()); err != nil {
		return nil, err
	}
	sorted := d.Clone()
	sorted.SortByPred(0)
	rng := stats.NewRNG(opts.Seed + 0x9e37)

	var p partition.Partitioning
	if len(opts.ForceBoundaries) > 0 {
		p = partition.Forced(sorted, opts.Partitions, opts.ForceBoundaries)
		return buildFromPartitioning(sorted, opts, p, rng, start)
	}
	switch opts.Partitioner {
	case PartitionEqualDepth:
		p = partition.EqualDepth(sorted.N(), opts.Partitions)
	case PartitionHillClimb:
		o := partition.NewSumOracle(sorted.Agg)
		p = partition.HillClimb(sorted.N(), opts.Partitions, o, 40)
	case PartitionVOptimal:
		p = partition.VOptimalSampled(sorted, opts.Partitions, opts.OptSamples, rng)
	default:
		res := partition.ADP(sorted, opts.Partitions, opts.OptSamples, opts.Kind, opts.Delta, rng)
		p = res.Partitioning
	}
	return buildFromPartitioning(sorted, opts, p, rng, start)
}

// buildFromPartitioning finishes 1D construction from a chosen leaf
// partitioning: partition tree, stratified samples, update reservoir.
func buildFromPartitioning(sorted *dataset.Dataset, opts Options, p partition.Partitioning, rng *stats.RNG, start time.Time) (*Synopsis, error) {
	fanout := opts.Fanout
	if fanout <= 0 {
		fanout = 2
	}
	tr, err := ptree.BuildFanout(sorted, p, fanout)
	if err != nil {
		return nil, err
	}
	s := &Synopsis{
		opts: opts, tr: tr, oneD: tr,
		n: sorted.N(), dims: 1, rng: rng,
		Partitioning: p,
		sk:           sketchFromAgg(sorted.Agg),
	}
	s.drawSamples1D(sorted, tr)
	s.res = sample.NewReservoir(maxInt(s.totalK, 1), stats.NewRNG(opts.Seed+0x51ed))
	s.seedReservoir()
	s.BuildTime = time.Since(start)
	return s, nil
}

// BuildKD constructs a multi-dimensional PASS synopsis over d using a k-d
// partition tree (Section 4.4). Dynamic updates are not supported on k-d
// synopses.
func BuildKD(d *dataset.Dataset, opts Options) (*Synopsis, error) {
	start := time.Now()
	if d.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if err := opts.fill(d.N()); err != nil {
		return nil, err
	}
	kdOpts := opts.KD
	if kdOpts.MaxLeaves <= 0 {
		kdOpts.MaxLeaves = opts.Partitions
	}
	if kdOpts.Kind == 0 {
		kdOpts.Kind = opts.Kind
	}
	if kdOpts.Seed == 0 {
		kdOpts.Seed = opts.Seed
	}
	// the tree may index only a subset of the predicate columns
	// (workload shift); samples always retain the full predicate vector
	indexed := d
	var idxCols []int
	switch {
	case len(opts.IndexCols) > 0:
		cols := opts.IndexCols
		proj := dataset.New(d.Name, len(cols))
		for i, c := range cols {
			if c < 0 || c >= d.Dims() {
				return nil, fmt.Errorf("core: IndexCols entry %d out of range (dataset has %d columns)", c, d.Dims())
			}
			proj.Pred[i] = d.Pred[c]
		}
		proj.Agg = d.Agg
		indexed = proj
		// a pure prefix needs no remapping at query time
		prefix := true
		for i, c := range cols {
			if c != i {
				prefix = false
				break
			}
		}
		if !prefix || len(cols) < d.Dims() {
			idxCols = append([]int(nil), cols...)
		}
	case opts.IndexDims > 0 && opts.IndexDims < d.Dims():
		proj := dataset.New(d.Name, opts.IndexDims)
		proj.Pred = d.Pred[:opts.IndexDims]
		proj.Agg = d.Agg
		indexed = proj
	}
	tr, err := kdtree.Build(indexed, opts.KDPolicy, kdOpts)
	if err != nil {
		return nil, err
	}
	s := &Synopsis{
		opts: opts, tr: tr, kd: tr, idxCols: idxCols,
		n: d.N(), dims: d.Dims(),
		rng: stats.NewRNG(opts.Seed + 0x9e37),
		sk:  sketchFromAgg(d.Agg),
	}
	s.drawSamplesKD(d, tr)
	s.BuildTime = time.Since(start)
	return s, nil
}

// leafRNG derives the deterministic per-leaf generator used by the
// parallel sampling workers: every leaf draws from its own stream, so the
// samples are identical regardless of worker scheduling.
func (s *Synopsis) leafRNG(leaf int) *stats.RNG {
	return stats.NewRNG(s.opts.Seed + 0x9e37 + uint64(leaf+1)*0x9e3779b97f4a7c15)
}

func (s *Synopsis) drawSamples1D(sorted *dataset.Dataset, tr *ptree.Tree) {
	b := tr.NumLeaves()
	sizes := make([]int, b)
	los := make([]int, b)
	for i := 0; i < b; i++ {
		lo, hi := tr.LeafIndexRange(i)
		los[i] = lo
		sizes[i] = hi - lo
	}
	alloc := sample.Allocate(s.opts.SampleSize, sizes, s.opts.Proportional)
	st := newLeafStore(1, alloc)
	pred, agg := sorted.Pred[0], sorted.Agg
	parallel.For(b, func(i int) {
		rng := s.leafRNG(i)
		idx := sample.UniformIndices(rng, sizes[i], alloc[i])
		base := st.offsets[i]
		for j, off := range idx {
			gi := los[i] + off
			st.coords[base+j] = pred[gi]
			st.values[base+j] = agg[gi]
		}
		// ascending indices over data sorted by the predicate column, so
		// the leaf is already ordered along dimension 0
		st.finishLeaf(i, 0)
	})
	s.store = st
	s.totalK = st.totalLen()
}

func (s *Synopsis) drawSamplesKD(d *dataset.Dataset, tr *kdtree.Tree) {
	b := tr.NumLeaves()
	dims := d.Dims()
	sizes := make([]int, b)
	for i := 0; i < b; i++ {
		sizes[i] = len(tr.LeafItems(i))
	}
	alloc := sample.Allocate(s.opts.SampleSize, sizes, s.opts.Proportional)
	st := newLeafStore(dims, alloc)
	parallel.For(b, func(i int) {
		rng := s.leafRNG(i)
		items := tr.LeafItems(i)
		idx := sample.UniformIndices(rng, len(items), alloc[i])
		base := st.offsets[i]
		for j, off := range idx {
			gi := items[off]
			for c := 0; c < dims; c++ {
				st.coords[(base+j)*dims+c] = d.Pred[c][gi]
			}
			st.values[base+j] = d.Agg[gi]
		}
		st.finishLeaf(i, s.kdSortDim(tr, i))
	})
	s.store = st
	s.totalK = st.totalLen()
}

// kdSortDim picks the sample dimension a k-d leaf's columnar segment is
// sorted along: the widest-spread indexed dimension of the leaf's
// rectangle — the axis the k-d splits discriminate on — mapped back to
// sample coordinates when the tree indexes a column subset.
func (s *Synopsis) kdSortDim(tr *kdtree.Tree, leaf int) int {
	r := tr.LeafRect(leaf)
	best, bestW := 0, -1.0
	for c := 0; c < len(r.Lo); c++ {
		if w := r.Hi[c] - r.Lo[c]; w > bestW {
			best, bestW = c, w
		}
	}
	if s.idxCols != nil {
		return s.idxCols[best]
	}
	return best
}

// NumLeaves returns the number of leaf strata.
func (s *Synopsis) NumLeaves() int { return s.tr.NumLeaves() }

// Name identifies the engine in benchmark tables and catalog listings;
// with Query, QueryBatch and MemoryBytes it makes a built Synopsis
// satisfy the shared engine interface (internal/engine) directly, and
// Insert/Delete and Save provide the Updatable and Serializable
// capabilities.
func (s *Synopsis) Name() string { return "PASS" }

// TotalSamples returns the total stored sample count K.
func (s *Synopsis) TotalSamples() int { return s.totalK }

// N returns the dataset size the synopsis was built over.
func (s *Synopsis) N() int { return s.n }

// Dims returns the predicate dimensionality.
func (s *Synopsis) Dims() int { return s.dims }

// LeafSamples returns the stratified sample of one leaf (a copy; the
// synopsis stores samples columnarly, see leafStore).
func (s *Synopsis) LeafSamples(leaf int) []SampleTuple { return s.store.leafTuples(leaf) }

// MemoryBytes estimates total synopsis storage: tree aggregates plus
// samples (8 bytes per float64: point coordinates + value) plus the
// mergeable sketches. The per-leaf prefix acceleration arrays are
// derivable from the samples and excluded, matching the paper's
// synopsis-size accounting.
func (s *Synopsis) MemoryBytes() int {
	return s.tr.MemoryBytes() + s.store.totalLen()*(s.dims+1)*8 + int(s.sk.MemoryBytes())
}

// sketchFromAgg builds the synopsis's sketch set from the aggregate
// column. Feeding happens in column order, which is deterministic for a
// given dataset, so rebuilds from the same data serialize identically.
func sketchFromAgg(agg []float64) *sketch.Set {
	sk := sketch.NewSet()
	for _, v := range agg {
		sk.Add(v)
	}
	return sk
}

// SketchQuery answers one mergeable-sketch aggregate (QUANTILE, COUNT
// DISTINCT, TOPK) from the synopsis's sketch set; with SketchSet it
// provides the engine.Sketcher capability. Synopses restored from a
// pre-sketch (v1) snapshot return sketch.ErrUnavailable.
func (s *Synopsis) SketchQuery(q sketch.Query) (sketch.Result, error) {
	if s.sk == nil {
		return sketch.Result{}, sketch.ErrUnavailable
	}
	return s.sk.Answer(q)
}

// SketchSet exposes the synopsis's sketch state for merging by composite
// engines. Callers must treat it as read-only; nil for pre-sketch
// snapshots.
func (s *Synopsis) SketchSet() *sketch.Set { return s.sk }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
