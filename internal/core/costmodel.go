package core

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Budget converts the user-facing time limits of Section 3.1 — τ_c, a
// construction time budget, and τ_q, a per-query latency budget — into the
// internal parameters k (leaf partitions) and K (total sample size) via a
// calibrated cost model:
//
//	construction ≈ base + perDPUnit·k·m(k)·log₂(m(k)) + K·perSample
//	query        ≈ touchedFraction·K·perScan
//
// where m(k) is the ADP optimisation sample size. The per-unit costs are
// measured on the caller's machine by timing probe builds and probe
// queries over the actual dataset, so the model reflects real constants
// rather than assumptions.
type Budget struct {
	// Partitions is the derived leaf budget k.
	Partitions int
	// SampleSize is the derived total sample budget K.
	SampleSize int
	// PredictedBuild and PredictedQuery are the model's estimates for the
	// chosen parameters.
	PredictedBuild, PredictedQuery time.Duration
}

// PlanBudget derives (k, K) from the time limits. It clamps k to
// [4, N/8] and K to [k, N/2]. The probe cost is a few milliseconds.
func PlanBudget(d *dataset.Dataset, construct, query time.Duration) (Budget, error) {
	if d.N() < 64 {
		return Budget{}, fmt.Errorf("core: dataset too small to calibrate (%d rows)", d.N())
	}
	if construct <= 0 || query <= 0 {
		return Budget{}, fmt.Errorf("core: time budgets must be positive")
	}
	costs, err := calibrate(d)
	if err != nil {
		return Budget{}, err
	}
	n := d.N()
	// spend τ_q on samples first: queries touch roughly the partially
	// covered strata; a 1D range query touches ~2 strata of K/k samples
	// each, but the worst case is a constant fraction — we budget for
	// touchedFraction of the stored samples
	const touchedFraction = 0.25
	maxK := int(float64(query) / (touchedFraction * float64(costs.perScan)))
	if maxK > n/2 {
		maxK = n / 2
	}
	// then spend the remaining construction budget on partitions: the ADP
	// optimisation cost is ~ k·m(k)·log₂(m(k)) with m(k) the optimisation
	// sample size, so find the largest k whose predicted build fits τ_c
	remaining := float64(construct) - float64(costs.base) - float64(maxK)*float64(costs.perSample)
	kMax := n / 8
	if kMax > 4096 {
		kMax = 4096 // strata thinner than this are never useful
	}
	k := 4
	for cand := 4; cand <= kMax; cand *= 2 {
		if costs.perDPUnit*dpUnits(cand, n) <= remaining {
			k = cand
		} else {
			break
		}
	}
	if maxK < k {
		maxK = k
	}
	b := Budget{Partitions: k, SampleSize: maxK}
	b.PredictedBuild = costs.base +
		time.Duration(costs.perDPUnit*dpUnits(k, n)) +
		time.Duration(float64(maxK)*float64(costs.perSample))
	b.PredictedQuery = time.Duration(touchedFraction * float64(maxK) * float64(costs.perScan))
	return b, nil
}

// dpUnits is the work term of the ADP dynamic program for leaf budget k
// over an N-row dataset: k·m·log₂(m), with m the default optimisation
// sample size of Options.fill.
func dpUnits(k, n int) float64 {
	m := 20 * k
	if m < 1000 {
		m = 1000
	}
	if m > n {
		m = n
	}
	lg := 1.0
	for v := m; v > 1; v /= 2 {
		lg++
	}
	return float64(k) * float64(m) * lg
}

type unitCosts struct {
	base      time.Duration // fixed build overhead (sort, tree)
	perDPUnit float64       // ns per ADP work unit (k·m·log m)
	perSample time.Duration // marginal cost of one more stored sample
	perScan   time.Duration // cost of scanning one sample at query time
}

// calibrate measures the cost constants with two probe builds (different
// k, K) and a batch of probe queries over a slice of the dataset.
func calibrate(d *dataset.Dataset) (unitCosts, error) {
	probeN := d.N()
	if probeN > 20000 {
		probeN = 20000
	}
	probe := d.Slice(0, probeN)
	scale := float64(d.N()) / float64(probeN)

	build := func(k, sampleK int) (time.Duration, *Synopsis, error) {
		start := time.Now()
		var s *Synopsis
		var err error
		// calibrate with the default (ADP) partitioner so perPartition
		// reflects the real optimisation cost, not equal-depth's
		opts := Options{Partitions: k, SampleSize: sampleK, Kind: dataset.Sum, Seed: 0xCA11}
		if probe.Dims() == 1 {
			s, err = Build(probe, opts)
		} else {
			s, err = BuildKD(probe, opts)
		}
		return time.Since(start), s, err
	}
	t1, s1, err := build(8, probeN/100+8)
	if err != nil {
		return unitCosts{}, err
	}
	t2, _, err := build(64, probeN/20+64)
	if err != nil {
		return unitCosts{}, err
	}
	// two-point fit: attribute the build delta to the DP work-unit
	// difference and the sample-count difference evenly
	dUnits := dpUnits(64, probeN) - dpUnits(8, probeN)
	dK := probeN/20 - probeN/100 + 56
	delta := t2 - t1
	if delta < 0 {
		delta = 0
	}
	perDPUnit := float64(delta) / 2 / dUnits
	perSample := time.Duration(float64(delta) / 2 / float64(dK))
	base := t1 - time.Duration(perDPUnit*dpUnits(8, probeN)) - time.Duration(float64(probeN/100+8)*float64(perSample))
	if base < 0 {
		base = 0
	}
	// query scan cost: time a batch of probe queries and divide by the
	// samples actually read
	rng := stats.NewRNG(0xCA12)
	bounds := probe.Bounds()
	read := 0
	start := time.Now()
	for i := 0; i < 50; i++ {
		span := bounds.Hi[0] - bounds.Lo[0]
		a := bounds.Lo[0] + rng.Float64()*span
		b := bounds.Lo[0] + rng.Float64()*span
		if a > b {
			a, b = b, a
		}
		q := dataset.Rect1(a, b)
		r, err := s1.Query(dataset.Sum, q)
		if err != nil {
			return unitCosts{}, err
		}
		read += r.TuplesRead + 1
	}
	perScan := time.Duration(float64(time.Since(start)) / float64(read))
	if perScan <= 0 {
		perScan = time.Nanosecond
	}
	// scale build constants to the full dataset: sorting and aggregation
	// are ~linear in N
	if perDPUnit <= 0 {
		perDPUnit = 1
	}
	return unitCosts{
		base:      time.Duration(float64(base) * scale),
		perDPUnit: perDPUnit,
		perSample: maxDur(time.Duration(float64(perSample)*scale), time.Nanosecond),
		perScan:   perScan,
	}, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// DeriveTemplates inspects a past workload (Section 4.5: "we construct
// different trees based on statistics from the workload") and returns the
// distinct constrained-column sets with weights proportional to their
// frequency, most frequent first, capped at maxTemplates (the tail is
// dropped, mirroring the Facebook workload-statistics argument of the
// paper).
func DeriveTemplates(queries []dataset.Rect, maxTemplates int) []Template {
	if maxTemplates <= 0 {
		maxTemplates = 4
	}
	counts := map[string][]int{}
	freq := map[string]int{}
	for _, q := range queries {
		var cols []int
		for c := 0; c < q.Dims(); c++ {
			if !isInf(q.Lo[c], -1) || !isInf(q.Hi[c], 1) {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			continue
		}
		key := fmt.Sprint(cols)
		counts[key] = cols
		freq[key]++
	}
	type entry struct {
		cols []int
		n    int
	}
	entries := make([]entry, 0, len(counts))
	for k, cols := range counts {
		entries = append(entries, entry{cols: cols, n: freq[k]})
	}
	// selection sort by frequency desc (tiny list)
	for i := 0; i < len(entries); i++ {
		best := i
		for j := i + 1; j < len(entries); j++ {
			if entries[j].n > entries[best].n {
				best = j
			}
		}
		entries[i], entries[best] = entries[best], entries[i]
	}
	if len(entries) > maxTemplates {
		entries = entries[:maxTemplates]
	}
	out := make([]Template, len(entries))
	for i, e := range entries {
		out[i] = Template{Columns: e.cols, Weight: float64(e.n)}
	}
	return out
}

func isInf(v float64, sign int) bool {
	if sign < 0 {
		return v < -1.7e308
	}
	return v > 1.7e308
}
