package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := dataset.GenNYCTaxi(10000, 1, 21)
	s := build1D(t, d, 32, 0.02)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.NumLeaves() != s.NumLeaves() || got.TotalSamples() != s.TotalSamples() {
		t.Fatalf("shape mismatch: N %d/%d leaves %d/%d samples %d/%d",
			got.N(), s.N(), got.NumLeaves(), s.NumLeaves(), got.TotalSamples(), s.TotalSamples())
	}
	// answers must match to delta-encoding precision
	rng := stats.NewRNG(22)
	for trial := 0; trial < 80; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		for _, kind := range []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg} {
			r1, err1 := s.Query(kind, q)
			r2, err2 := Load2Query(got, kind, q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch for %v", kind)
			}
			if err1 != nil {
				continue
			}
			if r1.NoMatch != r2.NoMatch {
				t.Fatalf("%v: NoMatch mismatch", kind)
			}
			if r1.NoMatch {
				continue
			}
			tol := 1e-4 * (1 + math.Abs(r1.Estimate))
			if math.Abs(r1.Estimate-r2.Estimate) > tol {
				t.Fatalf("%v: estimates diverge after round-trip: %v vs %v", kind, r1.Estimate, r2.Estimate)
			}
		}
	}
}

// Load2Query exists to keep the call sites symmetric in the test above.
func Load2Query(s *Synopsis, kind dataset.AggKind, q dataset.Rect) (Result, error) {
	return s.Query(kind, q)
}

func TestSaveLoadSupportsUpdates(t *testing.T) {
	d := dataset.GenUniform(3000, 1, 100, 23)
	s := build1D(t, d, 16, 0.05)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := got.Query(dataset.Count, dataset.Rect1(math.Inf(-1), math.Inf(1)))
	if err := got.Insert([]float64{0.5}, 42); err != nil {
		t.Fatal(err)
	}
	after, _ := got.Query(dataset.Count, dataset.Rect1(math.Inf(-1), math.Inf(1)))
	if after.Estimate != before.Estimate+1 {
		t.Errorf("loaded synopsis insert broken: %v -> %v", before.Estimate, after.Estimate)
	}
}

func TestSaveRejectsKD(t *testing.T) {
	d := dataset.GenNYCTaxi(1000, 2, 24)
	s, err := BuildKD(d, Options{Partitions: 16, SampleRate: 0.1, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save should reject multi-dimensional synopses")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},
		[]byte("not a synopsis at all"),
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: Load accepted garbage", i)
		}
	}
	// right magic, wrong version
	var buf bytes.Buffer
	sw := newSerWriter(&buf)
	sw.u64(serMagic)
	sw.u64(99)
	flushWriter(sw)
	if _, err := Load(&buf); err == nil {
		t.Error("Load accepted unknown version")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	d := dataset.GenUniform(2000, 1, 100, 26)
	s := build1D(t, d, 8, 0.05)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Load accepted a synopsis truncated at %d of %d bytes", cut, len(full))
		}
	}
}

func TestSerializedSizeReasonable(t *testing.T) {
	d := dataset.GenIntelWireless(20000, 27)
	s := build1D(t, d, 64, 0.01)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// raw floats would be ~16 bytes per sample + ~72 per leaf, plus the
	// fixed-size sketch section (dominated by the 16 KiB HLL registers);
	// the delta encoding should land comfortably under raw
	raw := s.TotalSamples()*16 + s.NumLeaves()*72 + 64 + len(s.SketchSet().Encode())
	if buf.Len() > raw {
		t.Errorf("serialized %d bytes, raw equivalent %d", buf.Len(), raw)
	}
}
