package binenc

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(0)
	w.U64(1<<63 + 17)
	w.I64(-12345)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.Str("hello, wörld")
	w.Str("")
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.U64(); got != 0 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.U64(); got != 1<<63+17 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -12345 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %v, want -Inf", got)
	}
	if got := r.Str(); got != "hello, wörld" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("Bytes = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderStickyErrorOnTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Str("some payload")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()[:3]))
	_ = r.Str()
	if r.Err() == nil {
		t.Fatal("truncated string read succeeded")
	}
	// sticky: further reads keep returning zero values, not panicking
	if got := r.U64(); got != 0 {
		t.Errorf("post-error U64 = %d", got)
	}
}

func TestReaderRejectsAbsurdLengths(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 62) // a "length" no real string has
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	_ = r.Str()
	if r.Err() == nil {
		t.Fatal("absurd string length accepted")
	}
}
