// Package binenc provides the small varint-based binary encoding shared
// by the repository's persistence formats (the store snapshot codec, the
// write-ahead log, and the baseline engine serializers): sticky-error
// writers and readers for unsigned/signed varints, float64s, strings and
// byte blobs.
//
// The encoding is deliberately minimal — every multi-byte value is either
// a varint (counts, lengths, quantized deltas) or an IEEE-754 bit pattern
// carried in a varint — so the formats built on top stay compact and
// self-describing enough for corruption checks to produce clear errors.
package binenc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// maxBlob bounds a single length-prefixed string or byte blob (64 MiB for
// strings, 1 GiB for blobs). A corrupt length field then fails fast with a
// clear error instead of attempting an absurd allocation.
const (
	maxStr  = 64 << 20
	maxBlob = 1 << 30
)

// Writer encodes values onto an io.Writer with a sticky error: after the
// first failure every subsequent call is a no-op and Flush reports it.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer buffering onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// I64 writes a signed (zig-zag) varint.
func (w *Writer) I64(v int64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// F64 writes a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str writes a length-prefixed UTF-8 string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

// Bytes writes a length-prefixed byte blob.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes values from an io.Reader with a sticky error: after the
// first failure every subsequent call returns zero values and Err reports
// the failure.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader returns a Reader buffering from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("binenc: read uvarint: %w", err)
	}
	return v
}

// I64 reads a signed (zig-zag) varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("binenc: read varint: %w", err)
	}
	return v
}

// F64 reads a float64 written by Writer.F64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > maxStr {
		r.err = fmt.Errorf("binenc: string length %d exceeds limit (corrupt data?)", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = fmt.Errorf("binenc: read string body: %w", err)
		return ""
	}
	return string(buf)
}

// Bytes reads a length-prefixed byte blob.
func (r *Reader) Bytes() []byte { return r.BytesCap(maxBlob) }

// BytesCap reads a length-prefixed byte blob whose length the format
// bounds more tightly than the global blob limit, so a corrupt length
// field fails before allocating anything near the claimed size.
func (r *Reader) BytesCap(limit uint64) []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > limit || n > maxBlob {
		r.err = fmt.Errorf("binenc: blob length %d exceeds limit (corrupt data?)", n)
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = fmt.Errorf("binenc: read blob body: %w", err)
		return nil
	}
	return buf
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }
