package stats

import "math"

// Lambda99 is the two-sided normal quantile for a 99% confidence interval,
// the default used throughout the paper's experiments (λ = 2.576).
const Lambda99 = 2.576

// Lambda95 is the 95% two-sided normal quantile (λ = 1.96).
const Lambda95 = 1.96

// LambdaFor returns the two-sided normal quantile λ such that a ±λσ interval
// has the requested coverage (e.g. 0.95 → 1.959964). Computed from the
// inverse error function.
func LambdaFor(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be in (0, 1)")
	}
	return math.Sqrt2 * math.Erfinv(confidence)
}

// Interval is a symmetric confidence interval around an estimate, plus
// optional deterministic hard bounds when the synopsis can certify them.
type Interval struct {
	Estimate float64
	// Half is the half-width of the CLT confidence interval (λ·σ̂).
	Half float64
	// HardLo and HardHi are deterministic bounds guaranteed to contain the
	// exact answer (Section 2.3). HardValid reports whether they are set.
	HardLo, HardHi float64
	HardValid      bool
}

// Lo returns Estimate - Half.
func (iv Interval) Lo() float64 { return iv.Estimate - iv.Half }

// Hi returns Estimate + Half.
func (iv Interval) Hi() float64 { return iv.Estimate + iv.Half }

// Contains reports whether x lies inside the CLT interval.
func (iv Interval) Contains(x float64) bool {
	return x >= iv.Lo() && x <= iv.Hi()
}

// FPC returns the finite-population correction factor (N-K)/(N-1) applied to
// sampling variance when drawing K of N without replacement. Returns 1 when
// the correction is undefined or would exceed 1.
func FPC(populationN, sampleK int) float64 {
	if populationN <= 1 || sampleK <= 0 {
		return 1
	}
	f := float64(populationN-sampleK) / float64(populationN-1)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
