package stats

// Prefix holds prefix sums of a value sequence and of its squares, enabling
// O(1) range sums, means and variances. This is the workhorse behind the
// M-oracle of the partitioning dynamic programs (Section 4.3 of the paper):
// the variance of any candidate query interval is evaluated from two
// prefix-sum lookups instead of a scan.
type Prefix struct {
	sum   []float64 // sum[i] = Σ_{j<i} v[j]
	sumSq []float64 // sumSq[i] = Σ_{j<i} v[j]²
}

// NewPrefix builds prefix sums over values. Construction is O(n).
func NewPrefix(values []float64) *Prefix {
	p := &Prefix{
		sum:   make([]float64, len(values)+1),
		sumSq: make([]float64, len(values)+1),
	}
	for i, v := range values {
		p.sum[i+1] = p.sum[i] + v
		p.sumSq[i+1] = p.sumSq[i] + v*v
	}
	return p
}

// Len returns the number of underlying values.
func (p *Prefix) Len() int { return len(p.sum) - 1 }

// RangeSum returns Σ v[i..j) for 0 <= i <= j <= Len().
func (p *Prefix) RangeSum(i, j int) float64 { return p.sum[j] - p.sum[i] }

// RangeSumSq returns Σ v²[i..j).
func (p *Prefix) RangeSumSq(i, j int) float64 { return p.sumSq[j] - p.sumSq[i] }

// RangeCount returns j - i, the number of values in [i, j).
func (p *Prefix) RangeCount(i, j int) int { return j - i }

// RangeMean returns the mean of v[i..j); 0 for an empty range.
func (p *Prefix) RangeMean(i, j int) float64 {
	n := j - i
	if n <= 0 {
		return 0
	}
	return p.RangeSum(i, j) / float64(n)
}

// RangeVar returns the population variance of v[i..j); 0 for ranges with
// fewer than two elements. Computed as E[X²] - E[X]², clamped at zero to
// guard against floating-point cancellation.
func (p *Prefix) RangeVar(i, j int) float64 {
	n := float64(j - i)
	if n < 2 {
		return 0
	}
	mean := p.RangeSum(i, j) / n
	v := p.RangeSumSq(i, j)/n - mean*mean
	if v < 0 {
		return 0
	}
	return v
}

// ScaledVar returns n·Σt² - (Σt)² over [i, j), the un-normalised spread
// statistic V(q) that appears in the paper's variance formulas for SUM and
// COUNT queries (Section 4.2.1), where n is the number of items in the
// enclosing partition (not the query).
func (p *Prefix) ScaledVar(i, j int, n int) float64 {
	s := p.RangeSum(i, j)
	ss := p.RangeSumSq(i, j)
	v := float64(n)*ss - s*s
	if v < 0 {
		return 0
	}
	return v
}
