package stats

import "math/bits"

// SparseMax is a static sparse table answering range-maximum queries in
// O(1) after O(n log n) construction. It backs the AVG-query max-variance
// oracle (Appendix A.4): the variance of every δm-length window is
// precomputed once and the window with the largest variance inside any
// candidate partition is then a single RMQ.
type SparseMax struct {
	n     int
	table [][]int // table[j][i] = argmax of v over [i, i+2^j)
	v     []float64
}

// NewSparseMax builds the table over v. The slice is retained (not copied);
// it must not be mutated afterwards.
func NewSparseMax(v []float64) *SparseMax {
	n := len(v)
	s := &SparseMax{n: n, v: v}
	if n == 0 {
		return s
	}
	levels := bits.Len(uint(n))
	s.table = make([][]int, levels)
	s.table[0] = make([]int, n)
	for i := range s.table[0] {
		s.table[0][i] = i
	}
	for j := 1; j < levels; j++ {
		width := 1 << j
		if width > n {
			break
		}
		prev := s.table[j-1]
		cur := make([]int, n-width+1)
		half := width / 2
		for i := range cur {
			a, b := prev[i], prev[i+half]
			if s.v[a] >= s.v[b] {
				cur[i] = a
			} else {
				cur[i] = b
			}
		}
		s.table[j] = cur
	}
	return s
}

// ArgMax returns the index of the maximum value in [i, j). It panics on an
// empty or out-of-range query.
func (s *SparseMax) ArgMax(i, j int) int {
	if i < 0 || j > s.n || i >= j {
		panic("stats: SparseMax.ArgMax on empty or invalid range")
	}
	k := bits.Len(uint(j-i)) - 1
	a := s.table[k][i]
	b := s.table[k][j-(1<<k)]
	if s.v[a] >= s.v[b] {
		return a
	}
	return b
}

// Max returns the maximum value in [i, j).
func (s *SparseMax) Max(i, j int) float64 { return s.v[s.ArgMax(i, j)] }
