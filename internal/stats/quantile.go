package stats

import "sort"

// Median returns the median of values (averaging the two central elements
// for even lengths). The input is not modified. Returns 0 for empty input.
func Median(values []float64) float64 {
	return Quantile(values, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between closest ranks. The input is not modified.
func Quantile(values []float64, q float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MeanOf returns the arithmetic mean of values; 0 for empty input.
func MeanOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}
