package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	expect := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d count %d far from expected %.0f", i, c, expect)
		}
	}
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(9)
	m := NewMoments()
	for i := 0; i < 200000; i++ {
		m.Add(r.Norm())
	}
	if math.Abs(m.Mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", m.Mean)
	}
	if math.Abs(m.Var()-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", m.Var())
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("zipf not skewed: count[0]=%d count[50]=%d", counts[0], counts[50])
	}
	if counts[0] == 0 || counts[99] < 0 {
		t.Errorf("zipf produced degenerate counts")
	}
}

func TestPrefixBasics(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	p := NewPrefix(v)
	if p.Len() != 5 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := p.RangeSum(0, 5); got != 15 {
		t.Errorf("RangeSum(0,5) = %v", got)
	}
	if got := p.RangeSum(1, 4); got != 9 {
		t.Errorf("RangeSum(1,4) = %v", got)
	}
	if got := p.RangeSumSq(0, 5); got != 55 {
		t.Errorf("RangeSumSq(0,5) = %v", got)
	}
	if got := p.RangeMean(1, 4); got != 3 {
		t.Errorf("RangeMean(1,4) = %v", got)
	}
	if got := p.RangeVar(0, 0); got != 0 {
		t.Errorf("empty-range variance = %v", got)
	}
}

// Property: prefix-sum range variance equals the directly computed variance.
func TestPrefixVarianceProperty(t *testing.T) {
	f := func(raw []int8, loSeed, hiSeed uint8) bool {
		if len(raw) < 2 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			v[i] = float64(x)
		}
		lo := int(loSeed) % len(v)
		hi := lo + 1 + int(hiSeed)%(len(v)-lo)
		p := NewPrefix(v)
		direct, _ := directMeanVar(v[lo:hi])
		got := p.RangeVar(lo, hi)
		return math.Abs(got-direct) < 1e-6*(1+math.Abs(direct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func directMeanVar(v []float64) (variance, mean float64) {
	if len(v) == 0 {
		return 0, 0
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(v))
	return variance, mean
}

func TestMomentsMergeProperty(t *testing.T) {
	f := func(a, b []int16) bool {
		m1, m2, all := NewMoments(), NewMoments(), NewMoments()
		for _, x := range a {
			m1.Add(float64(x))
			all.Add(float64(x))
		}
		for _, x := range b {
			m2.Add(float64(x))
			all.Add(float64(x))
		}
		m1.Merge(m2)
		if m1.N != all.N {
			return false
		}
		if all.N == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean))
		if math.Abs(m1.Mean-all.Mean) > tol {
			return false
		}
		return math.Abs(m1.Var()-all.Var()) < 1e-6*(1+all.Var())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMomentsMinMax(t *testing.T) {
	m := NewMoments()
	for _, v := range []float64{3, -1, 4, 1, 5, -9, 2, 6} {
		m.Add(v)
	}
	if m.Min != -9 || m.Max != 6 {
		t.Errorf("min/max = %v/%v, want -9/6", m.Min, m.Max)
	}
	if m.N != 8 {
		t.Errorf("N = %d, want 8", m.N)
	}
	if math.Abs(m.Sum()-11) > 1e-9 {
		t.Errorf("Sum = %v, want 11", m.Sum())
	}
}

func TestMomentsSampleVar(t *testing.T) {
	m := NewMoments()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(v)
	}
	if math.Abs(m.Var()-4) > 1e-9 {
		t.Errorf("population variance = %v, want 4", m.Var())
	}
	if math.Abs(m.SampleVar()-32.0/7) > 1e-9 {
		t.Errorf("sample variance = %v, want %v", m.SampleVar(), 32.0/7)
	}
}

func TestLambdaFor(t *testing.T) {
	cases := []struct {
		conf, want float64
	}{
		{0.95, 1.959964},
		{0.99, 2.575829},
		{0.6826894921, 1.0},
	}
	for _, c := range cases {
		got := LambdaFor(c.conf)
		if math.Abs(got-c.want) > 1e-3 {
			t.Errorf("LambdaFor(%v) = %v, want %v", c.conf, got, c.want)
		}
	}
}

func TestLambdaForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LambdaFor(0) should panic")
		}
	}()
	LambdaFor(0)
}

func TestFPC(t *testing.T) {
	if got := FPC(100, 100); got != 0 {
		t.Errorf("full sample FPC = %v, want 0", got)
	}
	if got := FPC(100, 1); math.Abs(got-1) > 0.01 {
		t.Errorf("tiny sample FPC = %v, want ~1", got)
	}
	if got := FPC(1, 1); got != 1 {
		t.Errorf("degenerate FPC = %v, want 1", got)
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{Estimate: 10, Half: 2}
	if iv.Lo() != 8 || iv.Hi() != 12 {
		t.Errorf("interval bounds = [%v, %v]", iv.Lo(), iv.Hi())
	}
	if !iv.Contains(9) || iv.Contains(13) {
		t.Errorf("Contains misbehaves")
	}
}

func TestSparseMax(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	s := NewSparseMax(v)
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 10, 9}, {0, 5, 5}, {5, 6, 9}, {6, 10, 6}, {0, 1, 3}, {2, 5, 5},
	}
	for _, c := range cases {
		if got := s.Max(c.i, c.j); got != c.want {
			t.Errorf("Max(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestSparseMaxProperty(t *testing.T) {
	f := func(raw []int8, loSeed, hiSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			v[i] = float64(x)
		}
		lo := int(loSeed) % len(v)
		hi := lo + 1 + int(hiSeed)%(len(v)-lo)
		s := NewSparseMax(v)
		want := math.Inf(-1)
		for _, x := range v[lo:hi] {
			if x > want {
				want = x
			}
		}
		return s.Max(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSparseMaxPanicsOnEmpty(t *testing.T) {
	s := NewSparseMax([]float64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Error("ArgMax on empty range should panic")
		}
	}()
	s.ArgMax(1, 1)
}

func TestMedianQuantile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(v, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(v, 1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	// input must not be modified
	orig := []float64{5, 1, 3}
	Median(orig)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Errorf("Median mutated input: %v", orig)
	}
}

func TestMeanOf(t *testing.T) {
	if got := MeanOf([]float64{1, 2, 3}); got != 2 {
		t.Errorf("MeanOf = %v", got)
	}
	if got := MeanOf(nil); got != 0 {
		t.Errorf("MeanOf(nil) = %v", got)
	}
}

func TestScaledVar(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	p := NewPrefix(v)
	// over full range with n = 4: 4·30 - 10² = 20
	if got := p.ScaledVar(0, 4, 4); got != 20 {
		t.Errorf("ScaledVar = %v, want 20", got)
	}
	// enclosing partition larger than the query range
	// n·Σt² - (Σt)² for [0,2), n=4: 4·5 - 9 = 11
	if got := p.ScaledVar(0, 2, 4); got != 11 {
		t.Errorf("ScaledVar = %v, want 11", got)
	}
}
