package stats

import "math"

// Moments is a mergeable streaming accumulator for count, mean and variance
// using Welford's algorithm (with Chan et al.'s parallel merge rule). It
// also tracks min and max, making it the natural per-partition aggregate
// record of the PASS tree: SUM, COUNT, MIN, MAX all fall out of one pass.
type Moments struct {
	N    int
	Mean float64
	m2   float64
	Min  float64
	Max  float64
}

// NewMoments returns an empty accumulator.
func NewMoments() *Moments {
	return &Moments{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.N++
	delta := x - m.Mean
	m.Mean += delta / float64(m.N)
	m.m2 += delta * (x - m.Mean)
	if x < m.Min {
		m.Min = x
	}
	if x > m.Max {
		m.Max = x
	}
}

// Merge folds other into m, as if every observation of other had been Added.
func (m *Moments) Merge(other *Moments) {
	if other.N == 0 {
		return
	}
	if m.N == 0 {
		*m = *other
		return
	}
	n1, n2 := float64(m.N), float64(other.N)
	delta := other.Mean - m.Mean
	total := n1 + n2
	m.Mean += delta * n2 / total
	m.m2 += other.m2 + delta*delta*n1*n2/total
	m.N += other.N
	if other.Min < m.Min {
		m.Min = other.Min
	}
	if other.Max > m.Max {
		m.Max = other.Max
	}
}

// Sum returns N·Mean.
func (m *Moments) Sum() float64 { return m.Mean * float64(m.N) }

// Var returns the population variance; 0 when fewer than two observations.
func (m *Moments) Var() float64 {
	if m.N < 2 {
		return 0
	}
	return m.m2 / float64(m.N)
}

// SampleVar returns the unbiased (n-1) sample variance.
func (m *Moments) SampleVar() float64 {
	if m.N < 2 {
		return 0
	}
	return m.m2 / float64(m.N-1)
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Var()) }

// MeanVar computes the population mean and variance of values in one pass.
func MeanVar(values []float64) (mean, variance float64) {
	m := NewMoments()
	for _, v := range values {
		m.Add(v)
	}
	return m.Mean, m.Var()
}
