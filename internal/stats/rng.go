// Package stats provides the numerical substrate used throughout the PASS
// reproduction: deterministic pseudo-random number generation, prefix-sum
// sketches with O(1) range variance, streaming moment accumulators, normal
// confidence intervals, range-maximum queries, and quantiles.
//
// Everything is implemented on the standard library only. All randomness in
// the repository flows through RNG so that experiments are reproducible from
// a seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded through splitmix64). It is not safe for concurrent
// use; create one RNG per goroutine.
type RNG struct {
	s [4]uint64
	// cached second normal variate from Box-Muller
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed internal state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// avoid the all-zero state, which xoshiro cannot escape
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Norm returns a standard normal variate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// NormMS returns a normal variate with the given mean and standard deviation.
func (r *RNG) NormMS(mean, sd float64) float64 { return mean + sd*r.Norm() }

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Exp returns an exponential variate with the given rate.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle performs a Fisher-Yates shuffle using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws from a Zipf distribution over {0, ..., n-1} with exponent s>1
// approximated by inverse-CDF on the truncated zeta mass. The zeta
// normaliser is computed once lazily via a companion ZipfGen.
type ZipfGen struct {
	rng  *RNG
	cdf  []float64
	n    int
	sExp float64
}

// NewZipf builds a Zipf sampler over n items with exponent s (s > 0).
func NewZipf(rng *RNG, n int, s float64) *ZipfGen {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	z := &ZipfGen{rng: rng, n: n, sExp: s}
	z.cdf = make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	return z
}

// Draw returns an index in [0, n) with Zipf-distributed probability
// (index 0 most likely).
func (z *ZipfGen) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
