package aqpp

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestNewValidation(t *testing.T) {
	d := dataset.GenUniform(100, 1, 1, 1)
	if _, err := New(dataset.New("e", 1), Options{Partitions: 4, SampleSize: 10}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := New(d, Options{SampleSize: 10}); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := New(d, Options{Partitions: 4}); err == nil {
		t.Error("zero sample accepted")
	}
}

func TestAlignedQueryIsExact(t *testing.T) {
	d := dataset.GenNYCTaxi(5000, 1, 2)
	e, err := New(d, Options{Partitions: 16, SampleSize: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	full := dataset.Rect1(math.Inf(-1), math.Inf(1))
	for _, kind := range []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg} {
		truth, _ := d.Exact(kind, full)
		r, err := e.Query(kind, full)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Estimate-truth) > 1e-6*(1+math.Abs(truth)) {
			t.Errorf("%v full-span: %v != %v", kind, r.Estimate, truth)
		}
		if !r.Exact {
			t.Errorf("%v full-span should be exact", kind)
		}
	}
}

func TestAccuracyBetweenUSAndExact(t *testing.T) {
	d := dataset.GenNYCTaxi(20000, 1, 4)
	e, err := New(d, Options{Partitions: 64, SampleSize: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	errs := []float64{}
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		if math.Abs(a-b) < 2 {
			continue
		}
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, _ := e.Query(dataset.Sum, q)
		errs = append(errs, r.RelativeError(truth))
	}
	if med := stats.Median(errs); med > 0.1 {
		t.Errorf("AQP++ median relative error = %v", med)
	}
}

func TestCICoverage(t *testing.T) {
	d := dataset.GenNYCTaxi(20000, 1, 7)
	e, err := New(d, Options{Partitions: 32, SampleSize: 1000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	covered, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		if math.Abs(a-b) < 2 {
			continue
		}
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, _ := e.Query(dataset.Sum, q)
		total++
		if math.Abs(r.Estimate-truth) <= r.CIHalf+1e-9 {
			covered++
		}
	}
	if total == 0 {
		t.Fatal("no usable queries")
	}
	if frac := float64(covered) / float64(total); frac < 0.9 {
		t.Errorf("coverage = %.2f", frac)
	}
}

func TestAvgWeightedCombination(t *testing.T) {
	d := dataset.GenIntelWireless(10000, 10)
	e, err := New(d, Options{Partitions: 32, SampleSize: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(12)
	errs := []float64{}
	for trial := 0; trial < 60; trial++ {
		a, b := rng.Float64()*10000, rng.Float64()*10000
		if math.Abs(a-b) < 500 {
			continue
		}
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := d.Exact(dataset.Avg, q)
		if err != nil {
			continue
		}
		r, _ := e.Query(dataset.Avg, q)
		if r.NoMatch {
			continue
		}
		errs = append(errs, r.RelativeError(truth))
	}
	if med := stats.Median(errs); med > 0.1 {
		t.Errorf("AQP++ AVG median relative error = %v", med)
	}
}

func TestKDVariant(t *testing.T) {
	d := dataset.GenNYCTaxi(8000, 2, 13)
	e, err := NewKD(d, Options{Partitions: 64, SampleSize: 800, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "KD-US" {
		t.Errorf("name = %q", e.Name())
	}
	if e.NumLeaves() < 16 {
		t.Errorf("leaves = %d", e.NumLeaves())
	}
	rng := stats.NewRNG(15)
	errs := []float64{}
	for trial := 0; trial < 50; trial++ {
		lo := []float64{rng.Float64() * 12, rng.Float64() * 15}
		hi := []float64{lo[0] + 6 + rng.Float64()*6, lo[1] + 8 + rng.Float64()*8}
		q := dataset.Rect{Lo: lo, Hi: hi}
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		r, err := e.Query(dataset.Sum, q)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, r.RelativeError(truth))
	}
	if med := stats.Median(errs); med > 0.2 {
		t.Errorf("KD AQP++ median relative error = %v", med)
	}
}

func TestUnsupportedKind(t *testing.T) {
	d := dataset.GenUniform(200, 1, 1, 16)
	e, err := New(d, Options{Partitions: 4, SampleSize: 50, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(dataset.Min, dataset.Rect1(0, 1)); err == nil {
		t.Error("AQP++ should reject MIN")
	}
	if e.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}
