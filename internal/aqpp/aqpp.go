// Package aqpp implements the AQP++ comparator (Peng et al., SIGMOD 2018)
// as described in Section 5.1.3 of the PASS paper: aggregate precomputation
// over a partitioning chosen by hill climbing, combined with a *uniform*
// sample that estimates the difference between the query and the covered
// region. The key contrasts with PASS are (1) the heuristic rather than
// DP-optimised partitioning and (2) uniform rather than stratified gap
// estimation.
package aqpp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/kdtree"
	"repro/internal/partition"
	"repro/internal/ptree"
	"repro/internal/sample"
	"repro/internal/stats"
)

// tree abstracts the aggregate index (1D partition tree or k-d tree).
type tree interface {
	Frontier(q dataset.Rect, zeroVar bool) ptree.Frontier
	Root() ptree.Agg
	NumLeaves() int
	MemoryBytes() int
}

// Engine is an AQP++ instance.
type Engine struct {
	name    string
	tr      tree
	n       int
	lambda  float64
	samples []core.SampleTuple
}

// Options configures construction.
type Options struct {
	// Partitions is the aggregate precomputation budget B.
	Partitions int
	// SampleSize is the uniform sample budget K.
	SampleSize int
	// Lambda is the CI multiplier (default 2.576).
	Lambda float64
	// HillClimbIters bounds the partitioning search (default 40).
	HillClimbIters int
	Seed           uint64
}

// New builds a 1D AQP++ engine: hill-climbing partitioning over the first
// predicate column, a bottom-up aggregate tree, and a uniform sample.
func New(d *dataset.Dataset, opts Options) (*Engine, error) {
	if err := validate(d, &opts); err != nil {
		return nil, err
	}
	sorted := d.Clone()
	sorted.SortByPred(0)
	o := partition.NewSumOracle(sorted.Agg)
	p := partition.HillClimb(sorted.N(), opts.Partitions, o, opts.HillClimbIters)
	tr, err := ptree.Build(sorted, p)
	if err != nil {
		return nil, err
	}
	e := &Engine{name: "AQP++", tr: tr, n: d.N(), lambda: opts.Lambda}
	e.drawUniform(d, opts)
	return e, nil
}

// NewKD builds the multi-dimensional variant used as the KD-US baseline in
// Section 5.4: a balanced k-d tree of precomputed aggregates plus a
// uniform sample.
func NewKD(d *dataset.Dataset, opts Options) (*Engine, error) {
	if err := validate(d, &opts); err != nil {
		return nil, err
	}
	tr, err := kdtree.BuildUS(d, kdtree.Options{MaxLeaves: opts.Partitions, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	e := &Engine{name: "KD-US", tr: tr, n: d.N(), lambda: opts.Lambda}
	e.drawUniform(d, opts)
	return e, nil
}

// NewKDWithPoints builds the k-d aggregate tree over indexed — a
// projection of full onto a prefix of its predicate columns — while the
// uniform sample retains full's complete predicate vectors. This is the
// workload-shift configuration of Section 5.4.1: queries may constrain
// columns the aggregates do not index, in which case the aggregates cannot
// certify coverage and the engine degrades to plain uniform sampling.
func NewKDWithPoints(full, indexed *dataset.Dataset, opts Options) (*Engine, error) {
	if err := validate(indexed, &opts); err != nil {
		return nil, err
	}
	tr, err := kdtree.BuildUS(indexed, kdtree.Options{MaxLeaves: opts.Partitions, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	e := &Engine{name: "KD-US", tr: tr, n: full.N(), lambda: opts.Lambda}
	e.drawUniform(full, opts)
	return e, nil
}

func validate(d *dataset.Dataset, opts *Options) error {
	if d.N() == 0 {
		return fmt.Errorf("aqpp: empty dataset")
	}
	if opts.Partitions <= 0 {
		return fmt.Errorf("aqpp: Partitions must be positive")
	}
	if opts.SampleSize <= 0 {
		return fmt.Errorf("aqpp: SampleSize must be positive")
	}
	if opts.SampleSize > d.N() {
		opts.SampleSize = d.N()
	}
	if opts.Lambda <= 0 {
		opts.Lambda = stats.Lambda99
	}
	if opts.HillClimbIters <= 0 {
		opts.HillClimbIters = 40
	}
	return nil
}

func (e *Engine) drawUniform(d *dataset.Dataset, opts Options) {
	rng := stats.NewRNG(opts.Seed + 0xaa99)
	idx := sample.UniformIndices(rng, d.N(), opts.SampleSize)
	e.samples = make([]core.SampleTuple, len(idx))
	for i, j := range idx {
		e.samples[i] = core.SampleTuple{Point: d.Point(j), Value: d.Agg[j]}
	}
}

// The AQP++ comparator implements the shared engine interface.
var _ engine.Engine = (*Engine)(nil)

// Name implements the shared engine.Engine interface.
func (e *Engine) Name() string { return e.name }

// QueryBatch implements engine.Engine via the shared sequential adapter.
func (e *Engine) QueryBatch(qs []core.BatchQuery) []core.BatchResult {
	return engine.SequentialBatch(e, qs)
}

// MemoryBytes reports aggregate-tree plus sample storage.
func (e *Engine) MemoryBytes() int {
	bytes := e.tr.MemoryBytes()
	if len(e.samples) > 0 {
		bytes += len(e.samples) * (len(e.samples[0].Point) + 1) * 8
	}
	return bytes
}

// NumLeaves returns the aggregate partition count.
func (e *Engine) NumLeaves() int { return e.tr.NumLeaves() }

func inCover(cover []ptree.CoverEntry, p []float64) bool {
	for _, c := range cover {
		if c.Rect.Contains(p) {
			return true
		}
	}
	return false
}

// Query answers a SUM/COUNT/AVG aggregate: exact aggregates over the
// covered region, a uniform-sample estimate of the residual q \ covered,
// and a CLT confidence interval over the residual estimator.
func (e *Engine) Query(kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	f := e.tr.Frontier(q, false)
	cover := f.CoverAgg()
	k := len(e.samples)
	r := core.Result{TuplesRead: k, VisitedNodes: f.Visited,
		CoveredParts: len(f.Cover), PartialParts: len(f.Partial)}
	if k == 0 {
		r.NoMatch = true
		return r, nil
	}
	// residual scan: tuples matching q but outside the covered region
	var kGap int
	var sum, sumSq float64
	for _, t := range e.samples {
		if !q.Contains(t.Point) || inCover(f.Cover, t.Point) {
			continue
		}
		kGap++
		sum += t.Value
		sumSq += t.Value * t.Value
	}
	n := float64(e.n)
	kf := float64(k)
	fpc := stats.FPC(e.n, k)
	switch kind {
	case dataset.Sum, dataset.Count:
		base := cover.Sum
		if kind == dataset.Count {
			base = float64(cover.N)
		}
		var phiMean, phiSq float64
		if kind == dataset.Sum {
			phiMean = n * sum / kf
			phiSq = n * n * sumSq / kf
		} else {
			phiMean = n * float64(kGap) / kf
			phiSq = n * n * float64(kGap) / kf
		}
		phiVar := phiSq - phiMean*phiMean
		if phiVar < 0 {
			phiVar = 0
		}
		r.Estimate = base + phiMean
		r.CIHalf = e.lambda * math.Sqrt(phiVar/kf*fpc)
		r.Exact = len(f.Partial) == 0 && kGap == 0
		return r, nil
	case dataset.Avg:
		// two strata: the covered region (exact) and the residual
		// (uniform-estimated)
		nGapHat := n * float64(kGap) / kf
		nq := float64(cover.N) + nGapHat
		if nq == 0 {
			r.NoMatch = true
			return r, nil
		}
		est := 0.0
		variance := 0.0
		if cover.N > 0 {
			est += float64(cover.N) / nq * cover.Avg()
		}
		if kGap > 0 {
			gapEst := sum / float64(kGap)
			ratio := kf / float64(kGap)
			phiSq := ratio * ratio * sumSq / kf
			phiVar := phiSq - gapEst*gapEst
			if phiVar < 0 {
				phiVar = 0
			}
			w := nGapHat / nq
			est += w * gapEst
			variance += w * w * phiVar / kf * fpc
		}
		r.Estimate = est
		r.CIHalf = e.lambda * math.Sqrt(variance)
		r.Exact = len(f.Partial) == 0 && kGap == 0
		return r, nil
	}
	return r, fmt.Errorf("aqpp: unsupported aggregate %v", kind)
}
