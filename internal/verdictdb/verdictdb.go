// Package verdictdb simulates the VerdictDB comparator of Section 5.5
// (Park et al., SIGMOD 2018). VerdictDB builds a "scramble" — a
// pre-shuffled uniform sample of the base table at a configurable ratio —
// and answers every query by scanning the scramble with Horvitz-Thompson
// scaling. At ratio 1.0 the scramble is the whole table and answers are
// exact, at the cost of dataset-sized storage and full-scan latency, which
// is precisely the trade-off the paper's Table 2 reports.
//
// This is a behavioural simulation, not a port: it reproduces the
// cost/accuracy profile (storage ∝ ratio·N, latency ∝ scramble size,
// error ∝ 1/sqrt(ratio·N)) that the paper measures, on the same query
// classes.
package verdictdb

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Engine is a simulated VerdictDB instance.
type Engine struct {
	name     string
	n        int
	lambda   float64
	scramble []core.SampleTuple
	// BuildTime records scramble construction cost.
	BuildTime time.Duration
}

// New builds a scramble over ratio·N tuples of d.
func New(d *dataset.Dataset, ratio float64, lambda float64, seed uint64) (*Engine, error) {
	if d.N() == 0 {
		return nil, fmt.Errorf("verdictdb: empty dataset")
	}
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("verdictdb: ratio must be in (0, 1], got %v", ratio)
	}
	start := time.Now()
	if lambda <= 0 {
		lambda = stats.Lambda99
	}
	k := int(ratio * float64(d.N()))
	if k < 1 {
		k = 1
	}
	rng := stats.NewRNG(seed + 0xbdbd)
	idx := sample.UniformIndices(rng, d.N(), k)
	e := &Engine{
		name:   fmt.Sprintf("VerdictDB-%d%%", int(ratio*100)),
		n:      d.N(),
		lambda: lambda,
	}
	e.scramble = make([]core.SampleTuple, len(idx))
	for i, j := range idx {
		e.scramble[i] = core.SampleTuple{Point: d.Point(j), Value: d.Agg[j]}
	}
	e.BuildTime = time.Since(start)
	return e, nil
}

// The VerdictDB simulator implements the shared engine interface.
var _ engine.Engine = (*Engine)(nil)

// Name implements the shared engine.Engine interface.
func (e *Engine) Name() string { return e.name }

// QueryBatch implements engine.Engine via the shared sequential adapter.
func (e *Engine) QueryBatch(qs []core.BatchQuery) []core.BatchResult {
	return engine.SequentialBatch(e, qs)
}

// MemoryBytes reports the scramble size (the dominant storage cost).
func (e *Engine) MemoryBytes() int {
	if len(e.scramble) == 0 {
		return 0
	}
	return len(e.scramble) * (len(e.scramble[0].Point) + 1) * 8
}

// ScrambleSize returns the number of scramble rows.
func (e *Engine) ScrambleSize() int { return len(e.scramble) }

// Query scans the scramble and applies Horvitz-Thompson scaling with a
// CLT confidence interval.
func (e *Engine) Query(kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	k := len(e.scramble)
	r := core.Result{TuplesRead: k}
	var kPred int
	var sum, sumSq float64
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, t := range e.scramble {
		if !q.Contains(t.Point) {
			continue
		}
		kPred++
		sum += t.Value
		sumSq += t.Value * t.Value
		if t.Value < mn {
			mn = t.Value
		}
		if t.Value > mx {
			mx = t.Value
		}
	}
	n := float64(e.n)
	kf := float64(k)
	fpc := stats.FPC(e.n, k)
	switch kind {
	case dataset.Sum, dataset.Count:
		var phiMean, phiSq float64
		if kind == dataset.Sum {
			phiMean = n * sum / kf
			phiSq = n * n * sumSq / kf
		} else {
			phiMean = n * float64(kPred) / kf
			phiSq = n * n * float64(kPred) / kf
		}
		phiVar := phiSq - phiMean*phiMean
		if phiVar < 0 {
			phiVar = 0
		}
		r.Estimate = phiMean
		r.CIHalf = e.lambda * math.Sqrt(phiVar/kf*fpc)
		r.Exact = k == e.n
		return r, nil
	case dataset.Avg:
		if kPred == 0 {
			r.NoMatch = true
			return r, nil
		}
		est := sum / float64(kPred)
		ratio := kf / float64(kPred)
		phiSq := ratio * ratio * sumSq / kf
		phiVar := phiSq - est*est
		if phiVar < 0 {
			phiVar = 0
		}
		r.Estimate = est
		r.CIHalf = e.lambda * math.Sqrt(phiVar/kf*fpc)
		r.Exact = k == e.n
		return r, nil
	case dataset.Min, dataset.Max:
		if kPred == 0 {
			r.NoMatch = true
			return r, nil
		}
		if kind == dataset.Min {
			r.Estimate = mn
		} else {
			r.Estimate = mx
		}
		r.Exact = k == e.n
		return r, nil
	}
	return r, fmt.Errorf("verdictdb: unsupported aggregate %v", kind)
}
