package verdictdb

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestValidation(t *testing.T) {
	d := dataset.GenUniform(100, 1, 1, 1)
	if _, err := New(dataset.New("e", 1), 0.5, 0, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := New(d, 0, 0, 1); err == nil {
		t.Error("zero ratio accepted")
	}
	if _, err := New(d, 1.5, 0, 1); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestFullScrambleExact(t *testing.T) {
	d := dataset.GenNYCTaxi(3000, 1, 2)
	e, err := New(d, 1.0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	for trial := 0; trial < 40; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		for _, kind := range []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg, dataset.Min, dataset.Max} {
			truth, err := d.Exact(kind, q)
			r, qerr := e.Query(kind, q)
			if qerr != nil {
				t.Fatal(qerr)
			}
			if err != nil {
				if !r.NoMatch {
					t.Errorf("%v: want NoMatch", kind)
				}
				continue
			}
			if math.Abs(r.Estimate-truth) > 1e-6*(1+math.Abs(truth)) {
				t.Errorf("%v: 100%% scramble gave %v, want %v", kind, r.Estimate, truth)
			}
			if !r.Exact {
				t.Errorf("%v: 100%% scramble should report Exact", kind)
			}
		}
	}
}

func TestScrambleRatioDrivesStorageAndAccuracy(t *testing.T) {
	d := dataset.GenNYCTaxi(20000, 1, 5)
	small, err := New(d, 0.05, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(d, 0.5, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if small.MemoryBytes() >= big.MemoryBytes() {
		t.Errorf("storage should grow with ratio: %d >= %d", small.MemoryBytes(), big.MemoryBytes())
	}
	if small.ScrambleSize() != 1000 {
		t.Errorf("scramble size = %d, want 1000", small.ScrambleSize())
	}
	rng := stats.NewRNG(7)
	var errSmall, errBig []float64
	for trial := 0; trial < 80; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		if math.Abs(a-b) < 2 {
			continue
		}
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := d.Exact(dataset.Sum, q)
		if err != nil || truth == 0 {
			continue
		}
		rs, _ := small.Query(dataset.Sum, q)
		rb, _ := big.Query(dataset.Sum, q)
		errSmall = append(errSmall, rs.RelativeError(truth))
		errBig = append(errBig, rb.RelativeError(truth))
	}
	if stats.Median(errBig) >= stats.Median(errSmall) {
		t.Errorf("bigger scramble should be more accurate: %v >= %v",
			stats.Median(errBig), stats.Median(errSmall))
	}
}

func TestName(t *testing.T) {
	d := dataset.GenUniform(100, 1, 1, 8)
	e, _ := New(d, 0.1, 0, 9)
	if e.Name() != "VerdictDB-10%" {
		t.Errorf("name = %q", e.Name())
	}
}
