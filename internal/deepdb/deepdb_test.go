package deepdb

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestValidation(t *testing.T) {
	d := dataset.GenUniform(100, 1, 1, 1)
	if _, err := New(dataset.New("e", 1), Options{TrainRatio: 0.5}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := New(d, Options{}); err == nil {
		t.Error("zero train ratio accepted")
	}
}

func TestSmooth1DIsAccurate(t *testing.T) {
	// on smooth 1D data the histogram model should do well — the paper's
	// Table 2 shows DeepDB near PASS on the NYC 1D workload
	d := dataset.GenNYCTaxi(20000, 1, 2)
	e, err := New(d, Options{TrainRatio: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	errs := []float64{}
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		if math.Abs(a-b) < 3 {
			continue
		}
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		truth, err := d.Exact(dataset.Count, q)
		if err != nil || truth == 0 {
			continue
		}
		r, _ := e.Query(dataset.Count, q)
		errs = append(errs, r.RelativeError(truth))
	}
	if med := stats.Median(errs); med > 0.1 {
		t.Errorf("smooth 1D COUNT median relative error = %v", med)
	}
}

func TestHighDimWorseThan1D(t *testing.T) {
	// independence factorisation degrades with correlated dimensions —
	// the error profile the paper reports for the NYC multi-d templates
	d1 := dataset.GenNYCTaxi(20000, 1, 5)
	d3 := dataset.GenNYCTaxi(20000, 3, 5)
	e1, _ := New(d1, Options{TrainRatio: 0.1, Seed: 6})
	e3, _ := New(d3, Options{TrainRatio: 0.1, Seed: 6})
	rng := stats.NewRNG(7)
	med := func(e *Engine, d *dataset.Dataset, dims int) float64 {
		scales := []float64{24, 31, 263}
		errs := []float64{}
		for trial := 0; trial < 80; trial++ {
			lo := make([]float64, dims)
			hi := make([]float64, dims)
			for c := 0; c < dims; c++ {
				lo[c] = rng.Float64() * scales[c] * 0.5
				hi[c] = lo[c] + scales[c]*0.4
			}
			q := dataset.Rect{Lo: lo, Hi: hi}
			truth, err := d.Exact(dataset.Sum, q)
			if err != nil || truth == 0 {
				continue
			}
			r, _ := e.Query(dataset.Sum, q)
			errs = append(errs, r.RelativeError(truth))
		}
		return stats.Median(errs)
	}
	m1 := med(e1, d1, 1)
	m3 := med(e3, d3, 3)
	if m3 <= m1 {
		t.Errorf("3D error %v should exceed 1D error %v under independence factorisation", m3, m1)
	}
}

func TestTrainRatioInsensitive(t *testing.T) {
	// more training data should not change the answers dramatically (the
	// paper notes DeepDB accuracy does not improve with more data)
	d := dataset.GenNYCTaxi(20000, 1, 8)
	e10, _ := New(d, Options{TrainRatio: 0.1, Seed: 9})
	e100, _ := New(d, Options{TrainRatio: 1.0, Seed: 9})
	q := dataset.Rect1(6, 18)
	r10, _ := e10.Query(dataset.Sum, q)
	r100, _ := e100.Query(dataset.Sum, q)
	truth, _ := d.Exact(dataset.Sum, q)
	if r10.RelativeError(truth) > 0.2 || r100.RelativeError(truth) > 0.2 {
		t.Errorf("wide 1D query should be decent at any ratio: %v / %v",
			r10.RelativeError(truth), r100.RelativeError(truth))
	}
}

func TestEmptyPredicate(t *testing.T) {
	d := dataset.GenUniform(1000, 1, 10, 10)
	e, _ := New(d, Options{TrainRatio: 0.5, Seed: 11})
	r, err := e.Query(dataset.Sum, dataset.Rect1(100, 200))
	if err != nil {
		t.Fatal(err)
	}
	if r.Estimate != 0 {
		t.Errorf("disjoint SUM = %v, want 0", r.Estimate)
	}
	r, _ = e.Query(dataset.Avg, dataset.Rect1(100, 200))
	if !r.NoMatch {
		t.Error("disjoint AVG should be NoMatch")
	}
}

func TestModelStorageSmall(t *testing.T) {
	d := dataset.GenNYCTaxi(20000, 5, 12)
	e, _ := New(d, Options{TrainRatio: 0.1, Seed: 13})
	if e.MemoryBytes() > 5*64*5*8*2 {
		t.Errorf("model storage %d larger than expected for 5 histograms", e.MemoryBytes())
	}
	if e.Name() != "DeepDB-10%" {
		t.Errorf("name = %q", e.Name())
	}
	if _, err := e.Query(dataset.Min, dataset.Rect1(0, 24)); err == nil {
		t.Error("DeepDB sim should reject MIN")
	}
}
