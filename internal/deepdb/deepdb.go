// Package deepdb simulates the DeepDB comparator of Section 5.5
// (Hilprecht et al., VLDB 2020). DeepDB trains a relational sum-product
// network over a sample of the data and answers aggregates from the model
// alone, with very low query latency. The essential structural property —
// and the one that produces its error profile in the paper's Table 2 — is
// that the model factorises the joint distribution, assuming (conditional)
// independence between predicate columns.
//
// This simulator keeps exactly that structure: one adaptive equi-depth
// histogram per predicate column, each bucket carrying the count and the
// aggregate-column moments of its tuples, combined across columns under an
// independence assumption. It reproduces DeepDB's qualitative behaviour:
// accurate on smooth one-dimensional data, poor on high-cardinality
// categorical aggregates (Instacart) and on correlated multi-dimensional
// templates, and largely insensitive to the training-sample ratio.
package deepdb

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sample"
	"repro/internal/stats"
)

// bucket is one histogram cell: its key range and the aggregate moments of
// the training tuples falling in it.
type bucket struct {
	lo, hi     float64
	count      int
	sum, sumSq float64
}

// columnModel is the per-column histogram.
type columnModel struct {
	buckets []bucket
	trainN  int
}

// Engine is a simulated DeepDB instance.
type Engine struct {
	name    string
	n       int // base-table cardinality (known to the model)
	cols    []columnModel
	rootAvg float64
	// BuildTime records model training cost.
	BuildTime time.Duration
}

// Options configures training.
type Options struct {
	// TrainRatio is the fraction of the data sampled for training.
	TrainRatio float64
	// Buckets is the per-column histogram resolution (default 64).
	Buckets int
	Seed    uint64
}

// New trains the model on a TrainRatio sample of d.
func New(d *dataset.Dataset, opts Options) (*Engine, error) {
	if d.N() == 0 {
		return nil, fmt.Errorf("deepdb: empty dataset")
	}
	if opts.TrainRatio <= 0 || opts.TrainRatio > 1 {
		return nil, fmt.Errorf("deepdb: TrainRatio must be in (0, 1], got %v", opts.TrainRatio)
	}
	if opts.Buckets <= 0 {
		opts.Buckets = 64
	}
	start := time.Now()
	rng := stats.NewRNG(opts.Seed + 0xdd)
	m := int(opts.TrainRatio * float64(d.N()))
	if m < opts.Buckets {
		m = minInt(opts.Buckets, d.N())
	}
	idx := sample.UniformIndices(rng, d.N(), m)
	e := &Engine{
		name: fmt.Sprintf("DeepDB-%d%%", int(opts.TrainRatio*100)),
		n:    d.N(),
	}
	sumAll := 0.0
	for _, j := range idx {
		sumAll += d.Agg[j]
	}
	e.rootAvg = sumAll / float64(len(idx))
	for c := 0; c < d.Dims(); c++ {
		e.cols = append(e.cols, trainColumn(d, c, idx, opts.Buckets))
	}
	e.BuildTime = time.Since(start)
	return e, nil
}

func trainColumn(d *dataset.Dataset, col int, idx []int, nBuckets int) columnModel {
	type pair struct{ key, val float64 }
	pairs := make([]pair, len(idx))
	for i, j := range idx {
		pairs[i] = pair{key: d.Pred[col][j], val: d.Agg[j]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].key < pairs[b].key })
	if nBuckets > len(pairs) {
		nBuckets = maxInt(len(pairs), 1)
	}
	cm := columnModel{trainN: len(pairs)}
	for b := 0; b < nBuckets; b++ {
		lo := b * len(pairs) / nBuckets
		hi := (b + 1) * len(pairs) / nBuckets
		if lo >= hi {
			continue
		}
		bk := bucket{lo: pairs[lo].key, hi: pairs[hi-1].key}
		for _, p := range pairs[lo:hi] {
			bk.count++
			bk.sum += p.val
			bk.sumSq += p.val * p.val
		}
		cm.buckets = append(cm.buckets, bk)
	}
	return cm
}

// marginal estimates, for one column, the fraction of tuples whose key
// falls in [lo, hi] and the mean aggregate value conditioned on it, by
// linear interpolation within partially overlapped buckets.
func (cm columnModel) marginal(lo, hi float64) (frac, condMean float64) {
	var cnt, sum float64
	for _, b := range cm.buckets {
		if b.hi < lo || b.lo > hi {
			continue
		}
		overlap := 1.0
		width := b.hi - b.lo
		if width > 0 {
			ol := math.Max(lo, b.lo)
			oh := math.Min(hi, b.hi)
			overlap = (oh - ol) / width
			if overlap < 0 {
				overlap = 0
			}
		}
		cnt += overlap * float64(b.count)
		sum += overlap * b.sum
	}
	if cm.trainN == 0 || cnt == 0 {
		return 0, 0
	}
	return cnt / float64(cm.trainN), sum / cnt
}

// The DeepDB simulator implements the shared engine interface.
var _ engine.Engine = (*Engine)(nil)

// Name implements the shared engine.Engine interface.
func (e *Engine) Name() string { return e.name }

// QueryBatch implements engine.Engine via the shared sequential adapter.
func (e *Engine) QueryBatch(qs []core.BatchQuery) []core.BatchResult {
	return engine.SequentialBatch(e, qs)
}

// MemoryBytes reports the model size (buckets × 5 floats per column).
func (e *Engine) MemoryBytes() int {
	total := 0
	for _, cm := range e.cols {
		total += len(cm.buckets) * 5 * 8
	}
	return total
}

// Query answers from the factorised model: selectivity is the product of
// per-column marginal fractions, the conditional mean is the average of
// per-column conditional means. Model answers have no sampling error bar;
// CIHalf is reported as zero, as DeepDB's point estimates are
// deterministic given the model.
func (e *Engine) Query(kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	r := core.Result{}
	dims := q.Dims()
	if dims > len(e.cols) {
		dims = len(e.cols)
	}
	frac := 1.0
	meanSum, meanCnt := 0.0, 0.0
	for c := 0; c < dims; c++ {
		f, m := e.cols[c].marginal(q.Lo[c], q.Hi[c])
		frac *= f
		if f > 0 {
			meanSum += m
			meanCnt++
		}
	}
	if frac == 0 || meanCnt == 0 {
		if kind == dataset.Sum || kind == dataset.Count {
			return r, nil // estimate 0
		}
		r.NoMatch = true
		return r, nil
	}
	condMean := meanSum / meanCnt
	switch kind {
	case dataset.Count:
		r.Estimate = frac * float64(e.n)
	case dataset.Sum:
		r.Estimate = frac * float64(e.n) * condMean
	case dataset.Avg:
		r.Estimate = condMean
	default:
		return r, fmt.Errorf("deepdb: unsupported aggregate %v", kind)
	}
	return r, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
