// Sketch conformance: every sketch-capable engine — the PASS synopsis
// and the sharded scatter-gather configurations over PASS inners — must
// answer QUANTILE / COUNT DISTINCT / TOPK within the error bound its
// result states, verified against exact answers computed from the base
// rows (the exact twin). Sharded engines must additionally agree with
// their unsharded twin where the sketch algebra makes answers
// multiset-determined (COUNT DISTINCT), and every engine must answer
// deterministically across repeated queries.
package engine_test

import (
	"errors"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/factory"
	"repro/internal/sketch"
)

// sketchSpecs are the engine configurations that must carry working
// sketches: the unsharded synopsis and sharded scatter-gather over PASS
// inners (range- and hash-partitioned).
var sketchSpecs = []string{"pass", "sharded:pass:4", "sharded:pass:3:hash"}

// exactStats computes the exact twin of every sketch aggregate from the
// base rows.
type exactStats struct {
	sorted []float64
	counts map[float64]float64
}

func exactOf(agg []float64) exactStats {
	s := append([]float64(nil), agg...)
	sort.Float64s(s)
	c := make(map[float64]float64)
	for _, v := range agg {
		c[v]++
	}
	return exactStats{sorted: s, counts: c}
}

// rankErr is the distance (in rank positions) from the target rank to
// the value's rank interval in the sorted base rows — zero when the
// returned value is a legitimate answer for the requested quantile.
func (ex exactStats) rankErr(q, v float64) float64 {
	target := q * float64(len(ex.sorted))
	lo := float64(sort.SearchFloat64s(ex.sorted, v))
	hi := float64(sort.Search(len(ex.sorted), func(i int) bool { return ex.sorted[i] > v }))
	switch {
	case target < lo:
		return lo - target
	case target > hi:
		return target - hi
	}
	return 0
}

func TestConformanceSketchExactTwin(t *testing.T) {
	d := confDataset(t)
	ex := exactOf(d.Agg)
	// dTop discretizes the aggregate column so a handful of values carry
	// real weight — the regime TOPK is for
	dTop := d.Clone()
	for i, v := range dTop.Agg {
		dTop.Agg[i] = math.Floor(v / 4)
	}
	exTop := exactOf(dTop.Agg)
	var distinctAnswers []sketch.Result
	for _, spec := range sketchSpecs {
		e, err := factory.Build(spec, d, factory.Spec{Partitions: 16, SampleRate: 0.02, Seed: 11})
		if err != nil {
			t.Fatalf("factory.Build(%s): %v", spec, err)
		}
		sk, ok := engine.Underlying(e).(engine.Sketcher)
		if !ok {
			t.Fatalf("%s: not a Sketcher", spec)
		}
		t.Run(spec, func(t *testing.T) {
			for _, q := range []float64{0.1, 0.5, 0.9} {
				r, err := sk.SketchQuery(sketch.Query{Kind: sketch.KindQuantile, Arg: q})
				if err != nil {
					t.Fatalf("QUANTILE(%g): %v", q, err)
				}
				if obs := ex.rankErr(q, r.Value); obs > r.Bound {
					t.Errorf("QUANTILE(%g) = %g: rank error %.0f exceeds stated bound %.0f", q, r.Value, obs, r.Bound)
				}
				if r.N != int64(d.N()) {
					t.Errorf("QUANTILE(%g): N = %d, want %d", q, r.N, d.N())
				}
			}

			r, err := sk.SketchQuery(sketch.Query{Kind: sketch.KindDistinct})
			if err != nil {
				t.Fatalf("COUNT DISTINCT: %v", err)
			}
			exact := float64(len(ex.counts))
			if obs, bound := math.Abs(r.Value-exact), (r.Hi-r.Lo)/2; obs > bound {
				t.Errorf("COUNT DISTINCT = %.0f (exact %.0f): error %.1f exceeds 3-sigma half-width %.1f",
					r.Value, exact, obs, bound)
			}
			distinctAnswers = append(distinctAnswers, r)

			// TOPK needs genuine heavy hitters to retain entries across a
			// sharded merge (the Misra-Gries offset subtraction rightly
			// drops values no heavier than the tail), so it runs over the
			// discretized twin of the same rows
			eTop, err := factory.Build(spec, dTop, factory.Spec{Partitions: 16, SampleRate: 0.02, Seed: 11})
			if err != nil {
				t.Fatalf("factory.Build(%s) over discretized rows: %v", spec, err)
			}
			skTop := engine.Underlying(eTop).(engine.Sketcher)
			tk, err := skTop.SketchQuery(sketch.Query{Kind: sketch.KindTopK, Arg: 8})
			if err != nil {
				t.Fatalf("TOPK(8): %v", err)
			}
			if len(tk.Entries) == 0 {
				t.Fatal("TOPK(8): no entries over heavy-hitter rows")
			}
			for _, en := range tk.Entries {
				if obs := math.Abs(en.Count - exTop.counts[en.Value]); obs > en.ErrBound {
					t.Errorf("TOPK entry %g: count %.0f (exact %.0f), error %.1f exceeds bound %.1f",
						en.Value, en.Count, exTop.counts[en.Value], obs, en.ErrBound)
				}
			}

			// repeated queries answer deterministically: the scatter fold
			// runs in shard-index order, never racing itself
			again, err := skTop.SketchQuery(sketch.Query{Kind: sketch.KindTopK, Arg: 8})
			if err != nil || !reflect.DeepEqual(tk, again) {
				t.Errorf("TOPK(8) not deterministic across calls: %+v vs %+v (err %v)", tk, again, err)
			}
		})
	}
	// COUNT DISTINCT is multiset-determined: the HLL registers depend
	// only on the set of values, so every sharding of the same rows must
	// answer bit-identically to the unsharded twin.
	for i := 1; i < len(distinctAnswers); i++ {
		if !reflect.DeepEqual(distinctAnswers[0], distinctAnswers[i]) {
			t.Errorf("COUNT DISTINCT diverges between %s and %s: %+v vs %+v",
				sketchSpecs[0], sketchSpecs[i], distinctAnswers[0], distinctAnswers[i])
		}
	}
}

// TestConformanceSketchUnavailable drives sketch queries at engines that
// cannot answer them: unsharded non-PASS engines must not claim the
// capability, and sharded engines over sketch-less inners must fail with
// sketch.ErrUnavailable on every kind — an error, never a panic or a
// silent wrong answer.
func TestConformanceSketchUnavailable(t *testing.T) {
	d := confDataset(t)
	for kind, e := range buildAll(t, d) {
		sk, ok := engine.Underlying(e).(engine.Sketcher)
		sketchable := kind == "pass" || strings.HasPrefix(kind, "sharded:")
		if ok != sketchable {
			t.Errorf("%s: Sketcher = %v, want %v", kind, ok, sketchable)
		}
		if !ok || kind == "pass" || strings.HasPrefix(kind, "sharded:pass") {
			continue
		}
		for _, q := range []sketch.Query{
			{Kind: sketch.KindQuantile, Arg: 0.5},
			{Kind: sketch.KindDistinct},
			{Kind: sketch.KindTopK, Arg: 4},
		} {
			if _, err := sk.SketchQuery(q); !isUnavailable(err) {
				t.Errorf("%s: %s over sketch-less inners returned %v, want sketch.ErrUnavailable", kind, q.Kind, err)
			}
		}
	}
}

func isUnavailable(err error) bool { return errors.Is(err, sketch.ErrUnavailable) }
