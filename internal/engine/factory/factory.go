// Package factory constructs any of the repository's AQP engines from a
// uniform specification, by name. It is the one place that knows every
// concrete implementation; layers above it (cmd/passquery, the
// conformance suite, serving code) pick engines with a string and program
// against engine.Engine only.
//
// The factory lives in a subpackage of internal/engine because the
// implementations themselves import internal/engine (for the shared
// sequential-batch adapter), so the interface package cannot import them
// back.
package factory

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/aqpp"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/deepdb"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/verdictdb"
)

// Spec is an engine-agnostic construction budget. Zero fields take
// per-engine defaults.
type Spec struct {
	// Partitions is the precomputation budget (PASS leaves, ST strata,
	// AQP++ partitions, DeepDB buckets). Default 64.
	Partitions int
	// SampleRate is the sample budget as a fraction of the data (default
	// 0.005). Ignored when SampleSize is set.
	SampleRate float64
	// SampleSize is the absolute sample budget; overrides SampleRate.
	SampleSize int
	// Ratio is the VerdictDB scramble / DeepDB training ratio (default
	// 0.1).
	Ratio float64
	// Lambda is the CI multiplier (default 2.576, a 99% interval).
	Lambda float64
	// Seed drives all randomness.
	Seed uint64
}

func (sp Spec) defaults(n int) Spec {
	if sp.Partitions <= 0 {
		sp.Partitions = 64
	}
	if sp.SampleSize <= 0 {
		rate := sp.SampleRate
		if rate <= 0 {
			rate = 0.005
		}
		sp.SampleSize = int(rate * float64(n))
		if sp.SampleSize < 1 {
			sp.SampleSize = 1
		}
	}
	if sp.Ratio <= 0 {
		sp.Ratio = 0.1
	}
	return sp
}

// builders maps an engine kind to its constructor. PASS picks the 1D or
// k-d build by the dataset's dimensionality; AQP++ likewise.
var builders = map[string]func(d *dataset.Dataset, sp Spec) (engine.Engine, error){
	"pass": func(d *dataset.Dataset, sp Spec) (engine.Engine, error) {
		opts := core.Options{
			Partitions: sp.Partitions, SampleSize: sp.SampleSize,
			Kind: dataset.Sum, Lambda: sp.Lambda, Seed: sp.Seed,
		}
		if d.Dims() > 1 {
			return core.BuildKD(d, opts)
		}
		return core.Build(d, opts)
	},
	"us": func(d *dataset.Dataset, sp Spec) (engine.Engine, error) {
		return baselines.NewUniform(d, sp.SampleSize, sp.Lambda, sp.Seed), nil
	},
	"st": func(d *dataset.Dataset, sp Spec) (engine.Engine, error) {
		return baselines.NewStratified(d, sp.Partitions, sp.SampleSize, sp.Lambda, sp.Seed), nil
	},
	"aqpp": func(d *dataset.Dataset, sp Spec) (engine.Engine, error) {
		opts := aqpp.Options{
			Partitions: sp.Partitions, SampleSize: sp.SampleSize,
			Lambda: sp.Lambda, Seed: sp.Seed,
		}
		if d.Dims() > 1 {
			return aqpp.NewKD(d, opts)
		}
		return aqpp.New(d, opts)
	},
	"verdictdb": func(d *dataset.Dataset, sp Spec) (engine.Engine, error) {
		return verdictdb.New(d, sp.Ratio, sp.Lambda, sp.Seed)
	},
	"deepdb": func(d *dataset.Dataset, sp Spec) (engine.Engine, error) {
		return deepdb.New(d, deepdb.Options{
			TrainRatio: sp.Ratio, Buckets: sp.Partitions, Seed: sp.Seed,
		})
	},
}

// loaders maps an engine's display name (what Engine.Name returns and
// what store snapshots record) to the function restoring it from its
// serialized bytes. Only engines with an engine.Serializable Save have a
// loader; the model-based comparators rebuild from data instead.
var loaders = map[string]engine.Loader{
	"PASS": func(r io.Reader) (engine.Engine, error) { return core.Load(r) },
	"US":   baselines.LoadUniform,
	"ST":   baselines.LoadStratified,
}

// Loader returns the restore function for a serialized engine by its
// display name (case-sensitive, as recorded in snapshot files).
func Loader(name string) (engine.Loader, bool) {
	l, ok := loaders[name]
	return l, ok
}

// LoaderKinds lists the engine names that can be restored from a
// snapshot, sorted.
func LoaderKinds() []string {
	out := make([]string, 0, len(loaders))
	for k := range loaders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named engine over d. Kind is case-insensitive; see
// Kinds for the available names. The spec "sharded:<inner>[:<n>[:<policy>]]"
// builds a sharded scatter-gather engine over n inner engines of the given
// kind (n defaults to GOMAXPROCS, policy to "range"), e.g. "sharded:pass:4".
func Build(kind string, d *dataset.Dataset, sp Spec) (engine.Engine, error) {
	if inner, ok := strings.CutPrefix(strings.ToLower(kind), "sharded:"); ok {
		return buildSharded(inner, d, sp)
	}
	b, ok := builders[strings.ToLower(kind)]
	if !ok {
		return nil, fmt.Errorf("factory: unknown engine %q (have %s, or sharded:<inner>:<n>)", kind, strings.Join(Kinds(), ", "))
	}
	return b(d, sp.defaults(d.N()))
}

// buildSharded parses "<inner>[:<n>[:<policy>]]" and constructs a sharded
// engine: the dataset is split on predicate column 0, one inner engine is
// built per shard concurrently on the worker pool, and the total
// Partitions/SampleSize budget is divided across the shards in proportion
// to their cardinality — a sharded table costs what its unsharded twin
// costs.
func buildSharded(spec string, d *dataset.Dataset, sp Spec) (engine.Engine, error) {
	inner := spec
	n := runtime.GOMAXPROCS(0)
	policy := shard.Range
	if name, rest, ok := strings.Cut(spec, ":"); ok {
		inner = name
		count, polName, _ := strings.Cut(rest, ":")
		v, err := strconv.Atoi(count)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("factory: bad shard count %q in %q (want sharded:<inner>:<n>)", count, "sharded:"+spec)
		}
		n = v
		if polName != "" {
			if policy, err = shard.ParsePolicy(polName); err != nil {
				return nil, fmt.Errorf("factory: %w (want sharded:<inner>:<n>:<range|hash>)", err)
			}
		}
	}
	b, ok := builders[inner]
	if !ok {
		return nil, fmt.Errorf("factory: unknown inner engine %q in %q (have %s)", inner, "sharded:"+spec, strings.Join(Kinds(), ", "))
	}
	sp = sp.defaults(d.N())
	total := d.N()
	return shard.Build(d, policy, 0, n, func(i int, sd *dataset.Dataset) (engine.Engine, error) {
		per := sp
		per.Partitions = scaleBudget(sp.Partitions, sd.N(), total)
		per.SampleSize = scaleBudget(sp.SampleSize, sd.N(), total)
		per.SampleRate = 0 // SampleSize is always resolved by defaults()
		per.Seed = sp.Seed + uint64(i+1)*0x9e3779b97f4a7c15
		return b(sd, per)
	})
}

// scaleBudget apportions a whole-table budget to one shard by its share
// of the rows, never below 1.
func scaleBudget(budget, shardRows, totalRows int) int {
	v := int(float64(budget) * float64(shardRows) / float64(totalRows))
	if v < 1 {
		v = 1
	}
	return v
}

// Kinds lists the available engine names, sorted.
func Kinds() []string {
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
