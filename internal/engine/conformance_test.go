// Engine conformance suite: every AQP system in the repository — PASS and
// the five comparators — must satisfy the same contract beyond the type
// signature of engine.Engine:
//
//   - QueryBatch answers are identical to sequential Query answers;
//   - MemoryBytes is positive after a build;
//   - unsupported aggregates return errors, never panic;
//   - concurrent batched queries are race-free (run under -race in CI).
//
// The suite constructs engines through the factory, so adding an engine
// kind there automatically enrols it here.
package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/engine/factory"
)

const confRows = 3000

func confDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	return dataset.GenIntelWireless(confRows, 7)
}

// shardedSpecs are the sharded scatter-gather configurations enrolled in
// the conformance suite alongside the six base engines: the sharded
// engine must honour the same contract regardless of its inner kind or
// partitioning policy.
var shardedSpecs = []string{"sharded:pass:4", "sharded:pass:3:hash", "sharded:us:2"}

// buildAll constructs one engine of every kind over the same dataset —
// the six base engines plus the sharded configurations.
func buildAll(t testing.TB, d *dataset.Dataset) map[string]engine.Engine {
	t.Helper()
	kinds := append(append([]string{}, factory.Kinds()...), shardedSpecs...)
	out := make(map[string]engine.Engine, len(kinds))
	for _, kind := range kinds {
		e, err := factory.Build(kind, d, factory.Spec{Partitions: 16, SampleRate: 0.02, Seed: 11})
		if err != nil {
			t.Fatalf("factory.Build(%s): %v", kind, err)
		}
		out[kind] = e
	}
	return out
}

func confWorkload() []core.BatchQuery {
	var qs []core.BatchQuery
	for _, kind := range []dataset.AggKind{dataset.Count, dataset.Sum, dataset.Avg} {
		for i := 0; i < 8; i++ {
			lo := float64(i * 3)
			qs = append(qs, core.BatchQuery{Kind: kind, Rect: dataset.Rect1(lo, lo+10)})
		}
	}
	return qs
}

func TestFactoryCoversAllSixEngines(t *testing.T) {
	kinds := factory.Kinds()
	if len(kinds) != 6 {
		t.Fatalf("factory kinds = %v, want the six engines of the paper's evaluation", kinds)
	}
	if _, err := factory.Build("no-such-engine", confDataset(t), factory.Spec{}); err == nil {
		t.Error("unknown engine kind should fail")
	}
}

func TestConformanceBatchMatchesSequential(t *testing.T) {
	d := confDataset(t)
	qs := confWorkload()
	for kind, e := range buildAll(t, d) {
		t.Run(kind, func(t *testing.T) {
			batch := e.QueryBatch(qs)
			if len(batch) != len(qs) {
				t.Fatalf("QueryBatch returned %d results for %d queries", len(batch), len(qs))
			}
			for i, q := range qs {
				seq, seqErr := e.Query(q.Kind, q.Rect)
				br := batch[i]
				if (seqErr == nil) != (br.Err == nil) {
					t.Fatalf("query %d: batch err %v vs sequential err %v", i, br.Err, seqErr)
				}
				if seqErr != nil {
					continue
				}
				if br.Result.Estimate != seq.Estimate || br.Result.CIHalf != seq.CIHalf ||
					br.Result.NoMatch != seq.NoMatch || br.Result.Exact != seq.Exact {
					t.Errorf("query %d: batch (%v ± %v) != sequential (%v ± %v)",
						i, br.Result.Estimate, br.Result.CIHalf, seq.Estimate, seq.CIHalf)
				}
			}
		})
	}
}

func TestConformanceMemoryBytesPositive(t *testing.T) {
	d := confDataset(t)
	for kind, e := range buildAll(t, d) {
		if e.MemoryBytes() <= 0 {
			t.Errorf("%s: MemoryBytes = %d after build, want > 0", kind, e.MemoryBytes())
		}
		if e.Name() == "" {
			t.Errorf("%s: empty engine name", kind)
		}
	}
}

// TestConformanceUnsupportedAggregates drives every aggregate kind —
// including ones an engine does not implement — through Query and asserts
// errors come back as errors, not panics.
func TestConformanceUnsupportedAggregates(t *testing.T) {
	d := confDataset(t)
	kinds := []dataset.AggKind{dataset.Sum, dataset.Count, dataset.Avg, dataset.Min, dataset.Max}
	for name, e := range buildAll(t, d) {
		t.Run(name, func(t *testing.T) {
			for _, k := range kinds {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Errorf("%s panicked on %v: %v", name, k, r)
						}
					}()
					_, _ = e.Query(k, dataset.Rect1(0, 25))
				}()
			}
			// engines without MIN/MAX support must say so explicitly
			switch name {
			case "st", "aqpp", "deepdb":
				if _, err := e.Query(dataset.Min, dataset.Rect1(0, 25)); err == nil {
					t.Errorf("%s: MIN should return an unsupported-aggregate error", name)
				}
			}
		})
	}
}

// TestConformanceConcurrentBatches hammers each engine with concurrent
// batched workloads; under -race (CI) this verifies queries are
// shared-state safe.
func TestConformanceConcurrentBatches(t *testing.T) {
	d := confDataset(t)
	qs := confWorkload()
	for kind, e := range buildAll(t, d) {
		t.Run(kind, func(t *testing.T) {
			want := e.QueryBatch(qs)
			var wg sync.WaitGroup
			errs := make(chan error, 4)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for rep := 0; rep < 3; rep++ {
						got := e.QueryBatch(qs)
						for i := range got {
							if (got[i].Err == nil) != (want[i].Err == nil) {
								errs <- fmt.Errorf("query %d: err mismatch across concurrent batches", i)
								return
							}
							if got[i].Err == nil && got[i].Result.Estimate != want[i].Result.Estimate {
								errs <- fmt.Errorf("query %d: %v != %v under concurrency",
									i, got[i].Result.Estimate, want[i].Result.Estimate)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestCapabilitySplit documents which engines expose the optional
// capability interfaces: PASS is Updatable, Serializable, Grouper and
// Sized; the sampling baselines US and ST are Serializable and Sized
// (plain sample arrays persist trivially) but query-only otherwise; the
// model-based comparators have no optional capability at all. Sharded
// engines carry the update/grouping/sharding surfaces (erroring at call
// time when an inner engine lacks the ability) but deliberately not the
// single-stream Serializable — they persist per shard through the store's
// manifest path.
func TestCapabilitySplit(t *testing.T) {
	d := confDataset(t)
	engines := buildAll(t, d)
	for kind, e := range engines {
		_, upd := e.(engine.Updatable)
		_, ser := e.(engine.Serializable)
		_, grp := e.(engine.Grouper)
		_, shr := e.(engine.Sharded)
		_, cup := e.(engine.ConcurrentUpdatable)
		_, skt := engine.Underlying(e).(engine.Sketcher)
		if isSharded := strings.HasPrefix(kind, "sharded:"); isSharded {
			// sharded engines carry the Sketcher surface too, erroring at
			// call time when an inner engine keeps no sketches
			if !upd || !grp || !shr || !cup || !skt || ser {
				t.Errorf("%s: capabilities updatable=%v grouper=%v sharded=%v concurrent=%v sketcher=%v serializable=%v, want t/t/t/t/t/f",
					kind, upd, grp, shr, cup, skt, ser)
			}
			continue
		}
		isPass := kind == "pass"
		isSampling := isPass || kind == "us" || kind == "st"
		if upd != isPass || grp != isPass || skt != isPass {
			t.Errorf("%s: capabilities updatable=%v grouper=%v sketcher=%v, want all %v", kind, upd, grp, skt, isPass)
		}
		if ser != isSampling {
			t.Errorf("%s: serializable=%v, want %v", kind, ser, isSampling)
		}
		if shr || cup {
			t.Errorf("%s: unsharded engine claims sharded=%v concurrent=%v", kind, shr, cup)
		}
	}
	// every serializable engine must have a registered loader, or a
	// snapshot written today is unreadable tomorrow
	for kind, e := range engines {
		if _, ok := e.(engine.Serializable); !ok {
			continue
		}
		if _, ok := factory.Loader(e.Name()); !ok {
			t.Errorf("%s: engine %q is Serializable but has no factory loader", kind, e.Name())
		}
	}
}

// TestConformanceGroupBy drives every Grouper engine through the GROUP BY
// contract: each group's result must be consistent with a per-group Query
// over the group-equality rectangle (how Section 4.5 defines grouping),
// bad dimensions and empty group lists must error rather than panic, and
// engines whose inner layers cannot group must say so with an error.
func TestConformanceGroupBy(t *testing.T) {
	d := confDataset(t)
	q := dataset.Rect1(0, 30)
	groups := []float64{3, 9, 21}
	for kind, e := range buildAll(t, d) {
		g, ok := engine.Underlying(e).(engine.Grouper)
		if !ok {
			continue
		}
		t.Run(kind, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked in GroupBy: %v", kind, r)
				}
			}()
			res, err := g.GroupBy(dataset.Sum, q, 0, groups)
			mustGroup := kind == "pass" || strings.HasPrefix(kind, "sharded:pass")
			if err != nil {
				if mustGroup {
					t.Fatalf("GroupBy failed on a grouping engine: %v", err)
				}
				return // inner engine cannot group; erroring is the contract
			}
			if len(res) != len(groups) {
				t.Fatalf("%d group results for %d groups", len(res), len(groups))
			}
			for i, gr := range res {
				if gr.Group != groups[i] {
					t.Fatalf("group key %v at position %d, want %v", gr.Group, i, groups[i])
				}
				want, qerr := e.Query(dataset.Sum, dataset.Rect1(groups[i], groups[i]))
				if qerr != nil {
					t.Fatalf("per-group query: %v", qerr)
				}
				if gr.Result.NoMatch != want.NoMatch {
					t.Errorf("group %v: NoMatch %v but per-group query says %v", gr.Group, gr.Result.NoMatch, want.NoMatch)
					continue
				}
				if diff := gr.Result.Estimate - want.Estimate; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("group %v: estimate %v != per-group query %v", gr.Group, gr.Result.Estimate, want.Estimate)
				}
			}
			// bad inputs error, never panic
			if _, err := g.GroupBy(dataset.Sum, q, -1, groups); err == nil {
				t.Error("negative group dimension should error")
			}
			if _, err := g.GroupBy(dataset.Sum, q, 99, groups); err == nil {
				t.Error("out-of-range group dimension should error")
			}
			if _, err := g.GroupBy(dataset.Sum, q, 0, nil); err == nil {
				t.Error("empty group list should error")
			}
		})
	}
}

func TestSequentialBatchAdapter(t *testing.T) {
	d := confDataset(t)
	e, err := factory.Build("us", d, factory.Spec{SampleSize: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := engine.SequentialBatch(e, nil)
	if len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
	qs := []core.BatchQuery{{Kind: dataset.Sum, Rect: dataset.Rect1(0, 25)}}
	got := engine.SequentialBatch(e, qs)
	if len(got) != 1 || got[0].Err != nil || got[0].Elapsed < 0 {
		t.Errorf("SequentialBatch = %+v", got)
	}
}

func TestRenameForwardsAndUnwraps(t *testing.T) {
	d := confDataset(t)
	e, err := factory.Build("pass", d, factory.Spec{Partitions: 8, SampleSize: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := engine.Rename(e, "PASS-XL")
	if r.Name() != "PASS-XL" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.MemoryBytes() != e.MemoryBytes() {
		t.Error("Rename must forward MemoryBytes")
	}
	if engine.Underlying(r) != e {
		t.Error("Underlying should unwrap Rename")
	}
	if engine.Underlying(e) != e {
		t.Error("Underlying of an unwrapped engine is itself")
	}
	if _, ok := engine.Underlying(r).(engine.Updatable); !ok {
		t.Error("capabilities reachable through Underlying")
	}
}
