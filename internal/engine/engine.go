// Package engine defines the common interface implemented by every AQP
// system in this repository — the PASS synopsis (internal/core) and the
// comparators US, ST (internal/baselines), AQP++ (internal/aqpp),
// VerdictDB (internal/verdictdb) and DeepDB (internal/deepdb) — plus the
// optional capability interfaces that expose mutation and persistence
// where an engine supports them.
//
// The package is the middle layer of the repository's architecture:
//
//	sqlfe (SQL frontend) → pass.Session / internal/catalog → engine → implementations
//
// Everything above this layer (the SQL session, the catalog, the
// benchmark harness, the serving binaries) is written against Engine and
// the capability interfaces, never against a concrete implementation, so
// new backends plug in without touching the upper layers.
package engine

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sketch"
)

// ErrNotSerializable is returned (wrapped, with engine and table context)
// when persistence is requested of an engine that cannot provide it —
// one without the Serializable capability, or a multi-dimensional PASS
// synopsis whose Save fails at runtime (it aliases core.ErrNotSerializable
// so both cases match one sentinel). Callers that can degrade gracefully
// (serve the table without durability) detect it with errors.Is;
// everything else should surface it, never skip it silently.
var ErrNotSerializable = core.ErrNotSerializable

// Queryer is the minimal single-query surface of an AQP engine.
type Queryer interface {
	// Name identifies the engine in benchmark tables and catalog listings.
	Name() string
	// Query answers one aggregate over a rectangular predicate.
	Query(kind dataset.AggKind, q dataset.Rect) (core.Result, error)
	// MemoryBytes is the synopsis storage footprint.
	MemoryBytes() int
}

// Engine is the interface every AQP system implements: single queries
// plus whole-workload batched execution. Engines with an internally
// parallel synopsis (PASS) fan batches across the worker pool; the
// sampling baselines satisfy the contract with SequentialBatch. In both
// cases batched answers must be identical to issuing the same queries
// sequentially through Query.
type Engine interface {
	Queryer
	// QueryBatch answers a workload of queries, returning results in
	// input order.
	QueryBatch(qs []core.BatchQuery) []core.BatchResult
}

// Updatable is the optional mutation capability: engines whose synopsis
// can absorb inserts and deletes without a rebuild. Updates require
// exclusive access — they must not overlap with queries (the catalog
// layer serialises them behind a per-table RWMutex).
type Updatable interface {
	Insert(point []float64, value float64) error
	Delete(point []float64, value float64) error
}

// Serializable is the optional persistence capability: engines whose
// synopsis persists to a compact binary format. Loading is
// constructor-shaped (it yields a new engine) and therefore lives with
// each implementation — core.Load for PASS — rather than on the
// interface; a Loader value adapts any of them to a uniform signature.
type Serializable interface {
	Save(w io.Writer) error
}

// Loader restores an engine written by a Serializable implementation's
// Save.
type Loader func(r io.Reader) (Engine, error)

// ConcurrentUpdatable is the capability of engines whose Insert/Delete are
// internally synchronised against concurrent queries — a sharded engine
// with per-shard locks, for example — so the serving layer may run updates
// under a shared (read) table lock instead of the exclusive one, and an
// update to one shard no longer blocks queries on the others. The catalog
// still takes the exclusive lock when a write-ahead journal is attached:
// journal ordering requires updates to serialise.
type ConcurrentUpdatable interface {
	Updatable
	// ConcurrentUpdates is a marker asserting the internal
	// synchronisation; it performs no work.
	ConcurrentUpdates()
}

// Grouper is the optional GROUP BY capability: one aggregate per group
// key over a shared predicate (PASS Section 4.5).
type Grouper interface {
	GroupBy(kind dataset.AggKind, q dataset.Rect, dim int, groups []float64) ([]core.GroupResult, error)
}

// ContextQuerier is the optional deadline-aware query capability: engines
// that can observe a context's deadline/cancellation mid-query — today the
// scatter-gather shard engine, which drops shards that exceed the deadline
// and merges the rest into a degraded partial answer. Engines without the
// capability run to completion; the QueryCtx adapter still honours an
// already-expired context before starting.
type ContextQuerier interface {
	// QueryCtx answers one aggregate, observing ctx. Implementations may
	// return a partial (Result.Degraded) answer when ctx expires mid-query,
	// or ctx.Err() when nothing useful was computed.
	QueryCtx(ctx context.Context, kind dataset.AggKind, q dataset.Rect) (core.Result, error)
}

// ContextBatcher is the batched companion of ContextQuerier.
type ContextBatcher interface {
	QueryBatchCtx(ctx context.Context, qs []core.BatchQuery) []core.BatchResult
}

// QueryCtx runs one query with deadline awareness when the engine has the
// ContextQuerier capability, and falls back to a plain Query otherwise.
// The fallback still refuses to start work on an already-done context, so
// every engine gets fail-fast admission even if it cannot be interrupted
// mid-flight.
func QueryCtx(ctx context.Context, e Engine, kind dataset.AggKind, q dataset.Rect) (core.Result, error) {
	if cq, ok := Underlying(e).(ContextQuerier); ok {
		return cq.QueryCtx(ctx, kind, q)
	}
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	return e.Query(kind, q)
}

// QueryBatchCtx is the batched companion of QueryCtx: deadline-aware
// engines observe ctx per sub-query; others get the fail-fast admission
// check and then run the batch to completion.
func QueryBatchCtx(ctx context.Context, e Engine, qs []core.BatchQuery) ([]core.BatchResult, error) {
	if cb, ok := Underlying(e).(ContextBatcher); ok {
		return cb.QueryBatchCtx(ctx, qs), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.QueryBatch(qs), nil
}

// ShardInfo describes how a sharded engine partitions its data: the
// policy, the dimension it partitions on, the range cut points (range
// policy only), the per-shard bounding rectangles used for scatter
// pruning, and the shard count. It is everything a store manifest needs to
// rebuild the router at warm start.
type ShardInfo struct {
	// Policy is the partitioning policy name: "range" or "hash".
	Policy string
	// Dim is the predicate column the partitioner operates on.
	Dim int
	// Cuts are the range policy's ascending cut points: shard i owns keys
	// in [Cuts[i-1], Cuts[i]) with open ends at the extremes. Empty for
	// hash partitioning.
	Cuts []float64
	// Bounds[i] is shard i's bounding rectangle over all predicate
	// columns: a query rectangle disjoint from it cannot match any tuple
	// of the shard, so the scatter skips it.
	Bounds []dataset.Rect
	// Shards is the shard count.
	Shards int
}

// Sharded is the capability of engines that execute by scatter-gather over
// data partitions: the serving and storage layers use it to surface
// per-shard statistics, route updates, and persist each shard separately.
type Sharded interface {
	// ShardInfo describes the partitioning.
	ShardInfo() ShardInfo
	// Shard returns the inner engine serving shard i. Callers must not
	// query or mutate it while the sharded engine serves concurrent
	// traffic — it bypasses the per-shard locks; the serving layer uses
	// it only under the table's exclusive lock (checkpoints).
	Shard(i int) Engine
	// ShardRows reports each shard's base cardinality (0 where unknown),
	// internally synchronised against concurrent updates.
	ShardRows() []int
	// Route returns the shard that owns an update with the given
	// predicate point.
	Route(point []float64) (int, error)
}

// Sketcher is the optional mergeable-sketch capability: engines that
// maintain the QUANTILE / COUNT DISTINCT / TOPK summaries
// (internal/sketch) over their aggregate column. Sketch queries carry no
// predicate — the summaries are table-global (per shard in a sharded
// engine, merged at gather time) — so the capability sits beside Query
// rather than extending it.
type Sketcher interface {
	// SketchQuery answers one sketch aggregate. Engines restored from a
	// snapshot that predates sketch maintenance return
	// sketch.ErrUnavailable.
	SketchQuery(q sketch.Query) (sketch.Result, error)
	// SketchSet exposes the engine's sketch state for merging by
	// composite engines (scatter-gather). Callers must treat the returned
	// set as read-only and must not retain it across updates; composite
	// engines clone before merging. Nil when the engine carries no
	// sketches (pre-sketch snapshot).
	SketchSet() *sketch.Set
}

// Sized is the optional row-count capability, used by the catalog for
// table listings and skip-rate accounting.
type Sized interface {
	N() int
}

// SequentialBatch is the shared QueryBatch adapter for engines without a
// natively parallel synopsis: it executes the workload one query at a
// time in input order, recording per-query wall-clock latency. Engines
// embed it as a one-line method:
//
//	func (e *Engine) QueryBatch(qs []core.BatchQuery) []core.BatchResult {
//	    return engine.SequentialBatch(e, qs)
//	}
func SequentialBatch(e Queryer, qs []core.BatchQuery) []core.BatchResult {
	out := make([]core.BatchResult, len(qs))
	for i, q := range qs {
		o := &out[i]
		start := time.Now()
		o.Result, o.Err = e.Query(q.Kind, q.Rect)
		o.Elapsed = time.Since(start)
	}
	return out
}

// renamed overrides an engine's display name, forwarding everything else.
type renamed struct {
	Engine
	name string
}

func (r renamed) Name() string { return r.name }

// Rename returns e presented under a different display name — used by the
// benchmark harness to distinguish configurations of the same engine
// (e.g. "PASS-BSS2x" vs "PASS-BSS10x"). Capability interfaces of the
// underlying engine are not forwarded; unwrap with Underlying if needed.
func Rename(e Engine, name string) Engine {
	return renamed{Engine: e, name: name}
}

// Wrapper is implemented by engines that decorate another engine
// (Rename, test fault/latency wrappers): Underlying returns the wrapped
// engine so capability checks reach it.
type Wrapper interface {
	Underlying() Engine
}

// Underlying follows the wrapper chain (Rename and any Wrapper) down to
// the base engine, so capability type-assertions (Updatable, Sized,
// ContextQuerier, ...) see the engine that actually implements them.
func Underlying(e Engine) Engine {
	// depth-bounded in case a wrapper cycles back to itself
	for i := 0; i < 32; i++ {
		switch w := e.(type) {
		case renamed:
			e = w.Engine
		case Wrapper:
			u := w.Underlying()
			if u == nil {
				return e
			}
			e = u
		default:
			return e
		}
	}
	return e
}
