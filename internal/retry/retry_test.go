package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

var errTransient = errors.New("transient")

func isTransient(err error) bool { return errors.Is(err, errTransient) }

func fastPolicy() Policy {
	return Policy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond, Factor: 2}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), isTransient, func() error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want nil and 1", err, calls)
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), isTransient, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("attempt %d: %w", calls, errTransient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil and 3", err, calls)
	}
}

func TestDoGivesUpAfterAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), isTransient, func() error {
		calls++
		return errTransient
	})
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want errTransient", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoPermanentErrorNoRetry(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Do(context.Background(), fastPolicy(), isTransient, func() error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the permanent error after 1 call", err, calls)
	}
}

func TestDoHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{Attempts: 5, Base: time.Hour}, isTransient, func() error {
		calls++
		cancel() // cancel during the first backoff wait
		return errTransient
	})
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want the last op error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (backoff aborted by cancellation)", calls)
	}
}
