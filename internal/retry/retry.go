// Package retry is a minimal bounded-exponential-backoff helper for
// transient I/O faults: a fixed number of attempts with multiplicatively
// growing, capped delays, early exit on context cancellation, and a
// caller-supplied predicate separating transient failures (worth another
// attempt) from permanent ones (corruption, validation errors) that must
// surface immediately.
//
// The delays are deterministic — no jitter — so fault-injection tests can
// assert exact attempt counts.
package retry

import (
	"context"
	"fmt"
	"time"
)

// Policy bounds a retry loop.
type Policy struct {
	// Attempts is the total number of tries, the first included.
	// Default 3; values < 1 behave as 1 (no retry).
	Attempts int
	// Base is the delay before the second attempt. Default 5ms.
	Base time.Duration
	// Max caps the per-attempt delay. Default 250ms.
	Max time.Duration
	// Factor multiplies the delay after each attempt. Default 2.
	Factor float64
}

func (p Policy) withDefaults() Policy {
	if p.Attempts == 0 {
		p.Attempts = 3
	}
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 250 * time.Millisecond
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	return p
}

// Do runs op until it succeeds, the attempts are exhausted, the error is
// not transient, or ctx is done. transient == nil treats every error as
// transient. The returned error is the last attempt's, annotated with the
// attempt count when more than one attempt ran.
func Do(ctx context.Context, p Policy, transient func(error) bool, op func() error) error {
	p = p.withDefaults()
	delay := p.Base
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if transient != nil && !transient(err) {
			return err
		}
		if attempt >= p.Attempts {
			if attempt > 1 {
				return fmt.Errorf("after %d attempts: %w", attempt, err)
			}
			return err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("retry aborted after %d attempt(s) (%w): last error: %w", attempt, ctx.Err(), err)
		case <-time.After(delay):
		}
		delay = time.Duration(float64(delay) * p.Factor)
		if delay > p.Max {
			delay = p.Max
		}
	}
}
