package audit

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// TestSLOLatencyBudget drives the latency objective from healthy to
// breached and back, checking gauge, causes, and alert transitions.
func TestSLOLatencyBudget(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	lat := obs.NewHistogram(nil)
	m := NewMonitor(nil, lat, SLOConfig{
		P99Target:   50 * time.Millisecond,
		WindowTicks: 4,
		MinEvents:   10,
		Registry:    reg,
		Log:         obs.NewJSONLog(&logBuf),
	})

	// Healthy tick: all fast.
	for i := 0; i < 50; i++ {
		lat.Observe(0.001)
	}
	m.Evaluate()
	if st := m.Status(); st.Breached {
		t.Fatalf("healthy run breached: %+v", st)
	}

	// 20% of queries over target: 20x the 1% budget.
	for i := 0; i < 40; i++ {
		lat.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		lat.Observe(0.5)
	}
	m.Evaluate()
	st := m.Status()
	if !st.Breached || len(st.Causes) != 1 || st.Causes[0].Objective != "latency_p99" {
		t.Fatalf("expected latency breach: %+v", st)
	}
	if st.Causes[0].BudgetUsed < 1 {
		t.Fatalf("budget used = %g, want >= 1", st.Causes[0].BudgetUsed)
	}
	if reg.Collect()["pass_slo_breached"] != 1 {
		t.Fatal("pass_slo_breached gauge not set")
	}

	// Recovery: fast ticks push the bad tick out of the 4-tick window.
	for tick := 0; tick < 5; tick++ {
		for i := 0; i < 100; i++ {
			lat.Observe(0.001)
		}
		m.Evaluate()
	}
	if st := m.Status(); st.Breached {
		t.Fatalf("window never recovered: %+v", st)
	}
	if reg.Collect()["pass_slo_breached"] != 0 {
		t.Fatal("gauge must clear on recovery")
	}

	// Exactly two transitions, each one alert line.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("alert lines = %d, want 2:\n%s", len(lines), logBuf.String())
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first["event"] != "slo_alert" || first["state"] != "breached" || second["state"] != "recovered" {
		t.Fatalf("alert sequence wrong: %v / %v", first, second)
	}
}

// TestSLOCoverageBudget drives the per-table coverage objective through
// an auditor with a failing table.
func TestSLOCoverageBudget(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Config{SampleFraction: 1, QueueSize: 1024, Registry: reg})
	tt := &truthTable{truth: 100, gen: 0}
	a.RegisterSource("bad", tt.exact)
	a.RegisterSource("good", tt.exact)

	m := NewMonitor(a, nil, SLOConfig{
		CoverageTarget: 0.95,
		WindowTicks:    4,
		MinEvents:      10,
		Registry:       reg,
	})

	// good: always covered; bad: half the CIs miss the truth.
	for i := 0; i < 40; i++ {
		a.Observe("good", dataset.Sum, rect1(0, 1), core.Result{Estimate: 100, CIHalf: 1}, 0)
		est := 100.0
		if i%2 == 0 {
			est = 50 // CI nowhere near the truth
		}
		a.Observe("bad", dataset.Sum, rect1(0, 1), core.Result{Estimate: est, CIHalf: 1}, 0)
	}
	a.Flush()
	m.Evaluate()

	st := m.Status()
	if !st.Breached || len(st.Causes) != 1 {
		t.Fatalf("expected one coverage breach: %+v", st)
	}
	c := st.Causes[0]
	if c.Objective != "coverage" || c.Table != "bad" {
		t.Fatalf("wrong cause: %+v", c)
	}
	if c.Observed > 0.6 || c.Observed < 0.4 {
		t.Fatalf("observed coverage = %g, want ~0.5", c.Observed)
	}
	if v := reg.Collect()[`pass_slo_budget_used{objective="coverage",table="bad"}`]; v < 1 {
		t.Fatalf("budget gauge for bad table = %g, want >= 1", v)
	}
}

// TestSLOMinEvents checks a tiny stream cannot breach.
func TestSLOMinEvents(t *testing.T) {
	reg := obs.NewRegistry()
	lat := obs.NewHistogram(nil)
	m := NewMonitor(nil, lat, SLOConfig{
		P99Target:   time.Millisecond,
		WindowTicks: 4,
		MinEvents:   100,
		Registry:    reg,
	})
	for i := 0; i < 5; i++ {
		lat.Observe(1) // all terrible, but only five events
	}
	m.Evaluate()
	if st := m.Status(); st.Breached {
		t.Fatalf("breached under MinEvents: %+v", st)
	}
}

// TestSLOStartStop exercises the background loop lifecycle.
func TestSLOStartStop(t *testing.T) {
	m := NewMonitor(nil, obs.NewHistogram(nil), SLOConfig{
		P99Target: time.Second,
		Registry:  obs.NewRegistry(),
	})
	m.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for m.Status().Evaluations == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop()
	if m.Status().Evaluations == 0 {
		t.Fatal("loop never evaluated")
	}

	idle := NewMonitor(nil, nil, SLOConfig{Registry: obs.NewRegistry()})
	idle.Stop() // never started: must not hang
}

// TestCountAbove checks the bucket interpolation math.
func TestCountAbove(t *testing.T) {
	h := obs.NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 10; i++ {
		h.Observe(0.005) // bucket (0, 0.01]
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // bucket (0.1, 1]
	}
	for i := 0; i < 5; i++ {
		h.Observe(2) // +Inf bucket
	}
	s := h.Snapshot()
	if got := countAbove(s, 1); got != 5 {
		t.Fatalf("countAbove(1) = %g, want 5 (+Inf bucket only)", got)
	}
	if got := countAbove(s, 0.1); got != 15 {
		t.Fatalf("countAbove(0.1) = %g, want 15", got)
	}
	// Mid-bucket: (1-0.55)/(1-0.1) of the 10 mid observations + 5 overflow.
	got := countAbove(s, 0.55)
	want := 10*(1-0.55)/(1-0.1) + 5
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("countAbove(0.55) = %g, want %g", got, want)
	}
	if got := countAbove(obs.HistogramSnapshot{}, 1); got != 0 {
		t.Fatalf("empty snapshot: %g", got)
	}
}
