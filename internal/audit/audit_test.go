package audit

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
)

func rect1(lo, hi float64) dataset.Rect {
	return dataset.Rect{Lo: []float64{lo}, Hi: []float64{hi}}
}

// truthTable is a test ExactFn backed by a fixed answer and generation.
type truthTable struct {
	mu    sync.Mutex
	truth float64
	gen   uint64
}

func (tt *truthTable) exact(dataset.AggKind, dataset.Rect) (float64, uint64, error) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.truth, tt.gen, nil
}

// TestAuditorScoring drives covered, uncovered, hard-violated, and
// degraded samples through Flush and checks the stats and metrics.
func TestAuditorScoring(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Config{SampleFraction: 1, Registry: reg})
	tt := &truthTable{truth: 100, gen: 4}
	a.RegisterSource("demo", tt.exact)

	covered := core.Result{Estimate: 99, CIHalf: 2, HardLo: 90, HardHi: 110, HardValid: true}
	a.Observe("demo", dataset.Sum, rect1(0, 1), covered, 4)

	missed := core.Result{Estimate: 90, CIHalf: 2, HardLo: 80, HardHi: 120, HardValid: true}
	a.Observe("demo", dataset.Sum, rect1(0, 2), missed, 4)

	violated := core.Result{Estimate: 80, CIHalf: 1, HardLo: 70, HardHi: 90, HardValid: true}
	a.Observe("demo", dataset.Sum, rect1(0, 3), violated, 4)

	degraded := core.Result{Estimate: 50, CIHalf: 200, Degraded: true}
	a.Observe("demo", dataset.Sum, rect1(0, 4), degraded, 4)

	a.Flush()

	stats := a.Stats()
	normal := stats[Key{Table: "demo", Kind: dataset.Sum}]
	if normal.Audited != 3 || normal.Covered != 1 || normal.HardViolations != 1 {
		t.Fatalf("normal stream: %+v", normal)
	}
	deg := stats[Key{Table: "demo", Kind: dataset.Sum, Degraded: true}]
	if deg.Audited != 1 || deg.Covered != 1 {
		t.Fatalf("degraded stream must be scored separately: %+v", deg)
	}
	if got := normal.Coverage(); got < 0.33 || got > 0.34 {
		t.Fatalf("coverage = %g", got)
	}

	vals := reg.Collect()
	if vals[`pass_audit_audited_total{table="demo",agg="SUM",degraded="false"}`] != 3 {
		t.Fatalf("audited counter missing: %v", vals)
	}
	if vals[`pass_audit_hard_violations_total{table="demo",agg="SUM",degraded="false"}`] != 1 {
		t.Fatalf("hard violation counter missing")
	}
}

// TestAuditorStaleAndNoMatch checks generation-mismatch and no-match
// samples are skipped, not scored.
func TestAuditorStaleAndNoMatch(t *testing.T) {
	a := New(Config{SampleFraction: 1, Registry: obs.NewRegistry()})
	tt := &truthTable{truth: 10, gen: 6}
	a.RegisterSource("demo", tt.exact)

	// Sampled at gen 4, truth computed at gen 6: stale.
	a.Observe("demo", dataset.Count, rect1(0, 1), core.Result{Estimate: 10}, 4)
	// Odd generation: update in flight.
	tt.gen = 7
	a.Observe("demo", dataset.Count, rect1(0, 1), core.Result{Estimate: 10}, 7)
	// NoMatch: dropped at the tap.
	a.Observe("demo", dataset.Count, rect1(0, 1), core.Result{NoMatch: true}, 6)
	a.Flush()

	if len(a.Stats()) != 0 {
		t.Fatalf("stale/no-match samples must not be scored: %v", a.Stats())
	}
	if a.Stale() != 2 {
		t.Fatalf("stale = %d, want 2", a.Stale())
	}
}

// TestAuditorSampling checks the fraction gate: 0 audits nothing, and a
// half fraction lands near half on a large stream.
func TestAuditorSampling(t *testing.T) {
	off := New(Config{SampleFraction: 0, Registry: obs.NewRegistry()})
	off.RegisterSource("demo", (&truthTable{truth: 1, gen: 0}).exact)
	for i := 0; i < 100; i++ {
		off.Observe("demo", dataset.Sum, rect1(0, 1), core.Result{Estimate: 1}, 0)
	}
	off.Flush()
	if len(off.Stats()) != 0 {
		t.Fatal("fraction 0 must audit nothing")
	}

	reg := obs.NewRegistry()
	half := New(Config{SampleFraction: 0.5, QueueSize: 10000, Registry: reg})
	half.RegisterSource("demo", (&truthTable{truth: 1, gen: 0}).exact)
	const n = 4000
	for i := 0; i < n; i++ {
		half.Observe("demo", dataset.Sum, rect1(0, 1), core.Result{Estimate: 1}, 0)
	}
	half.Flush()
	audited := half.Stats()[Key{Table: "demo", Kind: dataset.Sum}].Audited
	if audited < n/3 || audited > 2*n/3 {
		t.Fatalf("half sampling audited %d of %d", audited, n)
	}
}

// TestAuditorQueueOverflow checks the tap never blocks: overflow drops
// are counted.
func TestAuditorQueueOverflow(t *testing.T) {
	a := New(Config{SampleFraction: 1, QueueSize: 4, Registry: obs.NewRegistry()})
	for i := 0; i < 10; i++ {
		a.Observe("demo", dataset.Sum, rect1(0, 1), core.Result{Estimate: 1}, 0)
	}
	if a.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", a.Dropped())
	}
}

// TestAuditorBackgroundWorker checks Start/Stop drains the queue.
func TestAuditorBackgroundWorker(t *testing.T) {
	a := New(Config{SampleFraction: 1, Interval: time.Millisecond, Registry: obs.NewRegistry()})
	a.RegisterSource("demo", (&truthTable{truth: 5, gen: 2}).exact)
	a.Start()
	a.Observe("demo", dataset.Avg, rect1(0, 1), core.Result{Estimate: 5, CIHalf: 1}, 2)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := a.Stats()[Key{Table: "demo", Kind: dataset.Avg}]; st.Audited == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	a.Stop()
	a.Stop()
	if st := a.Stats()[Key{Table: "demo", Kind: dataset.Avg}]; st.Audited != 1 || st.Covered != 1 {
		t.Fatalf("worker never scored the sample: %+v", st)
	}
}

// TestAuditorConcurrent hammers Observe/Flush/Stats/RegisterSource from
// multiple goroutines (meaningful under -race).
func TestAuditorConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Config{SampleFraction: 1, QueueSize: 1024, Registry: reg})
	tt := &truthTable{truth: 7, gen: 0}
	a.RegisterSource("demo", tt.exact)

	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			a.Observe("demo", dataset.Sum, rect1(0, float64(i)), core.Result{Estimate: 7, CIHalf: 1}, 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			a.Flush()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = a.Stats()
			var sb strings.Builder
			_ = reg.WritePrometheus(&sb)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			a.RegisterSource("other", tt.exact)
			a.ForgetSource("other")
		}
	}()
	wg.Wait()
	a.Flush()
}
