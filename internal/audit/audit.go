// Package audit continuously verifies the accuracy guarantees the serving
// layer advertises: it taps a sampled fraction of completed queries,
// re-executes them against exact ground truth, and records CI-coverage
// rates, relative-error distributions, and hard-bound violations per
// (table, aggregate) onto the metrics registry. A companion SLO monitor
// turns coverage and tail latency into error budgets with breach alerts.
//
// The tap runs under the table's read lock, so the hot-path cost is one
// atomic sampling decision; everything else happens on a background
// worker fed through a bounded queue (overflow drops are counted, never
// blocked on). Ground truth is racy by nature — rows keep arriving and
// engines get swapped under the auditor — so every sample carries the
// table generation it executed at, and the exact re-execution is only
// scored when the generation still matches; anything else is counted as
// stale and skipped rather than misattributed.
package audit

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// ErrStale reports that the table's ground truth changed between the
// sampled query and the exact re-execution, so the sample cannot be
// scored soundly.
var ErrStale = errors.New("audit: ground truth changed under the sampled query")

// ExactFn re-executes one aggregate exactly against a table's ground
// truth, returning the truth and the table generation it was computed at.
// Implementations return ErrStale when the generation moved mid-read.
type ExactFn func(kind dataset.AggKind, q dataset.Rect) (truth float64, gen uint64, err error)

// SketchTruth is the exact ground truth for one sketch-family audit
// sample; only the field matching the audited kind is set.
type SketchTruth struct {
	// Distinct is the exact distinct count (KindDistinct).
	Distinct float64
	// Counts holds the exact occurrence count of each requested value,
	// aligned by index with the values passed to the SketchExactFn
	// (KindTopK).
	Counts []float64
}

// SketchExactFn re-executes one sketch-family aggregate exactly against
// a table's ground truth. For KindTopK, values lists the heavy-hitter
// values whose exact counts are requested. Implementations return
// ErrStale when the generation moved mid-read. KindQuantile is never
// requested: exact quantile truth needs a full sort of the base rows,
// too expensive for a continuous audit, so quantile answers are skipped
// under the pass_audit_sketch_skipped_total counter instead.
type SketchExactFn func(q sketch.Query, values []float64) (truth SketchTruth, gen uint64, err error)

// RelErrBuckets are the relative-error histogram bounds: 0.01% to 100%.
var RelErrBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// Config parameterizes an Auditor.
type Config struct {
	// SampleFraction is the probability a completed query is audited
	// (clamped to [0,1]; 0 audits nothing but keeps the tap attached).
	SampleFraction float64
	// QueueSize bounds the pending-sample queue (default 256).
	QueueSize int
	// Interval is the background worker's drain cadence (default 1s).
	Interval time.Duration
	// Confidence is the nominal CI confidence level being audited
	// against, for reporting only (default 0.99).
	Confidence float64
	// Registry receives the audit instruments (nil uses obs.Default()).
	Registry *obs.Registry
}

// Key identifies one audited stream: table, aggregate kind, and whether
// the answers were degraded (partial scatter answers are scored
// separately so sound widening is visible, not averaged away).
type Key struct {
	Table    string          `json:"table"`
	Kind     dataset.AggKind `json:"-"`
	Degraded bool            `json:"degraded"`
	// Sketch is the sketch-family aggregate of a sketch stream (zero for
	// scalar streams, whose aggregate is Kind).
	Sketch sketch.Kind `json:"-"`
}

// AggLabel returns the stream's aggregate label the way SQL spells it:
// the sketch kind for sketch-family streams, the scalar kind otherwise.
func (k Key) AggLabel() string {
	if k.Sketch != 0 {
		return k.Sketch.String()
	}
	return k.Kind.String()
}

// Stat is a point-in-time snapshot of one audited stream.
type Stat struct {
	// Audited counts scored samples; Covered counts those whose exact
	// truth fell inside the estimate's confidence interval.
	Audited, Covered int64
	// HardViolations counts samples whose truth escaped the
	// deterministic hard bounds — each one disproves a guarantee.
	HardViolations int64
	// RelErrSum accumulates relative errors (mean = RelErrSum/Audited).
	RelErrSum float64
}

// Coverage returns the empirical CI-coverage rate (1 when nothing was
// audited yet, so an idle stream never looks breached).
func (s Stat) Coverage() float64 {
	if s.Audited == 0 {
		return 1
	}
	return float64(s.Covered) / float64(s.Audited)
}

// sample is one queued audit candidate. The rect is deep-copied at
// enqueue time: the caller's slices are reused by the query path.
type sample struct {
	key Key
	q   dataset.Rect
	r   core.Result
	gen uint64

	// sq/sr replace q/r for sketch-family samples (sq non-nil).
	sq *sketch.Query
	sr sketch.Result
}

// stream is the per-Key accounting plus its registry instruments.
type stream struct {
	stat     Stat
	audited  *obs.Counter
	covered  *obs.Counter
	hardViol *obs.Counter
	relErr   *obs.Histogram
}

// Auditor is the background accuracy auditor. Create with New, feed it
// completed queries via Observe (cheap, lock-safe), and either Start a
// background worker or call Flush synchronously (tests, benchmarks).
type Auditor struct {
	cfg     Config
	reg     *obs.Registry
	queue   chan sample
	seq     atomic.Uint64 // sampling-decision state
	skipped atomic.Int64  // per-auditor sketch-skip count (the registry counter is process-wide)

	mu            sync.Mutex
	sources       map[string]ExactFn
	sketchSources map[string]SketchExactFn
	streams       map[Key]*stream

	enqueued      *obs.Counter
	dropped       *obs.Counter
	stale         *obs.Counter
	sketchSkipped *obs.Counter

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an Auditor; it does not start the background worker.
func New(cfg Config) *Auditor {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		cfg.Confidence = 0.99
	}
	if cfg.SampleFraction < 0 {
		cfg.SampleFraction = 0
	} else if cfg.SampleFraction > 1 {
		cfg.SampleFraction = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	a := &Auditor{
		cfg:           cfg,
		reg:           reg,
		queue:         make(chan sample, cfg.QueueSize),
		sources:       make(map[string]ExactFn),
		sketchSources: make(map[string]SketchExactFn),
		streams:       make(map[Key]*stream),
		enqueued:      reg.NewCounter("pass_audit_enqueued_total", "queries sampled for accuracy auditing"),
		dropped:       reg.NewCounter("pass_audit_dropped_total", "audit samples dropped on queue overflow"),
		stale:         reg.NewCounter("pass_audit_stale_total", "audit samples skipped because ground truth moved"),
		sketchSkipped: reg.NewLabeledCounter("pass_audit_sketch_skipped_total", obs.Labels("kind", "QUANTILE"),
			"sampled sketch answers skipped because exact truth is too expensive to recompute"),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	reg.GaugeFunc("pass_audit_queue_depth", "audit samples awaiting exact re-execution",
		func() float64 { return float64(len(a.queue)) })
	return a
}

// Confidence reports the nominal CI confidence level audited against.
func (a *Auditor) Confidence() float64 { return a.cfg.Confidence }

// SampleFraction reports the configured audit sampling fraction.
func (a *Auditor) SampleFraction() float64 { return a.cfg.SampleFraction }

// RegisterSource wires a table's exact re-execution hook. Re-registering
// replaces; tables without a source are observed but never scored.
func (a *Auditor) RegisterSource(table string, fn ExactFn) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if fn == nil {
		delete(a.sources, table)
		return
	}
	a.sources[table] = fn
}

// RegisterSketchSource wires a table's exact sketch re-execution hook.
// Re-registering replaces; tables without one are observed but never
// scored.
func (a *Auditor) RegisterSketchSource(table string, fn SketchExactFn) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if fn == nil {
		delete(a.sketchSources, table)
		return
	}
	a.sketchSources[table] = fn
}

// ForgetSource detaches a table's exact re-execution hooks.
func (a *Auditor) ForgetSource(table string) {
	a.RegisterSource(table, nil)
	a.RegisterSketchSource(table, nil)
}

// Observe feeds one completed query to the auditor. Called under the
// table's read lock: the fast path is one atomic add plus a splitmix
// hash; selected samples deep-copy the rect and enqueue without
// blocking (overflow increments the dropped counter).
func (a *Auditor) Observe(table string, kind dataset.AggKind, q dataset.Rect, r core.Result, gen uint64) {
	if r.NoMatch {
		return // no defined truth to compare against
	}
	if !a.sampled() {
		return
	}
	s := sample{
		key: Key{Table: table, Kind: kind, Degraded: r.Degraded},
		q:   dataset.Rect{Lo: append([]float64(nil), q.Lo...), Hi: append([]float64(nil), q.Hi...)},
		r:   r,
		gen: gen,
	}
	select {
	case a.queue <- s:
		a.enqueued.Inc()
	default:
		a.dropped.Inc()
	}
}

// ObserveSketch feeds one completed sketch-family query to the auditor
// (same contract as Observe: called under the table's read lock, cheap
// fast path, non-blocking enqueue). QUANTILE answers are skipped under
// a labeled counter rather than mis-scored — their exact truth needs a
// full sort of the base rows, too expensive for a continuous audit.
func (a *Auditor) ObserveSketch(table string, q sketch.Query, r sketch.Result, gen uint64) {
	if !a.sampled() {
		return
	}
	if q.Kind == sketch.KindQuantile {
		a.sketchSkipped.Inc()
		a.skipped.Add(1)
		return
	}
	s := sample{
		key: Key{Table: table, Sketch: q.Kind},
		sq:  &q,
		sr:  r,
		gen: gen,
	}
	select {
	case a.queue <- s:
		a.enqueued.Inc()
	default:
		a.dropped.Inc()
	}
}

// sampled makes one audit sampling decision: a deterministic per-auditor
// hash of a sequence number, so the query path never consults a locked
// RNG.
func (a *Auditor) sampled() bool {
	f := a.cfg.SampleFraction
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	h := splitmix64(a.seq.Add(1))
	return float64(h>>11)/(1<<53) < f
}

// Start launches the background worker draining the queue at the
// configured cadence. Call at most once.
func (a *Auditor) Start() {
	if !a.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				a.Flush()
				return
			case <-t.C:
				a.Flush()
			}
		}
	}()
}

// Stop halts the worker after a final drain. Safe to call multiple
// times, and without Start.
func (a *Auditor) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	if a.started.Load() {
		<-a.done
	}
}

// Flush synchronously drains and scores every currently queued sample.
// Tests and benchmarks call it directly instead of Start.
func (a *Auditor) Flush() {
	for {
		select {
		case s := <-a.queue:
			a.process(s)
		default:
			return
		}
	}
}

// process scores one sample against exact ground truth.
func (a *Auditor) process(s sample) {
	if s.sq != nil {
		a.processSketch(s)
		return
	}
	a.mu.Lock()
	fn := a.sources[s.key.Table]
	a.mu.Unlock()
	if fn == nil {
		return
	}
	truth, gen, err := fn(s.key.Kind, s.q)
	if err != nil {
		a.stale.Inc()
		return
	}
	// Sound scoring requires the truth to describe the same data the
	// estimate saw: identical generation, and an even reading (odd means
	// a shared-lock update was mid-flight on either side).
	if gen != s.gen || gen%2 != 0 {
		a.stale.Inc()
		return
	}
	tol := 1e-9 * max(1, absf(truth))
	covered := absf(truth-s.r.Estimate) <= s.r.CIHalf+tol
	hardViolated := s.r.HardValid && (truth < s.r.HardLo-tol || truth > s.r.HardHi+tol)
	a.score(s.key, covered, hardViolated, s.r.RelativeError(truth))
}

// processSketch scores one sketch-family sample: COUNT DISTINCT against
// its 3-sigma interval, TOPK entry counts against their hard per-entry
// error bounds.
func (a *Auditor) processSketch(s sample) {
	a.mu.Lock()
	fn := a.sketchSources[s.key.Table]
	a.mu.Unlock()
	if fn == nil {
		return
	}
	var values []float64
	if s.sq.Kind == sketch.KindTopK {
		values = make([]float64, len(s.sr.Entries))
		for i, e := range s.sr.Entries {
			values[i] = e.Value
		}
	}
	truth, gen, err := fn(*s.sq, values)
	if err != nil {
		a.stale.Inc()
		return
	}
	if gen != s.gen || gen%2 != 0 {
		a.stale.Inc()
		return
	}
	var covered, hardViolated bool
	var relErr float64
	switch s.sq.Kind {
	case sketch.KindDistinct:
		tol := 1e-9 * max(1, truth.Distinct)
		covered = truth.Distinct >= s.sr.Lo-tol && truth.Distinct <= s.sr.Hi+tol
		relErr = absf(s.sr.Value-truth.Distinct) / max(1, truth.Distinct)
	case sketch.KindTopK:
		covered = true
		for i, e := range s.sr.Entries {
			d := absf(e.Count - truth.Counts[i])
			if d > e.ErrBound+1e-9*max(1, truth.Counts[i]) {
				covered, hardViolated = false, true
			}
			if re := d / max(1, truth.Counts[i]); re > relErr {
				relErr = re
			}
		}
	default:
		return
	}
	a.score(s.key, covered, hardViolated, relErr)
}

// score folds one audited sample into its stream's accounting and
// registry instruments.
func (a *Auditor) score(key Key, covered, hardViolated bool, relErr float64) {
	st := a.streamFor(key)
	a.mu.Lock()
	st.stat.Audited++
	if covered {
		st.stat.Covered++
	}
	if hardViolated {
		st.stat.HardViolations++
	}
	st.stat.RelErrSum += relErr
	a.mu.Unlock()

	st.audited.Inc()
	if covered {
		st.covered.Inc()
	}
	if hardViolated {
		st.hardViol.Inc()
	}
	st.relErr.Observe(relErr)
}

// streamFor returns (creating on first use) the per-Key accounting and
// its labeled registry instruments.
func (a *Auditor) streamFor(k Key) *stream {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.streams[k]; ok {
		return st
	}
	degraded := "false"
	if k.Degraded {
		degraded = "true"
	}
	labels := obs.Labels("table", k.Table, "agg", k.AggLabel(), "degraded", degraded)
	st := &stream{
		audited:  a.reg.NewLabeledCounter("pass_audit_audited_total", labels, "audited queries scored against exact truth"),
		covered:  a.reg.NewLabeledCounter("pass_audit_covered_total", labels, "audited queries whose CI contained the exact truth"),
		hardViol: a.reg.NewLabeledCounter("pass_audit_hard_violations_total", labels, "audited queries whose truth escaped the hard bounds"),
		relErr:   a.reg.NewLabeledHistogram("pass_audit_rel_error", labels, "relative error of audited estimates", RelErrBuckets),
	}
	a.streams[k] = st
	return st
}

// Stats snapshots every audited stream.
func (a *Auditor) Stats() map[Key]Stat {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[Key]Stat, len(a.streams))
	for k, st := range a.streams {
		out[k] = st.stat
	}
	return out
}

// Dropped reports how many samples overflowed the queue.
func (a *Auditor) Dropped() int64 { return a.dropped.Value() }

// Stale reports how many samples were skipped as stale.
func (a *Auditor) Stale() int64 { return a.stale.Value() }

// SketchSkipped reports how many sampled sketch answers this auditor
// skipped because exact truth is too expensive to recompute (QUANTILE).
func (a *Auditor) SketchSkipped() int64 { return a.skipped.Load() }

// splitmix64 is the SplitMix64 mixing function — a full-avalanche hash
// used for the per-query sampling decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
