package audit

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Error-budget SLOs over the audit and latency streams. Each Evaluate
// tick diffs the underlying counters against the previous tick, pushes
// the per-tick deltas into a bounded ring (the SLO window), and scores
// the window: a latency objective "p99 < target" allows 1% of queries
// over the target, a coverage objective "coverage >= target" allows
// 1-target misses per audited query. Budget used is the miss fraction
// divided by the allowance — crossing 1.0 with enough events flips the
// pass_slo_breached gauge, annotates /readyz and /tables, and emits one
// structured slo_alert log line per state transition.

// SLOConfig parameterizes a Monitor. Zero targets disable the
// corresponding objective.
type SLOConfig struct {
	// CoverageTarget is the minimum acceptable empirical CI coverage
	// per table, e.g. 0.95 (non-degraded answers only).
	CoverageTarget float64
	// P99Target is the latency objective: at most 1% of queries may run
	// longer than this.
	P99Target time.Duration
	// WindowTicks is how many Evaluate ticks the budget window spans
	// (default 60 — five minutes at the default 5s cadence).
	WindowTicks int
	// MinEvents is the minimum window event count before an objective
	// can breach (default 20), so a single slow query on an idle server
	// does not page anyone.
	MinEvents int64
	// Registry receives the SLO gauges (nil uses obs.Default()).
	Registry *obs.Registry
	// Log receives slo_alert lines on breach/recovery (nil disables).
	Log *obs.JSONLog
}

// SLOCause names one objective currently out of budget.
type SLOCause struct {
	// Objective is "latency_p99" or "coverage".
	Objective string `json:"objective"`
	// Table is set for per-table objectives (coverage).
	Table string `json:"table,omitempty"`
	// Target is the configured objective (seconds for latency,
	// coverage rate for coverage).
	Target float64 `json:"target"`
	// Observed is the windowed measurement: miss fraction over target
	// for latency, empirical coverage for coverage.
	Observed float64 `json:"observed"`
	// BudgetUsed is the consumed fraction of the error budget; >= 1
	// means breached.
	BudgetUsed float64 `json:"budget_used"`
	// Events is the window event count backing the measurement.
	Events int64 `json:"events"`
}

// SLOStatus is the monitor's current verdict.
type SLOStatus struct {
	Breached    bool       `json:"breached"`
	Causes      []SLOCause `json:"causes,omitempty"`
	WindowTicks int        `json:"window_ticks"`
	Evaluations int64      `json:"evaluations"`
}

// tickDelta is one window entry: events and misses accrued in one tick.
type tickDelta struct{ miss, total float64 }

// ring is a fixed-size window of tick deltas.
type ring struct {
	buf  []tickDelta
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]tickDelta, n)} }

func (r *ring) push(d tickDelta) {
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

func (r *ring) sum() (miss, total float64) {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	for i := 0; i < n; i++ {
		miss += r.buf[i].miss
		total += r.buf[i].total
	}
	return miss, total
}

// Monitor evaluates the SLO objectives on a fixed cadence.
type Monitor struct {
	cfg SLOConfig
	aud *Auditor
	lat *obs.Histogram

	breachedGauge *obs.Gauge
	budgetLatency *obs.Gauge
	reg           *obs.Registry

	mu       sync.Mutex
	latRing  *ring
	covRings map[string]*ring
	prevLat  obs.HistogramSnapshot
	prevCov  map[Key]Stat
	status   SLOStatus

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMonitor builds a Monitor over an auditor's coverage stats (may be
// nil when only latency is watched) and a query-latency histogram (may
// be nil when only coverage is watched).
func NewMonitor(aud *Auditor, lat *obs.Histogram, cfg SLOConfig) *Monitor {
	if cfg.WindowTicks <= 0 {
		cfg.WindowTicks = 60
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	m := &Monitor{
		cfg:      cfg,
		aud:      aud,
		lat:      lat,
		reg:      reg,
		latRing:  newRing(cfg.WindowTicks),
		covRings: make(map[string]*ring),
		prevCov:  make(map[Key]Stat),
		status:   SLOStatus{WindowTicks: cfg.WindowTicks},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.breachedGauge = reg.NewGauge("pass_slo_breached", "1 while any SLO error budget is exhausted")
	m.budgetLatency = reg.NewLabeledGauge("pass_slo_budget_used", obs.Labels("objective", "latency_p99"),
		"consumed fraction of the SLO error budget")
	if m.lat != nil {
		m.prevLat = m.lat.Snapshot()
	}
	return m
}

// Start launches the evaluation loop at the given cadence (<=0 defaults
// to 5s). Call at most once.
func (m *Monitor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	m.mu.Lock()
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Evaluate()
			}
		}
	}()
}

// Stop halts the evaluation loop. Safe to call multiple times and
// without Start.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// Status reports the verdict of the latest Evaluate.
func (m *Monitor) Status() SLOStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.status
	out.Causes = append([]SLOCause(nil), m.status.Causes...)
	return out
}

// Evaluate runs one SLO tick: diff the sources, roll the window, score
// the budgets, flip the gauge, and emit an alert line on transitions.
// Exported so tests (and operators via signals, if ever wired) can
// force a deterministic evaluation.
func (m *Monitor) Evaluate() {
	m.mu.Lock()
	var causes []SLOCause

	if m.lat != nil && m.cfg.P99Target > 0 {
		snap := m.lat.Snapshot()
		d := tickDelta{
			miss:  countAbove(snap, m.cfg.P99Target.Seconds()) - countAbove(m.prevLat, m.cfg.P99Target.Seconds()),
			total: float64(snap.Count - m.prevLat.Count),
		}
		if d.miss < 0 {
			d.miss = 0
		}
		if d.total < 0 {
			d.total = 0
		}
		m.prevLat = snap
		m.latRing.push(d)
		miss, total := m.latRing.sum()
		const allowed = 0.01 // p99 objective: 1% of queries may exceed the target
		used := 0.0
		if total > 0 {
			used = (miss / total) / allowed
		}
		m.budgetLatency.Set(used)
		if used >= 1 && int64(total) >= m.cfg.MinEvents {
			causes = append(causes, SLOCause{
				Objective:  "latency_p99",
				Target:     m.cfg.P99Target.Seconds(),
				Observed:   miss / total,
				BudgetUsed: used,
				Events:     int64(total),
			})
		}
	}

	if m.aud != nil && m.cfg.CoverageTarget > 0 {
		allowed := 1 - m.cfg.CoverageTarget
		if allowed <= 0 {
			allowed = 1e-9 // a 100% target leaves no budget at all
		}
		// Per-table non-degraded miss deltas, aggregated across agg kinds.
		deltas := make(map[string]tickDelta)
		for k, st := range m.aud.Stats() {
			if k.Degraded {
				continue // widened partial answers are tracked, not paged on
			}
			prev := m.prevCov[k]
			m.prevCov[k] = st
			d := deltas[k.Table]
			d.total += float64(st.Audited - prev.Audited)
			d.miss += float64((st.Audited - prev.Audited) - (st.Covered - prev.Covered))
			if d.miss < 0 {
				d.miss = 0
			}
			deltas[k.Table] = d
		}
		for table, d := range deltas {
			r, ok := m.covRings[table]
			if !ok {
				r = newRing(m.cfg.WindowTicks)
				m.covRings[table] = r
			}
			r.push(d)
		}
		for table, r := range m.covRings {
			miss, total := r.sum()
			used := 0.0
			if total > 0 {
				used = (miss / total) / allowed
			}
			m.reg.NewLabeledGauge("pass_slo_budget_used",
				obs.Labels("objective", "coverage", "table", table),
				"consumed fraction of the SLO error budget").Set(used)
			if used >= 1 && int64(total) >= m.cfg.MinEvents {
				causes = append(causes, SLOCause{
					Objective:  "coverage",
					Table:      table,
					Target:     m.cfg.CoverageTarget,
					Observed:   1 - miss/total,
					BudgetUsed: used,
					Events:     int64(total),
				})
			}
		}
	}

	wasBreached := m.status.Breached
	m.status = SLOStatus{
		Breached:    len(causes) > 0,
		Causes:      causes,
		WindowTicks: m.cfg.WindowTicks,
		Evaluations: m.status.Evaluations + 1,
	}
	if m.status.Breached {
		m.breachedGauge.Set(1)
	} else {
		m.breachedGauge.Set(0)
	}
	nowBreached := m.status.Breached
	log := m.cfg.Log
	m.mu.Unlock()

	if log != nil && nowBreached != wasBreached {
		state := "recovered"
		if nowBreached {
			state = "breached"
		}
		log.Emit("slo_alert", map[string]any{
			"state":  state,
			"causes": causes,
		})
	}
}

// countAbove estimates how many of a histogram snapshot's observations
// exceeded the threshold: full counts of the buckets above it, plus a
// linear share of the bucket containing it.
func countAbove(s obs.HistogramSnapshot, threshold float64) float64 {
	if s.Count == 0 {
		return 0
	}
	above := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i == len(s.Bounds) {
			// +Inf bucket: exact positions are unknown, so count the whole
			// bucket as over — conservative for the budget.
			above += float64(c)
			continue
		}
		hi := s.Bounds[i]
		switch {
		case threshold >= hi:
			// bucket entirely at or under the threshold
		case threshold <= lo:
			above += float64(c)
		default:
			above += float64(c) * (hi - threshold) / (hi - lo)
		}
	}
	return above
}
