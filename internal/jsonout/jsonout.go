// Package jsonout defines the machine-readable wire form of approximate
// answers, shared by every JSON-emitting surface (cmd/passquery -json,
// the cmd/passd HTTP API) so the schema cannot silently fork between
// them.
package jsonout

import "repro/pass"

// Answer is the wire form of one approximate answer.
type Answer struct {
	Estimate   float64 `json:"estimate"`
	CIHalf     float64 `json:"ci_half"`
	HardLo     float64 `json:"hard_lo,omitempty"`
	HardHi     float64 `json:"hard_hi,omitempty"`
	HardBounds bool    `json:"hard_bounds,omitempty"`
	Exact      bool    `json:"exact,omitempty"`
	TuplesRead int     `json:"tuples_read"`
	SkipRate   float64 `json:"skip_rate"`

	// Degraded marks answers merged from fewer shards than the scatter
	// touched (errored or past-deadline shards dropped); the shard counts
	// quantify how much of the table actually answered.
	Degraded       bool `json:"degraded,omitempty"`
	ShardsTotal    int  `json:"shards_total,omitempty"`
	ShardsAnswered int  `json:"shards_answered,omitempty"`
}

// Sketch is the wire form of a sketch-family answer (QUANTILE, COUNT
// DISTINCT, TOPK). The [lo, hi] interval is the sketch's guarantee
// interval, not a sampling confidence interval.
type Sketch struct {
	Kind    string        `json:"kind"`
	Value   float64       `json:"value,omitempty"`
	Lo      float64       `json:"lo,omitempty"`
	Hi      float64       `json:"hi,omitempty"`
	Bound   float64       `json:"bound"`
	Entries []SketchEntry `json:"entries,omitempty"`
	Rows    int64         `json:"rows"`
}

// SketchEntry is one TOPK heavy hitter on the wire.
type SketchEntry struct {
	Value    float64 `json:"value"`
	Count    float64 `json:"count"`
	ErrBound float64 `json:"err_bound"`
}

// FromSketch converts a public sketch answer to its wire form.
func FromSketch(a *pass.SketchAnswer) *Sketch {
	if a == nil {
		return nil
	}
	out := &Sketch{
		Kind:  a.Kind,
		Value: a.Value,
		Lo:    a.Lo,
		Hi:    a.Hi,
		Bound: a.Bound,
		Rows:  a.Rows,
	}
	for _, e := range a.Entries {
		out.Entries = append(out.Entries, SketchEntry{Value: e.Value, Count: e.Count, ErrBound: e.ErrBound})
	}
	return out
}

// Group is one group's answer in a GROUP BY result.
type Group struct {
	Group   float64 `json:"group"`
	Label   string  `json:"label,omitempty"`
	NoMatch bool    `json:"no_match,omitempty"`
	Answer  *Answer `json:"answer,omitempty"`
}

// FromAnswer converts a public answer to its wire form. Hard bounds are
// emitted only when valid — they are meaningless otherwise, and the JSON
// encoder rejects the non-finite values they may hold.
func FromAnswer(a pass.Answer) *Answer {
	out := &Answer{
		Estimate:   a.Estimate,
		CIHalf:     a.CIHalf,
		HardBounds: a.HardBounds,
		Exact:      a.Exact,
		TuplesRead: a.TuplesRead,
		SkipRate:   a.SkipRate,
	}
	if a.Degraded {
		out.Degraded = true
		out.ShardsTotal, out.ShardsAnswered = a.ShardsTotal, a.ShardsAnswered
	}
	if a.HardBounds {
		out.HardLo, out.HardHi = a.HardLo, a.HardHi
	}
	return out
}

// FromGroups converts per-group answers to their wire form.
func FromGroups(groups []pass.GroupAnswer) []Group {
	out := make([]Group, len(groups))
	for i, g := range groups {
		jg := Group{Group: g.Group, Label: g.Label, NoMatch: g.NoMatch}
		if !g.NoMatch {
			jg.Answer = FromAnswer(g.Answer)
		}
		out[i] = jg
	}
	return out
}
