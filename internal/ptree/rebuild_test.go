package ptree

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/partition"
)

func TestFromLeavesRoundTrip(t *testing.T) {
	d := dataset.GenUniform(1000, 1, 100, 41)
	orig, err := Build(d, partition.EqualDepth(1000, 16))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := FromLeaves(orig.LeafSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumLeaves() != orig.NumLeaves() || rebuilt.NumNodes() != orig.NumNodes() {
		t.Fatalf("shape mismatch: %d/%d leaves, %d/%d nodes",
			rebuilt.NumLeaves(), orig.NumLeaves(), rebuilt.NumNodes(), orig.NumNodes())
	}
	if err := rebuilt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ro, rr := orig.Root(), rebuilt.Root()
	if ro.N != rr.N || math.Abs(ro.Sum-rr.Sum) > 1e-9 || ro.Min != rr.Min || ro.Max != rr.Max {
		t.Errorf("root aggregates diverge: %+v vs %+v", ro, rr)
	}
	// frontiers must agree on random queries
	for _, q := range []dataset.Rect{
		dataset.Rect1(0.1, 0.5), dataset.Rect1(0.33, 0.34), dataset.Rect1(-1, 2),
	} {
		f1 := orig.Frontier(q, false)
		f2 := rebuilt.Frontier(q, false)
		if len(f1.Cover) != len(f2.Cover) || len(f1.Partial) != len(f2.Partial) {
			t.Errorf("frontier mismatch for %v", q)
		}
	}
}

func TestFromLeavesRejectsBadInput(t *testing.T) {
	if _, err := FromLeaves(nil); err == nil {
		t.Error("empty leaves accepted")
	}
	var a Agg
	a.Add(1)
	bad := []LeafSpec{
		{Lo: 0, Hi: 1, ILo: 0, IHi: 1, Agg: a},
		{Lo: 2, Hi: 3, ILo: 5, IHi: 6, Agg: a}, // gap in index ranges
	}
	if _, err := FromLeaves(bad); err == nil {
		t.Error("non-abutting leaves accepted")
	}
	empty := []LeafSpec{{Lo: 0, Hi: 1, ILo: 0, IHi: 0}}
	if _, err := FromLeaves(empty); err == nil {
		t.Error("empty leaf accepted")
	}
}
