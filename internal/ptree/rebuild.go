package ptree

import "fmt"

// LeafSpec describes one leaf partition for reconstructing a tree without
// the original dataset — the payload a serialized synopsis stores.
type LeafSpec struct {
	// Lo and Hi are the leaf's predicate-value range.
	Lo, Hi float64
	// ILo and IHi are the sorted-data index range (retained so ESS
	// accounting and invariants survive a round-trip).
	ILo, IHi int
	// Agg are the leaf's precomputed aggregates.
	Agg Agg
}

// FromLeaves reconstructs a partition tree bottom-up from leaf
// specifications, exactly as Build would have produced over the original
// data. Leaves must be in predicate order and non-empty.
func FromLeaves(leaves []LeafSpec) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("ptree: FromLeaves with no leaves")
	}
	t := &Tree{}
	var layer []int
	for i, ls := range leaves {
		if ls.Agg.N <= 0 || ls.IHi <= ls.ILo {
			return nil, fmt.Errorf("ptree: leaf %d is empty", i)
		}
		if i > 0 && ls.ILo != leaves[i-1].IHi {
			return nil, fmt.Errorf("ptree: leaf %d does not abut its predecessor", i)
		}
		id := len(t.nodes)
		t.nodes = append(t.nodes, node{
			lo: ls.Lo, hi: ls.Hi,
			iLo: ls.ILo, iHi: ls.IHi,
			agg:    ls.Agg,
			leaf:   len(t.leaves),
			parent: -1,
		})
		t.leaves = append(t.leaves, id)
		layer = append(layer, id)
	}
	t.buildUp(layer, 2)
	return t, nil
}

// LeafSpecs extracts the leaf specifications of a tree (the inverse of
// FromLeaves).
func (t *Tree) LeafSpecs() []LeafSpec {
	out := make([]LeafSpec, len(t.leaves))
	for i, id := range t.leaves {
		n := t.nodes[id]
		out[i] = LeafSpec{Lo: n.lo, Hi: n.hi, ILo: n.iLo, IHi: n.iHi, Agg: n.agg}
	}
	return out
}
