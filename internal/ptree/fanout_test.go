package ptree

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/stats"
)

func TestBuildFanoutStructure(t *testing.T) {
	d := dataset.GenUniform(1000, 1, 100, 91)
	for _, fanout := range []int{2, 3, 4, 8} {
		tr, err := BuildFanout(d, partition.EqualDepth(1000, 16), fanout)
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if tr.NumLeaves() != 16 {
			t.Fatalf("fanout %d: leaves = %d", fanout, tr.NumLeaves())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if tr.Root().N != 1000 {
			t.Fatalf("fanout %d: root N = %d", fanout, tr.Root().N)
		}
	}
	// higher fanout → strictly fewer nodes and lower height
	t2, _ := BuildFanout(d, partition.EqualDepth(1000, 64), 2)
	t8, _ := BuildFanout(d, partition.EqualDepth(1000, 64), 8)
	if t8.NumNodes() >= t2.NumNodes() {
		t.Errorf("fanout 8 nodes %d should be < fanout 2 nodes %d", t8.NumNodes(), t2.NumNodes())
	}
	if t8.Height() >= t2.Height() {
		t.Errorf("fanout 8 height %d should be < fanout 2 height %d", t8.Height(), t2.Height())
	}
}

func TestBuildFanoutRejectsBad(t *testing.T) {
	d := dataset.GenUniform(10, 1, 1, 92)
	if _, err := BuildFanout(d, partition.EqualDepth(10, 2), 1); err == nil {
		t.Error("fanout 1 accepted")
	}
}

// The Section 4.1 claim: the frontier classification — and hence every
// estimate — is identical across fanouts; only the visit count differs.
func TestFanoutDoesNotChangeFrontierContents(t *testing.T) {
	d := dataset.GenNYCTaxi(3000, 1, 93)
	sorted := d.Clone()
	sorted.SortByPred(0)
	p := partition.EqualDepth(3000, 32)
	t2, err := BuildFanout(sorted, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := BuildFanout(sorted, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(94)
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Float64()*24, rng.Float64()*24
		q := dataset.Rect1(math.Min(a, b), math.Max(a, b))
		f2 := t2.Frontier(q, false)
		f4 := t4.Frontier(q, false)
		// covered tuple mass and partial leaf sets must agree exactly
		if f2.CoverAgg().N != f4.CoverAgg().N {
			t.Fatalf("trial %d: cover mass differs: %d vs %d", trial, f2.CoverAgg().N, f4.CoverAgg().N)
		}
		if len(f2.Partial) != len(f4.Partial) {
			t.Fatalf("trial %d: partial count differs: %d vs %d", trial, len(f2.Partial), len(f4.Partial))
		}
		for i := range f2.Partial {
			if f2.Partial[i].Leaf != f4.Partial[i].Leaf {
				t.Fatalf("trial %d: partial leaf sets differ", trial)
			}
		}
	}
}

func TestFanoutLocateLeafAgrees(t *testing.T) {
	d := dataset.GenUniform(500, 1, 100, 95)
	p := partition.EqualDepth(500, 20)
	t2, _ := BuildFanout(d, p, 2)
	t5, _ := BuildFanout(d, p, 5)
	rng := stats.NewRNG(96)
	for trial := 0; trial < 200; trial++ {
		v := rng.Float64()
		if t2.LocateLeaf(v) != t5.LocateLeaf(v) {
			t.Fatalf("LocateLeaf(%v) differs across fanouts", v)
		}
	}
}
