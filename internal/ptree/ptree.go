// Package ptree implements the PASS partition tree for one predicate
// dimension: a balanced binary tree built bottom-up over an optimised leaf
// partitioning, with SUM/COUNT/MIN/MAX aggregates at every node
// (Section 3.2 of the paper), the Minimal Coverage Frontier algorithm
// (Algorithm 1), the 0-variance rule, and O(height) statistics maintenance
// under inserts and deletes.
//
// The shared Agg and Frontier types defined here are also used by the
// multi-dimensional trees in package kdtree and by the query engine in
// package core.
package ptree

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// Agg is the per-partition aggregate record: the four statistics PASS
// precomputes for every node, plus the sum of squares (used by the
// 0-variance rule and by delta-encoded sample compression).
type Agg struct {
	N          int
	Sum, SumSq float64
	Min, Max   float64
}

// Add folds one value into the record.
func (a *Agg) Add(v float64) {
	a.N++
	a.Sum += v
	a.SumSq += v * v
	if a.N == 1 {
		a.Min, a.Max = v, v
		return
	}
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
}

// Merge folds other into a (mergeable-summary property).
func (a *Agg) Merge(other Agg) {
	if other.N == 0 {
		return
	}
	if a.N == 0 {
		*a = other
		return
	}
	a.N += other.N
	a.Sum += other.Sum
	a.SumSq += other.SumSq
	if other.Min < a.Min {
		a.Min = other.Min
	}
	if other.Max > a.Max {
		a.Max = other.Max
	}
}

// Avg returns Sum/N, or 0 for an empty record.
func (a Agg) Avg() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// Var returns the population variance implied by the record.
func (a Agg) Var() float64 {
	if a.N < 2 {
		return 0
	}
	mean := a.Sum / float64(a.N)
	v := a.SumSq/float64(a.N) - mean*mean
	if v < 0 {
		return 0
	}
	return v
}

// ZeroVariance reports whether every value in the partition is identical
// (min == max), the trigger of the paper's 0-variance rule.
func (a Agg) ZeroVariance() bool { return a.N > 0 && a.Min == a.Max }

// CoverEntry is one fully covered node returned by the MCF: its aggregates
// can be used directly.
type CoverEntry struct {
	// Node is the node id inside the owning tree.
	Node int
	Agg  Agg
	// Rect is the node's bounding rectangle in predicate space.
	Rect dataset.Rect
}

// PartialEntry is one partially covered leaf returned by the MCF: its
// stratified sample must be consulted.
type PartialEntry struct {
	// Leaf is the leaf id (dense, 0..NumLeaves-1).
	Leaf int
	Agg  Agg
	// Rect is the leaf's bounding rectangle in predicate space.
	Rect dataset.Rect
}

// Frontier is the result of the Minimal Coverage Frontier search.
type Frontier struct {
	Cover   []CoverEntry
	Partial []PartialEntry
	// Visited counts tree nodes touched, for latency accounting.
	Visited int
}

// CoverAgg merges the aggregates of all fully covered nodes.
func (f Frontier) CoverAgg() Agg {
	var a Agg
	for _, c := range f.Cover {
		a.Merge(c.Agg)
	}
	return a
}

// node is one partition-tree node. Leaves carry a dense leaf id.
type node struct {
	children []int // child node ids; nil for leaves
	lo, hi   float64
	iLo, iHi int // index range in the sorted dataset
	agg      Agg
	leaf     int // dense leaf id, -1 for internal nodes
	parent   int
}

// Tree is a 1D PASS partition tree.
type Tree struct {
	nodes  []node
	root   int
	leaves []int // leaf id -> node id
}

// Build constructs the tree over d (which must be sorted by predicate
// column 0) using the given leaf partitioning. Empty partitions are
// dropped. The tree is built bottom-up by pairing adjacent nodes, so its
// height is ceil(log2(k)).
func Build(d *dataset.Dataset, p partition.Partitioning) (*Tree, error) {
	return BuildFanout(d, p, 2)
}

// BuildFanout builds the tree with the given fanout (children per
// internal node). Per Section 4.1 of the paper, the leaf partitioning
// alone governs estimation error; fanout trades tree height (MCF node
// visits per query) against per-level branching, so it only moves
// construction time and query latency — the fanout ablation bench
// measures exactly that.
func BuildFanout(d *dataset.Dataset, p partition.Partitioning, fanout int) (*Tree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("ptree: fanout must be at least 2, got %d", fanout)
	}
	if err := p.Validate(d.N()); err != nil {
		return nil, err
	}
	if d.Dims() < 1 {
		return nil, fmt.Errorf("ptree: dataset has no predicate column")
	}
	t := &Tree{}
	col := d.Pred[0]
	// leaf layer: partition aggregates are independent, so they are
	// computed by the worker pool before the nodes are assembled in order
	type span struct{ lo, hi int }
	spans := make([]span, 0, p.K())
	for i := 0; i < p.K(); i++ {
		lo, hi := p.Bounds(i)
		if lo == hi {
			continue
		}
		spans = append(spans, span{lo, hi})
	}
	aggs := make([]Agg, len(spans))
	parallel.For(len(spans), func(i int) {
		var a Agg
		for j := spans[i].lo; j < spans[i].hi; j++ {
			a.Add(d.Agg[j])
		}
		aggs[i] = a
	})
	var layer []int
	for i, sp := range spans {
		id := len(t.nodes)
		t.nodes = append(t.nodes, node{
			lo: col[sp.lo], hi: col[sp.hi-1],
			iLo: sp.lo, iHi: sp.hi,
			agg:    aggs[i],
			leaf:   len(t.leaves),
			parent: -1,
		})
		t.leaves = append(t.leaves, id)
		layer = append(layer, id)
	}
	if len(layer) == 0 {
		return nil, fmt.Errorf("ptree: empty dataset")
	}
	t.buildUp(layer, fanout)
	return t, nil
}

// buildUp assembles internal levels bottom-up, grouping fanout adjacent
// nodes per parent; a trailing group of one is promoted unchanged.
func (t *Tree) buildUp(layer []int, fanout int) {
	for len(layer) > 1 {
		var next []int
		for i := 0; i < len(layer); i += fanout {
			end := i + fanout
			if end > len(layer) {
				end = len(layer)
			}
			if end-i == 1 {
				next = append(next, layer[i])
				continue
			}
			group := layer[i:end]
			var a Agg
			for _, c := range group {
				a.Merge(t.nodes[c].agg)
			}
			id := len(t.nodes)
			first, last := group[0], group[len(group)-1]
			t.nodes = append(t.nodes, node{
				children: append([]int(nil), group...),
				lo:       t.nodes[first].lo, hi: t.nodes[last].hi,
				iLo: t.nodes[first].iLo, iHi: t.nodes[last].iHi,
				agg:    a,
				leaf:   -1,
				parent: -1,
			})
			for _, c := range group {
				t.nodes[c].parent = id
			}
			next = append(next, id)
		}
		layer = next
	}
	t.root = layer[0]
}

// NumLeaves returns the number of leaf partitions.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Height returns the tree height (root = 0 for a single-node tree).
func (t *Tree) Height() int {
	h := 0
	id := t.root
	for len(t.nodes[id].children) > 0 {
		id = t.nodes[id].children[0]
		h++
	}
	return h
}

// Root returns the aggregates of the whole dataset.
func (t *Tree) Root() Agg { return t.nodes[t.root].agg }

// LeafAgg returns the aggregates of leaf id.
func (t *Tree) LeafAgg(leaf int) Agg { return t.nodes[t.leaves[leaf]].agg }

// LeafIndexRange returns the sorted-data index range [lo, hi) of leaf id.
func (t *Tree) LeafIndexRange(leaf int) (lo, hi int) {
	n := t.nodes[t.leaves[leaf]]
	return n.iLo, n.iHi
}

// LeafValueRange returns the predicate-value range [lo, hi] of leaf id.
func (t *Tree) LeafValueRange(leaf int) (lo, hi float64) {
	n := t.nodes[t.leaves[leaf]]
	return n.lo, n.hi
}

// MemoryBytes estimates the resident size of the tree's aggregates: the
// synopsis storage attributable to precomputation.
func (t *Tree) MemoryBytes() int {
	// per node: 6 float64/int fields of 8 bytes that constitute the
	// synopsis payload (ranges + aggregates)
	return len(t.nodes) * 10 * 8
}

// Frontier runs the Minimal Coverage Frontier search (Algorithm 1) for the
// interval query [q.Lo[0], q.Hi[0]]. When zeroVarAsCovered is true, the
// 0-variance rule is applied: partially covered nodes whose values are all
// identical are classified as covered (valid for AVG queries; also valid
// for SUM when the constant is 0).
func (t *Tree) Frontier(q dataset.Rect, zeroVarAsCovered bool) Frontier {
	var f Frontier
	qlo, qhi := q.Lo[0], q.Hi[0]
	t.mcf(t.root, qlo, qhi, zeroVarAsCovered, &f)
	return f
}

func (t *Tree) mcf(id int, qlo, qhi float64, zeroVar bool, f *Frontier) {
	f.Visited++
	n := &t.nodes[id]
	if n.hi < qlo || n.lo > qhi {
		return // R_none
	}
	if qlo <= n.lo && n.hi <= qhi {
		f.Cover = append(f.Cover, CoverEntry{Node: id, Agg: n.agg, Rect: dataset.Rect1(n.lo, n.hi)})
		return // fully covered: exact partial aggregate
	}
	if zeroVar && n.agg.ZeroVariance() {
		// 0-variance rule (Section 3.4): all values in the node are
		// identical, so for AVG it behaves as covered — applies to leaves
		// (skipping their sample scan) and internal nodes alike
		f.Cover = append(f.Cover, CoverEntry{Node: id, Agg: n.agg, Rect: dataset.Rect1(n.lo, n.hi)})
		return
	}
	if len(n.children) == 0 { // leaf with partial overlap
		f.Partial = append(f.Partial, PartialEntry{Leaf: n.leaf, Agg: n.agg, Rect: dataset.Rect1(n.lo, n.hi)})
		return
	}
	for _, c := range n.children {
		t.mcf(c, qlo, qhi, zeroVar, f)
	}
}

// Walk runs the MCF search of Frontier but streams each classification to
// a callback instead of materializing entry slices: cover is invoked once
// per fully covered node (including 0-variance nodes when zeroVarAsCovered
// is set) and partial once per partially overlapped leaf, both in the same
// depth-first order Frontier appends them. It returns the number of nodes
// visited.
func (t *Tree) Walk(q dataset.Rect, zeroVarAsCovered bool, cover func(Agg), partial func(leaf int, a Agg)) int {
	return t.walk(t.root, q.Lo[0], q.Hi[0], zeroVarAsCovered, cover, partial)
}

func (t *Tree) walk(id int, qlo, qhi float64, zeroVar bool, cover func(Agg), partial func(int, Agg)) int {
	visited := 1
	n := &t.nodes[id]
	if n.hi < qlo || n.lo > qhi {
		return visited // R_none
	}
	if (qlo <= n.lo && n.hi <= qhi) || (zeroVar && n.agg.ZeroVariance()) {
		cover(n.agg)
		return visited
	}
	if len(n.children) == 0 { // leaf with partial overlap
		partial(n.leaf, n.agg)
		return visited
	}
	for _, c := range n.children {
		visited += t.walk(c, qlo, qhi, zeroVar, cover, partial)
	}
	return visited
}

// LocateLeaf returns the leaf whose value range contains v, or the nearest
// leaf when v falls outside all ranges (for dynamic inserts).
func (t *Tree) LocateLeaf(v float64) int {
	id := t.root
	for len(t.nodes[id].children) > 0 {
		children := t.nodes[id].children
		next := children[len(children)-1]
		for _, c := range children {
			if v <= t.nodes[c].hi {
				next = c
				break
			}
		}
		id = next
	}
	return t.nodes[id].leaf
}

// ApplyInsert records a new tuple with the given aggregate value landing in
// leaf, updating SUM/COUNT/MIN/MAX/SUMSQ along the leaf-to-root path in
// O(height) (Section 4.5, dynamic updates).
func (t *Tree) ApplyInsert(leaf int, value float64) {
	id := t.leaves[leaf]
	// widen the leaf's value range is not needed: predicate ranges are
	// maintained by the caller re-locating; aggregates update here
	for id >= 0 {
		t.nodes[id].agg.Add(value)
		id = t.nodes[id].parent
	}
}

// ApplyDelete removes one tuple with the given value from leaf. SUM, COUNT
// and SUMSQ are updated exactly; MIN/MAX are left untouched, which keeps
// them conservative (hard bounds remain supersets of the truth).
func (t *Tree) ApplyDelete(leaf int, value float64) error {
	id := t.leaves[leaf]
	if t.nodes[id].agg.N == 0 {
		return fmt.Errorf("ptree: delete from empty leaf %d", leaf)
	}
	for id >= 0 {
		a := &t.nodes[id].agg
		a.N--
		a.Sum -= value
		a.SumSq -= value * value
		if a.SumSq < 0 {
			a.SumSq = 0
		}
		id = t.nodes[id].parent
	}
	return nil
}

// CheckInvariants verifies the partition-tree definition (Definition 3.1):
// children contained in and spanning their parent, siblings disjoint by
// index range, and aggregates consistent with the merge of the children.
// It returns the first violation found, or nil.
func (t *Tree) CheckInvariants() error {
	for id, n := range t.nodes {
		if len(n.children) == 0 {
			continue
		}
		first := t.nodes[n.children[0]]
		last := t.nodes[n.children[len(n.children)-1]]
		if first.iLo != n.iLo || last.iHi != n.iHi {
			return fmt.Errorf("ptree: node %d children do not span parent", id)
		}
		var merged Agg
		prevHi := first.iLo
		for _, cid := range n.children {
			c := t.nodes[cid]
			if c.iLo != prevHi {
				return fmt.Errorf("ptree: node %d children not contiguous", id)
			}
			if c.iHi <= c.iLo {
				return fmt.Errorf("ptree: node %d has an empty child", id)
			}
			prevHi = c.iHi
			merged.Merge(c.agg)
		}
		if merged.N != n.agg.N ||
			math.Abs(merged.Sum-n.agg.Sum) > 1e-6*(1+math.Abs(n.agg.Sum)) ||
			merged.Min != n.agg.Min || merged.Max != n.agg.Max {
			return fmt.Errorf("ptree: node %d aggregates inconsistent with children", id)
		}
	}
	return nil
}
