package ptree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/stats"
)

func buildTest(t *testing.T, n, k int, seed uint64) (*dataset.Dataset, *Tree) {
	t.Helper()
	d := dataset.GenUniform(n, 1, 100, seed)
	tr, err := Build(d, partition.EqualDepth(n, k))
	if err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func TestAggAddMerge(t *testing.T) {
	var a Agg
	for _, v := range []float64{2, 8, 5} {
		a.Add(v)
	}
	if a.N != 3 || a.Sum != 15 || a.Min != 2 || a.Max != 8 {
		t.Errorf("agg = %+v", a)
	}
	if a.SumSq != 4+64+25 {
		t.Errorf("sumSq = %v", a.SumSq)
	}
	var b Agg
	b.Add(1)
	b.Merge(a)
	if b.N != 4 || b.Min != 1 || b.Max != 8 || b.Sum != 16 {
		t.Errorf("merged = %+v", b)
	}
	if math.Abs(a.Avg()-5) > 1e-12 {
		t.Errorf("avg = %v", a.Avg())
	}
}

func TestAggVar(t *testing.T) {
	var a Agg
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if math.Abs(a.Var()-4) > 1e-9 {
		t.Errorf("Var = %v, want 4", a.Var())
	}
	var z Agg
	z.Add(3)
	z.Add(3)
	if !z.ZeroVariance() {
		t.Error("identical values should be zero-variance")
	}
	if a.ZeroVariance() {
		t.Error("varied values must not be zero-variance")
	}
}

func TestBuildStructure(t *testing.T) {
	_, tr := buildTest(t, 1000, 16, 1)
	if tr.NumLeaves() != 16 {
		t.Fatalf("leaves = %d", tr.NumLeaves())
	}
	if tr.Root().N != 1000 {
		t.Fatalf("root N = %d", tr.Root().N)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(); h != 4 {
		t.Errorf("height = %d, want 4", h)
	}
}

func TestBuildOddLeafCount(t *testing.T) {
	d := dataset.GenUniform(700, 1, 100, 2)
	tr, err := Build(d, partition.EqualDepth(700, 7))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 7 {
		t.Fatalf("leaves = %d", tr.NumLeaves())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Root().N != 700 {
		t.Errorf("root N = %d", tr.Root().N)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	d := dataset.GenUniform(10, 1, 100, 3)
	if _, err := Build(d, partition.Partitioning{Cuts: []int{0, 5}}); err == nil {
		t.Error("Build accepted truncated cuts")
	}
	empty := dataset.New("e", 1)
	if _, err := Build(empty, partition.Partitioning{Cuts: []int{0, 0}}); err == nil {
		t.Error("Build accepted empty dataset")
	}
}

func TestRootMatchesDataset(t *testing.T) {
	d, tr := buildTest(t, 500, 8, 4)
	sum, _ := d.Exact(dataset.Sum, dataset.Rect1(math.Inf(-1), math.Inf(1)))
	if math.Abs(tr.Root().Sum-sum) > 1e-6 {
		t.Errorf("root sum %v != dataset sum %v", tr.Root().Sum, sum)
	}
	mn, _ := d.Exact(dataset.Min, dataset.Rect1(math.Inf(-1), math.Inf(1)))
	mx, _ := d.Exact(dataset.Max, dataset.Rect1(math.Inf(-1), math.Inf(1)))
	if tr.Root().Min != mn || tr.Root().Max != mx {
		t.Errorf("root extrema [%v, %v] != [%v, %v]", tr.Root().Min, tr.Root().Max, mn, mx)
	}
}

// bruteFrontier classifies every leaf directly for comparison with MCF.
func bruteFrontier(d *dataset.Dataset, tr *Tree, qlo, qhi float64) (coverN int, partialLeaves map[int]bool) {
	partialLeaves = map[int]bool{}
	for leaf := 0; leaf < tr.NumLeaves(); leaf++ {
		lo, hi := tr.LeafValueRange(leaf)
		if hi < qlo || lo > qhi {
			continue
		}
		if qlo <= lo && hi <= qhi {
			coverN += tr.LeafAgg(leaf).N
		} else {
			partialLeaves[leaf] = true
		}
	}
	return coverN, partialLeaves
}

func TestFrontierMatchesBruteForce(t *testing.T) {
	d, tr := buildTest(t, 2000, 32, 5)
	rng := stats.NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Float64()*100, rng.Float64()*100
		qlo, qhi := math.Min(a, b), math.Max(a, b)
		f := tr.Frontier(dataset.Rect1(qlo, qhi), false)
		wantCover, wantPartial := bruteFrontier(d, tr, qlo, qhi)
		if got := f.CoverAgg().N; got != wantCover {
			t.Fatalf("trial %d: cover N = %d, want %d", trial, got, wantCover)
		}
		if len(f.Partial) != len(wantPartial) {
			t.Fatalf("trial %d: partial count = %d, want %d", trial, len(f.Partial), len(wantPartial))
		}
		for _, p := range f.Partial {
			if !wantPartial[p.Leaf] {
				t.Fatalf("trial %d: leaf %d wrongly classified partial", trial, p.Leaf)
			}
		}
	}
}

func TestFrontierCoverIsMinimal(t *testing.T) {
	// a query covering the whole data must return one cover node (the
	// root), not all leaves
	_, tr := buildTest(t, 1024, 16, 6)
	f := tr.Frontier(dataset.Rect1(math.Inf(-1), math.Inf(1)), false)
	if len(f.Cover) != 1 {
		t.Errorf("whole-data query returned %d cover nodes, want 1 (the root)", len(f.Cover))
	}
	if len(f.Partial) != 0 {
		t.Errorf("whole-data query returned %d partial leaves", len(f.Partial))
	}
	if f.Visited != 1 {
		t.Errorf("whole-data query visited %d nodes, want 1", f.Visited)
	}
}

func TestFrontierVisitBound(t *testing.T) {
	// MCF should visit O(γ log B) nodes, far fewer than the node count,
	// for a selective query
	_, tr := buildTest(t, 4096, 64, 8)
	f := tr.Frontier(dataset.Rect1(10, 12), false)
	if f.Visited >= tr.NumNodes()/2 {
		t.Errorf("selective query visited %d of %d nodes", f.Visited, tr.NumNodes())
	}
}

func TestFrontierDisjointFromQuery(t *testing.T) {
	_, tr := buildTest(t, 100, 4, 9)
	f := tr.Frontier(dataset.Rect1(-50, -10), false)
	if len(f.Cover) != 0 || len(f.Partial) != 0 {
		t.Errorf("disjoint query returned non-empty frontier: %+v", f)
	}
}

func TestZeroVarianceRule(t *testing.T) {
	// adversarial data: leading zeros; a query partially overlapping a
	// zero-variance internal node should classify it as covered when the
	// rule is on
	d := dataset.GenAdversarial(800, 3)
	tr, err := Build(d, partition.EqualDepth(800, 16))
	if err != nil {
		t.Fatal(err)
	}
	// query inside the zero region, not aligned with partitions
	q := dataset.Rect1(10, 333)
	off := tr.Frontier(q, false)
	on := tr.Frontier(q, true)
	if len(on.Partial) > len(off.Partial) {
		t.Errorf("rule increased partial count: %d > %d", len(on.Partial), len(off.Partial))
	}
	if len(on.Partial) != 0 {
		t.Errorf("query inside constant region should have no partial leaves with the rule on, got %d", len(on.Partial))
	}
}

func TestLocateLeaf(t *testing.T) {
	d, tr := buildTest(t, 1000, 10, 10)
	for leaf := 0; leaf < tr.NumLeaves(); leaf++ {
		lo, hi := tr.LeafValueRange(leaf)
		mid := (lo + hi) / 2
		got := tr.LocateLeaf(mid)
		glo, ghi := tr.LeafValueRange(got)
		if mid < glo || mid > ghi {
			t.Errorf("LocateLeaf(%v) = %d with range [%v, %v]", mid, got, glo, ghi)
		}
	}
	_ = d
	// out-of-range values snap to the nearest end
	if got := tr.LocateLeaf(-1e9); got != 0 {
		t.Errorf("LocateLeaf(-inf) = %d, want 0", got)
	}
	if got := tr.LocateLeaf(1e9); got != tr.NumLeaves()-1 {
		t.Errorf("LocateLeaf(+inf) = %d, want last leaf", got)
	}
}

func TestApplyInsertUpdatesPath(t *testing.T) {
	_, tr := buildTest(t, 400, 8, 11)
	before := tr.Root()
	leaf := tr.LocateLeaf(50)
	tr.ApplyInsert(leaf, 1e6)
	after := tr.Root()
	if after.N != before.N+1 {
		t.Errorf("root N = %d, want %d", after.N, before.N+1)
	}
	if after.Max != 1e6 {
		t.Errorf("root max = %v, want 1e6", after.Max)
	}
	la := tr.LeafAgg(leaf)
	if la.Max != 1e6 {
		t.Errorf("leaf max = %v", la.Max)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDelete(t *testing.T) {
	_, tr := buildTest(t, 400, 8, 12)
	leaf := 3
	la := tr.LeafAgg(leaf)
	before := tr.Root()
	if err := tr.ApplyDelete(leaf, la.Sum/float64(la.N)); err != nil {
		t.Fatal(err)
	}
	after := tr.Root()
	if after.N != before.N-1 {
		t.Errorf("root N = %d, want %d", after.N, before.N-1)
	}
	if math.Abs(after.Sum-(before.Sum-la.Sum/float64(la.N))) > 1e-6 {
		t.Errorf("root sum not decremented correctly")
	}
}

func TestApplyDeleteEmptyLeaf(t *testing.T) {
	d := dataset.New("one", 1)
	d.Append([]float64{1}, 5)
	tr, err := Build(d, partition.EqualDepth(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ApplyDelete(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.ApplyDelete(0, 5); err == nil {
		t.Error("delete from empty leaf should fail")
	}
}

// Property: for random partitionings and random queries, cover + partial +
// none exactly account for all leaves, and cover/partial sets are disjoint.
func TestFrontierPartitionProperty(t *testing.T) {
	d := dataset.GenUniform(300, 1, 50, 13)
	f := func(kSeed uint8, aSeed, bSeed uint16) bool {
		k := 2 + int(kSeed)%20
		tr, err := Build(d, partition.EqualDepth(300, k))
		if err != nil {
			return false
		}
		a := float64(aSeed%5000) / 100
		b := float64(bSeed%5000) / 100
		qlo, qhi := math.Min(a, b), math.Max(a, b)
		fr := tr.Frontier(dataset.Rect1(qlo, qhi), false)
		// cover nodes expand to leaves; count total accounted tuples
		accounted := fr.CoverAgg().N
		for _, p := range fr.Partial {
			accounted += p.Agg.N
		}
		// every accounted tuple group is disjoint, so accounted <= N
		if accounted > 300 {
			return false
		}
		// exact tuples matching the query must all be inside accounted
		// partitions (cover + partial)
		matching := d.CountMatching(dataset.Rect1(qlo, qhi))
		return matching <= accounted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	_, tr := buildTest(t, 100, 4, 14)
	if tr.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}
