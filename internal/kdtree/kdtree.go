// Package kdtree implements the multi-dimensional PASS partition trees of
// Section 4.4 / 5.4 of the paper: k-d trees with fanout 2^d whose leaves
// form the strata of the stratified sample.
//
// Two construction policies are provided:
//
//   - BuildPASS (KD-PASS): greedy expansion — repeatedly split the leaf
//     whose approximate maximum query variance is largest, until the leaf
//     budget is exhausted, keeping leaf depths within a band of 2 as in the
//     paper's experiments.
//   - BuildUS (KD-US): the paper's baseline — always expand the shallowest
//     leaf (ties broken pseudo-randomly), producing a balanced partitioning
//     with no variance awareness.
//
// The max-variance score of a node uses the discretized estimators of
// Appendix A: for SUM/COUNT the half-split bound, for AVG the best
// δ-fraction chunk by sum of squares (the "second algorithm" of A.4).
package kdtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ptree"
	"repro/internal/stats"
)

// node is one k-d tree node. Leaves own the indices of their tuples.
type node struct {
	children []int
	rect     dataset.Rect
	items    []int // tuple indices; nil for internal nodes
	agg      ptree.Agg
	leaf     int // dense leaf id, -1 for internal
	depth    int
	parent   int
}

// Tree is a multi-dimensional PASS partition tree.
type Tree struct {
	nodes  []node
	root   int
	leaves []int
	dims   int
	data   *dataset.Dataset
}

// Policy selects the expansion order during construction.
type Policy int

const (
	// PolicyPASS expands the leaf with the largest approximate maximum
	// query variance (KD-PASS).
	PolicyPASS Policy = iota
	// PolicyUniform expands the shallowest leaf (KD-US).
	PolicyUniform
)

// Options configures construction.
type Options struct {
	// MaxLeaves is the leaf budget k.
	MaxLeaves int
	// Kind selects the variance score used by PolicyPASS.
	Kind dataset.AggKind
	// Delta is the minimum meaningful query selectivity for the AVG score
	// (fraction of a node's items). Defaults to 0.05.
	Delta float64
	// DepthBand caps the difference between the deepest and shallowest
	// leaf (the paper uses 2). Defaults to 2.
	DepthBand int
	// Seed drives tie-breaking for PolicyUniform.
	Seed uint64
}

// Build constructs a k-d partition tree over d with the given policy.
func Build(d *dataset.Dataset, policy Policy, opt Options) (*Tree, error) {
	if d.N() == 0 {
		return nil, fmt.Errorf("kdtree: empty dataset")
	}
	if opt.MaxLeaves < 1 {
		return nil, fmt.Errorf("kdtree: MaxLeaves must be positive, got %d", opt.MaxLeaves)
	}
	if opt.Delta <= 0 {
		opt.Delta = 0.05
	}
	if opt.DepthBand <= 0 {
		opt.DepthBand = 2
	}
	t := &Tree{dims: d.Dims(), data: d}
	all := make([]int, d.N())
	for i := range all {
		all[i] = i
	}
	t.root = t.newNode(all, 0, -1)
	rng := stats.NewRNG(opt.Seed + 1)

	pq := &candHeap{}
	heap.Init(pq)
	push := func(id int) {
		var s float64
		switch policy {
		case PolicyPASS:
			s = t.nodeScore(id, opt.Kind, opt.Delta)
		default:
			// shallowest-first: lower depth = higher priority; jitter
			// breaks ties pseudo-randomly
			s = -float64(t.nodes[id].depth) + rng.Float64()*0.5
		}
		heap.Push(pq, candHeapItem{id: id, score: s})
	}
	push(t.root)
	for t.countLeaves() < opt.MaxLeaves && pq.Len() > 0 {
		// respect the depth band: the candidate must not be deeper than
		// the shallowest splittable leaf + band
		minDepth := t.minSplittableDepth(pq)
		var picked *candHeapItem
		var deferred []candHeapItem
		for pq.Len() > 0 {
			c := heap.Pop(pq).(candHeapItem)
			if t.nodes[c.id].depth > minDepth+opt.DepthBand {
				deferred = append(deferred, c)
				continue
			}
			picked = &c
			break
		}
		for _, c := range deferred {
			heap.Push(pq, c)
		}
		if picked == nil {
			break
		}
		children := t.split(picked.id)
		if len(children) == 0 {
			continue // unsplittable (all points identical); drop from queue
		}
		for _, ch := range children {
			if len(t.nodes[ch].items) > 1 {
				push(ch)
			}
		}
		if t.countLeaves() >= opt.MaxLeaves {
			break
		}
	}
	t.assignLeafIDs()
	return t, nil
}

// BuildPASS builds a KD-PASS tree (greedy max-variance expansion).
func BuildPASS(d *dataset.Dataset, opt Options) (*Tree, error) {
	return Build(d, PolicyPASS, opt)
}

// BuildUS builds the KD-US baseline tree (balanced expansion).
func BuildUS(d *dataset.Dataset, opt Options) (*Tree, error) {
	return Build(d, PolicyUniform, opt)
}

type candHeapItem struct {
	id    int
	score float64
}

type candHeap []candHeapItem

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candHeapItem)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (t *Tree) newNode(items []int, depth, parent int) int {
	var a ptree.Agg
	lo := make([]float64, t.dims)
	hi := make([]float64, t.dims)
	for c := 0; c < t.dims; c++ {
		lo[c], hi[c] = math.Inf(1), math.Inf(-1)
	}
	for _, i := range items {
		a.Add(t.data.Agg[i])
		for c := 0; c < t.dims; c++ {
			v := t.data.Pred[c][i]
			if v < lo[c] {
				lo[c] = v
			}
			if v > hi[c] {
				hi[c] = v
			}
		}
	}
	id := len(t.nodes)
	t.nodes = append(t.nodes, node{
		rect:   dataset.Rect{Lo: lo, Hi: hi},
		items:  items,
		agg:    a,
		leaf:   -1,
		depth:  depth,
		parent: parent,
	})
	return id
}

// split divides a leaf node into up to 2^d children at the per-dimension
// medians of its items (the paper's simultaneous split). Empty cells are
// dropped; if every item lands in a single cell the node stays a leaf and
// nil is returned.
func (t *Tree) split(id int) []int {
	items := t.nodes[id].items
	if len(items) < 2 {
		return nil
	}
	med := make([]float64, t.dims)
	tmp := make([]float64, len(items))
	for c := 0; c < t.dims; c++ {
		col := t.data.Pred[c]
		for i, it := range items {
			tmp[i] = col[it]
		}
		// only the median is needed, so quickselect replaces the full sort
		med[c] = selectKth(tmp, len(tmp)/2)
	}
	cells := make(map[int][]int)
	for _, it := range items {
		key := 0
		for c := 0; c < t.dims; c++ {
			if t.data.Pred[c][it] >= med[c] {
				key |= 1 << c
			}
		}
		cells[key] = append(cells[key], it)
	}
	if len(cells) < 2 {
		return nil
	}
	keys := make([]int, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var children []int
	for _, k := range keys {
		ch := t.newNode(cells[k], t.nodes[id].depth+1, id)
		children = append(children, ch)
	}
	t.nodes[id].children = children
	t.nodes[id].items = nil
	return children
}

// selectKth returns the k-th smallest element (0-based) of a, partially
// reordering it — deterministic Hoare quickselect with median-of-three
// pivots, O(n) expected. Equivalent to sorting a and reading a[k].
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		// median-of-three pivot, moved to a[lo]
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return a[k]
		}
	}
	return a[k]
}

// nodeScore approximates the maximum query variance inside node id,
// following Appendix A's discretizations adapted to d dimensions.
func (t *Tree) nodeScore(id int, kind dataset.AggKind, delta float64) float64 {
	items := t.nodes[id].items
	n := len(items)
	if n < 2 {
		return 0
	}
	switch kind {
	case dataset.Count:
		return float64(n) / 4
	case dataset.Avg:
		w := int(delta * float64(n))
		if w < 1 {
			w = 1
		}
		if n < 2*w {
			return 0
		}
		maxSq := t.maxChunkSumSq(items, w)
		return float64(n) * maxSq / (float64(n) * float64(w) * float64(w))
	default: // SUM
		// half-split bound (Lemma A.3): score of the better half
		half := n / 2
		var s1, q1, s2, q2 float64
		for i, it := range items {
			v := t.data.Agg[it]
			if i < half {
				s1 += v
				q1 += v * v
			} else {
				s2 += v
				q2 += v * v
			}
		}
		v1 := (float64(n)*q1 - s1*s1) / float64(n)
		v2 := (float64(n)*q2 - s2*s2) / float64(n)
		if v1 > v2 {
			return v1
		}
		return v2
	}
}

// maxChunkSumSq splits items into contiguous chunks of w along the
// dimension with the widest spread and returns the largest chunk sum of
// squares — the d-dimensional analogue of the δm-window index (A.4).
func (t *Tree) maxChunkSumSq(items []int, w int) float64 {
	// pick the dimension with the widest value range among the items
	bestDim, bestSpread := 0, -1.0
	for c := 0; c < t.dims; c++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		col := t.data.Pred[c]
		for _, it := range items {
			v := col[it]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s := hi - lo; s > bestSpread {
			bestSpread, bestDim = s, c
		}
	}
	ordered := append([]int(nil), items...)
	col := t.data.Pred[bestDim]
	sort.Slice(ordered, func(a, b int) bool { return col[ordered[a]] < col[ordered[b]] })
	best, cur := 0.0, 0.0
	for i, it := range ordered {
		v := t.data.Agg[it]
		cur += v * v
		if i >= w {
			u := t.data.Agg[ordered[i-w]]
			cur -= u * u
		}
		if i >= w-1 && cur > best {
			best = cur
		}
	}
	return best
}

func (t *Tree) countLeaves() int {
	n := 0
	for i := range t.nodes {
		if t.nodes[i].children == nil {
			n++
		}
	}
	return n
}

func (t *Tree) minSplittableDepth(pq *candHeap) int {
	min := 1 << 30
	for _, c := range *pq {
		if d := t.nodes[c.id].depth; d < min {
			min = d
		}
	}
	if min == 1<<30 {
		return 0
	}
	return min
}

func (t *Tree) assignLeafIDs() {
	t.leaves = t.leaves[:0]
	for i := range t.nodes {
		if t.nodes[i].children == nil {
			t.nodes[i].leaf = len(t.leaves)
			t.leaves = append(t.leaves, i)
		}
	}
}

// NumLeaves returns the number of leaf partitions.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Dims returns the tree's predicate dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Root returns the aggregates of the whole dataset.
func (t *Tree) Root() ptree.Agg { return t.nodes[t.root].agg }

// LeafAgg returns the aggregates of leaf id.
func (t *Tree) LeafAgg(leaf int) ptree.Agg { return t.nodes[t.leaves[leaf]].agg }

// LeafItems returns the dataset tuple indices of leaf id (a view).
func (t *Tree) LeafItems(leaf int) []int { return t.nodes[t.leaves[leaf]].items }

// LeafRect returns the bounding rectangle of leaf id.
func (t *Tree) LeafRect(leaf int) dataset.Rect { return t.nodes[t.leaves[leaf]].rect }

// MaxLeafDepth returns the depth of the deepest leaf.
func (t *Tree) MaxLeafDepth() int {
	max := 0
	for _, id := range t.leaves {
		if d := t.nodes[id].depth; d > max {
			max = d
		}
	}
	return max
}

// MinLeafDepth returns the depth of the shallowest leaf.
func (t *Tree) MinLeafDepth() int {
	min := 1 << 30
	for _, id := range t.leaves {
		if d := t.nodes[id].depth; d < min {
			min = d
		}
	}
	return min
}

// MemoryBytes estimates the synopsis storage of the tree's aggregates and
// rectangles (excluding leaf item lists, which belong to the construction
// phase, and samples, which are accounted separately by the engine).
func (t *Tree) MemoryBytes() int {
	return len(t.nodes) * (5 + 2*t.dims + 3) * 8
}

// Frontier runs the MCF over a rectangular query. The query may constrain
// fewer dimensions than the tree (missing dimensions are unconstrained) or
// more (workload shift, Section 5.4.1): when the query constrains
// dimensions the tree does not index, no node can be certified as fully
// covered, so every intersecting leaf is returned as partial — the tree
// still provides data skipping for disjoint subtrees.
func (t *Tree) Frontier(q dataset.Rect, zeroVarAsCovered bool) ptree.Frontier {
	return t.FrontierProjected(q, q.Dims() > t.dims, zeroVarAsCovered)
}

// FrontierProjected runs the MCF with an explicit forcePartial flag: when
// true, no node is certified as fully covered even if the (projected)
// rectangle contains it — used when the original query constrains columns
// this tree does not index (arbitrary-template workload shift, Section
// 4.5), so coverage in the indexed columns does not imply coverage overall.
func (t *Tree) FrontierProjected(q dataset.Rect, forcePartial, zeroVarAsCovered bool) ptree.Frontier {
	var f ptree.Frontier
	t.mcf(t.root, q, forcePartial, zeroVarAsCovered, &f)
	return f
}

func (t *Tree) mcf(id int, q dataset.Rect, extra, zeroVar bool, f *ptree.Frontier) {
	f.Visited++
	n := &t.nodes[id]
	shared := t.dims
	if q.Dims() < shared {
		shared = q.Dims()
	}
	// classify on the shared dimensions
	disjoint, covered := false, true
	for c := 0; c < shared; c++ {
		if n.rect.Hi[c] < q.Lo[c] || n.rect.Lo[c] > q.Hi[c] {
			disjoint = true
			break
		}
		if n.rect.Lo[c] < q.Lo[c] || n.rect.Hi[c] > q.Hi[c] {
			covered = false
		}
	}
	if disjoint {
		return
	}
	if covered && !extra {
		f.Cover = append(f.Cover, ptree.CoverEntry{Node: id, Agg: n.agg, Rect: n.rect})
		return
	}
	if zeroVar && !extra && n.agg.ZeroVariance() {
		f.Cover = append(f.Cover, ptree.CoverEntry{Node: id, Agg: n.agg, Rect: n.rect})
		return
	}
	if n.children == nil {
		f.Partial = append(f.Partial, ptree.PartialEntry{Leaf: n.leaf, Agg: n.agg, Rect: n.rect})
		return
	}
	for _, ch := range n.children {
		t.mcf(ch, q, extra, zeroVar, f)
	}
}

// Walk is the streaming counterpart of Frontier: the same classification
// rules, with entries delivered to callbacks instead of slices.
func (t *Tree) Walk(q dataset.Rect, zeroVarAsCovered bool, cover func(ptree.Agg), partial func(leaf int, a ptree.Agg)) int {
	return t.WalkProjected(q, q.Dims() > t.dims, zeroVarAsCovered, cover, partial)
}

// WalkProjected runs the MCF of FrontierProjected but streams each
// classification to a callback instead of materializing entry slices:
// cover fires once per fully covered node and partial once per partially
// overlapped leaf, in the same depth-first order FrontierProjected appends
// them. It returns the number of nodes visited.
func (t *Tree) WalkProjected(q dataset.Rect, forcePartial, zeroVarAsCovered bool, cover func(ptree.Agg), partial func(leaf int, a ptree.Agg)) int {
	return t.walk(t.root, q, forcePartial, zeroVarAsCovered, cover, partial)
}

func (t *Tree) walk(id int, q dataset.Rect, extra, zeroVar bool, cover func(ptree.Agg), partial func(int, ptree.Agg)) int {
	visited := 1
	n := &t.nodes[id]
	shared := t.dims
	if q.Dims() < shared {
		shared = q.Dims()
	}
	disjoint, covered := false, true
	for c := 0; c < shared; c++ {
		if n.rect.Hi[c] < q.Lo[c] || n.rect.Lo[c] > q.Hi[c] {
			disjoint = true
			break
		}
		if n.rect.Lo[c] < q.Lo[c] || n.rect.Hi[c] > q.Hi[c] {
			covered = false
		}
	}
	if disjoint {
		return visited
	}
	if !extra && (covered || (zeroVar && n.agg.ZeroVariance())) {
		cover(n.agg)
		return visited
	}
	if n.children == nil {
		partial(n.leaf, n.agg)
		return visited
	}
	for _, ch := range n.children {
		visited += t.walk(ch, q, extra, zeroVar, cover, partial)
	}
	return visited
}

// CheckInvariants verifies that children partition their parent's items and
// aggregates merge consistently.
func (t *Tree) CheckInvariants() error {
	for id := range t.nodes {
		n := &t.nodes[id]
		if n.children == nil {
			if n.items == nil && n.agg.N > 0 {
				return fmt.Errorf("kdtree: leaf %d lost its items", id)
			}
			if len(n.items) != n.agg.N {
				return fmt.Errorf("kdtree: leaf %d item count %d != agg N %d", id, len(n.items), n.agg.N)
			}
			continue
		}
		var merged ptree.Agg
		total := 0
		for _, ch := range n.children {
			merged.Merge(t.nodes[ch].agg)
			total += t.nodes[ch].agg.N
		}
		if total != n.agg.N || merged.Min != n.agg.Min || merged.Max != n.agg.Max {
			return fmt.Errorf("kdtree: node %d aggregates inconsistent with children", id)
		}
	}
	return nil
}
