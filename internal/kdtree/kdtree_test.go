package kdtree

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func buildTaxi(t *testing.T, dims, leaves int, policy Policy) (*dataset.Dataset, *Tree) {
	t.Helper()
	d := dataset.GenNYCTaxi(4000, dims, 1)
	tr, err := Build(d, policy, Options{MaxLeaves: leaves, Kind: dataset.Sum})
	if err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func TestBuildPASSBasic(t *testing.T) {
	d, tr := buildTaxi(t, 2, 32, PolicyPASS)
	if tr.NumLeaves() > 40 {
		t.Errorf("leaves = %d, want <= ~32 + fanout slack", tr.NumLeaves())
	}
	if tr.NumLeaves() < 16 {
		t.Errorf("leaves = %d, too few", tr.NumLeaves())
	}
	if tr.Root().N != d.N() {
		t.Errorf("root N = %d, want %d", tr.Root().N, d.N())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildUSBalanced(t *testing.T) {
	_, tr := buildTaxi(t, 2, 32, PolicyUniform)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.MaxLeafDepth()-tr.MinLeafDepth() > 2 {
		t.Errorf("US tree depth spread = %d, want <= 2", tr.MaxLeafDepth()-tr.MinLeafDepth())
	}
}

func TestDepthBandRespected(t *testing.T) {
	d := dataset.GenNYCTaxi(4000, 3, 2)
	tr, err := BuildPASS(d, Options{MaxLeaves: 64, Kind: dataset.Sum, DepthBand: 2})
	if err != nil {
		t.Fatal(err)
	}
	if spread := tr.MaxLeafDepth() - tr.MinLeafDepth(); spread > 3 {
		t.Errorf("PASS tree depth spread = %d, want <= band+1", spread)
	}
}

func TestLeavesPartitionItems(t *testing.T) {
	d, tr := buildTaxi(t, 3, 64, PolicyPASS)
	seen := make([]bool, d.N())
	total := 0
	for leaf := 0; leaf < tr.NumLeaves(); leaf++ {
		for _, it := range tr.LeafItems(leaf) {
			if seen[it] {
				t.Fatalf("tuple %d appears in two leaves", it)
			}
			seen[it] = true
			total++
		}
	}
	if total != d.N() {
		t.Fatalf("leaves hold %d tuples, want %d", total, d.N())
	}
}

func TestLeafRectsContainItems(t *testing.T) {
	d, tr := buildTaxi(t, 2, 32, PolicyPASS)
	for leaf := 0; leaf < tr.NumLeaves(); leaf++ {
		r := tr.LeafRect(leaf)
		for _, it := range tr.LeafItems(leaf) {
			if !r.Contains(d.Point(it)) {
				t.Fatalf("leaf %d rect %v does not contain its item %d", leaf, r, it)
			}
		}
	}
}

func TestFrontierAccountsAllMatching(t *testing.T) {
	d, tr := buildTaxi(t, 2, 64, PolicyPASS)
	rng := stats.NewRNG(5)
	for trial := 0; trial < 100; trial++ {
		q := randomRect(rng, 2)
		f := tr.Frontier(q, false)
		// every tuple matching q must be inside a cover or partial node
		accounted := f.CoverAgg().N
		for _, p := range f.Partial {
			accounted += p.Agg.N
		}
		matching := d.CountMatching(q)
		if matching > accounted {
			t.Fatalf("trial %d: %d matching tuples but only %d accounted", trial, matching, accounted)
		}
		// cover nodes must be genuinely covered: their items all match
		for _, c := range f.Cover {
			for _, it := range coverItems(tr, c.Node) {
				if !d.Matches(it, q) {
					t.Fatalf("trial %d: cover node contains non-matching tuple", trial)
				}
			}
		}
	}
}

func coverItems(t *Tree, id int) []int {
	n := &t.nodes[id]
	if n.children == nil {
		return n.items
	}
	var out []int
	for _, ch := range n.children {
		out = append(out, coverItems(t, ch)...)
	}
	return out
}

func randomRect(rng *stats.RNG, dims int) dataset.Rect {
	scales := []float64{24, 31, 263, 31, 24}
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for c := 0; c < dims; c++ {
		a, b := rng.Float64()*scales[c], rng.Float64()*scales[c]
		lo[c], hi[c] = math.Min(a, b), math.Max(a, b)
	}
	return dataset.Rect{Lo: lo, Hi: hi}
}

func TestFrontierWorkloadShiftNoCover(t *testing.T) {
	// 2D tree queried with a 3D rectangle: no node can be certified
	// covered, everything intersecting must be partial
	_, tr := buildTaxi(t, 2, 32, PolicyPASS)
	q := dataset.Rect{Lo: []float64{0, 0, 0}, Hi: []float64{24, 31, 263}}
	f := tr.Frontier(q, false)
	if len(f.Cover) != 0 {
		t.Errorf("extra-dimension query produced %d cover nodes, want 0", len(f.Cover))
	}
	if len(f.Partial) == 0 {
		t.Error("expected partial leaves for an all-covering 3D query on a 2D tree")
	}
}

func TestFrontierFewerDimsThanTree(t *testing.T) {
	// 1D query on a 2D tree: unconstrained second dimension, so a query
	// covering the full first-dimension range covers the root
	_, tr := buildTaxi(t, 2, 32, PolicyPASS)
	q := dataset.Rect{Lo: []float64{-1}, Hi: []float64{25}}
	f := tr.Frontier(q, false)
	if len(f.Cover) != 1 || f.Visited != 1 {
		t.Errorf("full-range 1D query: cover=%d visited=%d, want 1/1", len(f.Cover), f.Visited)
	}
}

func TestFrontierSkipsDisjoint(t *testing.T) {
	_, tr := buildTaxi(t, 2, 64, PolicyPASS)
	q := dataset.Rect{Lo: []float64{100, 100}, Hi: []float64{200, 200}}
	f := tr.Frontier(q, false)
	if len(f.Cover)+len(f.Partial) != 0 {
		t.Errorf("disjoint query returned non-empty frontier")
	}
}

func TestPASSBeatsUSOnScore(t *testing.T) {
	// on the adversarial-style data (heavy variance in one region), the
	// PASS policy should achieve a lower worst leaf variance score
	d := dataset.New("adv2d", 2)
	rng := stats.NewRNG(9)
	for i := 0; i < 4000; i++ {
		x, y := rng.Float64(), rng.Float64()
		v := 0.0
		if x > 0.875 { // hot corner
			v = rng.NormMS(100, 25)
		}
		d.Append([]float64{x, y}, v)
	}
	pass, err := BuildPASS(d, Options{MaxLeaves: 32, Kind: dataset.Sum})
	if err != nil {
		t.Fatal(err)
	}
	us, err := BuildUS(d, Options{MaxLeaves: 32, Kind: dataset.Sum})
	if err != nil {
		t.Fatal(err)
	}
	worst := func(tr *Tree) float64 {
		w := 0.0
		for leaf := 0; leaf < tr.NumLeaves(); leaf++ {
			a := tr.LeafAgg(leaf)
			if s := float64(a.N) * a.Var(); s > w {
				w = s
			}
		}
		return w
	}
	if wp, wu := worst(pass), worst(us); wp >= wu {
		t.Errorf("PASS worst leaf score %v should beat US %v", wp, wu)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(dataset.New("e", 1), PolicyPASS, Options{MaxLeaves: 4}); err == nil {
		t.Error("empty dataset accepted")
	}
	d := dataset.GenUniform(10, 1, 1, 1)
	if _, err := Build(d, PolicyPASS, Options{MaxLeaves: 0}); err == nil {
		t.Error("zero leaf budget accepted")
	}
}

func TestUnsplittableIdenticalPoints(t *testing.T) {
	d := dataset.New("same", 2)
	for i := 0; i < 100; i++ {
		d.Append([]float64{1, 1}, float64(i))
	}
	tr, err := BuildPASS(d, Options{MaxLeaves: 8, Kind: dataset.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Errorf("identical points should stay in one leaf, got %d", tr.NumLeaves())
	}
}

func TestAvgKindBuild(t *testing.T) {
	d := dataset.GenNYCTaxi(3000, 2, 3)
	tr, err := BuildPASS(d, Options{MaxLeaves: 16, Kind: dataset.Avg, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() < 8 {
		t.Errorf("AVG tree has only %d leaves", tr.NumLeaves())
	}
}

func TestZeroVarianceRuleKD(t *testing.T) {
	// half the plane is constant zero: partial nodes there collapse to
	// covered under the rule
	d := dataset.New("halfzero", 2)
	rng := stats.NewRNG(4)
	for i := 0; i < 2000; i++ {
		x, y := rng.Float64(), rng.Float64()
		v := 0.0
		if x >= 0.5 {
			v = rng.Float64() * 10
		}
		d.Append([]float64{x, y}, v)
	}
	tr, err := BuildUS(d, Options{MaxLeaves: 64, Kind: dataset.Avg})
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Rect{Lo: []float64{0.01, 0.01}, Hi: []float64{0.43, 0.97}}
	off := tr.Frontier(q, false)
	on := tr.Frontier(q, true)
	if len(on.Partial) > len(off.Partial) {
		t.Errorf("rule increased partials: %d > %d", len(on.Partial), len(off.Partial))
	}
}

func TestMemoryBytes(t *testing.T) {
	_, tr := buildTaxi(t, 2, 16, PolicyPASS)
	if tr.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}
