package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/engine/factory"
	"repro/internal/shard"
	"repro/internal/sqlfe"
)

// buildShardedTable registers a freshly built sharded PASS engine in a
// catalog, returning the table (the ShardCheckpointable) and its engine.
func buildShardedTable(t *testing.T, name string, rows, shards int, seed uint64) (*catalog.Table, *shard.Engine, *dataset.Dataset) {
	t.Helper()
	d := dataset.GenIntelWireless(rows, seed)
	e, err := factory.Build(fmt.Sprintf("sharded:pass:%d", shards), d, factory.Spec{
		Partitions: 16, SampleSize: rows / 10, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := sqlfe.SchemaFromColNames(d.ColNames)
	schema.Table = name
	tbl, err := catalog.New().Register(name, e, schema)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, e.(*shard.Engine), d
}

func TestManifestRoundTrip(t *testing.T) {
	m := &ShardManifest{
		Name:   "trips",
		Engine: "PASS",
		Policy: "range",
		Dim:    0,
		Cuts:   []float64{10, 20.5},
		Bounds: []dataset.Rect{
			{Lo: []float64{0}, Hi: []float64{9}},
			{Lo: []float64{10}, Hi: []float64{20}},
			{Lo: []float64{20.5}, Hi: []float64{31}},
		},
		Shards: 3,
		Rows:   1234,
		Gens:   []uint64{4, 5, 6},
	}
	path := filepath.Join(t.TempDir(), "t.manifest")
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Engine != m.Engine || got.Policy != m.Policy ||
		got.Dim != m.Dim || got.Shards != m.Shards || got.Rows != m.Rows {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Cuts {
		if got.Cuts[i] != m.Cuts[i] {
			t.Errorf("cut %d: %v != %v", i, got.Cuts[i], m.Cuts[i])
		}
	}
	for i := range m.Gens {
		if got.Gens[i] != m.Gens[i] {
			t.Errorf("gen %d: %v != %v", i, got.Gens[i], m.Gens[i])
		}
	}
	for i, b := range m.Bounds {
		if got.Bounds[i].Lo[0] != b.Lo[0] || got.Bounds[i].Hi[0] != b.Hi[0] {
			t.Errorf("bounds %d: %v != %v", i, got.Bounds[i], b)
		}
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	m := &ShardManifest{
		Name: "t", Engine: "PASS", Policy: "range", Shards: 1, Rows: 1,
		Bounds: []dataset.Rect{{Lo: []float64{0}, Hi: []float64{1}}},
		Gens:   []uint64{1},
	}
	path := filepath.Join(t.TempDir(), "t.manifest")
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifestFile(path); err == nil {
		t.Fatal("bit-flipped manifest must be rejected")
	}
	// truncated tail
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifestFile(path); err == nil {
		t.Fatal("truncated manifest must be rejected")
	}
}

// TestShardedSaveAndWarmStart is the crash-recovery twin test of the
// manifest path: a sharded table is persisted, journaled updates land in
// per-shard WALs, the process "crashes" (the store is abandoned without a
// checkpoint), and a fresh store warm-starts the table — router, bounds
// and all — answering exactly what the live table answered.
func TestShardedSaveAndWarmStart(t *testing.T) {
	dir := t.TempDir()
	tbl, live, _ := buildShardedTable(t, "trips", 3000, 3, 7)

	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.AttachSharded(tbl, live, 3)
	if err != nil {
		t.Fatal(err)
	}
	tbl.AttachJournal(j)
	if err := st.SaveSharded(tbl); err != nil {
		t.Fatal(err)
	}
	// journaled updates on top of the snapshot, spread across shards
	info := live.ShardInfo()
	for i := 0; i < info.Shards; i++ {
		key := info.Bounds[i].Lo[0]
		if err := tbl.Insert([]float64{key}, float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	// the WALs must carry the updates, routed per shard
	ts := st.tables["trips"]
	total := 0
	for _, w := range ts.shardWALs {
		total += w.Records()
	}
	if total != info.Shards {
		t.Fatalf("%d journaled records across shard WALs, want %d", total, info.Shards)
	}
	// crash: close WALs without checkpointing
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Name != "trips" {
		t.Fatalf("loaded %+v, want the one sharded table", loaded)
	}
	if loaded[0].Replayed != info.Shards {
		t.Errorf("replayed %d records, want %d", loaded[0].Replayed, info.Shards)
	}
	restored, ok := loaded[0].Engine.(*shard.Engine)
	if !ok {
		t.Fatalf("restored engine is %T, want *shard.Engine", loaded[0].Engine)
	}
	ri := restored.ShardInfo()
	if ri.Shards != info.Shards || ri.Policy != info.Policy {
		t.Fatalf("restored shard info %+v, want %+v", ri, info)
	}
	for i, c := range info.Cuts {
		if ri.Cuts[i] != c {
			t.Errorf("restored cut %d = %v, want %v", i, ri.Cuts[i], c)
		}
	}
	sameAnswers(t, engine.Engine(live), loaded[0].Engine, "sharded warm start")
}

// TestShardedCrashBetweenSnapshotsAndManifest simulates the torn
// checkpoint: shard snapshots published at generation g+1 while the WALs
// still carry the folded records at generation g. The loader must discard
// the folded records per shard instead of double-applying them.
func TestShardedCrashBetweenSnapshotsAndManifest(t *testing.T) {
	dir := t.TempDir()
	tbl, live, _ := buildShardedTable(t, "trips", 2000, 2, 3)
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.AttachSharded(tbl, live, 2)
	if err != nil {
		t.Fatal(err)
	}
	tbl.AttachJournal(j)
	if err := st.SaveSharded(tbl); err != nil {
		t.Fatal(err)
	}
	info := live.ShardInfo()
	for i := 0; i < info.Shards; i++ {
		if err := tbl.Insert([]float64{info.Bounds[i].Lo[0]}, 5); err != nil {
			t.Fatal(err)
		}
	}
	// checkpoint again: snapshots + manifest move to generation 2 and the
	// WALs truncate...
	if err := st.SaveSharded(tbl); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// ...then un-truncate shard 0's WAL to replay the crash window: a log
	// at the old generation whose records the snapshot already folded in
	wal, _, err := OpenWAL(filepath.Join(dir, "trips.s0.wal"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(Record{Op: OpInsert, Point: []float64{info.Bounds[0].Lo[0]}, Value: 5}); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d tables", len(loaded))
	}
	if loaded[0].Replayed != 0 {
		t.Errorf("replayed %d stale records, want 0 (already folded into the snapshot)", loaded[0].Replayed)
	}
	sameAnswers(t, engine.Engine(live), loaded[0].Engine, "torn sharded checkpoint")
}

func TestShardedRemoveDeletesAllFiles(t *testing.T) {
	dir := t.TempDir()
	tbl, live, _ := buildShardedTable(t, "trips", 2000, 3, 9)
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.AttachSharded(tbl, live, 3); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSharded(tbl); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) == 0 {
		t.Fatal("no files persisted")
	}
	if err := st.Remove("trips"); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		t.Errorf("file %s survived Remove", e.Name())
	}
}

// TestWriteShardedTableFiles exercises the passgen path: a fileset
// written with no store open must warm-start cleanly.
func TestWriteShardedTableFiles(t *testing.T) {
	dir := t.TempDir()
	_, live, _ := buildShardedTable(t, "gen", 2000, 2, 11)
	schema := sqlfe.SchemaFromColNames([]string{"time", "light"})
	schema.Table = "gen"
	if err := WriteShardedTableFiles(dir, "gen", live, schema); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	loaded, err := st.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Name != "gen" {
		t.Fatalf("loaded %+v", loaded)
	}
	if loaded[0].Schema.PredColumns[0] != "time" {
		t.Errorf("schema lost: %+v", loaded[0].Schema)
	}
	sameAnswers(t, engine.Engine(live), loaded[0].Engine, "passgen fileset")
}

// TestValidateTableNameRejectsShardCollisions: a table named like a
// per-shard file ("logs.s0") would vanish at warm start and be deleted
// by the prefix table's Remove, so the store refuses to persist it.
func TestValidateTableNameRejectsShardCollisions(t *testing.T) {
	for _, bad := range []string{"logs.s0", "Trips.S12", "x.s007"} {
		if err := ValidateTableName(bad); err == nil {
			t.Errorf("ValidateTableName(%q) accepted a colliding name", bad)
		}
	}
	for _, ok := range []string{"logs", "s0", "logs.snap", "a.sx", "metrics.2024"} {
		if err := ValidateTableName(ok); err != nil {
			t.Errorf("ValidateTableName(%q) = %v, want nil", ok, err)
		}
	}
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tbl, _ := buildTable(t, "logs.s0", 1000, 1)
	if _, err := st.Attach(tbl); err == nil {
		t.Error("Attach accepted a shard-colliding table name")
	}
	stbl, live, _ := buildShardedTable(t, "logs.s1", 1000, 2, 1)
	if _, err := st.AttachSharded(stbl, live, 2); err == nil {
		t.Error("AttachSharded accepted a shard-colliding table name")
	}
}

// TestPlainAttachRejectsShardedState guards the API seam: once a table is
// sharded in the store, the unsharded Attach/SaveTable must refuse it.
func TestPlainAttachRejectsShardedState(t *testing.T) {
	dir := t.TempDir()
	tbl, live, _ := buildShardedTable(t, "trips", 2000, 2, 5)
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.AttachSharded(tbl, live, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Attach(tbl); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Errorf("plain Attach on a sharded table = %v, want a sharded-table error", err)
	}
}

// TestRemoveDoesNotTouchExtendedNameSiblings: dropping "logs" must not
// delete the shard files of "logs.staging".
func TestRemoveDoesNotTouchExtendedNameSiblings(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, name := range []string{"logs", "logs.staging"} {
		tbl, live, _ := buildShardedTable(t, name, 1000, 2, 4)
		if _, err := st.AttachSharded(tbl, live, 2); err != nil {
			t.Fatal(err)
		}
		if err := st.SaveSharded(tbl); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Remove("logs"); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	var left []string
	for _, e := range entries {
		left = append(left, e.Name())
	}
	want := map[string]bool{
		"logs.staging.manifest": true,
		"logs.staging.s0.snap":  true, "logs.staging.s0.wal": true,
		"logs.staging.s1.snap": true, "logs.staging.s1.wal": true,
	}
	if len(left) != len(want) {
		t.Fatalf("files after Remove(logs): %v, want exactly logs.staging's fileset", left)
	}
	for _, f := range left {
		if !want[f] {
			t.Errorf("unexpected survivor %s", f)
		}
	}
	// and logs.staging still warm-starts
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Name != "logs.staging" {
		t.Fatalf("loaded %+v, want logs.staging alone", loaded)
	}
}
