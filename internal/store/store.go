package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/factory"
	"repro/internal/retry"
	"repro/internal/sqlfe"
	"repro/internal/vfs"
)

// ErrDegraded tags writes rejected because the table is in read-only
// degraded mode: a WAL append or checkpoint hit an I/O failure, so the
// store can no longer promise durability for new updates. Queries keep
// serving from the in-memory synopsis; writes fail with this sentinel
// (the original I/O cause stays in the chain). The table recovers on a
// successful explicit checkpoint (SaveTable/SaveSharded) or on restart.
var ErrDegraded = errors.New("table is in read-only degraded mode")

// Checkpointable is the view of a live catalog table the store needs to
// snapshot it: a name plus a Checkpoint method that, under the table's
// exclusive lock, hands the store a consistent engine payload. It is
// satisfied structurally by *catalog.Table, keeping the catalog free of
// store imports.
type Checkpointable interface {
	Name() string
	Checkpoint(flush func(engineName string, schema sqlfe.Schema, payload []byte, rows int) error) error
}

// Options configures a Store.
type Options struct {
	// WALThreshold is the journaled-record count past which the background
	// checkpointer snapshots a table and truncates its log. Default 4096.
	WALThreshold int
	// CheckpointInterval is how often the background checkpointer scans
	// attached tables. Default 5s; negative disables the goroutine
	// (Checkpoint/CheckpointAll remain available).
	CheckpointInterval time.Duration
	// NoSync disables the per-append WAL fsync. Faster, but a machine
	// crash (not just a process crash) can lose the tail of the journal.
	NoSync bool
	// Logf receives diagnostics (checkpoints, recovery notes). Default: discard.
	Logf func(format string, args ...any)
	// FS is the filesystem the store runs on. Default vfs.OS(); tests and
	// chaos runs substitute a vfs.FaultFS to inject I/O failures.
	FS vfs.FS
	// Retry bounds the backoff loop wrapped around checkpoint file writes
	// when they fail with a transient (ErrIO) error. Zero value = retry
	// defaults (3 attempts, 5ms base).
	Retry retry.Policy
}

func (o Options) withDefaults() Options {
	if o.WALThreshold <= 0 {
		o.WALThreshold = 4096
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.FS == nil {
		o.FS = vfs.OS()
	}
	return o
}

// transientIO is the retry classifier: only failures tagged ErrIO are
// worth another attempt — corruption and validation errors never are.
func transientIO(err error) bool {
	return errors.Is(err, ErrIO) && !errors.Is(err, ErrCorrupt)
}

// tableState is the store's per-table bookkeeping: the open WAL (or, for
// a sharded table, one WAL per shard) and, once the table is attached,
// the live source to checkpoint from. opMu orders checkpoints against
// Remove so a background checkpoint racing a drop cannot recreate the
// files of a removed table; removed marks the state dead once Remove has
// won.
type tableState struct {
	name string
	wal  *WAL // unsharded tables
	// shardWALs holds one journal per shard for sharded tables (wal is
	// then nil); index = shard id.
	shardWALs []*WAL

	opMu     sync.Mutex
	src      Checkpointable      // nil until Attach
	shardSrc ShardCheckpointable // nil until AttachSharded
	removed  bool

	// degMu guards degraded — the read-only-mode cause, nil when healthy.
	// It is its own (tiny) lock because the journal hot path checks it on
	// every write while checkpoints hold opMu for whole file writes.
	degMu    sync.Mutex
	degraded error
}

// degrade moves the table into read-only degraded mode, keeping the first
// cause (later failures do not overwrite it).
func (ts *tableState) degrade(cause error) {
	ts.degMu.Lock()
	defer ts.degMu.Unlock()
	if ts.degraded == nil {
		ts.degraded = cause
	}
}

// recover clears degraded mode after durability has been re-established.
func (ts *tableState) recover() {
	ts.degMu.Lock()
	defer ts.degMu.Unlock()
	ts.degraded = nil
}

// degradedErr returns nil when the table is healthy, or an ErrDegraded-
// tagged error carrying the original I/O cause when it is not.
func (ts *tableState) degradedErr() error {
	ts.degMu.Lock()
	defer ts.degMu.Unlock()
	if ts.degraded == nil {
		return nil
	}
	return fmt.Errorf("store: table %q: %w: %w", ts.name, ErrDegraded, ts.degraded)
}

// pending counts journaled records across the table's WAL(s).
func (ts *tableState) pending() int {
	if ts.wal != nil {
		return ts.wal.Records()
	}
	n := 0
	for _, w := range ts.shardWALs {
		n += w.Records()
	}
	return n
}

// closeWALs closes every open journal of the table.
func (ts *tableState) closeWALs() error {
	var firstErr error
	if ts.wal != nil {
		firstErr = ts.wal.Close()
	}
	for _, w := range ts.shardWALs {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Store manages a data directory of table snapshots and write-ahead logs:
// Open → LoadAll (warm start) → Attach/SaveTable per table → background
// checkpoints → Close. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu     sync.Mutex
	tables map[string]*tableState // key: lower-cased table name
	closed bool

	stop chan struct{}
	done chan struct{}
}

// Open prepares a data directory (creating it if needed) and starts the
// background checkpointer.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		fs:     opts.FS,
		tables: make(map[string]*tableState),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if s.opts.CheckpointInterval > 0 {
		go s.run()
	} else {
		close(s.done)
	}
	return s, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// fileKey maps a table name to its on-disk basename: lower-cased (table
// names are case-insensitive) and path-escaped so arbitrary HTTP-supplied
// names cannot traverse out of the data directory. Names ending in
// ".s<i>" are rejected by ValidateTableName before any file is created:
// fileKey does not escape dots, so such a name would collide with the
// per-shard files of a sharded table with the prefix name.
func fileKey(name string) string {
	return url.PathEscape(strings.ToLower(name))
}

// reservedSuffix matches table names that would collide with sharded
// per-shard file naming.
var reservedSuffix = regexp.MustCompile(`\.s\d+$`)

// ValidateTableName rejects names whose on-disk files would collide with
// the per-shard files of another table — "logs.s0" would be
// indistinguishable from shard 0 of a sharded table "logs", making it
// vanish at warm start and be deleted by the other table's Remove.
func ValidateTableName(name string) error {
	if reservedSuffix.MatchString(strings.ToLower(name)) {
		return fmt.Errorf("store: table name %q collides with per-shard file naming (<table>.s<i>); choose another name", name)
	}
	return nil
}

func (s *Store) snapPath(name string) string { return filepath.Join(s.dir, fileKey(name)+".snap") }
func (s *Store) walPath(name string) string  { return filepath.Join(s.dir, fileKey(name)+".wal") }

// LoadedTable is one table restored from disk: the rebuilt engine, its
// schema, and how many journaled updates were replayed on top of the
// snapshot.
type LoadedTable struct {
	Name     string
	Engine   engine.Engine
	Schema   sqlfe.Schema
	Replayed int
}

// LoadAll restores every table in the data directory: sharded tables from
// their manifest + per-shard snapshot/WAL sets, everything else from its
// single snapshot + WAL pair, with each engine rebuilt through the
// factory loader registry. Corrupt snapshots, manifests or logs fail the
// whole load with a clear error — a durable store must never silently
// serve partial state. Results are sorted by table name.
func (s *Store) LoadAll() ([]LoadedTable, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read data dir: %w", err)
	}
	var out []LoadedTable
	seen := make(map[string]bool)
	claimed := make(map[string]bool) // shard files owned by a manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".manifest") {
			continue
		}
		lt, err := s.loadSharded(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, lt)
		seen[fileKey(lt.Name)] = true
		if sh, ok := lt.Engine.(engine.Sharded); ok {
			for i := 0; i < sh.ShardInfo().Shards; i++ {
				claimed[filepath.Base(s.shardSnapPath(lt.Name, i))] = true
				claimed[filepath.Base(s.shardWALPath(lt.Name, i))] = true
			}
		}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") || claimed[e.Name()] {
			continue
		}
		if shardFilePattern.MatchString(e.Name()) {
			// a per-shard snapshot whose manifest is gone (crash
			// mid-Remove) cannot be served alone: every shard of a table
			// records the same table name
			s.opts.Logf("store: ignoring orphan shard snapshot %s (no manifest)", e.Name())
			continue
		}
		lt, err := s.loadOne(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, lt)
		seen[fileKey(lt.Name)] = true
	}
	// orphan WALs (snapshot missing, e.g. a crash mid-Remove) are
	// unreconstructible — surface them but do not fail the warm start
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") || claimed[e.Name()] {
			continue
		}
		key := strings.TrimSuffix(shardFilePattern.ReplaceAllString(e.Name(), ""), ".wal")
		if !seen[key] {
			s.opts.Logf("store: ignoring orphan WAL %s (no matching snapshot)", e.Name())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// shardFilePattern matches the per-shard suffix of sharded table files
// ("<key>.s<i>.snap" / "<key>.s<i>.wal").
var shardFilePattern = regexp.MustCompile(`\.s\d+\.(snap|wal)$`)

// loadOne restores a single table from its snapshot + WAL pair.
func (s *Store) loadOne(snapPath string) (LoadedTable, error) {
	snap, err := ReadSnapshotFileFS(s.fs, snapPath)
	if err != nil {
		return LoadedTable{}, err
	}
	if snap.Name == "" {
		return LoadedTable{}, fmt.Errorf("store: snapshot %s carries no table name: %w", snapPath, ErrCorrupt)
	}
	load, ok := factory.Loader(snap.Engine)
	if !ok {
		return LoadedTable{}, fmt.Errorf("store: snapshot %s: no loader for engine %q (have %s)",
			snapPath, snap.Engine, strings.Join(factory.LoaderKinds(), ", "))
	}
	eng, err := load(bytes.NewReader(snap.Payload))
	if err != nil {
		return LoadedTable{}, fmt.Errorf("store: restore engine %s for table %q: %w", snap.Engine, snap.Name, err)
	}
	wal, recs, err := OpenWALFS(s.fs, s.walPath(snap.Name), !s.opts.NoSync)
	if err != nil {
		return LoadedTable{}, err
	}
	recs, err = pairWAL(wal, recs, snap.Gen, snap.Name, s.opts.Logf)
	if err != nil {
		wal.Close()
		return LoadedTable{}, err
	}
	if len(recs) > 0 {
		u, ok := engine.Underlying(eng).(engine.Updatable)
		if !ok {
			wal.Close()
			return LoadedTable{}, fmt.Errorf("store: table %q has %d journaled updates but engine %s is not updatable",
				snap.Name, len(recs), snap.Engine)
		}
		for i, rec := range recs {
			var aerr error
			switch rec.Op {
			case OpInsert:
				aerr = u.Insert(rec.Point, rec.Value)
			case OpDelete:
				aerr = u.Delete(rec.Point, rec.Value)
			}
			if aerr != nil {
				wal.Close()
				return LoadedTable{}, fmt.Errorf("store: table %q: replay WAL record %d/%d: %w",
					snap.Name, i+1, len(recs), aerr)
			}
		}
	}
	s.mu.Lock()
	s.tables[strings.ToLower(snap.Name)] = &tableState{name: snap.Name, wal: wal}
	s.mu.Unlock()
	return LoadedTable{Name: snap.Name, Engine: eng, Schema: snap.Schema, Replayed: len(recs)}, nil
}

// pairWAL reconciles a WAL's generation against the snapshot it pairs
// with: equal generations replay the journal on top of the snapshot, a
// lagging WAL (crash between snapshot publish and truncation) has its
// already-folded records discarded, and a WAL ahead of its snapshot is
// corruption.
func pairWAL(wal *WAL, recs []Record, snapGen uint64, name string, logf func(string, ...any)) ([]Record, error) {
	switch {
	case wal.Gen() == snapGen:
		return recs, nil
	case wal.Gen() < snapGen:
		logf("store: table %q: WAL generation %d predates snapshot generation %d; discarding %d already-folded record(s)",
			name, wal.Gen(), snapGen, len(recs))
		if err := wal.Truncate(snapGen); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("store: table %q: WAL generation %d is ahead of snapshot generation %d (snapshot file replaced?): %w",
			name, wal.Gen(), snapGen, ErrCorrupt)
	}
}

// state returns (creating if needed) the per-table bookkeeping, opening
// the table's WAL on first use.
func (s *Store) state(name string) (*tableState, error) {
	if err := ValidateTableName(name); err != nil {
		return nil, err
	}
	key := strings.ToLower(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	if ts, ok := s.tables[key]; ok {
		if ts.wal == nil {
			return nil, fmt.Errorf("store: table %q is sharded (use AttachSharded/SaveSharded)", name)
		}
		return ts, nil
	}
	wal, recs, err := OpenWALFS(s.fs, s.walPath(name), !s.opts.NoSync)
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 {
		// a pre-existing log for a table being created anew is stale state
		if err := wal.Truncate(wal.Gen()); err != nil {
			wal.Close()
			return nil, err
		}
	}
	ts := &tableState{name: name, wal: wal}
	s.tables[key] = ts
	return ts, nil
}

// Attach connects a live table to its journal: the returned TableLog
// implements the catalog's Journal interface, so every Insert/Delete on
// the table is appended to the WAL before the in-memory apply. The store
// also remembers the table as a checkpoint source.
func (s *Store) Attach(t Checkpointable) (*TableLog, error) {
	ts, err := s.state(t.Name())
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	ts.src = t
	s.mu.Unlock()
	return &TableLog{ts: ts}, nil
}

// SaveTable snapshots a table now: the engine payload is captured under
// the table's exclusive lock and written atomically, then the WAL is
// truncated — the journaled updates are folded into the snapshot.
//
// The snapshot is stamped with the WAL's generation + 1 and the truncated
// WAL inherits that number, so a crash between the two steps is detected
// at load time (the folded records are discarded, not replayed twice).
// Holding the table lock across the snapshot write trades some query tail
// latency during checkpoints for a protocol with no lost-update windows;
// the WAL threshold keeps checkpoints infrequent.
func (s *Store) SaveTable(t Checkpointable) error {
	ts, err := s.state(t.Name())
	if err != nil {
		return err
	}
	return s.saveTableState(ts, t)
}

// saveTableState checkpoints through an existing tableState. Taking opMu
// for the duration excludes Remove, so a concurrent drop cannot interleave
// with the file writes; a state Remove already won on is left untouched.
//
// Transient (ErrIO) write failures are retried with bounded backoff; if
// the retries are exhausted the table degrades to read-only mode, and a
// later successful save — durability re-established — recovers it.
func (s *Store) saveTableState(ts *tableState, t Checkpointable) error {
	ts.opMu.Lock()
	defer ts.opMu.Unlock()
	if ts.removed {
		return nil
	}
	start := time.Now()
	err := t.Checkpoint(func(engineName string, schema sqlfe.Schema, payload []byte, rows int) error {
		gen := ts.wal.Gen() + 1
		snap := &Snapshot{
			Name:    ts.name,
			Engine:  engineName,
			Gen:     gen,
			Rows:    rows,
			Schema:  schema,
			Payload: payload,
		}
		if err := retry.Do(context.Background(), s.opts.Retry, transientIO, func() error {
			return WriteSnapshotFileFS(s.fs, s.snapPath(ts.name), snap)
		}); err != nil {
			return err
		}
		return ts.wal.Truncate(gen)
	})
	switch {
	case err == nil:
		checkpointSecs.ObserveDuration(time.Since(start))
		checkpointTotal.Inc()
		ts.recover()
	case transientIO(err):
		ts.degrade(err)
	}
	return err
}

// Checkpoint snapshots every attached table whose WAL has grown past the
// threshold. The background checkpointer calls it on a timer; it is also
// safe to call directly.
func (s *Store) Checkpoint() error {
	return s.checkpointWhere(func(pending int) bool { return pending >= s.opts.WALThreshold })
}

// CheckpointAll snapshots every attached table with any journaled updates
// — the final flush on graceful shutdown.
func (s *Store) CheckpointAll() error {
	return s.checkpointWhere(func(pending int) bool { return pending > 0 })
}

func (s *Store) checkpointWhere(needed func(pending int) bool) error {
	type due struct {
		ts       *tableState
		src      Checkpointable
		shardSrc ShardCheckpointable
	}
	s.mu.Lock()
	var work []due
	for _, ts := range s.tables {
		if ts.degradedErr() != nil {
			// a degraded table's storage is already known-bad: the periodic
			// checkpointer leaves it alone instead of hammering a failing
			// disk; recovery is an explicit SaveTable/SaveSharded or restart
			continue
		}
		if (ts.src != nil || ts.shardSrc != nil) && needed(ts.pending()) {
			work = append(work, due{ts: ts, src: ts.src, shardSrc: ts.shardSrc})
		}
	}
	s.mu.Unlock()
	var firstErr error
	for _, d := range work {
		// checkpoint through the captured state, never through state():
		// a table dropped since the scan must not have its files recreated
		var err error
		name := d.ts.name
		if d.shardSrc != nil {
			err = s.saveShardedState(d.ts, d.shardSrc)
		} else {
			err = s.saveTableState(d.ts, d.src)
		}
		if err != nil {
			s.opts.Logf("store: checkpoint %s: %v", name, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.opts.Logf("store: checkpointed table %s", name)
	}
	return firstErr
}

// Remove deletes a table's persisted files — snapshot and WAL, plus the
// manifest and per-shard files when the table is (or once was) sharded —
// so a dropped table cannot resurrect on the next boot. Taking the
// state's opMu waits out any in-flight checkpoint of the table and marks
// the state removed, so a later checkpoint attempt is a no-op instead of
// recreating the files.
func (s *Store) Remove(name string) error {
	key := strings.ToLower(name)
	s.mu.Lock()
	ts := s.tables[key]
	delete(s.tables, key)
	s.mu.Unlock()
	if ts != nil {
		ts.opMu.Lock()
		ts.removed = true
		ts.closeWALs()
		ts.opMu.Unlock()
	}
	doomed := []string{s.snapPath(name), s.walPath(name), s.manifestPath(name)}
	// shard files are discovered from the directory rather than the open
	// state: a crash may have left files for shards the state never
	// opened. The match is anchored on the whole basename — a bare prefix
	// test would also catch "<name>.staging.s0.snap", the shard files of
	// a DIFFERENT table extending this name
	ownShardFile := regexp.MustCompile(`^` + regexp.QuoteMeta(fileKey(name)) + `\.s\d+\.(snap|wal)$`)
	if entries, err := s.fs.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && ownShardFile.MatchString(e.Name()) {
				doomed = append(doomed, filepath.Join(s.dir, e.Name()))
			}
		}
	}
	var firstErr error
	for _, p := range doomed {
		if err := s.fs.Remove(p); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	// make the unlinks durable, so a machine crash cannot resurrect the
	// dropped table at the next boot
	if err := syncDir(s.fs, s.dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Degraded reports whether a table is in read-only degraded mode, and if
// so, the ErrDegraded-tagged cause.
func (s *Store) Degraded(name string) (bool, error) {
	s.mu.Lock()
	ts := s.tables[strings.ToLower(name)]
	s.mu.Unlock()
	if ts == nil {
		return false, nil
	}
	if err := ts.degradedErr(); err != nil {
		return true, err
	}
	return false, nil
}

// DegradedTables lists the tables currently in degraded mode, sorted.
func (s *Store) DegradedTables() []string {
	s.mu.Lock()
	var out []string
	for _, ts := range s.tables {
		if ts.degradedErr() != nil {
			out = append(out, ts.name)
		}
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Close stops the background checkpointer and closes every WAL. It does
// not checkpoint; call CheckpointAll first for a clean shutdown.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.opts.CheckpointInterval > 0 {
		close(s.stop)
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, ts := range s.tables {
		if err := ts.closeWALs(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.tables = make(map[string]*tableState)
	return firstErr
}

// run is the background checkpointer loop.
func (s *Store) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.opts.CheckpointInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if err := s.Checkpoint(); err != nil {
				s.opts.Logf("store: background checkpoint: %v", err)
			}
		}
	}
}

// TableLog is one table's journaling handle, satisfying the catalog's
// Journal interface: appends happen before the in-memory apply, and
// Rollback undoes the last append when that apply fails. The catalog
// serializes all three behind the table's write lock.
//
// An append that fails with an I/O error (as opposed to a validation
// error) degrades the table to read-only mode — the WAL could not be
// extended, so accepting more writes would silently drop durability.
// Every later write is rejected with ErrDegraded until the table
// recovers (explicit checkpoint or restart).
type TableLog struct {
	ts *tableState
}

// append journals records through the degraded-mode gate.
func (l *TableLog) append(recs []Record) error {
	if err := l.ts.degradedErr(); err != nil {
		return err
	}
	err := l.ts.wal.AppendGroup(recs)
	if err != nil && transientIO(err) {
		l.ts.degrade(err)
	}
	return err
}

// Insert journals an insert.
func (l *TableLog) Insert(point []float64, value float64) error {
	return l.append([]Record{{Op: OpInsert, Point: point, Value: value}})
}

// Delete journals a delete.
func (l *TableLog) Delete(point []float64, value float64) error {
	return l.append([]Record{{Op: OpDelete, Point: point, Value: value}})
}

// InsertMany journals a batch of inserts as one group commit.
func (l *TableLog) InsertMany(points [][]float64, values []float64) error {
	recs := make([]Record, len(points))
	for i := range points {
		recs[i] = Record{Op: OpInsert, Point: points[i], Value: values[i]}
	}
	return l.append(recs)
}

// Rollback undoes the most recent append.
func (l *TableLog) Rollback() error { return l.ts.wal.Rollback() }
