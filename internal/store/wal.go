package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/binenc"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Durability instruments, recorded per group commit: one append latency
// observation covers the framed write plus the (optional) fsync, and the
// fsync histogram isolates the device-flush cost inside it.
var (
	walAppends      = obs.Default().NewCounter("pass_wal_appends_total", "WAL group commits")
	walRecords      = obs.Default().NewCounter("pass_wal_records_total", "update records journaled")
	walAppendSecs   = obs.Default().NewHistogram("pass_wal_append_seconds", "WAL group-commit latency (write+fsync)", nil)
	walFsyncSecs    = obs.Default().NewHistogram("pass_wal_fsync_seconds", "WAL fsync latency within a group commit", nil)
	checkpointSecs  = obs.Default().NewHistogram("pass_checkpoint_seconds", "snapshot checkpoint latency", nil)
	checkpointTotal = obs.Default().NewCounter("pass_checkpoints_total", "snapshot checkpoints completed")
)

// Write-ahead log format:
//
//	magic      u64 varint  ("PWAL")
//	version    u64 varint
//	generation u64 LE (fixed 8 bytes, rewritten in place by Truncate)
//	record*
//
// record = [len uvarint][payload][crc32(payload) u32 LE-as-uvarint]
// payload = [op u8][dims uvarint][point f64 × dims][value f64]
//
// Every record is appended with a single write(2) call, so a crash leaves
// at most one torn record at the tail — which the scanner rejects with a
// clear ErrCorrupt error rather than silently dropping state.
//
// The generation pairs the log with its snapshot: a checkpoint writes the
// snapshot stamped generation G+1 and then truncates the WAL to G+1, so a
// crash between the two leaves snapshot G+1 over WAL G — recovery sees
// the mismatch and discards the already-folded records instead of
// replaying them twice.
const (
	walMagic   = 0x5057414C // "PWAL"
	walVersion = 1
)

// Op tags a WAL record.
type Op byte

// WAL record operations.
const (
	OpInsert Op = 1
	OpDelete Op = 2
)

// Record is one journaled update.
type Record struct {
	Op    Op
	Point []float64
	Value float64
}

// WAL is one table's append-only update journal. Appends and truncations
// are already serialized by the catalog table's write lock, but the
// background checkpointer polls Records concurrently, so the WAL guards
// its state with its own mutex.
type WAL struct {
	mu   sync.Mutex
	path string
	f    vfs.File
	// size is the current valid end offset; prevSize is the offset before
	// the most recent append (single or group), enabling rollback after a
	// failed in-memory apply.
	size, prevSize int64
	// records counts the valid records currently in the log; prevRecords
	// is the count before the most recent append.
	records, prevRecords int
	// gen is the checkpoint generation this log continues from.
	gen uint64
	// sync forces an fsync after every append (durable but slower).
	sync bool
}

// headerLen is the encoded length of magic+version+generation.
var headerLen = func() int64 {
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	w.U64(walMagic)
	w.U64(walVersion)
	_ = w.Flush()
	return int64(buf.Len()) + 8 // + fixed-width generation
}()

// encodeHeader renders the full WAL header for a generation.
func encodeHeader(gen uint64) []byte {
	var buf bytes.Buffer
	w := binenc.NewWriter(&buf)
	w.U64(walMagic)
	w.U64(walVersion)
	_ = w.Flush()
	var g [8]byte
	binary.LittleEndian.PutUint64(g[:], gen)
	return append(buf.Bytes(), g[:]...)
}

// OpenWAL opens (or creates) a table's write-ahead log on the real
// filesystem.
func OpenWAL(path string, syncAppends bool) (*WAL, []Record, error) {
	return OpenWALFS(vfs.OS(), path, syncAppends)
}

// OpenWALFS opens (or creates) a table's write-ahead log, scans and
// returns the journaled records, and positions the file for appending. A
// torn or corrupt record makes the open fail with an error wrapping
// ErrCorrupt — recovery must be explicit, never silent.
func OpenWALFS(fsys vfs.FS, path string, syncAppends bool) (*WAL, []Record, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open WAL: %w", err)
	}
	w := &WAL{path: path, f: f, sync: syncAppends}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: stat WAL: %w", err)
	}
	if st.Size() == 0 {
		// fresh log: write the header at generation 0
		if _, err := f.Write(encodeHeader(0)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: init WAL: %w", err)
		}
		w.size, w.prevSize = headerLen, headerLen
		return w, nil, nil
	}
	recs, gen, end, err := scanWAL(f, st.Size())
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: WAL %s: %w", path, err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seek WAL: %w", err)
	}
	w.size, w.prevSize = end, end
	w.records = len(recs)
	w.gen = gen
	return w, recs, nil
}

// maxRecordBytes bounds one record's encoded payload; anything larger is
// corruption, not data.
const maxRecordBytes = 1 << 20

// scanWAL validates the header and every record, returning the records,
// the generation, and the end offset of the last valid record.
func scanWAL(f vfs.File, fileSize int64) ([]Record, uint64, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, err
	}
	// read the whole log; WALs are truncated at every checkpoint so they
	// stay small by construction
	raw := make([]byte, fileSize)
	if _, err := io.ReadFull(f, raw); err != nil {
		return nil, 0, 0, fmt.Errorf("read WAL: %w", err)
	}
	pos := 0
	magic, n := binary.Uvarint(raw[pos:])
	if n <= 0 || magic != walMagic {
		return nil, 0, 0, fmt.Errorf("not a WAL file (bad magic): %w", ErrCorrupt)
	}
	pos += n
	version, n := binary.Uvarint(raw[pos:])
	if n <= 0 {
		return nil, 0, 0, fmt.Errorf("truncated WAL header: %w", ErrCorrupt)
	}
	if version != walVersion {
		return nil, 0, 0, fmt.Errorf("unsupported WAL version %d", version)
	}
	pos += n
	if pos+8 > len(raw) {
		return nil, 0, 0, fmt.Errorf("truncated WAL header: %w", ErrCorrupt)
	}
	gen := binary.LittleEndian.Uint64(raw[pos : pos+8])
	pos += 8
	var recs []Record
	for pos < len(raw) {
		start := pos
		plen, n := binary.Uvarint(raw[pos:])
		if n <= 0 || plen > maxRecordBytes {
			return nil, 0, 0, fmt.Errorf("torn record header at offset %d (crash mid-append or truncated file): %w", start, ErrCorrupt)
		}
		pos += n
		if pos+int(plen) > len(raw) {
			return nil, 0, 0, fmt.Errorf("torn record at offset %d: %d payload bytes declared, %d present: %w",
				start, plen, len(raw)-pos, ErrCorrupt)
		}
		payload := raw[pos : pos+int(plen)]
		pos += int(plen)
		crc, n := binary.Uvarint(raw[pos:])
		if n <= 0 {
			return nil, 0, 0, fmt.Errorf("torn record checksum at offset %d: %w", start, ErrCorrupt)
		}
		pos += n
		if uint64(crc32.ChecksumIEEE(payload)) != crc {
			return nil, 0, 0, fmt.Errorf("record CRC mismatch at offset %d (file damaged): %w", start, ErrCorrupt)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil, 0, 0, err
		}
		recs = append(recs, rec)
	}
	return recs, gen, int64(pos), nil
}

// decodeRecord parses one record payload.
func decodeRecord(payload []byte) (Record, error) {
	pr := binenc.NewReader(bytes.NewReader(payload))
	op := Op(pr.U64())
	dims := int(pr.U64())
	if pr.Err() != nil || (op != OpInsert && op != OpDelete) || dims < 0 || dims > 1<<10 {
		return Record{}, fmt.Errorf("malformed record payload: %w", ErrCorrupt)
	}
	rec := Record{Op: op, Point: make([]float64, dims)}
	for i := range rec.Point {
		rec.Point[i] = pr.F64()
	}
	rec.Value = pr.F64()
	if pr.Err() != nil {
		return Record{}, fmt.Errorf("malformed record payload: %w", ErrCorrupt)
	}
	return rec, nil
}

// appendRecord appends one framed record (length prefix + payload + CRC)
// to dst, reusing scratch for the payload. The varint encoding matches
// binenc bit for bit, but avoids per-record writer allocations on the
// group-commit hot path.
func appendRecord(dst, scratch []byte, rec Record) (newDst, newScratch []byte, err error) {
	for _, c := range rec.Point {
		if math.IsNaN(c) {
			return dst, scratch, fmt.Errorf("store: WAL record with NaN coordinate")
		}
	}
	payload := scratch[:0]
	payload = binary.AppendUvarint(payload, uint64(rec.Op))
	payload = binary.AppendUvarint(payload, uint64(len(rec.Point)))
	for _, c := range rec.Point {
		payload = binary.AppendUvarint(payload, math.Float64bits(c))
	}
	payload = binary.AppendUvarint(payload, math.Float64bits(rec.Value))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	dst = binary.AppendUvarint(dst, uint64(crc32.ChecksumIEEE(payload)))
	return dst, payload, nil
}

// Append journals one update with a single write call, fsyncing when the
// WAL was opened in sync mode.
func (w *WAL) Append(rec Record) error {
	return w.AppendGroup([]Record{rec})
}

// AppendGroup journals a batch of updates as one write and (in sync mode)
// one fsync — group commit. Rollback afterwards undoes the whole group.
// A failed write or fsync rolls the file back before returning, so an
// update that was reported failed is never replayed at the next boot.
func (w *WAL) AppendGroup(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var framed, scratch []byte
	var err error
	for _, rec := range recs {
		framed, scratch, err = appendRecord(framed, scratch, rec)
		if err != nil {
			return err
		}
	}
	undo := func() {
		// best effort: restore the pre-append length so the log never
		// carries records the caller was told failed
		_ = w.f.Truncate(w.size)
		_, _ = w.f.Seek(w.size, io.SeekStart)
	}
	start := time.Now()
	n, err := w.f.Write(framed)
	if err != nil {
		undo()
		return ioErr("WAL append", err)
	}
	if w.sync {
		syncStart := time.Now()
		if err := w.f.Sync(); err != nil {
			undo()
			return ioErr("WAL sync", err)
		}
		walFsyncSecs.ObserveDuration(time.Since(syncStart))
	}
	walAppendSecs.ObserveDuration(time.Since(start))
	walAppends.Inc()
	walRecords.Add(int64(len(recs)))
	w.prevSize, w.prevRecords = w.size, w.records
	w.size += int64(n)
	w.records += len(recs)
	return nil
}

// Rollback undoes the most recent Append or AppendGroup — used when the
// in-memory apply fails after the records were journaled, keeping log and
// engine in step.
func (w *WAL) Rollback() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.prevSize == w.size {
		return fmt.Errorf("store: WAL rollback without a preceding append")
	}
	if err := w.f.Truncate(w.prevSize); err != nil {
		return fmt.Errorf("store: WAL rollback: %w", err)
	}
	if _, err := w.f.Seek(w.prevSize, io.SeekStart); err != nil {
		return fmt.Errorf("store: WAL rollback seek: %w", err)
	}
	w.size, w.records = w.prevSize, w.prevRecords
	return nil
}

// Truncate discards all journaled records and stamps the log with the
// generation of the snapshot that folded them in — called only after that
// snapshot has been atomically published.
func (w *WAL) Truncate(gen uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return ioErr("WAL truncate", err)
	}
	if _, err := w.f.WriteAt(encodeHeader(gen), 0); err != nil {
		return ioErr("WAL truncate header", err)
	}
	if _, err := w.f.Seek(headerLen, io.SeekStart); err != nil {
		return ioErr("WAL truncate seek", err)
	}
	w.size, w.prevSize = headerLen, headerLen
	w.records, w.prevRecords = 0, 0
	w.gen = gen
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return ioErr("WAL truncate sync", err)
		}
	}
	return nil
}

// Gen reports the checkpoint generation the log continues from.
func (w *WAL) Gen() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// Records reports the number of journaled updates currently in the log.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Size reports the log's byte size.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close closes the underlying file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
