package store

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/engine/factory"
)

// setupShardedDir persists a 3-shard table with journaled updates into a
// fresh directory and closes the store, returning the directory and a
// throwaway store handle for path computation only.
func setupShardedDir(t *testing.T) (string, *Store) {
	t.Helper()
	dir := t.TempDir()
	tbl, live, _ := buildShardedTable(t, "trips", 3000, 3, 13)
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.AttachSharded(tbl, live, 3)
	if err != nil {
		t.Fatal(err)
	}
	tbl.AttachJournal(j)
	if err := st.SaveSharded(tbl); err != nil {
		t.Fatal(err)
	}
	info := live.ShardInfo()
	for i := 0; i < info.Shards; i++ {
		if err := tbl.Insert([]float64{info.Bounds[i].Lo[0]}, float64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, st
}

// expectLoadCorrupt asserts that a warm start of dir fails with a typed
// ErrCorrupt — never a silent partial load, never an untyped error.
func expectLoadCorrupt(t *testing.T, dir, context string) {
	t.Helper()
	st, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.LoadAll()
	if err == nil {
		t.Fatalf("%s: LoadAll should fail", context)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: LoadAll error %v does not wrap ErrCorrupt", context, err)
	}
}

// expectShardLoadable asserts one per-shard snapshot still decodes into a
// working engine — corruption elsewhere must not damage siblings.
func expectShardLoadable(t *testing.T, st *Store, shard int) {
	t.Helper()
	snap, err := ReadSnapshotFile(st.shardSnapPath("trips", shard))
	if err != nil {
		t.Fatalf("sibling shard %d snapshot unreadable: %v", shard, err)
	}
	load, ok := factory.Loader(snap.Engine)
	if !ok {
		t.Fatalf("no loader for %q", snap.Engine)
	}
	if _, err := load(bytes.NewReader(snap.Payload)); err != nil {
		t.Fatalf("sibling shard %d engine does not decode: %v", shard, err)
	}
}

func TestShardedTruncatedManifest(t *testing.T) {
	dir, st := setupShardedDir(t)
	path := st.manifestPath("trips")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	expectLoadCorrupt(t, dir, "truncated manifest")
	// the manifest is gone but every shard's data survives intact
	for i := 0; i < 3; i++ {
		expectShardLoadable(t, st, i)
	}
}

func TestShardedBitFlippedShardSnapshot(t *testing.T) {
	dir, st := setupShardedDir(t)
	path := st.shardSnapPath("trips", 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)*2/3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// the CRC-framed codec catches the flip and types it
	if _, err := ReadSnapshotFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped shard snapshot read = %v, want ErrCorrupt", err)
	}
	expectLoadCorrupt(t, dir, "bit-flipped shard snapshot")
	// the damage is confined to shard 1: its siblings stay loadable
	expectShardLoadable(t, st, 0)
	expectShardLoadable(t, st, 2)
}

func TestShardedTornWALTail(t *testing.T) {
	dir, st := setupShardedDir(t)
	path := st.shardWALPath("trips", 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 4 {
		t.Fatalf("shard 2 WAL has only %d bytes; setup should have journaled a record", len(raw))
	}
	// cut inside the final record — a crash mid-append
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path, false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn shard WAL open = %v, want ErrCorrupt", err)
	}
	expectLoadCorrupt(t, dir, "torn shard WAL tail")
	// sibling shards' journals still open and replay cleanly
	for _, i := range []int{0, 1} {
		w, recs, err := OpenWAL(st.shardWALPath("trips", i), false)
		if err != nil {
			t.Fatalf("sibling shard %d WAL unreadable: %v", i, err)
		}
		if len(recs) != 1 {
			t.Errorf("sibling shard %d WAL has %d records, want 1", i, len(recs))
		}
		w.Close()
		expectShardLoadable(t, st, i)
	}
}
